#include "src/app/lock_table.h"

namespace rocelab {

void LockTableWorkload::add_client(Host& host, RdmaDemux& demux, std::uint32_t qpn,
                                   Role role) {
  auto c = std::make_unique<Client>();
  c->host = &host;
  c->qpn = qpn;
  c->role = role;
  const auto index = static_cast<std::uint64_t>(clients_.size());
  // Seed from the global client index, not the host's Rng: a client's
  // behaviour must not depend on how hosts are partitioned into shards.
  c->rng = Rng(opts_.seed * 0x9e3779b97f4a7c15ull + index + 1);
  c->lock = opts_.locks > 0 ? static_cast<int>(index % static_cast<std::uint64_t>(opts_.locks))
                            : 0;
  Client* raw = c.get();
  demux.on_completion(qpn, [this, raw](const RdmaCompletion& done) {
    on_completion(*raw, done);
  });
  clients_.push_back(std::move(c));
}

void LockTableWorkload::start() {
  for (auto& c : clients_) schedule_think(*c);
}

bool LockTableWorkload::past_stop(const Client& c) const {
  if (opts_.stop_at > 0 && c.host->sim().now() >= opts_.stop_at) return true;
  return opts_.cycles > 0 && c.cycles_done >= opts_.cycles;
}

void LockTableWorkload::schedule_think(Client& c) {
  if (past_stop(c)) {
    c.state = State::kStopped;
    return;
  }
  c.state = State::kThinking;
  // Uniform in [0.5, 1.5] x mean, NOT exponential: the bounded draw bounds a
  // cycle-limited client's finish time, which the benches' drain checks
  // (and their cross-shard journal pins) depend on.
  const Time gap =
      static_cast<Time>(c.rng.uniform(0.5, 1.5) * static_cast<double>(opts_.think_mean)) + 1;
  c.host->sim().schedule_in(gap, [this, &c] { begin_cycle(c); });
}

void LockTableWorkload::begin_cycle(Client& c) {
  if (past_stop(c)) {
    c.state = State::kStopped;
    return;
  }
  auto& nic = c.host->rdma();
  switch (c.role) {
    case Role::kLocker:
      c.state = State::kAcquiring;
      c.attempt_start = c.host->sim().now();
      nic.post_cas(c.qpn, LockTableLayout::lock_addr(c.lock), /*compare=*/0, /*swap=*/1);
      break;
    case Role::kCounter:
      c.state = State::kCounting;
      nic.post_faa(c.qpn, LockTableLayout::kCounterAddr, 1);
      break;
    case Role::kReader:
      c.state = State::kReadVer1;
      nic.post_faa(c.qpn, LockTableLayout::version_addr(c.lock), 0);
      break;
  }
}

void LockTableWorkload::on_completion(Client& c, const RdmaCompletion& done) {
  auto& nic = c.host->rdma();
  switch (c.state) {
    case State::kAcquiring:
      if (done.atomic_orig == 0) {
        // Won the CAS: latency runs from the first attempt of this cycle.
        ++c.acquisitions;
        c.lock_latencies_us.add(
            to_microseconds(c.host->sim().now() - c.attempt_start));
        c.state = State::kWriteVer1;
        nic.post_faa(c.qpn, LockTableLayout::version_addr(c.lock), 1);
      } else {
        // Lost: back off, then retry the same CAS. The critical section the
        // winner is running is short, so the retry usually lands free.
        ++c.cas_failures;
        const Time backoff =
            static_cast<Time>(c.rng.exponential(static_cast<double>(opts_.backoff_mean))) + 1;
        c.host->sim().schedule_in(backoff, [this, &c] {
          if (c.state != State::kAcquiring) return;
          c.host->rdma().post_cas(c.qpn, LockTableLayout::lock_addr(c.lock), 0, 1);
        });
      }
      break;
    case State::kWriteVer1:
      c.state = State::kWriteA;
      nic.post_faa(c.qpn, LockTableLayout::data_a_addr(c.lock), 1);
      break;
    case State::kWriteA:
      c.state = State::kWriteB;
      nic.post_faa(c.qpn, LockTableLayout::data_b_addr(c.lock), 1);
      break;
    case State::kWriteB:
      c.state = State::kWriteVer2;
      nic.post_faa(c.qpn, LockTableLayout::version_addr(c.lock), 1);
      break;
    case State::kWriteVer2:
      // Even past stop_at, the holder must release so a drained run leaves
      // every lock free.
      c.state = State::kReleasing;
      nic.post_cas(c.qpn, LockTableLayout::lock_addr(c.lock), /*compare=*/1, /*swap=*/0);
      break;
    case State::kReleasing:
      ++c.releases;
      ++c.cycles_done;
      schedule_think(c);
      break;
    case State::kReadVer1:
      c.v1 = done.atomic_orig;
      c.state = State::kReadA;
      nic.post_faa(c.qpn, LockTableLayout::data_a_addr(c.lock), 0);
      break;
    case State::kReadA:
      c.a = done.atomic_orig;
      c.state = State::kReadB;
      nic.post_faa(c.qpn, LockTableLayout::data_b_addr(c.lock), 0);
      break;
    case State::kReadB:
      c.b = done.atomic_orig;
      c.state = State::kReadVer2;
      nic.post_faa(c.qpn, LockTableLayout::version_addr(c.lock), 0);
      break;
    case State::kReadVer2: {
      c.v2 = done.atomic_orig;
      ++c.reads;
      const bool torn = c.v1 != c.v2 || (c.v1 & 1) != 0 || c.a != c.b;
      if (torn) ++c.torn_reads;
      ++c.cycles_done;
      schedule_think(c);
      break;
    }
    case State::kCounting:
      ++c.counter_increments;
      ++c.cycles_done;
      schedule_think(c);
      break;
    case State::kThinking:
    case State::kStopped:
      // Completion for a verb this workload didn't post (or a stray late
      // completion after stop); ignore.
      break;
  }
}

std::int64_t LockTableWorkload::acquisitions() const {
  std::int64_t n = 0;
  for (const auto& c : clients_) n += c->acquisitions;
  return n;
}

std::int64_t LockTableWorkload::releases() const {
  std::int64_t n = 0;
  for (const auto& c : clients_) n += c->releases;
  return n;
}

std::int64_t LockTableWorkload::cas_failures() const {
  std::int64_t n = 0;
  for (const auto& c : clients_) n += c->cas_failures;
  return n;
}

std::int64_t LockTableWorkload::counter_increments() const {
  std::int64_t n = 0;
  for (const auto& c : clients_) n += c->counter_increments;
  return n;
}

std::int64_t LockTableWorkload::reads() const {
  std::int64_t n = 0;
  for (const auto& c : clients_) n += c->reads;
  return n;
}

std::int64_t LockTableWorkload::torn_reads() const {
  std::int64_t n = 0;
  for (const auto& c : clients_) n += c->torn_reads;
  return n;
}

std::int64_t LockTableWorkload::consistent_reads() const { return reads() - torn_reads(); }

std::int64_t LockTableWorkload::busy_clients() const {
  std::int64_t n = 0;
  for (const auto& c : clients_) {
    if (c->state != State::kThinking && c->state != State::kStopped) ++n;
  }
  return n;
}

PercentileSampler LockTableWorkload::lock_latencies_us() const {
  PercentileSampler all;
  for (const auto& c : clients_) all.merge(c->lock_latencies_us);
  return all;
}

}  // namespace rocelab
