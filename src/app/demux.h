// Per-host callback demultiplexers: the NIC and TCP stack expose single
// receive/completion callbacks; applications register per-QP / per-connection
// handlers here.
#pragma once

#include <functional>
#include <unordered_map>

#include "src/nic/host.h"
#include "src/tcp/tcp.h"

namespace rocelab {

class RdmaDemux {
 public:
  using RecvHandler = std::function<void(const RdmaRecv&)>;
  using CompletionHandler = std::function<void(const RdmaCompletion&)>;

  explicit RdmaDemux(Host& host) {
    host.rdma().set_recv_cb([this](const RdmaRecv& r) {
      if (auto it = recv_.find(r.qpn); it != recv_.end()) it->second(r);
    });
    host.rdma().set_completion_cb([this](const RdmaCompletion& c) {
      if (auto it = completion_.find(c.qpn); it != completion_.end()) it->second(c);
    });
  }

  void on_recv(std::uint32_t qpn, RecvHandler h) { recv_[qpn] = std::move(h); }
  void on_completion(std::uint32_t qpn, CompletionHandler h) { completion_[qpn] = std::move(h); }

 private:
  std::unordered_map<std::uint32_t, RecvHandler> recv_;
  std::unordered_map<std::uint32_t, CompletionHandler> completion_;
};

class TcpDemux {
 public:
  using RecvHandler = std::function<void(const TcpRecv&)>;

  explicit TcpDemux(TcpStack& stack) {
    stack.set_recv_cb([this](const TcpRecv& r) {
      if (auto it = recv_.find(r.conn); it != recv_.end()) it->second(r);
    });
  }

  void on_recv(TcpStack::ConnId conn, RecvHandler h) { recv_[conn] = std::move(h); }

 private:
  std::unordered_map<TcpStack::ConnId, RecvHandler> recv_;
};

}  // namespace rocelab
