// PingmeshGrid: the full NxN RDMA Pingmesh of §5.3/§6 — one prober per
// host, one dedicated QP pair per *ordered* host pair. Because request and
// response flows of a pair carry different UDP source ports (and each
// direction of every link is an independent EgressPort), the resulting
// reachability/latency matrix is genuinely directional: a one-way blackhole
// shows up as an asymmetric matrix, which is the §6 tell that separates
// "host down" from "one direction of one path is gone".
//
// At fleet scale the full N×N mesh is O(N²) QPs; `sample_per_podset` keeps
// the production shape instead — every host probes only k representative
// hosts per podset (§5.3's latency-to-every-rack guarantee at O(N·k·P)
// cost). With a MetricRegistry attached the grid exports per-source rollup
// counters so RegistrySampler channels can compute per-pod / per-tier /
// fleet SLA percentiles with plain MetricSelection globs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/app/traffic.h"

namespace rocelab {

class MetricRegistry;

class PingmeshGrid {
 public:
  struct Options {
    RdmaPingmesh::Options probe;  // per-prober interval/timeout/bytes
    QpConfig qp;                  // config for every probe QP
    /// cell loss fraction above which reachable() reports false.
    double unreachable_loss = 0.5;
    /// 0 = full N×N mesh. k > 0: each host probes only the first k hosts
    /// (by construction order, so the pair set is deterministic) of every
    /// podset — the paper's "a few representative servers per rack" scale
    /// knob. Unprobed pairs read as reachable with zero samples.
    int sample_per_podset = 0;
    /// When set, per-source rollups are registered as
    /// pingmesh/<host>/{sent,failed,rtt_us} (rtt_us is a gauge holding the
    /// last successful RTT) for RegistrySampler SLA channels.
    MetricRegistry* registry = nullptr;
  };

  /// One demux per host, same order as `hosts` (the grid shares the hosts'
  /// existing demuxes rather than clobbering their NIC callbacks).
  PingmeshGrid(std::vector<Host*> hosts, std::vector<RdmaDemux*> demuxes, Options opts);
  ~PingmeshGrid();
  PingmeshGrid(const PingmeshGrid&) = delete;
  PingmeshGrid& operator=(const PingmeshGrid&) = delete;
  void start();
  void stop();

  struct Cell {
    std::int64_t sent = 0;
    std::int64_t failed = 0;
    double rtt_sum_us = 0.0;
    std::int64_t rtt_samples = 0;
    [[nodiscard]] double loss_rate() const {
      return sent == 0 ? 0.0 : static_cast<double>(failed) / static_cast<double>(sent);
    }
    [[nodiscard]] double mean_rtt_us() const {
      return rtt_samples == 0 ? 0.0 : rtt_sum_us / static_cast<double>(rtt_samples);
    }
  };

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] const Cell& cell(int src, int dst) const { return cells_[idx(src, dst)]; }
  /// Does this ordered pair carry probes? Always true in full-mesh mode;
  /// under sample_per_podset only pairs whose dst is a representative.
  [[nodiscard]] bool probed(int src, int dst) const {
    return src != dst && paired_[idx(src, dst)] != 0;
  }
  [[nodiscard]] std::int64_t pairs_probed() const { return pairs_probed_; }
  /// Podset index parsed from a ClosFabric host name ("srv-1-0-2" -> 1;
  /// unparsable -> -1).
  [[nodiscard]] static int podset_of(const std::string& name);
  /// src->dst counts as reachable while probes are getting through and the
  /// probing QP has not wedged (a blackholed QP exhausts its retries and
  /// errors out — that *is* the unreachability signal).
  [[nodiscard]] bool reachable(int src, int dst) const;
  /// True iff some ordered pair disagrees with its mirror — the asymmetric-
  /// partition signature.
  [[nodiscard]] bool asymmetric() const;
  /// Loss-rate matrix, rows = source ("--" on the diagonal, "ERR" for a
  /// wedged probing QP).
  [[nodiscard]] std::string matrix_text() const;

  /// ECMP identities of a pair's two flows: the request (src-side QP) and
  /// response (dst-side echo QP) source ports — what trace_route and the
  /// GrayFailureLocalizer need to walk the actual paths.
  [[nodiscard]] std::uint16_t probe_sport(int src, int dst) const;
  [[nodiscard]] std::uint16_t echo_sport(int src, int dst) const;
  [[nodiscard]] Host& host(int i) const { return *hosts_[static_cast<std::size_t>(i)]; }

  /// Fires once per probe outcome with the (src, dst) indices — feed this
  /// to GrayFailureLocalizer::observe.
  using OutcomeCb = std::function<void(int src, int dst, bool ok, Time rtt)>;
  void set_outcome_cb(OutcomeCb cb) { outcome_cb_ = std::move(cb); }

 private:
  [[nodiscard]] std::size_t idx(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  std::vector<Host*> hosts_;
  Options opts_;
  int n_ = 0;
  std::int64_t pairs_probed_ = 0;
  std::vector<Cell> cells_;
  std::vector<char> paired_;  // (src, dst) has a QP pair
  // Per-source registry rollups; sized once in the ctor so the addresses
  // handed to MetricRegistry stay stable.
  std::vector<std::int64_t> reg_sent_, reg_failed_, reg_rtt_us_;
  std::vector<std::uint32_t> fwd_qpn_;   // (src, dst) -> probing QPN on src
  std::vector<std::uint32_t> echo_qpn_;  // (src, dst) -> echo QPN on dst
  std::vector<std::unordered_map<std::uint32_t, int>> qpn_to_dst_;  // per src host
  std::vector<std::unique_ptr<RdmaPingmesh>> meshes_;               // one per src host
  std::vector<std::unique_ptr<RdmaEchoServer>> echoes_;
  OutcomeCb outcome_cb_;
};

}  // namespace rocelab
