#include "src/app/rdma_cm.h"

namespace rocelab {

namespace {
// Field packing for the metadata datagrams:
//   msg_id      = (type << 32) | service
//   read_length = (requester qpn << 32) | responder qpn   (REP)
//               = requester qpn                           (REQ)
constexpr std::uint64_t type_of(std::uint64_t msg_id) { return msg_id >> 32; }
constexpr std::uint32_t service_of(std::uint64_t msg_id) {
  return static_cast<std::uint32_t>(msg_id & 0xffffffffu);
}
}  // namespace

RdmaCm::RdmaCm(Host& host) : host_(host) {
  host_.register_udp_handler(kCmUdpPort, [this](Packet pkt) { handle(std::move(pkt)); });
  host_.rdma().add_qp_error_cb([this](std::uint32_t qpn) { on_qp_error(qpn); });
}

void RdmaCm::listen(std::uint32_t service, QpConfig qp_config, AcceptCb cb) {
  listeners_[service] = Listener{qp_config, std::move(cb)};
}

void RdmaCm::connect(Ipv4Addr peer, std::uint32_t service, QpConfig qp_config, ConnectCb cb,
                     Time retry_interval) {
  const std::uint32_t local_qpn = host_.rdma().create_qp(qp_config);
  const std::uint64_t token = next_token_++;
  pending_[token] =
      PendingConnect{peer, service, local_qpn, std::move(cb), retry_interval, 0, false};
  active_[local_qpn] = Established{peer, service, qp_config, pending_[token].cb, retry_interval};
  retry(token);
}

void RdmaCm::retry(std::uint64_t token) {
  auto it = pending_.find(token);
  if (it == pending_.end() || it->second.done) return;
  PendingConnect& pc = it->second;
  ++requests_sent_;
  send_msg(pc.peer, MsgType::kReq, pc.service, pc.local_qpn);
  // Exponential backoff: double the gap per unanswered REQ, capped so a
  // long peer outage does not push the next attempt arbitrarily far out.
  Time gap = pc.retry_interval;
  for (int i = 0; i < pc.attempts && gap < pc.retry_interval * kMaxBackoffFactor; ++i) gap *= 2;
  if (gap > pc.retry_interval * kMaxBackoffFactor) gap = pc.retry_interval * kMaxBackoffFactor;
  ++pc.attempts;
  host_.sim().schedule_in(gap, [this, token] { retry(token); });
}

void RdmaCm::on_qp_error(std::uint32_t qpn) {
  if (!auto_reconnect_) return;
  auto it = active_.find(qpn);
  if (it == active_.end()) return;  // not a CM-managed active-side QP
  const Established rec = it->second;
  active_.erase(it);
  ++reconnects_;
  // The errored QP is reset and abandoned; a fresh connect() runs the full
  // REQ/REP handshake (with backoff) and hands the application the new QPN.
  // The passive side sees a new requester QPN, so idempotence does not
  // short-circuit it into the dead pairing.
  host_.rdma().reset_qp(qpn);
  connect(rec.peer, rec.service, rec.qp_config, rec.cb, rec.retry_interval);
}

void RdmaCm::send_msg(Ipv4Addr to, MsgType type, std::uint32_t service, std::uint32_t qpn) {
  Packet pkt;
  pkt.kind = PacketKind::kRaw;
  pkt.payload_bytes = 64;  // CM datagrams are small control messages
  pkt.frame_bytes = kEthHeaderBytes + kIpv4HeaderBytes + kUdpHeaderBytes + 64 + kEthFcsBytes;
  Ipv4Header ip;
  ip.src = host_.ip();
  ip.dst = to;
  ip.dscp = 1;  // lossy management class
  ip.id = host_.next_ip_id();
  pkt.ip = ip;
  // The source port rotates per datagram so retries re-hash onto different
  // ECMP paths — a REQ stuck behind a blackholed link escapes on the next
  // attempt instead of hashing into the same hole forever.
  const auto sport = static_cast<std::uint16_t>(kCmUdpPort + 1 + (next_sport_++ % 1024));
  pkt.udp = UdpHeader{sport, kCmUdpPort, 0};
  pkt.priority = 1;
  pkt.msg_id = (static_cast<std::uint64_t>(type) << 32) | service;
  pkt.read_length = static_cast<std::int64_t>(qpn);
  pkt.created_at = host_.sim().now();
  host_.send_frame(std::move(pkt));
}

void RdmaCm::handle(Packet pkt) {
  if (!pkt.ip) return;
  const auto type = static_cast<MsgType>(type_of(pkt.msg_id));
  const std::uint32_t service = service_of(pkt.msg_id);

  if (type == MsgType::kReq) {
    auto lit = listeners_.find(service);
    if (lit == listeners_.end()) return;  // no such service: ignore
    const auto requester_qpn = static_cast<std::uint32_t>(pkt.read_length);
    // Idempotence: a retried REQ must not create a second QP.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(pkt.ip->src.value) << 24) | requester_qpn;
    std::uint32_t local_qpn;
    if (auto eit = established_.find(key); eit != established_.end()) {
      local_qpn = eit->second;
    } else {
      local_qpn = host_.rdma().create_qp(lit->second.qp_config);
      host_.rdma().connect_qp(local_qpn, pkt.ip->src, requester_qpn);
      established_[key] = local_qpn;
      ++accepted_;
      if (lit->second.cb) lit->second.cb(local_qpn);
    }
    // REP carries both QPNs so the requester can match its pending entry.
    Packet rep;
    rep.kind = PacketKind::kRaw;
    rep.payload_bytes = 64;
    rep.frame_bytes = kEthHeaderBytes + kIpv4HeaderBytes + kUdpHeaderBytes + 64 + kEthFcsBytes;
    Ipv4Header ip;
    ip.src = host_.ip();
    ip.dst = pkt.ip->src;
    ip.dscp = 1;
    ip.id = host_.next_ip_id();
    rep.ip = ip;
    rep.udp = UdpHeader{kCmUdpPort, kCmUdpPort, 0};
    rep.priority = 1;
    rep.msg_id = (static_cast<std::uint64_t>(MsgType::kRep) << 32) | service;
    rep.read_length = (static_cast<std::int64_t>(requester_qpn) << 32) |
                      static_cast<std::int64_t>(local_qpn);
    rep.created_at = host_.sim().now();
    host_.send_frame(std::move(rep));
    return;
  }

  if (type == MsgType::kRep) {
    const auto requester_qpn = static_cast<std::uint32_t>(pkt.read_length >> 32);
    const auto responder_qpn = static_cast<std::uint32_t>(pkt.read_length & 0xffffffff);
    for (auto& [token, pc] : pending_) {
      (void)token;
      if (pc.done || pc.local_qpn != requester_qpn || pc.service != service) continue;
      pc.done = true;
      host_.rdma().connect_qp(pc.local_qpn, pkt.ip->src, responder_qpn);
      if (pc.cb) pc.cb(pc.local_qpn);
      return;
    }
  }
}

}  // namespace rocelab
