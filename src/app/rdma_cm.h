// RDMA connection management: out-of-band QP establishment over UDP
// datagrams, in the spirit of the RDMA CM. Production RoCEv2 deployments
// (§5.1: "users specify which type of traffic they would like to put into
// PFC protection ... based on the destination transport port") establish
// queue pairs through an exchange like this rather than the in-process
// shortcut `connect_qp_pair` the tests use.
//
// Protocol (datagrams on UDP port 4790):
//   REQ {service, requester qpn}  ->  listener creates a QP, connects it,
//   REP {service, responder qpn}  <-  requester connects its side, done.
// REQs are retransmitted until a REP arrives (the fabric may drop raw
// datagrams under congestion: they are lossy-class traffic).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/nic/host.h"

namespace rocelab {

class RdmaCm {
 public:
  /// Datagrams for connection management ride this UDP destination port
  /// (one below RoCEv2's 4791).
  static constexpr std::uint16_t kCmUdpPort = 4790;

  /// Fires on the active side when the QP is connected and ready.
  using ConnectCb = std::function<void(std::uint32_t qpn)>;
  /// Fires on the passive side for each accepted connection.
  using AcceptCb = std::function<void(std::uint32_t qpn)>;

  explicit RdmaCm(Host& host);

  /// Passive side: accept connection requests for `service`, creating QPs
  /// with `qp_config`.
  void listen(std::uint32_t service, QpConfig qp_config, AcceptCb cb);

  /// Active side: connect to `service` at `peer`. Retries the request
  /// every `retry_interval` until the reply arrives.
  void connect(Ipv4Addr peer, std::uint32_t service, QpConfig qp_config, ConnectCb cb,
               Time retry_interval = milliseconds(1));

  [[nodiscard]] std::int64_t requests_sent() const { return requests_sent_; }
  [[nodiscard]] std::int64_t connections_accepted() const { return accepted_; }

 private:
  enum class MsgType : std::uint64_t { kReq = 1, kRep = 2 };
  struct Listener {
    QpConfig qp_config;
    AcceptCb cb;
  };
  struct PendingConnect {
    Ipv4Addr peer{};
    std::uint32_t service = 0;
    std::uint32_t local_qpn = 0;
    ConnectCb cb;
    Time retry_interval = 0;
    bool done = false;
  };

  void handle(Packet pkt);
  void send_msg(Ipv4Addr to, MsgType type, std::uint32_t service, std::uint32_t qpn);
  void retry(std::uint64_t token);

  Host& host_;
  std::unordered_map<std::uint32_t, Listener> listeners_;          // by service
  std::unordered_map<std::uint64_t, PendingConnect> pending_;      // by token
  // Idempotence on the passive side: (peer ip, requester qpn) -> local qpn.
  std::unordered_map<std::uint64_t, std::uint32_t> established_;
  std::uint64_t next_token_ = 1;
  std::int64_t requests_sent_ = 0;
  std::int64_t accepted_ = 0;
};

}  // namespace rocelab
