// RDMA connection management: out-of-band QP establishment over UDP
// datagrams, in the spirit of the RDMA CM. Production RoCEv2 deployments
// (§5.1: "users specify which type of traffic they would like to put into
// PFC protection ... based on the destination transport port") establish
// queue pairs through an exchange like this rather than the in-process
// shortcut `connect_qp_pair` the tests use.
//
// Protocol (datagrams on UDP port 4790):
//   REQ {service, requester qpn}  ->  listener creates a QP, connects it,
//   REP {service, responder qpn}  <-  requester connects its side, done.
// REQs are retransmitted until a REP arrives (the fabric may drop raw
// datagrams under congestion: they are lossy-class traffic).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/nic/host.h"

namespace rocelab {

class RdmaCm {
 public:
  /// Datagrams for connection management ride this UDP destination port
  /// (one below RoCEv2's 4791).
  static constexpr std::uint16_t kCmUdpPort = 4790;

  /// Fires on the active side when the QP is connected and ready.
  using ConnectCb = std::function<void(std::uint32_t qpn)>;
  /// Fires on the passive side for each accepted connection.
  using AcceptCb = std::function<void(std::uint32_t qpn)>;

  explicit RdmaCm(Host& host);

  /// Passive side: accept connection requests for `service`, creating QPs
  /// with `qp_config`.
  void listen(std::uint32_t service, QpConfig qp_config, AcceptCb cb);

  /// Active side: connect to `service` at `peer`. The REQ is retried with
  /// exponential backoff, starting at `retry_interval` and doubling up to
  /// `kMaxBackoffFactor`× — a connect outlives even a multi-second peer
  /// outage without flooding the management class.
  void connect(Ipv4Addr peer, std::uint32_t service, QpConfig qp_config, ConnectCb cb,
               Time retry_interval = milliseconds(1));

  /// When enabled (the default), a CM-established QP that hits retry
  /// exhaustion (QpConfig::retry_limit) is torn down and re-established
  /// from scratch: fresh QP, REQ/REP handshake with backoff, and the
  /// original ConnectCb fires again with the new QPN once the peer is back.
  /// Requires retry_limit > 0 on the QP config, else QPs never error.
  void set_auto_reconnect(bool on) { auto_reconnect_ = on; }

  [[nodiscard]] std::int64_t requests_sent() const { return requests_sent_; }
  [[nodiscard]] std::int64_t connections_accepted() const { return accepted_; }
  /// Established connections re-created after a QP error.
  [[nodiscard]] std::int64_t reconnects() const { return reconnects_; }

  /// REQ retry backoff cap, as a multiple of the initial retry interval.
  static constexpr int kMaxBackoffFactor = 64;

 private:
  enum class MsgType : std::uint64_t { kReq = 1, kRep = 2 };
  struct Listener {
    QpConfig qp_config;
    AcceptCb cb;
  };
  struct PendingConnect {
    Ipv4Addr peer{};
    std::uint32_t service = 0;
    std::uint32_t local_qpn = 0;
    ConnectCb cb;
    Time retry_interval = 0;  // initial interval; doubles per unanswered REQ
    int attempts = 0;
    bool done = false;
  };
  /// Book-keeping for a live active-side connection so it can be rebuilt.
  struct Established {
    Ipv4Addr peer{};
    std::uint32_t service = 0;
    QpConfig qp_config;
    ConnectCb cb;
    Time retry_interval = 0;
  };

  void handle(Packet pkt);
  void send_msg(Ipv4Addr to, MsgType type, std::uint32_t service, std::uint32_t qpn);
  void retry(std::uint64_t token);
  void on_qp_error(std::uint32_t qpn);

  Host& host_;
  std::unordered_map<std::uint32_t, Listener> listeners_;          // by service
  std::unordered_map<std::uint64_t, PendingConnect> pending_;      // by token
  // Idempotence on the passive side: (peer ip, requester qpn) -> local qpn.
  std::unordered_map<std::uint64_t, std::uint32_t> established_;
  // Active-side connections eligible for auto-reconnect, by local qpn.
  std::unordered_map<std::uint32_t, Established> active_;
  bool auto_reconnect_ = true;
  std::uint64_t next_token_ = 1;
  std::uint64_t next_sport_ = 0;  // rotating source port for path diversity
  std::int64_t requests_sent_ = 0;
  std::int64_t accepted_ = 0;
  std::int64_t reconnects_ = 0;
};

}  // namespace rocelab
