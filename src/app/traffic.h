// Traffic generators: a stream source that keeps a QP saturated with
// fixed-size messages (the "send as fast as possible" workloads of §4.1 and
// Fig. 7), echo servers, incast request/response clients (the many-to-one
// pattern of §5.4 and §6.2), and RDMA Pingmesh (§5.3).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/app/demux.h"
#include "src/common/stats.h"

namespace rocelab {

enum class RdmaVerb { kSend, kWrite, kRead };

/// Posts `message_bytes` messages back-to-back, keeping `max_outstanding`
/// in flight, exactly like the §4.1 livelock experiment senders.
class RdmaStreamSource {
 public:
  struct Options {
    std::int64_t message_bytes = 4 * kMiB;
    int max_outstanding = 1;
    RdmaVerb verb = RdmaVerb::kSend;
    std::int64_t stop_after_messages = -1;  // -1 => run forever
  };

  RdmaStreamSource(Host& host, RdmaDemux& demux, std::uint32_t qpn, Options opts);
  void start();

  [[nodiscard]] std::int64_t completed_messages() const { return completed_; }
  [[nodiscard]] std::int64_t completed_bytes() const { return completed_bytes_; }
  [[nodiscard]] const PercentileSampler& latencies_us() const { return latencies_us_; }
  /// Application goodput since start(), bits/second.
  [[nodiscard]] double goodput_bps() const;

 private:
  void pump();

  Host& host_;
  std::uint32_t qpn_;
  Options opts_;
  std::int64_t posted_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t completed_bytes_ = 0;
  int outstanding_ = 0;
  Time started_at_ = 0;
  bool started_ = false;
  std::uint64_t next_msg_id_;
  PercentileSampler latencies_us_;
};

/// Responds to every received message on a QP with `response_bytes`
/// (echoing the msg_id). response_bytes == 0 => pure sink.
class RdmaEchoServer {
 public:
  RdmaEchoServer(Host& host, RdmaDemux& demux, std::uint32_t qpn, std::int64_t response_bytes);

  [[nodiscard]] std::int64_t requests_served() const { return served_; }

 private:
  std::int64_t served_ = 0;
};

/// The incast ("chatty server") client: each query fans a small request out
/// to every QP; the query completes when all responses arrive. Queries are
/// issued on a Poisson process (open loop) or back-to-back (closed loop,
/// mean_interval == 0).
class RdmaIncastClient {
 public:
  struct Options {
    std::int64_t request_bytes = 512;
    Time mean_interval = microseconds(500);  // 0 => closed loop
    std::int64_t stop_after_queries = -1;
  };

  RdmaIncastClient(Host& host, RdmaDemux& demux, std::vector<std::uint32_t> qpns, Options opts);
  void start();

  [[nodiscard]] const PercentileSampler& query_latencies_us() const { return latencies_us_; }
  [[nodiscard]] std::int64_t queries_completed() const { return completed_; }

 private:
  void issue_query();
  void schedule_next();

  Host& host_;
  std::vector<std::uint32_t> qpns_;
  Options opts_;
  std::uint64_t next_query_ = 1;
  std::int64_t completed_ = 0;
  std::int64_t issued_ = 0;
  struct Pending {
    int remaining;
    Time started;
  };
  std::unordered_map<std::uint64_t, Pending> pending_;
  PercentileSampler latencies_us_;
};

/// RDMA Pingmesh (§5.3): periodic 512-byte probes to a set of peers,
/// logging RTT or a timeout error. Per-peer accounting feeds the fault
/// plane's FailureDetector: a probe callback fires per outcome with the
/// probed QPN, so an observer can track consecutive losses to one peer
/// while the mesh as a whole stays healthy.
class RdmaPingmesh {
 public:
  struct Options {
    std::int64_t probe_bytes = 512;
    Time interval = milliseconds(1);
    Time timeout = milliseconds(100);
  };

  /// Per-peer (per-QP) probe health, for detector consumption.
  struct PeerStats {
    std::int64_t sent = 0;
    std::int64_t failed = 0;
    int consecutive_failed = 0;  // resets on each success
  };

  /// ok=true carries the measured RTT; ok=false means the probe timed out
  /// (rtt is the configured timeout in that case).
  using ProbeCb = std::function<void(std::uint32_t qpn, bool ok, Time rtt)>;

  RdmaPingmesh(Host& host, RdmaDemux& demux, std::vector<std::uint32_t> qpns, Options opts);
  void start();
  void stop() { running_ = false; }
  void set_probe_cb(ProbeCb cb) { probe_cb_ = std::move(cb); }

  [[nodiscard]] const PercentileSampler& rtt_us() const { return rtt_us_; }
  [[nodiscard]] std::int64_t probes_sent() const { return sent_; }
  [[nodiscard]] std::int64_t probes_failed() const { return failed_; }
  [[nodiscard]] const PeerStats& peer_stats(std::uint32_t qpn) const {
    static const PeerStats kEmpty{};
    auto it = peer_stats_.find(qpn);
    return it == peer_stats_.end() ? kEmpty : it->second;
  }
  /// Begin a fresh RTT sample window (e.g. "before" vs "during" in Fig. 8).
  void reset_samples() { rtt_us_.clear(); }

 private:
  struct Outstanding {
    Time sent_at = 0;
    std::uint32_t qpn = 0;
  };
  void tick();
  void record(std::uint32_t qpn, bool ok, Time rtt);

  Host& host_;
  std::vector<std::uint32_t> qpns_;
  Options opts_;
  bool running_ = false;
  std::size_t next_peer_ = 0;
  std::uint64_t next_probe_ = 1;
  std::int64_t sent_ = 0;
  std::int64_t failed_ = 0;
  std::unordered_map<std::uint64_t, Outstanding> outstanding_;
  std::unordered_map<std::uint32_t, PeerStats> peer_stats_;
  ProbeCb probe_cb_;
  PercentileSampler rtt_us_;
};

// --- TCP counterparts (Fig. 6 baseline) ---------------------------------------

class TcpEchoServer {
 public:
  TcpEchoServer(TcpStack& stack, TcpDemux& demux, TcpStack::ConnId conn,
                std::int64_t response_bytes);

  [[nodiscard]] std::int64_t requests_served() const { return served_; }

 private:
  std::int64_t served_ = 0;
};

class TcpIncastClient {
 public:
  struct Options {
    std::int64_t request_bytes = 512;
    Time mean_interval = microseconds(500);
    std::int64_t stop_after_queries = -1;
  };

  TcpIncastClient(TcpStack& stack, TcpDemux& demux, std::vector<TcpStack::ConnId> conns,
                  Options opts);
  void start();

  [[nodiscard]] const PercentileSampler& query_latencies_us() const { return latencies_us_; }
  [[nodiscard]] std::int64_t queries_completed() const { return completed_; }

 private:
  void issue_query();
  void schedule_next();

  TcpStack& stack_;
  std::vector<TcpStack::ConnId> conns_;
  Options opts_;
  std::uint64_t next_query_ = 1;
  std::int64_t completed_ = 0;
  std::int64_t issued_ = 0;
  struct Pending {
    int remaining;
    Time started;
  };
  std::unordered_map<std::uint64_t, Pending> pending_;
  PercentileSampler latencies_us_;
};

}  // namespace rocelab
