#include "src/app/traffic.h"

namespace rocelab {

// --- RdmaStreamSource ---------------------------------------------------------

RdmaStreamSource::RdmaStreamSource(Host& host, RdmaDemux& demux, std::uint32_t qpn,
                                   Options opts)
    : host_(host), qpn_(qpn), opts_(opts),
      next_msg_id_((static_cast<std::uint64_t>(host.id()) << 40) |
                   (static_cast<std::uint64_t>(qpn) << 20)) {
  demux.on_completion(qpn_, [this](const RdmaCompletion& c) {
    ++completed_;
    completed_bytes_ += c.bytes;
    latencies_us_.add(to_microseconds(c.completed_at - c.posted_at));
    --outstanding_;
    pump();
  });
}

void RdmaStreamSource::start() {
  started_ = true;
  started_at_ = host_.sim().now();
  pump();
}

void RdmaStreamSource::pump() {
  if (!started_) return;
  while (outstanding_ < opts_.max_outstanding &&
         (opts_.stop_after_messages < 0 || posted_ < opts_.stop_after_messages)) {
    const std::uint64_t id = next_msg_id_++;
    switch (opts_.verb) {
      case RdmaVerb::kSend:
        host_.rdma().post_send(qpn_, opts_.message_bytes, id);
        break;
      case RdmaVerb::kWrite:
        host_.rdma().post_write(qpn_, opts_.message_bytes, id);
        break;
      case RdmaVerb::kRead:
        host_.rdma().post_read(qpn_, opts_.message_bytes, id);
        break;
    }
    ++posted_;
    ++outstanding_;
  }
}

double RdmaStreamSource::goodput_bps() const {
  const Time elapsed = host_.sim().now() - started_at_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(completed_bytes_) * 8.0 / to_seconds(elapsed);
}

// --- RdmaEchoServer ------------------------------------------------------------

RdmaEchoServer::RdmaEchoServer(Host& host, RdmaDemux& demux, std::uint32_t qpn,
                               std::int64_t response_bytes) {
  demux.on_recv(qpn, [this, &host, qpn, response_bytes](const RdmaRecv& r) {
    ++served_;
    if (response_bytes > 0) host.rdma().post_send(qpn, response_bytes, r.msg_id);
  });
}

// --- RdmaIncastClient -------------------------------------------------------------

RdmaIncastClient::RdmaIncastClient(Host& host, RdmaDemux& demux,
                                   std::vector<std::uint32_t> qpns, Options opts)
    : host_(host), qpns_(std::move(qpns)), opts_(opts) {
  for (auto qpn : qpns_) {
    demux.on_recv(qpn, [this](const RdmaRecv& r) {
      auto it = pending_.find(r.msg_id);
      if (it == pending_.end()) return;
      if (--it->second.remaining == 0) {
        latencies_us_.add(to_microseconds(host_.sim().now() - it->second.started));
        pending_.erase(it);
        ++completed_;
        if (opts_.mean_interval == 0) issue_query();  // closed loop
      }
    });
  }
}

void RdmaIncastClient::start() {
  if (opts_.mean_interval == 0) {
    issue_query();
  } else {
    schedule_next();
  }
}

void RdmaIncastClient::schedule_next() {
  if (opts_.stop_after_queries >= 0 && issued_ >= opts_.stop_after_queries) return;
  const Time gap =
      static_cast<Time>(host_.rng().exponential(static_cast<double>(opts_.mean_interval)));
  host_.sim().schedule_in(gap, [this] {
    issue_query();
    schedule_next();
  });
}

void RdmaIncastClient::issue_query() {
  if (opts_.stop_after_queries >= 0 && issued_ >= opts_.stop_after_queries) return;
  ++issued_;
  const std::uint64_t id =
      (static_cast<std::uint64_t>(host_.id()) << 40) | next_query_++;
  pending_[id] = Pending{static_cast<int>(qpns_.size()), host_.sim().now()};
  for (auto qpn : qpns_) host_.rdma().post_send(qpn, opts_.request_bytes, id);
}

// --- RdmaPingmesh ------------------------------------------------------------------

RdmaPingmesh::RdmaPingmesh(Host& host, RdmaDemux& demux, std::vector<std::uint32_t> qpns,
                           Options opts)
    : host_(host), qpns_(std::move(qpns)), opts_(opts) {
  for (auto qpn : qpns_) {
    demux.on_recv(qpn, [this](const RdmaRecv& r) {
      auto it = outstanding_.find(r.msg_id);
      if (it == outstanding_.end()) return;
      const Time rtt = host_.sim().now() - it->second.sent_at;
      const std::uint32_t probed = it->second.qpn;
      outstanding_.erase(it);
      rtt_us_.add(to_microseconds(rtt));
      record(probed, true, rtt);
    });
  }
}

void RdmaPingmesh::start() {
  running_ = true;
  tick();
}

void RdmaPingmesh::record(std::uint32_t qpn, bool ok, Time rtt) {
  auto& ps = peer_stats_[qpn];
  if (ok) {
    ps.consecutive_failed = 0;
  } else {
    ++failed_;
    ++ps.failed;
    ++ps.consecutive_failed;
  }
  if (probe_cb_) probe_cb_(qpn, ok, rtt);
}

void RdmaPingmesh::tick() {
  if (!running_ || qpns_.empty()) return;
  const std::uint32_t qpn = qpns_[next_peer_];
  next_peer_ = (next_peer_ + 1) % qpns_.size();
  ++sent_;
  ++peer_stats_[qpn].sent;
  if (host_.rdma().qp_errored(qpn)) {
    // The transport already declared this peer dead; probing a wedged QP
    // would throw, so score the probe lost without touching the wire.
    record(qpn, false, opts_.timeout);
  } else {
    const std::uint64_t id =
        (static_cast<std::uint64_t>(host_.id()) << 40) | (0x1ull << 36) | next_probe_++;
    outstanding_[id] = Outstanding{host_.sim().now(), qpn};
    host_.rdma().post_send(qpn, opts_.probe_bytes, id);
    host_.sim().schedule_in(opts_.timeout, [this, id, qpn] {
      if (outstanding_.erase(id) > 0) record(qpn, false, opts_.timeout);
    });
  }
  host_.sim().schedule_in(opts_.interval, [this] { tick(); });
}

// --- TCP counterparts ----------------------------------------------------------------

TcpEchoServer::TcpEchoServer(TcpStack& stack, TcpDemux& demux, TcpStack::ConnId conn,
                             std::int64_t response_bytes) {
  demux.on_recv(conn, [this, &stack, conn, response_bytes](const TcpRecv& r) {
    ++served_;
    if (response_bytes > 0) stack.send_message(conn, response_bytes, r.msg_id);
  });
}

TcpIncastClient::TcpIncastClient(TcpStack& stack, TcpDemux& demux,
                                 std::vector<TcpStack::ConnId> conns, Options opts)
    : stack_(stack), conns_(std::move(conns)), opts_(opts) {
  for (auto conn : conns_) {
    demux.on_recv(conn, [this](const TcpRecv& r) {
      auto it = pending_.find(r.msg_id);
      if (it == pending_.end()) return;
      if (--it->second.remaining == 0) {
        latencies_us_.add(to_microseconds(stack_.host().sim().now() - it->second.started));
        pending_.erase(it);
        ++completed_;
        if (opts_.mean_interval == 0) issue_query();
      }
    });
  }
}

void TcpIncastClient::start() {
  if (opts_.mean_interval == 0) {
    issue_query();
  } else {
    schedule_next();
  }
}

void TcpIncastClient::schedule_next() {
  if (opts_.stop_after_queries >= 0 && issued_ >= opts_.stop_after_queries) return;
  const Time gap = static_cast<Time>(
      stack_.host().rng().exponential(static_cast<double>(opts_.mean_interval)));
  stack_.host().sim().schedule_in(gap, [this] {
    issue_query();
    schedule_next();
  });
}

void TcpIncastClient::issue_query() {
  if (opts_.stop_after_queries >= 0 && issued_ >= opts_.stop_after_queries) return;
  ++issued_;
  const std::uint64_t id =
      (static_cast<std::uint64_t>(stack_.host().id()) << 40) | next_query_++;
  pending_[id] = Pending{static_cast<int>(conns_.size()), stack_.host().sim().now()};
  for (auto conn : conns_) stack_.send_message(conn, opts_.request_bytes, id);
}

}  // namespace rocelab
