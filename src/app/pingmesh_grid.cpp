#include "src/app/pingmesh_grid.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

#include "src/monitor/metric_registry.h"
#include "src/nic/rdma_nic.h"

namespace rocelab {

int PingmeshGrid::podset_of(const std::string& name) {
  const auto a = name.find('-');
  if (a == std::string::npos) return -1;
  const auto b = name.find('-', a + 1);
  const std::string tok =
      name.substr(a + 1, b == std::string::npos ? std::string::npos : b - a - 1);
  if (tok.empty()) return -1;
  for (const char c : tok) {
    if (c < '0' || c > '9') return -1;
  }
  return std::atoi(tok.c_str());
}

PingmeshGrid::PingmeshGrid(std::vector<Host*> hosts, std::vector<RdmaDemux*> demuxes,
                           Options opts)
    : hosts_(std::move(hosts)), opts_(opts), n_(static_cast<int>(hosts_.size())) {
  if (demuxes.size() != hosts_.size()) {
    throw std::invalid_argument("PingmeshGrid: one demux per host required");
  }
  cells_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
  paired_.assign(cells_.size(), 0);
  fwd_qpn_.assign(cells_.size(), 0);
  echo_qpn_.assign(cells_.size(), 0);
  qpn_to_dst_.resize(hosts_.size());

  // Representative targets: the first sample_per_podset hosts of each
  // podset in construction order (full mesh when the knob is 0).
  std::vector<char> is_rep(hosts_.size(), 1);
  if (opts_.sample_per_podset > 0) {
    std::map<int, int> taken;
    for (std::size_t j = 0; j < hosts_.size(); ++j) {
      int& k = taken[podset_of(hosts_[j]->name())];
      is_rep[j] = k < opts_.sample_per_podset ? (++k, 1) : 0;
    }
  }

  if (opts_.registry != nullptr) {
    reg_sent_.assign(hosts_.size(), 0);
    reg_failed_.assign(hosts_.size(), 0);
    reg_rtt_us_.assign(hosts_.size(), 0);
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      const std::string prefix = "pingmesh/" + hosts_[i]->name();
      opts_.registry->add(this, prefix + "/sent", &reg_sent_[i]);
      opts_.registry->add(this, prefix + "/failed", &reg_failed_[i]);
      opts_.registry->add(this, prefix + "/rtt_us", &reg_rtt_us_[i], MetricKind::kGauge);
    }
  }

  // One dedicated QP pair per probed ordered (src, dst): the request and
  // response flows get their own UDP source ports, i.e. their own ECMP
  // paths.
  for (int i = 0; i < n_; ++i) {
    std::vector<std::uint32_t> probe_qpns;
    for (int j = 0; j < n_; ++j) {
      if (i == j || !is_rep[static_cast<std::size_t>(j)]) continue;
      paired_[idx(i, j)] = 1;
      ++pairs_probed_;
      auto [qf, qe] = connect_qp_pair(*hosts_[static_cast<std::size_t>(i)],
                                      *hosts_[static_cast<std::size_t>(j)], opts_.qp);
      fwd_qpn_[idx(i, j)] = qf;
      echo_qpn_[idx(i, j)] = qe;
      qpn_to_dst_[static_cast<std::size_t>(i)][qf] = j;
      probe_qpns.push_back(qf);
      echoes_.push_back(std::make_unique<RdmaEchoServer>(
          *hosts_[static_cast<std::size_t>(j)], *demuxes[static_cast<std::size_t>(j)], qe,
          opts_.probe.probe_bytes));
    }
    auto mesh = std::make_unique<RdmaPingmesh>(*hosts_[static_cast<std::size_t>(i)],
                                               *demuxes[static_cast<std::size_t>(i)],
                                               std::move(probe_qpns), opts_.probe);
    mesh->set_probe_cb([this, i](std::uint32_t qpn, bool ok, Time rtt) {
      const auto& map = qpn_to_dst_[static_cast<std::size_t>(i)];
      auto it = map.find(qpn);
      if (it == map.end()) return;
      Cell& c = cells_[idx(i, it->second)];
      ++c.sent;
      if (ok) {
        c.rtt_sum_us += static_cast<double>(rtt) / static_cast<double>(kMicrosecond);
        ++c.rtt_samples;
      } else {
        ++c.failed;
      }
      if (!reg_sent_.empty()) {
        ++reg_sent_[static_cast<std::size_t>(i)];
        if (ok) {
          reg_rtt_us_[static_cast<std::size_t>(i)] = rtt / kMicrosecond;
        } else {
          ++reg_failed_[static_cast<std::size_t>(i)];
        }
      }
      if (outcome_cb_) outcome_cb_(i, it->second, ok, rtt);
    });
    meshes_.push_back(std::move(mesh));
  }
}

PingmeshGrid::~PingmeshGrid() {
  if (opts_.registry != nullptr) opts_.registry->remove_owner(this);
}

void PingmeshGrid::start() {
  for (auto& m : meshes_) m->start();
}

void PingmeshGrid::stop() {
  for (auto& m : meshes_) m->stop();
}

bool PingmeshGrid::reachable(int src, int dst) const {
  if (src == dst) return true;
  if (paired_[idx(src, dst)] == 0) return true;  // unsampled pair: no evidence
  if (hosts_[static_cast<std::size_t>(src)]->rdma().qp_errored(fwd_qpn_[idx(src, dst)])) {
    return false;
  }
  const Cell& c = cells_[idx(src, dst)];
  if (c.sent == 0) return true;  // no evidence against it yet
  return c.loss_rate() < opts_.unreachable_loss;
}

bool PingmeshGrid::asymmetric() const {
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      if (reachable(i, j) != reachable(j, i)) return true;
    }
  }
  return false;
}

std::string PingmeshGrid::matrix_text() const {
  std::ostringstream os;
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      char buf[16];
      if (i == j) {
        std::snprintf(buf, sizeof buf, "   -- ");
      } else if (paired_[idx(i, j)] == 0) {
        std::snprintf(buf, sizeof buf, "    . ");
      } else if (hosts_[static_cast<std::size_t>(i)]->rdma().qp_errored(fwd_qpn_[idx(i, j)])) {
        std::snprintf(buf, sizeof buf, "  ERR ");
      } else {
        std::snprintf(buf, sizeof buf, "%5.2f ", cell(i, j).loss_rate());
      }
      os << buf;
    }
    os << '\n';
  }
  return os.str();
}

std::uint16_t PingmeshGrid::probe_sport(int src, int dst) const {
  return hosts_[static_cast<std::size_t>(src)]->rdma().qp_sport(fwd_qpn_[idx(src, dst)]);
}

std::uint16_t PingmeshGrid::echo_sport(int src, int dst) const {
  return hosts_[static_cast<std::size_t>(dst)]->rdma().qp_sport(echo_qpn_[idx(src, dst)]);
}

}  // namespace rocelab
