#include "src/app/pingmesh_grid.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "src/nic/rdma_nic.h"

namespace rocelab {

PingmeshGrid::PingmeshGrid(std::vector<Host*> hosts, std::vector<RdmaDemux*> demuxes,
                           Options opts)
    : hosts_(std::move(hosts)), opts_(opts), n_(static_cast<int>(hosts_.size())) {
  if (demuxes.size() != hosts_.size()) {
    throw std::invalid_argument("PingmeshGrid: one demux per host required");
  }
  cells_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
  fwd_qpn_.assign(cells_.size(), 0);
  echo_qpn_.assign(cells_.size(), 0);
  qpn_to_dst_.resize(hosts_.size());

  // One dedicated QP pair per ordered (src, dst): the request and response
  // flows get their own UDP source ports, i.e. their own ECMP paths.
  for (int i = 0; i < n_; ++i) {
    std::vector<std::uint32_t> probe_qpns;
    for (int j = 0; j < n_; ++j) {
      if (i == j) continue;
      auto [qf, qe] = connect_qp_pair(*hosts_[static_cast<std::size_t>(i)],
                                      *hosts_[static_cast<std::size_t>(j)], opts_.qp);
      fwd_qpn_[idx(i, j)] = qf;
      echo_qpn_[idx(i, j)] = qe;
      qpn_to_dst_[static_cast<std::size_t>(i)][qf] = j;
      probe_qpns.push_back(qf);
      echoes_.push_back(std::make_unique<RdmaEchoServer>(
          *hosts_[static_cast<std::size_t>(j)], *demuxes[static_cast<std::size_t>(j)], qe,
          opts_.probe.probe_bytes));
    }
    auto mesh = std::make_unique<RdmaPingmesh>(*hosts_[static_cast<std::size_t>(i)],
                                               *demuxes[static_cast<std::size_t>(i)],
                                               std::move(probe_qpns), opts_.probe);
    mesh->set_probe_cb([this, i](std::uint32_t qpn, bool ok, Time rtt) {
      const auto& map = qpn_to_dst_[static_cast<std::size_t>(i)];
      auto it = map.find(qpn);
      if (it == map.end()) return;
      Cell& c = cells_[idx(i, it->second)];
      ++c.sent;
      if (ok) {
        c.rtt_sum_us += static_cast<double>(rtt) / static_cast<double>(kMicrosecond);
        ++c.rtt_samples;
      } else {
        ++c.failed;
      }
      if (outcome_cb_) outcome_cb_(i, it->second, ok, rtt);
    });
    meshes_.push_back(std::move(mesh));
  }
}

void PingmeshGrid::start() {
  for (auto& m : meshes_) m->start();
}

void PingmeshGrid::stop() {
  for (auto& m : meshes_) m->stop();
}

bool PingmeshGrid::reachable(int src, int dst) const {
  if (src == dst) return true;
  if (hosts_[static_cast<std::size_t>(src)]->rdma().qp_errored(fwd_qpn_[idx(src, dst)])) {
    return false;
  }
  const Cell& c = cells_[idx(src, dst)];
  if (c.sent == 0) return true;  // no evidence against it yet
  return c.loss_rate() < opts_.unreachable_loss;
}

bool PingmeshGrid::asymmetric() const {
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      if (reachable(i, j) != reachable(j, i)) return true;
    }
  }
  return false;
}

std::string PingmeshGrid::matrix_text() const {
  std::ostringstream os;
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      char buf[16];
      if (i == j) {
        std::snprintf(buf, sizeof buf, "   -- ");
      } else if (hosts_[static_cast<std::size_t>(i)]->rdma().qp_errored(fwd_qpn_[idx(i, j)])) {
        std::snprintf(buf, sizeof buf, "  ERR ");
      } else {
        std::snprintf(buf, sizeof buf, "%5.2f ", cell(i, j).loss_rate());
      }
      os << buf;
    }
    os << '\n';
  }
  return os.str();
}

std::uint16_t PingmeshGrid::probe_sport(int src, int dst) const {
  return hosts_[static_cast<std::size_t>(src)]->rdma().qp_sport(fwd_qpn_[idx(src, dst)]);
}

std::uint16_t PingmeshGrid::echo_sport(int src, int dst) const {
  return hosts_[static_cast<std::size_t>(dst)]->rdma().qp_sport(echo_qpn_[idx(src, dst)]);
}

}  // namespace rocelab
