// Lock-table workload plane: one-sided synchronization against a single
// server's NIC memory using the atomic verbs (CAS/FAA). Models the
// distributed lock/counter services the paper's intra-DC customers run on
// RDMA: thousands of clients contending on a small table of spinlocks,
// shared counters bumped with FETCH_ADD, and optimistic (seqlock-style)
// readers that detect torn reads via version validation.
//
// Three client roles:
//  - kLocker:  think -> CAS(lock 0->1) spin (randomized backoff on failure)
//              -> seqlock critical section: FAA(ver,+1), FAA(a,+1),
//              FAA(b,+1), FAA(ver,+1) -> CAS(lock 1->0) release -> think.
//  - kCounter: FAA(counter,+1) in a paced closed loop. Exactly-once atomic
//              execution means the server's counter word must equal the
//              number of completed increments, even under loss.
//  - kReader:  optimistic read via FAA(+0) of ver, a, b, ver; the read is
//              torn when the versions differ, the first version is odd
//              (writer mid-section), or a != b.
//
// Every client's state lives with its owning host and is mutated only from
// that host's shard (completion callbacks and schedule_in closures), so the
// workload is safe under the threaded shard runner; aggregate accessors
// merge per-client totals and must only be called after the run drains.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/app/demux.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace rocelab {

/// Fixed remote-memory layout on the server. Each lock slot groups the
/// spinlock word, the seqlock version, and two data words an in-sync writer
/// keeps equal (a != b observed by a reader == torn read).
struct LockTableLayout {
  static constexpr std::uint64_t kCounterAddr = 0x100;
  static constexpr std::uint64_t kLockBase = 0x1000;
  static constexpr std::uint64_t kLockStride = 0x40;

  [[nodiscard]] static constexpr std::uint64_t lock_addr(int i) {
    return kLockBase + static_cast<std::uint64_t>(i) * kLockStride;
  }
  [[nodiscard]] static constexpr std::uint64_t version_addr(int i) { return lock_addr(i) + 8; }
  [[nodiscard]] static constexpr std::uint64_t data_a_addr(int i) { return lock_addr(i) + 16; }
  [[nodiscard]] static constexpr std::uint64_t data_b_addr(int i) { return lock_addr(i) + 24; }
};

class LockTableWorkload {
 public:
  enum class Role { kLocker, kCounter, kReader };

  struct Options {
    int locks = 16;                          // spinlock slots in the table
    /// Idle gap between cycles, drawn uniform in [0.5, 1.5] x mean — a
    /// bounded draw, so a cycle-limited client's finish time is bounded.
    Time think_mean = microseconds(50);
    Time backoff_mean = microseconds(20);    // randomized CAS-retry back-off
    std::uint64_t seed = 1;                  // base for per-client Rng seeds
    /// No new cycles start at/after this time; lockers mid-critical-section
    /// still finish (release) so a drained run leaves every lock free.
    /// 0 => run until the simulation stops.
    Time stop_at = 0;
    /// Each client stops after completing this many cycles (locker:
    /// acquire/release rounds; counter: increments; reader: optimistic
    /// reads). 0 => unbounded. A cycle-bounded run's totals are exact
    /// functions of the client roster — invariant under event-tie
    /// reordering, which is what lets a bench pin them across shard counts.
    std::int64_t cycles = 0;
  };

  explicit LockTableWorkload(Options opts) : opts_(opts) {}

  /// Register a client driving `qpn` on `host` (QP connected to the lock
  /// server). Call before start(); the client index is global across all
  /// hosts and seeds the client's private Rng, so client behaviour does not
  /// depend on shard count.
  void add_client(Host& host, RdmaDemux& demux, std::uint32_t qpn, Role role);

  /// Kick every client's first think timer. Call before sim.run().
  void start();

  // --- post-run aggregate accessors (merge per-client totals) ---------------
  [[nodiscard]] std::int64_t acquisitions() const;
  [[nodiscard]] std::int64_t releases() const;
  [[nodiscard]] std::int64_t cas_failures() const;   // contended CAS attempts
  [[nodiscard]] std::int64_t counter_increments() const;  // completed FAA(+1)s
  [[nodiscard]] std::int64_t reads() const;          // completed optimistic reads
  [[nodiscard]] std::int64_t torn_reads() const;
  [[nodiscard]] std::int64_t consistent_reads() const;
  /// Lock-acquisition latency (first CAS post -> winning CAS completion),
  /// microseconds, pooled across all locker clients.
  [[nodiscard]] PercentileSampler lock_latencies_us() const;

  [[nodiscard]] int clients() const { return static_cast<int>(clients_.size()); }
  /// Clients with a verb outstanding (neither thinking nor stopped). A run
  /// that drained fully past stop_at reports 0 — the precondition for the
  /// exactly-once bookkeeping identities (server executions == client
  /// completions).
  [[nodiscard]] std::int64_t busy_clients() const;

 private:
  enum class State {
    kThinking,
    kAcquiring,   // CAS(lock 0->1) outstanding
    kWriteVer1,   // FAA(ver,+1) outstanding (enter critical section)
    kWriteA,
    kWriteB,
    kWriteVer2,   // FAA(ver,+1) outstanding (leave critical section)
    kReleasing,   // CAS(lock 1->0) outstanding
    kReadVer1,    // FAA(ver,+0) outstanding
    kReadA,
    kReadB,
    kReadVer2,
    kCounting,    // FAA(counter,+1) outstanding
    kStopped,
  };

  struct Client {
    Host* host = nullptr;
    std::uint32_t qpn = 0;
    Role role = Role::kLocker;
    int lock = 0;  // slot this locker/reader works against
    Rng rng{1};
    State state = State::kThinking;
    Time attempt_start = 0;  // first CAS of the current acquisition
    std::uint64_t v1 = 0, v2 = 0, a = 0, b = 0;  // reader's observed words
    // Per-client totals; merged by the aggregate accessors post-run.
    std::int64_t cycles_done = 0;
    std::int64_t acquisitions = 0;
    std::int64_t releases = 0;
    std::int64_t cas_failures = 0;
    std::int64_t counter_increments = 0;
    std::int64_t reads = 0;
    std::int64_t torn_reads = 0;
    PercentileSampler lock_latencies_us;
  };

  void on_completion(Client& c, const RdmaCompletion& done);
  void begin_cycle(Client& c);
  void schedule_think(Client& c);
  [[nodiscard]] bool past_stop(const Client& c) const;

  Options opts_;
  // unique_ptr: Client addresses must be stable across add_client() since
  // demux closures capture them.
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace rocelab
