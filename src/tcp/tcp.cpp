#include "src/tcp/tcp.h"

#include <algorithm>
#include <stdexcept>

#include "src/net/packet_pool.h"
#include "src/nic/host.h"

namespace rocelab {

TcpStack::TcpStack(Host& host, TcpConfig defaults) : host_(host), defaults_(defaults) {
  host_.set_tcp_handler([this](Packet pkt) { handle_segment(std::move(pkt)); });
}

TcpStack::~TcpStack() = default;

TcpStack::Conn& TcpStack::conn(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) throw std::invalid_argument("unknown TCP connection");
  return *it->second;
}

std::pair<TcpStack::ConnId, TcpStack::ConnId> TcpStack::connect_pair(TcpStack& a, TcpStack& b) {
  return connect_pair(a, b, a.defaults_);
}

std::pair<TcpStack::ConnId, TcpStack::ConnId> TcpStack::connect_pair(TcpStack& a, TcpStack& b,
                                                                     TcpConfig cfg) {
  auto make = [&cfg](TcpStack& s) -> Conn& {
    auto c = std::make_unique<Conn>();
    c->id = s.next_id_++;
    c->cfg = cfg;
    c->local_port = s.next_port_++;
    c->cwnd = cfg.initial_cwnd;
    c->ssthresh = cfg.max_cwnd;
    c->rto = cfg.initial_rto;
    Conn& ref = *c;
    s.by_port_[ref.local_port] = ref.id;
    s.conns_[ref.id] = std::move(c);
    return ref;
  };
  Conn& ca = make(a);
  Conn& cb = make(b);
  ca.remote_port = cb.local_port;
  ca.remote_ip = b.host_.ip();
  ca.peer_stack = &b;
  ca.peer_conn = cb.id;
  cb.remote_port = ca.local_port;
  cb.remote_ip = a.host_.ip();
  cb.peer_stack = &a;
  cb.peer_conn = ca.id;
  return {ca.id, cb.id};
}

Time TcpStack::kernel_delay(const KernelModel& k) {
  Time t = k.base + static_cast<Time>(host_.rng().exponential(static_cast<double>(k.jitter_mean)));
  if (host_.rng().bernoulli(k.spike_prob)) {
    t += host_.rng().uniform_int(k.spike_min, k.spike_max);
  }
  return t;
}

std::int64_t TcpStack::connection_cwnd(ConnId id) const {
  auto it = conns_.find(id);
  if (it == conns_.end()) throw std::invalid_argument("unknown TCP connection");
  return it->second->cwnd;
}

void TcpStack::send_message(ConnId id, std::int64_t bytes, std::uint64_t msg_id) {
  if (bytes <= 0) throw std::invalid_argument("message must have positive size");
  Conn& c = conn(id);
  const Time now = host_.sim().now();
  c.write_end += static_cast<std::uint64_t>(bytes);
  c.tx_msgs.push_back(TcpMessage{c.write_end, bytes, msg_id, now});
  // Message framing metadata is shared with the peer endpoint (both ends
  // live in the simulator); the bytes themselves still flow through TCP.
  c.peer_stack->conn(c.peer_conn).rx_msgs.push_back(TcpMessage{c.write_end, bytes, msg_id, now});
  try_send(c);
}

void TcpStack::try_send(Conn& c) {
  while (c.snd_nxt < c.write_end &&
         static_cast<std::int64_t>(c.snd_nxt - c.snd_una) < c.cwnd) {
    const std::int64_t window_left = c.cwnd - static_cast<std::int64_t>(c.snd_nxt - c.snd_una);
    const std::int32_t len = static_cast<std::int32_t>(std::min<std::int64_t>(
        {c.cfg.mss, static_cast<std::int64_t>(c.write_end - c.snd_nxt), window_left}));
    if (len <= 0) break;
    send_segment(c, c.snd_nxt, len, /*is_retx=*/false);
    c.snd_nxt += static_cast<std::uint64_t>(len);
  }
}

void TcpStack::send_segment(Conn& c, std::uint64_t seq, std::int32_t len, bool is_retx) {
  Packet pkt;
  pkt.kind = PacketKind::kTcp;
  pkt.created_at = host_.sim().now();
  pkt.priority = c.cfg.priority;
  pkt.payload_bytes = len;
  pkt.frame_bytes = kTcpFrameOverheadBytes + len;
  Ipv4Header ip;
  ip.src = host_.ip();
  ip.dst = c.remote_ip;
  ip.dscp = c.cfg.dscp;
  ip.ecn = c.cfg.ecn_capable ? Ecn::kEct0 : Ecn::kNotEct;
  ip.protocol = kIpProtoTcp;
  ip.id = host_.next_ip_id();
  pkt.ip = ip;
  TcpHeaderMeta h;
  h.src_port = c.local_port;
  h.dst_port = c.remote_port;
  h.seq = seq;
  h.ack = c.rcv_nxt;
  h.payload = len;
  pkt.tcp = h;

  ++stats_.data_segments_sent;
  if (is_retx) ++stats_.retransmissions;

  // Round-trip timing (Karn's rule: never time a retransmitted segment).
  if (!is_retx && c.rtt_sent_at < 0) {
    c.rtt_seq = seq + static_cast<std::uint64_t>(len);
    c.rtt_sent_at = host_.sim().now();
  }

  // Kernel send path: per-segment cost + jitter, kept monotonic per
  // connection so the kernel model itself never reorders the stream.
  const Time out = std::max(host_.sim().now() + kernel_delay(c.cfg.kernel),
                            c.last_kernel_out + nanoseconds(1));
  c.last_kernel_out = out;
  host_.sim().schedule_at(out, [this, pp = acquire_pooled_packet(std::move(pkt))]() mutable {
    host_.send_frame(std::move(*pp));
  });
  arm_rto(c);
}

void TcpStack::send_ack(Conn& c) {
  Packet pkt;
  pkt.kind = PacketKind::kTcp;
  pkt.created_at = host_.sim().now();
  pkt.priority = c.cfg.priority;
  pkt.frame_bytes = kMinEthFrameBytes;
  Ipv4Header ip;
  ip.src = host_.ip();
  ip.dst = c.remote_ip;
  ip.dscp = c.cfg.dscp;
  ip.protocol = kIpProtoTcp;
  ip.id = host_.next_ip_id();
  pkt.ip = ip;
  TcpHeaderMeta h;
  h.src_port = c.local_port;
  h.dst_port = c.remote_port;
  h.seq = c.snd_nxt;
  h.ack = c.rcv_nxt;
  h.payload = 0;
  pkt.tcp = h;
  ++stats_.acks_sent;
  // ACK generation is cheap relative to the data path: base cost only.
  host_.sim().schedule_in(c.cfg.kernel.base / 4, [this, pp = acquire_pooled_packet(std::move(pkt))]() mutable {
    host_.send_frame(std::move(*pp));
  });
}

void TcpStack::handle_segment(Packet pkt) {
  if (!pkt.tcp) return;
  auto it = by_port_.find(pkt.tcp->dst_port);
  if (it == by_port_.end()) return;
  Conn& c = conn(it->second);
  ++stats_.segments_received;
  if (pkt.tcp->payload > 0) {
    on_data(c, *pkt.tcp);
  }
  on_ack(c, *pkt.tcp);
}

void TcpStack::on_data(Conn& c, const TcpHeaderMeta& h) {
  const std::uint64_t seq = h.seq;
  const std::uint64_t end = seq + static_cast<std::uint64_t>(h.payload);
  if (end <= c.rcv_nxt) {
    send_ack(c);  // stale duplicate
    return;
  }
  if (seq <= c.rcv_nxt) {
    c.rcv_nxt = end;
    // Merge any contiguous out-of-order runs.
    auto it2 = c.ooo.begin();
    while (it2 != c.ooo.end() && it2->first <= c.rcv_nxt) {
      c.rcv_nxt = std::max(c.rcv_nxt, it2->second);
      it2 = c.ooo.erase(it2);
    }
    deliver_ready(c);
  } else {
    c.ooo[seq] = std::max(c.ooo[seq], end);
  }
  send_ack(c);
}

void TcpStack::deliver_ready(Conn& c) {
  while (!c.rx_msgs.empty() && c.rx_msgs.front().end_seq <= c.rcv_nxt) {
    const TcpMessage m = c.rx_msgs.front();
    c.rx_msgs.pop_front();
    ++stats_.messages_delivered;
    // Receive path kernel cost before the app sees the message; monotonic
    // per connection, as a socket delivers in order.
    const Time at = std::max(host_.sim().now() + kernel_delay(c.cfg.kernel),
                             c.last_deliver_out + nanoseconds(1));
    c.last_deliver_out = at;
    const TcpRecv rec{c.id, m.msg_id, m.bytes, m.posted_at, at};
    host_.sim().schedule_at(at, [this, rec] {
      if (recv_cb_) recv_cb_(rec);
    });
  }
}

void TcpStack::on_ack(Conn& c, const TcpHeaderMeta& h) {
  const std::uint64_t ack = h.ack;
  if (ack > c.snd_nxt) return;  // nonsense
  if (ack > c.snd_una) {
    // RTT sample.
    if (c.rtt_sent_at >= 0 && ack >= c.rtt_seq) {
      rtt_sample(c, host_.sim().now() - c.rtt_sent_at);
      c.rtt_sent_at = -1;
    }
    const std::int64_t acked = static_cast<std::int64_t>(ack - c.snd_una);
    c.snd_una = ack;
    c.backoff = 0;
    c.dupacks = 0;
    // Drop acked message records (sender side).
    while (!c.tx_msgs.empty() && c.tx_msgs.front().end_seq <= c.snd_una) {
      stats_.bytes_delivered += c.tx_msgs.front().bytes;
      c.tx_msgs.pop_front();
    }
    if (c.fast_recovery) {
      if (ack >= c.recover) {
        c.fast_recovery = false;
        c.cwnd = c.ssthresh;
      } else {
        // NewReno partial ACK: retransmit the next hole, deflate.
        send_segment(c, c.snd_una,
                     static_cast<std::int32_t>(std::min<std::uint64_t>(
                         static_cast<std::uint64_t>(c.cfg.mss), c.write_end - c.snd_una)),
                     /*is_retx=*/true);
        c.cwnd = std::max<std::int64_t>(c.cwnd - acked + c.cfg.mss, c.cfg.mss);
      }
    } else if (c.cwnd < c.ssthresh) {
      c.cwnd = std::min<std::int64_t>(c.cwnd + std::min<std::int64_t>(acked, c.cfg.mss),
                                      c.cfg.max_cwnd);  // slow start
    } else {
      c.cwnd = std::min<std::int64_t>(
          c.cwnd + std::max<std::int64_t>(1, c.cfg.mss * c.cfg.mss / c.cwnd), c.cfg.max_cwnd);
    }
    arm_rto(c);
    try_send(c);
    return;
  }
  if (ack == c.snd_una && c.snd_nxt > c.snd_una && h.payload == 0) {
    ++c.dupacks;
    if (c.dupacks == 3 && !c.fast_recovery) {
      ++stats_.fast_retransmits;
      c.ssthresh = std::max<std::int64_t>((c.snd_nxt - c.snd_una) / 2, 2 * c.cfg.mss);
      send_segment(c, c.snd_una,
                   static_cast<std::int32_t>(std::min<std::uint64_t>(
                       static_cast<std::uint64_t>(c.cfg.mss), c.write_end - c.snd_una)),
                   /*is_retx=*/true);
      c.cwnd = c.ssthresh + 3 * c.cfg.mss;
      c.fast_recovery = true;
      c.recover = c.snd_nxt;
    } else if (c.dupacks > 3) {
      c.cwnd += c.cfg.mss;  // inflation
      try_send(c);
    }
  }
}

void TcpStack::rtt_sample(Conn& c, Time r) {
  if (c.srtt < 0) {
    c.srtt = r;
    c.rttvar = r / 2;
  } else {
    const Time err = std::abs(c.srtt - r);
    c.rttvar = (3 * c.rttvar + err) / 4;
    c.srtt = (7 * c.srtt + r) / 8;
  }
  c.rto = std::max(c.cfg.min_rto, c.srtt + 4 * c.rttvar);
}

void TcpStack::arm_rto(Conn& c) {
  host_.sim().cancel(c.rto_ev);
  c.rto_ev = kInvalidEventId;
  if (c.snd_una >= c.snd_nxt) return;
  const Time delay = c.rto << std::min(c.backoff, 6);
  const ConnId id = c.id;
  c.rto_ev = host_.sim().schedule_in(delay, [this, id] { on_rto(id); });
}

void TcpStack::on_rto(ConnId id) {
  Conn& c = conn(id);
  c.rto_ev = kInvalidEventId;
  if (c.snd_una >= c.snd_nxt) return;
  ++stats_.timeouts;
  ++c.backoff;
  c.ssthresh = std::max<std::int64_t>((c.snd_nxt - c.snd_una) / 2, 2 * c.cfg.mss);
  c.cwnd = c.cfg.mss;
  c.snd_nxt = c.snd_una;
  c.dupacks = 0;
  c.fast_recovery = false;
  c.rtt_sent_at = -1;
  try_send(c);
  arm_rto(c);
}

}  // namespace rocelab
