// TCP baseline: a NewReno-style stack with slow start, AIMD congestion
// avoidance, fast retransmit/recovery, RTO with Karn backoff, and a kernel
// latency model (per-segment processing cost, jitter, and rare multi-ms
// scheduling spikes — the "kernel software latency" of §1/[21]).
//
// TCP rides a lossy traffic class: switches tail-drop it, and it recovers
// via retransmission — exactly the behaviour Fig. 6 compares RDMA against.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "src/common/units.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace rocelab {

class Host;

struct KernelModel {
  Time base = microseconds(15);          // per-segment syscall/stack cost
  Time jitter_mean = microseconds(40);   // exponential jitter (softirq, locks)
  double spike_prob = 3e-4;              // rare scheduling delay ([21]: up to tens of ms)
  Time spike_min = milliseconds(1);
  Time spike_max = milliseconds(8);
};

struct TcpConfig {
  std::int32_t mss = 1460;
  std::int64_t initial_cwnd = 10 * 1460;
  std::int64_t max_cwnd = 1 * kMiB;      // receive window clamp
  Time min_rto = milliseconds(5);
  Time initial_rto = milliseconds(5);
  int priority = 1;                      // lossy traffic class (§2: TCP isolated)
  std::uint8_t dscp = 1;
  bool ecn_capable = false;
  KernelModel kernel;
};

struct TcpRecv {
  std::uint32_t conn = 0;
  std::uint64_t msg_id = 0;
  std::int64_t bytes = 0;
  Time posted_at = 0;
  Time delivered_at = 0;
};

struct TcpStats {
  std::int64_t data_segments_sent = 0;
  std::int64_t acks_sent = 0;
  std::int64_t segments_received = 0;
  std::int64_t retransmissions = 0;
  std::int64_t fast_retransmits = 0;
  std::int64_t timeouts = 0;
  std::int64_t bytes_delivered = 0;
  std::int64_t messages_delivered = 0;
};

class TcpStack {
 public:
  using ConnId = std::uint32_t;
  using RecvCb = std::function<void(const TcpRecv&)>;

  explicit TcpStack(Host& host, TcpConfig defaults = {});
  ~TcpStack();
  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Queue an application message on the connection byte stream. The
  /// receiver's RecvCb fires when the last byte is delivered in order.
  void send_message(ConnId conn, std::int64_t bytes, std::uint64_t msg_id = 0);
  void set_recv_cb(RecvCb cb) { recv_cb_ = std::move(cb); }

  [[nodiscard]] const TcpStats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t connection_cwnd(ConnId conn) const;
  [[nodiscard]] Host& host() { return host_; }

  /// Establish a connected pair between two hosts (handshake abstracted).
  static std::pair<ConnId, ConnId> connect_pair(TcpStack& a, TcpStack& b);
  static std::pair<ConnId, ConnId> connect_pair(TcpStack& a, TcpStack& b, TcpConfig cfg);

 private:
  struct TcpMessage {
    std::uint64_t end_seq;
    std::int64_t bytes;
    std::uint64_t msg_id;
    Time posted_at;
  };
  struct Conn {
    std::uint32_t id = 0;
    TcpConfig cfg;
    std::uint16_t local_port = 0;
    std::uint16_t remote_port = 0;
    Ipv4Addr remote_ip{};
    TcpStack* peer_stack = nullptr;
    std::uint32_t peer_conn = 0;

    // Sender state.
    std::uint64_t snd_una = 0;
    std::uint64_t snd_nxt = 0;
    std::uint64_t write_end = 0;  // bytes the app has queued
    std::int64_t cwnd = 0;
    std::int64_t ssthresh = 0;
    int dupacks = 0;
    bool fast_recovery = false;
    std::uint64_t recover = 0;
    Time srtt = -1;
    Time rttvar = 0;
    Time rto = 0;
    int backoff = 0;
    std::uint64_t rtt_seq = 0;  // sequence being timed (Karn: one at a time)
    Time rtt_sent_at = -1;
    EventId rto_ev = kInvalidEventId;
    Time last_kernel_out = 0;   // keeps kernel-delayed segments in order
    Time last_deliver_out = 0;  // keeps app deliveries in order
    std::deque<TcpMessage> tx_msgs;

    // Receiver state.
    std::uint64_t rcv_nxt = 0;
    std::map<std::uint64_t, std::uint64_t> ooo;  // seq -> end
    std::deque<TcpMessage> rx_msgs;
  };

  Conn& conn(ConnId id);
  void handle_segment(Packet pkt);
  void on_data(Conn& c, const TcpHeaderMeta& h);
  void on_ack(Conn& c, const TcpHeaderMeta& h);
  void try_send(Conn& c);
  void send_segment(Conn& c, std::uint64_t seq, std::int32_t len, bool is_retx);
  void send_ack(Conn& c);
  void arm_rto(Conn& c);
  void on_rto(ConnId id);
  void rtt_sample(Conn& c, Time r);
  [[nodiscard]] Time kernel_delay(const KernelModel& k);
  void deliver_ready(Conn& c);

  Host& host_;
  TcpConfig defaults_;
  std::unordered_map<ConnId, std::unique_ptr<Conn>> conns_;
  std::unordered_map<std::uint16_t, ConnId> by_port_;
  ConnId next_id_ = 1;
  std::uint16_t next_port_ = 10000;
  RecvCb recv_cb_;
  TcpStats stats_;
};

}  // namespace rocelab
