// Minimal leveled logger. Simulation components log sparsely; experiments
// set the level to control verbosity.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace rocelab {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kWarn;
    return lvl;
  }

  template <typename... Args>
  static void write(LogLevel lvl, const char* tag, const char* fmt, Args&&... args) {
    if (lvl < level()) return;
    std::fprintf(stderr, "[%s] ", tag);
    if constexpr (sizeof...(Args) == 0) {
      std::fprintf(stderr, "%s", fmt);
    } else {
      std::fprintf(stderr, fmt, std::forward<Args>(args)...);  // NOLINT
    }
    std::fprintf(stderr, "\n");
  }
};

#define ROCELAB_LOG_DEBUG(...) ::rocelab::Log::write(::rocelab::LogLevel::kDebug, "debug", __VA_ARGS__)
#define ROCELAB_LOG_INFO(...) ::rocelab::Log::write(::rocelab::LogLevel::kInfo, "info", __VA_ARGS__)
#define ROCELAB_LOG_WARN(...) ::rocelab::Log::write(::rocelab::LogLevel::kWarn, "warn", __VA_ARGS__)
#define ROCELAB_LOG_ERROR(...) ::rocelab::Log::write(::rocelab::LogLevel::kError, "error", __VA_ARGS__)

}  // namespace rocelab
