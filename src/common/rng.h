// Deterministic random number generation for reproducible experiments.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace rocelab {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  double pareto(double scale, double shape) {
    // Inverse-CDF sampling; heavy-tailed burst sizes.
    const double u = uniform(1e-12, 1.0);
    return scale / std::pow(u, 1.0 / shape);
  }
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rocelab
