#include "src/common/stats.h"

#include <cmath>
#include <stdexcept>

namespace rocelab {

void PercentileSampler::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double PercentileSampler::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("percentile of empty sampler");
  if (p < 0 || p > 100) throw std::invalid_argument("percentile out of range");
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double PercentileSampler::mean() const {
  if (samples_.empty()) throw std::logic_error("mean of empty sampler");
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double PercentileSampler::min() const {
  ensure_sorted();
  if (samples_.empty()) throw std::logic_error("min of empty sampler");
  return samples_.front();
}

double PercentileSampler::max() const {
  ensure_sorted();
  if (samples_.empty()) throw std::logic_error("max of empty sampler");
  return samples_.back();
}

double PercentileSampler::stddev() const {
  const double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("bad histogram bounds");
}

void Histogram::add(double v) {
  ++total_;
  if (v < lo_) {
    ++underflow_;
  } else if (v >= hi_) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>((v - lo_) / width_)];
  }
}

void IntervalSeries::add(Time at, double value) {
  buckets_[at / width_] += value;
  total_ += value;
}

double IntervalSeries::bucket_value(std::int64_t index) const {
  auto it = buckets_.find(index);
  return it == buckets_.end() ? 0.0 : it->second;
}

std::int64_t IntervalSeries::last_bucket() const {
  return buckets_.empty() ? -1 : buckets_.rbegin()->first;
}

}  // namespace rocelab
