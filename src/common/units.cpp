#include "src/common/units.h"

#include <cmath>
#include <cstdio>

namespace rocelab {

namespace {
std::string format_with_unit(double v, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g%s", v, unit);
  return buf;
}
}  // namespace

std::string format_time(Time t) {
  const double a = std::abs(static_cast<double>(t));
  if (a >= kSecond) return format_with_unit(to_seconds(t), "s");
  if (a >= kMillisecond) return format_with_unit(to_milliseconds(t), "ms");
  if (a >= kMicrosecond) return format_with_unit(to_microseconds(t), "us");
  if (a >= kNanosecond) return format_with_unit(to_nanoseconds(t), "ns");
  return format_with_unit(static_cast<double>(t), "ps");
}

std::string format_bandwidth(double bits_per_second) {
  if (bits_per_second >= 1e12) return format_with_unit(bits_per_second / 1e12, "Tb/s");
  if (bits_per_second >= 1e9) return format_with_unit(bits_per_second / 1e9, "Gb/s");
  if (bits_per_second >= 1e6) return format_with_unit(bits_per_second / 1e6, "Mb/s");
  if (bits_per_second >= 1e3) return format_with_unit(bits_per_second / 1e3, "Kb/s");
  return format_with_unit(bits_per_second, "b/s");
}

std::string format_bytes(std::int64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024 * 1024) return format_with_unit(b / (1024.0 * 1024 * 1024), "GiB");
  if (b >= 1024.0 * 1024) return format_with_unit(b / (1024.0 * 1024), "MiB");
  if (b >= 1024.0) return format_with_unit(b / 1024.0, "KiB");
  return format_with_unit(b, "B");
}

}  // namespace rocelab
