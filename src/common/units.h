// Time, bandwidth, and size units used throughout the simulator.
//
// Time is kept as an integral count of picoseconds. At 40Gb/s one byte is
// exactly 200ps, so all serialization times used by the paper's fabric
// (10/25/40/50/100GbE) are exactly representable and event ordering is
// deterministic with no floating point drift.
#pragma once

#include <cstdint>
#include <string>

namespace rocelab {

/// Simulated time in picoseconds.
using Time = std::int64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1000;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

constexpr Time picoseconds(std::int64_t v) { return v; }
constexpr Time nanoseconds(std::int64_t v) { return v * kNanosecond; }
constexpr Time microseconds(std::int64_t v) { return v * kMicrosecond; }
constexpr Time milliseconds(std::int64_t v) { return v * kMillisecond; }
constexpr Time seconds(std::int64_t v) { return v * kSecond; }

constexpr double to_nanoseconds(Time t) { return static_cast<double>(t) / kNanosecond; }
constexpr double to_microseconds(Time t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double to_milliseconds(Time t) { return static_cast<double>(t) / kMillisecond; }
constexpr double to_seconds(Time t) { return static_cast<double>(t) / kSecond; }

/// Link bandwidth in bits per second.
using Bandwidth = std::int64_t;

inline constexpr Bandwidth kBitPerSecond = 1;
inline constexpr Bandwidth kKilobitPerSecond = 1000;
inline constexpr Bandwidth kMegabitPerSecond = 1000 * kKilobitPerSecond;
inline constexpr Bandwidth kGigabitPerSecond = 1000 * kMegabitPerSecond;

constexpr Bandwidth gbps(std::int64_t v) { return v * kGigabitPerSecond; }
constexpr Bandwidth mbps(std::int64_t v) { return v * kMegabitPerSecond; }

/// Time to put `bytes` on the wire at `bw` bits/second.
constexpr Time serialization_time(std::int64_t bytes, Bandwidth bw) {
  // bytes*8 bits / (bw bits/s) seconds = bytes*8*1e12/bw picoseconds.
  // 128-bit intermediate keeps this exact for any realistic byte count.
  return static_cast<Time>(static_cast<__int128>(bytes) * 8 * kSecond / bw);
}

/// Speed of light propagation delay in copper/fiber: ~5ns per meter.
constexpr Time propagation_delay_for_meters(double meters) {
  return static_cast<Time>(meters * 5.0 * kNanosecond);
}

/// Bytes transferable in `t` at `bw` bits/second (exact integer math).
constexpr std::int64_t bytes_in_time(Time t, Bandwidth bw) {
  return static_cast<std::int64_t>(static_cast<__int128>(t) * bw / 8 / kSecond);
}

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;

std::string format_time(Time t);
std::string format_bandwidth(double bits_per_second);
std::string format_bytes(std::int64_t bytes);

}  // namespace rocelab
