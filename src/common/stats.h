// Statistics helpers: percentile samplers, fixed-width histograms,
// time-bucketed counter series (the 5-minute buckets of Fig. 9/10), and
// windowed rate meters.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace rocelab {

/// Collects samples and answers percentile queries. Stores all samples;
/// suitable for the sample counts our experiments produce (<= tens of
/// millions of doubles).
class PercentileSampler {
 public:
  void add(double v) { samples_.push_back(v); sorted_ = false; }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// p in [0,100]. Linear interpolation between closest ranks.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;

  void clear() { samples_.clear(); sorted_ = false; }

  /// Raw samples (unspecified order).
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  /// Pool another sampler's samples into this one (e.g. aggregating
  /// Pingmesh probers across servers, as §5.3's service does).
  void merge(const PercentileSampler& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Histogram over fixed-width bins in [lo, hi); under/overflow tracked.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double v);
  [[nodiscard]] std::int64_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const { return lo_ + static_cast<double>(i) * width_; }
  [[nodiscard]] std::int64_t underflow() const { return underflow_; }
  [[nodiscard]] std::int64_t overflow() const { return overflow_; }
  [[nodiscard]] std::int64_t total() const { return total_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// A counter accumulated into fixed-duration time buckets, as the paper's
/// monitoring system does with 5-minute PFC pause frame counts (Fig. 9b/10b).
class IntervalSeries {
 public:
  explicit IntervalSeries(Time bucket_width) : width_(bucket_width) {}

  void add(Time at, double value);
  /// Bucket index -> accumulated value. Missing buckets are zero.
  [[nodiscard]] const std::map<std::int64_t, double>& buckets() const { return buckets_; }
  [[nodiscard]] double bucket_value(std::int64_t index) const;
  [[nodiscard]] Time bucket_width() const { return width_; }
  [[nodiscard]] double total() const { return total_; }
  /// Largest bucket index seen, or -1 when empty.
  [[nodiscard]] std::int64_t last_bucket() const;

 private:
  Time width_;
  std::map<std::int64_t, double> buckets_;
  double total_ = 0;
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  explicit Ewma(double gain) : gain_(gain) {}
  void add(double v) {
    value_ = seeded_ ? (1.0 - gain_) * value_ + gain_ * v : v;
    seeded_ = true;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool seeded() const { return seeded_; }

 private:
  double gain_;
  double value_ = 0;
  bool seeded_ = false;
};

}  // namespace rocelab
