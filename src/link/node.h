// Node: base class for every device (switch, host). Owns ports, assigns
// per-port MAC addresses, counts ingress traffic, and strips link-local PFC
// pause frames before they reach the subclass.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/link/port.h"
#include "src/net/packet.h"
#include "src/net/packet_pool.h"
#include "src/sim/simulator.h"

namespace rocelab {

using NodeId = std::uint32_t;

class Node {
 public:
  Node(Simulator& sim, std::string name);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Entry point from the wire. Counts rx, intercepts PFC pause frames
  /// (applying them to the egress side of `in_port`), then dispatches to
  /// handle_packet().
  void deliver(PooledPacket pp, int in_port);

  EgressPort& add_port();
  [[nodiscard]] EgressPort& port(int i) { return *ports_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const EgressPort& port(int i) const { return *ports_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int port_count() const { return static_cast<int>(ports_.size()); }

  [[nodiscard]] MacAddr port_mac(int i) const;
  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }

  /// Send a PFC pause frame out of `out_port` for `prio` with `quanta`.
  /// Used by switch MMU and NIC pause generation; honors pause masking
  /// (the NIC watchdog disables generation via allow_pause_tx).
  void send_pause(int out_port, int prio, std::uint16_t quanta);

  /// Subclass hook: a pause frame arrived on `in_port` (already applied to
  /// the port). The switch-side storm watchdog observes these.
  virtual void on_pause_rx(int in_port, const PfcFrame& frame) { (void)in_port; (void)frame; }

  /// Take the full-duplex link at `port` down (or back up). Both directions
  /// change together: queued and in-flight packets are lost, PFC pause state
  /// clears, and both endpoints get their on_link_change() hook. No-op on an
  /// unwired port or when the state already matches.
  void set_link_up(int port, bool up);
  [[nodiscard]] bool link_up(int port) const { return this->port(port).link_up(); }

  /// Subclass hook: the link at `port` changed state (fires on both
  /// endpoints). Switches use it to drop stale PFC bookkeeping so routing
  /// fails over cleanly.
  virtual void on_link_change(int port, bool up) { (void)port; (void)up; }

  /// When false, send_pause() becomes a no-op (NIC-side storm watchdog).
  void set_allow_pause_tx(bool v) { allow_pause_tx_ = v; }
  [[nodiscard]] bool allow_pause_tx() const { return allow_pause_tx_; }
  /// Time of the most recent pause frame this node emitted, or -1.
  [[nodiscard]] Time last_pause_tx() const { return last_pause_tx_; }

  /// Non-invasive receive tap (e.g. pcap capture): sees every delivered
  /// packet, including PFC pause frames, before it is processed.
  std::function<void(const Packet&, int in_port)> rx_tap;

 protected:
  /// Box-threaded: the packet rides in one pooled box from the moment it
  /// is enqueued until it is consumed; every layer hands the 8-byte box
  /// along instead of copying (or even moving) the 200+-byte Packet.
  virtual void handle_packet(PooledPacket pp, int in_port) = 0;

 private:
  Simulator& sim_;
  std::string name_;
  NodeId id_;
  bool allow_pause_tx_ = true;
  Time last_pause_tx_ = -1;
  std::vector<std::unique_ptr<EgressPort>> ports_;
  std::vector<MacAddr> macs_;  // per-port MACs, precomputed in add_port()
};

/// Wire two nodes' ports together, full duplex, same speed both ways.
void connect_nodes(Node& a, int port_a, Node& b, int port_b, Bandwidth bandwidth,
                   Time prop_delay);

}  // namespace rocelab
