// LinkImpairment: the gray-failure model for one direction of a link.
// §5.2's hardest faults are not link-down events but links that stay up
// while corrupting frames (surfaced only by FCS counters), adding latency,
// or silently dropping one direction / a subset of ECMP flows. Impairments
// are installed per EgressPort — i.e. per direction of a full-duplex link —
// so asymmetric partitions are first-class.
#pragma once

#include <cstdint>

#include "src/common/units.h"

namespace rocelab {

/// Configuration of one impaired link direction. All randomness is drawn
/// from a private generator seeded by `seed`, so behaviour is byte-identical
/// per seed; a constructed-but-disabled impairment draws nothing, which the
/// determinism gate relies on (installing the plane must not perturb a run).
struct LinkImpairment {
  bool enabled = true;
  /// Probability a frame is corrupted on the wire and discarded by the
  /// receiver's FCS check — counted rx-side as PortCounters::fcs_errors,
  /// the counter §5.2 watches for lossy-but-up cables.
  double fcs_drop_rate = 0.0;
  /// Extra one-way latency on every frame (degraded optics, a flaky
  /// retimer), plus uniform jitter in [0, jitter].
  Time added_delay = 0;
  Time jitter = 0;
  /// Drop every frame in this direction while the reverse direction (and
  /// link-up status) stay healthy: an asymmetric partition.
  bool blackhole = false;
  /// ECMP-hash-correlated flow blackhole: drop exactly the 5-tuples whose
  /// keyed hash falls below this fraction — a corrupted forwarding entry
  /// that only some flows hit (the §6 localization scenario). Non-IP frames
  /// (PFC pause) are unaffected.
  double flow_blackhole_frac = 0.0;
  /// Probability a frame is corrupted on the wire. Unlike fcs_drop_rate —
  /// where the receiver's FCS check always catches the damage — a frame
  /// corrupted here is split by escape_fcs_frac: either the FCS catches it
  /// (dropped rx-side, fcs_errors) or the corruption escapes the link-level
  /// check and the frame is DELIVERED with a bad payload — §5.2's silent
  /// corruption, visible only to end-to-end ICRC.
  double corrupt_deliver_rate = 0.0;
  /// Fraction of corrupt_deliver_rate corruptions that escape the FCS check
  /// and arrive at the receiver (default: all of them; set < 1 to model the
  /// realistic mix where most damage is FCS-visible).
  double escape_fcs_frac = 1.0;
  /// Seed for the impairment's private RNG and the flow-subset hash key.
  std::uint64_t seed = 1;

  /// Whether this impairment changes any packet's fate or timing.
  [[nodiscard]] bool active() const {
    return enabled && (fcs_drop_rate > 0.0 || added_delay > 0 || jitter > 0 || blackhole ||
                       flow_blackhole_frac > 0.0 || corrupt_deliver_rate > 0.0);
  }
};

/// Ground-truth tallies of what an installed impairment actually did —
/// the simulator's answer key, deliberately separate from the counters the
/// detection plane is allowed to look at.
struct ImpairmentStats {
  std::int64_t fcs_drops = 0;        // frames corrupted (also counted rx-side)
  std::int64_t blackhole_drops = 0;  // frames lost to the one-way blackhole
  std::int64_t flow_drops = 0;       // frames lost to the flow blackhole
  std::int64_t delayed = 0;          // frames given extra delay/jitter
  /// Frames corrupted AND delivered (escaped the FCS check) — the ground
  /// truth the detection plane's icrc_errors/corrupt_delivered counters are
  /// judged against.
  std::int64_t corrupt_delivered = 0;
};

}  // namespace rocelab
