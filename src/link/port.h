// EgressPort: one direction of a full-duplex link. Owns the eight
// per-priority egress queues of Fig. 2, a control queue for PFC frames
// (which bypass data and are never paused), per-priority PFC pause state,
// and the transmit state machine (serialization + propagation delay).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/link/impairment.h"
#include "src/net/packet.h"
#include "src/net/packet_pool.h"
#include "src/sim/simulator.h"

namespace rocelab {

class CrossShardChannel;
class Node;

inline constexpr int kNumPriorities = 8;

/// Per-port, per-priority counters mirroring §5.2's monitoring: pause frames
/// sent/received, traffic sent/received, drops, and integrated pause
/// intervals (which the paper asked ASIC vendors to add).
struct PortCounters {
  std::array<std::int64_t, kNumPriorities> tx_packets{};
  std::array<std::int64_t, kNumPriorities> tx_bytes{};
  std::array<std::int64_t, kNumPriorities> rx_packets{};
  std::array<std::int64_t, kNumPriorities> rx_bytes{};
  std::array<std::int64_t, kNumPriorities> tx_pause{};
  std::array<std::int64_t, kNumPriorities> rx_pause{};
  std::array<Time, kNumPriorities> paused_time{};  // total time egress was paused
  std::int64_t ingress_drops = 0;        // MMU admission drops (lossy tail drop)
  std::int64_t headroom_overflow_drops = 0;  // lossless drops: misconfiguration signal
  std::int64_t egress_drops = 0;
  std::int64_t arp_incomplete_drops = 0;  // the §4.2 deadlock-fix drop counter
  std::int64_t mac_mismatch_drops = 0;    // router dropped frame not addressed to it
  std::int64_t link_down_drops = 0;       // queued/in-flight bytes lost to a link fault
  std::int64_t fcs_errors = 0;            // rx frames failing the FCS check (§5.2 gray signal)
  std::int64_t impairment_drops = 0;      // tx frames lost to a blackhole impairment
  std::int64_t filtered_drops = 0;        // rx frames eaten by Switch::set_drop_filter
  std::int64_t corrupt_delivered = 0;     // rx frames delivered with corruption past the FCS

  [[nodiscard]] std::int64_t total_tx_pause() const {
    std::int64_t s = 0;
    for (auto v : tx_pause) s += v;
    return s;
  }
  [[nodiscard]] std::int64_t total_rx_pause() const {
    std::int64_t s = 0;
    for (auto v : rx_pause) s += v;
    return s;
  }
  [[nodiscard]] std::int64_t total_tx_bytes() const {
    std::int64_t s = 0;
    for (auto v : tx_bytes) s += v;
    return s;
  }
};

class EgressPort {
 public:
  struct QueueConfig {
    int weight = 1;       // DWRR weight among non-strict queues
    bool strict = false;  // strict priority (the "real-time" class)
  };

  EgressPort(Simulator& sim, Node& owner, int index);
  ~EgressPort();
  EgressPort(const EgressPort&) = delete;
  EgressPort& operator=(const EgressPort&) = delete;

  /// Wire this direction to a peer's ingress. Also called for the reverse
  /// direction by `connect_nodes`.
  void connect(Node* peer, int peer_port, Bandwidth bandwidth, Time prop_delay);
  [[nodiscard]] bool connected() const { return peer_ != nullptr; }

  /// Link fault plane. Downing this direction drops everything queued
  /// (data and control), clears PFC pause state, and loses packets already
  /// on the wire (they belong to a dead epoch when they would arrive).
  /// Use Node::set_link_up to take both directions down symmetrically.
  void set_up(bool up);
  [[nodiscard]] bool link_up() const { return link_up_; }
  /// True if the port can carry traffic right now: wired and link up.
  [[nodiscard]] bool usable() const { return peer_ != nullptr && link_up_; }

  /// Data path; the queue is chosen by the packet's priority. The pooled
  /// overload is the real one — a packet is boxed once when it first
  /// enters a queue and rides the same box across all later hops.
  void enqueue(PooledPacket pp);
  void enqueue(Packet pkt) { enqueue(acquire_pooled_packet(std::move(pkt))); }
  void enqueue_control(Packet pkt);  // PFC frames: strict, unpausable

  /// Gray-failure plane (§5.2): install an impairment on this direction
  /// only — the reverse direction is a different EgressPort, so asymmetric
  /// faults come for free. Replaces any previous impairment (fresh RNG).
  /// Drops decided here leave tx counters and wire occupancy untouched, so
  /// the tx side looks perfectly healthy — exactly what makes these faults
  /// gray. Install/clear through ChaosEngine::impair_link to journal it.
  void set_impairment(const LinkImpairment& imp);
  void clear_impairment() { impair_.reset(); }
  /// True if an installed impairment is actually changing behaviour.
  [[nodiscard]] bool impaired() const { return impair_ != nullptr && impair_->cfg.active(); }
  [[nodiscard]] const ImpairmentStats& impairment_stats() const;

  /// Apply a received PFC pause for `prio`: quanta==0 resumes (XON).
  void receive_pause(int prio, std::uint16_t quanta);

  /// Drop everything queued at `prio` (switch watchdog discarding lossless
  /// packets, §4.3). on_dequeue fires for each so owner accounting stays
  /// consistent; drops are counted as egress_drops.
  std::size_t flush_priority(int prio);
  [[nodiscard]] bool paused(int prio) const;
  /// True if every data priority with queued packets is paused (or empty).
  [[nodiscard]] bool fully_blocked() const;

  [[nodiscard]] std::int64_t queued_bytes(int prio) const { return queue_bytes_[static_cast<std::size_t>(prio)]; }
  [[nodiscard]] std::int64_t total_queued_bytes() const { return total_bytes_; }
  [[nodiscard]] std::size_t queued_packets(int prio) const { return queues_[static_cast<std::size_t>(prio)].size(); }
  [[nodiscard]] std::size_t control_queued() const { return control_.size(); }

  void set_queue_config(int prio, QueueConfig cfg) {
    qcfg_[static_cast<std::size_t>(prio)] = cfg;
    if (cfg.strict) {
      strict_mask_ |= 1u << static_cast<unsigned>(prio);
    } else {
      strict_mask_ &= ~(1u << static_cast<unsigned>(prio));
    }
  }
  [[nodiscard]] const QueueConfig& queue_config(int prio) const { return qcfg_[static_cast<std::size_t>(prio)]; }

  [[nodiscard]] Node* peer() const { return peer_; }
  [[nodiscard]] int peer_port() const { return peer_port_; }
  [[nodiscard]] MacAddr peer_mac() const {
    if (peer_ == nullptr) throw std::logic_error("peer_mac on unconnected port");
    return peer_mac_;
  }
  [[nodiscard]] Bandwidth bandwidth() const { return bandwidth_; }
  [[nodiscard]] Time prop_delay() const { return prop_delay_; }
  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] Node& owner() const { return owner_; }

  PortCounters& counters() { return counters_; }
  [[nodiscard]] const PortCounters& counters() const { return counters_; }

  /// Invoked when a data packet starts transmission (leaves the queue).
  /// Switches release MMU accounting here.
  std::function<void(const Packet&, int prio)> on_dequeue;
  /// Invoked after any dequeue; NIC QP schedulers use it as backpressure
  /// relief to refill the (bounded) port queue.
  std::function<void()> on_drain;

  /// Time one PFC pause quantum lasts at this port's speed (512 bit times).
  [[nodiscard]] Time quantum_time() const { return ser_time(64); }

 private:
  void try_send();
  void settle_pause(int prio);
  int pick_queue();

  /// serialization_time() for this port's speed, via a cached multiplier
  /// when the rate divides 8e12 exactly (every real link speed does); the
  /// generic 128-bit division only runs for odd test-only rates.
  [[nodiscard]] Time ser_time(std::int64_t bytes) const {
    return ps_per_byte_ != 0 ? bytes * ps_per_byte_ : serialization_time(bytes, bandwidth_);
  }

  Simulator& sim_;
  Node& owner_;
  int index_;
  Node* peer_ = nullptr;
  int peer_port_ = -1;
  Bandwidth bandwidth_ = gbps(40);
  Time prop_delay_ = 0;
  MacAddr peer_mac_{};   // cached at connect(); node ids and MACs are immutable
  Time ps_per_byte_ = 0; // 0 when bandwidth_ does not divide 8e12 exactly
  /// Non-null iff the peer lives on a different shard of the same group:
  /// deliveries then go through this deterministic channel (drained at the
  /// window barrier) instead of being scheduled into the peer's heap.
  CrossShardChannel* cross_ = nullptr;
  bool link_up_ = true;
  /// Bumped on every up/down transition; in-flight deliveries from an older
  /// epoch are discarded (the photons died with the link).
  std::uint64_t link_epoch_ = 0;

  // Queues hold pooled boxes: queue churn and the transmit closure move a
  // pointer, not a 200+-byte Packet.
  std::array<std::deque<PooledPacket>, kNumPriorities> queues_;
  std::deque<PooledPacket> control_;
  std::array<std::int64_t, kNumPriorities> queue_bytes_{};
  std::int64_t total_bytes_ = 0;
  /// Bit p set iff queues_[p] is non-empty; mirrors the deques exactly so
  /// the scheduler scans a word instead of eight deque headers.
  std::uint32_t nonempty_ = 0;
  /// Bit p set iff qcfg_[p].strict.
  std::uint32_t strict_mask_ = 0;
  std::array<QueueConfig, kNumPriorities> qcfg_{};
  std::array<std::int64_t, kNumPriorities> deficit_{};
  int rr_next_ = 0;
  bool rr_granted_ = false;  // quantum already granted at rr_next_'s visit

  std::array<Time, kNumPriorities> paused_until_{};
  std::array<Time, kNumPriorities> pause_started_{};
  std::array<bool, kNumPriorities> pause_active_{};

  bool busy_ = false;
  PortCounters counters_;

  /// Impairment state lives behind a pointer: the healthy hot path pays one
  /// null check, and a constructed-but-disabled impairment draws no RNG (the
  /// determinism gate asserts the digest is unchanged in that case).
  struct ImpairState {
    LinkImpairment cfg;
    Rng rng;
    std::uint64_t flow_key;  // per-impairment key for the flow-subset hash
    ImpairmentStats stats;
    explicit ImpairState(const LinkImpairment& c)
        : cfg(c), rng(c.seed), flow_key(mix64(c.seed ^ 0x9e3779b97f4a7c15ull)) {}
  };
  std::unique_ptr<ImpairState> impair_;
};

}  // namespace rocelab
