#include "src/link/port.h"

#include <algorithm>
#include <stdexcept>

#include "src/link/node.h"

namespace rocelab {

namespace {
constexpr std::int64_t kDwrrQuantumBytes = 1600;
}

EgressPort::EgressPort(Simulator& sim, Node& owner, int index)
    : sim_(sim), owner_(owner), index_(index) {}

void EgressPort::connect(Node* peer, int peer_port, Bandwidth bandwidth, Time prop_delay) {
  peer_ = peer;
  peer_port_ = peer_port;
  bandwidth_ = bandwidth;
  prop_delay_ = prop_delay;
}

MacAddr EgressPort::peer_mac() const {
  if (peer_ == nullptr) throw std::logic_error("peer_mac on unconnected port");
  return peer_->port_mac(peer_port_);
}

void EgressPort::enqueue(Packet pkt) {
  if (!link_up_) {
    // Link is down: the packet is lost at the port. on_dequeue keeps the
    // owner's (in, out, pg) accounting consistent; the MMU charge is
    // released when the packet destructs.
    if (on_dequeue) on_dequeue(pkt, pkt.priority);
    ++counters_.link_down_drops;
    return;
  }
  const auto prio = static_cast<std::size_t>(pkt.priority);
  queue_bytes_[prio] += pkt.frame_bytes;
  total_bytes_ += pkt.frame_bytes;
  queues_[prio].push_back(std::move(pkt));
  try_send();
}

void EgressPort::enqueue_control(Packet pkt) {
  if (!link_up_) {
    ++counters_.link_down_drops;
    return;
  }
  control_.push_back(std::move(pkt));
  try_send();
}

void EgressPort::set_up(bool up) {
  if (link_up_ == up) return;
  link_up_ = up;
  ++link_epoch_;
  if (!up) {
    // Drop everything queued and reset PFC pause state: a pause that was
    // asserted across this link is meaningless once the link is gone.
    for (int p = 0; p < kNumPriorities; ++p) {
      const auto i = static_cast<std::size_t>(p);
      counters_.link_down_drops += static_cast<std::int64_t>(queues_[i].size());
      counters_.egress_drops -= static_cast<std::int64_t>(queues_[i].size());
      flush_priority(p);
      if (pause_active_[i]) {
        counters_.paused_time[i] += sim_.now() - pause_started_[i];
        pause_active_[i] = false;
      }
    }
    counters_.link_down_drops += static_cast<std::int64_t>(control_.size());
    control_.clear();
  } else {
    try_send();
  }
}

std::size_t EgressPort::flush_priority(int prio) {
  const auto i = static_cast<std::size_t>(prio);
  const std::size_t n = queues_[i].size();
  for (auto& pkt : queues_[i]) {
    if (on_dequeue) on_dequeue(pkt, prio);
    ++counters_.egress_drops;
  }
  total_bytes_ -= queue_bytes_[i];
  queue_bytes_[i] = 0;
  deficit_[i] = 0;
  queues_[i].clear();
  return n;
}

void EgressPort::settle_pause(int prio) {
  const auto i = static_cast<std::size_t>(prio);
  if (pause_active_[i] && sim_.now() >= paused_until_[i]) {
    counters_.paused_time[i] += paused_until_[i] - pause_started_[i];
    pause_active_[i] = false;
  }
}

bool EgressPort::paused(int prio) const {
  const auto i = static_cast<std::size_t>(prio);
  return pause_active_[i] && sim_.now() < paused_until_[i];
}

bool EgressPort::fully_blocked() const {
  if (!control_.empty()) return false;
  bool any_queued = false;
  for (int p = 0; p < kNumPriorities; ++p) {
    if (queues_[static_cast<std::size_t>(p)].empty()) continue;
    any_queued = true;
    if (!paused(p)) return false;
  }
  return any_queued;
}

void EgressPort::receive_pause(int prio, std::uint16_t quanta) {
  const auto i = static_cast<std::size_t>(prio);
  settle_pause(prio);
  if (quanta == 0) {
    // XON: resume immediately.
    if (pause_active_[i]) {
      counters_.paused_time[i] += sim_.now() - pause_started_[i];
      pause_active_[i] = false;
    }
    try_send();
    return;
  }
  const Time until = sim_.now() + static_cast<Time>(quanta) * quantum_time();
  if (!pause_active_[i]) {
    pause_active_[i] = true;
  } else {
    // Refresh while paused: bank the elapsed interval so monitoring sees
    // in-progress pause time (§5.2 pause intervals).
    counters_.paused_time[i] += sim_.now() - pause_started_[i];
  }
  pause_started_[i] = sim_.now();
  paused_until_[i] = until;
  // Kick the transmitter when the pause expires on its own.
  sim_.schedule_at(until, [this, prio] {
    settle_pause(prio);
    try_send();
  });
}

int EgressPort::pick_queue() {
  // Strict-priority queues first, highest index wins (convention: the
  // real-time class is configured strict at a high priority).
  for (int p = kNumPriorities - 1; p >= 0; --p) {
    const auto i = static_cast<std::size_t>(p);
    if (qcfg_[i].strict && !queues_[i].empty() && !paused(p)) return p;
  }
  auto eligible = [this](int p) {
    const auto i = static_cast<std::size_t>(p);
    return !qcfg_[i].strict && !queues_[i].empty() && !paused(p);
  };
  int first_eligible = -1;
  for (int p = 0; p < kNumPriorities; ++p) {
    if (eligible(p)) {
      first_eligible = p;
      break;
    }
  }
  if (first_eligible < 0) return -1;

  // Deficit round robin: a queue receives its quantum once per visit of the
  // round-robin pointer and is served for as long as its deficit covers the
  // head-of-line packet.
  for (int attempts = 0; attempts < 2 * kNumPriorities; ++attempts) {
    const int p = rr_next_;
    const auto i = static_cast<std::size_t>(p);
    if (eligible(p)) {
      const std::int64_t head = queues_[i].front().frame_bytes;
      if (deficit_[i] >= head) return p;
      if (!rr_granted_) {
        rr_granted_ = true;
        deficit_[i] += kDwrrQuantumBytes * std::max(1, qcfg_[i].weight);
        if (deficit_[i] >= head) return p;
      }
    }
    rr_next_ = (rr_next_ + 1) % kNumPriorities;
    rr_granted_ = false;
  }
  // Degenerate configs (e.g. quantum never covering a jumbo head): don't
  // wedge the port — serve the first eligible queue.
  return first_eligible;
}

void EgressPort::try_send() {
  if (busy_ || peer_ == nullptr || !link_up_) return;

  Packet pkt;
  bool is_control = false;
  if (!control_.empty()) {
    pkt = std::move(control_.front());
    control_.pop_front();
    is_control = true;
  } else {
    const int p = pick_queue();
    if (p < 0) return;
    const auto i = static_cast<std::size_t>(p);
    pkt = std::move(queues_[i].front());
    queues_[i].pop_front();
    queue_bytes_[i] -= pkt.frame_bytes;
    total_bytes_ -= pkt.frame_bytes;
    deficit_[i] -= pkt.frame_bytes;
    if (queues_[i].empty()) deficit_[i] = 0;
    if (on_dequeue) on_dequeue(pkt, p);
    pkt.charge.reset();  // this copy is leaving the device: release its share
  }

  const auto prio = static_cast<std::size_t>(pkt.priority);
  if (is_control && pkt.kind == PacketKind::kPfcPause) {
    for (int p = 0; p < kNumPriorities; ++p) {
      if (pkt.pfc && pkt.pfc->enabled(p)) ++counters_.tx_pause[static_cast<std::size_t>(p)];
    }
  } else {
    ++counters_.tx_packets[prio];
    counters_.tx_bytes[prio] += pkt.frame_bytes;
  }

  const Time ser = serialization_time(pkt.frame_bytes + kWireOverheadBytes, bandwidth_);
  busy_ = true;
  sim_.schedule_in(ser, [this] {
    busy_ = false;
    try_send();
  });
  // Delivery is gated on the link epoch: if the link goes down (and maybe
  // back up) while the packet is in flight, the packet is lost.
  sim_.schedule_in(ser + prop_delay_,
                   [this, epoch = link_epoch_, pkt = std::move(pkt)]() mutable {
                     if (!link_up_ || epoch != link_epoch_ || peer_ == nullptr) {
                       ++counters_.link_down_drops;
                       return;
                     }
                     peer_->deliver(std::move(pkt), peer_port_);
                   });
  // Notify at dequeue time — this is when queue room actually appears.
  // (Reentrant enqueues are safe: busy_ is already set.)
  if (!is_control && on_drain) on_drain();
}

}  // namespace rocelab
