#include "src/link/port.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "src/link/node.h"
#include "src/monitor/metric_registry.h"
#include "src/net/packet_pool.h"
#include "src/sim/shard_group.h"

namespace rocelab {

namespace {
constexpr std::int64_t kDwrrQuantumBytes = 1600;
}

EgressPort::EgressPort(Simulator& sim, Node& owner, int index)
    : sim_(sim), owner_(owner), index_(index) {
  // §5.2 telemetry plane: every per-port counter is queryable by name the
  // moment the port exists. Registration stores pointers into counters_;
  // the data path keeps bumping plain fields at zero extra cost.
  MetricRegistry& reg = sim_.metrics();
  const std::string prefix = owner.name() + "/port" + std::to_string(index);
  reg.add_lanes(this, prefix, "tx_packets", counters_.tx_packets.data(), kNumPriorities);
  reg.add_lanes(this, prefix, "tx_bytes", counters_.tx_bytes.data(), kNumPriorities);
  reg.add_lanes(this, prefix, "rx_packets", counters_.rx_packets.data(), kNumPriorities);
  reg.add_lanes(this, prefix, "rx_bytes", counters_.rx_bytes.data(), kNumPriorities);
  reg.add_lanes(this, prefix, "tx_pause", counters_.tx_pause.data(), kNumPriorities);
  reg.add_lanes(this, prefix, "rx_pause", counters_.rx_pause.data(), kNumPriorities);
  reg.add_lanes(this, prefix, "paused_time", counters_.paused_time.data(), kNumPriorities);
  reg.add(this, prefix + "/ingress_drops", &counters_.ingress_drops);
  reg.add(this, prefix + "/headroom_overflow_drops", &counters_.headroom_overflow_drops);
  reg.add(this, prefix + "/egress_drops", &counters_.egress_drops);
  reg.add(this, prefix + "/arp_incomplete_drops", &counters_.arp_incomplete_drops);
  reg.add(this, prefix + "/mac_mismatch_drops", &counters_.mac_mismatch_drops);
  reg.add(this, prefix + "/link_down_drops", &counters_.link_down_drops);
  reg.add(this, prefix + "/fcs_errors", &counters_.fcs_errors);
  reg.add(this, prefix + "/impairment_drops", &counters_.impairment_drops);
  reg.add(this, prefix + "/filtered_drops", &counters_.filtered_drops);
  reg.add(this, prefix + "/corrupt_delivered", &counters_.corrupt_delivered);
  reg.add(this, prefix + "/queued_bytes", &total_bytes_, MetricKind::kGauge);
}

EgressPort::~EgressPort() { sim_.metrics().remove_owner(this); }

void EgressPort::connect(Node* peer, int peer_port, Bandwidth bandwidth, Time prop_delay) {
  peer_ = peer;
  peer_port_ = peer_port;
  bandwidth_ = bandwidth;
  prop_delay_ = prop_delay;
  peer_mac_ = peer->port_mac(peer_port);
  ps_per_byte_ = (8 * kSecond) % bandwidth == 0 ? (8 * kSecond) / bandwidth : 0;
  // Shard-boundary detection: a peer on a different shard of the same group
  // makes this direction a PDES boundary — its propagation delay joins the
  // conservative lookahead, and deliveries go through the pair's channel.
  cross_ = nullptr;
  ShardGroup* group = sim_.group();
  Simulator& peer_sim = peer->sim();
  if (group != nullptr && peer_sim.group() == group &&
      peer_sim.shard_tag() != sim_.shard_tag()) {
    group->note_boundary(sim_.shard_tag(), peer_sim.shard_tag(), prop_delay);
    cross_ = &group->channel(sim_.shard_tag(), peer_sim.shard_tag());
  }
}

void EgressPort::enqueue(PooledPacket pp) {
  if (!link_up_) {
    // Link is down: the packet is lost at the port. on_dequeue keeps the
    // owner's (in, out, pg) accounting consistent; the MMU charge is
    // released when the packet destructs.
    if (on_dequeue) on_dequeue(*pp, pp->priority);
    ++counters_.link_down_drops;
    return;
  }
  const auto prio = static_cast<std::size_t>(pp->priority);
  queue_bytes_[prio] += pp->frame_bytes;
  total_bytes_ += pp->frame_bytes;
  queues_[prio].push_back(std::move(pp));
  nonempty_ |= 1u << prio;
  try_send();
}

void EgressPort::enqueue_control(Packet pkt) {
  if (!link_up_) {
    ++counters_.link_down_drops;
    return;
  }
  control_.push_back(acquire_pooled_packet(std::move(pkt)));
  try_send();
}

void EgressPort::set_impairment(const LinkImpairment& imp) {
  impair_ = std::make_unique<ImpairState>(imp);
}

const ImpairmentStats& EgressPort::impairment_stats() const {
  static const ImpairmentStats kEmpty{};
  return impair_ != nullptr ? impair_->stats : kEmpty;
}

void EgressPort::set_up(bool up) {
  if (link_up_ == up) return;
  link_up_ = up;
  ++link_epoch_;
  if (!up) {
    // Drop everything queued and reset PFC pause state: a pause that was
    // asserted across this link is meaningless once the link is gone.
    for (int p = 0; p < kNumPriorities; ++p) {
      const auto i = static_cast<std::size_t>(p);
      counters_.link_down_drops += static_cast<std::int64_t>(queues_[i].size());
      counters_.egress_drops -= static_cast<std::int64_t>(queues_[i].size());
      flush_priority(p);
      if (pause_active_[i]) {
        counters_.paused_time[i] += sim_.now() - pause_started_[i];
        pause_active_[i] = false;
      }
    }
    counters_.link_down_drops += static_cast<std::int64_t>(control_.size());
    control_.clear();
  } else {
    try_send();
  }
}

std::size_t EgressPort::flush_priority(int prio) {
  const auto i = static_cast<std::size_t>(prio);
  const std::size_t n = queues_[i].size();
  for (auto& pp : queues_[i]) {
    if (on_dequeue) on_dequeue(*pp, prio);
    ++counters_.egress_drops;
  }
  total_bytes_ -= queue_bytes_[i];
  queue_bytes_[i] = 0;
  deficit_[i] = 0;
  queues_[i].clear();
  nonempty_ &= ~(1u << static_cast<unsigned>(prio));
  return n;
}

void EgressPort::settle_pause(int prio) {
  const auto i = static_cast<std::size_t>(prio);
  if (pause_active_[i] && sim_.now() >= paused_until_[i]) {
    counters_.paused_time[i] += paused_until_[i] - pause_started_[i];
    pause_active_[i] = false;
  }
}

bool EgressPort::paused(int prio) const {
  const auto i = static_cast<std::size_t>(prio);
  return pause_active_[i] && sim_.now() < paused_until_[i];
}

bool EgressPort::fully_blocked() const {
  if (!control_.empty()) return false;
  bool any_queued = false;
  for (int p = 0; p < kNumPriorities; ++p) {
    if (queues_[static_cast<std::size_t>(p)].empty()) continue;
    any_queued = true;
    if (!paused(p)) return false;
  }
  return any_queued;
}

void EgressPort::receive_pause(int prio, std::uint16_t quanta) {
  const auto i = static_cast<std::size_t>(prio);
  settle_pause(prio);
  if (quanta == 0) {
    // XON: resume immediately.
    if (pause_active_[i]) {
      counters_.paused_time[i] += sim_.now() - pause_started_[i];
      pause_active_[i] = false;
    }
    try_send();
    return;
  }
  const Time until = sim_.now() + static_cast<Time>(quanta) * quantum_time();
  if (!pause_active_[i]) {
    pause_active_[i] = true;
  } else {
    // Refresh while paused: bank the elapsed interval so monitoring sees
    // in-progress pause time (§5.2 pause intervals).
    counters_.paused_time[i] += sim_.now() - pause_started_[i];
  }
  pause_started_[i] = sim_.now();
  paused_until_[i] = until;
  // Kick the transmitter when the pause expires on its own.
  sim_.schedule_at(until, [this, prio] {
    settle_pause(prio);
    try_send();
  });
}

int EgressPort::pick_queue() {
  // Strict-priority queues first, highest index wins (convention: the
  // real-time class is configured strict at a high priority).
  std::uint32_t strict_avail = nonempty_ & strict_mask_;
  while (strict_avail != 0) {
    const int p = 31 - std::countl_zero(strict_avail);
    if (!paused(p)) return p;
    strict_avail &= ~(1u << static_cast<unsigned>(p));
  }
  // Eligible = non-strict, non-empty, not paused. Pause state cannot change
  // inside this call, so the mask is computed once up front.
  std::uint32_t elig = 0;
  for (std::uint32_t m = nonempty_ & ~strict_mask_; m != 0; m &= m - 1) {
    const int p = std::countr_zero(m);
    if (!paused(p)) elig |= 1u << static_cast<unsigned>(p);
  }
  if (elig == 0) return -1;
  const int first_eligible = std::countr_zero(elig);

  // Deficit round robin: a queue receives its quantum once per visit of the
  // round-robin pointer and is served for as long as its deficit covers the
  // head-of-line packet. A visit to an ineligible queue only advances the
  // pointer and clears the grant flag, so runs of them are applied in one
  // jump — state after the jump is identical to stepping through them.
  int attempts = 0;
  while (attempts < 2 * kNumPriorities) {
    if (((elig >> static_cast<unsigned>(rr_next_)) & 1u) == 0) {
      const auto r = static_cast<unsigned>(rr_next_);
      const std::uint32_t rot =
          ((elig >> r) | (elig << (static_cast<unsigned>(kNumPriorities) - r))) & 0xffu;
      int dist = std::countr_zero(rot);  // >= 1: bit 0 of rot is rr_next_'s, known clear
      const int budget = 2 * kNumPriorities - attempts;
      if (dist > budget) dist = budget;  // don't visit past the attempt cap
      attempts += dist;
      rr_next_ = (rr_next_ + dist) % kNumPriorities;
      rr_granted_ = false;
      continue;  // re-check the cap before the eligible visit
    }
    const auto i = static_cast<std::size_t>(rr_next_);
    const std::int64_t head = queues_[i].front()->frame_bytes;
    if (deficit_[i] >= head) return rr_next_;
    if (!rr_granted_) {
      rr_granted_ = true;
      deficit_[i] += kDwrrQuantumBytes * std::max(1, qcfg_[i].weight);
      if (deficit_[i] >= head) return rr_next_;
    }
    rr_next_ = (rr_next_ + 1) % kNumPriorities;
    rr_granted_ = false;
    ++attempts;
  }
  // Degenerate configs (e.g. quantum never covering a jumbo head): don't
  // wedge the port — serve the first eligible queue.
  return first_eligible;
}

void EgressPort::try_send() {
  if (busy_ || peer_ == nullptr || !link_up_) return;
  // Fast path for the common "kicked while empty" case (every dequeue fires
  // on_drain, which often finds nothing new to send).
  if (control_.empty() && total_bytes_ == 0) return;

  PooledPacket pp;
  bool is_control = false;
  if (!control_.empty()) {
    pp = std::move(control_.front());
    control_.pop_front();
    is_control = true;
  } else {
    const int p = pick_queue();
    if (p < 0) return;
    const auto i = static_cast<std::size_t>(p);
    pp = std::move(queues_[i].front());
    queues_[i].pop_front();
    queue_bytes_[i] -= pp->frame_bytes;
    total_bytes_ -= pp->frame_bytes;
    deficit_[i] -= pp->frame_bytes;
    if (queues_[i].empty()) {
      deficit_[i] = 0;
      nonempty_ &= ~(1u << i);
    }
    if (on_dequeue) on_dequeue(*pp, p);
    pp->charge.reset();  // this copy is leaving the device: release its share
  }

  const auto prio = static_cast<std::size_t>(pp->priority);
  if (is_control && pp->kind == PacketKind::kPfcPause) {
    for (int p = 0; p < kNumPriorities; ++p) {
      if (pp->pfc && pp->pfc->enabled(p)) ++counters_.tx_pause[static_cast<std::size_t>(p)];
    }
  } else {
    ++counters_.tx_packets[prio];
    counters_.tx_bytes[prio] += pp->frame_bytes;
  }

  const Time ser = ser_time(pp->frame_bytes + kWireOverheadBytes);
  busy_ = true;
  sim_.schedule_in(ser, [this] {
    busy_ = false;
    try_send();
  });

  // Gray-failure impairment (§5.2), decided at transmit time so the wire
  // occupancy and tx counters above are unchanged — the sending side looks
  // healthy, which is exactly what makes these faults gray. Inactive (or
  // merely constructed-but-disabled) impairments draw no randomness.
  bool eaten = false;       // blackholed: the frame never reaches the peer
  bool fcs_corrupt = false; // arrives, but the receiver's FCS check fails
  bool escaped = false;     // corrupted AND delivered: the FCS missed it
  Time extra = 0;           // added one-way delay + jitter
  if (impair_ != nullptr && impair_->cfg.active()) {
    ImpairState& im = *impair_;
    if (im.cfg.blackhole) {
      ++im.stats.blackhole_drops;
      ++counters_.impairment_drops;
      eaten = true;
    } else if (im.cfg.flow_blackhole_frac > 0.0 && pp->ip &&
               static_cast<double>(five_tuple_hash(*pp, im.flow_key)) * 0x1.0p-64 <
                   im.cfg.flow_blackhole_frac) {
      ++im.stats.flow_drops;
      ++counters_.impairment_drops;
      eaten = true;
    } else {
      if (im.cfg.fcs_drop_rate > 0.0 && im.rng.bernoulli(im.cfg.fcs_drop_rate)) {
        ++im.stats.fcs_drops;
        fcs_corrupt = true;
      }
      // §5.2 silent corruption: the frame is damaged on the wire, and the
      // escape split decides whether the receiver's FCS check catches it
      // (counted as an fcs drop) or the corruption escapes link-level
      // checking and the frame is delivered carrying a bad payload. Both
      // draws are gated so pre-existing fcs-only impairments keep their
      // exact RNG sequence.
      if (!fcs_corrupt && im.cfg.corrupt_deliver_rate > 0.0 &&
          im.rng.bernoulli(im.cfg.corrupt_deliver_rate)) {
        if (im.rng.bernoulli(im.cfg.escape_fcs_frac)) {
          ++im.stats.corrupt_delivered;
          escaped = true;
        } else {
          ++im.stats.fcs_drops;
          fcs_corrupt = true;
        }
      }
      if (im.cfg.added_delay > 0 || im.cfg.jitter > 0) {
        extra = im.cfg.added_delay +
                (im.cfg.jitter > 0 ? im.rng.uniform_int(0, im.cfg.jitter) : 0);
        ++im.stats.delayed;
      }
    }
  }

  if (eaten) {
    // Nothing to schedule: the frame occupied the wire for `ser` and died.
  } else if (fcs_corrupt) {
    // The corrupted frame still arrives — into the receiver's FCS check,
    // which discards it and bumps the rx-side error counter the monitoring
    // plane watches. The payload box is released here at tx time.
    if (cross_ != nullptr) {
      cross_->push_fcs_error(sim_.now() + ser + prop_delay_ + extra, peer_, peer_port_);
    } else {
      sim_.schedule_in(ser + prop_delay_ + extra, [this, epoch = link_epoch_] {
        if (!link_up_ || epoch != link_epoch_ || peer_ == nullptr) return;
        ++peer_->port(peer_port_).counters().fcs_errors;
      });
    }
  } else if (cross_ != nullptr) {
    // Shard boundary: hand the box to the peer shard's channel (drained in
    // deterministic (time, src, seq) order at the barrier). The MMU charge
    // was released at dequeue above, so nothing in the box still points at
    // this shard's mutable state. In-flight link faults are gated on the
    // *receiving* direction's state at arrival rather than this port's
    // epoch — the one (documented) fidelity difference of multi-shard runs.
    if (escaped) pp->corrupt = true;
    cross_->push_deliver(sim_.now() + ser + prop_delay_ + extra, peer_, peer_port_,
                         pp.release(), /*newly_corrupt=*/escaped);
  } else {
    // Delivery is gated on the link epoch: if the link goes down (and maybe
    // back up) while the packet is in flight, the packet is lost. The packet
    // rides in a pooled box so the closure stays inside the event core's
    // inline buffer (no per-packet allocation on the transmit path).
    // An escaped corruption bumps the receiving port's corrupt_delivered at
    // arrival — the PHY-layer telemetry of the hop that damaged the frame;
    // downstream hops re-serialize the (damaged) payload cleanly and see
    // nothing, which is what makes the fault end-to-end.
    if (escaped) pp->corrupt = true;
    sim_.schedule_in(ser + prop_delay_ + extra,
                     [this, epoch = link_epoch_, newly = escaped,
                      pp = std::move(pp)]() mutable {
                       if (!link_up_ || epoch != link_epoch_ || peer_ == nullptr) {
                         ++counters_.link_down_drops;
                         return;
                       }
                       if (newly) ++peer_->port(peer_port_).counters().corrupt_delivered;
                       peer_->deliver(std::move(pp), peer_port_);
                     });
  }
  // Notify at dequeue time — this is when queue room actually appears.
  // (Reentrant enqueues are safe: busy_ is already set.)
  if (!is_control && on_drain) on_drain();
}

}  // namespace rocelab
