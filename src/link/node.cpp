#include "src/link/node.h"

namespace rocelab {

// Node ids come from the owning Simulator so that identically constructed
// fabrics — even within one process — get identical ids, and therefore
// identical MACs, ECMP seeds, and RNG streams.
Node::Node(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)), id_(sim.allocate_node_id()) {}

EgressPort& Node::add_port() {
  // Locally administered unicast MAC: 02:00:<node id:3B>:<port:1B>.
  // Precomputed here so the forwarding path reads a cached value.
  macs_.push_back(MacAddr::from_u64((0x020000000000ull) |
                                    (static_cast<std::uint64_t>(id_) << 8) |
                                    static_cast<std::uint64_t>(port_count() & 0xff)));
  ports_.push_back(std::make_unique<EgressPort>(sim_, *this, port_count()));
  return *ports_.back();
}

MacAddr Node::port_mac(int i) const {
  return macs_.at(static_cast<std::size_t>(i));
}

void Node::deliver(PooledPacket pp, int in_port) {
  if (rx_tap) rx_tap(*pp, in_port);
  auto& counters = port(in_port).counters();
  if (pp->kind == PacketKind::kPfcPause) {
    PfcFrame frame = pp->pfc.value_or(PfcFrame{});
    for (int p = 0; p < kNumPriorities; ++p) {
      if (!frame.enabled(p)) continue;
      ++counters.rx_pause[static_cast<std::size_t>(p)];
      port(in_port).receive_pause(p, frame.quanta[static_cast<std::size_t>(p)]);
    }
    on_pause_rx(in_port, frame);
    return;  // pause frames are link-local, never forwarded
  }
  const auto prio = static_cast<std::size_t>(pp->priority);
  ++counters.rx_packets[prio];
  counters.rx_bytes[prio] += pp->frame_bytes;
  handle_packet(std::move(pp), in_port);
}

void Node::set_link_up(int port_index, bool up) {
  auto& p = port(port_index);
  if (!p.connected() || p.link_up() == up) return;
  Node* peer = p.peer();
  const int peer_port = p.peer_port();
  p.set_up(up);
  peer->port(peer_port).set_up(up);
  on_link_change(port_index, up);
  peer->on_link_change(peer_port, up);
}

void Node::send_pause(int out_port, int prio, std::uint16_t quanta) {
  if (!allow_pause_tx_) return;
  last_pause_tx_ = sim_.now();
  Packet pkt;
  pkt.kind = PacketKind::kPfcPause;
  pkt.frame_bytes = kPfcFrameBytes;
  pkt.eth.dst = MacAddr::pfc_multicast();
  pkt.eth.src = port_mac(out_port);
  pkt.eth.ethertype = kEtherTypeMacControl;
  PfcFrame frame;
  frame.set(prio, quanta);
  pkt.pfc = frame;
  pkt.created_at = sim_.now();
  port(out_port).enqueue_control(std::move(pkt));
}

void connect_nodes(Node& a, int port_a, Node& b, int port_b, Bandwidth bandwidth,
                   Time prop_delay) {
  a.port(port_a).connect(&b, port_b, bandwidth, prop_delay);
  b.port(port_b).connect(&a, port_a, bandwidth, prop_delay);
}

}  // namespace rocelab
