// Link-health monitoring (§5.2): the per-port error/drop accounting the
// paper's management plane watches to catch lossy-but-up links. Two
// surfaces: a one-shot dump of every drop class per (node, port) — MMU
// drops next to FCS errors, injected drop-filter hits, and impairment
// ground truth — and a periodic watcher that flags ports whose FCS-error
// count moves within a window (the paper's rule: any FCS errors on a link
// mean the cable is bad, replace it).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/topo/fabric.h"

namespace rocelab {

/// One row per (node, port): everything §5.2 graphs, in one place.
struct PortHealth {
  std::string node;
  int port = -1;
  std::int64_t rx_packets = 0;        // all priorities
  std::int64_t fcs_errors = 0;        // rx frames failing the FCS check
  std::int64_t corrupt_delivered = 0; // rx frames corrupted past the FCS (§5.2)
  std::int64_t mmu_drops = 0;         // ingress + headroom-overflow drops
  std::int64_t egress_drops = 0;
  std::int64_t filtered_drops = 0;    // Switch::set_drop_filter hits at this port
  std::int64_t impairment_drops = 0;  // tx-side blackhole ground truth
  std::int64_t link_down_drops = 0;
  /// Selective-repeat NIC counters (host rows only, zero on switches): with
  /// PFC off there are no pause counters to subpoena, so the loss evidence
  /// the localizer/incident plane needs is the NIC's own repair activity —
  /// selective retransmissions (sender side) and out-of-order buffering
  /// (receiver side), rolled up from rdma/selrep/* registry lanes.
  std::int64_t selrep_retx = 0;
  std::int64_t selrep_ooo = 0;
  /// ECMP weight on the owning switch (always 1 for host ports). 0 means
  /// the self-healing plane costed the port out of its groups — a
  /// mitigated port shows in the incident dump even with clean counters.
  int ecmp_weight = 1;

  /// FCS errors per received frame — the gray-failure severity signal.
  [[nodiscard]] double fcs_rate() const {
    const std::int64_t seen = rx_packets + fcs_errors;
    return seen == 0 ? 0.0 : static_cast<double>(fcs_errors) / static_cast<double>(seen);
  }
  [[nodiscard]] bool clean() const {
    return fcs_errors == 0 && corrupt_delivered == 0 && mmu_drops == 0 && egress_drops == 0 &&
           filtered_drops == 0 && impairment_drops == 0 && link_down_drops == 0 &&
           selrep_retx == 0 && selrep_ooo == 0 && ecmp_weight == 1;
  }
};

/// Every (node, port) of the fabric, switches first then hosts, in a
/// deterministic order.
[[nodiscard]] std::vector<PortHealth> collect_port_health(const Fabric& fabric);

/// Table dump; with only_unclean (the default) healthy ports are skipped so
/// the output reads like an incident report.
[[nodiscard]] std::string port_health_dump(const Fabric& fabric, bool only_unclean = true);

/// Periodic FCS watcher: every `interval` it diffs each port's FCS counter
/// — and the corrupt_delivered counter, catching cables whose damage
/// escapes the FCS check entirely — and flags ports whose per-window delta
/// reaches `fcs_alarm_per_window`. Deliberately counter-driven — it sees
/// exactly what a production NMS polling switch counters would see,
/// independent of the pingmesh plane.
class LinkHealthMonitor {
 public:
  struct Options {
    Time interval = milliseconds(1);
    std::int64_t fcs_alarm_per_window = 1;  // §5.2: any FCS errors => bad cable
  };

  LinkHealthMonitor(Fabric& fabric, Options opts) : fabric_(fabric), opts_(opts) {}
  void start();
  void stop() { running_ = false; }

  /// Flagged (node name, port) pairs, in flag order.
  [[nodiscard]] const std::vector<std::pair<std::string, int>>& flagged() const {
    return flagged_;
  }
  [[nodiscard]] bool is_flagged(const std::string& node, int port) const;
  [[nodiscard]] std::int64_t windows() const { return windows_; }

 private:
  void tick();

  Fabric& fabric_;
  Options opts_;
  bool running_ = false;
  std::int64_t windows_ = 0;
  std::map<std::pair<std::string, int>, std::int64_t> last_fcs_;
  std::map<std::pair<std::string, int>, std::int64_t> last_corrupt_;
  std::vector<std::pair<std::string, int>> flagged_;
};

}  // namespace rocelab
