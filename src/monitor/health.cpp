#include "src/monitor/health.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/monitor/metric_registry.h"

namespace rocelab {

namespace {

/// Reads entirely through the §5.2 metric registry — the same query path
/// an operator's monitoring service would use — rather than reaching into
/// PortCounters by hand.
PortHealth health_of(const MetricRegistry& reg, const Node& n, int p) {
  const std::string prefix = n.name() + "/port" + std::to_string(p);
  PortHealth h;
  h.node = n.name();
  h.port = p;
  h.rx_packets = reg.sum(prefix + "/prio*/rx_packets");
  h.fcs_errors = reg.sum(prefix + "/fcs_errors");
  h.corrupt_delivered = reg.sum(prefix + "/corrupt_delivered");
  h.mmu_drops = reg.sum(prefix + "/ingress_drops") + reg.sum(prefix + "/headroom_overflow_drops");
  h.egress_drops = reg.sum(prefix + "/egress_drops");
  h.filtered_drops = reg.sum(prefix + "/filtered_drops");
  h.impairment_drops = reg.sum(prefix + "/impairment_drops");
  h.link_down_drops = reg.sum(prefix + "/link_down_drops");
  return h;
}

}  // namespace

std::vector<PortHealth> collect_port_health(const Fabric& fabric) {
  const MetricRegistry& reg = fabric.sim().metrics();
  std::vector<PortHealth> out;
  for (const auto& sw : fabric.switches()) {
    for (int p = 0; p < sw->port_count(); ++p) {
      PortHealth h = health_of(reg, *sw, p);
      h.ecmp_weight = sw->port_weight(p);
      out.push_back(std::move(h));
    }
  }
  for (const auto& h : fabric.hosts()) {
    for (int p = 0; p < h->port_count(); ++p) {
      PortHealth ph = health_of(reg, *h, p);
      if (p == 0) {
        // NIC-level rollups (the NIC is not per-port): attach to port 0 so
        // summing rows never double-counts on multi-port hosts.
        ph.selrep_retx = reg.sum(h->name() + "/rdma/selrep/retx");
        ph.selrep_ooo = reg.sum(h->name() + "/rdma/selrep/ooo_buffered");
      }
      out.push_back(std::move(ph));
    }
  }
  return out;
}

std::string port_health_dump(const Fabric& fabric, bool only_unclean) {
  std::ostringstream os;
  os << "node:port            rx_pkts      fcs  corrupt      mmu   egress filtered   impair "
        "linkdown sel_retx  sel_ooo weight\n";
  for (const PortHealth& h : collect_port_health(fabric)) {
    if (only_unclean && h.clean()) continue;
    char id[64];
    std::snprintf(id, sizeof id, "%s:%d", h.node.c_str(), h.port);
    char line[256];
    std::snprintf(line, sizeof line,
                  "%-18s %9lld %8lld %8lld %8lld %8lld %8lld %8lld %8lld %8lld %8lld %6d\n",
                  id, static_cast<long long>(h.rx_packets), static_cast<long long>(h.fcs_errors),
                  static_cast<long long>(h.corrupt_delivered),
                  static_cast<long long>(h.mmu_drops), static_cast<long long>(h.egress_drops),
                  static_cast<long long>(h.filtered_drops),
                  static_cast<long long>(h.impairment_drops),
                  static_cast<long long>(h.link_down_drops),
                  static_cast<long long>(h.selrep_retx), static_cast<long long>(h.selrep_ooo),
                  h.ecmp_weight);
    os << line;
  }
  return os.str();
}

void LinkHealthMonitor::start() {
  if (running_) return;
  running_ = true;
  fabric_.control_sim().schedule_in(opts_.interval, [this] { tick(); });
}

bool LinkHealthMonitor::is_flagged(const std::string& node, int port) const {
  return std::find(flagged_.begin(), flagged_.end(), std::make_pair(node, port)) !=
         flagged_.end();
}

void LinkHealthMonitor::tick() {
  if (!running_) return;
  ++windows_;
  auto scan = [this](const Node& n) {
    for (int p = 0; p < n.port_count(); ++p) {
      const std::pair<std::string, int> key{n.name(), p};
      const std::int64_t cur = n.port(p).counters().fcs_errors;
      const std::int64_t cur_corrupt = n.port(p).counters().corrupt_delivered;
      std::int64_t& last = last_fcs_[key];
      std::int64_t& last_corrupt = last_corrupt_[key];
      const bool moved = cur - last >= opts_.fcs_alarm_per_window ||
                         cur_corrupt - last_corrupt >= opts_.fcs_alarm_per_window;
      if (moved && !is_flagged(key.first, key.second)) flagged_.push_back(key);
      last = cur;
      last_corrupt = cur_corrupt;
    }
  };
  for (const auto& sw : fabric_.switches()) scan(*sw);
  for (const auto& h : fabric_.hosts()) scan(*h);
  fabric_.control_sim().schedule_in(opts_.interval, [this] { tick(); });
}

}  // namespace rocelab
