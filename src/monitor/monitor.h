// Monitoring (§5.2): periodic snapshots of PFC pause-frame counters and
// RDMA traffic counters into time-bucketed series — the data behind
// Fig. 9(b) and Fig. 10(b) — plus an aggregate throughput monitor for
// Fig. 7(b)-style curves.
//
// All of these read through the MetricRegistry on the Simulator rather
// than walking component internals: a monitor is a set of name patterns
// plus a sampling interval.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/monitor/metric_registry.h"
#include "src/nic/host.h"
#include "src/sim/simulator.h"

namespace rocelab {

/// Tracks per-node PFC pause frames sent/received per interval, via the
/// registry patterns `<node>/port*/prio*/{rx,tx}_pause`.
class PauseMonitor {
 public:
  PauseMonitor(Simulator& sim, std::vector<Node*> nodes, Time interval);
  void start();

  [[nodiscard]] const IntervalSeries& rx_series(const Node* n) const { return rx_.at(n); }
  [[nodiscard]] const IntervalSeries& tx_series(const Node* n) const { return tx_.at(n); }
  [[nodiscard]] std::int64_t total_rx(const Node* n) const;
  [[nodiscard]] std::int64_t total_tx(const Node* n) const;
  /// Aggregate pause frames received across all monitored nodes, bucketed.
  [[nodiscard]] IntervalSeries aggregate_rx() const;
  /// Number of monitored nodes that received pause frames in bucket `b`.
  [[nodiscard]] int nodes_receiving_in_bucket(std::int64_t b) const;

 private:
  void tick();

  Simulator& sim_;
  std::vector<Node*> nodes_;
  Time interval_;
  std::vector<MetricSelection> rx_sel_;  // parallel to nodes_
  std::vector<MetricSelection> tx_sel_;
  std::unordered_map<const Node*, IntervalSeries> rx_;
  std::unordered_map<const Node*, IntervalSeries> tx_;
  std::vector<std::int64_t> last_rx_;
  std::vector<std::int64_t> last_tx_;
};

/// Periodically samples any numeric probe (egress queue depth, MMU shared
/// occupancy, QP rate, ...) into a percentile sampler plus a time series —
/// the data behind the DCQCN marking curves and the §6.2 buffer analysis.
class PeriodicSampler {
 public:
  using Probe = std::function<double()>;

  PeriodicSampler(Simulator& sim, Probe probe, Time interval)
      : sim_(sim), probe_(std::move(probe)), interval_(interval) {}
  ~PeriodicSampler() { sim_.cancel(ev_); }
  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  /// Idempotent: restarting cancels any pending tick first, so a
  /// stop()/start() cycle can never double-schedule.
  void start() {
    running_ = true;
    sim_.cancel(ev_);
    ev_ = sim_.schedule_in(interval_, [this] { tick(); });
  }
  /// Guarantees no further tick() fires: the already-scheduled callback is
  /// cancelled, not just flagged off.
  void stop() {
    running_ = false;
    sim_.cancel(ev_);
    ev_ = kInvalidEventId;
  }

  [[nodiscard]] const PercentileSampler& samples() const { return samples_; }
  [[nodiscard]] const std::vector<std::pair<Time, double>>& series() const { return series_; }
  [[nodiscard]] double max_seen() const { return samples_.empty() ? 0.0 : samples_.max(); }

 private:
  void tick() {
    if (!running_) return;
    const double v = probe_();
    samples_.add(v);
    series_.emplace_back(sim_.now(), v);
    ev_ = sim_.schedule_in(interval_, [this] { tick(); });
  }

  Simulator& sim_;
  Probe probe_;
  Time interval_;
  bool running_ = false;
  EventId ev_ = kInvalidEventId;
  PercentileSampler samples_;
  std::vector<std::pair<Time, double>> series_;
};

/// Interval sampling of registry selections: each watched pattern becomes a
/// channel. Counter channels record the per-interval delta of the summed
/// matches into an IntervalSeries (Fig. 9b/10b bucket curves); gauge
/// channels record the summed level into a PercentileSampler + series.
class RegistrySampler {
 public:
  RegistrySampler(Simulator& sim, Time interval) : sim_(sim), interval_(interval) {}
  ~RegistrySampler() { sim_.cancel(ev_); }
  RegistrySampler(const RegistrySampler&) = delete;
  RegistrySampler& operator=(const RegistrySampler&) = delete;

  /// Watch `pattern` under the name `channel`. Call before start().
  void watch(const std::string& channel, const std::string& pattern,
             MetricKind kind = MetricKind::kCounter);

  void start();
  void stop() {
    running_ = false;
    sim_.cancel(ev_);
    ev_ = kInvalidEventId;
  }

  [[nodiscard]] const IntervalSeries& series(const std::string& channel) const;
  [[nodiscard]] const PercentileSampler& samples(const std::string& channel) const;
  /// Current summed value of the channel's selection (live read).
  [[nodiscard]] std::int64_t current(const std::string& channel) const;

 private:
  struct Channel {
    std::string name;
    MetricSelection sel;
    MetricKind kind;
    IntervalSeries series;
    PercentileSampler samples;
    std::int64_t last = 0;
  };
  void tick();
  [[nodiscard]] const Channel& channel(const std::string& name) const;

  Simulator& sim_;
  Time interval_;
  bool running_ = false;
  EventId ev_ = kInvalidEventId;
  std::vector<Channel> channels_;  // ordered: deterministic iteration
};

/// Fleet SLA rollup: samples a registry selection (e.g.
/// "srv*/rdma/bytes_completed") every interval via MetricSelection::
/// sum_rate and keeps the resulting goodput-vs-time series in Gb/s — the
/// fleet-level view an incident manager's SLA floor is judged against.
/// Selection revalidation means hosts added after start() are rolled up
/// from their first full interval.
class SlaMonitor {
 public:
  SlaMonitor(Simulator& sim, std::string pattern, Time interval)
      : sim_(sim), sel_(sim.metrics(), std::move(pattern)), interval_(interval) {}
  ~SlaMonitor() { sim_.cancel(ev_); }
  SlaMonitor(const SlaMonitor&) = delete;
  SlaMonitor& operator=(const SlaMonitor&) = delete;

  void start();
  void stop() {
    running_ = false;
    sim_.cancel(ev_);
    ev_ = kInvalidEventId;
  }

  /// Per-interval goodput (Gb/s), one entry per completed interval.
  [[nodiscard]] const std::vector<std::pair<Time, double>>& gbps_series() const {
    return series_;
  }
  /// Lowest per-interval goodput after skipping the first `skip` intervals
  /// (warmup); +inf when nothing was sampled yet.
  [[nodiscard]] double min_gbps(std::size_t skip = 0) const;
  [[nodiscard]] double mean_gbps(std::size_t skip = 0) const;
  /// True iff every post-warmup interval held at or above `floor_gbps`.
  [[nodiscard]] bool held_floor(double floor_gbps, std::size_t skip = 0) const {
    return min_gbps(skip) >= floor_gbps;
  }

 private:
  void tick();

  Simulator& sim_;
  MetricSelection sel_;
  Time interval_;
  bool running_ = false;
  EventId ev_ = kInvalidEventId;
  MetricSample last_{};
  std::vector<std::pair<Time, double>> series_;
};

/// Aggregate RDMA receive throughput across hosts per interval
/// (frames/second and bits/second, as Fig. 7(b) plots).
class ThroughputMonitor {
 public:
  ThroughputMonitor(Simulator& sim, std::vector<Host*> hosts, Time interval);
  void start();

  /// Aggregate delivered payload bits/second in the last completed interval.
  [[nodiscard]] const std::vector<double>& interval_gbps() const { return gbps_; }
  [[nodiscard]] double mean_gbps(std::size_t skip_first = 0) const;
  [[nodiscard]] std::int64_t total_bytes() const;
  /// Reset the accounting origin (e.g. after warmup).
  void reset_origin();

 private:
  void tick();
  [[nodiscard]] std::int64_t sum_bytes() const;

  Simulator& sim_;
  std::vector<Host*> hosts_;
  Time interval_;
  std::int64_t last_bytes_ = 0;
  std::int64_t origin_bytes_ = 0;
  std::vector<double> gbps_;
};

}  // namespace rocelab
