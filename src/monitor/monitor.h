// Monitoring (§5.2): periodic snapshots of PFC pause-frame counters and
// RDMA traffic counters into time-bucketed series — the data behind
// Fig. 9(b) and Fig. 10(b) — plus an aggregate throughput monitor for
// Fig. 7(b)-style curves.
#pragma once

#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/nic/host.h"
#include "src/sim/simulator.h"

namespace rocelab {

/// Tracks per-node PFC pause frames sent/received per interval.
class PauseMonitor {
 public:
  PauseMonitor(Simulator& sim, std::vector<Node*> nodes, Time interval);
  void start();

  [[nodiscard]] const IntervalSeries& rx_series(const Node* n) const { return rx_.at(n); }
  [[nodiscard]] const IntervalSeries& tx_series(const Node* n) const { return tx_.at(n); }
  [[nodiscard]] std::int64_t total_rx(const Node* n) const;
  [[nodiscard]] std::int64_t total_tx(const Node* n) const;
  /// Aggregate pause frames received across all monitored nodes, bucketed.
  [[nodiscard]] IntervalSeries aggregate_rx() const;
  /// Number of monitored nodes that received pause frames in bucket `b`.
  [[nodiscard]] int nodes_receiving_in_bucket(std::int64_t b) const;

 private:
  void tick();

  Simulator& sim_;
  std::vector<Node*> nodes_;
  Time interval_;
  std::unordered_map<const Node*, IntervalSeries> rx_;
  std::unordered_map<const Node*, IntervalSeries> tx_;
  std::unordered_map<const Node*, std::int64_t> last_rx_;
  std::unordered_map<const Node*, std::int64_t> last_tx_;
};

/// Periodically samples any numeric probe (egress queue depth, MMU shared
/// occupancy, QP rate, ...) into a percentile sampler plus a time series —
/// the data behind the DCQCN marking curves and the §6.2 buffer analysis.
class PeriodicSampler {
 public:
  using Probe = std::function<double()>;

  PeriodicSampler(Simulator& sim, Probe probe, Time interval)
      : sim_(sim), probe_(std::move(probe)), interval_(interval) {}

  void start() { sim_.schedule_in(interval_, [this] { tick(); }); }
  void stop() { running_ = false; }

  [[nodiscard]] const PercentileSampler& samples() const { return samples_; }
  [[nodiscard]] const std::vector<std::pair<Time, double>>& series() const { return series_; }
  [[nodiscard]] double max_seen() const { return samples_.empty() ? 0.0 : samples_.max(); }

 private:
  void tick() {
    if (!running_) return;
    const double v = probe_();
    samples_.add(v);
    series_.emplace_back(sim_.now(), v);
    sim_.schedule_in(interval_, [this] { tick(); });
  }

  Simulator& sim_;
  Probe probe_;
  Time interval_;
  bool running_ = true;
  PercentileSampler samples_;
  std::vector<std::pair<Time, double>> series_;
};

/// Aggregate RDMA receive throughput across hosts per interval
/// (frames/second and bits/second, as Fig. 7(b) plots).
class ThroughputMonitor {
 public:
  ThroughputMonitor(Simulator& sim, std::vector<Host*> hosts, Time interval);
  void start();

  /// Aggregate delivered payload bits/second in the last completed interval.
  [[nodiscard]] const std::vector<double>& interval_gbps() const { return gbps_; }
  [[nodiscard]] double mean_gbps(std::size_t skip_first = 0) const;
  [[nodiscard]] std::int64_t total_bytes() const;
  /// Reset the accounting origin (e.g. after warmup).
  void reset_origin();

 private:
  void tick();
  [[nodiscard]] std::int64_t sum_bytes() const;

  Simulator& sim_;
  std::vector<Host*> hosts_;
  Time interval_;
  std::int64_t last_bytes_ = 0;
  std::int64_t origin_bytes_ = 0;
  std::vector<double> gbps_;
};

}  // namespace rocelab
