#include "src/monitor/pcap.h"

#include <stdexcept>

namespace rocelab {

namespace {

void put_u32le(std::ofstream& out, std::uint32_t v) {
  char b[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
               static_cast<char>((v >> 16) & 0xff), static_cast<char>((v >> 24) & 0xff)};
  out.write(b, 4);
}
void put_u16le(std::ofstream& out, std::uint16_t v) {
  char b[2] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff)};
  out.write(b, 2);
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path) : out_(path, std::ios::binary) {
  if (!out_) throw std::runtime_error("cannot open pcap file: " + path);
  put_u32le(out_, 0xa1b2c3d4);  // magic, microsecond timestamps
  put_u16le(out_, 2);           // version major
  put_u16le(out_, 4);           // version minor
  put_u32le(out_, 0);           // thiszone
  put_u32le(out_, 0);           // sigfigs
  put_u32le(out_, 65535);       // snaplen
  put_u32le(out_, 1);           // LINKTYPE_ETHERNET
}

PcapWriter::~PcapWriter() = default;

void PcapWriter::write_frame(Time at, std::span<const std::uint8_t> frame) {
  const auto usec = static_cast<std::uint64_t>(at / kMicrosecond);
  put_u32le(out_, static_cast<std::uint32_t>(usec / 1000000));
  put_u32le(out_, static_cast<std::uint32_t>(usec % 1000000));
  put_u32le(out_, static_cast<std::uint32_t>(frame.size()));
  put_u32le(out_, static_cast<std::uint32_t>(frame.size()));
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  ++frames_;
}

Bytes frame_bytes_for_capture(const Packet& pkt, PfcMode mode) {
  switch (pkt.kind) {
    case PacketKind::kPfcPause:
      return encode_pfc_frame(pkt.pfc.value_or(PfcFrame{}), pkt.eth.src);
    case PacketKind::kRoceData:
    case PacketKind::kRoceReadReq:
    case PacketKind::kRoceAtomicReq:
    case PacketKind::kRoceAck:
    case PacketKind::kCnp:
      return encode_roce_frame(pkt, mode);
    case PacketKind::kTcp:
    case PacketKind::kRaw: {
      // Faithful Ethernet/IPv4 shell with a synthetic payload of the
      // packet's true on-wire size.
      Bytes out;
      EthernetHeader eth = pkt.eth;
      eth.ethertype = kEtherTypeIpv4;
      if (mode == PfcMode::kDscpBased) eth.vlan.reset();
      encode_ethernet(eth, out);
      Ipv4Header ip = pkt.ip.value_or(Ipv4Header{});
      const std::int64_t l2 = static_cast<std::int64_t>(out.size()) + kEthFcsBytes;
      const std::int64_t ip_len = std::max<std::int64_t>(pkt.frame_bytes - l2, kIpv4HeaderBytes);
      ip.total_length = static_cast<std::uint16_t>(ip_len);
      encode_ipv4(ip, out);
      out.insert(out.end(), static_cast<std::size_t>(ip_len - kIpv4HeaderBytes), 0x00);
      const std::uint32_t fcs = crc32_ieee(out);
      out.push_back(static_cast<std::uint8_t>(fcs >> 24));
      out.push_back(static_cast<std::uint8_t>((fcs >> 16) & 0xff));
      out.push_back(static_cast<std::uint8_t>((fcs >> 8) & 0xff));
      out.push_back(static_cast<std::uint8_t>(fcs & 0xff));
      return out;
    }
  }
  return {};
}

PortTap::PortTap(Node& node, const std::string& path, PfcMode mode) : writer_(path) {
  node.rx_tap = [this, mode, &node](const Packet& pkt, int in_port) {
    (void)in_port;
    const Bytes frame = frame_bytes_for_capture(pkt, mode);
    if (!frame.empty()) writer_.write_frame(node.sim().now(), frame);
  };
}

}  // namespace rocelab
