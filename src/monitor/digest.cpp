#include "src/monitor/digest.h"

#include <cstdio>

#include "src/topo/fabric.h"

namespace rocelab {

namespace {

void add_port_counters(CounterDigest& d, const EgressPort& port) {
  const PortCounters& c = port.counters();
  for (int p = 0; p < kNumPriorities; ++p) {
    const auto i = static_cast<std::size_t>(p);
    d.add_i64(c.tx_packets[i]);
    d.add_i64(c.tx_bytes[i]);
    d.add_i64(c.rx_packets[i]);
    d.add_i64(c.rx_bytes[i]);
    d.add_i64(c.tx_pause[i]);
    d.add_i64(c.rx_pause[i]);
    d.add_i64(c.paused_time[i]);
  }
  d.add_i64(c.ingress_drops);
  d.add_i64(c.headroom_overflow_drops);
  d.add_i64(c.egress_drops);
  d.add_i64(c.arp_incomplete_drops);
  d.add_i64(c.mac_mismatch_drops);
  d.add_i64(c.link_down_drops);
  d.add_i64(c.fcs_errors);
  d.add_i64(c.impairment_drops);
  d.add_i64(c.filtered_drops);
}

}  // namespace

std::uint64_t counters_digest(const Fabric& fabric) {
  CounterDigest d;
  for (const auto& sw : fabric.switches()) {
    for (int p = 0; p < sw->port_count(); ++p) add_port_counters(d, sw->port(p));
    d.add_i64(sw->flood_events());
    d.add_i64(sw->arp_miss_drops());
    d.add_i64(sw->route_failovers());
    d.add_i64(sw->no_route_drops());
    d.add_i64(sw->filtered_drops());
    d.add_i64(sw->watchdog_trips());
    d.add_i64(sw->l2_mode_drops());
    d.add_i64(sw->reboots());
    d.add_i64(sw->matrix_queued_total());
  }
  for (const auto& h : fabric.hosts()) {
    for (int p = 0; p < h->port_count(); ++p) add_port_counters(d, h->port(p));
    const RdmaNicStats& s = h->rdma().stats();
    d.add_i64(s.data_packets_sent);
    d.add_i64(s.data_packets_retx);
    d.add_i64(s.acks_sent);
    d.add_i64(s.naks_sent);
    d.add_i64(s.rnr_naks_sent);
    d.add_i64(s.rnr_naks_received);
    d.add_i64(s.cnps_sent);
    d.add_i64(s.cnps_received);
    d.add_i64(s.messages_completed);
    d.add_i64(s.bytes_completed);
    d.add_i64(s.messages_received);
    d.add_i64(s.bytes_received);
    d.add_i64(s.out_of_order_drops);
    d.add_i64(s.timeouts);
    d.add_i64(s.qp_errors);
    d.add_i64(s.injected_drops);
    d.add_i64(s.injected_reorders);
    d.add_i64(s.injected_dup_acks);
    d.add_i64(h->rx_queue_bytes());
    d.add_i64(h->watchdog_trips());
  }
  return d.value();
}

std::string digest_hex(std::uint64_t digest) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace rocelab
