#include "src/monitor/monitor.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rocelab {

PauseMonitor::PauseMonitor(Simulator& sim, std::vector<Node*> nodes, Time interval)
    : sim_(sim), nodes_(std::move(nodes)), interval_(interval) {
  const MetricRegistry& reg = sim_.metrics();
  for (Node* n : nodes_) {
    rx_sel_.emplace_back(reg, n->name() + "/port*/prio*/rx_pause");
    tx_sel_.emplace_back(reg, n->name() + "/port*/prio*/tx_pause");
    rx_.emplace(n, IntervalSeries(interval_));
    tx_.emplace(n, IntervalSeries(interval_));
    last_rx_.push_back(0);
    last_tx_.push_back(0);
  }
}

void PauseMonitor::start() { sim_.schedule_in(interval_, [this] { tick(); }); }

void PauseMonitor::tick() {
  // Record the delta just *before* the bucket boundary so it lands in the
  // bucket it accumulated in.
  const Time at = sim_.now() - 1;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node* n = nodes_[i];
    const std::int64_t rx = rx_sel_[i].sum();
    const std::int64_t tx = tx_sel_[i].sum();
    rx_.at(n).add(at, static_cast<double>(rx - last_rx_[i]));
    tx_.at(n).add(at, static_cast<double>(tx - last_tx_[i]));
    last_rx_[i] = rx;
    last_tx_[i] = tx;
  }
  sim_.schedule_in(interval_, [this] { tick(); });
}

std::int64_t PauseMonitor::total_rx(const Node* n) const {
  return static_cast<std::int64_t>(rx_.at(n).total());
}
std::int64_t PauseMonitor::total_tx(const Node* n) const {
  return static_cast<std::int64_t>(tx_.at(n).total());
}

IntervalSeries PauseMonitor::aggregate_rx() const {
  IntervalSeries agg(interval_);
  for (const auto& [node, series] : rx_) {
    (void)node;
    for (const auto& [bucket, value] : series.buckets()) {
      agg.add(bucket * interval_, value);
    }
  }
  return agg;
}

int PauseMonitor::nodes_receiving_in_bucket(std::int64_t b) const {
  int count = 0;
  for (const auto& [node, series] : rx_) {
    (void)node;
    if (series.bucket_value(b) > 0) ++count;
  }
  return count;
}

void RegistrySampler::watch(const std::string& channel, const std::string& pattern,
                            MetricKind kind) {
  channels_.push_back(Channel{channel, MetricSelection(sim_.metrics(), pattern), kind,
                              IntervalSeries(interval_), PercentileSampler{}, 0});
}

void RegistrySampler::start() {
  running_ = true;
  for (Channel& c : channels_) {
    if (c.kind == MetricKind::kCounter) c.last = c.sel.sum();
  }
  sim_.cancel(ev_);
  ev_ = sim_.schedule_in(interval_, [this] { tick(); });
}

void RegistrySampler::tick() {
  if (!running_) return;
  const Time at = sim_.now() - 1;  // land in the bucket the delta accrued in
  for (Channel& c : channels_) {
    const std::int64_t v = c.sel.sum();
    if (c.kind == MetricKind::kCounter) {
      c.series.add(at, static_cast<double>(v - c.last));
      c.last = v;
    } else {
      c.series.add(at, static_cast<double>(v));
      c.samples.add(static_cast<double>(v));
    }
  }
  ev_ = sim_.schedule_in(interval_, [this] { tick(); });
}

const RegistrySampler::Channel& RegistrySampler::channel(const std::string& name) const {
  for (const Channel& c : channels_) {
    if (c.name == name) return c;
  }
  throw std::invalid_argument("RegistrySampler: unknown channel " + name);
}

const IntervalSeries& RegistrySampler::series(const std::string& name) const {
  return channel(name).series;
}
const PercentileSampler& RegistrySampler::samples(const std::string& name) const {
  return channel(name).samples;
}
std::int64_t RegistrySampler::current(const std::string& name) const {
  return channel(name).sel.sum();
}

ThroughputMonitor::ThroughputMonitor(Simulator& sim, std::vector<Host*> hosts, Time interval)
    : sim_(sim), hosts_(std::move(hosts)), interval_(interval) {}

void ThroughputMonitor::start() {
  last_bytes_ = sum_bytes();
  origin_bytes_ = last_bytes_;
  sim_.schedule_in(interval_, [this] { tick(); });
}

std::int64_t ThroughputMonitor::sum_bytes() const {
  std::int64_t total = 0;
  for (Host* h : hosts_) {
    total += h->rdma().stats().bytes_received + h->rdma().stats().bytes_completed;
  }
  return total;
}

void ThroughputMonitor::tick() {
  const std::int64_t now_bytes = sum_bytes();
  gbps_.push_back(static_cast<double>(now_bytes - last_bytes_) * 8.0 /
                  to_seconds(interval_) / 1e9);
  last_bytes_ = now_bytes;
  sim_.schedule_in(interval_, [this] { tick(); });
}

double ThroughputMonitor::mean_gbps(std::size_t skip_first) const {
  if (gbps_.size() <= skip_first) return 0.0;
  double sum = 0;
  for (std::size_t i = skip_first; i < gbps_.size(); ++i) sum += gbps_[i];
  return sum / static_cast<double>(gbps_.size() - skip_first);
}

std::int64_t ThroughputMonitor::total_bytes() const { return sum_bytes() - origin_bytes_; }

void ThroughputMonitor::reset_origin() { origin_bytes_ = sum_bytes(); }

void SlaMonitor::start() {
  running_ = true;
  sim_.cancel(ev_);
  last_ = sel_.sample(sim_.now());
  ev_ = sim_.schedule_in(interval_, [this] { tick(); });
}

void SlaMonitor::tick() {
  if (!running_) return;
  const MetricSample now = sel_.sample(sim_.now());
  series_.emplace_back(now.at, MetricSelection::sum_rate(last_, now) * 8.0 / 1e9);
  last_ = now;
  ev_ = sim_.schedule_in(interval_, [this] { tick(); });
}

double SlaMonitor::min_gbps(std::size_t skip) const {
  double lo = std::numeric_limits<double>::infinity();
  for (std::size_t i = skip; i < series_.size(); ++i) lo = std::min(lo, series_[i].second);
  return lo;
}

double SlaMonitor::mean_gbps(std::size_t skip) const {
  if (series_.size() <= skip) return 0.0;
  double sum = 0;
  for (std::size_t i = skip; i < series_.size(); ++i) sum += series_[i].second;
  return sum / static_cast<double>(series_.size() - skip);
}

}  // namespace rocelab
