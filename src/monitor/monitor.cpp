#include "src/monitor/monitor.h"

namespace rocelab {

namespace {
std::int64_t node_rx_pause(const Node* n) {
  std::int64_t total = 0;
  for (int p = 0; p < n->port_count(); ++p) total += n->port(p).counters().total_rx_pause();
  return total;
}
std::int64_t node_tx_pause(const Node* n) {
  std::int64_t total = 0;
  for (int p = 0; p < n->port_count(); ++p) total += n->port(p).counters().total_tx_pause();
  return total;
}
}  // namespace

PauseMonitor::PauseMonitor(Simulator& sim, std::vector<Node*> nodes, Time interval)
    : sim_(sim), nodes_(std::move(nodes)), interval_(interval) {
  for (Node* n : nodes_) {
    rx_.emplace(n, IntervalSeries(interval_));
    tx_.emplace(n, IntervalSeries(interval_));
    last_rx_[n] = 0;
    last_tx_[n] = 0;
  }
}

void PauseMonitor::start() { sim_.schedule_in(interval_, [this] { tick(); }); }

void PauseMonitor::tick() {
  // Record the delta just *before* the bucket boundary so it lands in the
  // bucket it accumulated in.
  const Time at = sim_.now() - 1;
  for (Node* n : nodes_) {
    const std::int64_t rx = node_rx_pause(n);
    const std::int64_t tx = node_tx_pause(n);
    rx_.at(n).add(at, static_cast<double>(rx - last_rx_[n]));
    tx_.at(n).add(at, static_cast<double>(tx - last_tx_[n]));
    last_rx_[n] = rx;
    last_tx_[n] = tx;
  }
  sim_.schedule_in(interval_, [this] { tick(); });
}

std::int64_t PauseMonitor::total_rx(const Node* n) const {
  return static_cast<std::int64_t>(rx_.at(n).total());
}
std::int64_t PauseMonitor::total_tx(const Node* n) const {
  return static_cast<std::int64_t>(tx_.at(n).total());
}

IntervalSeries PauseMonitor::aggregate_rx() const {
  IntervalSeries agg(interval_);
  for (const auto& [node, series] : rx_) {
    (void)node;
    for (const auto& [bucket, value] : series.buckets()) {
      agg.add(bucket * interval_, value);
    }
  }
  return agg;
}

int PauseMonitor::nodes_receiving_in_bucket(std::int64_t b) const {
  int count = 0;
  for (const auto& [node, series] : rx_) {
    (void)node;
    if (series.bucket_value(b) > 0) ++count;
  }
  return count;
}

ThroughputMonitor::ThroughputMonitor(Simulator& sim, std::vector<Host*> hosts, Time interval)
    : sim_(sim), hosts_(std::move(hosts)), interval_(interval) {}

void ThroughputMonitor::start() {
  last_bytes_ = sum_bytes();
  origin_bytes_ = last_bytes_;
  sim_.schedule_in(interval_, [this] { tick(); });
}

std::int64_t ThroughputMonitor::sum_bytes() const {
  std::int64_t total = 0;
  for (Host* h : hosts_) {
    total += h->rdma().stats().bytes_received + h->rdma().stats().bytes_completed;
  }
  return total;
}

void ThroughputMonitor::tick() {
  const std::int64_t now_bytes = sum_bytes();
  gbps_.push_back(static_cast<double>(now_bytes - last_bytes_) * 8.0 /
                  to_seconds(interval_) / 1e9);
  last_bytes_ = now_bytes;
  sim_.schedule_in(interval_, [this] { tick(); });
}

double ThroughputMonitor::mean_gbps(std::size_t skip_first) const {
  if (gbps_.size() <= skip_first) return 0.0;
  double sum = 0;
  for (std::size_t i = skip_first; i < gbps_.size(); ++i) sum += gbps_[i];
  return sum / static_cast<double>(gbps_.size() - skip_first);
}

std::int64_t ThroughputMonitor::total_bytes() const { return sum_bytes() - origin_bytes_; }

void ThroughputMonitor::reset_origin() { origin_bytes_ = sum_bytes(); }

}  // namespace rocelab
