#include "src/monitor/metric_registry.h"

namespace rocelab {

namespace {

bool segment_matches(std::string_view seg, std::string_view pat) {
  if (pat == "*") return true;
  if (!pat.empty() && pat.back() == '*') {
    const std::string_view prefix = pat.substr(0, pat.size() - 1);
    return seg.substr(0, prefix.size()) == prefix;
  }
  return seg == pat;
}

}  // namespace

bool MetricRegistry::matches(std::string_view name, std::string_view pattern) {
  constexpr auto npos = std::string_view::npos;
  std::size_t n = 0, p = 0;
  for (;;) {
    const std::size_t ne = name.find('/', n);
    const std::size_t pe = pattern.find('/', p);
    const std::string_view nseg = name.substr(n, ne == npos ? npos : ne - n);
    const std::string_view pseg = pattern.substr(p, pe == npos ? npos : pe - p);
    if (pseg == "**" && pe == npos) return true;
    if (!segment_matches(nseg, pseg)) return false;
    if (ne == npos && pe == npos) return true;
    if (ne == npos || pe == npos) return false;
    n = ne + 1;
    p = pe + 1;
  }
}

void MetricRegistry::add(const void* owner, std::string name, const std::int64_t* value,
                         MetricKind kind) {
  const auto id = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(Entry{std::move(name), value, kind, false});
  owners_[owner].push_back(id);
  ++live_;
  ++version_;
}

void MetricRegistry::add_lanes(const void* owner, const std::string& prefix,
                               const std::string& leaf, const std::int64_t* values, int lanes,
                               MetricKind kind) {
  for (int k = 0; k < lanes; ++k) {
    add(owner, prefix + "/prio" + std::to_string(k) + "/" + leaf, values + k, kind);
  }
}

void MetricRegistry::remove_owner(const void* owner) {
  auto it = owners_.find(owner);
  if (it == owners_.end()) return;
  for (std::uint32_t id : it->second) {
    Entry& e = entries_[static_cast<std::size_t>(id)];
    if (!e.dead) {
      e.dead = true;
      e.value = nullptr;
      --live_;
    }
  }
  owners_.erase(it);
  ++version_;
}

std::int64_t MetricRegistry::sum(std::string_view pattern) const {
  std::int64_t s = 0;
  for (const Entry& e : entries_) {
    if (!e.dead && matches(e.name, pattern)) s += *e.value;
  }
  return s;
}

std::vector<std::uint32_t> MetricRegistry::select(std::string_view pattern) const {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].dead && matches(entries_[i].name, pattern)) {
      out.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

void MetricRegistry::for_each(const std::function<void(const Entry&)>& fn) const {
  for (const Entry& e : entries_) {
    if (!e.dead) fn(e);
  }
}

void MetricSelection::refresh() const {
  if (seen_version_ == reg_->version()) return;
  ids_ = reg_->select(pattern_);
  seen_version_ = reg_->version();
}

std::int64_t MetricSelection::sum() const {
  refresh();
  std::int64_t s = 0;
  for (std::uint32_t id : ids_) {
    const auto& e = reg_->entry(id);
    if (!e.dead) s += *e.value;
  }
  return s;
}

std::size_t MetricSelection::count() const {
  refresh();
  return ids_.size();
}

double MetricSelection::sum_rate(const MetricSample& from, const MetricSample& to) {
  if (to.at <= from.at) return 0.0;
  return static_cast<double>(to.value - from.value) / to_seconds(to.at - from.at);
}

}  // namespace rocelab
