// MetricRegistry: the §5.2 idea as infrastructure. Every PFC pause, drop,
// and traffic counter on every port/switch/NIC registers itself here at
// construction time under a hierarchical name (node/portN/prioK/counter),
// and monitors read through the registry instead of walking component
// internals by hand.
//
// Registration stores a raw pointer to the component's own int64 counter:
// the hot path keeps bumping plain members exactly as before (zero
// overhead when nobody reads), and readers see live values with no
// snapshot plumbing. The registry never schedules events and never draws
// randomness, so installing it cannot perturb the determinism digest —
// bench/perf_gate asserts exactly that.
//
// Names are '/'-separated. Patterns select entries segment-wise:
//   "*"     matches one whole segment        (t0/port*/prio3/rx_pause)
//   "foo*"  prefix-matches one segment       (t0/port1*/... matches port1, port12)
//   "**"    as the final segment matches any remainder (t0/**)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"

namespace rocelab {

enum class MetricKind : std::uint8_t {
  kCounter,  // monotonic; samplers record per-interval deltas
  kGauge,    // instantaneous level; samplers record the value itself
};

class MetricRegistry {
 public:
  struct Entry {
    std::string name;
    const std::int64_t* value = nullptr;
    MetricKind kind = MetricKind::kCounter;
    bool dead = false;  // owner destroyed; excluded from reads
  };

  /// Register one metric. `owner` keys deregistration (a component passes
  /// `this` and calls remove_owner from its destructor). `value` must
  /// outlive the registration.
  void add(const void* owner, std::string name, const std::int64_t* value,
           MetricKind kind = MetricKind::kCounter);

  /// Register a per-priority array as `prefix/prio<k>/<leaf>` for
  /// k in [0, lanes) reading values[k].
  void add_lanes(const void* owner, const std::string& prefix, const std::string& leaf,
                 const std::int64_t* values, int lanes,
                 MetricKind kind = MetricKind::kCounter);

  /// Drop every entry registered by `owner`. O(entries-of-owner): entries
  /// are tombstoned, not compacted, so teardown of a big fabric stays
  /// linear. Unknown owners are a no-op.
  void remove_owner(const void* owner);

  /// Sum the current values of all live entries matching `pattern`.
  [[nodiscard]] std::int64_t sum(std::string_view pattern) const;

  /// Ids (stable until the registry grows past them) of live entries
  /// matching `pattern`, in registration order — deterministic because
  /// construction order is.
  [[nodiscard]] std::vector<std::uint32_t> select(std::string_view pattern) const;

  [[nodiscard]] const Entry& entry(std::uint32_t id) const {
    return entries_[static_cast<std::size_t>(id)];
  }
  /// Visit every live entry in registration order.
  void for_each(const std::function<void(const Entry&)>& fn) const;

  [[nodiscard]] std::size_t live_entries() const { return live_; }
  /// Bumped on every add/remove; cached selections revalidate against it.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  [[nodiscard]] static bool matches(std::string_view name, std::string_view pattern);

 private:
  std::vector<Entry> entries_;
  std::unordered_map<const void*, std::vector<std::uint32_t>> owners_;
  std::size_t live_ = 0;
  std::uint64_t version_ = 0;
};

/// A timestamped reading of a selection's sum — the unit of fleet rollup
/// delta math (goodput over a window = sum_rate between two samples).
struct MetricSample {
  Time at = 0;
  std::int64_t value = 0;
};

/// A pattern selection that caches its matching entry ids and re-resolves
/// only when the registry changes — monitors tick every few microseconds
/// of simulated time and must not re-scan every name each tick.
class MetricSelection {
 public:
  MetricSelection(const MetricRegistry& reg, std::string pattern)
      : reg_(&reg), pattern_(std::move(pattern)) {}

  [[nodiscard]] std::int64_t sum() const;
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] const std::string& pattern() const { return pattern_; }

  /// Timestamped sum() — pair two of these with sum_rate() for fleet
  /// rollups. The selection revalidates against the registry version, so a
  /// sample taken after a topology change covers the new entries too.
  [[nodiscard]] MetricSample sample(Time now) const { return MetricSample{now, sum()}; }
  /// Counter units per second of simulated time between two samples of the
  /// same selection (0 when no time elapsed). The SLA-floor rollup:
  ///   rate = sum_rate(before, after) * 8 / 1e9  // bytes -> Gb/s
  [[nodiscard]] static double sum_rate(const MetricSample& from, const MetricSample& to);

 private:
  void refresh() const;

  const MetricRegistry* reg_;
  std::string pattern_;
  mutable std::vector<std::uint32_t> ids_;
  mutable std::uint64_t seen_version_ = ~std::uint64_t{0};
};

}  // namespace rocelab
