// Packet capture: taps a port and writes byte-exact frames (through the
// src/net/codec encoders) into a standard pcap file readable by
// Wireshark/tcpdump. §5 of the paper notes that "RDMA poses challenges for
// packet-level monitoring ... which we plan to address in our next step" —
// in the simulator we can simply tap any link.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/link/node.h"
#include "src/net/codec.h"
#include "src/sim/simulator.h"

namespace rocelab {

/// Writes the classic pcap format (magic 0xa1b2c3d4, LINKTYPE_ETHERNET).
class PcapWriter {
 public:
  explicit PcapWriter(const std::string& path);
  ~PcapWriter();
  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Append one frame with a capture timestamp.
  void write_frame(Time at, std::span<const std::uint8_t> frame);
  [[nodiscard]] std::int64_t frames_written() const { return frames_; }
  void flush() { out_.flush(); }

 private:
  std::ofstream out_;
  std::int64_t frames_ = 0;
};

/// Serializes simulation packets to wire bytes for capture. PFC pause
/// frames and RoCEv2 packets are encoded exactly; other kinds (TCP, raw)
/// get a faithful Ethernet/IPv4 shell with a synthetic payload.
[[nodiscard]] Bytes frame_bytes_for_capture(const Packet& pkt, PfcMode mode);

/// Taps every packet a node receives (post-wire, including PFC pause
/// frames) and writes it to a pcap file. Non-invasive: uses the node's
/// tap hook, does not perturb forwarding.
class PortTap {
 public:
  PortTap(Node& node, const std::string& path, PfcMode mode = PfcMode::kDscpBased);

  [[nodiscard]] std::int64_t frames_captured() const { return writer_.frames_written(); }
  void flush() { writer_.flush(); }

 private:
  PcapWriter writer_;
};

}  // namespace rocelab
