// Determinism digest: an order-sensitive FNV-1a hash over every observable
// counter in a fabric (port counters, switch-level drop/flood/failover
// counters, NIC transport stats). Two runs of the same seeded workload must
// produce the same digest; the perf gate asserts this across optimization
// changes and CI asserts it across repeated runs.
#pragma once

#include <cstdint>
#include <string>

namespace rocelab {

class Fabric;

/// Incremental FNV-1a (64-bit) over a stream of integers.
class CounterDigest {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  void add_i64(std::int64_t v) { add(static_cast<std::uint64_t>(v)); }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// Digest of all final counters of `fabric`, in construction order: for each
/// switch every port's counters plus the switch-level counters, then for
/// each host its port counters and RDMA NIC stats. Excludes wall-clock and
/// event-count metrics so the digest captures observable behaviour only.
[[nodiscard]] std::uint64_t counters_digest(const Fabric& fabric);

[[nodiscard]] std::string digest_hex(std::uint64_t digest);

}  // namespace rocelab
