#include "src/rocev2/deployment.h"

#include <cmath>

namespace rocelab {

namespace {
bool lossless_enabled_at(SwitchTier tier, DeploymentStage stage) {
  switch (stage) {
    case DeploymentStage::kTorOnly: return tier == SwitchTier::kTor;
    case DeploymentStage::kPodset: return tier != SwitchTier::kSpine;
    case DeploymentStage::kFull: return true;
  }
  return true;
}
}  // namespace

SwitchConfig make_switch_config(const QosPolicy& policy, SwitchTier tier,
                                DeploymentStage stage) {
  SwitchConfig cfg;
  cfg.classify_mode = policy.classify_mode;
  cfg.arp_policy = policy.arp_policy;
  cfg.mmu.alpha = policy.alpha;
  cfg.mmu.headroom_per_pg =
      recommended_headroom(policy.link_bw, propagation_delay_for_meters(policy.max_cable_m),
                           policy.mtu);
  switch (tier) {
    case SwitchTier::kTor: cfg.mmu.total_buffer = policy.tor_buffer; break;
    case SwitchTier::kLeaf: cfg.mmu.total_buffer = policy.leaf_buffer; break;
    case SwitchTier::kSpine: cfg.mmu.total_buffer = policy.spine_buffer; break;
  }
  if (policy.pfc_enabled && lossless_enabled_at(tier, stage)) {
    cfg.lossless[static_cast<std::size_t>(policy.bulk_class)] = true;
    cfg.lossless[static_cast<std::size_t>(policy.realtime_class)] = true;
  }
  cfg.ecn[static_cast<std::size_t>(policy.bulk_class)] = policy.ecn;
  cfg.ecn[static_cast<std::size_t>(policy.realtime_class)] = policy.ecn;
  cfg.watchdog.enabled = policy.switch_watchdog && tier == SwitchTier::kTor;
  return cfg;
}

HostConfig make_host_config(const QosPolicy& policy) {
  HostConfig cfg;
  cfg.lossless.fill(false);
  if (policy.pfc_enabled) {
    cfg.lossless[static_cast<std::size_t>(policy.bulk_class)] = true;
    cfg.lossless[static_cast<std::size_t>(policy.realtime_class)] = true;
  }
  cfg.dcqcn = policy.dcqcn;
  cfg.watchdog.enabled = policy.nic_watchdog;
  // §4.4 mitigation: large pages by default.
  cfg.mtt.page_bytes = 2 * kMiB;
  return cfg;
}

QpConfig make_qp_config(const QosPolicy& policy, bool realtime) {
  QpConfig cfg;
  cfg.priority = realtime ? policy.realtime_class : policy.bulk_class;
  cfg.dscp = static_cast<std::uint8_t>(cfg.priority);
  cfg.recovery = policy.recovery;
  cfg.retx_timeout = policy.retx_timeout;
  cfg.dcqcn = policy.dcqcn.enabled;
  return cfg;
}

ClosParams make_clos_params(const QosPolicy& policy, DeploymentStage stage, int podsets,
                            int leaves_per_podset, int tors_per_podset, int servers_per_tor,
                            int spines) {
  ClosParams p;
  p.podsets = podsets;
  p.leaves_per_podset = leaves_per_podset;
  p.tors_per_podset = tors_per_podset;
  p.servers_per_tor = servers_per_tor;
  p.spines = spines;
  p.link_bw = policy.link_bw;
  p.tor_config = make_switch_config(policy, SwitchTier::kTor, stage);
  p.leaf_config = make_switch_config(policy, SwitchTier::kLeaf, stage);
  p.spine_config = make_switch_config(policy, SwitchTier::kSpine, stage);
  p.host_config = make_host_config(policy);
  return p;
}

SwitchTier tier_of(const Switch& sw) {
  const std::string& n = sw.name();
  if (n.rfind("leaf-", 0) == 0) return SwitchTier::kLeaf;
  if (n.rfind("spine-", 0) == 0) return SwitchTier::kSpine;
  return SwitchTier::kTor;
}

std::vector<ConfigDrift> check_switch_configs(const std::vector<Switch*>& switches,
                                              const QosPolicy& policy, DeploymentStage stage) {
  std::vector<ConfigDrift> drifts;
  auto mismatch = [&drifts](const Switch& sw, std::string field, std::string expected,
                            std::string actual) {
    drifts.push_back(
        ConfigDrift{sw.name(), std::move(field), std::move(expected), std::move(actual)});
  };
  for (Switch* sw : switches) {
    const SwitchTier tier = tier_of(*sw);
    const SwitchConfig want = make_switch_config(policy, tier, stage);
    const SwitchConfig& got = sw->config();
    if (std::abs(got.mmu.alpha - want.mmu.alpha) > 1e-12) {
      mismatch(*sw, "mmu.alpha", std::to_string(want.mmu.alpha),
               std::to_string(got.mmu.alpha));
    }
    for (int pg = 0; pg < kNumPriorities; ++pg) {
      const auto i = static_cast<std::size_t>(pg);
      if (got.lossless[i] != want.lossless[i]) {
        mismatch(*sw, "lossless[" + std::to_string(pg) + "]",
                 want.lossless[i] ? "true" : "false", got.lossless[i] ? "true" : "false");
      }
      if (got.ecn[i].enabled != want.ecn[i].enabled) {
        mismatch(*sw, "ecn[" + std::to_string(pg) + "].enabled",
                 want.ecn[i].enabled ? "true" : "false", got.ecn[i].enabled ? "true" : "false");
      }
    }
    if (got.arp_policy != want.arp_policy) {
      mismatch(*sw, "arp_policy",
               want.arp_policy == ArpIncompletePolicy::kDropLossless ? "drop-lossless" : "flood",
               got.arp_policy == ArpIncompletePolicy::kDropLossless ? "drop-lossless" : "flood");
    }
    if (got.watchdog.enabled != want.watchdog.enabled) {
      mismatch(*sw, "watchdog.enabled", want.watchdog.enabled ? "true" : "false",
               got.watchdog.enabled ? "true" : "false");
    }
    if (got.classify_mode != want.classify_mode) {
      mismatch(*sw, "classify_mode",
               want.classify_mode == ClassifyMode::kDscp ? "dscp" : "vlan-pcp",
               got.classify_mode == ClassifyMode::kDscp ? "dscp" : "vlan-pcp");
    }
  }
  return drifts;
}

}  // namespace rocelab
