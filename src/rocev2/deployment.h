// The paper's deployment layer as an API: a cluster-wide QoS policy (the
// DSCP-based-PFC design of §3 plus the safety fixes of §4), per-tier switch
// and host config generation, the staged enablement procedure of §6.1, and
// the configuration-drift monitoring of §5.1.
#pragma once

#include <string>
#include <vector>

#include "src/nic/config.h"
#include "src/switch/config.h"
#include "src/topo/clos.h"

namespace rocelab {

/// Cluster-wide desired state. One policy generates every switch and host
/// configuration; §5.1's monitoring then checks running state against it.
struct QosPolicy {
  /// The two lossless classes §2 provisions (real-time + bulk).
  int bulk_class = 3;
  int realtime_class = 4;
  ClassifyMode classify_mode = ClassifyMode::kDscp;  // §3: DSCP-based PFC
  ArpIncompletePolicy arp_policy = ArpIncompletePolicy::kDropLossless;  // §4.2 fix
  LossRecovery recovery = LossRecovery::kGoBackN;                       // §4.1 fix
  /// PFC on the lossless classes (the paper's deployment). Off = a lossy
  /// fabric: no class is provisioned lossless on switches or NICs, the
  /// transport (IRN-style selective repeat) must absorb the loss itself.
  bool pfc_enabled = true;
  /// Base retransmission timeout stamped into every generated QpConfig
  /// (selective repeat adapts below it from its SRTT estimate).
  Time retx_timeout = microseconds(500);
  bool switch_watchdog = true;  // §4.3 fix
  bool nic_watchdog = true;     // §4.3 fix
  double alpha = 1.0 / 16;      // §6.2: the value that works in production
  std::int64_t tor_buffer = 12 * kMiB;
  std::int64_t leaf_buffer = 12 * kMiB;
  std::int64_t spine_buffer = 24 * kMiB;
  EcnConfig ecn{true, 5 * kKiB, 200 * kKiB, 0.01};  // DCQCN marking
  DcqcnConfig dcqcn;
  Bandwidth link_bw = gbps(40);
  double max_cable_m = 300.0;  // headroom sized for the worst link (§2)
  std::int64_t mtu = 1086;
};

/// §6.1: the step-by-step onboarding procedure. PFC (lossless classes) is
/// enabled progressively: ToR-level first, then within the podset, then up
/// to the spines.
enum class DeploymentStage {
  kTorOnly,  // lossless on ToRs only
  kPodset,   // lossless on ToRs + Leaves
  kFull,     // lossless everywhere (production state)
};

enum class SwitchTier { kTor, kLeaf, kSpine };

[[nodiscard]] SwitchConfig make_switch_config(const QosPolicy& policy, SwitchTier tier,
                                              DeploymentStage stage = DeploymentStage::kFull);
[[nodiscard]] HostConfig make_host_config(const QosPolicy& policy);
[[nodiscard]] QpConfig make_qp_config(const QosPolicy& policy, bool realtime = false);

/// Build ClosParams with per-tier configs derived from the policy.
[[nodiscard]] ClosParams make_clos_params(const QosPolicy& policy, DeploymentStage stage,
                                          int podsets, int leaves_per_podset,
                                          int tors_per_podset, int servers_per_tor, int spines);

/// §5.1 configuration monitoring: compare every switch's running config
/// against the desired policy; return human-readable drift records. The
/// Fig. 10 incident (α silently 1/64 on a new switch type) is exactly what
/// this catches.
struct ConfigDrift {
  std::string node;
  std::string field;
  std::string expected;
  std::string actual;
};
[[nodiscard]] std::vector<ConfigDrift> check_switch_configs(
    const std::vector<Switch*>& switches, const QosPolicy& policy,
    DeploymentStage stage = DeploymentStage::kFull);

/// Infer the tier of a switch built by ClosFabric from its name.
[[nodiscard]] SwitchTier tier_of(const Switch& sw);

}  // namespace rocelab
