#include "src/exp/scenario.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace rocelab::exp {

namespace {

std::string type_name(KnobSpec::Type t) {
  switch (t) {
    case KnobSpec::Type::kInt: return "int";
    case KnobSpec::Type::kDouble: return "double";
    case KnobSpec::Type::kString: return "string";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON number: strict parsers reject NaN/Infinity literals, so non-finite
/// metric values (e.g. a percentile of an empty sampler) become null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

KnobSpec knob_int(std::string name, long def, std::string legacy_env, std::string help) {
  return KnobSpec{std::move(name), KnobSpec::Type::kInt, std::to_string(def),
                  std::move(legacy_env), std::move(help)};
}

KnobSpec knob_double(std::string name, double def, std::string legacy_env, std::string help) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", def);
  return KnobSpec{std::move(name), KnobSpec::Type::kDouble, buf, std::move(legacy_env),
                  std::move(help)};
}

KnobSpec knob_string(std::string name, std::string def, std::string legacy_env,
                     std::string help) {
  return KnobSpec{std::move(name), KnobSpec::Type::kString, std::move(def),
                  std::move(legacy_env), std::move(help)};
}

void Knobs::declare(KnobSpec spec) {
  std::string value = spec.def;
  if (!spec.legacy_env.empty()) {
    if (const char* env = std::getenv(spec.legacy_env.c_str()); env != nullptr) value = env;
  }
  specs_.push_back(std::move(spec));
  values_.push_back(std::move(value));
}

std::size_t Knobs::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  throw std::invalid_argument("unknown knob: " + name);
}

bool Knobs::has(const std::string& name) const {
  for (const KnobSpec& s : specs_) {
    if (s.name == name) return true;
  }
  return false;
}

bool Knobs::set_override(const std::string& name, const std::string& value) {
  if (!has(name)) return false;
  values_[index_of(name)] = value;
  return true;
}

long Knobs::get_int(const std::string& name) const {
  return std::atol(values_[index_of(name)].c_str());
}

double Knobs::get_double(const std::string& name) const {
  return std::atof(values_[index_of(name)].c_str());
}

const std::string& Knobs::get_string(const std::string& name) const {
  return values_[index_of(name)];
}

const std::string& Knobs::value_text(const std::string& name) const {
  return values_[index_of(name)];
}

std::vector<double> Knobs::get_list(const std::string& name) const {
  std::vector<double> out;
  std::stringstream ss(values_[index_of(name)]);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::atof(item.c_str()));
  }
  return out;
}

void Context::section(const std::string& title) { std::printf("\n=== %s ===\n", title.c_str()); }

void Context::note(const std::string& line) { std::printf("%s\n", line.c_str()); }

void Context::table(const std::vector<std::string>& header, std::vector<int> widths) {
  widths_ = std::move(widths);
  std::printf("\n");
  row(header);
  int total = 0;
  for (int w : widths_) total += w;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void Context::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths_.size() ? widths_[i] : 18;
    std::printf("%-*s", w, cells[i].c_str());
  }
  std::printf("\n");
}

void Context::metric(const std::string& case_name, const std::string& key, double value) {
  for (Case& c : cases_) {
    if (c.name == case_name) {
      c.metrics.emplace_back(key, value);
      return;
    }
  }
  cases_.push_back(Case{case_name, {{key, value}}});
}

void Context::check(const std::string& name, bool pass) {
  checks_.push_back(Check{name, pass});
}

bool Context::all_passed() const {
  for (const Check& c : checks_) {
    if (!c.pass) return false;
  }
  return true;
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

namespace {

void print_knob_list(const Knobs& knobs) {
  std::printf("%-20s %-8s %-14s %-22s %s\n", "knob", "type", "value", "env", "help");
  for (const KnobSpec& s : knobs.specs()) {
    std::printf("%-20s %-8s %-14s %-22s %s\n", s.name.c_str(), type_name(s.type).c_str(),
                knobs.value_text(s.name).c_str(),
                s.legacy_env.empty() ? "-" : s.legacy_env.c_str(), s.help.c_str());
  }
}

void print_usage(const Scenario& sc) {
  std::printf("usage: %s [--list-knobs] [--json PATH] [--<knob>=VALUE ...]\n", sc.name.c_str());
  std::printf("  %s\n", sc.title.c_str());
  std::printf("  writes BENCH_%s.json; exits nonzero if a check fails\n", sc.name.c_str());
}

bool write_json(const std::string& path, const Scenario& sc, const Knobs& knobs,
                const Context& ctx) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot write %s\n", sc.name.c_str(), path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", json_escape(sc.name).c_str());
  std::fprintf(f, "  \"title\": \"%s\",\n", json_escape(sc.title).c_str());
  std::fprintf(f, "  \"knobs\": {");
  bool first = true;
  for (const KnobSpec& s : knobs.specs()) {
    std::fprintf(f, "%s\n    \"%s\": ", first ? "" : ",", json_escape(s.name).c_str());
    if (s.type == KnobSpec::Type::kString) {
      std::fprintf(f, "\"%s\"", json_escape(knobs.value_text(s.name)).c_str());
    } else {
      std::fprintf(f, "%s", json_number(knobs.get_double(s.name)).c_str());
    }
    first = false;
  }
  std::fprintf(f, "%s},\n", knobs.specs().empty() ? "" : "\n  ");
  std::fprintf(f, "  \"cases\": [");
  first = true;
  for (const Context::Case& c : ctx.cases()) {
    std::fprintf(f, "%s\n    {\"name\": \"%s\", \"metrics\": {", first ? "" : ",",
                 json_escape(c.name).c_str());
    bool mfirst = true;
    for (const auto& [key, value] : c.metrics) {
      std::fprintf(f, "%s\"%s\": %s", mfirst ? "" : ", ", json_escape(key).c_str(),
                   json_number(value).c_str());
      mfirst = false;
    }
    std::fprintf(f, "}}");
    first = false;
  }
  std::fprintf(f, "%s],\n", ctx.cases().empty() ? "" : "\n  ");
  std::fprintf(f, "  \"checks\": [");
  first = true;
  for (const Context::Check& c : ctx.checks()) {
    std::fprintf(f, "%s\n    {\"name\": \"%s\", \"pass\": %s}", first ? "" : ",",
                 json_escape(c.name).c_str(), c.pass ? "true" : "false");
    first = false;
  }
  std::fprintf(f, "%s],\n", ctx.checks().empty() ? "" : "\n  ");
  std::fprintf(f, "  \"pass\": %s\n}\n", ctx.all_passed() ? "true" : "false");
  std::fclose(f);
  return true;
}

}  // namespace

int run_scenario(const Scenario& sc, int argc, char** argv) {
  Knobs knobs;
  bool has_shards = false, has_recovery = false, has_pfc = false, has_retx = false;
  for (const KnobSpec& s : sc.knobs) {
    if (s.name == "shards") has_shards = true;
    if (s.name == "recovery") has_recovery = true;
    if (s.name == "pfc") has_pfc = true;
    if (s.name == "retx_timeout_us") has_retx = true;
    knobs.declare(s);
  }
  // Every runner gets the PDES shard-count knob (scenario bodies pass it to
  // their fabric builder via ctx.shards()); scenarios may still declare
  // their own to change the default or help text.
  if (!has_shards) {
    knobs.declare(knob_int("shards", 1, "ROCELAB_SHARDS",
                           "simulator shards (pod-partitioned PDES; 1 = single-threaded)"));
  }
  // ... and the transport knobs (scenario bodies apply them through
  // exp::apply_transport_knobs). Defaults are no-ops: "" / -1 leave each
  // scenario's own transport configuration untouched, so pinned journals
  // and digests are unaffected unless a knob is set.
  if (!has_recovery) {
    knobs.declare(knob_string("recovery", "", "ROCELAB_RECOVERY",
                              "loss recovery override: goback0 | gobackn | selrep"));
  }
  if (!has_pfc) {
    knobs.declare(knob_int("pfc", -1, "ROCELAB_PFC",
                           "PFC override: 1 = lossless classes on, 0 = lossy fabric"));
  }
  if (!has_retx) {
    knobs.declare(knob_int("retx_timeout_us", -1, "ROCELAB_RETX_TIMEOUT_US",
                           "QP base retransmission timeout override, microseconds"));
  }

  std::string json_path = "BENCH_" + sc.name + ".json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-knobs") {
      print_knob_list(knobs);
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage(sc);
      std::printf("\n");
      print_knob_list(knobs);
      return 0;
    }
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos && knobs.set_override(arg.substr(2, eq - 2), arg.substr(eq + 1))) {
        continue;
      }
    }
    std::fprintf(stderr, "%s: unknown argument '%s'\n", sc.name.c_str(), arg.c_str());
    print_usage(sc);
    return 2;
  }

  std::printf("\n=== %s ===\n", sc.title.c_str());
  if (!sc.paper.empty()) std::printf("%s\n", sc.paper.c_str());

  Context ctx(knobs);
  sc.body(ctx);

  if (!ctx.checks().empty()) std::printf("\n");
  for (const Context::Check& c : ctx.checks()) {
    std::printf("check: %-44s %s\n", c.name.c_str(), c.pass ? "CONFIRMED" : "NOT REPRODUCED");
  }
  const bool ok = ctx.all_passed();
  std::printf("RESULT: %s\n", ok ? "PASS" : "FAIL");

  if (!write_json(json_path, sc, knobs, ctx)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}

}  // namespace rocelab::exp
