// Declarative experiment scenarios: every fig_*/abl_* bench binary is a
// Scenario — a name, a set of typed knobs (default < env < --name=value
// CLI), and a body that builds topology/workload, runs deterministically,
// and reports rows, per-case metrics, and named pass/fail checks through
// the Context. run_scenario() is the shared ScenarioRunner shell: it
// parses the CLI (--help, --list-knobs, --json PATH, knob overrides),
// prints the human table, prints a CONFIRMED / NOT REPRODUCED verdict per
// check, always writes machine-readable BENCH_<name>.json (schema_version
// 1), and exits nonzero if any check failed — the same contract the
// hand-rolled mains implemented 13 slightly different ways.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rocelab::exp {

/// One declared knob. Resolution order: default, then legacy_env (the
/// historical ROCELAB_* variable, kept working), then a --name=value
/// command-line override.
struct KnobSpec {
  enum class Type { kInt, kDouble, kString };
  std::string name;
  Type type = Type::kInt;
  std::string def;         // default value, as text
  std::string legacy_env;  // "" => no environment override
  std::string help;
};

KnobSpec knob_int(std::string name, long def, std::string legacy_env = "",
                  std::string help = "");
KnobSpec knob_double(std::string name, double def, std::string legacy_env = "",
                     std::string help = "");
KnobSpec knob_string(std::string name, std::string def, std::string legacy_env = "",
                     std::string help = "");

/// Resolved knob values. Usable standalone (bench/perf_gate keeps its
/// bespoke main but resolves its window through this) and inside Context.
class Knobs {
 public:
  void declare(KnobSpec spec);              // resolves default + env now
  bool set_override(const std::string& name, const std::string& value);  // CLI layer
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  /// Comma-separated doubles, e.g. a sweep knob "0,1e-5,1e-4,1e-3".
  [[nodiscard]] std::vector<double> get_list(const std::string& name) const;

  [[nodiscard]] const std::vector<KnobSpec>& specs() const { return specs_; }
  [[nodiscard]] const std::string& value_text(const std::string& name) const;

 private:
  [[nodiscard]] std::size_t index_of(const std::string& name) const;
  std::vector<KnobSpec> specs_;
  std::vector<std::string> values_;  // parallel to specs_
};

class Context;

struct Scenario {
  std::string name;   // bench name: JSON lands in BENCH_<name>.json
  std::string title;  // printed header
  std::string paper;  // paper anchor / expectation, printed under the header
  std::vector<KnobSpec> knobs;
  std::function<void(Context&)> body;
};

/// The scenario body's interface to knobs, table output, and results.
class Context {
 public:
  explicit Context(const Knobs& knobs) : knobs_(knobs) {}

  // --- knobs ----------------------------------------------------------------
  [[nodiscard]] long knob_int(const std::string& name) const { return knobs_.get_int(name); }
  [[nodiscard]] double knob_double(const std::string& name) const {
    return knobs_.get_double(name);
  }
  [[nodiscard]] const std::string& knob_string(const std::string& name) const {
    return knobs_.get_string(name);
  }
  [[nodiscard]] std::vector<double> knob_list(const std::string& name) const {
    return knobs_.get_list(name);
  }
  [[nodiscard]] const Knobs& knobs() const { return knobs_; }
  /// The auto-declared PDES shard knob (--shards / ROCELAB_SHARDS); pass it
  /// to ClosParams::shards. 1 (the default) is the single-threaded core.
  [[nodiscard]] int shards() const { return static_cast<int>(knobs_.get_int("shards")); }

  // Auto-declared transport knobs (see exp::apply_transport_knobs, which
  // folds all three into a QosPolicy / QpConfig / HostConfig at once).
  /// --recovery: "" (scenario default) or goback0 | gobackn | selrep.
  [[nodiscard]] const std::string& recovery_name() const {
    return knobs_.get_string("recovery");
  }
  /// --pfc: -1 scenario default, 0 lossy fabric, 1 lossless classes on.
  [[nodiscard]] int pfc_override() const { return static_cast<int>(knobs_.get_int("pfc")); }
  /// --retx_timeout_us: -1 scenario default, else the QP base RTO in µs.
  [[nodiscard]] long retx_timeout_us() const { return knobs_.get_int("retx_timeout_us"); }

  // --- human output ---------------------------------------------------------
  void section(const std::string& title);  // "=== title ===" sub-header
  void note(const std::string& line);      // free-form line
  void table(const std::vector<std::string>& header, std::vector<int> widths);
  void row(const std::vector<std::string>& cells);

  // --- machine-readable results --------------------------------------------
  /// Record `key` = `value` for `case_name` (one case = one sweep point /
  /// one table column). Insertion-ordered into the JSON "cases" array.
  void metric(const std::string& case_name, const std::string& key, double value);
  /// Named qualitative check; every check prints CONFIRMED / NOT
  /// REPRODUCED and feeds the process exit code.
  void check(const std::string& name, bool pass);
  [[nodiscard]] bool all_passed() const;

  struct Case {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  struct Check {
    std::string name;
    bool pass = false;
  };
  [[nodiscard]] const std::vector<Case>& cases() const { return cases_; }
  [[nodiscard]] const std::vector<Check>& checks() const { return checks_; }

 private:
  const Knobs& knobs_;
  std::vector<int> widths_;
  std::vector<Case> cases_;
  std::vector<Check> checks_;
};

/// printf-style one-value formatter for table cells (replaces bench::fmt).
[[nodiscard]] std::string fmt(const char* format, double v);

/// The ScenarioRunner: CLI parsing, deterministic execution, verdicts,
/// BENCH_<name>.json. Returns the process exit code.
int run_scenario(const Scenario& sc, int argc, char** argv);

}  // namespace rocelab::exp
