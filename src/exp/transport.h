// Folds the auto-declared transport knobs (--recovery / --pfc /
// --retx_timeout_us, see run_scenario) into the config objects a scenario
// body builds. Every overload is a no-op at the knob defaults ("" / -1), so
// calling these cannot perturb a scenario that was not overridden — pinned
// journals and digests stay byte-identical.
#pragma once

#include "src/exp/scenario.h"
#include "src/nic/config.h"
#include "src/rocev2/deployment.h"

namespace rocelab::exp {

/// Policy-driven scenarios: recovery -> policy.recovery, pfc ->
/// policy.pfc_enabled (switch + host lossless generation), retx_timeout_us
/// -> policy.retx_timeout. Apply BEFORE make_clos_params / make_qp_config.
void apply_transport_knobs(const Context& ctx, QosPolicy& policy);

/// Hand-built QP configs (star fabrics, probe QPs): recovery and
/// retx_timeout_us. The pfc knob is host/switch-side; see the HostConfig
/// overload.
void apply_transport_knobs(const Context& ctx, QpConfig& qp);

/// Hand-built host configs: pfc=0 clears every lossless class (the NIC
/// stops honouring and generating pauses); pfc=1 restores the defaults
/// (bulk 3 + real-time 4).
void apply_transport_knobs(const Context& ctx, HostConfig& host);

/// Hand-built switch configs: same lossless-class handling as HostConfig.
void apply_transport_knobs(const Context& ctx, SwitchConfig& sw);

}  // namespace rocelab::exp
