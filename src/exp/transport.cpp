#include "src/exp/transport.h"

#include <stdexcept>

#include "src/nic/recovery.h"

namespace rocelab::exp {

namespace {

std::optional<LossRecovery> knob_recovery(const Context& ctx) {
  const std::string& name = ctx.recovery_name();
  if (name.empty()) return std::nullopt;
  const auto mode = parse_loss_recovery(name);
  if (!mode) throw std::invalid_argument("unknown --recovery value: " + name);
  return mode;
}

void set_lossless_defaults(std::array<bool, kNumPriorities>& lossless, bool on) {
  lossless.fill(false);
  if (on) {
    lossless[3] = true;  // bulk RDMA class
    lossless[4] = true;  // real-time RDMA class
  }
}

}  // namespace

void apply_transport_knobs(const Context& ctx, QosPolicy& policy) {
  if (const auto mode = knob_recovery(ctx)) policy.recovery = *mode;
  if (ctx.pfc_override() >= 0) policy.pfc_enabled = ctx.pfc_override() != 0;
  if (ctx.retx_timeout_us() >= 0) policy.retx_timeout = microseconds(ctx.retx_timeout_us());
}

void apply_transport_knobs(const Context& ctx, QpConfig& qp) {
  if (const auto mode = knob_recovery(ctx)) qp.recovery = *mode;
  if (ctx.retx_timeout_us() >= 0) qp.retx_timeout = microseconds(ctx.retx_timeout_us());
}

void apply_transport_knobs(const Context& ctx, HostConfig& host) {
  if (ctx.pfc_override() >= 0) set_lossless_defaults(host.lossless, ctx.pfc_override() != 0);
}

void apply_transport_knobs(const Context& ctx, SwitchConfig& sw) {
  if (ctx.pfc_override() >= 0) set_lossless_defaults(sw.lossless, ctx.pfc_override() != 0);
}

}  // namespace rocelab::exp
