// Shared experiment plumbing: every fig_*/abl_* main used to hand-roll the
// same three things — a per-host RdmaDemux registry, vectors of
// stream-source/echo-server lifetimes, and a single-switch star fabric for
// incast/loss microbenches. TrafficSet and StarFabric own those shapes once.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/topo/fabric.h"

namespace rocelab::exp {

/// Owns demuxes, stream sources, echo servers, pingmeshes, and incast
/// clients for one experiment. A Host gets exactly one RdmaDemux (creating
/// a second would silently steal the NIC's recv callback).
class TrafficSet {
 public:
  RdmaDemux& demux(Host& h);

  /// `count` saturating stream QPs src -> dst; returns the prober-side QPNs.
  std::vector<std::uint32_t> add_streams(Host& src, Host& dst, const QpConfig& qp,
                                         RdmaStreamSource::Options opts, int count = 1);

  /// Connect prober -> target and put an echo server behind the far side.
  /// Returns the prober-side QPN (feed several into add_pingmesh/add_incast).
  std::uint32_t add_probe_target(Host& prober, Host& target, const QpConfig& qp,
                                 std::int64_t response_bytes);

  RdmaPingmesh& add_pingmesh(Host& prober, std::vector<std::uint32_t> qpns,
                             RdmaPingmesh::Options opts);
  RdmaIncastClient& add_incast(Host& client, std::vector<std::uint32_t> qpns,
                               RdmaIncastClient::Options opts);

  /// Sum of goodput_bps() across every stream source.
  [[nodiscard]] double total_goodput_bps() const;
  [[nodiscard]] const std::vector<std::unique_ptr<RdmaStreamSource>>& sources() const {
    return sources_;
  }

 private:
  std::unordered_map<const Host*, std::unique_ptr<RdmaDemux>> demux_;
  std::vector<std::unique_ptr<RdmaStreamSource>> sources_;
  std::vector<std::unique_ptr<RdmaEchoServer>> echoes_;
  std::vector<std::unique_ptr<RdmaPingmesh>> meshes_;
  std::vector<std::unique_ptr<RdmaIncastClient>> incasts_;
};

/// Single-switch star: `senders` transmitters at switch ports 0..N-1 and
/// one receiver at port N, all on 10.0.0.0/24 at 40G / 2m cables — the
/// §2 incast and §4.1 loss-sweep shape.
class StarFabric {
 public:
  StarFabric(int senders, const SwitchConfig& scfg, const HostConfig& hcfg,
             Bandwidth bw = gbps(40));

  Fabric fabric;
  [[nodiscard]] Simulator& sim() { return fabric.sim(); }
  [[nodiscard]] Switch& sw() { return *sw_; }
  [[nodiscard]] Host& rx() { return *rx_; }
  [[nodiscard]] Host& tx(int i) { return *tx_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] int senders() const { return static_cast<int>(tx_.size()); }

 private:
  Switch* sw_ = nullptr;
  Host* rx_ = nullptr;
  std::vector<Host*> tx_;
};

}  // namespace rocelab::exp
