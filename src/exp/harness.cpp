#include "src/exp/harness.h"

namespace rocelab::exp {

RdmaDemux& TrafficSet::demux(Host& h) {
  auto it = demux_.find(&h);
  if (it == demux_.end()) {
    it = demux_.emplace(&h, std::make_unique<RdmaDemux>(h)).first;
  }
  return *it->second;
}

std::vector<std::uint32_t> TrafficSet::add_streams(Host& src, Host& dst, const QpConfig& qp,
                                                   RdmaStreamSource::Options opts, int count) {
  std::vector<std::uint32_t> qpns;
  RdmaDemux& d = demux(src);
  for (int i = 0; i < count; ++i) {
    auto [qa, qb] = connect_qp_pair(src, dst, qp);
    (void)qb;
    sources_.push_back(std::make_unique<RdmaStreamSource>(src, d, qa, opts));
    sources_.back()->start();
    qpns.push_back(qa);
  }
  return qpns;
}

std::uint32_t TrafficSet::add_probe_target(Host& prober, Host& target, const QpConfig& qp,
                                           std::int64_t response_bytes) {
  auto [qa, qb] = connect_qp_pair(prober, target, qp);
  echoes_.push_back(std::make_unique<RdmaEchoServer>(target, demux(target), qb, response_bytes));
  return qa;
}

RdmaPingmesh& TrafficSet::add_pingmesh(Host& prober, std::vector<std::uint32_t> qpns,
                                       RdmaPingmesh::Options opts) {
  meshes_.push_back(
      std::make_unique<RdmaPingmesh>(prober, demux(prober), std::move(qpns), opts));
  return *meshes_.back();
}

RdmaIncastClient& TrafficSet::add_incast(Host& client, std::vector<std::uint32_t> qpns,
                                         RdmaIncastClient::Options opts) {
  incasts_.push_back(
      std::make_unique<RdmaIncastClient>(client, demux(client), std::move(qpns), opts));
  return *incasts_.back();
}

double TrafficSet::total_goodput_bps() const {
  double g = 0;
  for (const auto& s : sources_) g += s->goodput_bps();
  return g;
}

StarFabric::StarFabric(int senders, const SwitchConfig& scfg, const HostConfig& hcfg,
                       Bandwidth bw) {
  sw_ = &fabric.add_switch("sw", scfg, senders + 1);
  sw_->add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24});
  rx_ = &fabric.add_host("rx", hcfg);
  rx_->set_ip(Ipv4Addr::from_octets(10, 0, 0, 100));
  fabric.attach_host(*rx_, *sw_, senders, bw, propagation_delay_for_meters(2));
  for (int i = 0; i < senders; ++i) {
    auto& h = fabric.add_host("tx" + std::to_string(i), hcfg);
    h.set_ip(Ipv4Addr::from_octets(10, 0, 0, static_cast<std::uint8_t>(i + 1)));
    fabric.attach_host(h, *sw_, i, bw, propagation_delay_for_meters(2));
    tx_.push_back(&h);
  }
}

}  // namespace rocelab::exp
