#include "src/sim/shard_group.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/link/node.h"
#include "src/monitor/metric_registry.h"
#include "src/net/packet_pool.h"

namespace rocelab {

namespace {
Time sat_add(Time a, Time b) {
  return b >= kTimeInfinity - a ? kTimeInfinity : a + b;
}
}  // namespace

// ---------------------------------------------------------------------------
// CrossShardChannel

CrossShardChannel::~CrossShardChannel() {
  // Undelivered messages at teardown (a stopped run): release their boxes.
  for (CrossShardMsg& m : buf_) {
    if (m.pkt != nullptr) PooledPacket drop(m.pkt);
  }
}

void CrossShardChannel::push(CrossShardMsg m) {
  if (m.at < group_.horizon_floor()) {
    throw std::logic_error("cross-shard message below the promised horizon (lookahead violation)");
  }
  m.src = src_;
  m.seq = next_seq_++;
  buf_.push_back(m);
}

void CrossShardChannel::push_deliver(Time at, Node* dst, int dst_port, Packet* pkt,
                                     bool newly_corrupt) {
  if (at < group_.horizon_floor()) {
    PooledPacket cleanup(pkt);  // don't leak the box past the diagnostic
    throw std::logic_error("cross-shard message below the promised horizon (lookahead violation)");
  }
  CrossShardMsg m;
  m.at = at;
  m.pkt = pkt;
  m.dst = dst;
  m.dst_port = static_cast<std::int32_t>(dst_port);
  m.kind = newly_corrupt ? CrossShardMsg::Kind::kDeliverCorrupt : CrossShardMsg::Kind::kDeliver;
  push(m);
}

void CrossShardChannel::push_fcs_error(Time at, Node* dst, int dst_port) {
  CrossShardMsg m;
  m.at = at;
  m.dst = dst;
  m.dst_port = static_cast<std::int32_t>(dst_port);
  m.kind = CrossShardMsg::Kind::kFcsError;
  push(m);
}

// ---------------------------------------------------------------------------
// ShardGroup

ShardGroup::ShardGroup(int shards) : metrics_(std::make_unique<MetricRegistry>()) {
  const int n = std::clamp(shards, 1, static_cast<int>(kMaxShards));
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.emplace_back(new Simulator(this, static_cast<std::uint32_t>(i)));
  }
  if (n == 1) {
    control_ = shards_[0].get();
  } else {
    control_owned_.reset(new Simulator(this, kControlShardTag));
    control_ = control_owned_.get();
    channels_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        if (s == d) continue;
        channels_[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) + d] =
            std::make_unique<CrossShardChannel>(*this, static_cast<std::uint32_t>(s),
                                                static_cast<std::uint32_t>(d));
      }
    }
  }
  // Queue-health plane: shard imbalance (executed-event skew), pending load,
  // and the lazy-cancel debt each heap is carrying — all readable by name
  // from any scenario's sampler.
  for (int i = 0; i < n; ++i) {
    Simulator& s = *shards_[static_cast<std::size_t>(i)];
    const std::string prefix = "sim/shard" + std::to_string(i);
    metrics_->add(this, prefix + "/executed_events", &s.executed_);
    metrics_->add(this, prefix + "/live_events", &s.live_, MetricKind::kGauge);
    metrics_->add(this, prefix + "/heap_debt", &s.heap_debt_, MetricKind::kGauge);
  }
  if (control_owned_ != nullptr) {
    metrics_->add(this, "sim/control/executed_events", &control_->executed_);
    metrics_->add(this, "sim/control/live_events", &control_->live_, MetricKind::kGauge);
    metrics_->add(this, "sim/control/heap_debt", &control_->heap_debt_, MetricKind::kGauge);
  }
  metrics_->add(this, "sim/windows", &windows_);
  metrics_->add(this, "sim/cross_messages", &cross_msgs_);
  metrics_->add(this, "sim/control_events", &control_steps_);
  metrics_->add(this, "sim/lookahead_ps", &lookahead_metric_, MetricKind::kGauge);
  metrics_->add(this, "sim/boundary_links", &boundary_links_, MetricKind::kGauge);
}

ShardGroup::~ShardGroup() {
  quit_.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers_) t.join();
  metrics_->remove_owner(this);
}

void ShardGroup::note_boundary(std::uint32_t src, std::uint32_t dst, Time prop_delay) {
  (void)src;
  (void)dst;
  if (prop_delay <= 0) {
    // Zero propagation delay across a shard boundary would make the safe
    // window empty: the group could never guarantee a horizon and would
    // wedge. Partition so that zero-delay links stay shard-internal.
    throw std::invalid_argument("cross-shard link needs positive propagation delay (lookahead)");
  }
  ++boundary_links_;
  if (prop_delay < lookahead_) {
    lookahead_ = prop_delay;
    lookahead_metric_ = prop_delay;
  }
}

Simulator* ShardGroup::shard_by_tag(std::uint32_t tag) {
  if (tag == kControlShardTag) return control_;
  if (tag < shards_.size()) return shards_[tag].get();
  return nullptr;
}

std::uint64_t ShardGroup::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += static_cast<std::uint64_t>(s->executed_);
  if (control_owned_ != nullptr) total += static_cast<std::uint64_t>(control_->executed_);
  return total;
}

std::size_t ShardGroup::pending_events() const {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->live_;
  if (control_owned_ != nullptr) total += control_->live_;
  return static_cast<std::size_t>(total);
}

void ShardGroup::run() { run_loop(kTimeInfinity); }
void ShardGroup::run_until(Time deadline) { run_loop(deadline); }

void ShardGroup::run_loop(Time deadline) {
  stop_.store(false, std::memory_order_relaxed);
  for (auto& s : shards_) s->stopped_ = false;
  control_->stopped_ = false;
  if (shard_count() == 1) {
    // The 1-shard path IS the classic single-threaded core — same loops,
    // same heap, control lane aliased to shard 0 — which is what keeps the
    // pre-PDES determinism digest byte-identical.
    if (deadline == kTimeInfinity) {
      shards_[0]->run_local();
    } else {
      shards_[0]->run_until_local(deadline);
    }
    return;
  }
  start_workers();
  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) break;
    // H: the earliest data-plane event anywhere. G: the earliest control
    // event. All channels are drained, so the heaps hold the whole future.
    Time h = kTimeInfinity;
    for (auto& s : shards_) {
      const Time t = s->next_event_time();
      if (t < h) h = t;
    }
    const Time g = control_->next_event_time();
    if (h == kTimeInfinity && g == kTimeInfinity) break;
    if (h > deadline && g > deadline) break;
    if (g <= h) {
      // Control events run serialized between windows, with every shard
      // clamped to the control timestamp first: whatever the event touches
      // on any shard (link flaps, table rewrites, timer installs via that
      // node's schedule_in) happens at a synchronized "now".
      for (auto& s : shards_) s->clamp_now(g);
      control_->step_one();
      ++control_steps_;
      drain_channels();
      continue;
    }
    // Conservative window: everything strictly below H + lookahead is safe —
    // the earliest cross-shard consequence of any event at >= H lands at
    // >= H + L. The window also never crosses the next control event or the
    // deadline (events at exactly the deadline still run: hence +1).
    Time end = sat_add(h, lookahead_);
    if (g < end) end = g;
    if (deadline != kTimeInfinity && deadline < end - 1) end = deadline + 1;
    parallel_window(end);
    drain_channels();
    ++windows_;
  }
  if (deadline != kTimeInfinity) {
    for (auto& s : shards_) s->clamp_now(deadline);
    control_->clamp_now(deadline);
  }
}

void ShardGroup::parallel_window(Time end) {
  window_end_ = end;
  // Promise the horizon before anyone can produce into a channel: no
  // message emitted during this window may arrive below `end`.
  horizon_floor_.store(end, std::memory_order_relaxed);
  in_parallel_phase_.store(true, std::memory_order_relaxed);
  arrived_.store(0, std::memory_order_relaxed);
  // The release-store publishes window_end_ (and everything drained into
  // the shard heaps) to the workers' acquire-loads.
  epoch_.fetch_add(1, std::memory_order_release);
  shards_[0]->run_window(end);
  const int need = shard_count() - 1;
  int spins = 0;
  while (arrived_.load(std::memory_order_acquire) < need) {
    if (++spins > 64) std::this_thread::yield();
  }
  in_parallel_phase_.store(false, std::memory_order_relaxed);
}

void ShardGroup::drain_channels() {
  if (channels_.empty()) return;
  const std::size_t n = shards_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    merge_scratch_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      if (src == dst) continue;
      CrossShardChannel* ch = channels_[src * n + dst].get();
      if (ch == nullptr || ch->buf_.empty()) continue;
      merge_scratch_.insert(merge_scratch_.end(), ch->buf_.begin(), ch->buf_.end());
      ch->buf_.clear();
    }
    if (merge_scratch_.empty()) continue;
    // (time, src shard, seq) is a total order and a pure function of the
    // workload: the destination assigns its tie-break sequence numbers in
    // exactly this order on every rerun.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const CrossShardMsg& a, const CrossShardMsg& b) {
                if (a.at != b.at) return a.at < b.at;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    Simulator& shard = *shards_[dst];
    for (const CrossShardMsg& m : merge_scratch_) {
      Node* node = m.dst;
      const int port = m.dst_port;
      if (m.kind != CrossShardMsg::Kind::kFcsError) {
        // The closure owns the packet from here: if the run ends with the
        // delivery still pending in the heap, destroying the slot frees it.
        // Receiver-side link gate: the same-shard fast path checks the
        // sender's egress epoch at arrival; across shards that read would
        // race, so the receiving direction's own link state stands in (both
        // directions of a link fault flip together). kDeliverCorrupt adds
        // the receiving port's corrupt_delivered bump — the same side effect
        // the same-shard delivery closure applies, so shard count never
        // changes what the detection plane observes.
        const bool newly = m.kind == CrossShardMsg::Kind::kDeliverCorrupt;
        shard.schedule_at(m.at, [node, port, newly, pp = PooledPacket(m.pkt)]() mutable {
          EgressPort& in = node->port(port);
          if (!in.link_up()) {
            ++in.counters().link_down_drops;
            return;
          }
          if (newly) ++in.counters().corrupt_delivered;
          node->deliver(std::move(pp), port);
        });
      } else {
        shard.schedule_at(m.at, [node, port] {
          EgressPort& in = node->port(port);
          if (!in.link_up()) return;
          ++in.counters().fcs_errors;
        });
      }
      ++cross_msgs_;
    }
  }
}

void ShardGroup::start_workers() {
  if (workers_started_) return;
  workers_started_ = true;
  workers_.reserve(shards_.size() - 1);
  for (int i = 1; i < shard_count(); ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

void ShardGroup::worker_main(int shard_index) {
  Simulator& shard = *shards_[static_cast<std::size_t>(shard_index)];
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t e;
    int spins = 0;
    while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
      if (quit_.load(std::memory_order_relaxed)) return;
      if (++spins > 64) std::this_thread::yield();
    }
    seen = e;
    shard.run_window(window_end_);
    arrived_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace rocelab
