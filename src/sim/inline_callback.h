// InlineCallback: a move-only callable with small-buffer optimization, used
// as the simulator's event callback type. Closures up to kInlineBytes are
// stored inline (zero heap traffic on the schedule/fire path); larger ones
// fall back to a single heap box. Unlike std::function it accepts move-only
// closures, so packets can be threaded through timer events without copies.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace rocelab {

class InlineCallback {
 public:
  /// Sized so every hot-path closure in the simulator (a `this` pointer plus
  /// a few ints, a pooled packet handle, or a std::function) stays inline.
  static constexpr std::size_t kInlineBytes = 48;

  InlineCallback() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor): callable adoption
    using D = std::remove_cvref_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = ops_for<D>();
    } else {
      ::new (static_cast<void*>(buf_)) Boxed<D>{std::make_unique<D>(std::forward<F>(f))};
      ops_ = ops_for<Boxed<D>>();
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  void operator()() { ops_->invoke(buf_); }

  /// Fire path: move the closure out of this object, invoke it, destroy it —
  /// one virtual dispatch instead of three (move, call, destruct). Leaves
  /// this callback empty. The move-out matters: the caller's storage may be
  /// reused by whatever the closure schedules.
  void consume_and_invoke() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->fire(buf_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*fire)(void* src);                          // move out, invoke, destroy
    void (*relocate)(void* src, void* dst) noexcept;  // move-construct dst, destroy src
    void (*destroy)(void*) noexcept;
  };

  /// Heap fallback for closures that exceed the inline buffer: the box
  /// itself (one pointer) is stored inline.
  template <typename D>
  struct Boxed {
    std::unique_ptr<D> ptr;
    void operator()() { (*ptr)(); }
  };

  template <typename D>
  static const Ops* ops_for() noexcept {
    static constexpr Ops ops{
        [](void* o) { (*static_cast<D*>(o))(); },
        [](void* src) {
          D local(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
          local();
        },
        [](void* src, void* dst) noexcept {
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        },
        [](void* o) noexcept { static_cast<D*>(o)->~D(); },
    };
    return &ops;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace rocelab
