// Discrete-event simulation core.
//
// A Simulator owns a priority queue of timestamped events. Components
// schedule closures; insertion order breaks ties so execution is fully
// deterministic. Events can be cancelled through the returned EventId.
//
// Internals are built for the hot path:
//  - Callbacks are InlineCallback (small-buffer optimized, move-only): the
//    common [this, a-few-ints] closures never touch the heap.
//  - Event storage is a slab of slots recycled through a free list; the heap
//    itself orders 24-byte PODs, so sift-down moves no closures.
//  - Cancellation is a generation tag bump on the slot: O(1), no hashing on
//    the fire path, and the closure is destroyed at cancel time. The stale
//    heap entry is skimmed off lazily when it reaches the top.
// Tie-breaking by a monotonically increasing sequence number preserves the
// seed-stable FIFO-within-timestamp order of the original implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/sim/inline_callback.h"

namespace rocelab {

class MetricRegistry;

/// Opaque handle to a scheduled event: (slot+1) in the high 32 bits, the
/// slot's generation in the low 32. Zero is never a valid id, and ids are
/// never reused (slot reuse bumps the generation), so cancelling a stale id
/// is always a harmless no-op.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The telemetry plane (§5.2): every port/switch/NIC registers its
  /// counters here at construction time; monitors read through it. Purely
  /// observational — never schedules events or draws randomness.
  [[nodiscard]] MetricRegistry& metrics() { return *metrics_; }
  [[nodiscard]] const MetricRegistry& metrics() const { return *metrics_; }

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` to run at absolute time `at` (>= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(Time at, Callback cb);
  /// Schedule `cb` to run `delay` after now.
  EventId schedule_in(Time delay, Callback cb) { return schedule_at(now_ + delay, std::move(cb)); }

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (timers race with the events that would cancel them).
  /// The closure is destroyed immediately, releasing anything it captured.
  void cancel(EventId id);

  /// Run until the event queue drains or stop() is called.
  void run();
  /// Run until simulated time reaches `deadline` (events at exactly
  /// `deadline` still execute), the queue drains, or stop() is called.
  void run_until(Time deadline);
  void stop() { stopped_ = true; }

  /// Exact count of live (scheduled and not cancelled or fired) events.
  [[nodiscard]] std::size_t pending_events() const { return live_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  /// Total schedule_at calls so far (fired + cancelled + pending).
  [[nodiscard]] std::uint64_t scheduled_events() const { return seq_ - 1; }
  /// Heap entries, live and stale-cancelled; minus pending_events() this is
  /// the lazy-cancel debt the queue is currently carrying.
  [[nodiscard]] std::size_t queued_entries() const { return keys_.size(); }

  /// Hand out device ids. Per-simulator (not process-global) so that two
  /// fabrics built in the same process — e.g. the perf gate's determinism
  /// double-run — assign identical ids, MACs, and derived seeds.
  [[nodiscard]] std::uint32_t allocate_node_id() { return next_node_id_++; }

 private:
  /// One recyclable unit of event storage. A slot is owned by exactly one
  /// heap entry from schedule until that entry pops (fired or stale); cancel
  /// disarms the slot (gen bump + closure destruction) but leaves the
  /// reservation to the pending heap entry.
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
  };
  /// The heap is stored structure-of-arrays: the ordering key in one array,
  /// the slot reference it carries in a parallel one. Sift comparisons only
  /// ever touch keys_, so a 4-child scan reads one cache line instead of
  /// two; refs_ is touched once per level to mirror moves.
  ///
  /// The key packs (time << 64) | seq into one 128-bit integer: time is
  /// non-negative (schedule_at rejects the past) and seq is unique, so
  /// unsigned lexicographic order on the packed value IS the event order —
  /// time first, insertion sequence as the tie-break — and earlier()
  /// compiles to a single branchless wide compare.
  using HeapKey = unsigned __int128;
  static HeapKey make_key(Time at, std::uint64_t seq) {
    return (static_cast<HeapKey>(static_cast<std::uint64_t>(at)) << 64) | seq;
  }
  static Time key_time(HeapKey k) { return static_cast<Time>(static_cast<std::uint64_t>(k >> 64)); }
  struct HeapRef {
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Strict total order on events: the minimum — and therefore the pop
  /// order — is fully determined regardless of the heap's arrangement.
  static bool earlier(HeapKey a, HeapKey b) { return a < b; }

  static EventId encode(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) + 1) << 32 | gen;
  }

  // 4-ary min-heap: half the sift-down depth of a binary heap and the four
  // children's keys share a cache line, which is where event-queue time goes.
  void heap_push(HeapKey key, HeapRef ref);
  void heap_pop_front();
  void sift_down(std::size_t i);
  /// Drop stale (cancelled) entries and re-heapify. Far-future timers that
  /// were cancelled otherwise linger until their time arrives, and the dead
  /// weight deepens every sift; compaction caps it at ~50% of the heap.
  void compact_heap();

  bool step();  // executes one event; false when queue empty
  /// Skim cancelled entries off the heap top, releasing their slots.
  /// Returns true if a live event remains at the top. Shared by step() and
  /// run_until() so the lazy-cancel policy lives in exactly one place.
  bool purge_stale_top();

  Time now_ = 0;
  std::uint64_t seq_ = 1;  // insertion order; tie-breaks equal timestamps
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::uint32_t next_node_id_ = 1;
  std::vector<HeapKey> keys_;  // heap order lives here
  std::vector<HeapRef> refs_;  // parallel array: refs_[i] belongs to keys_[i]
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::unique_ptr<MetricRegistry> metrics_;
};

}  // namespace rocelab
