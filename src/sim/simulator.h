// Discrete-event simulation core — one *shard* of it.
//
// A Simulator owns a priority queue of timestamped events. Components
// schedule closures; insertion order breaks ties so execution is fully
// deterministic. Events can be cancelled through the returned EventId.
//
// Since the PDES refactor the Simulator is the per-shard event core (the
// alias `Shard` names the same class): a ShardGroup owns one Simulator per
// pod-partition plus a control-lane Simulator, runs the shards on a thread
// pool under conservative-lookahead windows, and carries cross-shard packet
// handoff through deterministic per-(src,dst) channels. A default-constructed
// Simulator is standalone (no group) and behaves exactly as the
// single-threaded core always has; a group of one shard takes the identical
// code path, which is why 1-shard runs reproduce the pre-PDES determinism
// digest byte-for-byte.
//
// Internals are built for the hot path:
//  - Callbacks are InlineCallback (small-buffer optimized, move-only): the
//    common [this, a-few-ints] closures never touch the heap.
//  - Event storage is a slab of slots recycled through a free list; the heap
//    itself orders 24-byte PODs, so sift-down moves no closures.
//  - Cancellation is a generation tag bump on the slot: O(1), no hashing on
//    the fire path, and the closure is destroyed at cancel time. The stale
//    heap entry is skimmed off lazily when it reaches the top.
// Tie-breaking by a monotonically increasing sequence number preserves the
// seed-stable FIFO-within-timestamp order of the original implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/sim/inline_callback.h"

namespace rocelab {

class MetricRegistry;
class ShardGroup;

/// Opaque handle to a scheduled event, packing (shard, slot, generation):
/// the owning shard's tag in the top 6 bits, (slot+1) in bits [32, 58), and
/// the slot's generation in the low 32. Zero is never a valid id, and ids
/// are never reused (slot reuse bumps the generation), so cancelling a
/// stale id is always a harmless no-op. A standalone Simulator has shard
/// tag 0, so its ids are bit-identical to the pre-PDES encoding.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Shard tags: group shards are numbered from 0; the control lane uses a
/// reserved tag so control EventIds route back to it through any shard.
inline constexpr std::uint32_t kMaxShards = 62;
inline constexpr std::uint32_t kControlShardTag = 63;
inline constexpr int kEventIdShardShift = 58;

/// "No event" sentinel for horizon computations.
inline constexpr Time kTimeInfinity = INT64_MAX;

class Simulator {
 public:
  using Callback = InlineCallback;

  /// Standalone core (no group): the classic single-threaded simulator.
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The telemetry plane (§5.2): every port/switch/NIC registers its
  /// counters here at construction time; monitors read through it. Purely
  /// observational — never schedules events or draws randomness. Group
  /// shards share their group's registry so glob queries span the fabric.
  [[nodiscard]] MetricRegistry& metrics();
  [[nodiscard]] const MetricRegistry& metrics() const;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` to run at absolute time `at` (>= now). Returns an id
  /// usable with cancel(). Must only be called for events this shard owns:
  /// during a parallel window, scheduling into a foreign shard is a
  /// lookahead violation and trips a logic_error (cross-shard delivery goes
  /// through the group's channels instead).
  EventId schedule_at(Time at, Callback cb);
  /// Schedule `cb` to run `delay` after now.
  EventId schedule_in(Time delay, Callback cb) { return schedule_at(now_ + delay, std::move(cb)); }

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (timers race with the events that would cancel them).
  /// The closure is destroyed immediately, releasing anything it captured.
  /// Ids carrying a foreign shard tag are routed to the owning shard; that
  /// is only safe between windows (components cancel their own timers, so
  /// in-window cancels are same-shard by construction).
  void cancel(EventId id);

  /// Run until the event queue drains or stop() is called. On a group
  /// shard this drives the whole group (all shards + control lane).
  void run();
  /// Run until simulated time reaches `deadline` (events at exactly
  /// `deadline` still execute), the queue drains, or stop() is called.
  void run_until(Time deadline);
  /// Halt the run after the current event. From inside a parallel window
  /// this deterministically stops the calling shard at the current event
  /// and the group at the current window boundary.
  void stop();

  /// Exact count of live (scheduled and not cancelled or fired) events.
  [[nodiscard]] std::size_t pending_events() const { return static_cast<std::size_t>(live_); }
  [[nodiscard]] std::uint64_t executed_events() const {
    return static_cast<std::uint64_t>(executed_);
  }
  /// Total schedule_at calls so far (fired + cancelled + pending).
  [[nodiscard]] std::uint64_t scheduled_events() const { return seq_ - 1; }
  /// Heap entries, live and stale-cancelled; minus pending_events() this is
  /// the lazy-cancel debt the queue is currently carrying.
  [[nodiscard]] std::size_t queued_entries() const { return keys_.size(); }

  /// Hand out device ids. Per-group (not process-global) so that two
  /// fabrics built in the same process — e.g. the perf gate's determinism
  /// double-run — assign identical ids, MACs, and derived seeds.
  [[nodiscard]] std::uint32_t allocate_node_id();

  /// The owning group, or nullptr for a standalone core. Ports use this to
  /// discover cross-shard peers and their channels.
  [[nodiscard]] ShardGroup* group() const { return group_; }
  [[nodiscard]] std::uint32_t shard_tag() const { return shard_tag_; }

 private:
  friend class ShardGroup;

  /// Group-owned shard: shares the group's registry and node-id counter.
  Simulator(ShardGroup* group, std::uint32_t shard_tag);

  /// One recyclable unit of event storage. A slot is owned by exactly one
  /// heap entry from schedule until that entry pops (fired or stale); cancel
  /// disarms the slot (gen bump + closure destruction) but leaves the
  /// reservation to the pending heap entry.
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
  };
  /// The heap is stored structure-of-arrays: the ordering key in one array,
  /// the slot reference it carries in a parallel one. Sift comparisons only
  /// ever touch keys_, so a 4-child scan reads one cache line instead of
  /// two; refs_ is touched once per level to mirror moves.
  ///
  /// The key packs (time << 64) | seq into one 128-bit integer: time is
  /// non-negative (schedule_at rejects the past) and seq is unique, so
  /// unsigned lexicographic order on the packed value IS the event order —
  /// time first, insertion sequence as the tie-break — and earlier()
  /// compiles to a single branchless wide compare.
  using HeapKey = unsigned __int128;
  static HeapKey make_key(Time at, std::uint64_t seq) {
    return (static_cast<HeapKey>(static_cast<std::uint64_t>(at)) << 64) | seq;
  }
  static Time key_time(HeapKey k) { return static_cast<Time>(static_cast<std::uint64_t>(k >> 64)); }
  struct HeapRef {
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Strict total order on events: the minimum — and therefore the pop
  /// order — is fully determined regardless of the heap's arrangement.
  static bool earlier(HeapKey a, HeapKey b) { return a < b; }

  [[nodiscard]] EventId encode(std::uint32_t slot, std::uint32_t gen) const {
    return (static_cast<EventId>(shard_tag_) << kEventIdShardShift) |
           (static_cast<EventId>(slot) + 1) << 32 | gen;
  }

  // 4-ary min-heap: half the sift-down depth of a binary heap and the four
  // children's keys share a cache line, which is where event-queue time goes.
  void heap_push(HeapKey key, HeapRef ref);
  void heap_pop_front();
  void sift_down(std::size_t i);
  /// Drop stale (cancelled) entries and re-heapify. Far-future timers that
  /// were cancelled otherwise linger until their time arrives, and the dead
  /// weight deepens every sift; compaction caps it at ~50% of the heap.
  void compact_heap();

  bool step();  // executes one event; false when queue empty
  /// Skim cancelled entries off the heap top, releasing their slots.
  /// Returns true if a live event remains at the top. Shared by step() and
  /// run_until() so the lazy-cancel policy lives in exactly one place.
  bool purge_stale_top();

  /// Cancel an id this shard owns (no routing). Shared by cancel() and the
  /// group's cross-shard routing.
  void cancel_local(EventId id);

  // --- group-side internals (ShardGroup is a friend) -------------------------
  /// The classic single-threaded loops; the group's 1-shard path calls
  /// these directly so that path is byte-identical to the pre-PDES core.
  void run_local();
  void run_until_local(Time deadline);
  /// Execute every event with time strictly below `end` (one conservative
  /// PDES window). Does not advance now_ past the last executed event.
  void run_window(Time end);
  /// Time of the earliest live event, or kTimeInfinity. Purges stale
  /// entries off the top as a side effect.
  [[nodiscard]] Time next_event_time();
  /// Execute exactly the earliest event (control-lane serialization).
  void step_one() { step(); }
  void clamp_now(Time t) {
    if (now_ < t) now_ = t;
  }

  Time now_ = 0;
  std::uint64_t seq_ = 1;  // insertion order; tie-breaks equal timestamps
  // Counters are int64 so the telemetry plane can export them as gauges
  // through raw-pointer registration (live events, lazy-cancel heap debt,
  // per-shard executed events — the shard-imbalance signals).
  std::int64_t executed_ = 0;
  std::int64_t live_ = 0;
  std::int64_t heap_debt_ = 0;  // stale-cancelled entries still queued
  bool stopped_ = false;
  ShardGroup* group_ = nullptr;
  std::uint32_t shard_tag_ = 0;
  std::uint32_t next_node_id_ = 1;  // standalone only; group shards defer
  std::vector<HeapKey> keys_;  // heap order lives here
  std::vector<HeapRef> refs_;  // parallel array: refs_[i] belongs to keys_[i]
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::unique_ptr<MetricRegistry> metrics_;  // standalone only
};

/// PDES vocabulary: a Simulator is one shard of the group.
using Shard = Simulator;

}  // namespace rocelab
