// Discrete-event simulation core.
//
// A Simulator owns a priority queue of timestamped events. Components
// schedule closures; insertion order breaks ties so execution is fully
// deterministic. Events can be cancelled through the returned EventId.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/units.h"

namespace rocelab {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` to run at absolute time `at` (>= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(Time at, Callback cb);
  /// Schedule `cb` to run `delay` after now.
  EventId schedule_in(Time delay, Callback cb) { return schedule_at(now_ + delay, std::move(cb)); }

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (timers race with the events that would cancel them).
  void cancel(EventId id);

  /// Run until the event queue drains or stop() is called.
  void run();
  /// Run until simulated time reaches `deadline` (events at exactly
  /// `deadline` still execute), the queue drains, or stop() is called.
  void run_until(Time deadline);
  void stop() { stopped_ = true; }

  /// Upper bound on live (non-cancelled) scheduled events. Exact whenever
  /// every cancelled id was actually pending; stale cancellations (of
  /// already-fired events) are purged whenever the queue drains.
  [[nodiscard]] std::size_t pending_events() const {
    return heap_.size() >= cancelled_.size() ? heap_.size() - cancelled_.size() : 0;
  }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    Time at;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at != b.at ? a.at > b.at : a.id > b.id;
    }
  };

  bool step();  // executes one event; false when queue empty

  Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace rocelab
