// ShardGroup: the pod-partitioned parallel-DES coordinator.
//
// The fabric is partitioned by pod/podset into shards; each shard is a
// Simulator (its own event heap, slab, and — via thread-local free lists —
// packet pool). The group runs the shards on a persistent thread pool using
// the classic conservative recipe: with lookahead L = the minimum
// propagation delay over all cross-shard links, every shard may safely
// execute all events with time < H + L, where H is the global minimum next
// event time — no neighbour can make a packet arrive earlier than its own
// frontier plus the wire delay. Windows are separated by barriers (the
// synchronous form of null messages: one horizon announcement per shard per
// round instead of one per neighbour per event).
//
// Cross-shard packet handoff goes through deterministic SPSC channels, one
// per ordered (src, dst) shard pair: the source shard appends during its
// window (single producer), the coordinator drains at the barrier (single
// consumer — the barrier provides the happens-before edge), and messages
// are merged into the destination heap ordered by (time, src shard, seq).
// Delivery order is therefore a pure function of the workload, never of
// thread scheduling: for a fixed shard count, reruns are byte-identical.
//
// A separate control-lane Simulator serializes the fabric-global actors
// (ChaosEngine, monitors, SelfHealer, IncidentManager, samplers): its
// events only run when every shard has reached the event's timestamp, i.e.
// between windows, so control code may read and mutate any node race-free —
// and the chaos journal, being written only from this lane, merges
// fault/mitigation records across shards in deterministic order. With one
// shard the control lane aliases shard 0 and the group runs the classic
// single-threaded loop, reproducing the pre-PDES digest exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace rocelab {

class MetricRegistry;
class Node;
class Packet;

/// One cross-shard message: a packet delivery (or an FCS-error indication —
/// the corrupted frame arrives only as a receiver-side counter bump) bound
/// for `dst`'s ingress `dst_port` at absolute time `at`. `seq` is the
/// channel-local send order; the (time, src shard, seq) triple totally
/// orders the merge at the destination.
struct CrossShardMsg {
  Time at = 0;
  std::uint64_t seq = 0;
  std::uint32_t src = 0;  // producing shard; the merge's second sort key
  Packet* pkt = nullptr;  // owned; null for kFcsError
  Node* dst = nullptr;
  std::int32_t dst_port = -1;
  enum class Kind : std::uint8_t {
    kDeliver,
    kFcsError,
    /// A delivery whose frame was corrupted on THIS hop past the FCS check:
    /// delivered like kDeliver, plus the receiving port's corrupt_delivered
    /// bump (the packet itself carries Packet::corrupt for the end hosts).
    kDeliverCorrupt,
  } kind = Kind::kDeliver;
};

/// Deterministic SPSC channel for one ordered (src shard, dst shard) pair.
/// Producer: the source shard's thread, during its window (or the
/// coordinator, during control-lane execution). Consumer: the coordinator,
/// at the barrier. The window barrier is the synchronization; the buffer
/// itself is a plain vector.
class CrossShardChannel {
 public:
  CrossShardChannel(ShardGroup& group, std::uint32_t src, std::uint32_t dst)
      : group_(group), src_(src), dst_(dst) {}
  CrossShardChannel(const CrossShardChannel&) = delete;
  CrossShardChannel& operator=(const CrossShardChannel&) = delete;
  ~CrossShardChannel();

  /// Hand a packet (ownership transferred) to the peer shard, arriving at
  /// absolute time `at`. Trips the lookahead check: `at` must not be below
  /// the horizon the consumer side was already promised. `newly_corrupt`
  /// marks a frame this hop corrupted past the FCS check (§5.2 silent
  /// corruption): delivery also bumps the receiver's corrupt_delivered.
  void push_deliver(Time at, Node* dst, int dst_port, Packet* pkt, bool newly_corrupt = false);
  /// The gray-failure FCS path: the frame arrives only to fail the
  /// receiver's FCS check (rx-side fcs_errors bump at `at`).
  void push_fcs_error(Time at, Node* dst, int dst_port);

  [[nodiscard]] std::uint32_t src_shard() const { return src_; }
  [[nodiscard]] std::uint32_t dst_shard() const { return dst_; }
  [[nodiscard]] bool empty() const { return buf_.empty(); }
  /// Total messages ever pushed (producer-side; read between windows).
  [[nodiscard]] std::uint64_t pushed_total() const { return next_seq_; }

 private:
  friend class ShardGroup;
  void push(CrossShardMsg m);

  ShardGroup& group_;
  std::uint32_t src_;
  std::uint32_t dst_;
  std::uint64_t next_seq_ = 0;
  std::vector<CrossShardMsg> buf_;
};

class ShardGroup {
 public:
  /// `shards` is clamped to [1, kMaxShards]. With one shard the group is a
  /// zero-overhead wrapper around the classic core.
  explicit ShardGroup(int shards = 1);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  [[nodiscard]] int shard_count() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] Simulator& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  /// The control lane: fabric-global actors (chaos, monitors, healers)
  /// schedule here so their events serialize at synchronized horizons.
  /// Aliases shard 0 when the group has one shard — which is what keeps
  /// 1-shard runs byte-identical to the single-threaded core.
  [[nodiscard]] Simulator& control() { return *control_; }

  [[nodiscard]] MetricRegistry& metrics() { return *metrics_; }
  [[nodiscard]] std::uint32_t allocate_node_id() { return next_node_id_++; }

  /// Record a cross-shard link and fold its propagation delay into the
  /// conservative lookahead. Called by EgressPort::connect for every wired
  /// direction whose endpoints live on different shards of this group.
  /// Throws if the delay is zero: a zero-lookahead boundary would make the
  /// safe window empty and the group unable to advance.
  void note_boundary(std::uint32_t src, std::uint32_t dst, Time prop_delay);
  [[nodiscard]] Time lookahead() const { return lookahead_; }
  [[nodiscard]] int boundary_links() const { return static_cast<int>(boundary_links_); }

  /// The (src, dst) channel; src != dst, both < shard_count().
  [[nodiscard]] CrossShardChannel& channel(std::uint32_t src, std::uint32_t dst) {
    return *channels_[static_cast<std::size_t>(src) * shards_.size() + dst];
  }

  /// The horizon every shard has been promised: no cross-shard message may
  /// arrive below it. Advanced to each window's end before the window runs.
  [[nodiscard]] Time horizon_floor() const { return horizon_floor_.load(std::memory_order_relaxed); }
  /// True while shards are executing a parallel window (used by the
  /// foreign-schedule lookahead check).
  [[nodiscard]] bool in_parallel_phase() const {
    return in_parallel_phase_.load(std::memory_order_relaxed);
  }

  void run();
  void run_until(Time deadline);
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  // --- aggregates over all shards + control lane ----------------------------
  [[nodiscard]] std::uint64_t executed_events() const;
  [[nodiscard]] std::size_t pending_events() const;
  /// Conservative windows executed so far (the null-message/barrier rounds).
  [[nodiscard]] std::int64_t windows() const { return windows_; }
  /// Cross-shard messages merged so far.
  [[nodiscard]] std::int64_t cross_messages() const { return cross_msgs_; }
  /// Control-lane events executed so far.
  [[nodiscard]] std::int64_t control_events() const { return control_steps_; }

  [[nodiscard]] Simulator* shard_by_tag(std::uint32_t tag);

 private:
  friend class Simulator;
  friend class CrossShardChannel;

  void run_loop(Time deadline);
  /// Dispatch one window [*, end) to the worker pool and run shard 0 on the
  /// calling thread; returns when every shard has arrived at the barrier.
  void parallel_window(Time end);
  /// Merge every channel into its destination heap, ordered by
  /// (time, src shard, seq). Single-threaded: runs between windows.
  void drain_channels();
  void start_workers();
  void worker_main(int shard_index);

  std::unique_ptr<MetricRegistry> metrics_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::unique_ptr<Simulator> control_owned_;  // null when control_ == shard 0
  Simulator* control_ = nullptr;
  std::vector<std::unique_ptr<CrossShardChannel>> channels_;  // src * n + dst
  std::uint32_t next_node_id_ = 1;
  Time lookahead_ = kTimeInfinity;
  std::int64_t boundary_links_ = 0;

  // Observability (registered as sim/** metrics; coordinator-written).
  std::int64_t windows_ = 0;
  std::int64_t cross_msgs_ = 0;
  std::int64_t control_steps_ = 0;
  std::int64_t lookahead_metric_ = 0;

  // --- worker pool -----------------------------------------------------------
  // Dispatch is a generation counter: the coordinator publishes window_end_
  // then bumps epoch_ (release); workers spin/yield on epoch_ (acquire),
  // run their shard's window, and arrive (release). The acquire/release
  // pairs give every buffer the coordinator touches a happens-before edge.
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> arrived_{0};
  std::atomic<bool> quit_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> in_parallel_phase_{false};
  std::atomic<Time> horizon_floor_{0};
  Time window_end_ = 0;
  bool workers_started_ = false;

  std::vector<CrossShardMsg> merge_scratch_;
};

}  // namespace rocelab
