#include "src/sim/simulator.h"

#include <algorithm>
#include <stdexcept>

#include "src/monitor/metric_registry.h"
#include "src/sim/shard_group.h"

namespace rocelab {

namespace {
// The shard whose window is executing on this thread, if any. run_window
// maintains it; schedule_at consults it to catch cross-shard scheduling
// during a parallel window — which would be a write into a neighbour's
// heap from the wrong thread AND a lookahead violation.
thread_local Simulator* t_running_shard = nullptr;
}  // namespace

Simulator::Simulator() : metrics_(std::make_unique<MetricRegistry>()) {}

Simulator::Simulator(ShardGroup* group, std::uint32_t shard_tag)
    : group_(group), shard_tag_(shard_tag) {}

Simulator::~Simulator() = default;

MetricRegistry& Simulator::metrics() { return group_ ? group_->metrics() : *metrics_; }
const MetricRegistry& Simulator::metrics() const {
  return const_cast<Simulator*>(this)->metrics();
}

std::uint32_t Simulator::allocate_node_id() {
  return group_ ? group_->allocate_node_id() : next_node_id_++;
}

void Simulator::heap_push(HeapKey key, HeapRef ref) {
  std::size_t i = keys_.size();
  keys_.push_back(key);  // placeholder; the hole migrates up
  refs_.push_back(ref);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(key, keys_[parent])) break;
    keys_[i] = keys_[parent];
    refs_[i] = refs_[parent];
    i = parent;
  }
  keys_[i] = key;
  refs_[i] = ref;
}

void Simulator::heap_pop_front() {
  const HeapKey last_key = keys_.back();
  const HeapRef last_ref = refs_.back();
  keys_.pop_back();
  refs_.pop_back();
  const std::size_t n = keys_.size();
  if (n == 0) return;
  // Bottom-up variant: walk the min-child path all the way to a leaf
  // without comparing against `last` (it came from the bottom, so it
  // almost always belongs near a leaf — comparing at every level buys an
  // early exit that rarely triggers and costs a hard-to-predict branch),
  // then bubble `last` up from the leaf hole. The final arrangement can
  // differ from the top-down variant's, but any valid heap pops the same
  // sequence: the order is strict and total, so the minimum is unique.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t min_child = first_child;
    const std::size_t end = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (earlier(keys_[c], keys_[min_child])) min_child = c;
    }
    keys_[i] = keys_[min_child];
    refs_[i] = refs_[min_child];
    i = min_child;
  }
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(last_key, keys_[parent])) break;
    keys_[i] = keys_[parent];
    refs_[i] = refs_[parent];
    i = parent;
  }
  keys_[i] = last_key;
  refs_[i] = last_ref;
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = keys_.size();
  const HeapKey key = keys_[i];
  const HeapRef ref = refs_[i];
  std::size_t hole = i;
  for (;;) {
    const std::size_t first_child = 4 * hole + 1;
    if (first_child >= n) break;
    std::size_t min_child = first_child;
    const std::size_t end = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (earlier(keys_[c], keys_[min_child])) min_child = c;
    }
    if (!earlier(keys_[min_child], key)) break;
    keys_[hole] = keys_[min_child];
    refs_[hole] = refs_[min_child];
    hole = min_child;
  }
  keys_[hole] = key;
  refs_[hole] = ref;
}

void Simulator::compact_heap() {
  // Filter stale entries in place, releasing their slot reservations.
  std::size_t w = 0;
  for (std::size_t r = 0; r < keys_.size(); ++r) {
    const HeapRef ref = refs_[r];
    if (slots_[ref.slot].gen != ref.gen) {
      free_.push_back(ref.slot);
      --heap_debt_;
      continue;
    }
    keys_[w] = keys_[r];
    refs_[w] = ref;
    ++w;
  }
  keys_.resize(w);
  refs_.resize(w);
  // Floyd heapify, last internal node first. The resulting arrangement may
  // differ from incremental pushes, but pop order doesn't: the order is
  // strict and total, so every valid heap yields the same sequence.
  if (w > 1) {
    for (std::size_t i = (w - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
}

EventId Simulator::schedule_at(Time at, Callback cb) {
  // The foreign-shard guard must run before anything else: it is the one
  // check that may execute on the wrong thread, so it can only consult the
  // group's atomic phase flag and the thread-local mark — reading now_ or
  // the heap here would itself race with the owning shard's window.
  if (group_ && group_->in_parallel_phase() && t_running_shard != this) {
    // A neighbour shard (or anything off this shard's thread) is writing
    // into our heap mid-window: lookahead violation. Cross-shard traffic
    // must go through the group's channels, which enforce the horizon.
    throw std::logic_error("schedule_at on a foreign shard during a parallel window");
  }
  if (at < now_) throw std::invalid_argument("schedule_at in the past");
  // Amortized O(1): a compaction pass runs at most once per ~live_/2
  // schedules, and each pass is linear in the heap size.
  if (keys_.size() >= 128 &&
      keys_.size() - static_cast<std::size_t>(live_) > static_cast<std::size_t>(live_)) {
    compact_heap();
  }
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  heap_push(make_key(at, seq_++), HeapRef{slot, s.gen});
  ++live_;
  return encode(slot, s.gen);
}

void Simulator::cancel(EventId id) {
  const auto tag = static_cast<std::uint32_t>(id >> kEventIdShardShift);
  if (tag == shard_tag_) {
    cancel_local(id);
    return;
  }
  if (group_ == nullptr) return;  // foreign-tagged id on a standalone core: no-op
  Simulator* owner = group_->shard_by_tag(tag);
  if (owner != nullptr) owner->cancel_local(id);
}

void Simulator::cancel_local(EventId id) {
  constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << (kEventIdShardShift - 32)) - 1;
  const std::uint64_t slot_plus1 = (id >> 32) & kSlotMask;
  if (slot_plus1 == 0 || slot_plus1 > slots_.size()) return;  // invalid/foreign id
  Slot& s = slots_[static_cast<std::size_t>(slot_plus1 - 1)];
  if (s.gen != static_cast<std::uint32_t>(id)) return;  // already fired or cancelled
  ++s.gen;       // retire the id; the heap entry is now stale
  s.cb.reset();  // release captured resources right away
  --live_;
  ++heap_debt_;
}

bool Simulator::purge_stale_top() {
  while (!keys_.empty()) {
    const HeapRef top = refs_.front();
    if (slots_[top.slot].gen == top.gen) return true;
    free_.push_back(top.slot);  // the stale entry owned the slot reservation
    heap_pop_front();
    --heap_debt_;
  }
  return false;
}

bool Simulator::step() {
  if (!purge_stale_top()) return false;
  const HeapKey key = keys_.front();
  const HeapRef item = refs_.front();
  heap_pop_front();
  Slot& s = slots_[item.slot];
  now_ = key_time(key);
  ++s.gen;  // retire the id before invoking: cancel-from-within is a no-op
  free_.push_back(item.slot);
  --live_;
  ++executed_;
  // Moves the closure out (slot storage may be reused reentrantly by
  // whatever it schedules), invokes, destroys — one dispatch.
  s.cb.consume_and_invoke();
  return true;
}

Time Simulator::next_event_time() {
  if (!purge_stale_top()) return kTimeInfinity;
  return key_time(keys_.front());
}

void Simulator::run() {
  if (group_ != nullptr) {
    group_->run();
    return;
  }
  run_local();
}

void Simulator::run_until(Time deadline) {
  if (group_ != nullptr) {
    group_->run_until(deadline);
    return;
  }
  run_until_local(deadline);
}

void Simulator::stop() {
  stopped_ = true;
  if (group_ != nullptr) group_->stop();
}

void Simulator::run_local() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until_local(Time deadline) {
  stopped_ = false;
  while (!stopped_) {
    if (!purge_stale_top()) break;
    if (key_time(keys_.front()) > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_window(Time end) {
  // One conservative window: everything strictly below the horizon is safe
  // to execute without hearing from the neighbours again. The guard clears
  // the running-shard mark even when a lookahead-violation check throws out
  // of an event, so the diagnostic doesn't poison later windows.
  struct RunningMark {
    explicit RunningMark(Simulator* s) { t_running_shard = s; }
    ~RunningMark() { t_running_shard = nullptr; }
  } mark(this);
  while (!stopped_) {
    if (!purge_stale_top()) break;
    if (key_time(keys_.front()) >= end) break;
    step();
  }
}

}  // namespace rocelab
