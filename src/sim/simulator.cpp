#include "src/sim/simulator.h"

#include <stdexcept>

namespace rocelab {

EventId Simulator::schedule_at(Time at, Callback cb) {
  if (at < now_) throw std::invalid_argument("schedule_at in the past");
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(cb)});
  return id;
}

void Simulator::cancel(EventId id) {
  if (id != kInvalidEventId) cancelled_.insert(id);
}

bool Simulator::step() {
  if (heap_.empty()) cancelled_.clear();  // purge stale cancellations
  while (!heap_.empty()) {
    // priority_queue::top() is const; the callback is moved out right before
    // pop, which is safe because no other accessor observes the entry.
    Entry& top = const_cast<Entry&>(heap_.top());
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      heap_.pop();
      continue;
    }
    now_ = top.at;
    Callback cb = std::move(top.cb);
    heap_.pop();
    ++executed_;
    cb();
    return true;
  }
  cancelled_.clear();
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_) {
    // Peek for the next live event without executing past the deadline.
    while (!heap_.empty()) {
      const Entry& top = heap_.top();
      if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        heap_.pop();
        continue;
      }
      break;
    }
    if (heap_.empty()) {
      cancelled_.clear();
      break;
    }
    if (heap_.top().at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace rocelab
