// The RoCEv2 NIC transport engine: queue pairs, verbs (SEND/WRITE/READ),
// PSN-sequenced reliable delivery with ACK/NAK, per-QP DCQCN rate control,
// and the DCQCN notification point (CNP generation on ECN marks). Loss
// recovery (go-back-0 / go-back-N / IRN-style selective repeat, §4.1 and
// §8.1) is delegated to the pluggable per-QP engine in src/nic/recovery.h.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include <map>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/net/packet.h"
#include "src/nic/config.h"
#include "src/nic/dcqcn.h"
#include "src/nic/recovery.h"
#include "src/nic/timely.h"
#include "src/sim/simulator.h"

namespace rocelab {

class Host;

/// Sender-side completion of a verb (SEND/WRITE acked end-to-end, READ
/// data fully arrived, or an atomic's original value returned).
struct RdmaCompletion {
  std::uint32_t qpn = 0;
  std::uint64_t msg_id = 0;
  std::int64_t bytes = 0;
  Time posted_at = 0;
  Time completed_at = 0;
  /// CAS/FAA only: the value the remote word held before the atomic
  /// executed. A CAS succeeded iff this equals the compare operand.
  std::uint64_t atomic_orig = 0;
};

/// Receiver-side arrival of a full message (SEND or WRITE).
struct RdmaRecv {
  std::uint32_t qpn = 0;
  std::uint64_t msg_id = 0;
  std::int64_t bytes = 0;
  Time sent_at = 0;   // when the first packet of the message was created
  Time received_at = 0;
};

/// Per-QP fault injection on the NIC receive path: the "which packet drops
/// matters" knob (Mittal et al., PAPERS.md) the link-level plane can't give
/// — packets for one target QPN are dropped, held back (reordered), or
/// ACK-duplicated before the transport sees them, while every other QP on
/// the NIC is untouched. Seeded; a constructed-but-disabled spec draws no
/// randomness, so installing one cannot perturb a deterministic run.
struct QpFaultSpec {
  bool enabled = true;
  double drop_rate = 0.0;     // drop incoming data segments
  double reorder_rate = 0.0;  // hold an incoming data segment for reorder_delay
  Time reorder_delay = microseconds(20);
  double dup_ack_rate = 0.0;  // deliver an incoming ACK/NAK a second time
  /// Deliver an incoming READ or atomic *request* a second time: the
  /// deterministic duplicate source the responder replay table is tested
  /// against (a re-executed duplicate corrupts application state).
  double dup_req_rate = 0.0;
  std::uint64_t seed = 1;
};

struct QpFaultStats {
  std::int64_t drops = 0;
  std::int64_t reorders = 0;
  std::int64_t dup_acks = 0;
  std::int64_t dup_reqs = 0;
};

struct RdmaNicStats {
  std::int64_t data_packets_sent = 0;
  std::int64_t data_packets_retx = 0;
  std::int64_t acks_sent = 0;
  std::int64_t naks_sent = 0;
  std::int64_t rnr_naks_sent = 0;
  std::int64_t rnr_naks_received = 0;
  std::int64_t cnps_sent = 0;
  std::int64_t cnps_received = 0;
  std::int64_t messages_completed = 0;
  std::int64_t bytes_completed = 0;     // sender goodput (acked)
  std::int64_t messages_received = 0;
  std::int64_t bytes_received = 0;      // receiver goodput (in-order delivered)
  std::int64_t out_of_order_drops = 0;
  std::int64_t timeouts = 0;
  std::int64_t qp_errors = 0;  // QPs that exhausted their retry budget
  std::int64_t injected_drops = 0;     // per-QP fault plane: data segments eaten
  std::int64_t injected_reorders = 0;  // data segments delivered late
  std::int64_t injected_dup_acks = 0;  // ACKs delivered twice
  std::int64_t injected_dup_reqs = 0;  // READ/atomic requests delivered twice
  /// §5.2 end-to-end integrity: packets whose ICRC verify failed (corruption
  /// escaped every link-level FCS check) and were dropped by the NIC.
  std::int64_t icrc_errors = 0;
  /// Ground truth with ICRC verification DISABLED: messages completed to the
  /// application (sender completion or receiver delivery) that contained a
  /// corrupt segment — the torn data the InvariantAuditor's kDataIntegrity
  /// check asserts can never happen with the verify on.
  std::int64_t corrupt_completions = 0;
  /// Selective-repeat engine counters (rdma/selrep/*); zero in go-back modes.
  RecoveryCounters selrep;
  /// Atomic-verb plane (rdma/atomic/*): CAS/FAA execution at the responder,
  /// requester-side completions, and the replay guard that answers duplicate
  /// atomic *and* READ requests from cached state instead of re-executing.
  struct AtomicStats {
    std::int64_t cas_executed = 0;   // CAS requests executed (first delivery)
    std::int64_t cas_failed = 0;     // of those, compare mismatched (no swap)
    std::int64_t faa_executed = 0;   // FAA requests executed (first delivery)
    std::int64_t completions = 0;    // requester-side atomic completions
    std::int64_t reissues = 0;       // 8xRTO re-issues of an unacked atomic
    std::int64_t acks_sent = 0;      // atomic ACKs sent (replayed ones included)
    std::int64_t dup_requests = 0;   // replay-table hits: atomic + READ dups
    std::int64_t replay_evictions = 0;  // bounded-table entries pushed out
  } atomic;
};

class RdmaNic {
 public:
  RdmaNic(Host& host, const HostConfig& cfg);
  ~RdmaNic();
  RdmaNic(const RdmaNic&) = delete;
  RdmaNic& operator=(const RdmaNic&) = delete;

  // --- verbs API -----------------------------------------------------------
  std::uint32_t create_qp(QpConfig cfg);
  void connect_qp(std::uint32_t qpn, Ipv4Addr peer_ip, std::uint32_t peer_qpn);
  [[nodiscard]] const QpConfig& qp_config(std::uint32_t qpn) const;

  void post_send(std::uint32_t qpn, std::int64_t bytes, std::uint64_t msg_id = 0);
  void post_write(std::uint32_t qpn, std::int64_t bytes, std::uint64_t msg_id = 0);
  void post_read(std::uint32_t qpn, std::int64_t bytes, std::uint64_t msg_id = 0);
  /// Atomic verbs: compare-and-swap / fetch-and-add on one 64-bit word of
  /// the peer NIC's memory table. Atomics fence behind every prior posted
  /// operation on the QP (IB ordering) and execute one at a time, in post
  /// order; the completion carries the word's original value (atomic_orig).
  /// Exactly-once execution under loss/duplication is the responder replay
  /// table's job — a duplicate request is answered from the cached result.
  void post_cas(std::uint32_t qpn, std::uint64_t addr, std::uint64_t compare,
                std::uint64_t swap, std::uint64_t msg_id = 0);
  void post_faa(std::uint32_t qpn, std::uint64_t addr, std::uint64_t add,
                std::uint64_t msg_id = 0);

  /// The responder-side memory table atomics execute against: a flat
  /// 64-bit-word store keyed by virtual address, per NIC (it survives QP
  /// resets — it is application state, not transport state).
  [[nodiscard]] std::uint64_t memory_read(std::uint64_t addr) const;
  void memory_write(std::uint64_t addr, std::uint64_t value);
  /// Post `count` receive WQEs (only meaningful with
  /// QpConfig::require_recv_wqes; each incoming SEND consumes one).
  void post_recv(std::uint32_t qpn, int count);
  [[nodiscard]] int recv_credits(std::uint32_t qpn) const { return qp(qpn).recv_credits; }

  using CompletionCb = std::function<void(const RdmaCompletion&)>;
  using RecvCb = std::function<void(const RdmaRecv&)>;
  void set_completion_cb(CompletionCb cb) { completion_cb_ = std::move(cb); }
  void set_recv_cb(RecvCb cb) { recv_cb_ = std::move(cb); }

  /// Fires when a QP exhausts QpConfig::retry_limit consecutive timeouts
  /// and enters the error state (it stops transmitting; pending work is
  /// frozen until reset_qp). Multiple observers may register — the RDMA CM
  /// uses one slot for automatic reconnection, tests another.
  using QpErrorCb = std::function<void(std::uint32_t qpn)>;
  void add_qp_error_cb(QpErrorCb cb) { error_cbs_.push_back(std::move(cb)); }
  [[nodiscard]] bool qp_errored(std::uint32_t qpn) const { return qp(qpn).error; }
  [[nodiscard]] bool qp_connected(std::uint32_t qpn) const { return qp(qpn).connected; }

  /// Return a QP to a fresh, unconnected state: timers cancelled, send and
  /// receive state cleared, error flag dropped. The application (or the CM)
  /// re-connects it — or abandons it — afterwards.
  void reset_qp(std::uint32_t qpn);

  /// Pending (posted but not completed) work on a QP, in bytes.
  [[nodiscard]] std::int64_t backlog_bytes(std::uint32_t qpn) const;
  [[nodiscard]] Bandwidth qp_rate(std::uint32_t qpn) const;
  [[nodiscard]] double qp_alpha(std::uint32_t qpn) const;

  [[nodiscard]] const RdmaNicStats& stats() const { return stats_; }

  // --- per-QP fault injection ------------------------------------------------
  /// Install (or replace) a fault injector targeting `qpn` on this NIC's
  /// receive path; the QPN need not exist yet. Install/remove through
  /// ChaosEngine::qp_fault to journal the campaign.
  void set_qp_fault(std::uint32_t qpn, const QpFaultSpec& spec);
  void clear_qp_fault(std::uint32_t qpn) { qp_faults_.erase(qpn); }
  [[nodiscard]] const QpFaultStats& qp_fault_stats(std::uint32_t qpn) const;

  /// The UDP source port a QP stamps on its packets — the ECMP identity of
  /// its flow, needed to trace the QP's path through the fabric.
  [[nodiscard]] std::uint16_t qp_sport(std::uint32_t qpn) const { return qp(qpn).udp_sport; }

  /// §5.2 end-to-end integrity check, on by default: a received packet whose
  /// payload was corrupted past the link-level FCS checks fails the ICRC
  /// verify and is dropped (data packets additionally NAK so transport
  /// recovery resends them; corrupted ACKs are simply discarded). Turning it
  /// off models a NIC without end-to-end protection: torn payloads complete
  /// to the application and are tallied in stats().corrupt_completions.
  void set_icrc_verify(bool on) { icrc_verify_ = on; }
  [[nodiscard]] bool icrc_verify() const { return icrc_verify_; }

  // --- wiring from Host ------------------------------------------------------
  void handle(Packet pkt);     // a RoCE packet cleared the rx pipeline
  void on_port_drain();        // tx queue drained below the cap: resume QPs

 private:
  struct SendWqe {
    enum class Kind { kSend, kWrite, kReadResponse };
    Kind kind = Kind::kSend;
    std::int64_t bytes = 0;
    std::uint64_t msg_id = 0;
    Time posted_at = 0;
  };
  struct InflightMsg {
    std::uint64_t first_psn = 0;
    std::uint64_t end_psn = 0;  // one past the last PSN
    SendWqe wqe;
  };
  struct Qp {
    std::uint32_t qpn = 0;
    QpConfig cfg;
    Ipv4Addr peer_ip{};
    std::uint32_t peer_qpn = 0;
    std::uint16_t udp_sport = 0;
    bool connected = false;

    // Sender state.
    std::deque<SendWqe> pending;      // posted, not yet started
    std::deque<InflightMsg> inflight; // started, not fully acked
    std::uint64_t next_new_psn = 0;   // first never-transmitted PSN
    std::uint64_t cursor_psn = 0;     // next PSN to put on the wire
    std::uint64_t una_psn = 0;        // cumulative acked
    std::unique_ptr<DcqcnRp> rate;
    Time next_tx_time = 0;
    EventId pacer_ev = kInvalidEventId;
    EventId retx_ev = kInvalidEventId;
    bool blocked_on_port = false;
    int consecutive_timeouts = 0;
    bool error = false;  // retry budget exhausted; QP is wedged until reset
    /// The pluggable loss-recovery engine (src/nic/recovery.h): restart
    /// semantics, feedback admission, SACK/OOO state, and timer policy for
    /// this QP's configured mode.
    std::unique_ptr<LossRecoveryEngine> engine;

    // Receiver state.
    std::uint64_t expected_psn = 0;
    bool nak_armed = true;
    std::int64_t rx_msg_bytes = 0;
    Time rx_msg_start = 0;
    /// True if any segment consumed into the in-flight receive message was
    /// corrupt (only reachable with ICRC verification off): the completion
    /// is then a torn one and counts into corrupt_completions.
    bool rx_taint = false;
    Time last_cnp_time = -kSecond;
    int recv_credits = 0;  // receive WQEs available (require_recv_wqes)

    // TIMELY state: (first unacked psn after probe, tx time) pairs.
    std::unique_ptr<TimelyRp> timely;
    std::deque<std::pair<std::uint64_t, Time>> rtt_probes;

    // --- requester-side request plane (READs and atomics) ------------------
    /// Every READ / atomic request this side issues gets the next value of
    /// this counter stamped into its BTH PSN (masked to 24 wire bits): the
    /// responder's replay key. Re-issues of the same request reuse the same
    /// req PSN, so the responder can tell "duplicate" from "new request".
    std::uint64_t next_req_psn = 0;

    /// Outstanding READ requests issued by this side, keyed by msg_id.
    struct PendingRead {
      std::int64_t bytes = 0;
      Time posted_at = 0;
      std::uint64_t req_psn = 0;
    };
    std::unordered_map<std::uint64_t, PendingRead> reads;
    /// The 8xRTO re-issue timer per outstanding READ: stored so completion
    /// and reset_qp can cancel it (an untracked timer could re-post on an
    /// errored-but-connected QP).
    std::unordered_map<std::uint64_t, EventId> read_retx_evs;

    /// Posted atomics, front = oldest. Only the front may be on the wire
    /// (`issued`), and only once pending/inflight/reads have drained — the
    /// IB fence: an atomic executes after every prior op on the QP.
    struct PendingAtomic {
      RoceOpcode op = RoceOpcode::kFetchAdd;  // kCompareSwap or kFetchAdd
      std::uint64_t addr = 0;
      std::uint64_t compare = 0;
      std::uint64_t swap_add = 0;
      std::uint64_t msg_id = 0;
      Time posted_at = 0;
      std::uint64_t req_psn = 0;
      bool issued = false;
    };
    std::deque<PendingAtomic> atomic_queue;
    EventId atomic_retx_ev = kInvalidEventId;

    // --- responder-side replay guard ---------------------------------------
    /// Bounded FIFO of recently executed non-idempotent requests (atomics
    /// and READs), keyed by the requester's req PSN. A duplicate atomic is
    /// answered by resending the cached original value; a duplicate READ is
    /// dropped (its response stream is already PSN-reliable). Linear scan:
    /// the table is small (QpConfig::replay_entries) and scanned only on
    /// request arrival.
    struct ReplayEntry {
      std::uint64_t req_psn = 0;
      bool atomic = false;
      std::uint64_t orig = 0;  // atomics: value returned by the execution
    };
    std::deque<ReplayEntry> replay;
  };

  struct QpFaultInjector {
    QpFaultSpec spec;
    Rng rng;
    QpFaultStats stats;
    explicit QpFaultInjector(const QpFaultSpec& s) : spec(s), rng(s.seed) {}
  };

  /// The LossRecoveryEngine::Sender adapter an engine calls back through
  /// (now, single-packet retransmit, in-flight message lookup).
  struct SenderOps;

  Qp& qp(std::uint32_t qpn);
  const Qp& qp(std::uint32_t qpn) const;
  void dispatch(Packet pkt);  // post-injection receive path
  void post_message(Qp& q, SendWqe wqe);
  void arm_pacer(Qp& q);
  void pacer_fire(std::uint32_t qpn);
  bool transmit_next(Qp& q);
  void arm_retx(Qp& q);
  void restart_retx(Qp& q);
  void on_retx_timeout(std::uint32_t qpn);
  void go_back(Qp& q, std::uint64_t psn);
  void advance_una(Qp& q, std::uint64_t msn);

  [[nodiscard]] Bandwidth current_rate(const Qp& q) const;
  Packet build_data_packet(Qp& q, const InflightMsg& msg, std::uint64_t psn, bool force_ack);
  void retransmit_one(Qp& q, std::uint64_t psn);
  void deliver_in_order(Qp& q, const RxSegment& seg);
  void handle_data(Qp& q, Packet& pkt);
  void handle_ack(Qp& q, const Packet& pkt);
  void handle_read_req(Qp& q, const Packet& pkt);
  void handle_atomic_req(Qp& q, const Packet& pkt);
  void handle_atomic_ack(Qp& q, const Packet& pkt);
  void handle_cnp(Qp& q);
  // Requester-side READ/atomic request plane.
  void issue_read_req(Qp& q, std::uint64_t msg_id, const Qp::PendingRead& pr);
  void arm_read_retx(Qp& q, std::uint64_t msg_id);
  void post_atomic(std::uint32_t qpn, Qp::PendingAtomic a);
  void try_issue_atomic(Qp& q);
  void issue_atomic_req(Qp& q, const Qp::PendingAtomic& a);
  void arm_atomic_retx(Qp& q);
  // Responder-side replay guard + atomic execution.
  [[nodiscard]] const Qp::ReplayEntry* replay_lookup(const Qp& q,
                                                     std::uint64_t req_psn) const;
  void replay_insert(Qp& q, Qp::ReplayEntry entry);
  void send_atomic_ack(Qp& q, const Packet& req, std::uint64_t orig);
  void maybe_send_cnp(Qp& q, const Packet& pkt);
  void send_ack(Qp& q, AethSyndrome syndrome);
  Packet make_roce_packet(const Qp& q, PacketKind kind);

  Host& host_;
  HostConfig cfg_;
  std::unordered_map<std::uint32_t, std::unique_ptr<Qp>> qps_;
  std::unordered_map<std::uint32_t, QpFaultInjector> qp_faults_;
  std::vector<std::uint32_t> blocked_qpns_;
  std::uint32_t next_qpn_ = 1;
  CompletionCb completion_cb_;
  RecvCb recv_cb_;
  std::vector<QpErrorCb> error_cbs_;
  RdmaNicStats stats_;
  bool icrc_verify_ = true;
  /// Responder memory table: the 64-bit words atomics execute against.
  /// Never iterated (lookups only), so the unordered layout cannot leak
  /// into simulation order.
  std::unordered_map<std::uint64_t, std::uint64_t> memory_;
};

/// Create and connect a QP pair between two hosts with the same config.
/// Returns {qpn on a, qpn on b}.
std::pair<std::uint32_t, std::uint32_t> connect_qp_pair(Host& a, Host& b, QpConfig cfg);

}  // namespace rocelab
