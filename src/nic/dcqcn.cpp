#include "src/nic/dcqcn.h"

#include <algorithm>

namespace rocelab {

DcqcnRp::DcqcnRp(Simulator& sim, DcqcnConfig cfg, Bandwidth line_rate)
    : sim_(sim), cfg_(cfg), line_rate_(line_rate), rc_(line_rate), rt_(line_rate) {}

DcqcnRp::~DcqcnRp() { disarm_timers(); }

void DcqcnRp::on_cnp() {
  ++cnps_;
  if (!cfg_.enabled) return;
  rt_ = rc_;
  rc_ = static_cast<Bandwidth>(static_cast<double>(rc_) * (1.0 - alpha_ / 2.0));
  rc_ = std::max(rc_, cfg_.min_rate);
  alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g;
  t_stage_ = 0;
  bc_stage_ = 0;
  byte_acc_ = 0;
  active_ = true;
  disarm_timers();
  arm_timers();
}

void DcqcnRp::on_bytes_sent(std::int64_t bytes) {
  if (!active_) return;
  byte_acc_ += bytes;
  while (byte_acc_ >= cfg_.byte_counter) {
    byte_acc_ -= cfg_.byte_counter;
    ++bc_stage_;
    increase_event();
    if (!active_) return;
  }
}

void DcqcnRp::increase_event() {
  if (t_stage_ < cfg_.fast_recovery_steps && bc_stage_ < cfg_.fast_recovery_steps) {
    // Fast recovery: converge halfway back to the target.
  } else if (t_stage_ >= cfg_.fast_recovery_steps && bc_stage_ >= cfg_.fast_recovery_steps) {
    rt_ = std::min<Bandwidth>(rt_ + cfg_.rhai, line_rate_);  // hyper increase
  } else {
    rt_ = std::min<Bandwidth>(rt_ + cfg_.rai, line_rate_);  // additive increase
  }
  rc_ = (rt_ + rc_) / 2;
  // (rt + rc) / 2 asymptotes just below the line rate under integer math;
  // snap within half an additive step and end recovery (stops the timers).
  if (rc_ >= line_rate_ - cfg_.rai / 2) {
    rc_ = line_rate_;
    rt_ = line_rate_;
    active_ = false;
    disarm_timers();
  }
}

void DcqcnRp::arm_timers() {
  alpha_ev_ = sim_.schedule_in(cfg_.alpha_timer, [this] { on_alpha_timer(); });
  inc_ev_ = sim_.schedule_in(cfg_.increase_timer, [this] { on_increase_timer(); });
}

void DcqcnRp::disarm_timers() {
  sim_.cancel(alpha_ev_);
  sim_.cancel(inc_ev_);
  alpha_ev_ = kInvalidEventId;
  inc_ev_ = kInvalidEventId;
}

void DcqcnRp::on_alpha_timer() {
  if (!active_) return;
  alpha_ *= (1.0 - cfg_.g);
  alpha_ev_ = sim_.schedule_in(cfg_.alpha_timer, [this] { on_alpha_timer(); });
}

void DcqcnRp::on_increase_timer() {
  if (!active_) return;
  ++t_stage_;
  increase_event();
  if (active_) {
    inc_ev_ = sim_.schedule_in(cfg_.increase_timer, [this] { on_increase_timer(); });
  }
}

}  // namespace rocelab
