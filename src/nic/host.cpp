#include "src/nic/host.h"

#include "src/common/log.h"
#include "src/monitor/metric_registry.h"

namespace rocelab {

namespace {
/// How often the storm-mode NIC refreshes its pause frames. A full XOFF
/// quantum at 40GbE lasts ~839us; refreshing well inside that keeps the
/// link continuously paused and emits the "thousands of pause frames per
/// second" of §6.2.
constexpr Time kStormPauseInterval = microseconds(400);
}  // namespace

Host::Host(Simulator& sim, std::string name, HostConfig cfg)
    : Node(sim, std::move(name)), cfg_(cfg), rng_(0x405e ^ id()) {
  auto& p = add_port();
  p.on_drain = [this] { rdma_->on_port_drain(); };
  if (cfg_.mtt.model_enabled) mtt_ = std::make_unique<MttCache>(cfg_.mtt);
  rdma_ = std::make_unique<RdmaNic>(*this, cfg_);
  {
    MetricRegistry& reg = sim.metrics();
    const std::string prefix = this->name() + "/host";
    reg.add(this, prefix + "/rx_queue_bytes", &rx_bytes_, MetricKind::kGauge);
    reg.add(this, prefix + "/watchdog_trips", &watchdog_trips_);
  }
  if (cfg_.watchdog.enabled) {
    this->sim().schedule_in(cfg_.watchdog.check_interval, [this] { watchdog_tick(); });
  }
}

Host::~Host() { sim().metrics().remove_owner(this); }

void Host::send_frame(Packet pkt) {
  if (dead_) return;
  pkt.eth.src = mac();
  if (!port(0).connected()) return;
  pkt.eth.dst = port(0).peer_mac();
  if (cfg_.vlan_id && !pxe_boot_) {
    // VLAN-based PFC deployment: carry the packet priority in the 802.1Q
    // PCP (Fig. 3a). A NIC in PXE boot has no VLAN config: untagged.
    pkt.eth.vlan = VlanTag{static_cast<std::uint8_t>(pkt.priority & 7), false, *cfg_.vlan_id};
  } else {
    pkt.eth.vlan.reset();
  }
  pkt.lossless = cfg_.lossless[static_cast<std::size_t>(pkt.priority & 7)];
  port(0).enqueue(std::move(pkt));
}

bool Host::tx_has_room(int priority) const {
  return port(0).queued_bytes(priority) < cfg_.tx_queue_cap;
}

void Host::handle_packet(PooledPacket pp, int in_port) {
  (void)in_port;
  if (dead_) return;
  if (!pp->eth.dst.is_broadcast() && pp->eth.dst != mac()) return;  // flooded copy
  if (storm_) return;  // §4.3: the receive pipeline is not handling packets

  pp->charge.reset();  // no switch accounting inside the host
  pp->mmu_in_port = -1;
  rx_bytes_ += pp->frame_bytes;
  rx_queue_.push_back(std::move(pp));
  update_rx_pause();
  if (!rx_processing_) process_next_rx();
}

Time Host::rx_processing_time(const Packet& pkt) {
  Time t = cfg_.rx_base_processing;
  if (mtt_ && (pkt.kind == PacketKind::kRoceData)) {
    // WQE/buffer translation: random page within the registered region
    // (§4.4). A miss stalls the pipeline for a DRAM round trip.
    const std::int64_t addr = rng_.uniform_int(0, cfg_.mtt.working_set - 1);
    if (!mtt_->access(addr)) t += cfg_.mtt.miss_penalty;
  }
  return t;
}

void Host::process_next_rx() {
  if (rx_queue_.empty() || storm_) {
    rx_processing_ = false;
    return;
  }
  rx_processing_ = true;
  const Time t = rx_processing_time(*rx_queue_.front());
  sim().schedule_in(t, [this] {
    if (rx_queue_.empty()) {  // flushed meanwhile
      rx_processing_ = false;
      return;
    }
    PooledPacket pp = std::move(rx_queue_.front());
    rx_queue_.pop_front();
    rx_bytes_ -= pp->frame_bytes;
    last_rx_processed_ = sim().now();
    update_rx_pause();
    finish_rx(std::move(*pp));
    process_next_rx();
  });
}

void Host::finish_rx(Packet pkt) { dispatch(std::move(pkt)); }

void Host::dispatch(Packet pkt) {
  switch (pkt.kind) {
    case PacketKind::kRoceData:
    case PacketKind::kRoceReadReq:
    case PacketKind::kRoceAtomicReq:
    case PacketKind::kRoceAck:
    case PacketKind::kCnp:
      rdma_->handle(std::move(pkt));
      break;
    case PacketKind::kTcp:
      if (tcp_handler_) tcp_handler_(std::move(pkt));
      break;
    case PacketKind::kRaw: {
      if (pkt.udp) {
        auto it = udp_handlers_.find(pkt.udp->dst_port);
        if (it != udp_handlers_.end()) {
          it->second(std::move(pkt));
          break;
        }
      }
      if (raw_handler_) raw_handler_(std::move(pkt));
      break;
    }
    case PacketKind::kPfcPause:
      break;  // handled at the Node layer
  }
}

// --- NIC PFC pause generation --------------------------------------------------

void Host::update_rx_pause() {
  if (!rx_pause_sent_ && rx_bytes_ >= cfg_.rx_xoff_bytes) {
    rx_pause_sent_ = true;
    send_rx_xoff();
  } else if (rx_pause_sent_ && rx_bytes_ <= cfg_.rx_xon_bytes) {
    rx_pause_sent_ = false;
    sim().cancel(rx_pause_refresh_);
    rx_pause_refresh_ = kInvalidEventId;
    for (int p = 0; p < kNumPriorities; ++p) {
      if (cfg_.lossless[static_cast<std::size_t>(p)]) send_pause(0, p, 0);
    }
  }
}

void Host::send_rx_xoff() {
  for (int p = 0; p < kNumPriorities; ++p) {
    if (cfg_.lossless[static_cast<std::size_t>(p)]) send_pause(0, p, 0xffff);
  }
  const Time refresh = 0xffff * port(0).quantum_time() / 2;
  rx_pause_refresh_ = sim().schedule_in(refresh, [this] {
    if (rx_pause_sent_) send_rx_xoff();
  });
}

// --- §4.3 storm fault and NIC watchdog -------------------------------------------

void Host::set_storm_mode(bool on) {
  if (storm_ == on) return;
  storm_ = on;
  if (on) {
    storm_tick();
  } else {
    sim().cancel(storm_ev_);
    storm_ev_ = kInvalidEventId;
    if (!rx_queue_.empty() && !rx_processing_) process_next_rx();
  }
}

void Host::storm_tick() {
  if (!storm_) return;
  for (int p = 0; p < kNumPriorities; ++p) {
    if (cfg_.lossless[static_cast<std::size_t>(p)]) send_pause(0, p, 0xffff);
  }
  storm_ev_ = sim().schedule_in(kStormPauseInterval, [this] { storm_tick(); });
}

void Host::watchdog_tick() {
  // §4.3 NIC-side watchdog: the NIC micro-controller detects that the
  // receive pipeline has been stopped for trigger_after while pause frames
  // are being generated, and permanently disables pause generation.
  if (allow_pause_tx()) {
    const Time now = sim().now();
    const bool pipeline_stopped =
        (storm_ || rx_bytes_ > 0) && now - last_rx_processed_ >= cfg_.watchdog.trigger_after;
    const bool generating_pauses =
        last_pause_tx() >= 0 && now - last_pause_tx() <= 2 * cfg_.watchdog.check_interval;
    if (pipeline_stopped && generating_pauses) {
      set_allow_pause_tx(false);  // never re-enabled: the NIC is wedged (§4.3)
      ++watchdog_trips_;
      ROCELAB_LOG_INFO("%s: NIC watchdog disabled pause generation", name().c_str());
    }
  }
  sim().schedule_in(cfg_.watchdog.check_interval, [this] { watchdog_tick(); });
}

}  // namespace rocelab
