// Host: a server with one NIC port. Models the NIC receive pipeline of
// §4.3/§4.4 (bounded rx buffer that generates PFC pause frames, MTT cache
// stalls, the storm fault, and the NIC-side watchdog), owns the RoCEv2
// transport engine, and provides the frame send path used by RDMA and TCP.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/link/node.h"
#include "src/nic/config.h"
#include "src/nic/mtt.h"
#include "src/nic/rdma_nic.h"

namespace rocelab {

class Host : public Node {
 public:
  Host(Simulator& sim, std::string name, HostConfig cfg = {});
  ~Host() override;

  // --- identity --------------------------------------------------------------
  void set_ip(Ipv4Addr ip) { ip_ = ip; }
  [[nodiscard]] Ipv4Addr ip() const { return ip_; }
  [[nodiscard]] MacAddr mac() const { return port_mac(0); }

  [[nodiscard]] RdmaNic& rdma() { return *rdma_; }
  [[nodiscard]] const HostConfig& config() const { return cfg_; }
  HostConfig& mutable_config() { return cfg_; }

  /// Other protocol engines (TCP stack, raw apps) register here.
  using PacketHandler = std::function<void(Packet)>;
  void set_tcp_handler(PacketHandler h) { tcp_handler_ = std::move(h); }
  void set_raw_handler(PacketHandler h) { raw_handler_ = std::move(h); }
  /// Raw (UDP) datagrams to this destination port go to `h` instead of the
  /// generic raw handler — lets services (e.g. the RDMA connection manager)
  /// coexist with raw apps.
  void register_udp_handler(std::uint16_t port, PacketHandler h) {
    udp_handlers_[port] = std::move(h);
  }

  // --- frame send path ---------------------------------------------------------
  /// Fill in L2 (src = our MAC, dst = gateway) and transmit via port 0.
  /// pkt.ip/priority must be set by the caller. Honors dead mode.
  void send_frame(Packet pkt);
  /// True if the egress queue for `priority` is under the tx cap; QP pacers
  /// block on this and resume via the port's drain callback.
  [[nodiscard]] bool tx_has_room(int priority) const;
  /// Sequential IP ID, as the paper's NIC hardware assigns (§4.1).
  std::uint16_t next_ip_id() { return ip_id_++; }

  // --- fault injection (§4 experiments) ---------------------------------------
  /// Dead server: receives nothing, sends nothing (its MAC table entry at
  /// the ToR then ages out — the §4.2 deadlock ingredient).
  void set_dead(bool dead) { dead_ = dead; }
  [[nodiscard]] bool dead() const { return dead_; }
  /// §4.3 storm bug: the receive pipeline stops and the NIC emits pause
  /// frames continuously.
  void set_storm_mode(bool on);
  [[nodiscard]] bool storm_mode() const { return storm_; }
  /// §3: a server going through PXE boot has no VLAN configuration on its
  /// NIC — its frames go out untagged regardless of HostConfig::vlan_id.
  void set_pxe_boot(bool on) { pxe_boot_ = on; }
  [[nodiscard]] bool pxe_boot() const { return pxe_boot_; }

  // --- observability -----------------------------------------------------------
  [[nodiscard]] std::int64_t rx_queue_bytes() const { return rx_bytes_; }
  [[nodiscard]] const MttCache* mtt() const { return mtt_ ? mtt_.get() : nullptr; }
  [[nodiscard]] bool rx_pause_asserted() const { return rx_pause_sent_; }
  [[nodiscard]] std::int64_t watchdog_trips() const { return watchdog_trips_; }
  Rng& rng() { return rng_; }

 protected:
  void handle_packet(PooledPacket pp, int in_port) override;

 private:
  void process_next_rx();
  void finish_rx(Packet pkt);
  void dispatch(Packet pkt);
  [[nodiscard]] Time rx_processing_time(const Packet& pkt);
  void update_rx_pause();
  void send_rx_xoff();
  void storm_tick();
  void watchdog_tick();

  HostConfig cfg_;
  Ipv4Addr ip_{};
  std::unique_ptr<RdmaNic> rdma_;
  std::unique_ptr<MttCache> mtt_;
  PacketHandler tcp_handler_;
  PacketHandler raw_handler_;
  std::unordered_map<std::uint16_t, PacketHandler> udp_handlers_;
  Rng rng_;
  std::uint16_t ip_id_ = 0;

  bool dead_ = false;
  bool storm_ = false;
  bool pxe_boot_ = false;
  EventId storm_ev_ = kInvalidEventId;

  std::deque<PooledPacket> rx_queue_;
  std::int64_t rx_bytes_ = 0;
  bool rx_processing_ = false;
  bool rx_pause_sent_ = false;
  EventId rx_pause_refresh_ = kInvalidEventId;
  Time last_rx_processed_ = 0;
  std::int64_t watchdog_trips_ = 0;
};

}  // namespace rocelab
