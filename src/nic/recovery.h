// The pluggable per-QP loss-recovery engine (§4.1 and the §8.1 IRN
// extension). RdmaNic owns PSN bookkeeping, packet construction, and the
// wire; everything that differs between recovery modes — restart semantics,
// feedback admission, out-of-order buffering, SACK state, retransmission
// timer policy — lives behind this interface:
//
//  - kGoBack0: the vendor's original whole-message restart with the
//    restart-barrier/una-rewind semantics that reproduce the §4.1 livelock.
//  - kGoBackN: the paper's fix — restart from the first dropped packet.
//  - kSelectiveRepeat: IRN-style (Mittal et al., PAPERS.md) — the receiver
//    buffers out-of-order packets up to a BDP cap and advertises them in a
//    SACK bitmap; the sender retransmits only the holes, paced by a
//    per-packet RTT-adaptive RTO, under a BDP-bounded window instead of PFC.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "src/common/units.h"
#include "src/net/headers.h"
#include "src/nic/config.h"

namespace rocelab {

/// Selective-repeat counters, surfaced per NIC in the metric registry as
/// rdma/selrep/{sacked,retx,ooo_buffered}. Zero in the go-back modes.
struct RecoveryCounters {
  std::int64_t sacked = 0;        // PSNs acknowledged out of order via SACK
  std::int64_t retx = 0;          // engine-requested selective retransmissions
  std::int64_t ooo_buffered = 0;  // segments accepted into the OOO buffer
};

/// A receive-side segment held while earlier holes fill (selective repeat),
/// and the unit deliver_in_order consumes.
struct RxSegment {
  std::int32_t payload = 0;
  RoceOpcode opcode = RoceOpcode::kSendOnly;
  std::uint64_t msg_id = 0;
  Time created_at = 0;
  bool corrupt = false;
};

/// First or Only segment: the packet that begins a message on the wire.
[[nodiscard]] bool is_roce_message_start(RoceOpcode op);

[[nodiscard]] const char* to_string(LossRecovery mode);
/// Accepts "goback0" / "gobackn" / "selrep" (plus a few aliases);
/// nullopt for anything else.
[[nodiscard]] std::optional<LossRecovery> parse_loss_recovery(std::string_view name);

class LossRecoveryEngine {
 public:
  /// The narrow view of the owning NIC an engine may call back into while
  /// planning a restart or servicing a timeout.
  class Sender {
   public:
    virtual ~Sender() = default;
    [[nodiscard]] virtual Time now() const = 0;
    /// Retransmit exactly one in-flight PSN (no-op if it is already acked
    /// or no longer in flight).
    virtual void retransmit(std::uint64_t psn) = 0;
    /// First PSN of the in-flight message containing `psn`, if any.
    [[nodiscard]] virtual std::optional<std::uint64_t> message_start(
        std::uint64_t psn) const = 0;
  };

  /// Where a NAK/RNR-driven restart puts the wire cursor.
  struct Restart {
    std::uint64_t cursor = 0;
    bool rewind_una = false;  // go-back-0: una floors back to the cursor
  };

  struct NakAction {
    bool retransmit_single = false;  // selective repeat: resend only the hole
  };

  static std::unique_ptr<LossRecoveryEngine> make(const QpConfig& cfg,
                                                  RecoveryCounters* counters);

  virtual ~LossRecoveryEngine() = default;
  [[nodiscard]] virtual LossRecovery mode() const = 0;

  /// Return the engine to fresh-QP state (reset_qp).
  virtual void reset() {}

  // --- sender side ---------------------------------------------------------

  /// A data segment went on the wire (new or retransmitted).
  virtual void on_tx_segment(std::uint64_t /*psn*/, bool /*is_retx*/, Time /*now*/) {}

  /// May this ACK/NAK be processed? go-back-0 voids feedback generated
  /// before the last whole-message restart (the restart barrier).
  [[nodiscard]] virtual bool admit_feedback(Time /*created_at*/) const { return true; }

  /// A (non-NAK-specific) ACK arrived: cumulative msn plus an optional SACK
  /// bitmap (bit i => PSN msn+1+i received out of order).
  virtual void on_ack(std::uint64_t /*msn*/, const std::optional<RoceSackExt>& /*sack*/,
                      Time /*now*/) {}

  /// A sequence-error NAK arrived for `msn` (the receiver's hole).
  virtual NakAction on_nak(std::uint64_t /*msn*/) { return {}; }

  /// Plan a restart at `psn` (NAK or timeout driven). go-back-0 rewinds to
  /// the start of the containing message and stamps the restart barrier.
  [[nodiscard]] virtual Restart plan_restart(std::uint64_t psn, Sender& /*nic*/) {
    return {psn, false};
  }

  /// The retransmission timer fired with [una, next_new) outstanding.
  /// Returns true if the engine handled retransmission itself (selective
  /// repeat resends expired holes); false lets the NIC run go_back(una).
  virtual bool on_timeout(std::uint64_t /*una*/, std::uint64_t /*next_new*/,
                          Sender& /*nic*/) {
    return false;
  }

  /// PSN already acknowledged out of order — skip it on cursor walks.
  [[nodiscard]] virtual bool is_sacked(std::uint64_t /*psn*/) const { return false; }

  /// May the sender put NEW data on the wire? Selective repeat bounds
  /// in-flight data by one BDP (IRN's replacement for PFC backpressure).
  [[nodiscard]] virtual bool window_open(std::uint64_t /*cursor*/,
                                         std::uint64_t /*una*/) const {
    return true;
  }

  /// ACK progress may reopen a BDP-closed window: should the NIC re-arm the
  /// pacer on every admitted ACK?
  [[nodiscard]] virtual bool reopen_window_on_ack() const { return false; }

  /// Base retransmission timeout. Selective repeat adapts it to the path
  /// (SRTT from ACK timestamps); the go-back modes keep the configured one.
  [[nodiscard]] virtual Time rto(Time configured) const { return configured; }

  // --- receiver side -------------------------------------------------------

  /// go-back-0 peers restart whole messages: a message-start segment below
  /// the cumulative high-water mark means the sender abandoned the pass and
  /// the receiver must rewind expected_psn to take the restarted stream.
  [[nodiscard]] virtual bool retake_message_start(std::uint64_t /*psn*/,
                                                  std::uint64_t /*expected*/,
                                                  RoceOpcode /*op*/) const {
    return false;
  }

  /// A data packet failed the end-to-end ICRC verify and is being dropped
  /// exactly like a loss (§5.2). Returns whether to emit a sequence-error
  /// NAK now; `nak_armed` is the NIC's once-per-episode latch (§4.1).
  [[nodiscard]] virtual bool on_icrc_drop(bool nak_armed) const { return nak_armed; }

  /// Offer an out-of-order segment for buffering. Returns true if buffered;
  /// false means the NIC counts it as an out-of-order drop (go-back modes
  /// always drop; selective repeat drops only past the BDP cap).
  virtual bool buffer_out_of_order(std::uint64_t /*psn*/, const RxSegment& /*seg*/) {
    return false;
  }

  /// Pop the buffered segment at `psn` if present (the in-order drain loop).
  virtual bool pop_buffered(std::uint64_t /*psn*/, RxSegment* /*out*/) { return false; }

  [[nodiscard]] virtual bool has_buffered() const { return false; }

  /// Does the receiver ACK solicited out-of-order arrivals to keep the
  /// sender's window fresh (selective repeat)?
  [[nodiscard]] virtual bool acks_out_of_order() const { return false; }

  /// SACK bitmap to attach to an outgoing ACK/NAK: bit i set means PSN
  /// expected+1+i is buffered. nullopt = mode does not speak SACK.
  [[nodiscard]] virtual std::optional<std::uint64_t> sack_bitmap(
      std::uint64_t /*expected*/) const {
    return std::nullopt;
  }

 protected:
  explicit LossRecoveryEngine(RecoveryCounters* counters) : counters_(counters) {}
  RecoveryCounters* counters_;  // owned by the NIC; shared across its QPs
};

}  // namespace rocelab
