// NIC / host configuration: the server-side knobs of §5.1 — RoCEv2
// enablement, PFC class setup, DCQCN parameters, loss recovery mode
// (go-back-0 vs the paper's go-back-N fix), and the models behind the
// slow-receiver symptom (MTT cache) and PFC storm watchdog.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "src/common/units.h"
#include "src/link/port.h"

namespace rocelab {

/// DCQCN reaction-point / notification-point parameters (defaults follow
/// the DCQCN paper the deployment uses for congestion control, §2).
struct DcqcnConfig {
  bool enabled = true;
  double g = 1.0 / 256;                    // EWMA gain for alpha
  Time alpha_timer = microseconds(55);     // alpha decay period without CNPs
  Time increase_timer = microseconds(55);  // rate-increase timer period T
  std::int64_t byte_counter = 10 * kMiB;   // rate-increase byte counter B
  int fast_recovery_steps = 5;             // F
  Bandwidth rai = mbps(40);                // additive increase step
  Bandwidth rhai = mbps(200);              // hyper increase step
  Bandwidth min_rate = mbps(40);           // rate floor (DCQCN's RMIN)
  Time cnp_interval = microseconds(50);    // NP: at most one CNP per QP per interval
};

/// How the RDMA transport recovers from packet loss (§4.1).
enum class LossRecovery {
  kGoBack0,  // vendor's original: restart the message from packet 0 (livelock)
  kGoBackN,  // the paper's fix: restart from the first dropped packet
  /// §8.1 extension: the receiver buffers out-of-order packets and the
  /// sender retransmits only the missing ones (the "more advanced
  /// transport" the paper anticipates from programmable hardware).
  kSelectiveRepeat,
};

/// Which congestion-control algorithm drives the per-QP rate (§2: the
/// deployment uses DCQCN; the paper argues its lessons apply to TIMELY).
enum class CcAlgorithm {
  kDcqcn,   // ECN-marked -> CNP -> rate cut (the deployment's choice)
  kTimely,  // RTT-gradient based, no switch support needed
};

/// TIMELY rate controller parameters (RTT-gradient congestion control).
struct TimelyConfig {
  Time t_low = microseconds(40);    // below: additive increase, ignore gradient
  Time t_high = microseconds(400);  // above: multiplicative decrease
  Time min_rtt = microseconds(10);  // gradient normalization
  double ewma_gain = 0.3;           // RTT-difference EWMA weight
  double beta = 0.8;                // decrease aggressiveness
  Bandwidth rai = mbps(50);         // additive step
  int hai_threshold = 5;            // consecutive low-RTT steps before HAI
  Bandwidth min_rate = mbps(40);
};

/// NIC Memory Translation Table cache (§4.4). The NIC caches `entries`
/// page translations; a miss stalls the receive pipeline for
/// `miss_penalty` while the entry is fetched from host DRAM.
struct MttConfig {
  bool model_enabled = false;
  int entries = 2048;
  std::int64_t page_bytes = 4 * kKiB;        // the fix uses 2MB pages
  std::int64_t working_set = 64 * kMiB;      // registered memory touched by WQEs
  Time miss_penalty = microseconds(1);       // host DRAM round trip
};

struct QpConfig {
  int priority = 3;                 // traffic class for data/ACK (lossless)
  std::uint8_t dscp = 3;            // DSCP carried (== priority by default)
  std::int32_t mtu_payload = 1024;  // per-packet payload (1086B frames, Fig. 7)
  LossRecovery recovery = LossRecovery::kGoBackN;
  Time retx_timeout = microseconds(500);
  /// Consecutive retransmission timeouts before the QP transitions to the
  /// error state and fires the NIC's qp-error callback (the IB "retry
  /// exhausted" completion). 0 = retry forever (legacy behaviour; most
  /// experiments want the fabric, not the transport, to give up).
  int retry_limit = 0;
  int ack_every = 16;               // request an ACK at least every N segments
  bool dcqcn = true;                // congestion control enabled at all?
  CcAlgorithm cc = CcAlgorithm::kDcqcn;  // which controller when enabled
  TimelyConfig timely;
  /// When true, incoming SENDs consume receive WQEs (post_recv); a SEND
  /// arriving with none posted draws an RNR NAK and a sender back-off, as
  /// in the InfiniBand verbs contract. Off by default: most simulation
  /// workloads treat receive buffering as unlimited.
  bool require_recv_wqes = false;
  Time rnr_delay = microseconds(100);  // sender back-off after an RNR NAK
  /// kSelectiveRepeat only: the BDP bound (bytes) IRN uses in place of PFC
  /// backpressure. Caps both the sender's unacknowledged in-flight window
  /// and the receiver's out-of-order buffer, in packets of mtu_payload:
  /// enough to keep the pipe full at the fabric's bandwidth-delay product,
  /// small enough that a lossy fabric cannot buffer-bloat the receiver.
  std::int64_t selrep_bdp_bytes = 512 * kKiB;
  /// Responder replay-table capacity (FIFO entries, per QP): how many
  /// recently executed non-idempotent requests (atomics and READs) the
  /// responder remembers so a duplicate can be answered from the cached
  /// result instead of re-executed. Must cover the requester's outstanding
  /// request window; beyond that, older entries are evicted (counted under
  /// rdma/atomic/replay_evictions) and a very late duplicate would execute
  /// again — the same bound real NICs place on this table.
  int replay_entries = 64;
};

struct NicWatchdogConfig {
  bool enabled = false;
  Time check_interval = milliseconds(10);
  /// §4.3: disable pause generation once the receive pipeline has been
  /// stopped this long while pauses are being generated (default 100ms).
  Time trigger_after = milliseconds(100);
};

struct HostConfig {
  std::array<bool, kNumPriorities> lossless{};  // classes the NIC pauses for
  std::int64_t rx_xoff_bytes = 96 * kKiB;       // NIC rx buffer XOFF threshold
  std::int64_t rx_xon_bytes = 64 * kKiB;
  /// Base per-packet receive processing time; must beat line rate or the
  /// NIC itself becomes the bottleneck.
  Time rx_base_processing = nanoseconds(100);
  /// Cap on bytes the NIC keeps queued in its egress port per priority
  /// (backpressure from the port to the QP schedulers).
  std::int64_t tx_queue_cap = 32 * kKiB;
  std::uint8_t cnp_dscp = 6;  // CNPs ride a (lossy) high-priority class
  /// VLAN-based PFC deployments (§3): the NIC tags every frame with this
  /// VLAN (PCP set per packet from its priority). Unset = untagged (DSCP
  /// deployments, or a NIC in PXE boot with no VLAN configuration yet).
  std::optional<std::uint16_t> vlan_id;
  MttConfig mtt;
  DcqcnConfig dcqcn;
  NicWatchdogConfig watchdog;

  HostConfig() {
    lossless[3] = true;  // bulk RDMA class
    lossless[4] = true;  // real-time RDMA class
  }
};

}  // namespace rocelab
