// TIMELY: RTT-gradient congestion control (the paper §2: "We believe the
// lessons we have learned in this paper apply to the networks using TIMELY
// as well"). Rate updates per RTT sample: additive increase below T_low,
// multiplicative decrease above T_high, gradient-proportional reaction in
// between, with hyperactive increase after repeated low-RTT epochs.
#pragma once

#include "src/nic/config.h"

namespace rocelab {

class TimelyRp {
 public:
  TimelyRp(TimelyConfig cfg, Bandwidth line_rate)
      : cfg_(cfg), line_rate_(line_rate), rate_(line_rate) {}

  [[nodiscard]] Bandwidth rate() const { return rate_; }
  [[nodiscard]] std::int64_t samples() const { return samples_; }

  void on_rtt_sample(Time rtt);

 private:
  void clamp();

  TimelyConfig cfg_;
  Bandwidth line_rate_;
  Bandwidth rate_;
  Time prev_rtt_ = -1;
  double rtt_diff_ = 0.0;  // EWMA of consecutive RTT differences (ps)
  int low_rtt_streak_ = 0;
  std::int64_t samples_ = 0;
};

}  // namespace rocelab
