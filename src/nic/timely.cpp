#include "src/nic/timely.h"

#include <algorithm>

namespace rocelab {

void TimelyRp::clamp() {
  rate_ = std::clamp(rate_, cfg_.min_rate, line_rate_);
}

void TimelyRp::on_rtt_sample(Time rtt) {
  ++samples_;
  if (prev_rtt_ < 0) {
    prev_rtt_ = rtt;
    return;
  }
  const double new_diff = static_cast<double>(rtt - prev_rtt_);
  prev_rtt_ = rtt;
  rtt_diff_ = (1.0 - cfg_.ewma_gain) * rtt_diff_ + cfg_.ewma_gain * new_diff;
  const double gradient = rtt_diff_ / static_cast<double>(cfg_.min_rtt);

  if (rtt < cfg_.t_low) {
    // Far below target: probe aggressively; hyperactive increase after a
    // streak of uncongested epochs.
    ++low_rtt_streak_;
    const int n = low_rtt_streak_ >= cfg_.hai_threshold ? 5 : 1;
    rate_ += n * cfg_.rai;
    clamp();
    return;
  }
  if (rtt > cfg_.t_high) {
    low_rtt_streak_ = 0;
    const double cut =
        1.0 - cfg_.beta * (1.0 - static_cast<double>(cfg_.t_high) / static_cast<double>(rtt));
    rate_ = static_cast<Bandwidth>(static_cast<double>(rate_) * cut);
    clamp();
    return;
  }
  if (gradient <= 0) {
    ++low_rtt_streak_;
    const int n = low_rtt_streak_ >= cfg_.hai_threshold ? 5 : 1;
    rate_ += n * cfg_.rai;
  } else {
    low_rtt_streak_ = 0;
    rate_ = static_cast<Bandwidth>(static_cast<double>(rate_) *
                                   (1.0 - cfg_.beta * std::min(gradient, 1.0)));
  }
  clamp();
}

}  // namespace rocelab
