// DCQCN reaction point: per-QP rate control driven by CNPs (§2 "Need for
// congestion control"). Multiplicative decrease with EWMA alpha on CNP;
// fast recovery, additive increase, and hyper increase phases driven by a
// timer and a byte counter.
#pragma once

#include "src/nic/config.h"
#include "src/sim/simulator.h"

namespace rocelab {

class DcqcnRp {
 public:
  DcqcnRp(Simulator& sim, DcqcnConfig cfg, Bandwidth line_rate);
  ~DcqcnRp();
  DcqcnRp(const DcqcnRp&) = delete;
  DcqcnRp& operator=(const DcqcnRp&) = delete;

  /// Current sending rate for the QP's pacer.
  [[nodiscard]] Bandwidth rate() const { return rc_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] bool in_recovery() const { return active_; }
  [[nodiscard]] std::int64_t cnps_received() const { return cnps_; }

  /// A CNP arrived for this QP: cut the rate, update alpha, reset the
  /// increase state machine.
  void on_cnp();
  /// Data transmitted: advances the byte counter of the increase machine.
  void on_bytes_sent(std::int64_t bytes);

 private:
  void increase_event();
  void arm_timers();
  void disarm_timers();
  void on_alpha_timer();
  void on_increase_timer();

  Simulator& sim_;
  DcqcnConfig cfg_;
  Bandwidth line_rate_;
  Bandwidth rc_;          // current rate
  Bandwidth rt_;          // target rate
  double alpha_ = 1.0;
  bool active_ = false;   // true between a CNP and full recovery to line rate
  int t_stage_ = 0;
  int bc_stage_ = 0;
  std::int64_t byte_acc_ = 0;
  std::int64_t cnps_ = 0;
  EventId alpha_ev_ = kInvalidEventId;
  EventId inc_ev_ = kInvalidEventId;
};

}  // namespace rocelab
