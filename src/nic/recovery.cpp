#include "src/nic/recovery.h"

#include <algorithm>
#include <map>
#include <set>

namespace rocelab {

bool is_roce_message_start(RoceOpcode op) {
  return op == RoceOpcode::kSendFirst || op == RoceOpcode::kWriteFirst ||
         op == RoceOpcode::kReadResponseFirst || op == RoceOpcode::kSendOnly ||
         op == RoceOpcode::kWriteOnly || op == RoceOpcode::kReadResponseOnly;
}

const char* to_string(LossRecovery mode) {
  switch (mode) {
    case LossRecovery::kGoBack0: return "goback0";
    case LossRecovery::kGoBackN: return "gobackn";
    case LossRecovery::kSelectiveRepeat: return "selrep";
  }
  return "?";
}

std::optional<LossRecovery> parse_loss_recovery(std::string_view name) {
  if (name == "goback0" || name == "gb0") return LossRecovery::kGoBack0;
  if (name == "gobackn" || name == "gbn") return LossRecovery::kGoBackN;
  if (name == "selrep" || name == "selective_repeat" || name == "irn") {
    return LossRecovery::kSelectiveRepeat;
  }
  return std::nullopt;
}

namespace {

/// The paper's §4.1 fix: restart from the first dropped packet. All the
/// shared machinery in RdmaNic (cumulative una, NAK-once-per-episode,
/// timeout go-back) IS go-back-N; the engine only has to not interfere.
class GoBackNEngine final : public LossRecoveryEngine {
 public:
  explicit GoBackNEngine(RecoveryCounters* counters) : LossRecoveryEngine(counters) {}
  [[nodiscard]] LossRecovery mode() const override { return LossRecovery::kGoBackN; }
};

/// The vendor's original whole-message restart, with the three couplings
/// that make the §4.1 livelock reproduce: cursor AND una rewind to the
/// containing message's first PSN, and a restart barrier voids feedback
/// generated before the restart (same-priority RoCE paths deliver FIFO, so
/// no legitimate post-restart ACK can predate it).
class GoBack0Engine final : public LossRecoveryEngine {
 public:
  explicit GoBack0Engine(RecoveryCounters* counters) : LossRecoveryEngine(counters) {}
  [[nodiscard]] LossRecovery mode() const override { return LossRecovery::kGoBack0; }

  void reset() override { restart_barrier_ = -1; }

  [[nodiscard]] bool admit_feedback(Time created_at) const override {
    return created_at >= restart_barrier_;
  }

  [[nodiscard]] Restart plan_restart(std::uint64_t psn, Sender& nic) override {
    if (const auto first = nic.message_start(psn)) {
      // A whole-message restart abandons the pass, cumulative-ack state
      // included: una must come back to the message start, and feedback
      // generated before this instant is void. Without both, the next
      // cumulative ACK would advance una past first_psn and yank the
      // cursor forward — converting go-back-0 into go-back-N.
      restart_barrier_ = nic.now();
      return {*first, true};
    }
    return {psn, false};
  }

  [[nodiscard]] bool retake_message_start(std::uint64_t psn, std::uint64_t expected,
                                          RoceOpcode op) const override {
    return psn < expected && is_roce_message_start(op);
  }

 private:
  /// Time of the last whole-message restart; ACK/NAK packets created
  /// before this describe the aborted pass.
  Time restart_barrier_ = -1;
};

/// IRN-style selective repeat (Mittal et al.): the receiver buffers
/// out-of-order segments up to one BDP and advertises them in a SACK
/// bitmap; the sender tracks per-packet delivery, retransmits only holes
/// (NAK-driven immediately, timer-driven once a hole's RTT-adaptive RTO
/// expires), and bounds in-flight data by the same BDP instead of relying
/// on PFC backpressure.
class SelectiveRepeatEngine final : public LossRecoveryEngine {
 public:
  SelectiveRepeatEngine(const QpConfig& cfg, RecoveryCounters* counters)
      : LossRecoveryEngine(counters),
        window_pkts_(std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(cfg.selrep_bdp_bytes) /
                   static_cast<std::uint64_t>(std::max<std::int32_t>(1, cfg.mtu_payload)))),
        configured_rto_(cfg.retx_timeout),
        ack_every_(std::max(1, cfg.ack_every)) {
    reset();
  }

  [[nodiscard]] LossRecovery mode() const override {
    return LossRecovery::kSelectiveRepeat;
  }

  void reset() override {
    sacked_.clear();
    tx_times_.clear();
    rx_ooo_.clear();
    srtt_ = -1;
    rttvar_ = 0;
    rto_ = configured_rto_;
  }

  // --- sender side ---------------------------------------------------------

  void on_tx_segment(std::uint64_t psn, bool is_retx, Time now) override {
    // Karn's rule: once a PSN has been retransmitted, an ACK covering it is
    // ambiguous and must not produce an RTT sample.
    auto [it, inserted] = tx_times_.insert_or_assign(psn, TxRecord{now, is_retx});
    if (!inserted) it->second.retx = true;
  }

  void on_ack(std::uint64_t msn, const std::optional<RoceSackExt>& sack,
              Time now) override {
    // SRTT from the newest PSN this cumulative ACK covers (msn - 1).
    if (msn > 0) {
      const auto it = tx_times_.find(msn - 1);
      if (it != tx_times_.end() && !it->second.retx) {
        observe_rtt(now - it->second.at);
      }
    }
    tx_times_.erase(tx_times_.begin(), tx_times_.lower_bound(msn));
    sacked_.erase(sacked_.begin(), sacked_.lower_bound(msn));
    if (!sack) return;
    for (int i = 0; i < 64; ++i) {
      if ((sack->bitmap >> i) & 1) {
        const std::uint64_t psn = msn + 1 + static_cast<std::uint64_t>(i);
        if (sacked_.insert(psn).second) {
          ++counters_->sacked;
          tx_times_.erase(psn);  // delivered; no hole timer needed
        }
      }
    }
  }

  NakAction on_nak(std::uint64_t /*msn*/) override {
    ++counters_->retx;
    return {.retransmit_single = true};
  }

  bool on_timeout(std::uint64_t una, std::uint64_t next_new, Sender& nic) override {
    // Per-packet RTO: resend the un-SACKed holes whose last transmission
    // has aged past the adaptive RTO. Cap the burst at one ack_every batch
    // so a wide loss episode drains over successive timer firings instead
    // of dumping a whole window into the egress queue at one instant.
    const Time now = nic.now();
    const std::uint64_t end = std::min(next_new, una + window_pkts_);
    int fired = 0;
    for (std::uint64_t psn = una; psn < end && fired < ack_every_; ++psn) {
      if (sacked_.count(psn) != 0) continue;
      const auto it = tx_times_.find(psn);
      if (it != tx_times_.end() && now - it->second.at < rto_) continue;
      nic.retransmit(psn);
      ++counters_->retx;
      ++fired;
    }
    if (fired == 0) {
      // Every hole is younger than the RTO (the timer includes backoff and
      // self-clocking slack on top). Resend the oldest anyway: silence this
      // long means the ACK stream itself is gone.
      nic.retransmit(una);
      ++counters_->retx;
    }
    return true;
  }

  [[nodiscard]] bool is_sacked(std::uint64_t psn) const override {
    return sacked_.count(psn) != 0;
  }

  [[nodiscard]] bool window_open(std::uint64_t cursor, std::uint64_t una) const override {
    return cursor - una < window_pkts_;
  }

  [[nodiscard]] bool reopen_window_on_ack() const override { return true; }

  [[nodiscard]] Time rto(Time /*configured*/) const override { return rto_; }

  // --- receiver side -------------------------------------------------------

  bool buffer_out_of_order(std::uint64_t psn, const RxSegment& seg) override {
    if (rx_ooo_.size() >= window_pkts_) return false;  // BDP cap: drop instead
    if (rx_ooo_.emplace(psn, seg).second) ++counters_->ooo_buffered;
    return true;
  }

  bool pop_buffered(std::uint64_t psn, RxSegment* out) override {
    const auto it = rx_ooo_.find(psn);
    if (it == rx_ooo_.end()) return false;
    *out = it->second;
    rx_ooo_.erase(it);
    return true;
  }

  [[nodiscard]] bool has_buffered() const override { return !rx_ooo_.empty(); }

  [[nodiscard]] bool acks_out_of_order() const override { return true; }

  [[nodiscard]] std::optional<std::uint64_t> sack_bitmap(
      std::uint64_t expected) const override {
    std::uint64_t bitmap = 0;
    for (auto it = rx_ooo_.upper_bound(expected); it != rx_ooo_.end(); ++it) {
      const std::uint64_t off = it->first - expected - 1;
      if (off >= 64) break;
      bitmap |= std::uint64_t{1} << off;
    }
    return bitmap;  // always attached, even when empty: presence marks the mode
  }

 private:
  struct TxRecord {
    Time at = 0;
    bool retx = false;
  };

  void observe_rtt(Time sample) {
    if (sample < 0) return;
    if (srtt_ < 0) {
      srtt_ = sample;
      rttvar_ = sample / 2;
    } else {
      // RFC 6298 with the standard gains (alpha 1/8, beta 1/4).
      const Time err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
      rttvar_ = (3 * rttvar_ + err) / 4;
      srtt_ = (7 * srtt_ + sample) / 8;
    }
    // Floor at 2*SRTT (the timer races the solicited ACK otherwise) and at
    // an eighth of the configured timeout; never exceed the configured one.
    const Time adaptive = std::max(srtt_ + 4 * rttvar_, 2 * srtt_);
    rto_ = std::clamp(adaptive, configured_rto_ / 8, configured_rto_);
  }

  const std::uint64_t window_pkts_;  // BDP cap, in packets
  const Time configured_rto_;
  const int ack_every_;

  std::set<std::uint64_t> sacked_;              // PSNs acked out of order
  std::map<std::uint64_t, TxRecord> tx_times_;  // per-packet last tx (holes)
  std::map<std::uint64_t, RxSegment> rx_ooo_;   // receiver OOO buffer
  Time srtt_ = -1;    // -1 until the first sample
  Time rttvar_ = 0;
  Time rto_;
};

}  // namespace

std::unique_ptr<LossRecoveryEngine> LossRecoveryEngine::make(
    const QpConfig& cfg, RecoveryCounters* counters) {
  switch (cfg.recovery) {
    case LossRecovery::kGoBack0:
      return std::make_unique<GoBack0Engine>(counters);
    case LossRecovery::kGoBackN:
      return std::make_unique<GoBackNEngine>(counters);
    case LossRecovery::kSelectiveRepeat:
      return std::make_unique<SelectiveRepeatEngine>(cfg, counters);
  }
  return std::make_unique<GoBackNEngine>(counters);
}

}  // namespace rocelab
