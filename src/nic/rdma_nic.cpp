#include "src/nic/rdma_nic.h"

#include <algorithm>
#include <stdexcept>

#include "src/monitor/metric_registry.h"
#include "src/nic/host.h"

namespace rocelab {

namespace {
/// Retransmission timeout backoff cap (1 << 3 = 8x).
constexpr int kMaxBackoffShift = 3;
}  // namespace

/// The narrow NIC view handed to the loss-recovery engine: wall clock,
/// single-packet retransmission, and in-flight message lookup.
struct RdmaNic::SenderOps final : LossRecoveryEngine::Sender {
  RdmaNic& nic;
  Qp& q;
  SenderOps(RdmaNic& n, Qp& qq) : nic(n), q(qq) {}

  [[nodiscard]] Time now() const override { return nic.host_.sim().now(); }
  void retransmit(std::uint64_t psn) override { nic.retransmit_one(q, psn); }
  [[nodiscard]] std::optional<std::uint64_t> message_start(
      std::uint64_t psn) const override {
    for (const auto& m : q.inflight) {
      if (psn >= m.first_psn && psn < m.end_psn) return m.first_psn;
    }
    return std::nullopt;
  }
};

RdmaNic::RdmaNic(Host& host, const HostConfig& cfg) : host_(host), cfg_(cfg) {
  MetricRegistry& reg = host_.sim().metrics();
  const std::string prefix = host_.name() + "/rdma";
  reg.add(this, prefix + "/data_packets_sent", &stats_.data_packets_sent);
  reg.add(this, prefix + "/data_packets_retx", &stats_.data_packets_retx);
  reg.add(this, prefix + "/acks_sent", &stats_.acks_sent);
  reg.add(this, prefix + "/naks_sent", &stats_.naks_sent);
  reg.add(this, prefix + "/rnr_naks_sent", &stats_.rnr_naks_sent);
  reg.add(this, prefix + "/rnr_naks_received", &stats_.rnr_naks_received);
  reg.add(this, prefix + "/cnps_sent", &stats_.cnps_sent);
  reg.add(this, prefix + "/cnps_received", &stats_.cnps_received);
  reg.add(this, prefix + "/messages_completed", &stats_.messages_completed);
  reg.add(this, prefix + "/bytes_completed", &stats_.bytes_completed);
  reg.add(this, prefix + "/messages_received", &stats_.messages_received);
  reg.add(this, prefix + "/bytes_received", &stats_.bytes_received);
  reg.add(this, prefix + "/out_of_order_drops", &stats_.out_of_order_drops);
  reg.add(this, prefix + "/timeouts", &stats_.timeouts);
  reg.add(this, prefix + "/qp_errors", &stats_.qp_errors);
  reg.add(this, prefix + "/injected_drops", &stats_.injected_drops);
  reg.add(this, prefix + "/injected_reorders", &stats_.injected_reorders);
  reg.add(this, prefix + "/injected_dup_acks", &stats_.injected_dup_acks);
  reg.add(this, prefix + "/injected_dup_reqs", &stats_.injected_dup_reqs);
  reg.add(this, prefix + "/icrc_errors", &stats_.icrc_errors);
  reg.add(this, prefix + "/corrupt_completions", &stats_.corrupt_completions);
  reg.add(this, prefix + "/selrep/sacked", &stats_.selrep.sacked);
  reg.add(this, prefix + "/selrep/retx", &stats_.selrep.retx);
  reg.add(this, prefix + "/selrep/ooo_buffered", &stats_.selrep.ooo_buffered);
  reg.add(this, prefix + "/atomic/cas_executed", &stats_.atomic.cas_executed);
  reg.add(this, prefix + "/atomic/cas_failed", &stats_.atomic.cas_failed);
  reg.add(this, prefix + "/atomic/faa_executed", &stats_.atomic.faa_executed);
  reg.add(this, prefix + "/atomic/completions", &stats_.atomic.completions);
  reg.add(this, prefix + "/atomic/reissues", &stats_.atomic.reissues);
  reg.add(this, prefix + "/atomic/acks_sent", &stats_.atomic.acks_sent);
  reg.add(this, prefix + "/atomic/dup_requests", &stats_.atomic.dup_requests);
  reg.add(this, prefix + "/atomic/replay_evictions", &stats_.atomic.replay_evictions);
}

RdmaNic::~RdmaNic() { host_.sim().metrics().remove_owner(this); }

RdmaNic::Qp& RdmaNic::qp(std::uint32_t qpn) {
  auto it = qps_.find(qpn);
  if (it == qps_.end()) throw std::invalid_argument("unknown QP");
  return *it->second;
}
const RdmaNic::Qp& RdmaNic::qp(std::uint32_t qpn) const {
  auto it = qps_.find(qpn);
  if (it == qps_.end()) throw std::invalid_argument("unknown QP");
  return *it->second;
}

std::uint32_t RdmaNic::create_qp(QpConfig cfg) {
  auto q = std::make_unique<Qp>();
  q->qpn = next_qpn_++;
  q->cfg = cfg;
  q->engine = LossRecoveryEngine::make(cfg, &stats_.selrep);
  // Random source UDP port per QP so distinct QPs take distinct ECMP paths (§2).
  q->udp_sport = static_cast<std::uint16_t>(host_.rng().uniform_int(49152, 65535));
  if (cfg.dcqcn) {
    if (cfg.cc == CcAlgorithm::kDcqcn) {
      q->rate = std::make_unique<DcqcnRp>(host_.sim(), cfg_.dcqcn, host_.port(0).bandwidth());
    } else {
      q->timely = std::make_unique<TimelyRp>(cfg.timely, host_.port(0).bandwidth());
    }
  }
  const auto qpn = q->qpn;
  qps_[qpn] = std::move(q);
  return qpn;
}

void RdmaNic::connect_qp(std::uint32_t qpn, Ipv4Addr peer_ip, std::uint32_t peer_qpn) {
  Qp& q = qp(qpn);
  q.peer_ip = peer_ip;
  q.peer_qpn = peer_qpn;
  q.connected = true;
}

const QpConfig& RdmaNic::qp_config(std::uint32_t qpn) const { return qp(qpn).cfg; }

std::int64_t RdmaNic::backlog_bytes(std::uint32_t qpn) const {
  const Qp& q = qp(qpn);
  std::int64_t total = 0;
  for (const auto& w : q.pending) total += w.bytes;
  for (const auto& m : q.inflight) total += m.wqe.bytes;
  return total;
}

Bandwidth RdmaNic::current_rate(const Qp& q) const {
  if (q.rate) return q.rate->rate();
  if (q.timely) return q.timely->rate();
  return host_.port(0).bandwidth();
}

Bandwidth RdmaNic::qp_rate(std::uint32_t qpn) const { return current_rate(qp(qpn)); }

double RdmaNic::qp_alpha(std::uint32_t qpn) const {
  const Qp& q = qp(qpn);
  return q.rate ? q.rate->alpha() : 0.0;
}

// --- verbs ---------------------------------------------------------------------

void RdmaNic::post_send(std::uint32_t qpn, std::int64_t bytes, std::uint64_t msg_id) {
  post_message(qp(qpn), SendWqe{SendWqe::Kind::kSend, bytes, msg_id, host_.sim().now()});
}

void RdmaNic::post_write(std::uint32_t qpn, std::int64_t bytes, std::uint64_t msg_id) {
  post_message(qp(qpn), SendWqe{SendWqe::Kind::kWrite, bytes, msg_id, host_.sim().now()});
}

void RdmaNic::post_read(std::uint32_t qpn, std::int64_t bytes, std::uint64_t msg_id) {
  Qp& q = qp(qpn);
  if (!q.connected) throw std::logic_error("post_read on unconnected QP");
  const Qp::PendingRead pr{bytes, host_.sim().now(), q.next_req_psn++};
  q.reads[msg_id] = pr;
  issue_read_req(q, msg_id, pr);
  arm_read_retx(q, msg_id);
}

void RdmaNic::issue_read_req(Qp& q, std::uint64_t msg_id, const Qp::PendingRead& pr) {
  Packet pkt = make_roce_packet(q, PacketKind::kRoceReadReq);
  pkt.bth->opcode = RoceOpcode::kReadRequest;
  // The request PSN is the responder's replay key: a re-issue carries the
  // same value, so a raced duplicate is recognized instead of re-executed.
  pkt.bth->psn = static_cast<std::uint32_t>(pr.req_psn & 0x00ffffffu);
  pkt.read_length = pr.bytes;
  pkt.msg_id = msg_id;
  pkt.frame_bytes = kRoceDataOverheadBytes + kRethBytes;
  host_.send_frame(std::move(pkt));
}

// Requester-side reliability for the READ request itself: re-issue if the
// response has not completed within a generous timeout. The event id is
// tracked per msg_id so completion and reset_qp cancel it, and the closure
// checks the error flag — an errored-but-connected QP must go quiet, not
// keep re-posting requests.
void RdmaNic::arm_read_retx(Qp& q, std::uint64_t msg_id) {
  const Time timeout = 8 * q.cfg.retx_timeout;
  const auto qpn = q.qpn;
  q.read_retx_evs[msg_id] = host_.sim().schedule_in(timeout, [this, qpn, msg_id] {
    Qp& qq = qp(qpn);
    qq.read_retx_evs.erase(msg_id);
    if (qq.error || !qq.connected) return;
    auto it = qq.reads.find(msg_id);
    if (it == qq.reads.end()) return;  // completed
    ++stats_.timeouts;
    issue_read_req(qq, msg_id, it->second);
    arm_read_retx(qq, msg_id);
  });
}

// --- atomic verbs (CAS / FAA) ---------------------------------------------------

void RdmaNic::post_cas(std::uint32_t qpn, std::uint64_t addr, std::uint64_t compare,
                       std::uint64_t swap, std::uint64_t msg_id) {
  post_atomic(qpn, Qp::PendingAtomic{RoceOpcode::kCompareSwap, addr, compare, swap,
                                     msg_id, host_.sim().now(), 0, false});
}

void RdmaNic::post_faa(std::uint32_t qpn, std::uint64_t addr, std::uint64_t add,
                       std::uint64_t msg_id) {
  post_atomic(qpn, Qp::PendingAtomic{RoceOpcode::kFetchAdd, addr, 0, add, msg_id,
                                     host_.sim().now(), 0, false});
}

void RdmaNic::post_atomic(std::uint32_t qpn, Qp::PendingAtomic a) {
  Qp& q = qp(qpn);
  if (q.error) throw std::logic_error("post on errored QP (reset it first)");
  if (!q.connected) throw std::logic_error("post on unconnected QP");
  q.atomic_queue.push_back(a);
  try_issue_atomic(q);
}

std::uint64_t RdmaNic::memory_read(std::uint64_t addr) const {
  auto it = memory_.find(addr);
  return it == memory_.end() ? 0 : it->second;
}

void RdmaNic::memory_write(std::uint64_t addr, std::uint64_t value) {
  memory_[addr] = value;
}

/// Issue the oldest posted atomic once the IB fence clears: atomics wait for
/// every previously posted operation (SEND/WRITE/READ) to complete, then run
/// one at a time in post order. Ops posted *after* the atomic also hold it
/// back (a stricter fence than IB requires — simpler, and still exactly the
/// post-order execution the lock workloads need).
void RdmaNic::try_issue_atomic(Qp& q) {
  if (q.atomic_queue.empty()) return;
  if (q.error || !q.connected) return;
  Qp::PendingAtomic& a = q.atomic_queue.front();
  if (a.issued) return;  // waiting on its ACK
  if (!q.pending.empty() || !q.inflight.empty() || !q.reads.empty()) return;
  a.issued = true;
  a.req_psn = q.next_req_psn++;
  issue_atomic_req(q, a);
  arm_atomic_retx(q);
}

void RdmaNic::issue_atomic_req(Qp& q, const Qp::PendingAtomic& a) {
  Packet pkt = make_roce_packet(q, PacketKind::kRoceAtomicReq);
  pkt.bth->opcode = a.op;
  pkt.bth->psn = static_cast<std::uint32_t>(a.req_psn & 0x00ffffffu);
  pkt.atomic = RoceAtomicEth{a.addr, /*rkey=*/0, a.swap_add, a.compare};
  pkt.msg_id = a.msg_id;
  pkt.frame_bytes = kRoceDataOverheadBytes + kAtomicEthBytes;
  host_.send_frame(std::move(pkt));
}

/// Same 8xRTO re-issue discipline as READ requests; only one atomic is ever
/// outstanding per QP, so a single tracked event id suffices.
void RdmaNic::arm_atomic_retx(Qp& q) {
  const Time timeout = 8 * q.cfg.retx_timeout;
  const auto qpn = q.qpn;
  q.atomic_retx_ev = host_.sim().schedule_in(timeout, [this, qpn] {
    Qp& qq = qp(qpn);
    qq.atomic_retx_ev = kInvalidEventId;
    if (qq.error || !qq.connected) return;
    if (qq.atomic_queue.empty() || !qq.atomic_queue.front().issued) return;
    ++stats_.atomic.reissues;
    issue_atomic_req(qq, qq.atomic_queue.front());  // same req PSN: a duplicate
    arm_atomic_retx(qq);
  });
}

void RdmaNic::post_recv(std::uint32_t qpn, int count) {
  if (count <= 0) throw std::invalid_argument("post_recv needs a positive count");
  qp(qpn).recv_credits += count;
}

void RdmaNic::post_message(Qp& q, SendWqe wqe) {
  if (q.error) throw std::logic_error("post on errored QP (reset it first)");
  if (!q.connected) throw std::logic_error("post on unconnected QP");
  if (wqe.bytes <= 0) throw std::invalid_argument("message must have positive size");
  q.pending.push_back(wqe);
  arm_pacer(q);
}

// --- sender machinery -------------------------------------------------------------

void RdmaNic::arm_pacer(Qp& q) {
  if (q.pacer_ev != kInvalidEventId || q.blocked_on_port || q.error) return;
  const Time at = std::max(host_.sim().now(), q.next_tx_time);
  const auto qpn = q.qpn;
  q.pacer_ev = host_.sim().schedule_at(at, [this, qpn] { pacer_fire(qpn); });
}

void RdmaNic::pacer_fire(std::uint32_t qpn) {
  Qp& q = qp(qpn);
  q.pacer_ev = kInvalidEventId;
  if (q.error) return;
  if (transmit_next(q)) arm_pacer(q);
}

bool RdmaNic::transmit_next(Qp& q) {
  // Selective repeat: skip PSNs the receiver already SACKed, and hold new
  // data while a BDP's worth is unacknowledged (IRN's stand-in for PFC
  // backpressure). No-ops in the go-back modes.
  while (q.cursor_psn < q.next_new_psn && q.engine->is_sacked(q.cursor_psn)) {
    ++q.cursor_psn;
  }
  if (q.cursor_psn == q.next_new_psn && !q.engine->window_open(q.cursor_psn, q.una_psn)) {
    return false;
  }

  // Start the next message if the cursor has caught up with new territory.
  if (q.cursor_psn == q.next_new_psn) {
    bool have_msg = false;
    for (const auto& m : q.inflight) {
      if (q.cursor_psn < m.end_psn) {
        have_msg = true;
        break;
      }
    }
    if (!have_msg) {
      if (q.pending.empty()) return false;  // idle
      const SendWqe wqe = q.pending.front();
      q.pending.pop_front();
      const auto nseg = static_cast<std::uint64_t>(
          (wqe.bytes + q.cfg.mtu_payload - 1) / q.cfg.mtu_payload);
      q.inflight.push_back(InflightMsg{q.next_new_psn, q.next_new_psn + nseg, wqe});
    }
  }

  // Locate the message containing the cursor.
  const InflightMsg* msg = nullptr;
  for (const auto& m : q.inflight) {
    if (q.cursor_psn >= m.first_psn && q.cursor_psn < m.end_psn) {
      msg = &m;
      break;
    }
  }
  if (msg == nullptr) return false;

  if (!host_.tx_has_room(q.cfg.priority)) {
    q.blocked_on_port = true;
    blocked_qpns_.push_back(q.qpn);
    return false;
  }

  Packet pkt = build_data_packet(q, *msg, q.cursor_psn, /*force_ack=*/false);

  const bool is_retx = q.cursor_psn < q.next_new_psn;
  ++q.cursor_psn;
  q.next_new_psn = std::max(q.next_new_psn, q.cursor_psn);
  ++stats_.data_packets_sent;
  if (is_retx) ++stats_.data_packets_retx;
  q.engine->on_tx_segment(pkt.bth->psn, is_retx, host_.sim().now());

  if (q.rate) q.rate->on_bytes_sent(pkt.frame_bytes);
  if (q.timely && pkt.bth->ack_request && q.rtt_probes.size() < 64) {
    q.rtt_probes.emplace_back(pkt.bth->psn + 1, host_.sim().now());
  }
  const Bandwidth rate = current_rate(q);
  q.next_tx_time =
      host_.sim().now() + serialization_time(pkt.frame_bytes + kWireOverheadBytes, rate);

  host_.send_frame(std::move(pkt));
  arm_retx(q);
  return true;
}

Packet RdmaNic::build_data_packet(Qp& q, const InflightMsg& msg, std::uint64_t psn,
                                  bool force_ack) {
  const std::uint64_t seg = psn - msg.first_psn;
  const std::uint64_t nseg = msg.end_psn - msg.first_psn;
  const std::int64_t payload = std::min<std::int64_t>(
      q.cfg.mtu_payload, msg.wqe.bytes - static_cast<std::int64_t>(seg) * q.cfg.mtu_payload);
  const bool first = seg == 0;
  const bool last = seg == nseg - 1;

  Packet pkt = make_roce_packet(q, PacketKind::kRoceData);
  pkt.payload_bytes = static_cast<std::int32_t>(payload);
  pkt.frame_bytes = kRoceDataOverheadBytes + payload;
  pkt.msg_id = msg.wqe.msg_id;
  pkt.bth->psn = static_cast<std::uint32_t>(psn);
  pkt.bth->ack_request = force_ack || last ||
                         (seg % static_cast<std::uint64_t>(q.cfg.ack_every) ==
                          static_cast<std::uint64_t>(q.cfg.ack_every) - 1);
  switch (msg.wqe.kind) {
    case SendWqe::Kind::kSend:
      pkt.bth->opcode = nseg == 1 ? RoceOpcode::kSendOnly
                        : first   ? RoceOpcode::kSendFirst
                        : last    ? RoceOpcode::kSendLast
                                  : RoceOpcode::kSendMiddle;
      break;
    case SendWqe::Kind::kWrite:
      pkt.bth->opcode = nseg == 1 ? RoceOpcode::kWriteOnly
                        : first   ? RoceOpcode::kWriteFirst
                        : last    ? RoceOpcode::kWriteLast
                                  : RoceOpcode::kWriteMiddle;
      break;
    case SendWqe::Kind::kReadResponse:
      pkt.bth->opcode = nseg == 1 ? RoceOpcode::kReadResponseOnly
                        : first   ? RoceOpcode::kReadResponseFirst
                        : last    ? RoceOpcode::kReadResponseLast
                                  : RoceOpcode::kReadResponseMiddle;
      break;
  }
  return pkt;
}

void RdmaNic::retransmit_one(Qp& q, std::uint64_t psn) {
  if (psn < q.una_psn) return;  // already acked
  for (const auto& m : q.inflight) {
    if (psn >= m.first_psn && psn < m.end_psn) {
      // Prompt ACK on the hole-filling packet so the sender's window and
      // the receiver's hole state advance immediately.
      Packet pkt = build_data_packet(q, m, psn, /*force_ack=*/true);
      ++stats_.data_packets_sent;
      ++stats_.data_packets_retx;
      q.engine->on_tx_segment(psn, /*is_retx=*/true, host_.sim().now());
      if (q.rate) q.rate->on_bytes_sent(pkt.frame_bytes);
      host_.send_frame(std::move(pkt));
      arm_retx(q);
      return;
    }
  }
}

void RdmaNic::arm_retx(Qp& q) {
  // The timer tracks the OLDEST unacked packet: once armed it must not be
  // refreshed by further transmissions, or a blackholed QP that keeps being
  // fed new work would reset its own timeout forever and never detect the
  // loss. It restarts only on ack progress (restart_retx) or on the
  // timeout itself.
  if (q.retx_ev != kInvalidEventId) return;
  if (q.una_psn >= q.next_new_psn) return;  // nothing outstanding
  // A throttled QP solicits its next ACK only after clocking out up to
  // ack_every more packets at its own rate — that self-clocking delay is
  // expected silence, not loss, so it extends the timeout. (At line rate
  // it is negligible; at DCQCN/TIMELY floor rates it dominates.)
  const Time self_clock = serialization_time(
      static_cast<std::int64_t>(q.cfg.ack_every) *
          (q.cfg.mtu_payload + kRoceDataOverheadBytes),
      current_rate(q));
  // The engine may adapt the base timeout to the path (selective repeat's
  // SRTT estimate); the go-back modes return the configured value as-is.
  const Time delay = (q.engine->rto(q.cfg.retx_timeout) + self_clock)
                     << std::min(q.consecutive_timeouts, kMaxBackoffShift);
  const auto qpn = q.qpn;
  q.retx_ev = host_.sim().schedule_in(delay, [this, qpn] { on_retx_timeout(qpn); });
}

void RdmaNic::restart_retx(Qp& q) {
  host_.sim().cancel(q.retx_ev);
  q.retx_ev = kInvalidEventId;
  arm_retx(q);
}

void RdmaNic::on_retx_timeout(std::uint32_t qpn) {
  Qp& q = qp(qpn);
  q.retx_ev = kInvalidEventId;
  if (q.una_psn >= q.next_new_psn) return;
  // PFC gate: when our own egress is XOFF'd for this priority — or the
  // oldest unacked packet may still be sitting in the local port queue —
  // the silence is flow control, not loss. Lossless fabrics pause, they
  // don't drop; firing go-back-N here would retransmit packets that were
  // never lost and melt an incast. Hold the retry state machine instead
  // (it resumes once the pause clears and the queue drains). The pause
  // half applies only when this host actually runs the priority lossless:
  // on a PFC-disabled (lossy) fabric a stray pause frame must not wedge
  // the timer behind a gate that never clears.
  const EgressPort& out = host_.port(0);
  const bool pfc_gated = cfg_.lossless[static_cast<std::size_t>(q.cfg.priority)];
  if ((pfc_gated && out.paused(q.cfg.priority)) ||
      out.queued_bytes(q.cfg.priority) > 0) {
    arm_retx(q);
    return;
  }
  ++stats_.timeouts;
  ++q.consecutive_timeouts;
  if (q.cfg.retry_limit > 0 && q.consecutive_timeouts >= q.cfg.retry_limit) {
    // Retry exhausted: the QP enters the error state and goes quiet. The
    // application heals through the qp-error callback (the RDMA CM tears
    // the QP down and re-establishes a fresh one via REQ/REP).
    q.error = true;
    host_.sim().cancel(q.pacer_ev);
    q.pacer_ev = kInvalidEventId;
    ++stats_.qp_errors;
    for (const auto& cb : error_cbs_) cb(qpn);
    return;
  }
  // Selective repeat retransmits expired holes itself; the go-back modes
  // decline and fall through to the classic go_back from una.
  SenderOps ops{*this, q};
  if (!q.engine->on_timeout(q.una_psn, q.next_new_psn, ops)) {
    go_back(q, q.una_psn);
  }
  arm_retx(q);
}

void RdmaNic::reset_qp(std::uint32_t qpn) {
  Qp& q = qp(qpn);
  host_.sim().cancel(q.pacer_ev);
  host_.sim().cancel(q.retx_ev);
  host_.sim().cancel(q.atomic_retx_ev);
  for (auto& [msg_id, ev] : q.read_retx_evs) host_.sim().cancel(ev);
  q.read_retx_evs.clear();
  q.pacer_ev = q.retx_ev = q.atomic_retx_ev = kInvalidEventId;
  q.pending.clear();
  q.inflight.clear();
  q.next_new_psn = q.cursor_psn = q.una_psn = 0;
  // next_req_psn is deliberately NOT rewound: if only this side resets, the
  // peer's replay table may still hold entries under the old keys, and a
  // fresh request must never alias a stale one.
  q.expected_psn = 0;
  q.nak_armed = true;
  q.rx_taint = false;
  q.engine->reset();
  q.rtt_probes.clear();
  q.reads.clear();
  q.atomic_queue.clear();
  q.replay.clear();
  q.consecutive_timeouts = 0;
  q.blocked_on_port = false;
  q.error = false;
  q.connected = false;
}

void RdmaNic::go_back(Qp& q, std::uint64_t psn) {
  q.rtt_probes.clear();  // Karn's rule: never time across a retransmission
  // go-back-N (and selective repeat's RNR path) restart from psn itself;
  // go-back-0 rewinds to the containing message's first PSN, floors una
  // there, and stamps its restart barrier (the §4.1 livelock couplings).
  SenderOps ops{*this, q};
  const LossRecoveryEngine::Restart plan = q.engine->plan_restart(psn, ops);
  q.cursor_psn = plan.cursor;
  if (plan.rewind_una) q.una_psn = std::min(q.una_psn, plan.cursor);
  arm_pacer(q);
}

void RdmaNic::advance_una(Qp& q, std::uint64_t msn) {
  if (msn <= q.una_psn) return;
  q.una_psn = msn;
  q.cursor_psn = std::max(q.cursor_psn, q.una_psn);
  q.consecutive_timeouts = 0;
  while (!q.inflight.empty() && q.inflight.front().end_psn <= q.una_psn) {
    const InflightMsg& m = q.inflight.front();
    if (m.wqe.kind != SendWqe::Kind::kReadResponse) {
      ++stats_.messages_completed;
      stats_.bytes_completed += m.wqe.bytes;
      if (completion_cb_) {
        completion_cb_(RdmaCompletion{q.qpn, m.wqe.msg_id, m.wqe.bytes, m.wqe.posted_at,
                                      host_.sim().now()});
      }
    }
    q.inflight.pop_front();
  }
  restart_retx(q);  // progress: time the next-oldest unacked packet afresh
  try_issue_atomic(q);  // the fence may have cleared (no-op without atomics)
}

// --- receive side ---------------------------------------------------------------

void RdmaNic::set_qp_fault(std::uint32_t qpn, const QpFaultSpec& spec) {
  qp_faults_.erase(qpn);  // replace = fresh RNG, fresh stats
  qp_faults_.emplace(qpn, QpFaultInjector(spec));
}

const QpFaultStats& RdmaNic::qp_fault_stats(std::uint32_t qpn) const {
  static const QpFaultStats kEmpty{};
  auto it = qp_faults_.find(qpn);
  return it == qp_faults_.end() ? kEmpty : it->second.stats;
}

void RdmaNic::handle(Packet pkt) {
  if (!pkt.bth) return;
  // Per-QP fault injection sits between the rx pipeline and the transport:
  // only packets addressed to a targeted QPN are touched, and a NIC with no
  // injectors installed pays a single emptiness check.
  if (!qp_faults_.empty()) {
    auto fit = qp_faults_.find(pkt.bth->dest_qp);
    if (fit != qp_faults_.end() && fit->second.spec.enabled) {
      QpFaultInjector& inj = fit->second;
      if (pkt.kind == PacketKind::kRoceData) {
        if (inj.spec.drop_rate > 0.0 && inj.rng.bernoulli(inj.spec.drop_rate)) {
          ++inj.stats.drops;
          ++stats_.injected_drops;
          return;
        }
        if (inj.spec.reorder_rate > 0.0 && inj.rng.bernoulli(inj.spec.reorder_rate)) {
          // Held back, then re-injected past the injector (a held packet
          // must not be re-dropped or re-held).
          ++inj.stats.reorders;
          ++stats_.injected_reorders;
          host_.sim().schedule_in(inj.spec.reorder_delay,
                                  [this, pkt = std::move(pkt)]() mutable {
                                    dispatch(std::move(pkt));
                                  });
          return;
        }
      } else if (pkt.kind == PacketKind::kRoceAck) {
        if (inj.spec.dup_ack_rate > 0.0 && inj.rng.bernoulli(inj.spec.dup_ack_rate)) {
          ++inj.stats.dup_acks;
          ++stats_.injected_dup_acks;
          dispatch(pkt);  // the duplicate; the original follows below
        }
      } else if (pkt.kind == PacketKind::kRoceReadReq ||
                 pkt.kind == PacketKind::kRoceAtomicReq) {
        if (inj.spec.dup_req_rate > 0.0 && inj.rng.bernoulli(inj.spec.dup_req_rate)) {
          // The non-idempotent-request duplicate: without the responder
          // replay table this re-executes the verb.
          ++inj.stats.dup_reqs;
          ++stats_.injected_dup_reqs;
          dispatch(pkt);  // the duplicate; the original follows below
        }
      }
    }
  }
  dispatch(std::move(pkt));
}

void RdmaNic::dispatch(Packet pkt) {
  auto it = qps_.find(pkt.bth->dest_qp);
  if (it == qps_.end()) return;
  Qp& q = *it->second;
  if (q.error) return;  // wedged until reset; late packets must not revive it

  // §5.2 end-to-end integrity: the packet carries corruption that escaped
  // every link-level FCS check on its path, so only the invariant CRC —
  // which travels unmodified end to end — can catch it here. A corrupt data
  // packet is dropped and NAKed exactly like a lost one (once per episode,
  // §4.1), so go-back-N resends it and go-back-0 restarts the message
  // through the same restart-barrier machinery loss uses; a corrupted
  // ACK/NAK (or read request / CNP) is simply discarded — its fields can't
  // be trusted, and the sender's retransmission timer covers the loss.
  if (pkt.corrupt && icrc_verify_) {
    ++stats_.icrc_errors;
    if (pkt.kind == PacketKind::kRoceData && q.engine->on_icrc_drop(q.nak_armed)) {
      q.nak_armed = false;
      send_ack(q, AethSyndrome::kNakPsnSequenceError);
    }
    return;
  }

  switch (pkt.kind) {
    case PacketKind::kRoceData:
      handle_data(q, pkt);
      break;
    case PacketKind::kRoceAck:
      // Atomic ACKs bypass the PSN/engine machinery entirely: they complete
      // the one outstanding atomic by request-PSN match, nothing else.
      if (pkt.bth->opcode == RoceOpcode::kAtomicAck) {
        handle_atomic_ack(q, pkt);
      } else {
        handle_ack(q, pkt);
      }
      break;
    case PacketKind::kRoceReadReq:
      handle_read_req(q, pkt);
      break;
    case PacketKind::kRoceAtomicReq:
      handle_atomic_req(q, pkt);
      break;
    case PacketKind::kCnp:
      handle_cnp(q);
      break;
    default:
      break;
  }
}

void RdmaNic::maybe_send_cnp(Qp& q, const Packet& pkt) {
  if (!pkt.ip || pkt.ip->ecn != Ecn::kCe) return;
  const Time now = host_.sim().now();
  if (now - q.last_cnp_time < cfg_.dcqcn.cnp_interval) return;
  q.last_cnp_time = now;
  Packet cnp = make_roce_packet(q, PacketKind::kCnp);
  cnp.bth->opcode = RoceOpcode::kCnp;
  cnp.frame_bytes = kRoceDataOverheadBytes;
  cnp.ip->dscp = cfg_.cnp_dscp;
  cnp.ip->ecn = Ecn::kNotEct;
  cnp.priority = cfg_.cnp_dscp;
  ++stats_.cnps_sent;
  host_.send_frame(std::move(cnp));
}

void RdmaNic::deliver_in_order(Qp& q, const RxSegment& seg) {
  const RoceOpcode op = seg.opcode;
  const bool first = is_roce_message_start(op);
  const bool last = op == RoceOpcode::kSendLast || op == RoceOpcode::kWriteLast ||
                    op == RoceOpcode::kReadResponseLast || op == RoceOpcode::kSendOnly ||
                    op == RoceOpcode::kWriteOnly || op == RoceOpcode::kReadResponseOnly;
  if (first) {
    q.rx_msg_bytes = 0;
    q.rx_msg_start = seg.created_at;
    q.rx_taint = false;
  }
  q.rx_msg_bytes += seg.payload;
  // Only reachable with ICRC verification off: the corrupt segment was
  // consumed into the message, so whatever completes now is torn data.
  if (seg.corrupt) q.rx_taint = true;
  if (!last) return;
  if (q.rx_taint) ++stats_.corrupt_completions;

  if (is_read_response(op)) {
    // READ completion at the requester: exactly once — the entry is erased
    // and its re-issue timer cancelled, so neither a duplicate response
    // stream nor a stale timer can complete (or re-request) it again.
    auto rit = q.reads.find(seg.msg_id);
    if (rit != q.reads.end()) {
      const Time posted = rit->second.posted_at;
      ++stats_.messages_completed;
      stats_.bytes_completed += q.rx_msg_bytes;
      if (completion_cb_) {
        completion_cb_(
            RdmaCompletion{q.qpn, seg.msg_id, q.rx_msg_bytes, posted, host_.sim().now()});
      }
      q.reads.erase(rit);
      auto evit = q.read_retx_evs.find(seg.msg_id);
      if (evit != q.read_retx_evs.end()) {
        host_.sim().cancel(evit->second);
        q.read_retx_evs.erase(evit);
      }
      try_issue_atomic(q);  // a fenced atomic may now be unblocked
    }
  } else {
    ++stats_.messages_received;
    stats_.bytes_received += q.rx_msg_bytes;
    if (recv_cb_) {
      recv_cb_(RdmaRecv{q.qpn, seg.msg_id, q.rx_msg_bytes, q.rx_msg_start, host_.sim().now()});
    }
  }
}

void RdmaNic::handle_data(Qp& q, Packet& pkt) {
  maybe_send_cnp(q, pkt);  // NP reacts to the mark even on out-of-order packets

  const std::uint64_t psn = pkt.bth->psn;
  const RxSegment seg{pkt.payload_bytes, pkt.bth->opcode, pkt.msg_id, pkt.created_at,
                      pkt.corrupt};

  // go-back-0 peers restart the whole message on any loss (§4.1): when the
  // message-start segment comes around again below the cumulative high-water
  // mark, the receiver abandons its partial progress and takes the restarted
  // stream in order. Retaining expected_psn across restarts is what let each
  // pass resume mid-message and quietly defeated the livelock.
  bool retaken_start = false;
  if (q.engine->retake_message_start(psn, q.expected_psn, seg.opcode)) {
    q.expected_psn = psn;
    q.nak_armed = true;
    retaken_start = true;
  }

  if (psn == q.expected_psn) {
    // Receive WQE contract: the FIRST packet of a SEND needs a posted
    // receive buffer; otherwise the responder answers RNR NAK and does not
    // advance (the sender backs off and retries the whole message).
    const bool send_first = seg.opcode == RoceOpcode::kSendFirst ||
                            seg.opcode == RoceOpcode::kSendOnly;
    // A restarted message already consumed its receive WQE on the first pass.
    if (send_first && q.cfg.require_recv_wqes && !retaken_start) {
      if (q.recv_credits <= 0) {
        ++stats_.rnr_naks_sent;
        send_ack(q, AethSyndrome::kRnrNak);
        return;
      }
      --q.recv_credits;
    }
    ++q.expected_psn;
    q.nak_armed = true;
    deliver_in_order(q, seg);
    // Drain buffered segments the hole was blocking (selective repeat).
    bool drained_ooo = false;
    RxSegment buffered;
    while (q.engine->pop_buffered(q.expected_psn, &buffered)) {
      deliver_in_order(q, buffered);
      ++q.expected_psn;
      drained_ooo = true;
    }
    if (q.engine->has_buffered() && q.nak_armed) {
      // Another hole remains: report it right away.
      q.nak_armed = false;
      send_ack(q, AethSyndrome::kNakPsnSequenceError);
      return;
    }
    if (pkt.bth->ack_request || drained_ooo) send_ack(q, AethSyndrome::kAck);
    return;
  }

  if (psn > q.expected_psn) {
    // Selective repeat buffers up to its BDP cap; the go-back modes (and
    // overflow) drop.
    if (!q.engine->buffer_out_of_order(psn, seg)) ++stats_.out_of_order_drops;
    // Gap: a packet was lost. NAK once per episode (§4.1).
    if (q.nak_armed) {
      q.nak_armed = false;
      send_ack(q, AethSyndrome::kNakPsnSequenceError);
    } else if (q.engine->acks_out_of_order() && pkt.bth->ack_request) {
      send_ack(q, AethSyndrome::kAck);  // keep the sender's window fresh
    }
    return;
  }
  // Duplicate (psn < expected): the sender went back — re-arm NAK so a
  // repeated loss of the expected packet triggers a fresh NAK instead of
  // stalling until the retransmission timer (this is what keeps the §4.1
  // livelock link "fully utilized with line rate" while goodput stays 0).
  q.nak_armed = true;
  if (pkt.bth->ack_request) send_ack(q, AethSyndrome::kAck);
}

void RdmaNic::handle_ack(Qp& q, const Packet& pkt) {
  if (!pkt.aeth) return;
  // go-back-0: feedback generated before the last whole-message restart is
  // about the aborted pass. Same-priority RoCE paths deliver FIFO, so no
  // legitimate post-restart ACK can predate the barrier.
  if (!q.engine->admit_feedback(pkt.created_at)) return;
  // The wire MSN is 24 bits; widen it back around our cumulative-ack state
  // so PSN spaces past 2^24 keep advancing instead of snapping to zero.
  const std::uint64_t msn = expand_seq24(q.una_psn, pkt.aeth->msn);
  // TIMELY: RTT sample from the freshest probe this ACK covers.
  if (q.timely) {
    Time sent_at = -1;
    while (!q.rtt_probes.empty() && q.rtt_probes.front().first <= msn) {
      sent_at = q.rtt_probes.front().second;
      q.rtt_probes.pop_front();
    }
    if (sent_at >= 0) q.timely->on_rtt_sample(host_.sim().now() - sent_at);
  }
  // Selective repeat: SACK bookkeeping and the SRTT sample, before una
  // moves (the sample needs the tx record the cumulative ACK retires).
  q.engine->on_ack(msn, pkt.sack, host_.sim().now());
  advance_una(q, msn);
  if (pkt.aeth->syndrome == AethSyndrome::kNakPsnSequenceError) {
    if (q.engine->on_nak(msn).retransmit_single) {
      retransmit_one(q, msn);  // resend only the missing packet
    } else {
      go_back(q, msn);
    }
  } else if (pkt.aeth->syndrome == AethSyndrome::kRnrNak) {
    // Receiver not ready: back off, then retry the message from its start.
    ++stats_.rnr_naks_received;
    q.next_tx_time = std::max(q.next_tx_time, host_.sim().now() + q.cfg.rnr_delay);
    const auto qpn = q.qpn;
    host_.sim().schedule_in(q.cfg.rnr_delay, [this, qpn, msn] {
      auto it = qps_.find(qpn);
      if (it != qps_.end()) go_back(*it->second, msn);
    });
  }
  // Selective repeat: ACK progress may have reopened the BDP window, and
  // the pacer is the only thing that resumes transmission.
  if (q.engine->reopen_window_on_ack()) arm_pacer(q);
}

void RdmaNic::handle_read_req(Qp& q, const Packet& pkt) {
  // Replay guard: a duplicate READ request (requester 8xRTO re-issue racing
  // a delayed response, or injected duplication) must not re-execute — the
  // original response stream is already in flight on the PSN-reliable
  // channel, so a second execution would double-send the data and burn
  // PSNs. Recognize it and drop it.
  const std::uint64_t req_psn = pkt.bth->psn;
  if (replay_lookup(q, req_psn) != nullptr) {
    ++stats_.atomic.dup_requests;
    return;
  }
  replay_insert(q, Qp::ReplayEntry{req_psn, /*atomic=*/false, 0});
  post_message(q, SendWqe{SendWqe::Kind::kReadResponse, pkt.read_length, pkt.msg_id,
                          pkt.created_at});
}

// --- responder-side atomic execution + replay guard -----------------------------

const RdmaNic::Qp::ReplayEntry* RdmaNic::replay_lookup(const Qp& q,
                                                       std::uint64_t req_psn) const {
  for (const auto& e : q.replay) {
    if (e.req_psn == req_psn) return &e;
  }
  return nullptr;
}

void RdmaNic::replay_insert(Qp& q, Qp::ReplayEntry entry) {
  q.replay.push_back(entry);
  while (q.replay.size() > static_cast<std::size_t>(std::max(1, q.cfg.replay_entries))) {
    q.replay.pop_front();
    ++stats_.atomic.replay_evictions;
  }
}

void RdmaNic::handle_atomic_req(Qp& q, const Packet& pkt) {
  if (!pkt.atomic) return;
  const std::uint64_t req_psn = pkt.bth->psn;
  // A duplicate atomic must NOT re-execute (FAA would double-increment, CAS
  // could succeed twice against an ABA'd word): answer from the cached
  // result instead — the IRN requirement that lossy-fabric recovery makes
  // non-idempotent-request dedup mandatory.
  if (const Qp::ReplayEntry* hit = replay_lookup(q, req_psn)) {
    ++stats_.atomic.dup_requests;
    send_atomic_ack(q, pkt, hit->orig);
    return;
  }
  const RoceAtomicEth& ath = *pkt.atomic;
  std::uint64_t& word = memory_[ath.addr];
  const std::uint64_t orig = word;
  if (pkt.bth->opcode == RoceOpcode::kCompareSwap) {
    ++stats_.atomic.cas_executed;
    if (orig == ath.compare) {
      word = ath.swap_add;
    } else {
      ++stats_.atomic.cas_failed;
    }
  } else {
    ++stats_.atomic.faa_executed;
    word = orig + ath.swap_add;
  }
  replay_insert(q, Qp::ReplayEntry{req_psn, /*atomic=*/true, orig});
  send_atomic_ack(q, pkt, orig);
}

void RdmaNic::send_atomic_ack(Qp& q, const Packet& req, std::uint64_t orig) {
  Packet ack = make_roce_packet(q, PacketKind::kRoceAck);
  ack.bth->opcode = RoceOpcode::kAtomicAck;
  // Echo the request PSN so the requester matches the ACK to its one
  // outstanding atomic (and ignores stale duplicates).
  ack.bth->psn = req.bth->psn;
  ack.aeth = RoceAeth{AethSyndrome::kAck,
                      static_cast<std::uint32_t>(q.expected_psn & 0x00ffffffu)};
  ack.atomic_ack = RoceAtomicAckEth{orig};
  ack.msg_id = req.msg_id;
  ack.frame_bytes = kRoceDataOverheadBytes + kAethBytes + kAtomicAckEthBytes;
  ++stats_.atomic.acks_sent;
  host_.send_frame(std::move(ack));
}

void RdmaNic::handle_atomic_ack(Qp& q, const Packet& pkt) {
  if (!pkt.atomic_ack) return;
  if (q.atomic_queue.empty()) return;  // stale/duplicate ACK: already done
  Qp::PendingAtomic& a = q.atomic_queue.front();
  if (!a.issued || (a.req_psn & 0x00ffffffu) != pkt.bth->psn) return;
  host_.sim().cancel(q.atomic_retx_ev);
  q.atomic_retx_ev = kInvalidEventId;
  ++stats_.atomic.completions;
  RdmaCompletion c{q.qpn, a.msg_id, static_cast<std::int64_t>(sizeof(std::uint64_t)),
                   a.posted_at, host_.sim().now()};
  c.atomic_orig = pkt.atomic_ack->orig;
  q.atomic_queue.pop_front();
  if (completion_cb_) completion_cb_(c);
  try_issue_atomic(q);  // next queued atomic, if any
}

void RdmaNic::handle_cnp(Qp& q) {
  ++stats_.cnps_received;
  if (q.rate) q.rate->on_cnp();
}

void RdmaNic::send_ack(Qp& q, AethSyndrome syndrome) {
  Packet ack = make_roce_packet(q, PacketKind::kRoceAck);
  ack.bth->opcode = RoceOpcode::kAcknowledge;
  // The AETH MSN field is 24 bits on the wire: mask here (the header is
  // metadata, but it must match what the codec would emit) and let the
  // requester's expand_seq24 widen it back around its una_psn.
  ack.aeth = RoceAeth{syndrome, static_cast<std::uint32_t>(q.expected_psn & 0x00ffffffu)};
  ack.frame_bytes = kRoceDataOverheadBytes + kAethBytes;
  // Selective repeat advertises its out-of-order buffer in a SACK bitmap
  // (always attached, even empty: presence marks the mode on the wire).
  if (const auto bitmap = q.engine->sack_bitmap(q.expected_psn)) {
    ack.sack = RoceSackExt{*bitmap};
    ack.frame_bytes += kSackBytes;
  }
  if (syndrome == AethSyndrome::kAck) {
    ++stats_.acks_sent;
  } else {
    ++stats_.naks_sent;
  }
  host_.send_frame(std::move(ack));
}

Packet RdmaNic::make_roce_packet(const Qp& q, PacketKind kind) {
  Packet pkt;
  pkt.kind = kind;
  pkt.created_at = host_.sim().now();
  pkt.priority = q.cfg.priority;
  Ipv4Header ip;
  ip.src = host_.ip();
  ip.dst = q.peer_ip;
  ip.dscp = q.cfg.dscp;
  ip.ecn = kind == PacketKind::kRoceData ? Ecn::kEct0 : Ecn::kNotEct;
  ip.id = host_.next_ip_id();
  pkt.ip = ip;
  pkt.udp = UdpHeader{q.udp_sport, kRoceUdpPort, 0};
  RoceBth bth;
  bth.dest_qp = q.peer_qpn;
  pkt.bth = bth;
  return pkt;
}

void RdmaNic::on_port_drain() {
  if (blocked_qpns_.empty()) return;
  std::vector<std::uint32_t> blocked;
  blocked.swap(blocked_qpns_);
  for (auto qpn : blocked) {
    auto it = qps_.find(qpn);
    if (it == qps_.end()) continue;
    Qp& q = *it->second;
    q.blocked_on_port = false;
    // Grab the freed slot synchronously: a QP whose pacer fires at the same
    // timestamp as the drain would otherwise always win the tie and starve
    // the blocked ones.
    if (q.pacer_ev == kInvalidEventId && q.next_tx_time <= host_.sim().now()) {
      pacer_fire(q.qpn);
    } else {
      arm_pacer(q);
    }
  }
}

std::pair<std::uint32_t, std::uint32_t> connect_qp_pair(Host& a, Host& b, QpConfig cfg) {
  const auto qa = a.rdma().create_qp(cfg);
  const auto qb = b.rdma().create_qp(cfg);
  a.rdma().connect_qp(qa, b.ip(), qb);
  b.rdma().connect_qp(qb, a.ip(), qa);
  return {qa, qb};
}

}  // namespace rocelab
