// NIC Memory Translation Table cache (§4.4): 2K entries translating
// virtual pages; misses stall the receive pipeline while the NIC fetches
// the entry from host DRAM — the root cause of the slow-receiver symptom.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/nic/config.h"

namespace rocelab {

class MttCache {
 public:
  explicit MttCache(const MttConfig& cfg) : cfg_(cfg) {}

  /// Translate an access at `address` (within the registered region).
  /// Returns true on hit; on miss, inserts the page with LRU eviction.
  bool access(std::int64_t address);

  [[nodiscard]] std::int64_t hits() const { return hits_; }
  [[nodiscard]] std::int64_t misses() const { return misses_; }
  [[nodiscard]] double miss_rate() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(total);
  }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] const MttConfig& config() const { return cfg_; }

 private:
  MttConfig cfg_;
  std::list<std::int64_t> lru_;  // front = most recent page id
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> map_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

inline bool MttCache::access(std::int64_t address) {
  const std::int64_t page = address / cfg_.page_bytes;
  if (auto it = map_.find(page); it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (static_cast<int>(map_.size()) >= cfg_.entries) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(page);
  map_[page] = lru_.begin();
  return false;
}

}  // namespace rocelab
