// Flow-level ECMP collision analysis for the Fig. 7 experiment: the exact
// connection count of the paper (2 podsets x 24 ToR pairs x 8 servers x 8
// QPs, both directions) hashed over ToR uplinks and leaf-spine links, with
// max-min fair rate allocation. Reproduces the ~60% utilization headline
// ("caused by ECMP hash collision, not PFC or HOL blocking") at full scale
// without packet-level cost.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace rocelab {

struct EcmpAnalysisParams {
  int tor_pairs = 24;        // ToR i of podset 0 paired with ToR i of podset 1
  int servers_per_tor = 8;   // active servers per ToR
  int conns_per_server = 8;  // QPs per server pair
  int leaves = 4;            // ToR uplinks (one per leaf)
  int spines_per_leaf = 16;  // leaf uplinks
  Bandwidth link_bw = gbps(40);
  Bandwidth nic_bw = gbps(40);
  bool bidirectional = true;  // paper's pairs send both ways
  std::uint64_t seed = 1;
};

struct EcmpAnalysisResult {
  int total_connections = 0;
  /// Uniform-rate model: every connection converges to the equal share of
  /// the WORST-collided link (the paper observes exactly this uniformity —
  /// "every server was sending and receiving at 8Gb/s"). With ~40 flows on
  /// the most collided of the 128 leaf-spine links this yields the paper's
  /// 3.0/5.12 = 60%.
  double aggregate_gbps = 0.0;
  double utilization = 0.0;
  /// Equal-share-at-bottleneck model (Hedera-style, as the paper's [2]):
  /// each connection gets min over its own links of capacity/flow-count.
  double aggregate_bottleneck_gbps = 0.0;
  double utilization_bottleneck = 0.0;
  /// Max-min fair upper bound (a perfectly work-conserving allocator would
  /// reclaim the collision losses; real DCQCN does not).
  double aggregate_maxmin_gbps = 0.0;
  double utilization_maxmin = 0.0;
  double capacity_gbps = 0.0;        // all leaf-spine links, directions in use
  double max_leaf_spine_flows = 0;   // most collided leaf-spine link
  double min_leaf_spine_flows = 0;   // least loaded (nonzero topology) link
  double mean_per_server_gbps = 0.0;
};

[[nodiscard]] EcmpAnalysisResult analyze_clos_ecmp(const EcmpAnalysisParams& params);

/// Generic max-min (progressive filling) allocator: flows index into
/// `flow_links`; each link has a capacity. Returns per-flow rates.
[[nodiscard]] std::vector<double> max_min_rates(
    const std::vector<std::vector<int>>& flow_links, const std::vector<double>& link_capacity);

/// Equal-share-at-bottleneck allocator: each flow gets
/// min over its links of capacity(link) / raw-flow-count(link).
[[nodiscard]] std::vector<double> bottleneck_share_rates(
    const std::vector<std::vector<int>>& flow_links, const std::vector<double>& link_capacity);

}  // namespace rocelab
