// trace_route: the deterministic hop sequence a flow takes through the
// fabric. Because ECMP here (as in production) is a pure function of the
// 5-tuple and each switch's hash seed, the control plane can compute any
// flow's path exactly — the property §6's localization workflow leans on
// when triangulating pingmesh failures onto physical links.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/topo/fabric.h"

namespace rocelab {

/// One directed hop: `node` transmits on egress `port`. The (node, port)
/// pair names one direction of a physical link — the granularity at which
/// gray failures live.
struct TraceHop {
  const Node* node = nullptr;
  int port = -1;
  bool operator==(const TraceHop&) const = default;
};

/// Egress-hop sequence a RoCE flow from `src` to `dst` with UDP source port
/// `sport` takes under the *current* routing and link state. Mirrors the
/// forwarding path exactly — same per-switch ECMP hash, same local-delivery
/// precedence — but with zero side effects (no failover counters, no spray
/// pointer movement), so tracing never perturbs the determinism digest.
/// The final hop is the ToR port facing `dst`; the trace stops early if
/// routing blackholes the flow.
[[nodiscard]] std::vector<TraceHop> trace_route(const Fabric& fabric, const Host& src,
                                                const Host& dst, std::uint16_t sport);

/// "host-a:0 -> tor-0:5 -> leaf-1:2" — for logs and localizer reports.
[[nodiscard]] std::string trace_text(const std::vector<TraceHop>& hops);

}  // namespace rocelab
