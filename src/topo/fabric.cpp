#include "src/topo/fabric.h"

#include <algorithm>
#include <stdexcept>

namespace rocelab {

void Fabric::set_build_shard(int shard) {
  build_shard_ = std::clamp(shard, 0, group_.shard_count() - 1);
}

Host& Fabric::add_host(std::string name, HostConfig cfg) {
  hosts_.push_back(std::make_unique<Host>(group_.shard(build_shard_), name, cfg));
  hosts_by_name_[name] = hosts_.back().get();
  return *hosts_.back();
}

Switch& Fabric::add_switch(std::string name, SwitchConfig cfg, int num_ports) {
  switches_.push_back(std::make_unique<Switch>(group_.shard(build_shard_), name, cfg, num_ports));
  switches_by_name_[name] = switches_.back().get();
  return *switches_.back();
}

void Fabric::attach_host(Host& h, Switch& sw, int sw_port, Bandwidth bw, Time prop_delay) {
  connect_nodes(h, 0, sw, sw_port, bw, prop_delay);
  sw.set_port_role(sw_port, PortRole::kServerFacing);
  sw.arp_table().install(h.ip(), h.mac(), sw.sim().now());
  sw.mac_table().learn(h.mac(), sw_port, sw.sim().now());
  attachments_.push_back(Attachment{&h, &sw, sw_port});
}

void Fabric::attach_switches(Switch& a, int pa, Switch& b, int pb, Bandwidth bw,
                             Time prop_delay) {
  connect_nodes(a, pa, b, pb, bw, prop_delay);
}

void Fabric::kill_host(Host& h) {
  h.set_dead(true);
  if (!h.port(0).connected()) return;
  auto* tor = dynamic_cast<Switch*>(h.port(0).peer());
  if (tor != nullptr) tor->mac_table().expire(h.mac());
}

void Fabric::revive_host(Host& h) {
  h.set_dead(false);
  if (!h.port(0).connected()) return;
  auto* tor = dynamic_cast<Switch*>(h.port(0).peer());
  if (tor != nullptr) tor->mac_table().learn(h.mac(), h.port(0).peer_port(), tor->sim().now());
}

void Fabric::reinstall_host_entries(Switch& sw) {
  for (const auto& a : attachments_) {
    if (a.sw != &sw) continue;
    sw.arp_table().install(a.host->ip(), a.host->mac(), sw.sim().now());
    sw.mac_table().learn(a.host->mac(), a.sw_port, sw.sim().now());
  }
}

std::vector<std::pair<Switch*, int>> Fabric::drain_switch(Switch& target) {
  std::vector<std::pair<Switch*, int>> zeroed;
  if (target.drained()) return zeroed;
  for (const auto& swp : switches_) {
    Switch* s = swp.get();
    if (s == &target) continue;
    for (int p = 0; p < s->port_count(); ++p) {
      if (s->port(p).peer() != &target) continue;
      if (s->port_weight(p) == 0) continue;  // someone else already costed it out
      s->set_port_weight(p, 0);
      zeroed.emplace_back(s, p);
    }
  }
  target.set_drained(true);
  return zeroed;
}

void Fabric::undrain_switch(Switch& target, const std::vector<std::pair<Switch*, int>>& members) {
  for (const auto& [s, p] : members) s->restore_port_weight(p);
  target.set_drained(false);
}

Host* Fabric::host_by_name(const std::string& name) const {
  auto it = hosts_by_name_.find(name);
  return it == hosts_by_name_.end() ? nullptr : it->second;
}

Switch* Fabric::switch_by_name(const std::string& name) const {
  auto it = switches_by_name_.find(name);
  return it == switches_by_name_.end() ? nullptr : it->second;
}

std::vector<Switch*> Fabric::switch_ptrs() const {
  std::vector<Switch*> out;
  out.reserve(switches_.size());
  for (const auto& s : switches_) out.push_back(s.get());
  return out;
}

int Fabric::attachment_port(const Switch& sw, const Host& h) const {
  for (const auto& a : attachments_) {
    if (a.sw == &sw && a.host == &h) return a.sw_port;
  }
  return -1;
}

}  // namespace rocelab
