#include "src/topo/trace.h"

#include <sstream>

namespace rocelab {

std::vector<TraceHop> trace_route(const Fabric& fabric, const Host& src, const Host& dst,
                                  std::uint16_t sport) {
  // A metadata-only probe carrying exactly the fields five_tuple_hash
  // consumes, built the way RdmaNic::make_roce_packet stamps real traffic
  // (same protocol default, dport 4791) so every ECMP decision matches.
  Packet probe;
  probe.kind = PacketKind::kRoceData;
  Ipv4Header ip;
  ip.src = src.ip();
  ip.dst = dst.ip();
  probe.ip = ip;
  probe.udp = UdpHeader{sport, kRoceUdpPort, 0};

  std::vector<TraceHop> hops;
  const Node* at = &src;
  int out = 0;  // hosts transmit on their single port 0
  // Bounded walk: a Clos path is <= 2*tiers hops; 16 guards against routing
  // loops from inconsistent tables ever wedging the tracer.
  for (int i = 0; i < 16; ++i) {
    hops.push_back(TraceHop{at, out});
    const EgressPort& egress = at->port(out);
    if (!egress.connected()) break;
    Node* next = egress.peer();
    if (next == static_cast<const Node*>(&dst)) break;  // delivered
    auto* sw = dynamic_cast<Switch*>(next);
    if (sw == nullptr) break;  // landed on a host that is not dst: mis-route
    // Local delivery wins over L3 routing, as in Switch::forward.
    int nxt = fabric.attachment_port(*sw, dst);
    if (nxt < 0) nxt = sw->route_port(probe);
    if (nxt < 0) break;  // routing blackhole (no usable member)
    at = next;
    out = nxt;
  }
  return hops;
}

std::string trace_text(const std::vector<TraceHop>& hops) {
  std::ostringstream os;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i > 0) os << " -> ";
    os << hops[i].node->name() << ':' << hops[i].port;
  }
  return os.str();
}

}  // namespace rocelab
