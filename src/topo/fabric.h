// Fabric: owns the sharded simulator (a ShardGroup) and every node, and
// provides wiring helpers (host attachment installs ARP entries, MAC
// entries, port roles, and the gateway convention).
//
// Sharding: the fabric is built with a shard count (default 1); a builder
// (ClosFabric) assigns each node to a shard via set_build_shard before
// constructing it. Data-plane nodes schedule on their own shard;
// fabric-global actors (chaos, monitors, healers) schedule on
// control_sim(), which serializes between parallel windows — with one
// shard both are the same Simulator and behaviour is byte-identical to the
// pre-PDES single-threaded core.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/nic/host.h"
#include "src/sim/shard_group.h"
#include "src/sim/simulator.h"
#include "src/switch/sw.h"

namespace rocelab {

class Fabric {
 public:
  explicit Fabric(int shards = 1) : group_(shards) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Shard 0 — the conventional handle for run control (run/run_until on
  /// any shard drives the whole group) and for hand-built single-shard
  /// fabrics, where it is the only shard.
  Simulator& sim() { return group_.shard(0); }
  [[nodiscard]] const Simulator& sim() const {
    return const_cast<Fabric*>(this)->group_.shard(0);
  }
  /// The control lane: fault injection, monitors, and healers schedule here
  /// so their events run serialized at synchronized horizons and may safely
  /// touch any shard's nodes. Aliases sim() when shards == 1.
  Simulator& control_sim() { return group_.control(); }
  ShardGroup& group() { return group_; }
  [[nodiscard]] const ShardGroup& group() const { return group_; }
  [[nodiscard]] int shard_count() const { return group_.shard_count(); }

  /// Shard that add_host/add_switch place new nodes on (builder hint;
  /// clamped to the group's shard range). Hand-built fabrics that never
  /// call this get everything on shard 0.
  void set_build_shard(int shard);
  [[nodiscard]] int build_shard() const { return build_shard_; }

  Host& add_host(std::string name, HostConfig cfg = {});
  Switch& add_switch(std::string name, SwitchConfig cfg, int num_ports);

  /// Wire a host's port 0 to `sw_port`, mark the port server-facing, and
  /// install the host's ARP + MAC entries at the switch.
  void attach_host(Host& h, Switch& sw, int sw_port, Bandwidth bw, Time prop_delay);

  /// Wire two switches.
  void attach_switches(Switch& a, int pa, Switch& b, int pb, Bandwidth bw, Time prop_delay);

  /// Kill a server (§4.2 "dead server"): it stops sending/receiving and —
  /// as if the 5-minute MAC aging elapsed — its MAC table entry at the ToR
  /// disappears while the 4-hour ARP entry stays.
  void kill_host(Host& h);

  /// Undo kill_host: the server comes back and — as its first frames are
  /// learned — its MAC entry reappears at the ToR.
  void revive_host(Host& h);

  /// Re-install the ARP + MAC entries of every host attached to `sw`, as
  /// the management plane would after the switch reboots with empty tables.
  void reinstall_host_entries(Switch& sw);

  /// Drain `target` (§5/§6 ops mitigation, one action instead of N
  /// cost-outs): a switch's ECMP memberships live in its *neighbors'*
  /// tables, so draining zero-weights every neighbor port wired to it —
  /// each through that neighbor's epoch-versioned weighted tables, so
  /// memoized flows re-hash immediately. Groups whose only member faces the
  /// target fall back to plain ECMP (the data-plane capacity floor), so
  /// last-resort reachability — e.g. a leaf's single down-route to a ToR —
  /// survives a drain. Returns the (switch, port) memberships actually
  /// zeroed, in deterministic fabric order; pass that list to
  /// undrain_switch so weights someone else already zeroed (a concurrent
  /// cost-out) are not resurrected. Idempotent: draining a drained switch
  /// returns empty.
  std::vector<std::pair<Switch*, int>> drain_switch(Switch& target);
  void undrain_switch(Switch& target, const std::vector<std::pair<Switch*, int>>& members);

  [[nodiscard]] const std::vector<std::unique_ptr<Host>>& hosts() const { return hosts_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Switch>>& switches() const { return switches_; }
  [[nodiscard]] Host* host_by_name(const std::string& name) const;
  [[nodiscard]] Switch* switch_by_name(const std::string& name) const;
  [[nodiscard]] std::vector<Switch*> switch_ptrs() const;
  /// The switch port `h` is attached at, or -1 if `h` is not attached to
  /// `sw` (path tracing uses this for the final ToR->server hop).
  [[nodiscard]] int attachment_port(const Switch& sw, const Host& h) const;

 private:
  struct Attachment {
    Host* host = nullptr;
    Switch* sw = nullptr;
    int sw_port = -1;
  };

  // Declared first: nodes (whose port destructors deregister metrics) must
  // destruct before the group and its registry.
  ShardGroup group_;
  int build_shard_ = 0;
  std::vector<Attachment> attachments_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::unordered_map<std::string, Host*> hosts_by_name_;
  std::unordered_map<std::string, Switch*> switches_by_name_;
};

}  // namespace rocelab
