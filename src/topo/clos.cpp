#include "src/topo/clos.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace rocelab {

namespace {
/// The partition cannot be finer than one podset (intra-podset cables are
/// too short to serve as lookahead boundaries).
int effective_shards(const ClosParams& p) {
  return std::clamp(p.shards, 1, std::min(p.podsets, static_cast<int>(kMaxShards)));
}
}  // namespace

ClosFabric::ClosFabric(const ClosParams& p) : params_(p), fabric_(effective_shards(p)) {
  if (p.spines > 0 && p.spines % p.leaves_per_podset != 0) {
    throw std::invalid_argument("spines must be a multiple of leaves_per_podset");
  }
  const int spines_per_leaf = p.spines > 0 ? p.spines / p.leaves_per_podset : 0;
  const Time server_delay = propagation_delay_for_meters(p.server_cable_m);
  const Time tor_leaf_delay = propagation_delay_for_meters(p.tor_leaf_m);
  const Time leaf_spine_delay = propagation_delay_for_meters(p.leaf_spine_m);

  // --- create switches -------------------------------------------------------
  servers_.resize(static_cast<std::size_t>(p.podsets));
  tors_.resize(static_cast<std::size_t>(p.podsets));
  leaves_.resize(static_cast<std::size_t>(p.podsets));
  for (int ps = 0; ps < p.podsets; ++ps) {
    fabric_.set_build_shard(shard_of_podset(ps));
    for (int t = 0; t < p.tors_per_podset; ++t) {
      auto& sw = fabric_.add_switch("tor-" + std::to_string(ps) + "-" + std::to_string(t),
                                    p.tor_config, p.servers_per_tor + p.leaves_per_podset);
      tors_[static_cast<std::size_t>(ps)].push_back(&sw);
    }
    for (int l = 0; l < p.leaves_per_podset; ++l) {
      auto& sw = fabric_.add_switch("leaf-" + std::to_string(ps) + "-" + std::to_string(l),
                                    p.leaf_config, p.tors_per_podset + spines_per_leaf);
      leaves_[static_cast<std::size_t>(ps)].push_back(&sw);
    }
  }
  for (int s = 0; s < p.spines; ++s) {
    // Spines have no podset affinity (each wires to every podset), so
    // round-robin spreads their event load across the shards.
    fabric_.set_build_shard(s % fabric_.shard_count());
    auto& sw = fabric_.add_switch("spine-" + std::to_string(s), p.spine_config, p.podsets);
    spines_.push_back(&sw);
  }

  // --- servers + ToR <-> server wiring -----------------------------------------
  for (int ps = 0; ps < p.podsets; ++ps) {
    fabric_.set_build_shard(shard_of_podset(ps));
    servers_[static_cast<std::size_t>(ps)].resize(static_cast<std::size_t>(p.tors_per_podset));
    for (int t = 0; t < p.tors_per_podset; ++t) {
      Switch& tor_sw = tor(ps, t);
      tor_sw.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, static_cast<std::uint8_t>(ps),
                                                               static_cast<std::uint8_t>(t), 0),
                                         24});
      for (int i = 0; i < p.servers_per_tor; ++i) {
        auto& h = fabric_.add_host("srv-" + std::to_string(ps) + "-" + std::to_string(t) + "-" +
                                       std::to_string(i),
                                   p.host_config);
        h.set_ip(server_ip(ps, t, i));
        fabric_.attach_host(h, tor_sw, i, p.link_bw, server_delay);
        servers_[static_cast<std::size_t>(ps)][static_cast<std::size_t>(t)].push_back(&h);
      }
    }
  }

  // --- ToR <-> Leaf wiring + routes ----------------------------------------------
  for (int ps = 0; ps < p.podsets; ++ps) {
    for (int t = 0; t < p.tors_per_podset; ++t) {
      Switch& tor_sw = tor(ps, t);
      std::vector<int> uplinks;
      for (int l = 0; l < p.leaves_per_podset; ++l) {
        const int tor_port = p.servers_per_tor + l;
        fabric_.attach_switches(tor_sw, tor_port, leaf(ps, l), t, p.link_bw, tor_leaf_delay);
        uplinks.push_back(tor_port);
      }
      tor_sw.add_route(Ipv4Prefix{Ipv4Addr{}, 0}, uplinks);  // default: up, ECMP
    }
    for (int l = 0; l < p.leaves_per_podset; ++l) {
      Switch& leaf_sw = leaf(ps, l);
      for (int t = 0; t < p.tors_per_podset; ++t) {
        leaf_sw.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, static_cast<std::uint8_t>(ps),
                                                           static_cast<std::uint8_t>(t), 0),
                                     24},
                          {t});
      }
    }
  }

  // --- Leaf <-> Spine wiring + routes ---------------------------------------------
  if (p.spines > 0) {
    for (int ps = 0; ps < p.podsets; ++ps) {
      for (int l = 0; l < p.leaves_per_podset; ++l) {
        Switch& leaf_sw = leaf(ps, l);
        std::vector<int> uplinks;
        for (int k = 0; k < spines_per_leaf; ++k) {
          const int spine_index = l * spines_per_leaf + k;
          const int leaf_port = p.tors_per_podset + k;
          fabric_.attach_switches(leaf_sw, leaf_port, spine(spine_index), ps, p.link_bw,
                                  leaf_spine_delay);
          uplinks.push_back(leaf_port);
        }
        leaf_sw.add_route(Ipv4Prefix{Ipv4Addr{}, 0}, uplinks);  // default: up, ECMP
      }
    }
    for (int s = 0; s < p.spines; ++s) {
      for (int ps = 0; ps < p.podsets; ++ps) {
        spine(s).add_route(
            Ipv4Prefix{Ipv4Addr::from_octets(10, static_cast<std::uint8_t>(ps), 0, 0), 16}, {ps});
      }
    }
  }
  fabric_.set_build_shard(0);  // anything added by hand afterwards: shard 0
}

std::vector<const EgressPort*> ClosFabric::leaf_spine_ports() const {
  std::vector<const EgressPort*> out;
  const int spines_per_leaf =
      params_.spines > 0 ? params_.spines / params_.leaves_per_podset : 0;
  for (const auto& podset : leaves_) {
    for (const Switch* leaf_sw : podset) {
      for (int k = 0; k < spines_per_leaf; ++k) {
        out.push_back(&leaf_sw->port(params_.tors_per_podset + k));
      }
    }
  }
  return out;
}

}  // namespace rocelab
