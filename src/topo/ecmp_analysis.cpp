#include "src/topo/ecmp_analysis.h"

#include <algorithm>
#include <limits>

#include "src/net/packet.h"

namespace rocelab {

std::vector<double> max_min_rates(const std::vector<std::vector<int>>& flow_links,
                                  const std::vector<double>& link_capacity) {
  const std::size_t nf = flow_links.size();
  const std::size_t nl = link_capacity.size();
  std::vector<double> rate(nf, 0.0);
  std::vector<bool> frozen(nf, false);
  std::vector<double> cap_left(link_capacity);
  std::vector<int> unfrozen_count(nl, 0);
  for (std::size_t f = 0; f < nf; ++f) {
    for (int l : flow_links[f]) ++unfrozen_count[static_cast<std::size_t>(l)];
  }

  std::size_t remaining = nf;
  while (remaining > 0) {
    // Find the tightest link.
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_link = nl;
    for (std::size_t l = 0; l < nl; ++l) {
      if (unfrozen_count[l] == 0) continue;
      const double share = cap_left[l] / unfrozen_count[l];
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    if (best_link == nl) break;  // flows with no links
    // Freeze every unfrozen flow crossing it at the fair share.
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      bool on_link = false;
      for (int l : flow_links[f]) {
        if (static_cast<std::size_t>(l) == best_link) {
          on_link = true;
          break;
        }
      }
      if (!on_link) continue;
      frozen[f] = true;
      rate[f] = best_share;
      --remaining;
      for (int l : flow_links[f]) {
        cap_left[static_cast<std::size_t>(l)] -= best_share;
        --unfrozen_count[static_cast<std::size_t>(l)];
      }
    }
    cap_left[best_link] = 0;
    unfrozen_count[best_link] = 0;
  }
  return rate;
}

std::vector<double> bottleneck_share_rates(const std::vector<std::vector<int>>& flow_links,
                                           const std::vector<double>& link_capacity) {
  std::vector<int> count(link_capacity.size(), 0);
  for (const auto& links : flow_links) {
    for (int l : links) ++count[static_cast<std::size_t>(l)];
  }
  std::vector<double> rate(flow_links.size(), 0.0);
  for (std::size_t f = 0; f < flow_links.size(); ++f) {
    double share = std::numeric_limits<double>::infinity();
    for (int l : flow_links[f]) {
      const auto i = static_cast<std::size_t>(l);
      share = std::min(share, link_capacity[i] / count[i]);
    }
    rate[f] = flow_links[f].empty() ? 0.0 : share;
  }
  return rate;
}

EcmpAnalysisResult analyze_clos_ecmp(const EcmpAnalysisParams& p) {
  // Directed link ids for one traffic direction (src podset -> dst podset):
  //   src NIC            : per (src podset, tor, server)
  //   ToR uplink         : per (src podset, tor, leaf)
  //   leaf-spine up      : per (src podset, leaf, spine slot)
  //   spine-leaf down    : per (dst podset, leaf, spine slot)
  //   leaf-ToR down      : per (dst podset, tor, leaf)
  //   dst NIC            : per (dst podset, tor, server)
  // Both traffic directions exist when bidirectional; all ids are distinct
  // because they are direction-qualified.
  std::vector<double> caps;
  std::vector<std::vector<int>> flows;
  auto new_link = [&caps](Bandwidth bw) {
    caps.push_back(static_cast<double>(bw) / 1e9);
    return static_cast<int>(caps.size()) - 1;
  };

  struct DirIds {
    std::vector<int> src_nic, dst_nic;       // [tor*servers + s]
    std::vector<int> tor_up, tor_down;       // [tor*leaves + l]
    std::vector<int> leaf_up, leaf_down;     // [leaf*spl + k]
  };
  const int dirs = p.bidirectional ? 2 : 1;
  std::vector<DirIds> ids(static_cast<std::size_t>(dirs));
  for (int d = 0; d < dirs; ++d) {
    auto& v = ids[static_cast<std::size_t>(d)];
    for (int i = 0; i < p.tor_pairs * p.servers_per_tor; ++i) {
      v.src_nic.push_back(new_link(p.nic_bw));
      v.dst_nic.push_back(new_link(p.nic_bw));
    }
    for (int i = 0; i < p.tor_pairs * p.leaves; ++i) {
      v.tor_up.push_back(new_link(p.link_bw));
      v.tor_down.push_back(new_link(p.link_bw));
    }
    for (int i = 0; i < p.leaves * p.spines_per_leaf; ++i) {
      v.leaf_up.push_back(new_link(p.link_bw));
      v.leaf_down.push_back(new_link(p.link_bw));
    }
  }

  std::vector<double> leaf_spine_flow_count(
      static_cast<std::size_t>(dirs * p.leaves * p.spines_per_leaf), 0.0);

  std::uint64_t h = p.seed;
  for (int d = 0; d < dirs; ++d) {
    auto& v = ids[static_cast<std::size_t>(d)];
    for (int t = 0; t < p.tor_pairs; ++t) {
      for (int s = 0; s < p.servers_per_tor; ++s) {
        for (int c = 0; c < p.conns_per_server; ++c) {
          // Per-connection ECMP choices: leaf at the ToR, spine at the leaf.
          // Independent hashes per tier model per-switch hash seeds.
          h = mix64(h + 0x9e37);
          const int leaf = static_cast<int>(h % static_cast<std::uint64_t>(p.leaves));
          h = mix64(h);
          const int k = static_cast<int>(h % static_cast<std::uint64_t>(p.spines_per_leaf));
          const int srv = t * p.servers_per_tor + s;
          const int tl = t * p.leaves + leaf;
          const int lk = leaf * p.spines_per_leaf + k;
          flows.push_back({v.src_nic[static_cast<std::size_t>(srv)],
                           v.tor_up[static_cast<std::size_t>(tl)],
                           v.leaf_up[static_cast<std::size_t>(lk)],
                           v.leaf_down[static_cast<std::size_t>(lk)],
                           v.tor_down[static_cast<std::size_t>(tl)],
                           v.dst_nic[static_cast<std::size_t>(srv)]});
          leaf_spine_flow_count[static_cast<std::size_t>(d * p.leaves * p.spines_per_leaf + lk)] +=
              1.0;
        }
      }
    }
  }

  const auto rates = bottleneck_share_rates(flows, caps);
  const auto maxmin = max_min_rates(flows, caps);

  EcmpAnalysisResult r;
  r.total_connections = static_cast<int>(flows.size());
  for (double x : rates) r.aggregate_bottleneck_gbps += x;
  for (double x : maxmin) r.aggregate_maxmin_gbps += x;
  // Uniform-rate model: the fabric-wide per-connection rate is the equal
  // share of the single most-collided link.
  double worst_share = std::numeric_limits<double>::infinity();
  for (double x : rates) worst_share = std::min(worst_share, x);
  r.aggregate_gbps = worst_share * static_cast<double>(flows.size());
  // Fig. 7's capacity figure: the 128 leaf-spine links (64 per podset).
  r.capacity_gbps = static_cast<double>(dirs * p.leaves * p.spines_per_leaf) *
                    static_cast<double>(p.link_bw) / 1e9;
  r.utilization = r.aggregate_gbps / r.capacity_gbps;
  r.utilization_bottleneck = r.aggregate_bottleneck_gbps / r.capacity_gbps;
  r.utilization_maxmin = r.aggregate_maxmin_gbps / r.capacity_gbps;
  r.max_leaf_spine_flows =
      *std::max_element(leaf_spine_flow_count.begin(), leaf_spine_flow_count.end());
  r.min_leaf_spine_flows =
      *std::min_element(leaf_spine_flow_count.begin(), leaf_spine_flow_count.end());
  r.mean_per_server_gbps =
      r.aggregate_gbps / static_cast<double>(dirs * p.tor_pairs * p.servers_per_tor);
  return r;
}

}  // namespace rocelab
