// Clos fabric builder matching §2 / Fig. 1 and the experiment topologies of
// Fig. 7 (two podsets, three tiers) and Fig. 8 (one podset, two tiers).
//
// Structure per podset: `tors_per_podset` ToRs each with
// `servers_per_tor` servers and one uplink to each of the podset's
// `leaves_per_podset` Leaf switches. Each Leaf has `spines / leaves_per_podset`
// uplinks; Spine k connects to leaf (k / spines_per_leaf) of every podset.
// Routing is up-down: ToRs default-route over their leaf uplinks (ECMP),
// leaves route podset subnets down and default-route over spines (ECMP),
// spines route podset prefixes down. IPs: server i of ToR t in podset p is
// 10.p.t.(i+1), subnet 10.p.t.0/24.
#pragma once

#include <memory>
#include <vector>

#include "src/topo/fabric.h"

namespace rocelab {

struct ClosParams {
  int podsets = 2;
  int leaves_per_podset = 4;
  int tors_per_podset = 24;
  int servers_per_tor = 24;
  int spines = 64;  // 0 => two-tier fabric (no spine layer)
  /// PDES shards. Clamped to [1, podsets]: the partition is by podset
  /// (podset ps -> shard ps*shards/podsets, spines round-robin), so every
  /// shard boundary is a leaf<->spine cable and the conservative lookahead
  /// is the leaf_spine propagation delay. 1 = classic single-threaded run.
  int shards = 1;
  Bandwidth link_bw = gbps(40);
  double server_cable_m = 2.0;
  double tor_leaf_m = 20.0;
  double leaf_spine_m = 300.0;
  SwitchConfig tor_config;
  SwitchConfig leaf_config;
  SwitchConfig spine_config;
  HostConfig host_config;
};

class ClosFabric {
 public:
  explicit ClosFabric(const ClosParams& params);

  Fabric& fabric() { return fabric_; }
  Simulator& sim() { return fabric_.sim(); }
  [[nodiscard]] const ClosParams& params() const { return params_; }

  /// The shard a podset's switches and servers live on.
  [[nodiscard]] int shard_of_podset(int podset) const {
    return podset * fabric_.shard_count() / params_.podsets;
  }

  [[nodiscard]] Host& server(int podset, int tor, int i) {
    return *servers_[static_cast<std::size_t>(podset)][static_cast<std::size_t>(tor)]
                    [static_cast<std::size_t>(i)];
  }
  [[nodiscard]] Switch& tor(int podset, int t) {
    return *tors_[static_cast<std::size_t>(podset)][static_cast<std::size_t>(t)];
  }
  /// Port index on any ToR for its uplink to leaf `l` of the podset:
  /// ports [0, servers_per_tor) face servers, then one uplink per leaf in
  /// leaf order. (The self-healing plane costs these out of the ToR's
  /// default-route ECMP group.)
  [[nodiscard]] int tor_uplink_port(int l) const { return params_.servers_per_tor + l; }
  [[nodiscard]] Switch& leaf(int podset, int l) {
    return *leaves_[static_cast<std::size_t>(podset)][static_cast<std::size_t>(l)];
  }
  [[nodiscard]] Switch& spine(int s) { return *spines_[static_cast<std::size_t>(s)]; }

  [[nodiscard]] int num_servers() const {
    return params_.podsets * params_.tors_per_podset * params_.servers_per_tor;
  }
  /// All leaf->spine EgressPorts (the Fig. 7 bottleneck links).
  [[nodiscard]] std::vector<const EgressPort*> leaf_spine_ports() const;

  static Ipv4Addr server_ip(int podset, int tor, int i) {
    return Ipv4Addr::from_octets(10, static_cast<std::uint8_t>(podset),
                                 static_cast<std::uint8_t>(tor),
                                 static_cast<std::uint8_t>(i + 1));
  }

 private:
  ClosParams params_;
  Fabric fabric_;
  std::vector<std::vector<std::vector<Host*>>> servers_;
  std::vector<std::vector<Switch*>> tors_;
  std::vector<std::vector<Switch*>> leaves_;
  std::vector<Switch*> spines_;
};

}  // namespace rocelab
