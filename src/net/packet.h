// The simulation packet: header metadata plus a virtual payload size.
// Copyable — switch flooding duplicates packets; the shared buffer charge
// token keeps MMU accounting correct across copies.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/common/units.h"
#include "src/net/headers.h"

namespace rocelab {

enum class PacketKind : std::uint8_t {
  kRoceData,      // SEND/WRITE segment or READ response segment
  kRoceReadReq,   // READ request from requester to responder
  kRoceAtomicReq, // CAS/FAA request from requester to responder (AtomicETH)
  kRoceAck,       // ACK/NAK (AETH); atomic ACKs also carry AtomicAckETH
  kCnp,           // DCQCN congestion notification packet
  kTcp,           // TCP segment
  kPfcPause,      // 802.1Qbb pause frame (link-local, never forwarded)
  kRaw,           // generic UDP datagram (probes, fillers)
};

struct Packet {
  PacketKind kind = PacketKind::kRaw;
  std::int64_t frame_bytes = kMinEthFrameBytes;  // on-wire size incl. FCS
  std::int32_t payload_bytes = 0;

  EthernetHeader eth;
  std::optional<Ipv4Header> ip;
  std::optional<UdpHeader> udp;
  std::optional<RoceBth> bth;
  std::optional<RoceAeth> aeth;
  std::optional<RoceSackExt> sack;  // selective repeat: OOO bitmap after AETH
  std::optional<RoceAtomicEth> atomic;         // kRoceAtomicReq: CAS/FAA operands
  std::optional<RoceAtomicAckEth> atomic_ack;  // kAtomicAck: original value
  std::optional<TcpHeaderMeta> tcp;
  std::optional<PfcFrame> pfc;

  /// Traffic class / priority group, assigned by the ingress classifier of
  /// each device from DSCP (or VLAN PCP in legacy mode).
  int priority = 0;
  /// Whether the classifier placed the packet in a lossless (PFC) class.
  bool lossless = false;
  /// Set when a switch flooded this copy (unknown MAC -> all ports).
  bool flooded = false;
  /// Set by a link impairment whose corruption escaped the FCS check: the
  /// frame was delivered but its payload is damaged. Only an end-to-end
  /// integrity check (the NIC's ICRC verify) can see this.
  bool corrupt = false;

  std::uint64_t msg_id = 0;    // application correlation id
  std::int64_t read_length = 0;  // kRoceReadReq: bytes requested
  Time created_at = 0;         // for latency accounting

  /// Switch shared-buffer accounting token: released (RAII) when every copy
  /// inside the owning switch is gone and the wire copy has departed.
  std::shared_ptr<void> charge;
  /// Ingress port at the device currently holding the packet (set by the
  /// switch on admission; used for buffer-dependency diagnostics).
  int mmu_in_port = -1;

  /// The fields five_tuple_hash() actually feeds into the mixer, extracted
  /// once per packet. ECMP hashes the same packet at every tier (with a
  /// different per-switch seed); caching the extraction skips the repeated
  /// std::optional probing without changing any hash value.
  struct FlowTuple {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint32_t ports = 0;  // (sport << 16) | dport; UDP preferred over TCP
    std::uint8_t proto = 0;
    bool has_ip = false;
    friend bool operator==(const FlowTuple&, const FlowTuple&) = default;
  };

  /// Memoized flow-tuple extraction. Copies carry the cache (headers travel
  /// with them). Code that mutates ip/udp/tcp after the packet has been
  /// hashed must call invalidate_flow_cache().
  [[nodiscard]] const FlowTuple& flow_tuple() const {
    if (!flow_cached_) {
      flow_cache_ = extract_flow_tuple();
      flow_cached_ = true;
    }
    return flow_cache_;
  }
  void invalidate_flow_cache() { flow_cached_ = false; }

  [[nodiscard]] std::string summary() const;

 private:
  [[nodiscard]] FlowTuple extract_flow_tuple() const;

  mutable FlowTuple flow_cache_;
  mutable bool flow_cached_ = false;
};

/// Deterministic 5-tuple hash used for ECMP next-hop selection. `seed`
/// differs per switch so consecutive tiers don't make correlated choices.
[[nodiscard]] std::uint64_t five_tuple_hash(const Packet& p, std::uint64_t seed);

/// splitmix64-style mixer, exposed for tests and flow-level ECMP analysis.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

}  // namespace rocelab
