// The simulation packet: header metadata plus a virtual payload size.
// Copyable — switch flooding duplicates packets; the shared buffer charge
// token keeps MMU accounting correct across copies.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/common/units.h"
#include "src/net/headers.h"

namespace rocelab {

enum class PacketKind : std::uint8_t {
  kRoceData,     // SEND/WRITE segment or READ response segment
  kRoceReadReq,  // READ request from requester to responder
  kRoceAck,      // ACK/NAK (AETH)
  kCnp,          // DCQCN congestion notification packet
  kTcp,          // TCP segment
  kPfcPause,     // 802.1Qbb pause frame (link-local, never forwarded)
  kRaw,          // generic UDP datagram (probes, fillers)
};

struct Packet {
  PacketKind kind = PacketKind::kRaw;
  std::int64_t frame_bytes = kMinEthFrameBytes;  // on-wire size incl. FCS
  std::int32_t payload_bytes = 0;

  EthernetHeader eth;
  std::optional<Ipv4Header> ip;
  std::optional<UdpHeader> udp;
  std::optional<RoceBth> bth;
  std::optional<RoceAeth> aeth;
  std::optional<TcpHeaderMeta> tcp;
  std::optional<PfcFrame> pfc;

  /// Traffic class / priority group, assigned by the ingress classifier of
  /// each device from DSCP (or VLAN PCP in legacy mode).
  int priority = 0;
  /// Whether the classifier placed the packet in a lossless (PFC) class.
  bool lossless = false;
  /// Set when a switch flooded this copy (unknown MAC -> all ports).
  bool flooded = false;

  std::uint64_t msg_id = 0;    // application correlation id
  std::int64_t read_length = 0;  // kRoceReadReq: bytes requested
  Time created_at = 0;         // for latency accounting

  /// Switch shared-buffer accounting token: released (RAII) when every copy
  /// inside the owning switch is gone and the wire copy has departed.
  std::shared_ptr<void> charge;
  /// Ingress port at the device currently holding the packet (set by the
  /// switch on admission; used for buffer-dependency diagnostics).
  int mmu_in_port = -1;

  [[nodiscard]] std::string summary() const;
};

/// Deterministic 5-tuple hash used for ECMP next-hop selection. `seed`
/// differs per switch so consecutive tiers don't make correlated choices.
[[nodiscard]] std::uint64_t five_tuple_hash(const Packet& p, std::uint64_t seed);

/// splitmix64-style mixer, exposed for tests and flow-level ECMP analysis.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

}  // namespace rocelab
