// Byte-exact wire encodings of the packet formats in Fig. 3 of the paper:
// the PFC pause frame (same in both designs), VLAN-tagged data packets
// (VLAN-based PFC), and untagged IP data packets carrying priority in DSCP
// (DSCP-based PFC). Includes a real IPv4 header checksum and IEEE 802.3
// CRC-32 FCS so the formats are verifiable, not just size-accurate.
//
// The simulator itself never serializes; these codecs validate formats
// (tests) and serve the codec micro-benchmarks.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/net/headers.h"
#include "src/net/packet.h"

namespace rocelab {

using Bytes = std::vector<std::uint8_t>;

/// IEEE 802.3 CRC-32 (reflected, poly 0xEDB88320), as used by Ethernet FCS.
[[nodiscard]] std::uint32_t crc32_ieee(std::span<const std::uint8_t> data);

/// RoCEv2 invariant CRC as the NIC's end-to-end verify models it: CRC-32
/// over the encoded BTH followed by the payload. Unlike the per-hop FCS
/// (recomputed on every link), the ICRC travels unmodified end to end, so
/// corruption that escapes a link's FCS check still fails here (§5.2).
[[nodiscard]] std::uint32_t roce_icrc(const RoceBth& bth, std::span<const std::uint8_t> payload);

/// RFC 791 IPv4 header checksum over an encoded 20-byte header.
[[nodiscard]] std::uint16_t ipv4_header_checksum(std::span<const std::uint8_t> header20);

// --- field-level encoders -------------------------------------------------

void encode_ethernet(const EthernetHeader& h, Bytes& out);  // 14 or 18 bytes
void encode_ipv4(const Ipv4Header& h, Bytes& out);          // 20 bytes, checksum filled
void encode_udp(const UdpHeader& h, Bytes& out);            // 8 bytes
void encode_bth(const RoceBth& h, Bytes& out);              // 12 bytes
void encode_aeth(const RoceAeth& h, Bytes& out);            // 4 bytes
void encode_sack(const RoceSackExt& h, Bytes& out);         // 8 bytes
void encode_atomic_eth(const RoceAtomicEth& h, Bytes& out);        // 28 bytes
void encode_atomic_ack_eth(const RoceAtomicAckEth& h, Bytes& out); // 8 bytes

struct DecodedEthernet {
  EthernetHeader header;
  std::size_t consumed = 0;
};
[[nodiscard]] std::optional<DecodedEthernet> decode_ethernet(std::span<const std::uint8_t> in);
[[nodiscard]] std::optional<Ipv4Header> decode_ipv4(std::span<const std::uint8_t> in);
[[nodiscard]] std::optional<UdpHeader> decode_udp(std::span<const std::uint8_t> in);
[[nodiscard]] std::optional<RoceBth> decode_bth(std::span<const std::uint8_t> in);
[[nodiscard]] std::optional<RoceAeth> decode_aeth(std::span<const std::uint8_t> in);
[[nodiscard]] std::optional<RoceSackExt> decode_sack(std::span<const std::uint8_t> in);
[[nodiscard]] std::optional<RoceAtomicEth> decode_atomic_eth(std::span<const std::uint8_t> in);
[[nodiscard]] std::optional<RoceAtomicAckEth> decode_atomic_ack_eth(
    std::span<const std::uint8_t> in);

// --- frame-level encoders (Fig. 3) ----------------------------------------

/// The 802.1Qbb pause frame: identical in VLAN-based and DSCP-based PFC.
/// 64 bytes: dst 01:80:C2:00:00:01, ethertype 0x8808, opcode 0x0101,
/// class-enable vector, 8 pause quanta, zero padding, FCS.
[[nodiscard]] Bytes encode_pfc_frame(const PfcFrame& pfc, MacAddr src);
[[nodiscard]] std::optional<PfcFrame> decode_pfc_frame(std::span<const std::uint8_t> frame);

enum class PfcMode {
  kVlanBased,  // Fig. 3(a): priority in VLAN PCP, data packets tagged
  kDscpBased,  // Fig. 3(b): priority in IP DSCP, data packets untagged
};

/// Encode a full RoCEv2 data frame (Ethernet/[VLAN]/IPv4/UDP/BTH/payload/
/// ICRC/FCS). In VLAN mode the priority rides in the PCP field; in DSCP
/// mode it rides in the DSCP field and no tag is emitted.
[[nodiscard]] Bytes encode_roce_frame(const Packet& pkt, PfcMode mode);

struct DecodedRoceFrame {
  EthernetHeader eth;
  Ipv4Header ip;
  UdpHeader udp;
  RoceBth bth;
  /// kAcknowledge frames: the AETH, plus the selective-repeat SACK bitmap
  /// when the 8-byte extension follows it on the wire.
  std::optional<RoceAeth> aeth;
  std::optional<RoceSackExt> sack;
  /// kCompareSwap/kFetchAdd frames: the AtomicETH operands.
  std::optional<RoceAtomicEth> atomic;
  /// kAtomicAck frames: the original value, after the AETH.
  std::optional<RoceAtomicAckEth> atomic_ack;
  std::size_t payload_bytes = 0;
  bool fcs_ok = false;
  /// End-to-end check: stored ICRC matches a recompute over the invariant
  /// region (IP header through payload, as encode_roce_frame wrote it).
  bool icrc_ok = false;
};
[[nodiscard]] std::optional<DecodedRoceFrame> decode_roce_frame(
    std::span<const std::uint8_t> frame);

}  // namespace rocelab
