#include "src/net/packet.h"

#include <cstdio>

namespace rocelab {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Packet::FlowTuple Packet::extract_flow_tuple() const {
  FlowTuple t;
  if (ip) {
    t.has_ip = true;
    t.src = ip->src.value;
    t.dst = ip->dst.value;
    t.proto = ip->protocol;
  }
  std::uint32_t sport = 0, dport = 0;
  if (udp) {
    sport = udp->src_port;
    dport = udp->dst_port;
  } else if (tcp) {
    sport = tcp->src_port;
    dport = tcp->dst_port;
  }
  t.ports = sport << 16 | dport;
  return t;
}

std::uint64_t five_tuple_hash(const Packet& p, std::uint64_t seed) {
  // Seed is mixed in sequentially, so the result cannot be cached across
  // switches — only the tuple extraction is (see Packet::flow_tuple). The
  // mix chain below is bit-identical to the original optional-probing form.
  const Packet::FlowTuple& t = p.flow_tuple();
  std::uint64_t h = seed;
  if (t.has_ip) {
    h = mix64(h ^ t.src);
    h = mix64(h ^ t.dst);
    h = mix64(h ^ t.proto);
  }
  return mix64(h ^ t.ports);
}

std::string Packet::summary() const {
  const char* kind_name = "?";
  switch (kind) {
    case PacketKind::kRoceData: kind_name = "roce-data"; break;
    case PacketKind::kRoceReadReq: kind_name = "roce-read-req"; break;
    case PacketKind::kRoceAtomicReq: kind_name = "roce-atomic-req"; break;
    case PacketKind::kRoceAck: kind_name = "roce-ack"; break;
    case PacketKind::kCnp: kind_name = "cnp"; break;
    case PacketKind::kTcp: kind_name = "tcp"; break;
    case PacketKind::kPfcPause: kind_name = "pfc-pause"; break;
    case PacketKind::kRaw: kind_name = "raw"; break;
  }
  char buf[160];
  if (ip) {
    std::snprintf(buf, sizeof(buf), "%s %s->%s prio=%d bytes=%lld psn=%u", kind_name,
                  ip->src.str().c_str(), ip->dst.str().c_str(), priority,
                  static_cast<long long>(frame_bytes), bth ? bth->psn : 0);
  } else {
    std::snprintf(buf, sizeof(buf), "%s %s->%s bytes=%lld", kind_name, eth.src.str().c_str(),
                  eth.dst.str().c_str(), static_cast<long long>(frame_bytes));
  }
  return buf;
}

}  // namespace rocelab
