#include "src/net/packet.h"

#include <cstdio>

namespace rocelab {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t five_tuple_hash(const Packet& p, std::uint64_t seed) {
  std::uint64_t h = seed;
  if (p.ip) {
    h = mix64(h ^ p.ip->src.value);
    h = mix64(h ^ p.ip->dst.value);
    h = mix64(h ^ p.ip->protocol);
  }
  std::uint32_t sport = 0, dport = 0;
  if (p.udp) {
    sport = p.udp->src_port;
    dport = p.udp->dst_port;
  } else if (p.tcp) {
    sport = p.tcp->src_port;
    dport = p.tcp->dst_port;
  }
  h = mix64(h ^ (static_cast<std::uint64_t>(sport) << 16 | dport));
  return h;
}

std::string Packet::summary() const {
  const char* kind_name = "?";
  switch (kind) {
    case PacketKind::kRoceData: kind_name = "roce-data"; break;
    case PacketKind::kRoceReadReq: kind_name = "roce-read-req"; break;
    case PacketKind::kRoceAck: kind_name = "roce-ack"; break;
    case PacketKind::kCnp: kind_name = "cnp"; break;
    case PacketKind::kTcp: kind_name = "tcp"; break;
    case PacketKind::kPfcPause: kind_name = "pfc-pause"; break;
    case PacketKind::kRaw: kind_name = "raw"; break;
  }
  char buf[160];
  if (ip) {
    std::snprintf(buf, sizeof(buf), "%s %s->%s prio=%d bytes=%lld psn=%u", kind_name,
                  ip->src.str().c_str(), ip->dst.str().c_str(), priority,
                  static_cast<long long>(frame_bytes), bth ? bth->psn : 0);
  } else {
    std::snprintf(buf, sizeof(buf), "%s %s->%s bytes=%lld", kind_name, eth.src.str().c_str(),
                  eth.dst.str().c_str(), static_cast<long long>(frame_bytes));
  }
  return buf;
}

}  // namespace rocelab
