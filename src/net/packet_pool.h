// PacketPool: a thread-local free list of heap Packets for closures that
// carry a packet across simulated time (wire flight, delayed TCP delivery).
//
// A Packet is too large for InlineCallback's inline buffer, so a closure
// capturing one by value would fall back to a per-event heap allocation —
// exactly the cost the event core eliminated. Boxing the packet in a
// PooledPacket keeps the closure small (one pointer) and recycles the box,
// so the steady-state transmit path performs no allocations at all.
//
// Recycling is disabled under AddressSanitizer: pooled storage would mask
// use-after-free bugs that a plain new/delete cycle lets ASan catch.
#pragma once

#include <memory>

#include "src/net/packet.h"

namespace rocelab {

namespace detail {
void release_pooled_packet(Packet* p) noexcept;
}  // namespace detail

struct PacketPoolDeleter {
  void operator()(Packet* p) const noexcept { detail::release_pooled_packet(p); }
};

/// Owning handle to a pooled Packet. Destruction resets the packet (dropping
/// its MMU charge and headers at the normal time) and returns the storage to
/// the pool.
using PooledPacket = std::unique_ptr<Packet, PacketPoolDeleter>;

/// Move `pkt` into pooled storage (recycled if available, freshly allocated
/// otherwise).
[[nodiscard]] PooledPacket acquire_pooled_packet(Packet&& pkt);

/// Number of boxes currently idle in this thread's pool (test hook).
[[nodiscard]] std::size_t packet_pool_idle_count();

}  // namespace rocelab
