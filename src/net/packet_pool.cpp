#include "src/net/packet_pool.h"

#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define ROCELAB_PACKET_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ROCELAB_PACKET_POOL_DISABLED 1
#endif
#endif

namespace rocelab {

namespace {

// Bounded so a transient burst (e.g. an incast fan-in) does not pin memory
// for the rest of the run.
constexpr std::size_t kMaxIdle = 4096;

struct FreeList {
  std::vector<Packet*> idle;
  ~FreeList() {
    for (Packet* p : idle) delete p;
  }
};

FreeList& free_list() {
  thread_local FreeList fl;
  return fl;
}

}  // namespace

namespace detail {

void release_pooled_packet(Packet* p) noexcept {
  if (p == nullptr) return;
#ifdef ROCELAB_PACKET_POOL_DISABLED
  delete p;
#else
  // Reset before pooling: the MMU charge (and anything else the packet
  // holds) is released now, exactly when an unpooled Packet would destruct.
  // Destroy + placement-new is markedly cheaper than move-assigning a
  // default Packet (no member-by-member engaged checks).
  p->~Packet();
  ::new (static_cast<void*>(p)) Packet();
  FreeList& fl = free_list();
  if (fl.idle.size() < kMaxIdle) {
    fl.idle.push_back(p);
  } else {
    delete p;
  }
#endif
}

}  // namespace detail

PooledPacket acquire_pooled_packet(Packet&& pkt) {
#ifdef ROCELAB_PACKET_POOL_DISABLED
  return PooledPacket(new Packet(std::move(pkt)));
#else
  FreeList& fl = free_list();
  if (!fl.idle.empty()) {
    Packet* p = fl.idle.back();
    fl.idle.pop_back();
    *p = std::move(pkt);
    return PooledPacket(p);
  }
  return PooledPacket(new Packet(std::move(pkt)));
#endif
}

std::size_t packet_pool_idle_count() {
#ifdef ROCELAB_PACKET_POOL_DISABLED
  return 0;
#else
  return free_list().idle.size();
#endif
}

}  // namespace rocelab
