#include "src/net/codec.h"

#include <array>
#include <cstring>

namespace rocelab {

namespace {

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }
void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}
void put_u32(Bytes& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
}
std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t off) {
  return static_cast<std::uint16_t>((in[off] << 8) | in[off + 1]);
}
std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t off) {
  return (static_cast<std::uint32_t>(get_u16(in, off)) << 16) | get_u16(in, off + 2);
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) {
  std::uint32_t c = 0xffffffffu;
  for (auto b : data) c = crc_table()[(c ^ b) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::uint32_t roce_icrc(const RoceBth& bth, std::span<const std::uint8_t> payload) {
  Bytes buf;
  buf.reserve(static_cast<std::size_t>(kBthBytes) + payload.size());
  encode_bth(bth, buf);
  buf.insert(buf.end(), payload.begin(), payload.end());
  return crc32_ieee(buf);
}

std::uint16_t ipv4_header_checksum(std::span<const std::uint8_t> header20) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < header20.size(); i += 2) {
    if (i == 10) continue;  // checksum field itself
    sum += get_u16(header20, i);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

void encode_ethernet(const EthernetHeader& h, Bytes& out) {
  out.insert(out.end(), h.dst.bytes.begin(), h.dst.bytes.end());
  out.insert(out.end(), h.src.bytes.begin(), h.src.bytes.end());
  if (h.vlan) {
    put_u16(out, kEtherTypeVlan);
    const std::uint16_t tci = static_cast<std::uint16_t>(
        (std::uint16_t{h.vlan->pcp} << 13) | (std::uint16_t{h.vlan->dei} << 12) |
        (h.vlan->vid & 0x0fff));
    put_u16(out, tci);
  }
  put_u16(out, h.ethertype);
}

std::optional<DecodedEthernet> decode_ethernet(std::span<const std::uint8_t> in) {
  if (in.size() < 14) return std::nullopt;
  DecodedEthernet d;
  std::memcpy(d.header.dst.bytes.data(), in.data(), 6);
  std::memcpy(d.header.src.bytes.data(), in.data() + 6, 6);
  std::size_t off = 12;
  std::uint16_t et = get_u16(in, off);
  off += 2;
  if (et == kEtherTypeVlan) {
    if (in.size() < 18) return std::nullopt;
    const std::uint16_t tci = get_u16(in, off);
    off += 2;
    VlanTag tag;
    tag.pcp = static_cast<std::uint8_t>(tci >> 13);
    tag.dei = ((tci >> 12) & 1) != 0;
    tag.vid = tci & 0x0fff;
    d.header.vlan = tag;
    et = get_u16(in, off);
    off += 2;
  }
  d.header.ethertype = et;
  d.consumed = off;
  return d;
}

void encode_ipv4(const Ipv4Header& h, Bytes& out) {
  const std::size_t start = out.size();
  put_u8(out, 0x45);  // version 4, IHL 5
  put_u8(out, static_cast<std::uint8_t>((h.dscp << 2) | static_cast<std::uint8_t>(h.ecn)));
  put_u16(out, h.total_length);
  put_u16(out, h.id);
  put_u16(out, 0x4000);  // flags: DF, no fragment offset
  put_u8(out, h.ttl);
  put_u8(out, h.protocol);
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, h.src.value);
  put_u32(out, h.dst.value);
  const std::uint16_t csum =
      ipv4_header_checksum(std::span<const std::uint8_t>(out.data() + start, 20));
  out[start + 10] = static_cast<std::uint8_t>(csum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(csum & 0xff);
}

std::optional<Ipv4Header> decode_ipv4(std::span<const std::uint8_t> in) {
  if (in.size() < 20 || in[0] != 0x45) return std::nullopt;
  if (ipv4_header_checksum(in.first(20)) != get_u16(in, 10)) return std::nullopt;
  Ipv4Header h;
  h.dscp = static_cast<std::uint8_t>(in[1] >> 2);
  h.ecn = static_cast<Ecn>(in[1] & 0x03);
  h.total_length = get_u16(in, 2);
  h.id = get_u16(in, 4);
  h.ttl = in[8];
  h.protocol = in[9];
  h.src.value = get_u32(in, 12);
  h.dst.value = get_u32(in, 16);
  return h;
}

void encode_udp(const UdpHeader& h, Bytes& out) {
  put_u16(out, h.src_port);
  put_u16(out, h.dst_port);
  put_u16(out, h.length);
  put_u16(out, 0);  // UDP checksum optional for IPv4; RoCEv2 relies on ICRC
}

std::optional<UdpHeader> decode_udp(std::span<const std::uint8_t> in) {
  if (in.size() < 8) return std::nullopt;
  UdpHeader h;
  h.src_port = get_u16(in, 0);
  h.dst_port = get_u16(in, 2);
  h.length = get_u16(in, 4);
  return h;
}

void encode_bth(const RoceBth& h, Bytes& out) {
  put_u8(out, static_cast<std::uint8_t>(h.opcode));
  // SE(1) | M(1) | PadCnt(2) | TVer(4): all zero in our encoding.
  put_u8(out, 0);
  put_u16(out, h.pkey);
  put_u32(out, h.dest_qp & 0x00ffffffu);  // reserved byte + 24-bit QPN
  put_u32(out, (static_cast<std::uint32_t>(h.ack_request) << 31) | (h.psn & 0x00ffffffu));
}

std::optional<RoceBth> decode_bth(std::span<const std::uint8_t> in) {
  if (in.size() < 12) return std::nullopt;
  RoceBth h;
  h.opcode = static_cast<RoceOpcode>(in[0]);
  h.pkey = get_u16(in, 2);
  h.dest_qp = get_u32(in, 4) & 0x00ffffffu;
  const std::uint32_t w = get_u32(in, 8);
  h.ack_request = (w >> 31) != 0;
  h.psn = w & 0x00ffffffu;
  return h;
}

void encode_aeth(const RoceAeth& h, Bytes& out) {
  put_u32(out, (static_cast<std::uint32_t>(h.syndrome) << 24) | (h.msn & 0x00ffffffu));
}

std::optional<RoceAeth> decode_aeth(std::span<const std::uint8_t> in) {
  if (in.size() < 4) return std::nullopt;
  const std::uint32_t w = get_u32(in, 0);
  RoceAeth h;
  h.syndrome = static_cast<AethSyndrome>(w >> 24);
  h.msn = w & 0x00ffffffu;
  return h;
}

void encode_sack(const RoceSackExt& h, Bytes& out) {
  put_u32(out, static_cast<std::uint32_t>(h.bitmap >> 32));
  put_u32(out, static_cast<std::uint32_t>(h.bitmap & 0xffffffffu));
}

std::optional<RoceSackExt> decode_sack(std::span<const std::uint8_t> in) {
  if (in.size() < 8) return std::nullopt;
  RoceSackExt h;
  h.bitmap = (static_cast<std::uint64_t>(get_u32(in, 0)) << 32) | get_u32(in, 4);
  return h;
}

void encode_atomic_eth(const RoceAtomicEth& h, Bytes& out) {
  put_u32(out, static_cast<std::uint32_t>(h.addr >> 32));
  put_u32(out, static_cast<std::uint32_t>(h.addr & 0xffffffffu));
  put_u32(out, h.rkey);
  put_u32(out, static_cast<std::uint32_t>(h.swap_add >> 32));
  put_u32(out, static_cast<std::uint32_t>(h.swap_add & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(h.compare >> 32));
  put_u32(out, static_cast<std::uint32_t>(h.compare & 0xffffffffu));
}

std::optional<RoceAtomicEth> decode_atomic_eth(std::span<const std::uint8_t> in) {
  if (in.size() < static_cast<std::size_t>(kAtomicEthBytes)) return std::nullopt;
  RoceAtomicEth h;
  h.addr = (static_cast<std::uint64_t>(get_u32(in, 0)) << 32) | get_u32(in, 4);
  h.rkey = get_u32(in, 8);
  h.swap_add = (static_cast<std::uint64_t>(get_u32(in, 12)) << 32) | get_u32(in, 16);
  h.compare = (static_cast<std::uint64_t>(get_u32(in, 20)) << 32) | get_u32(in, 24);
  return h;
}

void encode_atomic_ack_eth(const RoceAtomicAckEth& h, Bytes& out) {
  put_u32(out, static_cast<std::uint32_t>(h.orig >> 32));
  put_u32(out, static_cast<std::uint32_t>(h.orig & 0xffffffffu));
}

std::optional<RoceAtomicAckEth> decode_atomic_ack_eth(std::span<const std::uint8_t> in) {
  if (in.size() < static_cast<std::size_t>(kAtomicAckEthBytes)) return std::nullopt;
  RoceAtomicAckEth h;
  h.orig = (static_cast<std::uint64_t>(get_u32(in, 0)) << 32) | get_u32(in, 4);
  return h;
}

Bytes encode_pfc_frame(const PfcFrame& pfc, MacAddr src) {
  Bytes out;
  out.reserve(64);
  EthernetHeader eth;
  eth.dst = MacAddr::pfc_multicast();
  eth.src = src;
  eth.ethertype = kEtherTypeMacControl;
  encode_ethernet(eth, out);          // 14 bytes, never VLAN-tagged (Fig. 3)
  put_u16(out, PfcFrame::kOpcode);    // MAC control opcode 0x0101
  put_u16(out, pfc.class_enable);
  for (auto q : pfc.quanta) put_u16(out, q);
  while (out.size() < 60) out.push_back(0);  // pad to minimum frame size
  put_u32(out, crc32_ieee(out));             // FCS
  return out;
}

std::optional<PfcFrame> decode_pfc_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() != 64) return std::nullopt;
  auto eth = decode_ethernet(frame);
  if (!eth || eth->header.ethertype != kEtherTypeMacControl || eth->header.vlan) {
    return std::nullopt;
  }
  if (eth->header.dst != MacAddr::pfc_multicast()) return std::nullopt;
  if (crc32_ieee(frame.first(60)) != get_u32(frame, 60)) return std::nullopt;
  std::size_t off = eth->consumed;
  if (get_u16(frame, off) != PfcFrame::kOpcode) return std::nullopt;
  off += 2;
  PfcFrame pfc;
  pfc.class_enable = get_u16(frame, off);
  off += 2;
  for (auto& q : pfc.quanta) {
    q = get_u16(frame, off);
    off += 2;
  }
  return pfc;
}

Bytes encode_roce_frame(const Packet& pkt, PfcMode mode) {
  Bytes out;
  out.reserve(static_cast<std::size_t>(pkt.frame_bytes));

  EthernetHeader eth = pkt.eth;
  Ipv4Header ip = pkt.ip.value_or(Ipv4Header{});
  if (mode == PfcMode::kVlanBased) {
    // Fig. 3(a): priority carried in the VLAN PCP, coupled to a VLAN ID.
    if (!eth.vlan) eth.vlan = VlanTag{};
    eth.vlan->pcp = static_cast<std::uint8_t>(pkt.priority & 0x7);
  } else {
    // Fig. 3(b): untagged; priority carried in DSCP.
    eth.vlan.reset();
    ip.dscp = static_cast<std::uint8_t>(pkt.priority);
  }
  eth.ethertype = kEtherTypeIpv4;

  encode_ethernet(eth, out);
  const std::size_t ip_start = out.size();
  const RoceBth bth = pkt.bth.value_or(RoceBth{});
  // kAcknowledge frames carry the AETH after the BTH, and in selective
  // repeat the 8-byte SACK extension after that. kAtomicAck frames carry
  // AETH + AtomicAckETH; CAS/FAA requests carry the 28-byte AtomicETH. All
  // extensions sit inside the invariant region, so the end-to-end ICRC
  // below covers them (§5.2).
  const bool is_ack =
      bth.opcode == RoceOpcode::kAcknowledge || bth.opcode == RoceOpcode::kAtomicAck;
  std::size_t ext = 0;
  if (is_ack) {
    ext += static_cast<std::size_t>(kAethBytes);
    if (bth.opcode == RoceOpcode::kAtomicAck) {
      ext += static_cast<std::size_t>(kAtomicAckEthBytes);
    } else if (pkt.sack) {
      ext += static_cast<std::size_t>(kSackBytes);
    }
  } else if (is_atomic_request(bth.opcode)) {
    ext += static_cast<std::size_t>(kAtomicEthBytes);
  }
  const std::size_t l4 = static_cast<std::size_t>(kUdpHeaderBytes + kBthBytes) + ext +
                         static_cast<std::size_t>(pkt.payload_bytes) +
                         static_cast<std::size_t>(kIcrcBytes);
  ip.total_length = static_cast<std::uint16_t>(kIpv4HeaderBytes + l4);
  ip.protocol = kIpProtoUdp;
  encode_ipv4(ip, out);

  UdpHeader udp = pkt.udp.value_or(UdpHeader{});
  udp.dst_port = kRoceUdpPort;
  udp.length = static_cast<std::uint16_t>(l4);
  encode_udp(udp, out);
  encode_bth(bth, out);
  if (is_ack) {
    encode_aeth(pkt.aeth.value_or(RoceAeth{}), out);
    if (bth.opcode == RoceOpcode::kAtomicAck) {
      encode_atomic_ack_eth(pkt.atomic_ack.value_or(RoceAtomicAckEth{}), out);
    } else if (pkt.sack) {
      encode_sack(*pkt.sack, out);
    }
  } else if (is_atomic_request(bth.opcode)) {
    encode_atomic_eth(pkt.atomic.value_or(RoceAtomicEth{}), out);
  }
  out.insert(out.end(), static_cast<std::size_t>(pkt.payload_bytes), 0xab);

  // ICRC: RoCEv2 invariant CRC over pseudo header + packet; we compute it
  // over the bytes from the IP header on (fields RoCEv2 masks are already
  // deterministic in our encoding).
  put_u32(out, crc32_ieee(std::span<const std::uint8_t>(out.data() + ip_start,
                                                        out.size() - ip_start)));
  put_u32(out, crc32_ieee(out));  // Ethernet FCS over the whole frame
  return out;
}

std::optional<DecodedRoceFrame> decode_roce_frame(std::span<const std::uint8_t> frame) {
  auto eth = decode_ethernet(frame);
  if (!eth || eth->header.ethertype != kEtherTypeIpv4) return std::nullopt;
  std::size_t off = eth->consumed;
  auto ip = decode_ipv4(frame.subspan(off));
  if (!ip || ip->protocol != kIpProtoUdp) return std::nullopt;
  off += static_cast<std::size_t>(kIpv4HeaderBytes);
  auto udp = decode_udp(frame.subspan(off));
  if (!udp || udp->dst_port != kRoceUdpPort) return std::nullopt;
  off += static_cast<std::size_t>(kUdpHeaderBytes);
  auto bth = decode_bth(frame.subspan(off));
  if (!bth) return std::nullopt;
  off += static_cast<std::size_t>(kBthBytes);
  if (frame.size() < off + 8) return std::nullopt;  // ICRC + FCS

  DecodedRoceFrame d;
  d.eth = eth->header;
  d.ip = *ip;
  d.udp = *udp;
  d.bth = *bth;
  if (bth->opcode == RoceOpcode::kAcknowledge || bth->opcode == RoceOpcode::kAtomicAck) {
    // AETH is mandatory on ACK frames; the SACK extension is present iff
    // its 8 bytes sit between the AETH and the ICRC (ACKs carry no payload).
    // Atomic ACKs instead carry the mandatory 8-byte AtomicAckETH there.
    auto aeth = decode_aeth(frame.subspan(off));
    if (!aeth || frame.size() < off + static_cast<std::size_t>(kAethBytes) + 8) {
      return std::nullopt;
    }
    off += static_cast<std::size_t>(kAethBytes);
    d.aeth = *aeth;
    if (bth->opcode == RoceOpcode::kAtomicAck) {
      auto ack_eth = decode_atomic_ack_eth(frame.subspan(off));
      if (!ack_eth || frame.size() < off + static_cast<std::size_t>(kAtomicAckEthBytes) + 8) {
        return std::nullopt;
      }
      off += static_cast<std::size_t>(kAtomicAckEthBytes);
      d.atomic_ack = *ack_eth;
    } else if (frame.size() - off - 8 >= static_cast<std::size_t>(kSackBytes)) {
      d.sack = decode_sack(frame.subspan(off));
      off += static_cast<std::size_t>(kSackBytes);
    }
  } else if (is_atomic_request(bth->opcode)) {
    auto ath = decode_atomic_eth(frame.subspan(off));
    if (!ath || frame.size() < off + static_cast<std::size_t>(kAtomicEthBytes) + 8) {
      return std::nullopt;
    }
    off += static_cast<std::size_t>(kAtomicEthBytes);
    d.atomic = *ath;
  }
  d.payload_bytes = frame.size() - off - 8;
  d.fcs_ok = crc32_ieee(frame.first(frame.size() - 4)) == get_u32(frame, frame.size() - 4);
  // ICRC: recompute over the invariant region (IP header through payload)
  // and compare with the stored value just before the FCS. A flip anywhere
  // in that region fails this check even when the flip also hit (or missed)
  // the per-hop FCS.
  const std::size_t ip_start = eth->consumed;
  d.icrc_ok = crc32_ieee(frame.subspan(ip_start, frame.size() - 8 - ip_start)) ==
              get_u32(frame, frame.size() - 8);
  return d;
}

}  // namespace rocelab
