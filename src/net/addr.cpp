#include "src/net/addr.h"

#include <cstdio>

namespace rocelab {

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0], bytes[1], bytes[2],
                bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::string Ipv4Addr::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff, (value >> 16) & 0xff,
                (value >> 8) & 0xff, value & 0xff);
  return buf;
}

std::string Ipv4Prefix::str() const {
  return addr.str() + "/" + std::to_string(length);
}

}  // namespace rocelab
