// MAC and IPv4 address value types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace rocelab {

struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  auto operator<=>(const MacAddr&) const = default;

  [[nodiscard]] bool is_broadcast() const {
    return *this == broadcast();
  }
  [[nodiscard]] bool is_multicast() const { return (bytes[0] & 0x01) != 0; }
  [[nodiscard]] std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto b : bytes) v = (v << 8) | b;
    return v;
  }
  static MacAddr from_u64(std::uint64_t v) {
    MacAddr m;
    for (int i = 5; i >= 0; --i) {
      m.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
    return m;
  }
  static MacAddr broadcast() { return MacAddr{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}}; }
  /// 802.1Qbb PFC pause frames are addressed to this reserved multicast MAC.
  static MacAddr pfc_multicast() { return MacAddr{{0x01, 0x80, 0xc2, 0x00, 0x00, 0x01}}; }

  [[nodiscard]] std::string str() const;
};

struct Ipv4Addr {
  std::uint32_t value = 0;  // host byte order

  auto operator<=>(const Ipv4Addr&) const = default;

  static constexpr Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                        std::uint8_t d) {
    return Ipv4Addr{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }
  [[nodiscard]] std::string str() const;
};

/// An IPv4 prefix for routing (longest-prefix match).
struct Ipv4Prefix {
  Ipv4Addr addr{};
  int length = 0;  // 0..32

  [[nodiscard]] bool contains(Ipv4Addr ip) const {
    if (length == 0) return true;
    const std::uint32_t mask = length >= 32 ? 0xffffffffu : ~((1u << (32 - length)) - 1);
    return (ip.value & mask) == (addr.value & mask);
  }
  auto operator<=>(const Ipv4Prefix&) const = default;
  [[nodiscard]] std::string str() const;
};

}  // namespace rocelab

template <>
struct std::hash<rocelab::MacAddr> {
  std::size_t operator()(const rocelab::MacAddr& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64());
  }
};

template <>
struct std::hash<rocelab::Ipv4Addr> {
  std::size_t operator()(const rocelab::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};
