// Protocol header value types for the formats of Fig. 2/3 of the paper:
// Ethernet with and without 802.1Q VLAN tags, IPv4 (DSCP/ECN), UDP, the
// 802.1Qbb PFC pause frame, and the RoCEv2 transport headers (BTH/AETH).
//
// The simulator moves these structs as metadata; `src/net/codec.h` provides
// the byte-exact wire encodings.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "src/net/addr.h"

namespace rocelab {

// ---------------------------------------------------------------------------
// Layer 2

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;   // 802.1Q TPID
inline constexpr std::uint16_t kEtherTypeMacControl = 0x8808;  // PFC pause

/// 802.1Q tag: the original VLAN-based PFC carries priority in PCP, coupled
/// with the VLAN ID (the coupling §3 of the paper breaks).
struct VlanTag {
  std::uint8_t pcp = 0;   // Priority Code Point, 3 bits
  bool dei = false;       // Drop Eligible Indicator, 1 bit
  std::uint16_t vid = 0;  // VLAN identifier, 12 bits
  auto operator<=>(const VlanTag&) const = default;
};

struct EthernetHeader {
  MacAddr dst{};
  MacAddr src{};
  std::optional<VlanTag> vlan;  // present only in VLAN-based PFC mode
  std::uint16_t ethertype = kEtherTypeIpv4;
  auto operator<=>(const EthernetHeader&) const = default;
};

/// 802.1Qbb Priority-based Flow Control pause frame. One quantum pauses for
/// 512 bit-times on the receiving port's link. quanta==0 means resume (XON).
struct PfcFrame {
  static constexpr std::uint16_t kOpcode = 0x0101;
  std::uint16_t class_enable = 0;          // bit i => quanta[i] is valid
  std::array<std::uint16_t, 8> quanta{};   // pause time per priority

  [[nodiscard]] bool enabled(int prio) const { return (class_enable >> prio) & 1; }
  void set(int prio, std::uint16_t q) {
    class_enable = static_cast<std::uint16_t>(class_enable | (1u << prio));
    quanta[static_cast<std::size_t>(prio)] = q;
  }
  auto operator<=>(const PfcFrame&) const = default;
};

// ---------------------------------------------------------------------------
// Layer 3 / 4

inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

/// ECN codepoints (RFC 3168), carried in the low 2 bits of the IPv4 TOS byte.
enum class Ecn : std::uint8_t {
  kNotEct = 0b00,
  kEct1 = 0b01,
  kEct0 = 0b10,
  kCe = 0b11,  // congestion experienced (switch marks this)
};

struct Ipv4Header {
  Ipv4Addr src{};
  Ipv4Addr dst{};
  std::uint8_t dscp = 0;  // 6 bits; DSCP-based PFC carries priority here
  Ecn ecn = Ecn::kNotEct;
  std::uint16_t id = 0;       // identification: NICs we model assign sequentially
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  std::uint16_t total_length = 0;  // header + payload
  auto operator<=>(const Ipv4Header&) const = default;
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  auto operator<=>(const UdpHeader&) const = default;
};

// ---------------------------------------------------------------------------
// RoCEv2 transport

/// RoCEv2 data packets are addressed to this well-known UDP port (§2).
inline constexpr std::uint16_t kRoceUdpPort = 4791;

enum class RoceOpcode : std::uint8_t {
  kSendFirst = 0x00,
  kSendMiddle = 0x01,
  kSendLast = 0x02,
  kSendOnly = 0x04,
  kWriteFirst = 0x06,
  kWriteMiddle = 0x07,
  kWriteLast = 0x08,
  kWriteOnly = 0x0a,
  kReadRequest = 0x0c,
  kReadResponseFirst = 0x0d,
  kReadResponseMiddle = 0x0e,
  kReadResponseLast = 0x0f,
  kReadResponseOnly = 0x10,
  kAcknowledge = 0x11,  // carries AETH: ACK or NAK
  kAtomicAck = 0x12,    // carries AETH + AtomicAckETH (original value)
  kCompareSwap = 0x13,  // carries AtomicETH
  kFetchAdd = 0x14,     // carries AtomicETH
  kCnp = 0x81,          // RoCEv2 congestion notification packet (DCQCN)
};

[[nodiscard]] constexpr bool is_read_response(RoceOpcode op) {
  return op == RoceOpcode::kReadResponseFirst || op == RoceOpcode::kReadResponseMiddle ||
         op == RoceOpcode::kReadResponseLast || op == RoceOpcode::kReadResponseOnly;
}

[[nodiscard]] constexpr bool is_atomic_request(RoceOpcode op) {
  return op == RoceOpcode::kCompareSwap || op == RoceOpcode::kFetchAdd;
}

/// Base Transport Header (12 bytes on the wire).
struct RoceBth {
  RoceOpcode opcode = RoceOpcode::kSendOnly;
  bool ack_request = false;
  std::uint16_t pkey = 0xffff;
  std::uint32_t dest_qp = 0;  // 24 bits
  std::uint32_t psn = 0;      // 24 bits
  auto operator<=>(const RoceBth&) const = default;
};

enum class AethSyndrome : std::uint8_t {
  kAck = 0,
  kNakPsnSequenceError = 1,  // receiver expected a smaller PSN: go-back trigger
  kNakRemoteAccessError = 2,
  /// Receiver-not-ready: a SEND arrived with no receive WQE posted; the
  /// sender backs off and retries the message.
  kRnrNak = 3,
};

/// ACK Extended Transport Header (4 bytes), carried by kAcknowledge packets.
struct RoceAeth {
  AethSyndrome syndrome = AethSyndrome::kAck;
  std::uint32_t msn = 0;  // 24 bits: message sequence number / expected PSN for NAK
  auto operator<=>(const RoceAeth&) const = default;
};

/// Atomic Extended Transport Header (28 bytes), carried by kCompareSwap and
/// kFetchAdd requests: virtual address, rkey, swap/add operand, compare
/// operand. Inside the invariant region, so the end-to-end ICRC covers it.
struct RoceAtomicEth {
  std::uint64_t addr = 0;      // 8-byte-aligned virtual address at the responder
  std::uint32_t rkey = 0;
  std::uint64_t swap_add = 0;  // CAS: swap value; FAA: addend
  std::uint64_t compare = 0;   // CAS only; ignored by FAA
  auto operator<=>(const RoceAtomicEth&) const = default;
};

/// Atomic ACK Extended Transport Header (8 bytes), carried after the AETH by
/// kAtomicAck packets: the value the addressed word held *before* the atomic
/// executed. ICRC-covered — a corrupted original value must not complete.
struct RoceAtomicAckEth {
  std::uint64_t orig = 0;
  auto operator<=>(const RoceAtomicAckEth&) const = default;
};

/// Widen a 24-bit wire sequence field back to 64 bits around a reference the
/// receiver tracks (e.g. una_psn). The signed 24-bit difference is applied to
/// the reference, so values up to 2^23 ahead of or behind `ref` survive the
/// wire truncation. Below 2^24 this is the identity.
[[nodiscard]] constexpr std::uint64_t expand_seq24(std::uint64_t ref, std::uint32_t wire) {
  const std::uint32_t diff24 = (wire - static_cast<std::uint32_t>(ref)) & 0x00ffffffu;
  // Sign-extend the 24-bit difference.
  const std::int32_t diff = static_cast<std::int32_t>(diff24 << 8) >> 8;
  if (diff < 0 && static_cast<std::uint64_t>(-static_cast<std::int64_t>(diff)) > ref) {
    return wire & 0x00ffffffu;  // would go negative: reference not yet past wrap
  }
  return ref + static_cast<std::uint64_t>(static_cast<std::int64_t>(diff));
}

/// Selective-ACK extension (8 bytes), carried after the AETH by
/// kAcknowledge packets in the IRN-style kSelectiveRepeat mode: bit i set
/// means PSN aeth.msn + 1 + i was received out of order and is buffered at
/// the receiver, so the sender need not retransmit it. Inside the invariant
/// region, so the end-to-end ICRC covers it (§5.2).
struct RoceSackExt {
  std::uint64_t bitmap = 0;
  auto operator<=>(const RoceSackExt&) const = default;
};

// ---------------------------------------------------------------------------
// TCP (baseline transport; metadata only, no wire codec needed)

struct TcpHeaderMeta {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t seq = 0;      // byte sequence number of first payload byte
  std::uint64_t ack = 0;      // cumulative ACK
  std::int32_t payload = 0;   // payload bytes carried
  bool syn = false;
  bool fin = false;
  bool ece = false;           // ECN echo
  auto operator<=>(const TcpHeaderMeta&) const = default;
};

// ---------------------------------------------------------------------------
// Wire size constants (bytes). RoCEv2 frame = Eth(14) + IP(20) + UDP(8) +
// BTH(12) + payload + ICRC(4) + FCS(4); with the paper's 1024B payload this
// is exactly the 1086-byte frame of Fig. 7.

inline constexpr std::int64_t kEthHeaderBytes = 14;
inline constexpr std::int64_t kVlanTagBytes = 4;
inline constexpr std::int64_t kEthFcsBytes = 4;
inline constexpr std::int64_t kIpv4HeaderBytes = 20;
inline constexpr std::int64_t kUdpHeaderBytes = 8;
inline constexpr std::int64_t kBthBytes = 12;
inline constexpr std::int64_t kAethBytes = 4;
inline constexpr std::int64_t kSackBytes = 8;    // RoceSackExt (selective repeat)
inline constexpr std::int64_t kRethBytes = 16;   // RDMA extended header (WRITE/READ)
inline constexpr std::int64_t kAtomicEthBytes = 28;     // RoceAtomicEth (CAS/FAA)
inline constexpr std::int64_t kAtomicAckEthBytes = 8;   // RoceAtomicAckEth
inline constexpr std::int64_t kIcrcBytes = 4;
inline constexpr std::int64_t kTcpHeaderBytes = 20;
inline constexpr std::int64_t kPfcFrameBytes = 64;  // minimum Ethernet frame
inline constexpr std::int64_t kMinEthFrameBytes = 64;
/// Preamble + SFD + inter-frame gap occupy wire time but carry no frame bytes.
inline constexpr std::int64_t kWireOverheadBytes = 20;

inline constexpr std::int64_t kRoceDataOverheadBytes =
    kEthHeaderBytes + kIpv4HeaderBytes + kUdpHeaderBytes + kBthBytes + kIcrcBytes + kEthFcsBytes;
static_assert(kRoceDataOverheadBytes == 62);
static_assert(kRoceDataOverheadBytes + 1024 == 1086, "paper's Fig. 7 frame size");

inline constexpr std::int64_t kTcpFrameOverheadBytes =
    kEthHeaderBytes + kIpv4HeaderBytes + kTcpHeaderBytes + kEthFcsBytes;

}  // namespace rocelab
