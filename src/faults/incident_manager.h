// IncidentManager: the fleet-level operations controller (§6's incident
// practice as a control loop). Where the SelfHealer adjudicates one
// direction at a time, the incident manager consumes every evidence stream
// the repo produces — GrayFailureLocalizer rankings, LinkHealthMonitor FCS
// flags, FailureDetector alarms, InvariantAuditor pause-storm violations,
// and §5.1 config drift against a declared golden QosPolicy — into one
// incident table, then *ranks mitigations across concurrent incidents*:
//
//   config rollback  — free: re-applying the golden α/ECN/ARP settings
//                      costs no capacity, so drift is always fixed first
//                      (the §6.2 Fig. 10 incident end-to-end);
//   switch drain     — when one switch owns >= drain_threshold confirmed-
//                      bad directions, zero-weight its ECMP memberships in
//                      its *neighbours'* tables (Fabric::drain_switch)
//                      instead of issuing that many per-port cost-outs.
//                      Rank = sum of covered direction scores, so a drain
//                      covering two confirmed directions outranks any
//                      single cost-out. A drain also fixes directions a
//                      cost-out cannot touch (single-member down-routes
//                      floor-veto forever);
//   port cost-out    — the SelfHealer's per-direction mitigation, ranked
//                      by the direction's localizer score;
//   cable replace    — a confirmed direction carrying corruption evidence
//                      (fcs-counter or escaped-FCS icrc-counter) gets the
//                      §5.2 repair instead of a plain cost-out: the link is
//                      pulled (weight zero, same blast-budget accounting)
//                      and after `cable_replace_delay` the re-splice clears
//                      the impairment on BOTH directions of the physical
//                      cable — the only mitigation here that removes the
//                      root cause rather than routing around it.
//
// Blast-radius budget: the manager never zero-weights more than
// `blast_budget_frac` of any pod's ECMP member capacity. Before applying a
// mitigation it simulates the prospective per-pod costed fraction; when
// over budget it sheds the lowest-ranked active mitigation that frees
// capacity in an over-budget pod (journalled kMitigationShed), and vetoes
// the new mitigation if no strictly lower-ranked victim exists. The live
// per-pod fraction is exported as `fleet/<pod>/costed_capacity_frac_bp`
// gauges (basis points) which the InvariantAuditor's kBlastRadius check
// audits independently.
//
// Determinism: zero randomness; every map is keyed by names, candidates
// sort under an explicit comparator, and scans fire on the simulator
// clock, so the mitigation sequence — and the ChaosEngine journal it
// writes (kEcmpCostOut/kEcmpRestore/kSwitchDrain/kSwitchUndrain/
// kConfigRollback/kMitigationShed) — is a pure function of the run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/faults/localizer.h"
#include "src/rocev2/deployment.h"

namespace rocelab {

class ChaosEngine;
class FailureDetector;
class InvariantAuditor;
class LinkHealthMonitor;

enum class IncidentKind {
  kGrayDirection,  // confirmed bad (node, port) direction
  kConfigDrift,    // running config field diverged from the golden policy
  kPauseStorm,     // auditor flagged sustained host pause emission
};

enum class MitigationKind {
  kCostOut,         // zero-weight one port on the owning switch
  kSwitchDrain,     // zero-weight every neighbour port facing the switch
  kConfigRollback,  // re-apply golden config fields (no capacity cost)
  kCableReplace,    // pull + re-splice a corruption-evidenced link (§5.2)
};

[[nodiscard]] const char* to_string(IncidentKind kind);
[[nodiscard]] const char* to_string(MitigationKind kind);

struct IncidentManagerConfig {
  Time scan_interval = milliseconds(1);
  /// Localizer score a direction needs for a scan to count as "hot".
  double score_threshold = 0.5;
  /// Passed to GrayFailureLocalizer::rank().
  int min_probes = 5;
  /// Consecutive hot scans (each with new evidence) before a direction is
  /// a confirmed incident.
  int confirm_scans = 2;
  /// A switch owning >= this many confirmed-bad directions is drained
  /// whole instead of costed out per direction.
  int drain_threshold = 2;
  /// Evidence-free time before an applied mitigation is rolled back.
  Time probation = milliseconds(20);
  /// Minimum sim-time between restore attempts on one mitigation target
  /// (bounds the flap period when a restore proves premature).
  Time restore_cooldown = milliseconds(60);
  /// Blast-radius budget: max fraction of any pod's ECMP member capacity
  /// at weight zero. Spine-tier members pool under one "pod".
  double blast_budget_frac = 0.25;
  /// Time from pulling a corruption-evidenced cable to the re-splice that
  /// clears the impairment (the modeled technician dispatch of §5.2).
  Time cable_replace_delay = milliseconds(10);
  /// Detect and roll back config drift against the golden policy (needs
  /// set_golden_policy).
  bool rollback_config = true;
};

struct Incident {
  IncidentKind kind{};
  std::string node;
  int port = -1;  // -1 for whole-node incidents (drift, storms)
  Time opened_at = 0;
  Time mitigated_at = -1;  // -1 until a mitigation covers it
  Time resolved_at = -1;   // -1 while open
  double score = 0.0;
  std::string evidence;  // "probe-loss", "fcs-counter", "mmu.alpha ...", ...
};

/// One applied mitigation. `members` lists every (switch, port) weight the
/// mitigation zeroed — a drain owns its whole neighbour set so the
/// eventual undrain (or shed) restores everything atomically.
struct FleetMitigation {
  MitigationKind kind{};
  std::string target;
  int port = -1;  // kCostOut only
  double rank = 0.0;
  Time applied_at = -1;
  Time reverted_at = -1;  // -1 while active
  bool shed = false;      // reverted by the blast budget, not probation
  bool absorbed = false;  // folded into a later drain of the same switch
  std::vector<std::pair<std::string, int>> covers;   // directions covered
  std::vector<std::pair<std::string, int>> members;  // weights zeroed
};

struct IncidentManagerStats {
  std::int64_t scans = 0;
  std::int64_t incidents_opened = 0;
  std::int64_t cost_outs = 0;
  std::int64_t drains = 0;
  std::int64_t rollbacks = 0;
  std::int64_t cable_replaces = 0;
  std::int64_t restores = 0;
  std::int64_t sheds = 0;
  std::int64_t floor_vetoes = 0;   // last-member / nothing-to-zero refusals
  std::int64_t budget_vetoes = 0;  // blast budget refused, nothing to shed
  std::int64_t active = 0;         // gauge: active capacity mitigations
  std::int64_t open_incidents = 0;       // gauge
  std::int64_t detector_alarms = 0;      // gauge: FailureDetector corroboration
};

class IncidentManager {
 public:
  IncidentManager(Fabric& fabric, const GrayFailureLocalizer& localizer,
                  IncidentManagerConfig cfg = {});
  ~IncidentManager();
  IncidentManager(const IncidentManager&) = delete;
  IncidentManager& operator=(const IncidentManager&) = delete;

  /// Attach a journal: every decision is recorded as a fault-plane event so
  /// replays of a chaos run stay byte-identical.
  void set_chaos(ChaosEngine* chaos) { chaos_ = chaos; }
  /// Counter-driven FCS corroboration (§5.2): flagged directions score 1.0
  /// even before probe evidence accumulates.
  void set_link_health(const LinkHealthMonitor* health) { health_ = health; }
  /// End-to-end corroboration: exported as the incmgr/detector_alarms gauge.
  void set_failure_detector(const FailureDetector* det) { detector_ = det; }
  /// Pause-storm violations become kPauseStorm incidents (visibility; the
  /// NIC watchdog owns the repair).
  void set_auditor(const InvariantAuditor* auditor) { auditor_ = auditor; }
  /// Declare desired state: enables §5.1 drift detection + §6.2 rollback.
  void set_golden_policy(QosPolicy policy, DeploymentStage stage = DeploymentStage::kFull);

  void start();
  void stop();
  /// Run one scan synchronously (tests drive the loop by hand).
  void scan_now() { scan(); }

  [[nodiscard]] const IncidentManagerStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<Incident>& incidents() const { return incidents_; }
  [[nodiscard]] const std::vector<FleetMitigation>& mitigations() const { return mitigations_; }
  [[nodiscard]] const IncidentManagerConfig& config() const { return cfg_; }
  /// Is this exact direction held out by an active cost-out?
  [[nodiscard]] bool costed_out(const std::string& node, int port) const;
  /// Is this switch held in drain by an active drain mitigation?
  [[nodiscard]] bool switch_drained(const std::string& name) const;
  /// Current costed fraction of a pod's ECMP member capacity (pod -1 =
  /// spine pool); counts weight-zero members from any actor.
  [[nodiscard]] double pod_costed_frac(int pod) const;
  /// Human-readable incident + mitigation table.
  [[nodiscard]] std::string report() const;

  /// Pod of a ClosFabric node name: "tor-1-0" -> 1, "leaf-0-1" -> 0,
  /// "spine-2" (and anything unparsable) -> -1.
  [[nodiscard]] static int pod_of(const std::string& name);

 private:
  // Keyed by (node name, port) like the localizer: deterministic iteration
  // order makes the whole decision sequence byte-stable.
  using DirKey = std::pair<std::string, int>;

  struct DirState {
    int hot_streak = 0;
    bool confirmed = false;  // passed hysteresis; incident open
    bool mitigated = false;  // covered by an active mitigation
    bool corrupt_evidence = false;  // fcs/icrc counters fired: bad cable, not
                                    // congestion — plan a replace, not a cost-out
    double score = 0.0;      // latest merged score
    std::int64_t evidence = 0;        // latest merged tally
    std::int64_t evidence_floor = 0;  // tally already adjudicated
    std::size_t incident = kNoIncident;
  };

  struct Candidate {
    MitigationKind kind{};
    std::string target;
    int port = -1;
    double rank = 0.0;
    std::vector<DirKey> covers;
  };

  struct MitState {  // internal bookkeeping parallel to mitigations_
    std::vector<std::pair<Switch*, int>> members;
    std::int64_t evidence_mark = 0;
    Time clean_since = -1;
    bool resplice_done = false;  // kCableReplace: re-splice fired; restore may run
  };

  struct PodCap {
    std::int64_t total = 0;
    std::int64_t costed = 0;
  };

  static constexpr std::size_t kNoIncident = static_cast<std::size_t>(-1);

  void tick();
  void scan();
  void merge_evidence(Time now);
  void check_drift(Time now);
  void ingest_storms(Time now);
  void adjudicate(Time now);
  bool try_apply(const Candidate& c, Time now);
  void finish_cable_replace(std::size_t index);
  void shed(std::size_t index, const Candidate& beneficiary, Time now);
  void probation_pass(Time now);
  void update_gauges();
  std::size_t open_incident(IncidentKind kind, const std::string& node, int port, double score,
                            std::string evidence, Time now);
  void adjudicate_dir(DirState& d);  // veto bookkeeping: re-confirm needs growth
  [[nodiscard]] std::map<int, PodCap> capacity() const;
  [[nodiscard]] std::vector<std::pair<Switch*, int>> plan_members(const Candidate& c) const;

  Fabric& fabric_;
  const GrayFailureLocalizer& localizer_;
  IncidentManagerConfig cfg_;
  ChaosEngine* chaos_ = nullptr;
  const LinkHealthMonitor* health_ = nullptr;
  const FailureDetector* detector_ = nullptr;
  const InvariantAuditor* auditor_ = nullptr;
  bool have_golden_ = false;
  QosPolicy golden_{};
  DeploymentStage golden_stage_ = DeploymentStage::kFull;
  bool running_ = false;
  EventId scan_ev_ = kInvalidEventId;

  std::map<DirKey, DirState> dirs_;
  std::vector<Incident> incidents_;
  std::vector<FleetMitigation> mitigations_;
  std::vector<MitState> mit_state_;  // parallel to mitigations_
  std::map<std::string, Time> last_restore_;  // per target(:port) cooldown clock
  std::map<std::string, std::size_t> drift_open_;  // "node|field" -> incident
  struct StormOpen {
    std::size_t incident = 0;
    Time last_flag = 0;
  };
  std::map<std::string, StormOpen> storm_open_;
  std::size_t violations_seen_ = 0;
  IncidentManagerStats stats_;
  // Per-pod costed-capacity gauges in basis points, registered as
  // fleet/pod<k>/costed_capacity_frac_bp (spine pool: fleet/spine/...).
  // std::map keeps value addresses stable for the registry.
  std::map<int, std::int64_t> pod_gauge_;
};

}  // namespace rocelab
