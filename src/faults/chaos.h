// ChaosEngine: a seeded, deterministic schedule of timed fault and heal
// events against a live Fabric — link flaps, switch reboots, host deaths,
// NIC pause storms, and config drift (the operational failure modes of
// §4 and §6). Every injected event is journalled at fire time; the same
// seed and schedule produce a byte-identical journal, so soak tests can
// assert both on fabric behaviour and on the exact fault sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/link/impairment.h"
#include "src/topo/fabric.h"

namespace rocelab {

enum class FaultKind {
  kLinkDown,
  kLinkUp,
  kSwitchReboot,
  kSwitchRecover,
  kHostDeath,
  kHostRevival,
  kNicStormStart,
  kNicStormStop,
  kAlphaDrift,
  kEcnDisable,
  kLinkImpair,       // gray-failure plane: per-direction impairment installed
  kLinkImpairClear,
  kQpFaultStart,     // per-QP fault campaign at a NIC
  kQpFaultStop,
  kDropFilterSet,    // Switch::set_drop_filter, now journalled
  kDropFilterClear,
  kEcmpCostOut,      // self-healing plane: ECMP member weight -> 0
  kEcmpRestore,      // probation passed: weight -> 1
  kSwitchDrain,      // incident manager: every ECMP membership of a switch -> 0
  kSwitchUndrain,    // drain probation passed: memberships restored
  kConfigRollback,   // drifted running config rolled back to the golden policy
  kMitigationShed,   // blast-radius budget: lowest-ranked mitigation reverted
  kCableReplace,     // corruption-evidenced link pulled for a cable swap (§5.2)
  kCableReplaced,    // re-splice done: impairment cleared, link back in service
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One injected event, recorded when it actually fires.
struct FaultRecord {
  Time at = 0;
  FaultKind kind{};
  std::string target;  // node name
  std::string detail;  // e.g. "port 4", "alpha 0.015625"
};

class ChaosEngine {
 public:
  ChaosEngine(Fabric& fabric, std::uint64_t seed);

  // --- schedule builders (all times absolute sim time) ----------------------
  /// Take the full-duplex link at (node, port) down at `down_at` and back up
  /// at `up_at`.
  void link_flap(Node& node, int port, Time down_at, Time up_at);
  /// Power-cycle `sw` at `at`: every wired link goes down and the control
  /// plane reboots (tables flushed, MMU reset). At `recover_at` the links
  /// return and, when `reinstall_entries`, the management plane re-installs
  /// the ARP/MAC entries of directly attached hosts.
  void switch_reboot(Switch& sw, Time at, Time recover_at, bool reinstall_entries = true);
  /// Kill the host at `at` (§4.2 dead-server semantics via Fabric); revive
  /// at `revive_at` (pass a negative revive_at to leave it dead).
  void host_death(Host& h, Time at, Time revive_at);
  /// §4.3 NIC pause storm between `at` and `stop_at`.
  void nic_storm(Host& h, Time at, Time stop_at);
  /// Config drift: silently retune the shared-buffer α (the §6.2 incident).
  void alpha_drift(Switch& sw, Time at, double alpha);
  /// Config drift: ECN marking disabled on every queue (DCQCN loses its
  /// congestion signal; PFC alone must hold the fabric together).
  void ecn_disable(Switch& sw, Time at);

  // --- gray-failure plane ----------------------------------------------------
  /// Install impairment `imp` on (node, port)'s egress direction at `at`
  /// (the reverse direction is untouched — asymmetric by construction);
  /// clear it at `clear_at`, or pass a negative time to leave it installed.
  void impair_link(Node& node, int port, const LinkImpairment& imp, Time at, Time clear_at = -1);
  /// Per-QP fault campaign against `qpn` on h's NIC receive path between
  /// `at` and `stop_at` (negative stop_at => runs to the end).
  void qp_fault(Host& h, std::uint32_t qpn, const QpFaultSpec& spec, Time at, Time stop_at = -1);
  /// Journalled drop-filter install (bare Switch::set_drop_filter bypasses
  /// the journal): `what` describes the predicate in the journal line.
  /// Cleared at `clear_at` unless negative.
  void drop_filter(Switch& sw, std::function<bool(const Packet&)> pred, const std::string& what,
                   Time at, Time clear_at = -1);

  /// Journal a mitigation performed by an outside control loop (the
  /// SelfHealer's ECMP cost-out / restore). Replays stay byte-identical
  /// only if every actor that writes to the data plane shares one journal,
  /// so mitigations land next to the faults they answer.
  void record_mitigation(FaultKind kind, const std::string& target, std::string detail = {});

  /// The deterministic generator for randomized schedules. Callers draw
  /// fault times/targets from this so one seed fixes the whole scenario.
  Rng& rng() { return rng_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  [[nodiscard]] const std::vector<FaultRecord>& journal() const { return journal_; }
  /// One line per fired event, raw integer timestamps — byte-identical
  /// across runs with the same seed and schedule.
  [[nodiscard]] std::string journal_text() const;
  /// FNV-1a over journal_text(): the soak target's golden-hash handle.
  [[nodiscard]] std::uint64_t journal_hash() const;

 private:
  void record(FaultKind kind, const std::string& target, std::string detail = {});

  Fabric& fabric_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<FaultRecord> journal_;
};

}  // namespace rocelab
