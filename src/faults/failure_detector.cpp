#include "src/faults/failure_detector.h"

namespace rocelab {

FailureDetector::FailureDetector() : FailureDetector(Options{}) {}

void FailureDetector::observe(Time now, std::uint32_t peer, bool ok) {
  auto& st = peers_[peer];
  if (opts_.loss_window > 0) {
    st.window.push_back(!ok);
    if (!ok) ++st.window_losses;
    if (static_cast<int>(st.window.size()) > opts_.loss_window) {
      if (st.window.front()) --st.window_losses;
      st.window.pop_front();
    }
  }
  if (ok) {
    st.consecutive_failed = 0;
    ++st.consecutive_ok;
    // Clearing needs both straight successes AND (when the rate trigger is
    // on) a quiet window, so a flapping peer cannot bounce the alarm.
    const bool rate_quiet =
        opts_.loss_window == 0 ||
        static_cast<double>(st.window_losses) <=
            opts_.clear_loss_rate * static_cast<double>(st.window.size());
    if (st.alarmed && st.consecutive_ok >= opts_.clear_after && rate_quiet) {
      st.alarmed = false;
      ++cleared_;
      history_.push_back(AlarmEvent{now, peer, false, Reason::kConsecutive});
    }
  } else {
    st.consecutive_ok = 0;
    ++st.consecutive_failed;
    if (!st.alarmed && st.consecutive_failed >= opts_.raise_after) {
      st.alarmed = true;
      ++raised_;
      history_.push_back(AlarmEvent{now, peer, true, Reason::kConsecutive});
    }
    // Gray trigger: the loss *rate* over a full window crosses the line even
    // though losses never run `raise_after` deep (§5.2 sub-threshold loss).
    if (!st.alarmed && opts_.loss_window > 0 &&
        static_cast<int>(st.window.size()) >= opts_.loss_window &&
        static_cast<double>(st.window_losses) >=
            opts_.raise_loss_rate * static_cast<double>(st.window.size())) {
      st.alarmed = true;
      ++raised_;
      history_.push_back(AlarmEvent{now, peer, true, Reason::kLossRate});
    }
  }
}

double FailureDetector::loss_rate(std::uint32_t peer) const {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.window.empty()) return 0.0;
  return static_cast<double>(it->second.window_losses) /
         static_cast<double>(it->second.window.size());
}

int FailureDetector::active_alarms() const {
  int n = 0;
  for (const auto& [peer, st] : peers_) {
    (void)peer;
    if (st.alarmed) ++n;
  }
  return n;
}

}  // namespace rocelab
