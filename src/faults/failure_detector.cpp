#include "src/faults/failure_detector.h"

namespace rocelab {

FailureDetector::FailureDetector() : FailureDetector(Options{}) {}

void FailureDetector::observe(Time now, std::uint32_t peer, bool ok) {
  auto& st = peers_[peer];
  if (ok) {
    st.consecutive_failed = 0;
    ++st.consecutive_ok;
    if (st.alarmed && st.consecutive_ok >= opts_.clear_after) {
      st.alarmed = false;
      ++cleared_;
      history_.push_back(AlarmEvent{now, peer, false});
    }
  } else {
    st.consecutive_ok = 0;
    ++st.consecutive_failed;
    if (!st.alarmed && st.consecutive_failed >= opts_.raise_after) {
      st.alarmed = true;
      ++raised_;
      history_.push_back(AlarmEvent{now, peer, true});
    }
  }
}

int FailureDetector::active_alarms() const {
  int n = 0;
  for (const auto& [peer, st] : peers_) {
    (void)peer;
    if (st.alarmed) ++n;
  }
  return n;
}

}  // namespace rocelab
