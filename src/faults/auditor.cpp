#include "src/faults/auditor.h"

#include <sstream>

#include "src/common/log.h"
#include "src/monitor/metric_registry.h"

namespace rocelab {

const char* to_string(InvariantAuditor::Kind kind) {
  switch (kind) {
    case InvariantAuditor::Kind::kPfcDeadlock: return "pfc_deadlock";
    case InvariantAuditor::Kind::kByteConservation: return "byte_conservation";
    case InvariantAuditor::Kind::kPauseStorm: return "pause_storm";
    case InvariantAuditor::Kind::kBlastRadius: return "blast_radius";
    case InvariantAuditor::Kind::kDataIntegrity: return "data_integrity";
  }
  return "unknown";
}

InvariantAuditor::InvariantAuditor(Simulator& sim, std::vector<Switch*> switches,
                                   std::vector<Host*> hosts)
    : InvariantAuditor(sim, std::move(switches), std::move(hosts), Options{}) {}

InvariantAuditor::InvariantAuditor(Simulator& sim, std::vector<Switch*> switches,
                                   std::vector<Host*> hosts, Options opts)
    : sim_(sim), switches_(std::move(switches)), hosts_(std::move(hosts)), opts_(opts) {}

void InvariantAuditor::start() {
  if (running_) return;
  running_ = true;
  // Seed the per-host pause baselines so pre-start history is not flagged.
  for (Host* h : hosts_) {
    StormState st;
    st.last_pause_count = h->port(0).counters().total_tx_pause();
    storm_[h] = st;
    corrupt_baseline_[h] = h->rdma().stats().corrupt_completions;
  }
  sim_.schedule_in(opts_.interval, [this] { tick(); });
}

void InvariantAuditor::flag(Kind kind, const std::string& node, std::string detail) {
  violations_.push_back(Violation{sim_.now(), kind, node, std::move(detail)});
  ROCELAB_LOG_INFO("auditor: %s at %s: %s", to_string(kind), node.c_str(),
                   violations_.back().detail.c_str());
}

void InvariantAuditor::tick() {
  if (!running_) return;
  ++checks_run_;

  // 1. PFC deadlock (§4.2): must never exist, faults or not.
  const DeadlockReport dl = detect_pfc_deadlock(switches_);
  if (dl.deadlocked) {
    if (!deadlock_flagged_) {
      deadlock_flagged_ = true;
      std::ostringstream os;
      os << "cycle:";
      for (const auto& [sw, port] : dl.cycle) os << ' ' << sw << ':' << port;
      flag(Kind::kPfcDeadlock, dl.cycle.empty() ? "?" : dl.cycle.front().first, os.str());
    }
  } else {
    deadlock_flagged_ = false;
  }

  // 2. Byte conservation: per-switch matrix vs actual egress queues, and
  //    MMU shared-pool counter vs per-PG recomputation.
  for (Switch* sw : switches_) {
    const std::int64_t matrix = sw->matrix_queued_total();
    const std::int64_t queued = sw->egress_queued_total();
    if (matrix != queued) {
      std::ostringstream os;
      os << "matrix " << matrix << " != egress " << queued;
      flag(Kind::kByteConservation, sw->name(), os.str());
    }
    const std::int64_t pool = sw->mmu().shared_used();
    const std::int64_t recomputed = sw->mmu().recomputed_shared_used();
    if (pool != recomputed) {
      std::ostringstream os;
      os << "mmu shared " << pool << " != recomputed " << recomputed;
      flag(Kind::kByteConservation, sw->name(), os.str());
    }
  }

  // 3. Sustained host pause emission (§4.3 storm symptom). One flag per
  //    episode; a quiet window resets the streak.
  for (const Host* h : hosts_) {
    auto& st = storm_[h];
    const std::int64_t now_count = h->port(0).counters().total_tx_pause();
    if (now_count > st.last_pause_count) {
      st.quiet_streak = 0;
      ++st.active_windows;
      if (st.active_windows >= opts_.storm_windows && !st.flagged) {
        st.flagged = true;
        std::ostringstream os;
        os << st.active_windows << " consecutive pausing windows";
        flag(Kind::kPauseStorm, h->name(), os.str());
      }
    } else if (++st.quiet_streak >= 2) {
      // A storming NIC refreshes its XOFF on a timer that may straddle an
      // audit window, so one quiet window is not the all-clear; two is.
      st.active_windows = 0;
      st.flagged = false;
    }
    st.last_pause_count = now_count;
  }

  // 4. Data integrity (§5.2): no message whose payload was corrupted in
  //    flight may ever complete to an application WQE. Each increase in a
  //    host's corrupt-completion counter is its own violation.
  for (Host* h : hosts_) {
    std::int64_t& base = corrupt_baseline_[h];
    const std::int64_t now_count = h->rdma().stats().corrupt_completions;
    if (now_count > base) {
      std::ostringstream os;
      os << (now_count - base) << " corrupt completion(s), total " << now_count;
      flag(Kind::kDataIntegrity, h->name(), os.str());
      base = now_count;
    }
  }

  // 5. Blast radius: no pod's costed-out capacity gauge may exceed the
  //    budget. One violation per over-budget episode per gauge.
  if (opts_.registry != nullptr && opts_.blast_budget_bp >= 0) {
    for (std::uint32_t id : opts_.registry->select(opts_.blast_pattern)) {
      const MetricRegistry::Entry& e = opts_.registry->entry(id);
      bool& flagged = blast_flagged_[e.name];
      if (*e.value > opts_.blast_budget_bp) {
        if (!flagged) {
          flagged = true;
          std::ostringstream os;
          os << *e.value << " bp > budget " << opts_.blast_budget_bp << " bp";
          flag(Kind::kBlastRadius, e.name, os.str());
        }
      } else {
        flagged = false;
      }
    }
  }

  sim_.schedule_in(opts_.interval, [this] { tick(); });
}

std::int64_t InvariantAuditor::count(Kind kind) const {
  std::int64_t n = 0;
  for (const auto& v : violations_) {
    if (v.kind == kind) ++n;
  }
  return n;
}

}  // namespace rocelab
