// GrayFailureLocalizer: §6-style incident localization. RDMA Pingmesh says
// *which host pairs* hurt; the localizer turns that into *which link*.
// Each probe outcome is charged to every directed link on the probe's
// request and response paths (computed exactly via trace_route — ECMP is a
// known function of the 5-tuple); links are then ranked by the share of
// traced probes through them that failed, merged with the per-port FCS
// counters (§5.2: any FCS errors on a link mean the cable is bad). A
// one-way blackhole scores 1.0 on probe evidence alone — it never carries
// a success — while a 1e-3 lossy link, whose probes mostly succeed after
// retransmission, is caught by its counter trail. Corruption that escapes
// the FCS check leaves no fcs_errors at all; its trail is the receiving
// port's corrupt_delivered counter (PHY/FEC-symbol telemetry in real gear),
// fused here the same way so an escaped-FCS cable still localizes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/topo/trace.h"

namespace rocelab {

class GrayFailureLocalizer {
 public:
  explicit GrayFailureLocalizer(const Fabric& fabric) : fabric_(fabric) {}

  /// Feed one pingmesh probe outcome. `fwd_sport` identifies the request
  /// flow (src->dst), `rsp_sport` the response flow (dst->src) — both paths
  /// carried the probe, so both are charged with the outcome.
  void observe(const Host& src, const Host& dst, std::uint16_t fwd_sport,
               std::uint16_t rsp_sport, bool ok);

  struct Suspect {
    std::string node;  // transmitting end; (node, port) names the direction
    int port = -1;
    double score = 0.0;  // max(probe-loss share, FCS evidence)
    std::int64_t failed_probes = 0;
    std::int64_t total_probes = 0;
    std::int64_t fcs_errors = 0;        // observed at the receiving end
    std::int64_t corrupt_delivered = 0; // escaped-FCS corruption, receiving end
    std::string evidence;  // "+"-joined: probe-loss, fcs-counter, icrc-counter
  };

  /// Suspect directed links, worst first. Probe evidence needs at least
  /// `min_probes` traced probes over a link before its loss share counts
  /// (one unlucky probe must not outrank a steady signal); FCS evidence is
  /// binary and needs no minimum.
  [[nodiscard]] std::vector<Suspect> rank(int min_probes = 1) const;

  /// Human-readable top-N ranking for incident reports.
  [[nodiscard]] std::string report(int top_n = 5) const;

  [[nodiscard]] std::int64_t probes_observed() const { return observed_; }

 private:
  struct LinkTally {
    std::int64_t failed = 0;
    std::int64_t total = 0;
  };

  const Fabric& fabric_;
  // Keyed by (node name, port), not pointers: deterministic iteration order
  // makes rank() byte-stable across runs.
  std::map<std::pair<std::string, int>, LinkTally> tallies_;
  std::int64_t observed_ = 0;
};

}  // namespace rocelab
