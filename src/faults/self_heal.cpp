#include "src/faults/self_heal.h"

#include <cstdio>

#include "src/common/log.h"
#include "src/faults/chaos.h"
#include "src/monitor/metric_registry.h"
#include "src/switch/sw.h"
#include "src/topo/fabric.h"

namespace rocelab {

SelfHealer::SelfHealer(Fabric& fabric, const GrayFailureLocalizer& localizer, SelfHealConfig cfg)
    : fabric_(fabric), localizer_(localizer), cfg_(cfg) {
  MetricRegistry& reg = fabric_.sim().metrics();
  reg.add(this, "selfheal/scans", &stats_.scans);
  reg.add(this, "selfheal/cost_outs", &stats_.cost_outs);
  reg.add(this, "selfheal/restores", &stats_.restores);
  reg.add(this, "selfheal/floor_vetoes", &stats_.floor_vetoes);
  reg.add(this, "selfheal/budget_vetoes", &stats_.budget_vetoes);
  reg.add(this, "selfheal/active", &stats_.active);
}

SelfHealer::~SelfHealer() {
  stop();
  fabric_.sim().metrics().remove_owner(this);
}

void SelfHealer::start() {
  if (running_) return;
  running_ = true;
  scan_ev_ = fabric_.control_sim().schedule_in(cfg_.scan_interval, [this] { tick(); });
}

void SelfHealer::stop() {
  running_ = false;
  if (scan_ev_ != kInvalidEventId) {
    fabric_.control_sim().cancel(scan_ev_);
    scan_ev_ = kInvalidEventId;
  }
}

void SelfHealer::tick() {
  scan_ev_ = kInvalidEventId;
  if (!running_) return;
  scan();
  scan_ev_ = fabric_.control_sim().schedule_in(cfg_.scan_interval, [this] { tick(); });
}

bool SelfHealer::costed_out(const std::string& node, int port) const {
  const auto it = dirs_.find({node, port});
  return it != dirs_.end() && it->second.out;
}

void SelfHealer::scan() {
  ++stats_.scans;
  const Time now = fabric_.control_sim().now();

  // Phase 1: evidence pass over the localizer ranking.
  for (const auto& s : localizer_.rank(cfg_.min_probes)) {
    DirState& d = dirs_[{s.node, s.port}];
    const std::int64_t evidence = s.failed_probes + s.fcs_errors;

    if (d.out) {
      // Probation clock: localizer tallies never decay, so "clean" means
      // the cumulative tally stopped moving after the cost-out.
      if (evidence > d.evidence_mark) {
        d.evidence_mark = evidence;
        d.clean_since = now;
      }
      continue;
    }

    // Hysteresis: hot needs the score over threshold AND evidence beyond
    // what previous episodes already adjudicated, for confirm_scans in a
    // row. A direction oscillating around the threshold keeps resetting
    // its streak and never triggers.
    const bool hot = s.score >= cfg_.score_threshold && evidence > d.evidence_floor;
    if (!hot) {
      d.hot_streak = 0;
      continue;
    }
    if (++d.hot_streak < cfg_.confirm_scans) continue;
    d.hot_streak = 0;

    Switch* sw = fabric_.switch_by_name(s.node);
    if (sw == nullptr) {
      // Host-side direction: there is no ECMP group to steer. The CM /
      // application layer owns that repair; adjudicate the evidence so we
      // do not re-score it every scan.
      d.evidence_floor = evidence;
      continue;
    }
    if (stats_.active >= cfg_.max_concurrent) {
      ++stats_.budget_vetoes;
      d.evidence_floor = evidence;
      continue;
    }
    if (!sw->ecmp_cost_out_safe(s.port)) {
      ++stats_.floor_vetoes;
      d.evidence_floor = evidence;
      continue;
    }

    sw->set_port_weight(s.port, 0);
    d.out = true;
    d.clean_since = now;
    d.evidence_mark = evidence;
    d.episode = history_.size();
    Mitigation m;
    m.node = s.node;
    m.port = s.port;
    m.costed_out_at = now;
    m.score = s.score;
    m.failed_probes = s.failed_probes;
    m.fcs_errors = s.fcs_errors;
    history_.push_back(std::move(m));
    ++stats_.cost_outs;
    ++stats_.active;
    char detail[96];
    std::snprintf(detail, sizeof detail, "port %d score %.3f failed %lld fcs %lld", s.port,
                  s.score, static_cast<long long>(s.failed_probes),
                  static_cast<long long>(s.fcs_errors));
    ROCELAB_LOG_INFO("selfheal: cost out %s %s", s.node.c_str(), detail);
    if (chaos_) chaos_->record_mitigation(FaultKind::kEcmpCostOut, s.node, detail);
  }

  // Phase 2: restore pass — probation served with no new evidence, AND the
  // per-direction restore cooldown served since the last restore attempt
  // (a restore that proved premature must not retry every probation).
  for (auto& [key, d] : dirs_) {
    if (!d.out || now - d.clean_since < cfg_.probation) continue;
    if (d.last_restore_at >= 0 && now - d.last_restore_at < cfg_.restore_cooldown) continue;
    Switch* sw = fabric_.switch_by_name(key.first);
    if (sw != nullptr) sw->restore_port_weight(key.second);
    d.out = false;
    d.last_restore_at = now;
    d.hot_streak = 0;
    d.evidence_floor = d.evidence_mark;
    history_[d.episode].restored_at = now;
    ++stats_.restores;
    --stats_.active;
    ROCELAB_LOG_INFO("selfheal: restore %s port %d", key.first.c_str(), key.second);
    if (chaos_) {
      chaos_->record_mitigation(FaultKind::kEcmpRestore, key.first,
                                "port " + std::to_string(key.second));
    }
  }
}

}  // namespace rocelab
