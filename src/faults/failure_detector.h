// FailureDetector: turns per-peer probe outcomes (from RdmaPingmesh, §5.3)
// into raise/clear alarms. An alarm raises after `raise_after` consecutive
// lost probes to one peer and clears after `clear_after` consecutive
// successes — the hysteresis keeps one congestion-dropped probe from paging
// anyone, while a dead link/host/switch path alarms within a few intervals.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"

namespace rocelab {

class FailureDetector {
 public:
  struct Options {
    int raise_after = 3;  // consecutive probe losses before alarming
    int clear_after = 2;  // consecutive successes before the all-clear
  };

  struct AlarmEvent {
    Time at = 0;
    std::uint32_t peer = 0;  // the probing QPN identifying the peer path
    bool raised = false;     // false = cleared
  };

  FailureDetector();  // default Options
  explicit FailureDetector(Options opts) : opts_(opts) {}

  /// Feed one probe outcome. Wire directly to RdmaPingmesh::set_probe_cb:
  ///   pingmesh.set_probe_cb([&](uint32_t qpn, bool ok, Time) {
  ///     detector.observe(now, qpn, ok); });
  void observe(Time now, std::uint32_t peer, bool ok);

  [[nodiscard]] bool alarmed(std::uint32_t peer) const {
    auto it = peers_.find(peer);
    return it != peers_.end() && it->second.alarmed;
  }
  [[nodiscard]] int active_alarms() const;
  [[nodiscard]] std::int64_t alarms_raised() const { return raised_; }
  [[nodiscard]] std::int64_t alarms_cleared() const { return cleared_; }
  [[nodiscard]] const std::vector<AlarmEvent>& history() const { return history_; }

 private:
  struct PeerState {
    int consecutive_failed = 0;
    int consecutive_ok = 0;
    bool alarmed = false;
  };

  Options opts_;
  std::unordered_map<std::uint32_t, PeerState> peers_;
  std::vector<AlarmEvent> history_;
  std::int64_t raised_ = 0;
  std::int64_t cleared_ = 0;
};

}  // namespace rocelab
