// FailureDetector: turns per-peer probe outcomes (from RdmaPingmesh, §5.3)
// into raise/clear alarms. Two independent triggers:
//  - consecutive losses: `raise_after` lost probes in a row (a dead
//    link/host/switch path alarms within a few intervals);
//  - windowed loss *rate*: a gray, lossy-but-up path (§5.2) never loses
//    enough probes in a row to trip the consecutive logic, but its loss
//    fraction over the last `loss_window` probes gives it away.
// Hysteresis on both: one congestion-dropped probe pages no one, and an
// alarm only clears after `clear_after` straight successes AND (when the
// window is enabled) the windowed rate has fallen back below
// `clear_loss_rate` — a flapping peer cannot bounce the alarm.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"

namespace rocelab {

class FailureDetector {
 public:
  struct Options {
    int raise_after = 3;  // consecutive probe losses before alarming
    int clear_after = 2;  // consecutive successes before the all-clear
    /// Sliding window (in probes) for the loss-rate trigger; 0 disables it
    /// and preserves the pure consecutive-loss behaviour exactly.
    int loss_window = 0;
    double raise_loss_rate = 0.25;  // alarm when window loss fraction >= this
    double clear_loss_rate = 0.05;  // all-clear requires fraction <= this
  };

  enum class Reason { kConsecutive, kLossRate };

  struct AlarmEvent {
    Time at = 0;
    std::uint32_t peer = 0;  // the probing QPN identifying the peer path
    bool raised = false;     // false = cleared
    Reason reason = Reason::kConsecutive;  // which trigger raised it
  };

  FailureDetector();  // default Options
  explicit FailureDetector(Options opts) : opts_(opts) {}

  /// Feed one probe outcome. Wire directly to RdmaPingmesh::set_probe_cb:
  ///   pingmesh.set_probe_cb([&](uint32_t qpn, bool ok, Time) {
  ///     detector.observe(now, qpn, ok); });
  void observe(Time now, std::uint32_t peer, bool ok);

  [[nodiscard]] bool alarmed(std::uint32_t peer) const {
    auto it = peers_.find(peer);
    return it != peers_.end() && it->second.alarmed;
  }
  /// Loss fraction over the current window for `peer` (0 when the window is
  /// disabled or empty) — the gray-failure severity signal.
  [[nodiscard]] double loss_rate(std::uint32_t peer) const;
  [[nodiscard]] int active_alarms() const;
  [[nodiscard]] std::int64_t alarms_raised() const { return raised_; }
  [[nodiscard]] std::int64_t alarms_cleared() const { return cleared_; }
  [[nodiscard]] const std::vector<AlarmEvent>& history() const { return history_; }

 private:
  struct PeerState {
    int consecutive_failed = 0;
    int consecutive_ok = 0;
    bool alarmed = false;
    std::deque<bool> window;  // true = loss, newest at the back
    int window_losses = 0;
  };

  Options opts_;
  std::unordered_map<std::uint32_t, PeerState> peers_;
  std::vector<AlarmEvent> history_;
  std::int64_t raised_ = 0;
  std::int64_t cleared_ = 0;
};

}  // namespace rocelab
