#include "src/faults/localizer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace rocelab {

void GrayFailureLocalizer::observe(const Host& src, const Host& dst, std::uint16_t fwd_sport,
                                   std::uint16_t rsp_sport, bool ok) {
  ++observed_;
  for (const auto& hops : {trace_route(fabric_, src, dst, fwd_sport),
                           trace_route(fabric_, dst, src, rsp_sport)}) {
    for (const TraceHop& h : hops) {
      LinkTally& t = tallies_[{h.node->name(), h.port}];
      ++t.total;
      if (!ok) ++t.failed;
    }
  }
}

std::vector<GrayFailureLocalizer::Suspect> GrayFailureLocalizer::rank(int min_probes) const {
  std::map<std::pair<std::string, int>, Suspect> suspects;
  for (const auto& [key, tally] : tallies_) {
    if (tally.total < min_probes) continue;
    Suspect s;
    s.node = key.first;
    s.port = key.second;
    s.failed_probes = tally.failed;
    s.total_probes = tally.total;
    s.score = static_cast<double>(tally.failed) / static_cast<double>(tally.total);
    if (tally.failed > 0) s.evidence = "probe-loss";
    suspects.emplace(key, std::move(s));
  }

  // Counter evidence: FCS errors and escaped-FCS corruption are both
  // counted at the *receiving* port of a direction, so attribute them back
  // to the transmitting (peer) side — the suspect is the link direction,
  // named by its sender. §5.2 treats any non-zero count as a bad cable, so
  // both kinds of evidence are binary. Host NIC icrc_errors are NOT turned
  // into suspects here: every receiver would implicate only its own access
  // link even when a spine cable corrupted the flow. The per-port counter
  // fires exactly at the bad hop; the NIC counter corroborates, port
  // telemetry localizes.
  auto scan_node = [&](const Node& n) {
    for (int p = 0; p < n.port_count(); ++p) {
      const EgressPort& rx = n.port(p);
      const std::int64_t fcs = rx.counters().fcs_errors;
      const std::int64_t corrupt = rx.counters().corrupt_delivered;
      if ((fcs == 0 && corrupt == 0) || !rx.connected()) continue;
      const std::pair<std::string, int> key{rx.peer()->name(), rx.peer_port()};
      Suspect& s = suspects[key];
      s.node = key.first;
      s.port = key.second;
      s.fcs_errors = fcs;
      s.corrupt_delivered = corrupt;
      s.score = std::max(s.score, 1.0);
      if (fcs > 0) {
        s.evidence = s.evidence.empty() ? "fcs-counter" : s.evidence + "+fcs-counter";
      }
      if (corrupt > 0) {
        s.evidence = s.evidence.empty() ? "icrc-counter" : s.evidence + "+icrc-counter";
      }
    }
  };
  for (const auto& sw : fabric_.switches()) scan_node(*sw);
  for (const auto& h : fabric_.hosts()) scan_node(*h);

  std::vector<Suspect> out;
  out.reserve(suspects.size());
  for (auto& [key, s] : suspects) {
    (void)key;
    if (s.score > 0.0) out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const Suspect& a, const Suspect& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.failed_probes != b.failed_probes) return a.failed_probes > b.failed_probes;
    if (a.fcs_errors != b.fcs_errors) return a.fcs_errors > b.fcs_errors;
    if (a.corrupt_delivered != b.corrupt_delivered)
      return a.corrupt_delivered > b.corrupt_delivered;
    if (a.node != b.node) return a.node < b.node;
    return a.port < b.port;
  });
  return out;
}

std::string GrayFailureLocalizer::report(int top_n) const {
  std::ostringstream os;
  const auto ranked = rank();
  const int n = std::min<int>(top_n, static_cast<int>(ranked.size()));
  for (int i = 0; i < n; ++i) {
    const Suspect& s = ranked[static_cast<std::size_t>(i)];
    char line[256];
    std::snprintf(line, sizeof line,
                  "%d. %s:%d score=%.3f probes=%lld/%lld fcs=%lld corrupt=%lld [%s]\n", i + 1,
                  s.node.c_str(), s.port, s.score, static_cast<long long>(s.failed_probes),
                  static_cast<long long>(s.total_probes), static_cast<long long>(s.fcs_errors),
                  static_cast<long long>(s.corrupt_delivered), s.evidence.c_str());
    os << line;
  }
  return os.str();
}

}  // namespace rocelab
