// InvariantAuditor: an always-on monitor that sweeps the fabric every
// `interval` and records violations of invariants that must hold no matter
// what faults are in flight:
//
//   kPfcDeadlock       — the PFC wait-for graph has a cycle (§4.2). A
//                        correctly configured fabric must never deadlock,
//                        chaos or not.
//   kByteConservation  — a switch's (in, out, pg) matrix disagrees with the
//                        bytes actually queued at its egress ports, or the
//                        MMU's shared-pool counter disagrees with the per-PG
//                        recomputation. Either means buffer accounting
//                        leaked or double-released — the class of bug that
//                        turns into a slow buffer exhaustion in production.
//   kPauseStorm        — a host emitted pause frames in `storm_windows`
//                        consecutive audit windows (§4.3's symptom). This is
//                        a flag, not necessarily a bug: chaos soaks expect
//                        it exactly while a NIC storm is injected.
//   kBlastRadius       — a pod's costed-out capacity gauge exceeded the
//                        configured budget. The incident manager enforces
//                        the budget at decision time; this is the
//                        independent check that no actor (manager bug,
//                        bypassing control loop) ever blew past it.
//   kDataIntegrity     — a host NIC completed a message whose payload was
//                        corrupted in flight (§5.2's silent-corruption
//                        hazard). With ICRC verification on, this must
//                        never fire; the no-integrity baseline arm of
//                        bench/fig_corruption exists to show it firing.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/nic/host.h"
#include "src/sim/simulator.h"
#include "src/switch/sw.h"

namespace rocelab {

class MetricRegistry;

class InvariantAuditor {
 public:
  enum class Kind {
    kPfcDeadlock,
    kByteConservation,
    kPauseStorm,
    kBlastRadius,
    kDataIntegrity,
  };

  struct Options {
    Time interval = microseconds(200);
    /// Consecutive windows with host pause-frame emission before flagging.
    int storm_windows = 5;
    /// Blast-radius check: every gauge matching `blast_pattern` in
    /// `registry` must stay <= `blast_budget_bp` (basis points). Disabled
    /// while `registry` is null or the budget is negative.
    const MetricRegistry* registry = nullptr;
    std::string blast_pattern = "fleet/*/costed_capacity_frac_bp";
    std::int64_t blast_budget_bp = -1;
  };

  struct Violation {
    Time at = 0;
    Kind kind{};
    std::string node;
    std::string detail;
  };

  InvariantAuditor(Simulator& sim, std::vector<Switch*> switches, std::vector<Host*> hosts);
  InvariantAuditor(Simulator& sim, std::vector<Switch*> switches, std::vector<Host*> hosts,
                   Options opts);

  void start();
  void stop() { running_ = false; }

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] std::int64_t count(Kind kind) const;
  /// Deadlock + conservation + blast-radius + data-integrity — the "must be
  /// zero" set for any healthy run (blast-radius only counts when
  /// configured).
  [[nodiscard]] std::int64_t hard_violations() const {
    return count(Kind::kPfcDeadlock) + count(Kind::kByteConservation) +
           count(Kind::kBlastRadius) + count(Kind::kDataIntegrity);
  }
  [[nodiscard]] std::int64_t checks_run() const { return checks_run_; }

 private:
  void tick();
  void flag(Kind kind, const std::string& node, std::string detail);

  Simulator& sim_;
  std::vector<Switch*> switches_;
  std::vector<Host*> hosts_;
  Options opts_;
  bool running_ = false;
  bool deadlock_flagged_ = false;  // one violation per deadlock episode
  std::vector<Violation> violations_;
  std::int64_t checks_run_ = 0;
  struct StormState {
    std::int64_t last_pause_count = 0;
    int active_windows = 0;
    int quiet_streak = 0;  // storm pause refreshes may straddle windows
    bool flagged = false;  // one violation per storm episode
  };
  std::unordered_map<const Host*, StormState> storm_;
  std::unordered_map<std::string, bool> blast_flagged_;  // one per over-budget episode
  // Per-host corrupt-completion baselines: every increase is a violation
  // (each torn completion handed to an application WQE counts once).
  std::unordered_map<const Host*, std::int64_t> corrupt_baseline_;
};

[[nodiscard]] const char* to_string(InvariantAuditor::Kind kind);

}  // namespace rocelab
