// SelfHealer: the first control loop that writes back to the data plane —
// now the *per-direction* baseline of the ops plane. The fleet-level
// IncidentManager (src/faults/incident_manager.h) consumes the same
// localizer evidence but adjudicates across concurrent incidents (switch
// drains, config rollback, blast-radius budget); run one or the other, not
// both, against a fabric.
// It closes the ROADMAP's detect->mitigate gap: the GrayFailureLocalizer
// (§6-style incident localization) ranks suspect directed links, and when a
// (node, port) direction holds enough evidence for long enough, the healer
// costs that port out of its ECMP groups on the owning switch
// (Switch::set_port_weight(port, 0)) so flows re-hash onto healthy members
// — mid-stream, with no QP teardown, which is what beats the CM-reconnect
// baseline on time-to-mitigate.
//
// Safety rules:
//  - hysteresis: a direction must stay over the score threshold, with NEW
//    evidence, for `confirm_scans` consecutive scans before any action;
//  - capacity floor: never cost out the last usable weighted member of any
//    group (Switch::ecmp_cost_out_safe), and never exceed `max_concurrent`
//    simultaneous mitigations fabric-wide;
//  - probation: once costed out, the direction stops carrying probes, so
//    its localizer tallies freeze; after `probation` with no new evidence
//    the weight is restored (a still-bad link re-accumulates evidence and
//    is costed out again — flap period bounded below by the probation).
//
// Determinism: the healer draws no randomness; scans fire on the simulator
// clock and rank() is byte-stable, so the mitigation sequence is a pure
// function of the run. Every action is journalled through the ChaosEngine
// (FaultKind::kEcmpCostOut / kEcmpRestore) when one is attached, keeping
// chaos replays byte-identical.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/faults/localizer.h"

namespace rocelab {

class ChaosEngine;

struct SelfHealConfig {
  Time scan_interval = milliseconds(1);
  /// Localizer score a direction needs for a scan to count as "hot".
  double score_threshold = 0.5;
  /// Passed to GrayFailureLocalizer::rank(): traced probes required before
  /// probe-loss evidence counts.
  int min_probes = 5;
  /// Consecutive hot scans (each with new evidence) before costing out.
  int confirm_scans = 2;
  /// Evidence-free time costed out before the weight is restored.
  Time probation = milliseconds(20);
  /// Minimum sim-time between restore attempts on one direction. A costed-
  /// out direction carries no probes, so a still-active impairment looks
  /// clean and the probation alone would restore + re-cost it every
  /// `probation` — this bounds the flap period from below after the first
  /// restore proves premature.
  Time restore_cooldown = milliseconds(60);
  /// Fabric-wide cap on simultaneous cost-outs.
  int max_concurrent = 4;
};

struct SelfHealStats {
  std::int64_t scans = 0;
  std::int64_t cost_outs = 0;
  std::int64_t restores = 0;
  std::int64_t floor_vetoes = 0;   // refused: last member / not in any group
  std::int64_t budget_vetoes = 0;  // refused: max_concurrent reached
  std::int64_t active = 0;         // currently costed-out directions
};

/// One mitigation episode, for incident reports and the fig_self_heal
/// time-to-mitigate measurement.
struct Mitigation {
  std::string node;
  int port = -1;
  Time costed_out_at = -1;
  Time restored_at = -1;  // -1 while still out
  double score = 0.0;
  std::int64_t failed_probes = 0;
  std::int64_t fcs_errors = 0;
};

class SelfHealer {
 public:
  SelfHealer(Fabric& fabric, const GrayFailureLocalizer& localizer, SelfHealConfig cfg = {});
  ~SelfHealer();
  SelfHealer(const SelfHealer&) = delete;
  SelfHealer& operator=(const SelfHealer&) = delete;

  /// Attach a journal: every cost-out/restore is recorded as a fault-plane
  /// event so replays of a chaos run stay byte-identical.
  void set_chaos(ChaosEngine* chaos) { chaos_ = chaos; }

  void start();
  void stop();

  /// Run one evidence scan synchronously (tests drive the loop by hand).
  void scan_now() { scan(); }

  [[nodiscard]] bool costed_out(const std::string& node, int port) const;
  [[nodiscard]] const SelfHealStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<Mitigation>& history() const { return history_; }
  [[nodiscard]] const SelfHealConfig& config() const { return cfg_; }

 private:
  struct DirState {
    int hot_streak = 0;
    bool out = false;
    Time clean_since = -1;            // last time new evidence arrived while out
    Time last_restore_at = -1;        // restore-cooldown clock (-1: never restored)
    std::int64_t evidence_mark = 0;   // tally (failed + fcs) at cost-out / last growth
    std::int64_t evidence_floor = 0;  // tally already adjudicated (restored or vetoed)
    std::size_t episode = 0;          // index into history_ while out
  };

  void tick();
  void scan();

  Fabric& fabric_;
  const GrayFailureLocalizer& localizer_;
  SelfHealConfig cfg_;
  ChaosEngine* chaos_ = nullptr;
  bool running_ = false;
  EventId scan_ev_ = kInvalidEventId;
  // Keyed by (node name, port) like the localizer: deterministic iteration
  // makes the restore pass byte-stable.
  std::map<std::pair<std::string, int>, DirState> dirs_;
  SelfHealStats stats_;
  std::vector<Mitigation> history_;
};

}  // namespace rocelab
