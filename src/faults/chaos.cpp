#include "src/faults/chaos.h"

#include <cstdio>
#include <sstream>

#include "src/common/log.h"

namespace rocelab {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kSwitchReboot: return "switch_reboot";
    case FaultKind::kSwitchRecover: return "switch_recover";
    case FaultKind::kHostDeath: return "host_death";
    case FaultKind::kHostRevival: return "host_revival";
    case FaultKind::kNicStormStart: return "nic_storm_start";
    case FaultKind::kNicStormStop: return "nic_storm_stop";
    case FaultKind::kAlphaDrift: return "alpha_drift";
    case FaultKind::kEcnDisable: return "ecn_disable";
    case FaultKind::kLinkImpair: return "link_impair";
    case FaultKind::kLinkImpairClear: return "link_impair_clear";
    case FaultKind::kQpFaultStart: return "qp_fault_start";
    case FaultKind::kQpFaultStop: return "qp_fault_stop";
    case FaultKind::kDropFilterSet: return "drop_filter_set";
    case FaultKind::kDropFilterClear: return "drop_filter_clear";
    case FaultKind::kEcmpCostOut: return "ecmp_cost_out";
    case FaultKind::kEcmpRestore: return "ecmp_restore";
    case FaultKind::kSwitchDrain: return "switch_drain";
    case FaultKind::kSwitchUndrain: return "switch_undrain";
    case FaultKind::kConfigRollback: return "config_rollback";
    case FaultKind::kMitigationShed: return "mitigation_shed";
    case FaultKind::kCableReplace: return "cable_replace";
    case FaultKind::kCableReplaced: return "cable_replaced";
  }
  return "unknown";
}

ChaosEngine::ChaosEngine(Fabric& fabric, std::uint64_t seed)
    : fabric_(fabric), seed_(seed), rng_(seed) {}

void ChaosEngine::record_mitigation(FaultKind kind, const std::string& target,
                                    std::string detail) {
  record(kind, target, std::move(detail));
}

void ChaosEngine::record(FaultKind kind, const std::string& target, std::string detail) {
  journal_.push_back(FaultRecord{fabric_.control_sim().now(), kind, target, std::move(detail)});
  ROCELAB_LOG_INFO("chaos: %s %s %s", to_string(kind), target.c_str(),
                   journal_.back().detail.c_str());
}

void ChaosEngine::link_flap(Node& node, int port, Time down_at, Time up_at) {
  const std::string detail = "port " + std::to_string(port);
  fabric_.control_sim().schedule_at(down_at, [this, &node, port, detail] {
    node.set_link_up(port, false);
    record(FaultKind::kLinkDown, node.name(), detail);
  });
  fabric_.control_sim().schedule_at(up_at, [this, &node, port, detail] {
    node.set_link_up(port, true);
    record(FaultKind::kLinkUp, node.name(), detail);
  });
}

void ChaosEngine::switch_reboot(Switch& sw, Time at, Time recover_at, bool reinstall_entries) {
  fabric_.control_sim().schedule_at(at, [this, &sw] {
    // Links die first (in-flight and queued frames are lost on the wire),
    // then the control plane forgets everything it learned.
    for (int p = 0; p < sw.port_count(); ++p) sw.set_link_up(p, false);
    sw.reboot();
    record(FaultKind::kSwitchReboot, sw.name());
  });
  fabric_.control_sim().schedule_at(recover_at, [this, &sw, reinstall_entries] {
    for (int p = 0; p < sw.port_count(); ++p) sw.set_link_up(p, true);
    if (reinstall_entries) fabric_.reinstall_host_entries(sw);
    record(FaultKind::kSwitchRecover, sw.name(),
           reinstall_entries ? "entries reinstalled" : "tables cold");
  });
}

void ChaosEngine::host_death(Host& h, Time at, Time revive_at) {
  fabric_.control_sim().schedule_at(at, [this, &h] {
    fabric_.kill_host(h);
    record(FaultKind::kHostDeath, h.name());
  });
  if (revive_at >= 0) {
    fabric_.control_sim().schedule_at(revive_at, [this, &h] {
      fabric_.revive_host(h);
      record(FaultKind::kHostRevival, h.name());
    });
  }
}

void ChaosEngine::nic_storm(Host& h, Time at, Time stop_at) {
  fabric_.control_sim().schedule_at(at, [this, &h] {
    h.set_storm_mode(true);
    record(FaultKind::kNicStormStart, h.name());
  });
  fabric_.control_sim().schedule_at(stop_at, [this, &h] {
    h.set_storm_mode(false);
    record(FaultKind::kNicStormStop, h.name());
  });
}

void ChaosEngine::alpha_drift(Switch& sw, Time at, double alpha) {
  fabric_.control_sim().schedule_at(at, [this, &sw, alpha] {
    sw.set_buffer_alpha(alpha);
    std::ostringstream os;
    os << "alpha " << alpha;
    record(FaultKind::kAlphaDrift, sw.name(), os.str());
  });
}

void ChaosEngine::ecn_disable(Switch& sw, Time at) {
  fabric_.control_sim().schedule_at(at, [this, &sw] {
    for (int pg = 0; pg < kNumPriorities; ++pg) {
      EcnConfig off = sw.config().ecn[static_cast<std::size_t>(pg)];
      off.enabled = false;
      sw.set_ecn_config(pg, off);
    }
    record(FaultKind::kEcnDisable, sw.name());
  });
}

namespace {

std::string impair_detail(int port, const LinkImpairment& imp) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "port %d fcs=%g delay=%lld jitter=%lld blackhole=%d flows=%g seed=%llu", port,
                imp.fcs_drop_rate, static_cast<long long>(imp.added_delay),
                static_cast<long long>(imp.jitter), imp.blackhole ? 1 : 0,
                imp.flow_blackhole_frac, static_cast<unsigned long long>(imp.seed));
  std::string out = buf;
  // Appended only when the corruption plane is in play, so journals from
  // fcs-only schedules (and their golden hashes) stay byte-identical.
  if (imp.corrupt_deliver_rate > 0.0) {
    std::snprintf(buf, sizeof buf, " corrupt=%g escape=%g", imp.corrupt_deliver_rate,
                  imp.escape_fcs_frac);
    out += buf;
  }
  return out;
}

std::string qp_fault_detail(std::uint32_t qpn, const QpFaultSpec& spec) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "qpn %u drop=%g reorder=%g dup_ack=%g seed=%llu", qpn,
                spec.drop_rate, spec.reorder_rate, spec.dup_ack_rate,
                static_cast<unsigned long long>(spec.seed));
  return buf;
}

}  // namespace

void ChaosEngine::impair_link(Node& node, int port, const LinkImpairment& imp, Time at,
                              Time clear_at) {
  fabric_.control_sim().schedule_at(at, [this, &node, port, imp] {
    node.port(port).set_impairment(imp);
    record(FaultKind::kLinkImpair, node.name(), impair_detail(port, imp));
  });
  if (clear_at >= 0) {
    fabric_.control_sim().schedule_at(clear_at, [this, &node, port] {
      node.port(port).clear_impairment();
      record(FaultKind::kLinkImpairClear, node.name(), "port " + std::to_string(port));
    });
  }
}

void ChaosEngine::qp_fault(Host& h, std::uint32_t qpn, const QpFaultSpec& spec, Time at,
                           Time stop_at) {
  fabric_.control_sim().schedule_at(at, [this, &h, qpn, spec] {
    h.rdma().set_qp_fault(qpn, spec);
    record(FaultKind::kQpFaultStart, h.name(), qp_fault_detail(qpn, spec));
  });
  if (stop_at >= 0) {
    fabric_.control_sim().schedule_at(stop_at, [this, &h, qpn] {
      h.rdma().clear_qp_fault(qpn);
      record(FaultKind::kQpFaultStop, h.name(), "qpn " + std::to_string(qpn));
    });
  }
}

void ChaosEngine::drop_filter(Switch& sw, std::function<bool(const Packet&)> pred,
                              const std::string& what, Time at, Time clear_at) {
  fabric_.control_sim().schedule_at(at, [this, &sw, pred = std::move(pred), what]() mutable {
    sw.set_drop_filter(std::move(pred));
    record(FaultKind::kDropFilterSet, sw.name(), what);
  });
  if (clear_at >= 0) {
    fabric_.control_sim().schedule_at(clear_at, [this, &sw] {
      sw.set_drop_filter(nullptr);
      record(FaultKind::kDropFilterClear, sw.name());
    });
  }
}

std::string ChaosEngine::journal_text() const {
  std::ostringstream os;
  for (const auto& r : journal_) {
    os << r.at << ' ' << to_string(r.kind) << ' ' << r.target;
    if (!r.detail.empty()) os << ' ' << r.detail;
    os << '\n';
  }
  return os.str();
}

std::uint64_t ChaosEngine::journal_hash() const {
  // FNV-1a over the journal text. Timestamps in the journal are scheduled
  // (not measured) times, so the hash is stable across build flavours —
  // the CI soak compares it against a golden value.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : journal_text()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace rocelab
