#include "src/faults/incident_manager.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/common/log.h"
#include "src/faults/auditor.h"
#include "src/faults/chaos.h"
#include "src/faults/failure_detector.h"
#include "src/monitor/health.h"
#include "src/monitor/metric_registry.h"
#include "src/switch/sw.h"
#include "src/topo/fabric.h"

namespace rocelab {

const char* to_string(IncidentKind kind) {
  switch (kind) {
    case IncidentKind::kGrayDirection: return "gray_direction";
    case IncidentKind::kConfigDrift: return "config_drift";
    case IncidentKind::kPauseStorm: return "pause_storm";
  }
  return "unknown";
}

const char* to_string(MitigationKind kind) {
  switch (kind) {
    case MitigationKind::kCostOut: return "cost_out";
    case MitigationKind::kSwitchDrain: return "switch_drain";
    case MitigationKind::kConfigRollback: return "config_rollback";
    case MitigationKind::kCableReplace: return "cable_replace";
  }
  return "unknown";
}

IncidentManager::IncidentManager(Fabric& fabric, const GrayFailureLocalizer& localizer,
                                 IncidentManagerConfig cfg)
    : fabric_(fabric), localizer_(localizer), cfg_(cfg) {
  MetricRegistry& reg = fabric_.sim().metrics();
  reg.add(this, "incmgr/scans", &stats_.scans);
  reg.add(this, "incmgr/incidents_opened", &stats_.incidents_opened);
  reg.add(this, "incmgr/cost_outs", &stats_.cost_outs);
  reg.add(this, "incmgr/drains", &stats_.drains);
  reg.add(this, "incmgr/rollbacks", &stats_.rollbacks);
  reg.add(this, "incmgr/cable_replaces", &stats_.cable_replaces);
  reg.add(this, "incmgr/restores", &stats_.restores);
  reg.add(this, "incmgr/sheds", &stats_.sheds);
  reg.add(this, "incmgr/floor_vetoes", &stats_.floor_vetoes);
  reg.add(this, "incmgr/budget_vetoes", &stats_.budget_vetoes);
  reg.add(this, "incmgr/active", &stats_.active, MetricKind::kGauge);
  reg.add(this, "incmgr/open_incidents", &stats_.open_incidents, MetricKind::kGauge);
  reg.add(this, "incmgr/detector_alarms", &stats_.detector_alarms, MetricKind::kGauge);
  // One blast-radius gauge per pod present in the fabric (spine pool: -1).
  for (const auto& swp : fabric_.switches()) pod_gauge_.emplace(pod_of(swp->name()), 0);
  for (auto& [pod, value] : pod_gauge_) {
    const std::string name = pod < 0
                                 ? std::string("fleet/spine/costed_capacity_frac_bp")
                                 : "fleet/pod" + std::to_string(pod) + "/costed_capacity_frac_bp";
    reg.add(this, name, &value, MetricKind::kGauge);
  }
}

IncidentManager::~IncidentManager() {
  stop();
  fabric_.sim().metrics().remove_owner(this);
}

void IncidentManager::set_golden_policy(QosPolicy policy, DeploymentStage stage) {
  golden_ = policy;
  golden_stage_ = stage;
  have_golden_ = true;
}

void IncidentManager::start() {
  if (running_) return;
  running_ = true;
  scan_ev_ = fabric_.control_sim().schedule_in(cfg_.scan_interval, [this] { tick(); });
}

void IncidentManager::stop() {
  running_ = false;
  if (scan_ev_ != kInvalidEventId) {
    fabric_.control_sim().cancel(scan_ev_);
    scan_ev_ = kInvalidEventId;
  }
}

void IncidentManager::tick() {
  scan_ev_ = kInvalidEventId;
  if (!running_) return;
  scan();
  scan_ev_ = fabric_.control_sim().schedule_in(cfg_.scan_interval, [this] { tick(); });
}

int IncidentManager::pod_of(const std::string& name) {
  const auto a = name.find('-');
  if (a == std::string::npos) return -1;
  if (name.compare(0, a, "spine") == 0) return -1;
  const auto b = name.find('-', a + 1);
  const std::string tok =
      name.substr(a + 1, b == std::string::npos ? std::string::npos : b - a - 1);
  if (tok.empty()) return -1;
  for (const char c : tok) {
    if (c < '0' || c > '9') return -1;
  }
  return std::atoi(tok.c_str());
}

bool IncidentManager::costed_out(const std::string& node, int port) const {
  for (const auto& m : mitigations_) {
    if ((m.kind == MitigationKind::kCostOut || m.kind == MitigationKind::kCableReplace) &&
        m.reverted_at < 0 && m.target == node && m.port == port) {
      return true;
    }
  }
  return false;
}

bool IncidentManager::switch_drained(const std::string& name) const {
  for (const auto& m : mitigations_) {
    if (m.kind == MitigationKind::kSwitchDrain && m.reverted_at < 0 && m.target == name) {
      return true;
    }
  }
  return false;
}

std::map<int, IncidentManager::PodCap> IncidentManager::capacity() const {
  std::map<int, PodCap> cap;
  for (const auto& swp : fabric_.switches()) {
    const Switch* sw = swp.get();
    PodCap& pc = cap[pod_of(sw->name())];
    for (const int p : sw->ecmp_member_ports()) {
      ++pc.total;
      if (sw->port_weight(p) == 0) ++pc.costed;
    }
  }
  return cap;
}

double IncidentManager::pod_costed_frac(int pod) const {
  const auto cap = capacity();
  const auto it = cap.find(pod);
  if (it == cap.end() || it->second.total == 0) return 0.0;
  return static_cast<double>(it->second.costed) / static_cast<double>(it->second.total);
}

void IncidentManager::update_gauges() {
  const auto cap = capacity();
  for (auto& [pod, value] : pod_gauge_) {
    const auto it = cap.find(pod);
    value = (it == cap.end() || it->second.total == 0)
                ? 0
                : it->second.costed * 10000 / it->second.total;
  }
  std::int64_t open = 0;
  for (const auto& i : incidents_) {
    if (i.resolved_at < 0) ++open;
  }
  stats_.open_incidents = open;
  stats_.detector_alarms = detector_ != nullptr ? detector_->active_alarms() : 0;
}

std::size_t IncidentManager::open_incident(IncidentKind kind, const std::string& node, int port,
                                           double score, std::string evidence, Time now) {
  Incident inc;
  inc.kind = kind;
  inc.node = node;
  inc.port = port;
  inc.opened_at = now;
  inc.score = score;
  inc.evidence = std::move(evidence);
  incidents_.push_back(std::move(inc));
  ++stats_.incidents_opened;
  ROCELAB_LOG_INFO("incmgr: incident %s %s port %d: %s", to_string(kind), node.c_str(), port,
                   incidents_.back().evidence.c_str());
  return incidents_.size() - 1;
}

void IncidentManager::adjudicate_dir(DirState& d) {
  // Vetoed (floor or budget) or freshly restored: the incident stays on the
  // books, but re-mitigation requires fresh evidence past what was already
  // adjudicated, plus a full re-confirmation streak.
  d.confirmed = false;
  d.hot_streak = 0;
  d.evidence_floor = d.evidence;
}

void IncidentManager::merge_evidence(Time now) {
  struct Obs {
    double score = 0.0;
    std::int64_t evidence = 0;
    bool corrupt = false;
    std::string why;
  };
  std::map<DirKey, Obs> obs;
  for (const auto& s : localizer_.rank(cfg_.min_probes)) {
    Obs& o = obs[{s.node, s.port}];
    o.score = s.score;
    o.evidence = s.failed_probes + s.fcs_errors + s.corrupt_delivered;
    // Delivered corruption means the cable is actively damaging payloads
    // the FCS can't catch — routing around it leaves a booby-trapped link
    // in the fabric, so these directions get the physical repair. FCS-only
    // evidence keeps the established cost-out path.
    o.corrupt = s.corrupt_delivered > 0;
    o.why = s.evidence;
  }
  if (health_ != nullptr) {
    // §5.2 counter corroboration: a flagged direction is treated as surely
    // bad even while probe evidence is still accumulating.
    for (const auto& key : health_->flagged()) {
      Obs& o = obs[key];
      o.score = std::max(o.score, 1.0);
      o.evidence += 1;
      o.why += o.why.empty() ? "fcs-watch" : "+fcs-watch";
    }
  }

  for (const auto& [key, o] : obs) {
    DirState& d = dirs_[key];
    d.score = o.score;
    d.evidence = o.evidence;
    d.corrupt_evidence = d.corrupt_evidence || o.corrupt;
    if (d.mitigated || d.confirmed) continue;  // probation / adjudication owns it

    const bool hot = o.score >= cfg_.score_threshold && o.evidence > d.evidence_floor;
    if (!hot) {
      d.hot_streak = 0;
      continue;
    }
    if (++d.hot_streak < cfg_.confirm_scans) continue;
    d.hot_streak = 0;

    if (fabric_.switch_by_name(key.first) == nullptr) {
      // Host-side direction: no ECMP group to steer — the CM / application
      // layer owns that repair. Adjudicate so we do not re-score it.
      d.evidence_floor = o.evidence;
      continue;
    }
    d.confirmed = true;
    if (d.incident == kNoIncident || incidents_[d.incident].resolved_at >= 0) {
      d.incident = open_incident(IncidentKind::kGrayDirection, key.first, key.second, o.score,
                                 o.why, now);
    } else {
      incidents_[d.incident].score = o.score;
      incidents_[d.incident].evidence = o.why;
    }
  }
}

void IncidentManager::check_drift(Time now) {
  std::vector<Switch*> sws;
  sws.reserve(fabric_.switches().size());
  for (const auto& swp : fabric_.switches()) sws.push_back(swp.get());
  const std::vector<ConfigDrift> drifts = check_switch_configs(sws, golden_, golden_stage_);

  // Resolve incidents whose field came back clean (the scan after a
  // rollback lands here — detection to resolution within two scans).
  for (auto it = drift_open_.begin(); it != drift_open_.end();) {
    const std::string& key = it->first;
    const bool still = std::any_of(drifts.begin(), drifts.end(), [&key](const ConfigDrift& d) {
      return d.node + "|" + d.field == key;
    });
    if (!still) {
      incidents_[it->second].resolved_at = now;
      it = drift_open_.erase(it);
    } else {
      ++it;
    }
  }

  std::map<std::string, std::vector<const ConfigDrift*>> by_node;
  for (const auto& d : drifts) by_node[d.node].push_back(&d);

  for (const auto& [node, ds] : by_node) {
    Switch* sw = fabric_.switch_by_name(node);
    if (sw == nullptr) continue;
    const SwitchConfig want = make_switch_config(golden_, tier_of(*sw), golden_stage_);
    std::vector<std::size_t> fixed_incidents;
    std::string fixed;
    for (const ConfigDrift* d : ds) {
      const std::string key = node + "|" + d->field;
      if (drift_open_.find(key) == drift_open_.end()) {
        drift_open_[key] = open_incident(IncidentKind::kConfigDrift, node, -1, 1.0,
                                         d->field + " want " + d->expected + " got " + d->actual,
                                         now);
      }
      // Roll back the fields with runtime setters; the rest (lossless
      // classes, watchdog, classify mode) need a reboot-and-reconfigure
      // and stay open for the operator.
      bool ok = true;
      if (d->field == "mmu.alpha") {
        sw->set_buffer_alpha(want.mmu.alpha);
      } else if (d->field.rfind("ecn[", 0) == 0) {
        const int pg = std::atoi(d->field.c_str() + 4);
        sw->set_ecn_config(pg, want.ecn[static_cast<std::size_t>(pg)]);
      } else if (d->field == "arp_policy") {
        sw->set_arp_policy(want.arp_policy);
      } else {
        ok = false;
      }
      if (ok) {
        fixed += fixed.empty() ? d->field : "," + d->field;
        fixed_incidents.push_back(drift_open_[key]);
      }
    }
    if (fixed.empty()) continue;
    for (const std::size_t idx : fixed_incidents) {
      if (incidents_[idx].mitigated_at < 0) incidents_[idx].mitigated_at = now;
    }
    FleetMitigation m;
    m.kind = MitigationKind::kConfigRollback;
    m.target = node;
    m.applied_at = now;
    m.reverted_at = now;  // instantaneous: nothing to hold or restore
    mitigations_.push_back(std::move(m));
    mit_state_.emplace_back();
    ++stats_.rollbacks;
    ROCELAB_LOG_INFO("incmgr: rollback %s %s", node.c_str(), fixed.c_str());
    if (chaos_ != nullptr) {
      chaos_->record_mitigation(FaultKind::kConfigRollback, node, "restored " + fixed);
    }
  }
}

void IncidentManager::ingest_storms(Time now) {
  const auto& vs = auditor_->violations();
  for (; violations_seen_ < vs.size(); ++violations_seen_) {
    const auto& v = vs[violations_seen_];
    if (v.kind != InvariantAuditor::Kind::kPauseStorm) continue;
    auto it = storm_open_.find(v.node);
    if (it == storm_open_.end()) {
      StormOpen so;
      so.incident = open_incident(IncidentKind::kPauseStorm, v.node, -1, 1.0, v.detail, v.at);
      so.last_flag = v.at;
      storm_open_.emplace(v.node, so);
    } else {
      it->second.last_flag = v.at;
    }
  }
  for (auto it = storm_open_.begin(); it != storm_open_.end();) {
    if (now - it->second.last_flag >= cfg_.probation) {
      incidents_[it->second.incident].resolved_at = now;
      it = storm_open_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<std::pair<Switch*, int>> IncidentManager::plan_members(const Candidate& c) const {
  std::vector<std::pair<Switch*, int>> members;
  Switch* target = fabric_.switch_by_name(c.target);
  if (target == nullptr) return members;
  if (c.kind == MitigationKind::kCostOut || c.kind == MitigationKind::kCableReplace) {
    if (target->port_weight(c.port) != 0 && target->ecmp_cost_out_safe(c.port)) {
      members.emplace_back(target, c.port);
    }
    return members;
  }
  // Drain: the switch's ECMP memberships live in its neighbours' tables.
  if (target->drained()) return members;
  for (const auto& swp : fabric_.switches()) {
    Switch* s = swp.get();
    if (s == target) continue;
    for (int p = 0; p < s->port_count(); ++p) {
      if (s->port(p).peer() != target) continue;
      if (s->port_weight(p) == 0) continue;
      members.emplace_back(s, p);
    }
  }
  return members;
}

void IncidentManager::shed(std::size_t index, const Candidate& beneficiary, Time now) {
  FleetMitigation& m = mitigations_[index];
  MitState& st = mit_state_[index];
  if (m.kind == MitigationKind::kSwitchDrain) {
    Switch* target = fabric_.switch_by_name(m.target);
    if (target != nullptr) fabric_.undrain_switch(*target, st.members);
  } else {
    for (const auto& [s, p] : st.members) s->restore_port_weight(p);
  }
  m.reverted_at = now;
  m.shed = true;
  ++stats_.sheds;
  --stats_.active;
  for (const auto& key : m.covers) {
    DirState& d = dirs_[key];
    d.mitigated = false;
    adjudicate_dir(d);  // incident stays open: the direction is still bad
  }
  const std::string cool_key =
      m.port >= 0 ? m.target + ":" + std::to_string(m.port) : m.target;
  last_restore_[cool_key] = now;
  char detail[160];
  if (m.port >= 0) {
    std::snprintf(detail, sizeof detail, "%s port %d rank %.3f for %s %s rank %.3f",
                  to_string(m.kind), m.port, m.rank, to_string(beneficiary.kind),
                  beneficiary.target.c_str(), beneficiary.rank);
  } else {
    std::snprintf(detail, sizeof detail, "%s rank %.3f for %s %s rank %.3f", to_string(m.kind),
                  m.rank, to_string(beneficiary.kind), beneficiary.target.c_str(),
                  beneficiary.rank);
  }
  ROCELAB_LOG_INFO("incmgr: shed %s %s", m.target.c_str(), detail);
  if (chaos_ != nullptr) {
    chaos_->record_mitigation(FaultKind::kMitigationShed, m.target, detail);
  }
}

bool IncidentManager::try_apply(const Candidate& c, Time now) {
  const std::int64_t budget_bp = std::llround(cfg_.blast_budget_frac * 10000.0);
  std::vector<std::pair<Switch*, int>> members;
  for (;;) {
    members = plan_members(c);
    if (members.empty()) {
      ++stats_.floor_vetoes;
      for (const auto& key : c.covers) {
        if (!dirs_[key].mitigated) adjudicate_dir(dirs_[key]);
      }
      return false;
    }
    // Prospective per-pod blast radius. Only pods this mitigation adds to
    // can block it (a pod someone else already blew past is the auditor's
    // problem, not a reason to deadlock here).
    auto cap = capacity();
    std::map<int, std::int64_t> add;
    for (const auto& [s, p] : members) ++add[pod_of(s->name())];
    std::vector<int> over;
    for (const auto& [pod, n] : add) {
      const PodCap& pc = cap[pod];
      if (pc.total > 0 && (pc.costed + n) * 10000 > budget_bp * pc.total) over.push_back(pod);
    }
    if (over.empty()) break;

    // Shed the lowest-ranked active mitigation that frees capacity in an
    // over-budget pod; veto if none ranks strictly below the candidate.
    std::size_t victim = mitigations_.size();
    for (std::size_t i = 0; i < mitigations_.size(); ++i) {
      const FleetMitigation& m = mitigations_[i];
      if (m.reverted_at >= 0 || m.kind == MitigationKind::kConfigRollback) continue;
      if (m.rank >= c.rank) continue;
      const bool frees = std::any_of(
          mit_state_[i].members.begin(), mit_state_[i].members.end(),
          [&over](const std::pair<Switch*, int>& mp) {
            return std::find(over.begin(), over.end(), pod_of(mp.first->name())) != over.end();
          });
      if (!frees) continue;
      if (victim == mitigations_.size() || m.rank < mitigations_[victim].rank) victim = i;
    }
    if (victim == mitigations_.size()) {
      ++stats_.budget_vetoes;
      for (const auto& key : c.covers) {
        if (!dirs_[key].mitigated) adjudicate_dir(dirs_[key]);
      }
      ROCELAB_LOG_INFO("incmgr: budget veto %s %s rank %.3f", to_string(c.kind),
                       c.target.c_str(), c.rank);
      return false;
    }
    shed(victim, c, now);
  }

  FleetMitigation m;
  m.kind = c.kind;
  m.target = c.target;
  m.port = c.port;
  m.rank = c.rank;
  m.applied_at = now;
  m.covers = c.covers;
  MitState st;

  if (c.kind == MitigationKind::kCostOut) {
    members.front().first->set_port_weight(c.port, 0);
    st.members = members;
    ++stats_.cost_outs;
    char detail[96];
    std::snprintf(detail, sizeof detail, "port %d score %.3f", c.port,
                  dirs_[c.covers.front()].score);
    ROCELAB_LOG_INFO("incmgr: cost out %s %s", c.target.c_str(), detail);
    if (chaos_ != nullptr) chaos_->record_mitigation(FaultKind::kEcmpCostOut, c.target, detail);
  } else if (c.kind == MitigationKind::kCableReplace) {
    // Pull the cable: same capacity accounting as a cost-out, but with a
    // technician in flight — after cable_replace_delay the re-splice clears
    // the impairment on BOTH directions of the physical link, the only
    // mitigation that removes the corruption source itself.
    members.front().first->set_port_weight(c.port, 0);
    st.members = members;
    ++stats_.cable_replaces;
    char detail[96];
    std::snprintf(detail, sizeof detail, "port %d score %.3f resplice %lld", c.port,
                  dirs_[c.covers.front()].score,
                  static_cast<long long>(now + cfg_.cable_replace_delay));
    ROCELAB_LOG_INFO("incmgr: cable replace %s %s", c.target.c_str(), detail);
    if (chaos_ != nullptr) chaos_->record_mitigation(FaultKind::kCableReplace, c.target, detail);
    const std::size_t idx = mitigations_.size();  // slot pushed below; stable index
    fabric_.control_sim().schedule_at(now + cfg_.cable_replace_delay,
                                      [this, idx] { finish_cable_replace(idx); });
  } else {
    Switch* target = fabric_.switch_by_name(c.target);
    st.members = fabric_.drain_switch(*target);  // identical set to the plan
    // Fold any active cost-outs on this switch into the drain: their
    // zeroed weights transfer so the eventual undrain restores everything.
    int absorbed = 0;
    for (std::size_t i = 0; i < mitigations_.size(); ++i) {
      FleetMitigation& prev = mitigations_[i];
      if (prev.reverted_at >= 0 || prev.kind != MitigationKind::kCostOut) continue;
      if (prev.target != c.target) continue;
      prev.reverted_at = now;
      prev.absorbed = true;
      --stats_.active;
      ++absorbed;
      st.members.insert(st.members.end(), mit_state_[i].members.begin(),
                        mit_state_[i].members.end());
      mit_state_[i].members.clear();
    }
    ++stats_.drains;
    char detail[128];
    std::snprintf(detail, sizeof detail,
                  "%d members covering %d directions rank %.3f absorbed %d",
                  static_cast<int>(st.members.size()), static_cast<int>(c.covers.size()), c.rank,
                  absorbed);
    ROCELAB_LOG_INFO("incmgr: drain %s %s", c.target.c_str(), detail);
    if (chaos_ != nullptr) chaos_->record_mitigation(FaultKind::kSwitchDrain, c.target, detail);
  }

  std::int64_t mark = 0;
  for (const auto& key : c.covers) {
    DirState& d = dirs_[key];
    d.mitigated = true;
    d.confirmed = true;
    mark += d.evidence;
    if (d.incident != kNoIncident && incidents_[d.incident].mitigated_at < 0) {
      incidents_[d.incident].mitigated_at = now;
    }
  }
  st.evidence_mark = mark;
  st.clean_since = now;
  for (const auto& [s, p] : st.members) m.members.emplace_back(s->name(), p);
  mitigations_.push_back(std::move(m));
  mit_state_.push_back(std::move(st));
  ++stats_.active;
  return true;
}

void IncidentManager::finish_cable_replace(std::size_t index) {
  FleetMitigation& m = mitigations_[index];
  MitState& st = mit_state_[index];
  if (m.reverted_at >= 0) return;  // shed before the splice: no repair happened
  // The new cable is clean in both directions: clear the impairment on the
  // pulled port and on its peer's facing port.
  Switch* sw = fabric_.switch_by_name(m.target);
  if (sw != nullptr && m.port >= 0) {
    EgressPort& out = sw->port(m.port);
    out.clear_impairment();
    if (out.connected()) out.peer()->port(out.peer_port()).clear_impairment();
  }
  st.resplice_done = true;
  // Probation restarts on the new cable: evidence counters are monotonic,
  // so clean_since (not a counter reset) is what lets the restore land.
  st.clean_since = fabric_.control_sim().now();
  ROCELAB_LOG_INFO("incmgr: cable replaced %s port %d", m.target.c_str(), m.port);
  if (chaos_ != nullptr) {
    chaos_->record_mitigation(FaultKind::kCableReplaced, m.target,
                              "port " + std::to_string(m.port));
  }
}

void IncidentManager::adjudicate(Time now) {
  // Group confirmed directions by owning switch. Mitigated directions
  // still count toward the drain threshold: a second bad direction
  // confirming after a cost-out escalates the whole switch to a drain.
  std::map<std::string, std::vector<DirKey>> by_switch;
  for (const auto& [key, d] : dirs_) {
    if (d.confirmed) by_switch[key.first].push_back(key);
  }

  std::vector<Candidate> cands;
  for (const auto& [name, keys] : by_switch) {
    Switch* sw = fabric_.switch_by_name(name);
    if (sw == nullptr) continue;
    if (sw->drained()) {
      // New confirmations on a drained switch are already covered: fold
      // them into the active drain's coverage.
      for (std::size_t i = 0; i < mitigations_.size(); ++i) {
        FleetMitigation& m = mitigations_[i];
        if (m.kind != MitigationKind::kSwitchDrain || m.reverted_at >= 0 || m.target != name) {
          continue;
        }
        for (const auto& key : keys) {
          DirState& d = dirs_[key];
          if (d.mitigated) continue;
          d.mitigated = true;
          m.covers.push_back(key);
          mit_state_[i].evidence_mark += d.evidence;
          if (d.incident != kNoIncident && incidents_[d.incident].mitigated_at < 0) {
            incidents_[d.incident].mitigated_at = now;
          }
        }
      }
      continue;
    }
    if (static_cast<int>(keys.size()) >= cfg_.drain_threshold) {
      Candidate c;
      c.kind = MitigationKind::kSwitchDrain;
      c.target = name;
      c.covers = keys;
      for (const auto& key : keys) c.rank += dirs_.at(key).score;
      cands.push_back(std::move(c));
    } else {
      for (const auto& key : keys) {
        const DirState& d = dirs_.at(key);
        if (d.mitigated) continue;
        Candidate c;
        // Corruption-evidenced directions (§5.2) get the physical repair;
        // everything else gets routed around. Same rank scale, so replaces
        // compete with cost-outs and drains under one blast budget.
        c.kind = d.corrupt_evidence ? MitigationKind::kCableReplace : MitigationKind::kCostOut;
        c.target = name;
        c.port = key.second;
        c.rank = d.score;
        c.covers = {key};
        cands.push_back(std::move(c));
      }
    }
  }

  std::sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
    if (a.rank != b.rank) return a.rank > b.rank;
    if (a.covers.size() != b.covers.size()) return a.covers.size() > b.covers.size();
    if (a.target != b.target) return a.target < b.target;
    return a.port < b.port;
  });
  for (const Candidate& c : cands) {
    // A drain candidate whose covers are all mitigated and target not yet
    // drained still applies (escalation); cost-outs were filtered above.
    try_apply(c, now);
  }
}

void IncidentManager::probation_pass(Time now) {
  for (std::size_t i = 0; i < mitigations_.size(); ++i) {
    FleetMitigation& m = mitigations_[i];
    if (m.reverted_at >= 0 || m.kind == MitigationKind::kConfigRollback) continue;
    MitState& st = mit_state_[i];
    // A pulled cable can't be restored until the technician re-splices it.
    if (m.kind == MitigationKind::kCableReplace && !st.resplice_done) continue;
    std::int64_t ev = 0;
    for (const auto& key : m.covers) ev += dirs_[key].evidence;
    if (ev > st.evidence_mark) {
      st.evidence_mark = ev;
      st.clean_since = now;
    }
    if (now - st.clean_since < cfg_.probation) continue;
    const std::string cool_key =
        m.port >= 0 ? m.target + ":" + std::to_string(m.port) : m.target;
    const auto lr = last_restore_.find(cool_key);
    if (lr != last_restore_.end() && now - lr->second < cfg_.restore_cooldown) continue;

    if (m.kind == MitigationKind::kSwitchDrain) {
      Switch* target = fabric_.switch_by_name(m.target);
      if (target != nullptr) fabric_.undrain_switch(*target, st.members);
      ROCELAB_LOG_INFO("incmgr: undrain %s", m.target.c_str());
      if (chaos_ != nullptr) {
        chaos_->record_mitigation(FaultKind::kSwitchUndrain, m.target,
                                  "restored " + std::to_string(st.members.size()) + " members");
      }
    } else {
      for (const auto& [s, p] : st.members) s->restore_port_weight(p);
      ROCELAB_LOG_INFO("incmgr: restore %s port %d", m.target.c_str(), m.port);
      if (chaos_ != nullptr) {
        chaos_->record_mitigation(FaultKind::kEcmpRestore, m.target,
                                  "port " + std::to_string(m.port));
      }
    }
    m.reverted_at = now;
    last_restore_[cool_key] = now;
    ++stats_.restores;
    --stats_.active;
    for (const auto& key : m.covers) {
      DirState& d = dirs_[key];
      d.mitigated = false;
      adjudicate_dir(d);
      if (d.incident != kNoIncident && incidents_[d.incident].resolved_at < 0) {
        incidents_[d.incident].resolved_at = now;  // optimistic: probation was clean
      }
      d.incident = kNoIncident;
    }
  }
}

void IncidentManager::scan() {
  ++stats_.scans;
  const Time now = fabric_.control_sim().now();
  merge_evidence(now);
  if (have_golden_ && cfg_.rollback_config) check_drift(now);
  if (auditor_ != nullptr) ingest_storms(now);
  adjudicate(now);
  probation_pass(now);
  update_gauges();
}

std::string IncidentManager::report() const {
  std::ostringstream os;
  os << "incidents (" << incidents_.size() << "):\n";
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    const Incident& inc = incidents_[i];
    os << "  [" << i << "] " << to_string(inc.kind) << ' ' << inc.node;
    if (inc.port >= 0) os << ':' << inc.port;
    os << " opened " << inc.opened_at;
    os << " mitigated " << (inc.mitigated_at < 0 ? std::string("-") : std::to_string(inc.mitigated_at));
    os << " resolved " << (inc.resolved_at < 0 ? std::string("-") : std::to_string(inc.resolved_at));
    os << " score " << inc.score << ' ' << inc.evidence << '\n';
  }
  os << "mitigations (" << mitigations_.size() << "):\n";
  for (std::size_t i = 0; i < mitigations_.size(); ++i) {
    const FleetMitigation& m = mitigations_[i];
    os << "  [" << i << "] " << to_string(m.kind) << ' ' << m.target;
    if (m.port >= 0) os << ':' << m.port;
    os << " rank " << m.rank << " applied " << m.applied_at;
    if (m.reverted_at >= 0) {
      os << (m.shed ? " shed " : m.absorbed ? " absorbed " : " reverted ") << m.reverted_at;
    } else {
      os << " active (" << m.members.size() << " members)";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace rocelab
