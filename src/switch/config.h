// Switch configuration: the QoS/PFC knobs §5.1 of the paper manages —
// buffer reservation, DSCP classification, lossless classes, ECN marking,
// dynamic buffer sharing (the α of §6.2), and the PFC storm watchdog.
#pragma once

#include <array>
#include <cstdint>

#include "src/common/units.h"
#include "src/link/port.h"

namespace rocelab {

/// RED/ECN marking profile per queue (DCQCN's marking at the switch).
struct EcnConfig {
  bool enabled = false;
  std::int64_t kmin = 5 * kKiB;
  std::int64_t kmax = 200 * kKiB;
  double pmax = 0.01;
};

/// Shared-buffer memory management unit parameters.
struct MmuConfig {
  /// Total packet buffer. The paper's ToR/Leaf switches have 9MB or 12MB.
  std::int64_t total_buffer = 12 * kMiB;
  /// Headroom reserved per (ingress port, lossless PG) to absorb in-flight
  /// bytes after XOFF (sized from cable length; see recommended_headroom).
  std::int64_t headroom_per_pg = 100 * kKiB;
  /// Guaranteed minimum per (ingress port, PG), carved out of the total
  /// buffer. This is what keeps lossy classes (TCP) alive when lossless
  /// classes occupy the shared pool — the §2 traffic isolation.
  std::int64_t reserved_per_pg = 8 * kKiB;
  /// Dynamic-threshold α for lossless PGs: a PG may keep allocating shared
  /// buffer while its usage < α × (unallocated shared buffer). §6.2: 1/16
  /// worked in production; a misconfigured 1/64 caused the Fig. 10 incident.
  double alpha = 1.0 / 16;
  /// α for lossy traffic classes (tail-drop on exceed).
  double alpha_lossy = 1.0 / 8;
  /// Hysteresis: XON resume once PG usage falls xon_offset below threshold.
  std::int64_t xon_offset = 16 * kKiB;
  /// Dynamic buffer sharing (true) vs static per-PG partition (§4.4 compares).
  bool dynamic_shared = true;
  /// Per-PG cap when dynamic_shared == false.
  std::int64_t static_limit_per_pg = 96 * kKiB;
};

/// How the switch maps packets to priority groups (Fig. 3 designs).
enum class ClassifyMode {
  kDscp,     // DSCP-based PFC: priority from the IP DSCP field (§3)
  kVlanPcp,  // original VLAN-based PFC: priority from the 802.1Q PCP
};

/// 802.1Q port mode (§3's operational problem #1): a trunk port only
/// accepts tagged frames — which breaks PXE boot, whose NIC has no VLAN
/// configuration yet; an access port only accepts untagged frames.
enum class L2PortMode {
  kAccess,
  kTrunk,
};

/// What to do with a packet whose ARP entry is incomplete (IP→MAC known,
/// MAC→port unknown). kFlood is standard Ethernet behaviour and the §4.2
/// deadlock ingredient; kDropLossless is the paper's fix (option 3).
enum class ArpIncompletePolicy {
  kFlood,
  kDropLossless,
};

struct WatchdogConfig {
  bool enabled = false;
  Time check_interval = milliseconds(10);
  /// Trigger after this long of continuous pause + undrainable egress queue.
  Time trigger_after = milliseconds(100);
  /// Re-enable lossless mode after pauses have been absent this long (§4.3:
  /// 200ms default).
  Time reenable_after = milliseconds(200);
};

struct SwitchConfig {
  MmuConfig mmu;
  std::array<bool, kNumPriorities> lossless{};        // PG i lossless?
  std::array<EcnConfig, kNumPriorities> ecn{};        // per-queue marking
  std::array<int, kNumPriorities> dscp_to_pg{};       // DSCP/PCP -> PG map
  ClassifyMode classify_mode = ClassifyMode::kDscp;
  ArpIncompletePolicy arp_policy = ArpIncompletePolicy::kFlood;
  WatchdogConfig watchdog;
  /// §8.1 extension: per-packet load balancing ("per-packet routing for
  /// better network utilization") instead of per-flow ECMP hashing. Breaks
  /// in-order delivery — the transport must tolerate reordering.
  bool packet_spray = false;
  Time mac_table_timeout = minutes_5();
  Time arp_table_timeout = hours_4();
  std::uint64_t ecmp_seed = 0;  // 0 => derived from node id

  static constexpr Time minutes_5() { return seconds(300); }
  static constexpr Time hours_4() { return seconds(4 * 3600); }

  SwitchConfig() {
    for (int i = 0; i < kNumPriorities; ++i) dscp_to_pg[static_cast<std::size_t>(i)] = i;
  }
};

/// Headroom a lossless PG needs so that no packet arriving during the PFC
/// "gray period" is dropped (§2): bytes in flight over twice the propagation
/// delay, plus one MTU in transit each way, plus the pause frame itself and
/// the egress reaction time.
[[nodiscard]] constexpr std::int64_t recommended_headroom(Bandwidth bw, Time prop_delay,
                                                          std::int64_t mtu,
                                                          Time reaction_time = nanoseconds(500)) {
  const std::int64_t in_flight = bytes_in_time(2 * prop_delay + reaction_time, bw);
  const std::int64_t pause_frame = kPfcFrameBytes + kWireOverheadBytes;
  return in_flight + 2 * mtu + pause_frame;
}

}  // namespace rocelab
