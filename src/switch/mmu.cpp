#include "src/switch/mmu.h"

#include <algorithm>
#include <stdexcept>

#include "src/monitor/metric_registry.h"

namespace rocelab {

Mmu::~Mmu() {
  if (registry_ != nullptr) registry_->remove_owner(this);
}

void Mmu::register_metrics(MetricRegistry& reg, const std::string& prefix) {
  registry_ = &reg;
  reg.add(this, prefix + "/shared_used", &shared_used_, MetricKind::kGauge);
  reg.add(this, prefix + "/shared_pool", &shared_pool_, MetricKind::kGauge);
}

Mmu::Mmu(const MmuConfig& cfg, int num_ports, const std::array<bool, kNumPriorities>& lossless)
    : cfg_(cfg), num_ports_(num_ports), lossless_(lossless),
      pgs_(static_cast<std::size_t>(num_ports) * kNumPriorities) {
  int lossless_pgs = 0;
  for (bool b : lossless_) lossless_pgs += b ? 1 : 0;
  const std::int64_t headroom_total =
      static_cast<std::int64_t>(num_ports) * lossless_pgs * cfg_.headroom_per_pg;
  const std::int64_t reserved_total =
      static_cast<std::int64_t>(num_ports) * kNumPriorities * cfg_.reserved_per_pg;
  shared_pool_ = cfg_.total_buffer - headroom_total - reserved_total;
  if (shared_pool_ <= 0) {
    // The paper's point about shallow buffers (§2): with too many lossless
    // classes the headroom doesn't fit. Surface it loudly.
    throw std::invalid_argument(
        "MMU: headroom for lossless classes exceeds the total buffer; "
        "reduce lossless classes or headroom (see paper §2)");
  }
}

std::int64_t Mmu::threshold(int port, int pg) const {
  (void)port;
  const bool ll = lossless_[static_cast<std::size_t>(pg)];
  if (!cfg_.dynamic_shared) return cfg_.static_limit_per_pg;
  const double alpha = ll ? cfg_.alpha : cfg_.alpha_lossy;
  const std::int64_t unallocated = shared_pool_ - shared_used_;
  return static_cast<std::int64_t>(alpha * static_cast<double>(std::max<std::int64_t>(unallocated, 0)));
}

Mmu::Admission Mmu::admit(int port, int pg, std::int64_t bytes) {
  Admission result;
  auto& st = state(port, pg);
  const bool ll = lossless_[static_cast<std::size_t>(pg)];

  // Guaranteed per-PG minimum first: keeps lossy classes alive even when
  // the shared pool is saturated by lossless traffic.
  if (st.reserved + bytes <= cfg_.reserved_per_pg) {
    st.reserved += bytes;
    result.admitted = true;
    result.to_reserved = bytes;
    return result;
  }

  const std::int64_t thresh = threshold(port, pg);
  const bool fits_shared = st.shared + bytes <= thresh && shared_used_ + bytes <= shared_pool_;
  if (fits_shared) {
    st.shared += bytes;
    shared_used_ += bytes;
    result.admitted = true;
    result.to_shared = bytes;
    return result;
  }
  if (!ll) return result;  // lossy: tail drop

  // Lossless: spill into this PG's reserved headroom.
  if (st.headroom + bytes <= cfg_.headroom_per_pg) {
    st.headroom += bytes;
    result.admitted = true;
    result.to_headroom = bytes;
    return result;
  }
  // Headroom overflow: a lossless drop. Only possible when headroom was
  // under-provisioned for the link length — the misconfiguration §2 warns
  // about. Callers count it.
  return result;
}

void Mmu::release(int port, int pg, std::int64_t shared_bytes, std::int64_t headroom_bytes,
                  std::int64_t reserved_bytes) {
  auto& st = state(port, pg);
  st.shared -= shared_bytes;
  st.headroom -= headroom_bytes;
  st.reserved -= reserved_bytes;
  shared_used_ -= shared_bytes;
  if (st.shared < 0 || st.headroom < 0 || st.reserved < 0 || shared_used_ < 0) {
    throw std::logic_error("MMU release underflow");
  }
}

bool Mmu::should_pause(int port, int pg) const {
  const auto& st = state(port, pg);
  return st.headroom > 0 || st.shared >= threshold(port, pg);
}

bool Mmu::should_resume(int port, int pg) const {
  const auto& st = state(port, pg);
  if (st.headroom > 0) return false;
  const std::int64_t thresh = threshold(port, pg);
  return st.shared + cfg_.xon_offset <= thresh || st.shared == 0;
}

}  // namespace rocelab
