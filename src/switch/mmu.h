// Shared-buffer MMU with per-(ingress port, priority group) accounting and
// dynamic thresholds, modelling the commodity shared-buffer ASICs of the
// paper. Implements the §6.2 rule: a PG may allocate shared buffer while
// α × UB > B(p,i), where UB is the unallocated shared buffer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/switch/config.h"

namespace rocelab {

class MetricRegistry;

class Mmu {
 public:
  Mmu(const MmuConfig& cfg, int num_ports,
      const std::array<bool, kNumPriorities>& lossless);
  ~Mmu();
  Mmu(const Mmu&) = delete;
  Mmu& operator=(const Mmu&) = delete;

  /// Register buffer-occupancy gauges under `prefix` (e.g. "t0/mmu").
  /// Called once by the owning Switch; deregistration happens in ~Mmu.
  void register_metrics(MetricRegistry& reg, const std::string& prefix);

  struct Admission {
    bool admitted = false;
    std::int64_t to_shared = 0;
    std::int64_t to_headroom = 0;
    std::int64_t to_reserved = 0;
  };

  /// Admit `bytes` arriving on (port, pg). Lossless PGs overflow into their
  /// headroom once past the dynamic threshold; lossy PGs are dropped.
  Admission admit(int port, int pg, std::int64_t bytes);

  /// Return a previous admission's bytes to their pools.
  void release(int port, int pg, std::int64_t shared_bytes, std::int64_t headroom_bytes,
               std::int64_t reserved_bytes = 0);

  /// XOFF condition: the PG is at/over its dynamic threshold (or dipping
  /// into headroom).
  [[nodiscard]] bool should_pause(int port, int pg) const;
  /// XON condition: usage fell xon_offset below the current threshold and
  /// headroom has drained.
  [[nodiscard]] bool should_resume(int port, int pg) const;

  /// Current dynamic (or static) shared-pool threshold for one PG.
  [[nodiscard]] std::int64_t threshold(int port, int pg) const;

  [[nodiscard]] std::int64_t shared_used() const { return shared_used_; }
  [[nodiscard]] std::int64_t shared_pool_size() const { return shared_pool_; }
  [[nodiscard]] std::int64_t pg_shared(int port, int pg) const {
    return state(port, pg).shared;
  }
  [[nodiscard]] std::int64_t pg_headroom(int port, int pg) const {
    return state(port, pg).headroom;
  }
  [[nodiscard]] std::int64_t pg_reserved(int port, int pg) const {
    return state(port, pg).reserved;
  }
  [[nodiscard]] std::int64_t pg_total(int port, int pg) const {
    return state(port, pg).shared + state(port, pg).headroom + state(port, pg).reserved;
  }
  [[nodiscard]] const MmuConfig& config() const { return cfg_; }
  /// Audit hook: recompute shared-pool usage from per-PG state. Must equal
  /// shared_used() at all times; a mismatch means the buffer accounting
  /// leaked or double-released (the InvariantAuditor checks this).
  [[nodiscard]] std::int64_t recomputed_shared_used() const {
    std::int64_t s = 0;
    for (const auto& pg : pgs_) s += pg.shared;
    return s;
  }
  /// Runtime tuning of the dynamic-threshold α (the §6.2 incident fix was
  /// exactly such a live retune).
  void set_alpha(double alpha) { cfg_.alpha = alpha; }

 private:
  struct PgState {
    std::int64_t shared = 0;
    std::int64_t headroom = 0;
    std::int64_t reserved = 0;
  };
  [[nodiscard]] PgState& state(int port, int pg) {
    return pgs_[static_cast<std::size_t>(port) * kNumPriorities + static_cast<std::size_t>(pg)];
  }
  [[nodiscard]] const PgState& state(int port, int pg) const {
    return pgs_[static_cast<std::size_t>(port) * kNumPriorities + static_cast<std::size_t>(pg)];
  }

  MmuConfig cfg_;
  MetricRegistry* registry_ = nullptr;  // set by register_metrics
  int num_ports_;
  std::array<bool, kNumPriorities> lossless_;
  std::int64_t shared_pool_ = 0;  // total minus all reserved headroom
  std::int64_t shared_used_ = 0;
  std::vector<PgState> pgs_;
};

}  // namespace rocelab
