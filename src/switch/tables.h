// The two forwarding tables of §4.2 with their disparate timeouts: the ARP
// table (IP→MAC, CPU-maintained, 4h default) and the MAC address table
// (MAC→port, hardware-learned, 5min default). Their mismatch creates the
// "incomplete ARP entry" that triggers flooding.
#pragma once

#include <optional>
#include <unordered_map>

#include "src/common/units.h"
#include "src/net/addr.h"

namespace rocelab {

/// MAC address table: learned from received packets' source MACs, aged out
/// after `timeout` without refresh.
class MacTable {
 public:
  explicit MacTable(Time timeout) : timeout_(timeout) {}

  void learn(MacAddr mac, int port, Time now) { entries_[mac] = {port, now}; }
  [[nodiscard]] std::optional<int> lookup(MacAddr mac, Time now) const {
    auto it = entries_.find(mac);
    if (it == entries_.end() || now - it->second.refreshed > timeout_) return std::nullopt;
    return it->second.port;
  }
  /// Simulate aging out (e.g., a server that died `timeout` ago).
  void expire(MacAddr mac) { entries_.erase(mac); }
  /// Drop every entry (switch reboot: hardware-learned state is volatile).
  void clear() { entries_.clear(); }
  void set_timeout(Time t) { timeout_ = t; }
  [[nodiscard]] Time timeout() const { return timeout_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    int port;
    Time refreshed;
  };
  Time timeout_;
  std::unordered_map<MacAddr, Entry> entries_;
};

/// ARP table: IP→MAC for directly attached subnets. Much longer timeout
/// than the MAC table since refresh involves the switch CPU.
class ArpTable {
 public:
  explicit ArpTable(Time timeout) : timeout_(timeout) {}

  void install(Ipv4Addr ip, MacAddr mac, Time now) { entries_[ip] = {mac, now}; }
  [[nodiscard]] std::optional<MacAddr> lookup(Ipv4Addr ip, Time now) const {
    auto it = entries_.find(ip);
    if (it == entries_.end() || now - it->second.refreshed > timeout_) return std::nullopt;
    return it->second.mac;
  }
  void expire(Ipv4Addr ip) { entries_.erase(ip); }
  /// Drop every entry (switch reboot: the CPU's cache does not survive).
  void clear() { entries_.clear(); }
  void set_timeout(Time t) { timeout_ = t; }
  [[nodiscard]] Time timeout() const { return timeout_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    MacAddr mac;
    Time refreshed;
  };
  Time timeout_;
  std::unordered_map<Ipv4Addr, Entry> entries_;
};

}  // namespace rocelab
