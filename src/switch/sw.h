// The switch: shared-buffer MMU admission with PFC generation, DSCP (or
// VLAN PCP) classification, ECN marking, L3 longest-prefix ECMP forwarding,
// ARP + MAC-learning delivery with Ethernet flooding on incomplete ARP
// entries (§4.2), the deadlock fix, and the switch-side PFC storm watchdog
// (§4.3).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/link/node.h"
#include "src/switch/config.h"
#include "src/switch/mmu.h"
#include "src/switch/tables.h"

namespace rocelab {

enum class PortRole { kFabric, kServerFacing };

class Switch : public Node {
 public:
  Switch(Simulator& sim, std::string name, SwitchConfig cfg, int num_ports);
  ~Switch() override;

  // --- configuration surface (§5.1 "running configuration") ---------------
  [[nodiscard]] const SwitchConfig& config() const { return cfg_; }
  void set_ecn_config(int pg, EcnConfig ecn) { cfg_.ecn[static_cast<std::size_t>(pg)] = ecn; }
  /// Live-retune the shared-buffer α (running config + MMU together).
  void set_buffer_alpha(double alpha) {
    cfg_.mmu.alpha = alpha;
    mmu_->set_alpha(alpha);
  }
  void set_arp_policy(ArpIncompletePolicy p) { cfg_.arp_policy = p; }
  void set_port_role(int port, PortRole role) { roles_[static_cast<std::size_t>(port)] = role; }
  [[nodiscard]] PortRole port_role(int port) const { return roles_[static_cast<std::size_t>(port)]; }
  /// §3: VLAN-based PFC forces server-facing ports into trunk mode; DSCP-
  /// based PFC lets them stay in access mode (PXE boot keeps working).
  void set_port_l2_mode(int port, L2PortMode mode) {
    l2_modes_[static_cast<std::size_t>(port)] = mode;
  }
  [[nodiscard]] L2PortMode port_l2_mode(int port) const {
    return l2_modes_[static_cast<std::size_t>(port)];
  }
  [[nodiscard]] std::int64_t l2_mode_drops() const { return l2_mode_drops_; }

  // --- control plane -------------------------------------------------------
  /// L3 route: packets matching `prefix` are ECMP-hashed over `ports`.
  void add_route(Ipv4Prefix prefix, std::vector<int> ports);
  /// ECMP weight of `port` in every group that contains it. A member with
  /// weight w >= 1 owns w slots of the selection table; weight 0 costs the
  /// member out — no flow hashes to it while any other weighted member of
  /// the group is usable (if none is, weights are ignored: capacity floor).
  /// Any change bumps the ECMP epoch, which invalidates both the lazily
  /// built per-route selection tables and every memoized flow->egress
  /// decision, so a costed-out port cannot keep receiving memoized flows.
  void set_port_weight(int port, int weight);
  void restore_port_weight(int port) { set_port_weight(port, 1); }
  [[nodiscard]] int port_weight(int port) const {
    return port_weights_[static_cast<std::size_t>(port)];
  }
  /// True iff costing `port` out would actually shift traffic AND leave
  /// every route group containing it with at least one other usable
  /// weighted member. The SelfHealer's capacity floor: refuse to cost out
  /// the last member of any group, or a port no ECMP group routes over.
  [[nodiscard]] bool ecmp_cost_out_safe(int port) const;
  /// Monotone version covering ECMP membership, weights, and link state.
  [[nodiscard]] std::uint64_t ecmp_epoch() const { return ecmp_epoch_; }
  [[nodiscard]] std::int64_t ecmp_weight_changes() const { return ecmp_weight_changes_; }
  [[nodiscard]] std::int64_t flow_cache_hits() const { return flow_cache_hits_; }
  /// Distinct ports appearing in any ECMP route group, sorted ascending —
  /// the denominator of the blast-radius budget (a pod's "uplink capacity"
  /// is its switches' ECMP member ports; a member at weight 0 is costed).
  [[nodiscard]] std::vector<int> ecmp_member_ports() const;
  /// Drain flag (§5/§6 ops plane): a drained switch has had its ECMP
  /// memberships zero-weighted fleet-wide (those weights live in its
  /// *neighbors'* tables — Fabric::drain_switch walks the wiring). The flag
  /// itself changes no forwarding; it marks the switch for dumps/metrics
  /// and keeps drain/undrain idempotent.
  void set_drained(bool v) { drained_ = v; }
  [[nodiscard]] bool drained() const { return drained_; }
  /// Locally attached subnet, delivered via ARP + MAC table.
  void add_local_subnet(Ipv4Prefix prefix);
  ArpTable& arp_table() { return arp_; }
  MacTable& mac_table() { return mac_; }
  Mmu& mmu() { return *mmu_; }

  // --- diagnostics ----------------------------------------------------------
  /// True while this switch asserts PFC XOFF toward the upstream on
  /// (ingress port, pg).
  [[nodiscard]] bool pause_asserted(int port, int pg) const {
    return pause_sent_[idx(port, pg)];
  }
  /// Bytes admitted on (in, pg) currently queued at egress `out`.
  [[nodiscard]] std::int64_t inflight_bytes(int in, int out, int pg) const {
    return matrix_[midx(in, out, pg)];
  }
  [[nodiscard]] bool lossless_disabled(int port) const {
    return watchdog_[static_cast<std::size_t>(port)].disabled;
  }
  [[nodiscard]] std::int64_t watchdog_trips() const { return watchdog_trips_; }
  [[nodiscard]] std::int64_t flood_events() const { return flood_events_; }
  [[nodiscard]] std::int64_t arp_miss_drops() const { return arp_miss_drops_; }
  /// Packets steered away from a down/disconnected ECMP member (or a local
  /// delivery whose learned port died) onto a surviving path.
  [[nodiscard]] std::int64_t route_failovers() const { return route_failovers_; }
  /// Packets with no usable output at all (blackholed until reconvergence).
  [[nodiscard]] std::int64_t no_route_drops() const { return no_route_drops_; }
  [[nodiscard]] std::int64_t reboots() const { return reboots_; }
  /// Total bytes the (in, out, pg) matrix believes are queued at egress.
  /// The InvariantAuditor checks this against the ports' actual queues.
  [[nodiscard]] std::int64_t matrix_queued_total() const {
    std::int64_t s = 0;
    for (auto v : matrix_) s += v;
    return s;
  }
  /// Total data bytes actually sitting in egress queues.
  [[nodiscard]] std::int64_t egress_queued_total() const {
    std::int64_t s = 0;
    for (int p = 0; p < port_count(); ++p) s += port(p).total_queued_bytes();
    return s;
  }

  /// Power-cycle the control and data planes: ARP and MAC tables flushed,
  /// every egress queue dropped (MMU occupancy drains as the per-packet
  /// charges release), PFC pause assertions and watchdog state reset.
  /// Links are NOT touched — the ChaosEngine downs them separately so both
  /// endpoints see the flap.
  void reboot();

  /// Fault injection for §4.1: silently drop packets matching `pred`
  /// (models FCS errors / switch bugs; the livelock experiment drops
  /// packets whose IP ID has LSB 0xff).
  void set_drop_filter(std::function<bool(const Packet&)> pred) { drop_filter_ = std::move(pred); }
  [[nodiscard]] std::int64_t filtered_drops() const { return filtered_drops_; }

  /// Side-effect-free routing probe for path tracing (pingmesh
  /// localization): the exact egress the forwarding path would pick for
  /// `pkt` under current ECMP/link state, without bumping route_failovers_
  /// — tracing a path must not perturb the determinism digest.
  [[nodiscard]] int route_port(const Packet& pkt) const { return route_lookup(pkt, false); }

  void on_pause_rx(int in_port, const PfcFrame& frame) override;
  void on_link_change(int port, bool up) override;

 protected:
  void handle_packet(PooledPacket pp, int in_port) override;

 private:
  struct Route {
    Ipv4Prefix prefix;
    std::vector<int> ports;
    /// Weighted selection table: each member repeated `weight` times,
    /// rebuilt lazily whenever the ECMP epoch moves. Kept empty while every
    /// weight is 1 so the common case hashes straight over `ports` —
    /// bit-identical to unweighted ECMP.
    mutable std::vector<int> weighted;
    mutable std::uint64_t weighted_epoch = ~0ull;
  };
  /// Memoized flow->egress decision, keyed by the packet's five-tuple hash.
  /// Only clean primary picks are cached (failover picks keep taking the
  /// full path so route_failovers_ counts per packet); a hit is honored only
  /// if the epoch still matches and the stored tuple equals the packet's
  /// (hash-collision guard), so membership/weight/link changes invalidate
  /// every stale decision at once.
  struct FlowCacheEntry {
    Packet::FlowTuple tuple;
    std::uint64_t epoch = ~0ull;
    int out_port = -1;
  };
  struct Charge;  // MMU accounting token (RAII)
  struct WatchdogState {
    bool disabled = false;
    Time condition_since = -1;
    Time last_pause_rx = -1;
  };

  [[nodiscard]] std::size_t idx(int port, int pg) const {
    return static_cast<std::size_t>(port) * kNumPriorities + static_cast<std::size_t>(pg);
  }
  [[nodiscard]] std::size_t midx(int in, int out, int pg) const {
    return (static_cast<std::size_t>(in) * static_cast<std::size_t>(port_count()) +
            static_cast<std::size_t>(out)) * kNumPriorities + static_cast<std::size_t>(pg);
  }

  void classify(Packet& pkt) const;
  [[nodiscard]] int route_lookup(const Packet& pkt, bool count_failover = true) const;  // -1 if none
  [[nodiscard]] const std::vector<int>& weighted_members(const Route& r) const;
  void bump_ecmp_epoch();
  void forward(PooledPacket pp, int in_port);
  void deliver_local(PooledPacket pp, int in_port, Ipv4Prefix subnet);
  void flood(PooledPacket pp, int in_port);
  void enqueue_egress(PooledPacket pp, int out_port);
  void ecn_mark(Packet& pkt, int out_port) const;

  void after_admit(int in_port, int pg);
  void after_release(int in_port, int pg);
  void send_xoff(int port, int pg);
  void send_xon(int port, int pg);
  void refresh_pause(int port, int pg);
  void watchdog_tick();

  SwitchConfig cfg_;
  std::unique_ptr<Mmu> mmu_;
  ArpTable arp_;
  MacTable mac_;
  std::vector<Route> routes_;
  std::vector<Ipv4Prefix> local_subnets_;
  std::vector<PortRole> roles_;
  std::vector<L2PortMode> l2_modes_;
  std::int64_t l2_mode_drops_ = 0;
  mutable Rng rng_;
  std::uint64_t ecmp_seed_;
  mutable std::uint64_t spray_counter_ = 0;
  std::vector<int> port_weights_;  // per port, default 1
  bool drained_ = false;
  std::uint64_t ecmp_epoch_ = 0;
  std::int64_t ecmp_weight_changes_ = 0;
  mutable std::unordered_map<std::uint64_t, FlowCacheEntry> flow_cache_;
  mutable std::int64_t flow_cache_hits_ = 0;

  std::vector<bool> pause_sent_;          // (port, pg)
  std::vector<EventId> pause_refresh_;    // (port, pg)
  std::vector<std::int64_t> matrix_;      // (in, out, pg) queued bytes
  std::vector<WatchdogState> watchdog_;   // per port
  std::int64_t watchdog_trips_ = 0;
  std::int64_t flood_events_ = 0;
  std::int64_t arp_miss_drops_ = 0;
  mutable std::int64_t route_failovers_ = 0;  // bumped inside const route_lookup
  std::int64_t no_route_drops_ = 0;
  std::int64_t reboots_ = 0;
  std::function<bool(const Packet&)> drop_filter_;
  std::int64_t filtered_drops_ = 0;
  EventId watchdog_timer_ = kInvalidEventId;
  /// Cleared in the destructor so in-flight Charge tokens become no-ops.
  std::shared_ptr<bool> alive_;
};

/// Walk the PFC wait-for graph across `switches` and report whether a cycle
/// of paused buffer dependencies exists (§4.2). Nodes are egress ports;
/// there is an edge from a paused egress port to every egress port of the
/// pausing switch that still holds bytes admitted on the paused link's
/// ingress. A cycle means no pause in it can ever clear: deadlock.
struct DeadlockReport {
  bool deadlocked = false;
  /// (switch name, egress port) sequence forming the cycle, if any.
  std::vector<std::pair<std::string, int>> cycle;
};
[[nodiscard]] DeadlockReport detect_pfc_deadlock(std::span<Switch* const> switches);

}  // namespace rocelab
