#include "src/switch/sw.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/common/log.h"
#include "src/monitor/metric_registry.h"

#if defined(__SANITIZE_ADDRESS__)
#define ROCELAB_CHARGE_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ROCELAB_CHARGE_POOL_DISABLED 1
#endif
#endif

namespace rocelab {

namespace {

/// Freelist allocator for the Charge control block: one is allocated per
/// admitted packet, so the malloc/free pair on that path is worth pooling.
/// Recycling is disabled under ASan so lifetime bugs stay visible.
template <typename T>
struct ChargeAlloc {
  using value_type = T;
  ChargeAlloc() = default;
  template <class U>
  ChargeAlloc(const ChargeAlloc<U>&) {}  // NOLINT(google-explicit-constructor)

  static inline thread_local std::vector<void*> free_list;
  static constexpr std::size_t kMaxIdle = 4096;

  T* allocate(std::size_t n) {
#if !defined(ROCELAB_CHARGE_POOL_DISABLED)
    if (n == 1 && !free_list.empty()) {
      void* p = free_list.back();
      free_list.pop_back();
      return static_cast<T*>(p);
    }
#endif
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
#if !defined(ROCELAB_CHARGE_POOL_DISABLED)
    if (n == 1 && free_list.size() < kMaxIdle) {
      free_list.push_back(p);
      return;
    }
#endif
    ::operator delete(p);
  }
  bool operator==(const ChargeAlloc&) const { return true; }
  bool operator!=(const ChargeAlloc&) const { return false; }
};

}  // namespace

/// RAII token for bytes admitted to the MMU. Copies of a flooded packet
/// share one token; the buffer is released when the last copy leaves the
/// switch. `alive` guards against tokens outliving the switch (packets
/// still in flight in simulator closures when a test tears down).
struct Switch::Charge {
  Switch* sw;
  std::shared_ptr<bool> alive;
  int port;
  int pg;
  std::int64_t shared;
  std::int64_t headroom;
  std::int64_t reserved;

  Charge(Switch* sw_in, std::shared_ptr<bool> alive_in, int port_in, int pg_in,
         std::int64_t shared_in, std::int64_t headroom_in, std::int64_t reserved_in)
      : sw(sw_in),
        alive(std::move(alive_in)),
        port(port_in),
        pg(pg_in),
        shared(shared_in),
        headroom(headroom_in),
        reserved(reserved_in) {}

  ~Charge() {
    if (!*alive) return;
    sw->mmu_->release(port, pg, shared, headroom, reserved);
    sw->after_release(port, pg);
  }
};

Switch::Switch(Simulator& sim, std::string name, SwitchConfig cfg, int num_ports)
    : Node(sim, std::move(name)),
      cfg_(cfg),
      arp_(cfg.arp_table_timeout),
      mac_(cfg.mac_table_timeout),
      rng_(0x5317c4 ^ id()),
      ecmp_seed_(cfg.ecmp_seed != 0 ? cfg.ecmp_seed : 0x9e3779b9ull * (id() + 1)) {
  mmu_ = std::make_unique<Mmu>(cfg_.mmu, num_ports, cfg_.lossless);
  mmu_->register_metrics(sim.metrics(), this->name() + "/mmu");
  {
    MetricRegistry& reg = sim.metrics();
    const std::string prefix = this->name() + "/sw";
    reg.add(this, prefix + "/flood_events", &flood_events_);
    reg.add(this, prefix + "/arp_miss_drops", &arp_miss_drops_);
    reg.add(this, prefix + "/route_failovers", &route_failovers_);
    reg.add(this, prefix + "/no_route_drops", &no_route_drops_);
    reg.add(this, prefix + "/watchdog_trips", &watchdog_trips_);
    reg.add(this, prefix + "/filtered_drops", &filtered_drops_);
    reg.add(this, prefix + "/l2_mode_drops", &l2_mode_drops_);
    reg.add(this, prefix + "/reboots", &reboots_);
    reg.add(this, prefix + "/ecmp_weight_changes", &ecmp_weight_changes_);
    reg.add(this, prefix + "/flow_cache_hits", &flow_cache_hits_);
  }
  port_weights_.assign(static_cast<std::size_t>(num_ports), 1);
  roles_.assign(static_cast<std::size_t>(num_ports), PortRole::kFabric);
  l2_modes_.assign(static_cast<std::size_t>(num_ports), L2PortMode::kAccess);
  pause_sent_.assign(static_cast<std::size_t>(num_ports) * kNumPriorities, false);
  pause_refresh_.assign(static_cast<std::size_t>(num_ports) * kNumPriorities, kInvalidEventId);
  matrix_.assign(static_cast<std::size_t>(num_ports) * static_cast<std::size_t>(num_ports) *
                     kNumPriorities,
                 0);
  watchdog_.assign(static_cast<std::size_t>(num_ports), WatchdogState{});
  alive_ = std::make_shared<bool>(true);

  for (int i = 0; i < num_ports; ++i) {
    auto& p = add_port();
    p.on_dequeue = [this, i](const Packet& pkt, int prio) {
      if (pkt.mmu_in_port >= 0) {
        matrix_[midx(pkt.mmu_in_port, i, prio)] -= pkt.frame_bytes;
      }
    };
  }
  if (cfg_.watchdog.enabled) {
    watchdog_timer_ = this->sim().schedule_in(cfg_.watchdog.check_interval, [this] { watchdog_tick(); });
  }
}

Switch::~Switch() {
  *alive_ = false;
  sim().metrics().remove_owner(this);
}

void Switch::add_route(Ipv4Prefix prefix, std::vector<int> ports) {
  Route r;
  r.prefix = prefix;
  r.ports = std::move(ports);
  routes_.push_back(std::move(r));
  bump_ecmp_epoch();  // membership change: memoized decisions are void
}

void Switch::bump_ecmp_epoch() {
  ++ecmp_epoch_;
  // Entries revalidate by epoch on hit; clearing here just bounds memory
  // across many control-plane writes.
  if (flow_cache_.size() > 16384) flow_cache_.clear();
}

void Switch::set_port_weight(int port_index, int weight) {
  int& w = port_weights_.at(static_cast<std::size_t>(port_index));
  weight = std::max(weight, 0);
  if (w == weight) return;
  w = weight;
  ++ecmp_weight_changes_;
  bump_ecmp_epoch();
}

std::vector<int> Switch::ecmp_member_ports() const {
  std::vector<int> members;
  for (const auto& r : routes_) {
    for (int p : r.ports) {
      if (std::find(members.begin(), members.end(), p) == members.end()) members.push_back(p);
    }
  }
  std::sort(members.begin(), members.end());
  return members;
}

bool Switch::ecmp_cost_out_safe(int port_index) const {
  bool in_any_group = false;
  for (const auto& r : routes_) {
    bool contains = false;
    int other_alive = 0;
    for (int p : r.ports) {
      if (p == port_index) {
        contains = true;
      } else if (port(p).usable() && port_weights_[static_cast<std::size_t>(p)] > 0) {
        ++other_alive;
      }
    }
    if (!contains) continue;
    if (other_alive == 0) return false;  // last usable weighted member
    in_any_group = true;
  }
  return in_any_group;
}

const std::vector<int>& Switch::weighted_members(const Route& r) const {
  if (r.weighted_epoch != ecmp_epoch_) {
    r.weighted.clear();
    bool uniform = true;
    for (int p : r.ports) {
      if (port_weights_[static_cast<std::size_t>(p)] != 1) {
        uniform = false;
        break;
      }
    }
    if (!uniform) {
      for (int p : r.ports) {
        const int w = port_weights_[static_cast<std::size_t>(p)];
        for (int i = 0; i < w; ++i) r.weighted.push_back(p);
      }
      // Every member costed out: ignore weights rather than blackhole the
      // group (the data-plane half of the capacity floor).
      if (r.weighted.empty()) r.weighted = r.ports;
    }
    r.weighted_epoch = ecmp_epoch_;
  }
  return r.weighted.empty() ? r.ports : r.weighted;
}

void Switch::add_local_subnet(Ipv4Prefix prefix) { local_subnets_.push_back(prefix); }

void Switch::classify(Packet& pkt) const {
  int code = 0;
  if (cfg_.classify_mode == ClassifyMode::kVlanPcp) {
    code = pkt.eth.vlan ? pkt.eth.vlan->pcp : 0;
  } else if (pkt.ip) {
    code = pkt.ip->dscp;
  }
  const int pg = cfg_.dscp_to_pg[static_cast<std::size_t>(code & 0x7)];
  pkt.priority = pg;
  pkt.lossless = cfg_.lossless[static_cast<std::size_t>(pg)];
}

int Switch::route_lookup(const Packet& pkt, bool count_failover) const {
  if (!pkt.ip) return -1;
  // Memoized flow->egress decision (epoch-validated; stale entries from a
  // weight flip, membership change, or link transition fail the epoch check
  // and fall through to a full lookup).
  std::uint64_t h = 0;
  const bool hashed = !cfg_.packet_spray;
  if (hashed) {
    h = five_tuple_hash(pkt, ecmp_seed_);
    const auto it = flow_cache_.find(h);
    if (it != flow_cache_.end() && it->second.epoch == ecmp_epoch_ &&
        it->second.tuple == pkt.flow_tuple()) {
      ++flow_cache_hits_;
      return it->second.out_port;
    }
  }
  const Route* best = nullptr;
  for (const auto& r : routes_) {
    if (!r.prefix.contains(pkt.ip->dst)) continue;
    if (best == nullptr || r.prefix.length > best->prefix.length) best = &r;
  }
  if (best == nullptr || best->ports.empty()) return -1;
  auto usable = [this](int p) { return port(p).usable(); };
  if (best->ports.size() == 1) return usable(best->ports[0]) ? best->ports[0] : -1;
  if (cfg_.packet_spray) {
    // §8.1: spray packets round-robin over the group (reorders flows),
    // skipping members whose link is down or whose weight is 0. A trace
    // probe (count_failover == false) peeks at the next pick without
    // consuming it.
    std::uint64_t ctr = spray_counter_;
    bool skipped_costed_out = false;
    for (std::size_t tries = 0; tries < best->ports.size(); ++tries) {
      const int p = best->ports[ctr++ % best->ports.size()];
      if (!usable(p)) continue;
      if (port_weights_[static_cast<std::size_t>(p)] <= 0) {
        skipped_costed_out = true;
        continue;
      }
      if (count_failover) {
        spray_counter_ = ctr;
        if (tries > 0) ++route_failovers_;
      }
      return p;
    }
    if (skipped_costed_out) {
      // Capacity floor: every weighted member is down — spray over the
      // usable costed-out ones rather than blackhole.
      ctr = spray_counter_;
      for (std::size_t tries = 0; tries < best->ports.size(); ++tries) {
        const int p = best->ports[ctr++ % best->ports.size()];
        if (!usable(p)) continue;
        if (count_failover) {
          spray_counter_ = ctr;
          ++route_failovers_;
        }
        return p;
      }
    }
    if (count_failover) spray_counter_ = ctr;
    return -1;
  }
  const std::vector<int>& members = weighted_members(*best);
  const int primary = members[h % members.size()];
  if (usable(primary)) {
    // Cache only this clean path: failover picks below stay uncached so
    // route_failovers_ keeps counting per packet, and a cached port is
    // usable by construction whenever its epoch is current.
    if (hashed) {
      if (flow_cache_.size() > 16384) flow_cache_.clear();
      flow_cache_[h] = FlowCacheEntry{pkt.flow_tuple(), ecmp_epoch_, primary};
    }
    return primary;
  }
  // Self-healing ECMP: the hashed member is down — re-hash over survivors
  // (weight slots preserved) so the flow moves (deterministically) to a
  // live path; if no weighted member survives, fall back to any usable
  // member (capacity floor).
  std::vector<int> survivors;
  survivors.reserve(members.size());
  for (int p : members) {
    if (usable(p)) survivors.push_back(p);
  }
  if (survivors.empty() && &members != &best->ports) {
    for (int p : best->ports) {
      if (usable(p)) survivors.push_back(p);
    }
  }
  if (survivors.empty()) return -1;
  if (count_failover) ++route_failovers_;
  return survivors[h % survivors.size()];
}

void Switch::handle_packet(PooledPacket pp, int in_port) {
  Packet& pkt = *pp;
  // L2 receive filter: we are an IP router on every port, so a frame not
  // addressed to this port's MAC is dropped (flooded copies of §4.2 that
  // escaped toward the fabric die here).
  if (!pkt.eth.dst.is_broadcast() && pkt.eth.dst != port_mac(in_port)) {
    ++port(in_port).counters().mac_mismatch_drops;
    return;
  }
  // §3: 802.1Q port-mode admission on server-facing ports. A trunk port
  // drops untagged frames (this is what breaks PXE boot in VLAN-based PFC
  // deployments); an access port drops tagged ones.
  if (roles_[static_cast<std::size_t>(in_port)] == PortRole::kServerFacing) {
    const L2PortMode mode = l2_modes_[static_cast<std::size_t>(in_port)];
    if ((mode == L2PortMode::kTrunk && !pkt.eth.vlan) ||
        (mode == L2PortMode::kAccess && pkt.eth.vlan)) {
      ++l2_mode_drops_;
      return;
    }
  }

  // Hardware MAC learning (§4.2): refreshed by every received packet.
  mac_.learn(pkt.eth.src, in_port, sim().now());

  if (drop_filter_ && drop_filter_(pkt)) {
    // Attributed to the ingress port so the Monitor dump shows *where* the
    // injected loss bites, next to the MMU drop classes; the switch-level
    // total stays for existing callers.
    ++filtered_drops_;
    ++port(in_port).counters().filtered_drops;
    return;
  }

  classify(pkt);

  // §4.3 watchdog: while lossless mode is disabled on a server-facing port,
  // lossless packets *from* that port are discarded.
  if (pkt.lossless && watchdog_[static_cast<std::size_t>(in_port)].disabled) {
    ++port(in_port).counters().ingress_drops;
    return;
  }

  // MMU admission on the ingress (port, PG).
  const auto admission = mmu_->admit(in_port, pkt.priority, pkt.frame_bytes);
  if (!admission.admitted) {
    if (pkt.lossless) {
      ++port(in_port).counters().headroom_overflow_drops;
    } else {
      ++port(in_port).counters().ingress_drops;
    }
    return;
  }
  pkt.mmu_in_port = in_port;
  // allocate_shared: one pooled allocation for token + control block.
  pkt.charge = std::allocate_shared<Charge>(ChargeAlloc<Charge>{}, this, alive_, in_port,
                                            pkt.priority, admission.to_shared,
                                            admission.to_headroom, admission.to_reserved);
  after_admit(in_port, pkt.priority);

  forward(std::move(pp), in_port);
}

void Switch::forward(PooledPacket pp, int in_port) {
  Packet& pkt = *pp;
  if (!pkt.ip || pkt.ip->ttl <= 1) {
    ++port(in_port).counters().ingress_drops;
    return;
  }
  --pkt.ip->ttl;

  // Locally attached subnet? Deliver via ARP + MAC table.
  const Ipv4Prefix* local = nullptr;
  for (const auto& s : local_subnets_) {
    if (s.contains(pkt.ip->dst) && (local == nullptr || s.length > local->length)) local = &s;
  }
  if (local != nullptr) {
    deliver_local(std::move(pp), in_port, *local);
    return;
  }

  const int out = route_lookup(pkt);
  if (out < 0 || out == in_port) {
    ++no_route_drops_;
    ++port(in_port).counters().ingress_drops;
    return;
  }
  // §3's operational problem #2: when VLAN-based PFC traffic is routed
  // across a subnet boundary, there is no standard way to preserve the
  // PCP — the rewritten tag carries priority 0, so the packet loses its
  // lossless class downstream. DSCP rides in the IP header and survives.
  if (cfg_.classify_mode == ClassifyMode::kVlanPcp && pkt.eth.vlan) {
    pkt.eth.vlan->pcp = 0;
  }
  pkt.eth.src = port_mac(out);
  pkt.eth.dst = port(out).peer_mac();
  enqueue_egress(std::move(pp), out);
}

void Switch::deliver_local(PooledPacket pp, int in_port, Ipv4Prefix subnet) {
  Packet& pkt = *pp;
  (void)subnet;
  const auto mac = arp_.lookup(pkt.ip->dst, sim().now());
  if (!mac) {
    ++arp_miss_drops_;
    return;
  }
  auto out = mac_.lookup(*mac, sim().now());
  if (out && !port(*out).usable()) {
    // Learned port's link is dead: fail over as if the entry had aged out.
    // Expire it so the table re-learns the live port when the host moves
    // (or the link heals and the host transmits again).
    mac_.expire(*mac);
    ++route_failovers_;
    out.reset();
  }
  if (!out) {
    // Incomplete ARP entry (§4.2): IP→MAC known, MAC→port expired. Standard
    // Ethernet floods; the paper's fix drops lossless packets instead.
    if (cfg_.arp_policy == ArpIncompletePolicy::kDropLossless && pkt.lossless) {
      ++port(in_port).counters().arp_incomplete_drops;
      return;
    }
    pkt.eth.dst = *mac;
    flood(std::move(pp), in_port);
    return;
  }
  pkt.eth.src = port_mac(*out);
  pkt.eth.dst = *mac;
  enqueue_egress(std::move(pp), *out);
}

void Switch::flood(PooledPacket pp, int in_port) {
  ++flood_events_;
  for (int p = 0; p < port_count(); ++p) {
    if (p == in_port || !port(p).usable()) continue;
    PooledPacket copy = acquire_pooled_packet(Packet(*pp));  // copies share the MMU charge token
    copy->flooded = true;
    copy->eth.src = port_mac(p);
    enqueue_egress(std::move(copy), p);
  }
}

void Switch::ecn_mark(Packet& pkt, int out_port) const {
  if (!pkt.ip || pkt.ip->ecn == Ecn::kNotEct || pkt.ip->ecn == Ecn::kCe) return;
  const auto& ecn = cfg_.ecn[static_cast<std::size_t>(pkt.priority)];
  if (!ecn.enabled) return;
  const std::int64_t q = port(out_port).queued_bytes(pkt.priority);
  if (q < ecn.kmin) return;
  double p = 1.0;
  if (q < ecn.kmax) {
    p = ecn.pmax * static_cast<double>(q - ecn.kmin) / static_cast<double>(ecn.kmax - ecn.kmin);
  }
  if (rng_.bernoulli(p)) pkt.ip->ecn = Ecn::kCe;
}

void Switch::enqueue_egress(PooledPacket pp, int out_port) {
  Packet& pkt = *pp;
  // §4.3 watchdog: lossless packets *to* a disabled port are discarded.
  if (pkt.lossless && watchdog_[static_cast<std::size_t>(out_port)].disabled) {
    ++port(out_port).counters().egress_drops;
    return;
  }
  ecn_mark(pkt, out_port);
  matrix_[midx(pkt.mmu_in_port, out_port, pkt.priority)] += pkt.frame_bytes;
  port(out_port).enqueue(std::move(pp));
}

// --- PFC generation ---------------------------------------------------------

void Switch::after_admit(int in_port, int pg) {
  if (!cfg_.lossless[static_cast<std::size_t>(pg)]) return;
  const auto i = idx(in_port, pg);
  if (!pause_sent_[i] && mmu_->should_pause(in_port, pg)) send_xoff(in_port, pg);
}

void Switch::after_release(int in_port, int pg) {
  const auto i = idx(in_port, pg);
  if (pause_sent_[i] && mmu_->should_resume(in_port, pg)) send_xon(in_port, pg);
}

void Switch::send_xoff(int port_index, int pg) {
  const auto i = idx(port_index, pg);
  pause_sent_[i] = true;
  send_pause(port_index, pg, 0xffff);
  const Time refresh = 0xffff * port(port_index).quantum_time() / 2;
  pause_refresh_[i] = sim().schedule_in(refresh, [this, port_index, pg] {
    refresh_pause(port_index, pg);
  });
}

void Switch::refresh_pause(int port_index, int pg) {
  const auto i = idx(port_index, pg);
  if (!pause_sent_[i]) return;
  if (mmu_->should_resume(port_index, pg)) {
    send_xon(port_index, pg);
    return;
  }
  send_pause(port_index, pg, 0xffff);
  const Time refresh = 0xffff * port(port_index).quantum_time() / 2;
  pause_refresh_[i] = sim().schedule_in(refresh, [this, port_index, pg] {
    refresh_pause(port_index, pg);
  });
}

void Switch::send_xon(int port_index, int pg) {
  const auto i = idx(port_index, pg);
  pause_sent_[i] = false;
  sim().cancel(pause_refresh_[i]);
  pause_refresh_[i] = kInvalidEventId;
  send_pause(port_index, pg, 0);
}

// --- fault plane ------------------------------------------------------------

void Switch::on_link_change(int port_index, bool up) {
  // Either transition changes who is usable: memoized ECMP decisions for
  // flows through this port (or failed over away from it) are stale.
  bump_ecmp_epoch();
  if (up) return;  // next MMU admission re-asserts XOFF if still needed
  // The link died: any pause we asserted across it is gone, and the storm
  // watchdog must restart its observation from scratch.
  for (int pg = 0; pg < kNumPriorities; ++pg) {
    const auto i = idx(port_index, pg);
    if (pause_sent_[i]) {
      pause_sent_[i] = false;
      sim().cancel(pause_refresh_[i]);
      pause_refresh_[i] = kInvalidEventId;
    }
  }
  watchdog_[static_cast<std::size_t>(port_index)] = WatchdogState{};
}

void Switch::reboot() {
  ++reboots_;
  arp_.clear();
  mac_.clear();
  // Running config is lost with the control plane: ECMP weights revert to 1
  // (a SelfHealer re-applies its mitigation on its next scan) and every
  // memoized forwarding decision dies with the tables.
  std::fill(port_weights_.begin(), port_weights_.end(), 1);
  flow_cache_.clear();
  bump_ecmp_epoch();
  for (int p = 0; p < port_count(); ++p) {
    for (int prio = 0; prio < kNumPriorities; ++prio) port(p).flush_priority(prio);
    for (int pg = 0; pg < kNumPriorities; ++pg) {
      const auto i = idx(p, pg);
      if (pause_sent_[i]) {
        pause_sent_[i] = false;
        sim().cancel(pause_refresh_[i]);
        pause_refresh_[i] = kInvalidEventId;
        send_pause(p, pg, 0);  // release the upstream if the link is still up
      }
    }
    watchdog_[static_cast<std::size_t>(p)] = WatchdogState{};
  }
  ROCELAB_LOG_INFO("%s: rebooted (tables flushed, MMU reset)", name().c_str());
}

// --- §4.3 switch-side watchdog ----------------------------------------------

void Switch::on_pause_rx(int in_port, const PfcFrame& frame) {
  auto& wd = watchdog_[static_cast<std::size_t>(in_port)];
  wd.last_pause_rx = sim().now();
  if (wd.disabled) {
    // Lossless mode disabled: ignore pauses from the malfunctioning NIC.
    for (int p = 0; p < kNumPriorities; ++p) {
      if (frame.enabled(p)) port(in_port).receive_pause(p, 0);
    }
  }
}

void Switch::watchdog_tick() {
  const Time now = sim().now();
  for (int p = 0; p < port_count(); ++p) {
    if (roles_[static_cast<std::size_t>(p)] != PortRole::kServerFacing) continue;
    auto& wd = watchdog_[static_cast<std::size_t>(p)];
    if (wd.disabled) {
      if (wd.last_pause_rx >= 0 && now - wd.last_pause_rx >= cfg_.watchdog.reenable_after) {
        wd.disabled = false;
        wd.condition_since = -1;
        ROCELAB_LOG_INFO("%s: watchdog re-enabled lossless mode on port %d", name().c_str(), p);
      }
      continue;
    }
    const bool paused_with_backlog = port(p).total_queued_bytes() > 0 && port(p).fully_blocked();
    const bool receiving_pauses =
        wd.last_pause_rx >= 0 && now - wd.last_pause_rx <= 2 * cfg_.watchdog.check_interval;
    if (paused_with_backlog && receiving_pauses) {
      if (wd.condition_since < 0) wd.condition_since = now;
      if (now - wd.condition_since >= cfg_.watchdog.trigger_after) {
        wd.disabled = true;
        ++watchdog_trips_;
        for (int prio = 0; prio < kNumPriorities; ++prio) {
          if (!cfg_.lossless[static_cast<std::size_t>(prio)]) continue;
          port(p).receive_pause(prio, 0);  // stop honoring the NIC's pauses
          port(p).flush_priority(prio);    // discard what it wedged
        }
        ROCELAB_LOG_INFO("%s: watchdog disabled lossless mode on port %d", name().c_str(), p);
      }
    } else {
      wd.condition_since = -1;
    }
  }
  watchdog_timer_ = sim().schedule_in(cfg_.watchdog.check_interval, [this] { watchdog_tick(); });
}

// --- deadlock detection -------------------------------------------------------

DeadlockReport detect_pfc_deadlock(std::span<Switch* const> switches) {
  struct PortNode {
    Switch* sw;
    int port;
  };
  std::unordered_map<const Node*, Switch*> by_node;
  for (Switch* s : switches) by_node[s] = s;

  auto key = [](const Switch* s, int p) {
    return (static_cast<std::uint64_t>(s->id()) << 16) | static_cast<std::uint64_t>(p);
  };
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> edges;
  std::unordered_map<std::uint64_t, PortNode> nodes;

  for (Switch* s : switches) {
    for (int in = 0; in < s->port_count(); ++in) {
      if (!s->port(in).connected()) continue;
      auto it = by_node.find(s->port(in).peer());
      if (it == by_node.end()) continue;  // upstream is a host
      Switch* up = it->second;
      const int up_port = s->port(in).peer_port();
      for (int pg = 0; pg < kNumPriorities; ++pg) {
        if (!s->pause_asserted(in, pg)) continue;
        const auto from = key(up, up_port);
        nodes.emplace(from, PortNode{up, up_port});
        for (int out = 0; out < s->port_count(); ++out) {
          if (s->inflight_bytes(in, out, pg) <= 0) continue;
          const auto to = key(s, out);
          nodes.emplace(to, PortNode{s, out});
          edges[from].push_back(to);
        }
      }
    }
  }

  // Iterative DFS with colors, recording the cycle path.
  std::unordered_map<std::uint64_t, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::uint64_t> stack;
  DeadlockReport report;

  std::function<bool(std::uint64_t)> dfs = [&](std::uint64_t u) -> bool {
    color[u] = 1;
    stack.push_back(u);
    for (auto v : edges[u]) {
      const int c = color[v];
      if (c == 1) {
        // Found a cycle: emit it from the first occurrence of v.
        auto it = std::find(stack.begin(), stack.end(), v);
        for (; it != stack.end(); ++it) {
          const auto& pn = nodes.at(*it);
          report.cycle.emplace_back(pn.sw->name(), pn.port);
        }
        return true;
      }
      if (c == 0 && dfs(v)) return true;
    }
    stack.pop_back();
    color[u] = 2;
    return false;
  };

  for (const auto& [k, _] : nodes) {
    if (color[k] == 0 && dfs(k)) {
      report.deadlocked = true;
      break;
    }
  }
  return report;
}

}  // namespace rocelab
