// Tests for the telemetry plane (MetricRegistry + RegistrySampler) and the
// experiment plane (scenario knobs), plus edge cases of the stats
// primitives they sample into.
#include <cstdlib>
#include <stdexcept>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/exp/scenario.h"
#include "src/monitor/metric_registry.h"
#include "src/monitor/monitor.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

// --- MetricRegistry core -----------------------------------------------------

TEST(MetricRegistry, PatternMatching) {
  EXPECT_TRUE(MetricRegistry::matches("t0/port1/prio3/rx_pause", "t0/port1/prio3/rx_pause"));
  EXPECT_TRUE(MetricRegistry::matches("t0/port1/prio3/rx_pause", "t0/port*/prio*/rx_pause"));
  EXPECT_TRUE(MetricRegistry::matches("t0/port12/prio3/rx_pause", "t0/port1*/prio3/rx_pause"));
  EXPECT_FALSE(MetricRegistry::matches("t0/port2/prio3/rx_pause", "t0/port1*/prio3/rx_pause"));
  // '*' matches exactly one segment, never across '/'.
  EXPECT_FALSE(MetricRegistry::matches("t0/port1/prio3/rx_pause", "t0/*/rx_pause"));
  // Trailing '**' swallows any remainder, but requires at least one segment.
  EXPECT_TRUE(MetricRegistry::matches("t0/port1/prio3/rx_pause", "t0/**"));
  EXPECT_FALSE(MetricRegistry::matches("t0/port1", "t0/port1/**"));
  EXPECT_FALSE(MetricRegistry::matches("t1/port1/prio3/rx_pause", "t0/**"));
}

TEST(MetricRegistry, SumSelectAndRemoveOwner) {
  MetricRegistry reg;
  std::int64_t a = 3, b = 4, c = 5;
  int owner1 = 0, owner2 = 0;
  reg.add(&owner1, "n0/x", &a);
  reg.add(&owner1, "n0/y", &b);
  reg.add(&owner2, "n1/x", &c);
  EXPECT_EQ(reg.live_entries(), 3u);
  EXPECT_EQ(reg.sum("*/x"), 8);
  EXPECT_EQ(reg.sum("n0/*"), 7);
  EXPECT_EQ(reg.sum("**"), 12);
  EXPECT_EQ(reg.sum("nope/*"), 0);

  // select() is registration-ordered and live values read through.
  const auto ids = reg.select("*/x");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(reg.entry(ids[0]).name, "n0/x");
  EXPECT_EQ(reg.entry(ids[1]).name, "n1/x");
  a = 100;
  EXPECT_EQ(reg.sum("*/x"), 105);

  const std::uint64_t v = reg.version();
  reg.remove_owner(&owner1);
  EXPECT_GT(reg.version(), v);
  EXPECT_EQ(reg.live_entries(), 1u);
  EXPECT_EQ(reg.sum("**"), 5);
  reg.remove_owner(&owner1);  // unknown/already-removed owner: no-op
  EXPECT_EQ(reg.live_entries(), 1u);
}

TEST(MetricRegistry, SelectionCachesAndRevalidates) {
  MetricRegistry reg;
  std::int64_t a = 1;
  int owner = 0;
  MetricSelection sel(reg, "n*/x");
  EXPECT_EQ(sel.sum(), 0);
  reg.add(&owner, "n0/x", &a);  // registry grew: selection must re-resolve
  EXPECT_EQ(sel.count(), 1u);
  EXPECT_EQ(sel.sum(), 1);
  reg.remove_owner(&owner);
  EXPECT_EQ(sel.sum(), 0);
}

TEST(MetricSelection, SumRateBetweenSamples) {
  MetricRegistry reg;
  int owner = 0;
  std::int64_t a = 0;
  reg.add(&owner, "n0/x", &a);
  MetricSelection sel(reg, "n*/x");
  const MetricSample s0 = sel.sample(0);
  a = 1000;
  const MetricSample s1 = sel.sample(milliseconds(1));
  // 1000 counter units over 1 ms of simulated time.
  EXPECT_DOUBLE_EQ(MetricSelection::sum_rate(s0, s1), 1000.0 / 1e-3);
  // No elapsed time (or samples out of order): rate is defined as zero.
  EXPECT_DOUBLE_EQ(MetricSelection::sum_rate(s1, s1), 0.0);
  EXPECT_DOUBLE_EQ(MetricSelection::sum_rate(s1, s0), 0.0);
}

TEST(MetricSelection, SampleRevalidatesAgainstRegistryVersion) {
  MetricRegistry reg;
  int owner = 0;
  int late_owner = 0;
  std::int64_t a = 5;
  reg.add(&owner, "n0/x", &a);
  MetricSelection sel(reg, "n*/x");
  const MetricSample s0 = sel.sample(0);
  EXPECT_EQ(s0.value, 5);

  // A matching metric registered AFTER the first sample (topology change)
  // must be covered by the next one — the cached id list revalidates
  // against the registry version instead of going stale.
  std::int64_t b = 7;
  reg.add(&late_owner, "n1/x", &b);
  const MetricSample s1 = sel.sample(milliseconds(1));
  EXPECT_EQ(s1.value, 12);
  EXPECT_DOUBLE_EQ(MetricSelection::sum_rate(s0, s1), 7.0 / 1e-3);

  // And removals shrink the next sample the same way.
  reg.remove_owner(&late_owner);
  EXPECT_EQ(sel.sample(milliseconds(2)).value, 5);
}

TEST(MetricRegistry, ComponentsRegisterAtConstruction) {
  StarTopology topo(2);
  const MetricRegistry& reg = topo.sim().metrics();
  // Switch ports, MMU, switch counters, host NIC stats all show up under
  // hierarchical names without any explicit wiring.
  EXPECT_EQ(reg.select("sw/port0/prio3/tx_packets").size(), 1u);
  EXPECT_EQ(reg.select("sw/mmu/shared_used").size(), 1u);
  EXPECT_EQ(reg.select("h0/rdma/messages_completed").size(), 1u);
  EXPECT_EQ(reg.select("h0/host/rx_queue_bytes").size(), 1u);

  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 64 * kKiB, 1);
  topo.sim().run_until(milliseconds(5));
  EXPECT_GT(reg.sum("sw/port1/prio*/tx_bytes"), 64 * kKiB);
  EXPECT_EQ(reg.sum("h1/rdma/messages_received"), 1);
  // Registry reads agree with the component's own counters.
  EXPECT_EQ(reg.sum("sw/port1/prio3/tx_packets"),
            topo.sw().port(1).counters().tx_packets[3]);
}

// --- RegistrySampler ---------------------------------------------------------

TEST(RegistrySampler, NeverMovingCounterYieldsZeroDeltas) {
  StarTopology topo(2);
  std::int64_t ctr = 42;
  int owner = 0;
  topo.sim().metrics().add(&owner, "test/ctr", &ctr);
  RegistrySampler sampler(topo.sim(), microseconds(100));
  sampler.watch("ch", "test/ctr");
  sampler.start();
  topo.sim().run_until(milliseconds(1));
  // The counter never moved: every interval delta is zero, but the live
  // read still sees the absolute value.
  EXPECT_DOUBLE_EQ(sampler.series("ch").total(), 0.0);
  EXPECT_EQ(sampler.current("ch"), 42);
  topo.sim().metrics().remove_owner(&owner);
}

TEST(RegistrySampler, CounterDeltasAndGaugeLevels) {
  StarTopology topo(2);
  std::int64_t ctr = 0, gauge = 7;
  int owner = 0;
  topo.sim().metrics().add(&owner, "test/ctr", &ctr);
  topo.sim().metrics().add(&owner, "test/gauge", &gauge, MetricKind::kGauge);
  RegistrySampler sampler(topo.sim(), microseconds(100));
  sampler.watch("c", "test/ctr");
  sampler.watch("g", "test/gauge", MetricKind::kGauge);
  sampler.start();
  topo.sim().schedule_at(microseconds(250), [&] { ctr += 10; gauge = 3; });
  topo.sim().run_until(milliseconds(1));
  EXPECT_DOUBLE_EQ(sampler.series("c").total(), 10.0);
  EXPECT_DOUBLE_EQ(sampler.samples("g").max(), 7.0);
  EXPECT_DOUBLE_EQ(sampler.samples("g").min(), 3.0);
  topo.sim().metrics().remove_owner(&owner);
}

// --- PeriodicSampler stop/restart regression --------------------------------

TEST(PeriodicSampler, StopGuaranteesNoFurtherTick) {
  StarTopology topo(2);
  int probes = 0;
  PeriodicSampler sampler(topo.sim(), [&] { return static_cast<double>(++probes); },
                          microseconds(100));
  sampler.start();
  topo.sim().run_until(microseconds(550));
  EXPECT_EQ(probes, 5);
  sampler.stop();
  // Even though a tick was already scheduled for t=600us, stop() cancels it.
  topo.sim().run_until(milliseconds(2));
  EXPECT_EQ(probes, 5);
}

TEST(PeriodicSampler, RestartDoesNotDoubleSchedule) {
  StarTopology topo(2);
  int probes = 0;
  PeriodicSampler sampler(topo.sim(), [&] { return static_cast<double>(++probes); },
                          microseconds(100));
  sampler.start();
  sampler.start();  // idempotent: cancels the pending tick first
  topo.sim().run_until(microseconds(1050));
  EXPECT_EQ(probes, 10);

  sampler.stop();
  sampler.start();  // stop/start cycle resumes a single cadence
  topo.sim().run_until(microseconds(2050));
  EXPECT_EQ(probes, 20);
}

// --- stats primitive edge cases ---------------------------------------------

TEST(IntervalSeries, EmptySeries) {
  IntervalSeries s(milliseconds(1));
  EXPECT_EQ(s.last_bucket(), -1);
  EXPECT_DOUBLE_EQ(s.total(), 0.0);
  EXPECT_DOUBLE_EQ(s.bucket_value(0), 0.0);
  EXPECT_DOUBLE_EQ(s.bucket_value(17), 0.0);
  EXPECT_TRUE(s.buckets().empty());
}

TEST(IntervalSeries, SingleBucketAndOutOfOrderQueries) {
  IntervalSeries s(milliseconds(1));
  s.add(microseconds(300), 2.0);
  s.add(microseconds(900), 3.0);
  EXPECT_EQ(s.last_bucket(), 0);
  EXPECT_DOUBLE_EQ(s.bucket_value(0), 5.0);
  // Queries for buckets before/after anything recorded are zero, not UB.
  EXPECT_DOUBLE_EQ(s.bucket_value(-3), 0.0);
  EXPECT_DOUBLE_EQ(s.bucket_value(100), 0.0);
  // Sparse series: missing middle buckets read as zero.
  s.add(milliseconds(5), 7.0);
  EXPECT_EQ(s.last_bucket(), 5);
  EXPECT_DOUBLE_EQ(s.bucket_value(2), 0.0);
  EXPECT_DOUBLE_EQ(s.bucket_value(5), 7.0);
  EXPECT_DOUBLE_EQ(s.total(), 12.0);
}

TEST(PercentileSampler, EmptyAndSingleSample) {
  PercentileSampler p;
  EXPECT_TRUE(p.empty());
  EXPECT_THROW(p.percentile(99), std::logic_error);
  EXPECT_THROW(p.mean(), std::logic_error);
  p.add(42.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(p.mean(), 42.0);
}

// --- scenario knobs ----------------------------------------------------------

TEST(Knobs, ResolutionOrderDefaultEnvOverride) {
  ::unsetenv("ROCELAB_TEST_KNOB");
  {
    exp::Knobs k;
    k.declare(exp::knob_int("ms", 40, "ROCELAB_TEST_KNOB"));
    EXPECT_EQ(k.get_int("ms"), 40);
  }
  ::setenv("ROCELAB_TEST_KNOB", "70", 1);
  {
    exp::Knobs k;
    k.declare(exp::knob_int("ms", 40, "ROCELAB_TEST_KNOB"));
    EXPECT_EQ(k.get_int("ms"), 70);  // env beats default
    EXPECT_TRUE(k.set_override("ms", "90"));
    EXPECT_EQ(k.get_int("ms"), 90);  // CLI beats env
    EXPECT_FALSE(k.set_override("unknown", "1"));
  }
  ::unsetenv("ROCELAB_TEST_KNOB");
}

TEST(Knobs, TypesAndListParsing) {
  exp::Knobs k;
  k.declare(exp::knob_double("rate", 0.01));
  k.declare(exp::knob_string("sweep", "0,1e-4,2.5"));
  EXPECT_TRUE(k.has("rate"));
  EXPECT_FALSE(k.has("nope"));
  EXPECT_DOUBLE_EQ(k.get_double("rate"), 0.01);
  const auto list = k.get_list("sweep");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[0], 0.0);
  EXPECT_DOUBLE_EQ(list[1], 1e-4);
  EXPECT_DOUBLE_EQ(list[2], 2.5);
}

}  // namespace
}  // namespace rocelab
