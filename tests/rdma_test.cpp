// RoCEv2 transport: segmentation, ACK/NAK, go-back-0 vs go-back-N (§4.1),
// retransmission timers, READ, and multi-QP behaviour.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

QpConfig lab_qp() {
  QpConfig qp;
  qp.dcqcn = false;
  return qp;
}

TEST(RdmaTransport, SegmentsTo1086ByteFrames) {
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], lab_qp());
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 10 * 1024, 1);  // 10 full + 1 partial
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.hosts[0]->rdma().stats().data_packets_sent, 10);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().bytes_received, 10 * 1024);
}

TEST(RdmaTransport, WriteBehavesLikeSend) {
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], lab_qp());
  (void)qb;
  std::int64_t got = 0;
  RdmaDemux demux(*topo.hosts[1]);
  demux.on_recv(qb, [&](const RdmaRecv& r) { got = r.bytes; });
  topo.hosts[0]->rdma().post_write(qa, 3000, 9);
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(got, 3000);
  EXPECT_EQ(topo.hosts[0]->rdma().stats().messages_completed, 1);
}

TEST(RdmaTransport, ReadPullsDataFromResponder) {
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], lab_qp());
  (void)qb;
  RdmaCompletion done{};
  RdmaDemux demux(*topo.hosts[0]);
  demux.on_completion(qa, [&](const RdmaCompletion& c) { done = c; });
  topo.hosts[0]->rdma().post_read(qa, 64 * 1024, 77);
  topo.sim().run_until(milliseconds(2));
  EXPECT_EQ(done.msg_id, 77u);
  EXPECT_EQ(done.bytes, 64 * 1024);
  // Data flowed from the responder, so B's NIC transmitted the packets.
  EXPECT_GT(topo.hosts[1]->rdma().stats().data_packets_sent, 60);
}

TEST(RdmaTransport, MessagesCompleteInOrder) {
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], lab_qp());
  (void)qb;
  std::vector<std::uint64_t> completed;
  RdmaDemux demux(*topo.hosts[0]);
  demux.on_completion(qa, [&](const RdmaCompletion& c) { completed.push_back(c.msg_id); });
  for (std::uint64_t m = 1; m <= 5; ++m) topo.hosts[0]->rdma().post_send(qa, 8 * 1024, m);
  topo.sim().run_until(milliseconds(2));
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(RdmaTransport, ZeroOrNegativeSizeThrows) {
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], lab_qp());
  (void)qb;
  EXPECT_THROW(topo.hosts[0]->rdma().post_send(qa, 0, 1), std::invalid_argument);
  EXPECT_THROW(topo.hosts[0]->rdma().post_send(qa, -5, 1), std::invalid_argument);
}

TEST(RdmaTransport, PostOnUnconnectedQpThrows) {
  StarTopology topo(2);
  const auto qpn = topo.hosts[0]->rdma().create_qp(lab_qp());
  EXPECT_THROW(topo.hosts[0]->rdma().post_send(qpn, 100, 1), std::logic_error);
}

TEST(RdmaTransport, UnknownQpThrows) {
  StarTopology topo(2);
  EXPECT_THROW(topo.hosts[0]->rdma().post_send(999, 100, 1), std::invalid_argument);
}

TEST(RdmaLoss, GoBackNRecoversSingleDrop) {
  StarTopology topo(2);
  // Drop exactly one data packet.
  int dropped = 0;
  topo.sw().set_drop_filter([&dropped](const Packet& p) {
    if (p.kind == PacketKind::kRoceData && p.bth->psn == 5 && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  QpConfig qp = lab_qp();
  qp.recovery = LossRecovery::kGoBackN;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 20 * 1024, 1);
  topo.sim().run_until(milliseconds(5));
  EXPECT_EQ(topo.hosts[0]->rdma().stats().messages_completed, 1);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().bytes_received, 20 * 1024);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().naks_sent, 1);
  // Go-back-N resends from PSN 5 only: at most ~RTT worth of dups.
  EXPECT_LE(topo.hosts[0]->rdma().stats().data_packets_retx, 15);
}

TEST(RdmaLoss, GoBack0RestartsWholeMessage) {
  StarTopology topo(2);
  int dropped = 0;
  topo.sw().set_drop_filter([&dropped](const Packet& p) {
    if (p.kind == PacketKind::kRoceData && p.bth->psn == 5 && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  QpConfig qp = lab_qp();
  qp.recovery = LossRecovery::kGoBack0;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 20 * 1024, 1);  // PSNs 0..19
  topo.sim().run_until(milliseconds(5));
  EXPECT_EQ(topo.hosts[0]->rdma().stats().messages_completed, 1);
  // Restarted from packet 0: at least the 5 pre-drop packets retransmitted.
  EXPECT_GE(topo.hosts[0]->rdma().stats().data_packets_retx, 5);
}

TEST(RdmaLoss, TailDropRecoveredByTimeout) {
  StarTopology topo(2);
  int dropped = 0;
  topo.sw().set_drop_filter([&dropped](const Packet& p) {
    // Drop the LAST packet of the message once: no later packet triggers a
    // NAK, so only the retransmission timer can recover.
    if (p.kind == PacketKind::kRoceData && p.bth->psn == 9 && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  QpConfig qp = lab_qp();
  qp.retx_timeout = microseconds(100);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 10 * 1024, 1);
  topo.sim().run_until(milliseconds(5));
  EXPECT_EQ(topo.hosts[0]->rdma().stats().messages_completed, 1);
  EXPECT_GT(topo.hosts[0]->rdma().stats().timeouts, 0);
}

TEST(RdmaLoss, LostAckRecovered) {
  StarTopology topo(2);
  int dropped = 0;
  topo.sw().set_drop_filter([&dropped](const Packet& p) {
    if (p.kind == PacketKind::kRoceAck && dropped < 1) {
      ++dropped;
      return true;
    }
    return false;
  });
  QpConfig qp = lab_qp();
  qp.retx_timeout = microseconds(100);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 4 * 1024, 1);
  topo.sim().run_until(milliseconds(5));
  EXPECT_EQ(topo.hosts[0]->rdma().stats().messages_completed, 1);
}

TEST(RdmaLoss, DuplicatesDoNotDoubleDeliver) {
  StarTopology topo(2);
  int dropped = 0;
  topo.sw().set_drop_filter([&dropped](const Packet& p) {
    if (p.kind == PacketKind::kRoceData && p.bth->psn == 2 && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  QpConfig qp = lab_qp();
  qp.recovery = LossRecovery::kGoBack0;  // maximizes duplicates
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  int recv_count = 0;
  std::int64_t recv_bytes = 0;
  RdmaDemux demux(*topo.hosts[1]);
  demux.on_recv(qb, [&](const RdmaRecv& r) {
    ++recv_count;
    recv_bytes += r.bytes;
  });
  topo.hosts[0]->rdma().post_send(qa, 10 * 1024, 1);
  topo.sim().run_until(milliseconds(5));
  EXPECT_EQ(recv_count, 1);
  EXPECT_EQ(recv_bytes, 10 * 1024);
}

TEST(RdmaLoss, NakSuppressedToOnePerEpisode) {
  StarTopology topo(2);
  int dropped = 0;
  topo.sw().set_drop_filter([&dropped](const Packet& p) {
    if (p.kind == PacketKind::kRoceData && p.bth->psn == 3 && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], lab_qp());
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 40 * 1024, 1);  // many packets follow the gap
  topo.sim().run_until(milliseconds(5));
  EXPECT_EQ(topo.hosts[1]->rdma().stats().naks_sent, 1);
  EXPECT_GT(topo.hosts[1]->rdma().stats().out_of_order_drops, 1);
}

TEST(RdmaQp, MultipleQpsShareTheNicFairly) {
  StarTopology topo(3);
  QpConfig qp = lab_qp();
  auto [q1, q1b] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  auto [q2, q2b] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], qp);
  (void)q1b; (void)q2b;
  RdmaDemux demux(*topo.hosts[0]);
  RdmaStreamSource s1(*topo.hosts[0], demux, q1, {.message_bytes = 64 * kKiB, .max_outstanding = 2});
  RdmaStreamSource s2(*topo.hosts[0], demux, q2, {.message_bytes = 64 * kKiB, .max_outstanding = 2});
  s1.start();
  s2.start();
  topo.sim().run_until(milliseconds(10));
  const double g1 = s1.goodput_bps();
  const double g2 = s2.goodput_bps();
  EXPECT_GT(g1, 10e9);
  EXPECT_GT(g2, 10e9);
  EXPECT_NEAR(g1 / g2, 1.0, 0.25);
}

TEST(RdmaQp, DistinctUdpSourcePorts) {
  StarTopology topo(2);
  auto& nic = topo.hosts[0]->rdma();
  // Registered source ports should differ across QPs (ECMP spreading, §2).
  std::set<std::uint32_t> qpns;
  for (int i = 0; i < 8; ++i) qpns.insert(nic.create_qp(lab_qp()));
  EXPECT_EQ(qpns.size(), 8u);
}

TEST(RdmaQp, BacklogTracksPendingWork) {
  StarTopology topo(2);
  // Pause the host's egress so nothing escapes.
  topo.hosts[0]->port(0).receive_pause(3, 0xffff);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], lab_qp());
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 100 * 1024, 1);
  EXPECT_EQ(topo.hosts[0]->rdma().backlog_bytes(qa), 100 * 1024);
}

TEST(RdmaAck, PeriodicAcksBoundSenderUncertainty) {
  StarTopology topo(2);
  QpConfig qp = lab_qp();
  qp.ack_every = 4;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 32 * 1024, 1);  // 32 packets
  topo.sim().run_until(milliseconds(2));
  // With ack_every=4 over 32 packets: 8 acks.
  EXPECT_GE(topo.hosts[1]->rdma().stats().acks_sent, 8);
}

}  // namespace
}  // namespace rocelab
