// The pluggable loss-recovery engine (ISSUE 9): per-mode engine semantics on
// the RdmaNic seam — go-back-0's restart barrier, go-back-N's pass-through
// defaults, and IRN-style selective repeat (hole tracking, SACK bitmap
// round-tripped through the wire codec under the ICRC, BDP-capped OOO
// buffering, Karn/RFC-6298 adaptive RTO) — plus the bake-off's PDES
// determinism contract (byte-identical counters at shards {1,2}).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/app/demux.h"
#include "src/faults/chaos.h"
#include "src/link/impairment.h"
#include "src/monitor/health.h"
#include "src/monitor/metric_registry.h"
#include "src/net/codec.h"
#include "src/nic/rdma_nic.h"
#include "src/nic/recovery.h"
#include "src/rocev2/deployment.h"
#include "src/topo/fabric.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

/// Scripted stand-in for the NIC side of the seam: records retransmit
/// requests and serves a fixed message map.
class FakeSender : public LossRecoveryEngine::Sender {
 public:
  [[nodiscard]] Time now() const override { return now_; }
  void retransmit(std::uint64_t psn) override { retransmits.push_back(psn); }
  [[nodiscard]] std::optional<std::uint64_t> message_start(
      std::uint64_t psn) const override {
    auto it = message_starts.upper_bound(psn);
    if (it == message_starts.begin()) return std::nullopt;
    return *std::prev(it);
  }

  void set_now(Time t) { now_ = t; }

  std::vector<std::uint64_t> retransmits;
  std::set<std::uint64_t> message_starts;

 private:
  Time now_ = 0;
};

QpConfig selrep_config(std::int64_t bdp_bytes = 4 * 1024, std::int32_t mtu = 1024,
                       Time rto = microseconds(400)) {
  QpConfig cfg;
  cfg.recovery = LossRecovery::kSelectiveRepeat;
  cfg.selrep_bdp_bytes = bdp_bytes;  // 4 packets of window by default
  cfg.mtu_payload = mtu;
  cfg.retx_timeout = rto;
  return cfg;
}

RoceSackExt sack_of(std::uint64_t bitmap) { return RoceSackExt{bitmap}; }

// --- mode plumbing -----------------------------------------------------------

TEST(RecoveryEngine, FactoryDispatchesOnConfiguredMode) {
  RecoveryCounters c;
  QpConfig cfg;
  for (LossRecovery mode : {LossRecovery::kGoBack0, LossRecovery::kGoBackN,
                            LossRecovery::kSelectiveRepeat}) {
    cfg.recovery = mode;
    EXPECT_EQ(LossRecoveryEngine::make(cfg, &c)->mode(), mode);
  }
}

TEST(RecoveryEngine, NamesRoundTripThroughParse) {
  for (LossRecovery mode : {LossRecovery::kGoBack0, LossRecovery::kGoBackN,
                            LossRecovery::kSelectiveRepeat}) {
    const auto parsed = parse_loss_recovery(to_string(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_EQ(parse_loss_recovery("irn"), LossRecovery::kSelectiveRepeat);
  EXPECT_EQ(parse_loss_recovery("gbn"), LossRecovery::kGoBackN);
  EXPECT_FALSE(parse_loss_recovery("tcp").has_value());
}

// --- go-back-N: the shared NIC machinery IS the algorithm --------------------

TEST(RecoveryEngine, GoBackNKeepsEveryDefault) {
  RecoveryCounters c;
  QpConfig cfg;
  cfg.recovery = LossRecovery::kGoBackN;
  const auto e = LossRecoveryEngine::make(cfg, &c);
  FakeSender nic;
  EXPECT_TRUE(e->admit_feedback(0));
  EXPECT_FALSE(e->on_nak(7).retransmit_single);
  const auto restart = e->plan_restart(42, nic);
  EXPECT_EQ(restart.cursor, 42u);
  EXPECT_FALSE(restart.rewind_una);
  EXPECT_FALSE(e->on_timeout(0, 8, nic));  // NIC runs go_back(una)
  EXPECT_TRUE(e->window_open(1000, 0));    // PFC is the backpressure
  EXPECT_FALSE(e->acks_out_of_order());
  EXPECT_FALSE(e->sack_bitmap(0).has_value());
  EXPECT_EQ(e->rto(microseconds(500)), microseconds(500));
  RxSegment seg;
  EXPECT_FALSE(e->buffer_out_of_order(3, seg));  // OOO always dropped
  EXPECT_EQ(c.sacked + c.retx + c.ooo_buffered, 0);
}

// --- go-back-0: restart barrier + whole-message rewind (the §4.1 seam) ------

TEST(RecoveryEngine, GoBack0RestartRewindsToMessageStartAndFloorsUna) {
  RecoveryCounters c;
  QpConfig cfg;
  cfg.recovery = LossRecovery::kGoBack0;
  const auto e = LossRecoveryEngine::make(cfg, &c);
  FakeSender nic;
  nic.message_starts = {0, 100, 200};
  nic.set_now(microseconds(50));
  const auto restart = e->plan_restart(157, nic);
  EXPECT_EQ(restart.cursor, 100u);  // first PSN of the containing message
  EXPECT_TRUE(restart.rewind_una);  // una floors back: the pass is abandoned
}

TEST(RecoveryEngine, GoBack0BarrierVoidsFeedbackFromTheAbandonedPass) {
  RecoveryCounters c;
  QpConfig cfg;
  cfg.recovery = LossRecovery::kGoBack0;
  const auto e = LossRecoveryEngine::make(cfg, &c);
  FakeSender nic;
  nic.message_starts = {0};
  EXPECT_TRUE(e->admit_feedback(microseconds(10)));  // no restart yet
  nic.set_now(microseconds(100));
  (void)e->plan_restart(5, nic);
  // ACKs created before the restart describe the aborted pass: void. At or
  // after the barrier they describe the new pass: admitted.
  EXPECT_FALSE(e->admit_feedback(microseconds(99)));
  EXPECT_TRUE(e->admit_feedback(microseconds(100)));
  EXPECT_TRUE(e->admit_feedback(microseconds(150)));
  // reset() (fresh QP) drops the barrier.
  e->reset();
  EXPECT_TRUE(e->admit_feedback(microseconds(0)));
}

TEST(RecoveryEngine, GoBack0WithoutInFlightMessageFallsBackToGoBackN) {
  RecoveryCounters c;
  QpConfig cfg;
  cfg.recovery = LossRecovery::kGoBack0;
  const auto e = LossRecoveryEngine::make(cfg, &c);
  FakeSender nic;  // no message_starts: nothing in flight contains the PSN
  nic.set_now(microseconds(10));
  const auto restart = e->plan_restart(7, nic);
  EXPECT_EQ(restart.cursor, 7u);
  EXPECT_FALSE(restart.rewind_una);
  EXPECT_TRUE(e->admit_feedback(microseconds(0)));  // no barrier stamped
}

TEST(RecoveryEngine, GoBack0ReceiverRetakesRestartedMessageStarts) {
  RecoveryCounters c;
  QpConfig cfg;
  cfg.recovery = LossRecovery::kGoBack0;
  const auto e = LossRecoveryEngine::make(cfg, &c);
  // A message-start below the cumulative mark is the sender restarting the
  // pass: rewind and take it. Mid-message duplicates are NOT retaken.
  EXPECT_TRUE(e->retake_message_start(100, 150, RoceOpcode::kSendFirst));
  EXPECT_TRUE(e->retake_message_start(100, 150, RoceOpcode::kWriteOnly));
  EXPECT_FALSE(e->retake_message_start(100, 150, RoceOpcode::kSendMiddle));
  EXPECT_FALSE(e->retake_message_start(150, 150, RoceOpcode::kSendFirst));
  EXPECT_FALSE(e->retake_message_start(151, 150, RoceOpcode::kSendFirst));
}

// --- selective repeat: sender-side hole tracking -----------------------------

TEST(RecoveryEngine, SelrepSackMarksHolesSackedAndCountsOnce) {
  RecoveryCounters c;
  const auto e = LossRecoveryEngine::make(selrep_config(), &c);
  // Cumulative 3; bits 0 and 2 => PSNs 4 and 6 delivered out of order.
  e->on_ack(3, sack_of(0b101), microseconds(10));
  EXPECT_FALSE(e->is_sacked(3));
  EXPECT_TRUE(e->is_sacked(4));
  EXPECT_FALSE(e->is_sacked(5));  // the hole
  EXPECT_TRUE(e->is_sacked(6));
  EXPECT_EQ(c.sacked, 2);
  // The same bitmap again (duplicate ACK): no double counting.
  e->on_ack(3, sack_of(0b101), microseconds(20));
  EXPECT_EQ(c.sacked, 2);
  // Cumulative progress past the SACKed range clears the set.
  e->on_ack(7, sack_of(0), microseconds(30));
  EXPECT_FALSE(e->is_sacked(4));
  EXPECT_FALSE(e->is_sacked(6));
}

TEST(RecoveryEngine, SelrepReorderedCumulativeAckIsHarmless) {
  RecoveryCounters c;
  const auto e = LossRecoveryEngine::make(selrep_config(), &c);
  e->on_ack(10, sack_of(0b1), microseconds(10));  // PSN 11 sacked
  EXPECT_TRUE(e->is_sacked(11));
  // A stale ACK arriving late (msn regressed) must not resurrect or clear
  // newer state below the already-acked range.
  e->on_ack(4, sack_of(0), microseconds(11));
  EXPECT_TRUE(e->is_sacked(11));
  EXPECT_EQ(c.sacked, 1);
}

TEST(RecoveryEngine, SelrepNakTriggersSingleRetransmit) {
  RecoveryCounters c;
  const auto e = LossRecoveryEngine::make(selrep_config(), &c);
  const auto act = e->on_nak(5);
  EXPECT_TRUE(act.retransmit_single);  // resend only the hole, not the window
  EXPECT_EQ(c.retx, 1);
}

TEST(RecoveryEngine, SelrepWindowIsBdpBounded) {
  RecoveryCounters c;
  // 4096 bytes / 1024-byte MTU = 4-packet window.
  const auto e = LossRecoveryEngine::make(selrep_config(4 * 1024, 1024), &c);
  EXPECT_TRUE(e->window_open(3, 0));
  EXPECT_FALSE(e->window_open(4, 0));  // one BDP in flight: closed
  EXPECT_TRUE(e->window_open(4, 1));   // ACK progress reopens it
  EXPECT_TRUE(e->reopen_window_on_ack());
  // Degenerate config still opens at least one packet.
  RecoveryCounters c2;
  const auto tiny = LossRecoveryEngine::make(selrep_config(1, 1024), &c2);
  EXPECT_TRUE(tiny->window_open(0, 0));
  EXPECT_FALSE(tiny->window_open(1, 0));
}

TEST(RecoveryEngine, SelrepTimeoutResendsOnlyExpiredUnsackedHoles) {
  RecoveryCounters c;
  const auto e = LossRecoveryEngine::make(selrep_config(8 * 1024, 1024), &c);
  FakeSender nic;
  for (std::uint64_t psn = 0; psn < 4; ++psn) {
    e->on_tx_segment(psn, false, microseconds(0));
  }
  e->on_ack(0, sack_of(0b10), microseconds(5));  // PSN 2 sacked; 0,1,3 outstanding
  c.retx = 0;
  nic.set_now(microseconds(1000));  // all holes older than any RTO
  EXPECT_TRUE(e->on_timeout(0, 4, nic));  // engine handled it: no NIC go_back
  EXPECT_EQ(nic.retransmits, (std::vector<std::uint64_t>{0, 1, 3}));
  EXPECT_EQ(c.retx, 3);
}

TEST(RecoveryEngine, SelrepTimeoutWithYoungHolesStillNudgesUna) {
  RecoveryCounters c;
  const auto e = LossRecoveryEngine::make(selrep_config(), &c);
  FakeSender nic;
  nic.set_now(microseconds(10));
  e->on_tx_segment(0, false, microseconds(9));  // 1us old: younger than RTO
  EXPECT_TRUE(e->on_timeout(0, 1, nic));
  // Nothing expired, but total ACK silence long enough to fire the timer
  // means the feedback path itself may be gone: resend una anyway.
  EXPECT_EQ(nic.retransmits, (std::vector<std::uint64_t>{0}));
}

TEST(RecoveryEngine, SelrepTimeoutBurstIsCappedPerFiring) {
  RecoveryCounters c;
  QpConfig cfg = selrep_config(64 * 1024, 1024);
  cfg.ack_every = 4;
  const auto e = LossRecoveryEngine::make(cfg, &c);
  FakeSender nic;
  for (std::uint64_t psn = 0; psn < 16; ++psn) {
    e->on_tx_segment(psn, false, microseconds(0));
  }
  nic.set_now(microseconds(1000));
  EXPECT_TRUE(e->on_timeout(0, 16, nic));
  // A wide loss episode drains ack_every holes per firing, not the window.
  EXPECT_EQ(nic.retransmits.size(), 4u);
}

// --- selective repeat: adaptive RTO (SRTT from ACK timestamps) ---------------

TEST(RecoveryEngine, SelrepRtoAdaptsFromAckTimestamps) {
  RecoveryCounters c;
  const Time configured = microseconds(400);
  const auto e = LossRecoveryEngine::make(selrep_config(4 * 1024, 1024, configured), &c);
  EXPECT_EQ(e->rto(configured), configured);  // no samples yet: configured
  // First sample: 10us RTT for PSN 0 (acked by msn=1).
  e->on_tx_segment(0, false, microseconds(0));
  e->on_ack(1, std::nullopt, microseconds(10));
  // RFC 6298 first sample: srtt=10, rttvar=5 -> srtt+4*rttvar=30us, which
  // the configured/8 floor (400/8 = 50us) catches.
  EXPECT_EQ(e->rto(configured), configured / 8);
  // More samples at 100us RTT pull SRTT up and the RTO off the floor.
  for (std::uint64_t psn = 1; psn <= 6; ++psn) {
    e->on_tx_segment(psn, false, microseconds(0));
    e->on_ack(psn + 1, std::nullopt, microseconds(100));
  }
  EXPECT_GT(e->rto(configured), configured / 8);
  EXPECT_LT(e->rto(configured), configured);
  // A huge sample drags it up but never past the configured ceiling.
  e->on_tx_segment(1, false, microseconds(20));
  e->on_ack(2, std::nullopt, microseconds(20) + milliseconds(50));
  EXPECT_EQ(e->rto(configured), configured);
}

TEST(RecoveryEngine, SelrepKarnsRuleSkipsRetransmittedSamples) {
  RecoveryCounters c;
  const Time configured = microseconds(400);
  const auto e = LossRecoveryEngine::make(selrep_config(4 * 1024, 1024, configured), &c);
  // PSN 0 is retransmitted: an ACK covering it is ambiguous (which copy?)
  // and must not move SRTT off the configured default.
  e->on_tx_segment(0, false, microseconds(0));
  e->on_tx_segment(0, true, microseconds(100));
  e->on_ack(1, std::nullopt, microseconds(105));
  EXPECT_EQ(e->rto(configured), configured);
  // The floor: an absurdly fast path cannot shrink the RTO below 1/8 of
  // the configured timeout (2*srtt and srtt+4*rttvar would both be ~2us).
  e->on_tx_segment(1, false, microseconds(200));
  e->on_ack(2, std::nullopt, microseconds(201));
  EXPECT_EQ(e->rto(configured), configured / 8);
}

// --- selective repeat: receiver-side OOO buffer ------------------------------

TEST(RecoveryEngine, SelrepOooBufferEnforcesBdpCap) {
  RecoveryCounters c;
  // 2-packet cap.
  const auto e = LossRecoveryEngine::make(selrep_config(2 * 1024, 1024), &c);
  RxSegment seg;
  seg.payload = 1024;
  EXPECT_TRUE(e->buffer_out_of_order(5, seg));
  EXPECT_TRUE(e->buffer_out_of_order(7, seg));
  EXPECT_FALSE(e->buffer_out_of_order(9, seg));  // past the cap: drop
  EXPECT_EQ(c.ooo_buffered, 2);
  EXPECT_TRUE(e->has_buffered());
  // Draining frees capacity again.
  RxSegment out;
  EXPECT_TRUE(e->pop_buffered(5, &out));
  EXPECT_TRUE(e->buffer_out_of_order(9, seg));
  EXPECT_EQ(c.ooo_buffered, 3);
}

TEST(RecoveryEngine, SelrepPopBufferedReturnsTheStoredSegment) {
  RecoveryCounters c;
  const auto e = LossRecoveryEngine::make(selrep_config(), &c);
  RxSegment seg;
  seg.payload = 777;
  seg.opcode = RoceOpcode::kSendLast;
  seg.msg_id = 42;
  seg.corrupt = false;
  ASSERT_TRUE(e->buffer_out_of_order(9, seg));
  RxSegment out;
  EXPECT_FALSE(e->pop_buffered(8, &out));  // the hole itself is not buffered
  ASSERT_TRUE(e->pop_buffered(9, &out));
  EXPECT_EQ(out.payload, 777);
  EXPECT_EQ(out.opcode, RoceOpcode::kSendLast);
  EXPECT_EQ(out.msg_id, 42u);
  EXPECT_FALSE(e->pop_buffered(9, &out));  // popped means gone
  EXPECT_FALSE(e->has_buffered());
}

TEST(RecoveryEngine, SelrepSackBitmapAdvertisesBufferedPsns) {
  RecoveryCounters c;
  const auto e = LossRecoveryEngine::make(selrep_config(64 * 1024, 1024), &c);
  RxSegment seg;
  ASSERT_TRUE(e->buffer_out_of_order(11, seg));
  ASSERT_TRUE(e->buffer_out_of_order(13, seg));
  ASSERT_TRUE(e->buffer_out_of_order(10 + 70, seg));  // beyond 64 bits: not advertised
  EXPECT_TRUE(e->acks_out_of_order());
  const auto bitmap = e->sack_bitmap(/*expected=*/10);
  ASSERT_TRUE(bitmap.has_value());
  // bit i => PSN expected+1+i: PSN 11 -> bit 0, PSN 13 -> bit 2.
  EXPECT_EQ(*bitmap, 0b101u);
  // Even with nothing buffered the mode still speaks SACK (presence marks
  // the mode on the wire); go-back engines return nullopt instead.
  e->reset();
  const auto empty = e->sack_bitmap(10);
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(*empty, 0u);
}

TEST(RecoveryEngine, ResetClearsAllSelrepState) {
  RecoveryCounters c;
  const auto e = LossRecoveryEngine::make(selrep_config(), &c);
  e->on_tx_segment(0, false, microseconds(0));
  e->on_ack(0, sack_of(0b1), microseconds(10));
  RxSegment seg;
  ASSERT_TRUE(e->buffer_out_of_order(5, seg));
  e->reset();
  EXPECT_FALSE(e->is_sacked(1));
  EXPECT_FALSE(e->has_buffered());
  EXPECT_EQ(e->rto(microseconds(400)), microseconds(400));  // SRTT forgotten
}

// --- SACK round trip through the wire codec (ICRC-covered) -------------------

TEST(RecoverySackCodec, ExtensionRoundTripsByteExact) {
  for (const std::uint64_t bitmap :
       {std::uint64_t{0}, std::uint64_t{0b101}, std::uint64_t{0x8000000000000001ULL},
        ~std::uint64_t{0}}) {
    Bytes out;
    encode_sack(RoceSackExt{bitmap}, out);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(kSackBytes));
    const auto decoded = decode_sack(out);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->bitmap, bitmap);
  }
  // Short input is rejected, not misread.
  Bytes short_in(static_cast<std::size_t>(kSackBytes) - 1, 0);
  EXPECT_FALSE(decode_sack(short_in).has_value());
}

Packet sample_ack_packet(std::optional<RoceSackExt> sack) {
  Packet pkt;
  pkt.kind = PacketKind::kRoceAck;
  pkt.priority = 3;
  Ipv4Header ip;
  ip.src = Ipv4Addr::from_octets(10, 0, 0, 2);
  ip.dst = Ipv4Addr::from_octets(10, 0, 0, 1);
  ip.ttl = 64;
  pkt.ip = ip;
  pkt.udp = UdpHeader{51234, kRoceUdpPort, 0};
  RoceBth bth;
  bth.opcode = RoceOpcode::kAcknowledge;
  bth.dest_qp = 0x17;
  bth.psn = 99;
  pkt.bth = bth;
  pkt.aeth = RoceAeth{AethSyndrome::kAck, 37};
  pkt.sack = sack;
  return pkt;
}

TEST(RecoverySackCodec, AckFrameCarriesSackInsideTheIcrc) {
  const Bytes frame =
      encode_roce_frame(sample_ack_packet(RoceSackExt{0xdeadbeef12345678ULL}),
                        PfcMode::kDscpBased);
  const auto d = decode_roce_frame(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->fcs_ok);
  EXPECT_TRUE(d->icrc_ok);
  ASSERT_TRUE(d->aeth.has_value());
  EXPECT_EQ(d->aeth->msn, 37u);
  ASSERT_TRUE(d->sack.has_value());
  EXPECT_EQ(d->sack->bitmap, 0xdeadbeef12345678ULL);
  // Without the extension the decoder reports no SACK (go-back ACKs).
  const auto plain = decode_roce_frame(encode_roce_frame(sample_ack_packet(std::nullopt),
                                                         PfcMode::kDscpBased));
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(plain->sack.has_value());
}

TEST(RecoverySackCodec, FlippedSackBitFailsTheIcrc) {
  Bytes frame = encode_roce_frame(sample_ack_packet(RoceSackExt{0}), PfcMode::kDscpBased);
  // The SACK extension sits right before the ICRC+FCS trailer.
  frame[frame.size() - 8 - 1] ^= 0x01;
  const auto d = decode_roce_frame(frame);
  if (d.has_value()) {
    EXPECT_FALSE(d->icrc_ok);  // a corrupted bitmap can never be trusted
  }
}

// --- the seam end to end: ICRC drops feed NAK episodes per mode --------------

TEST(RecoveryIntegration, SelrepRecoversThroughCorruptionWithoutTornData) {
  // Corruption that always escapes the FCS: the receiver's ICRC drops the
  // packet like a loss, the NAK (with SACK) triggers a single-hole resend,
  // and the message completes with zero corrupt completions.
  StarTopology topo(2);
  LinkImpairment imp;
  imp.corrupt_deliver_rate = 0.2;
  imp.escape_fcs_frac = 1.0;
  imp.seed = 7;
  topo.hosts[0]->port(0).set_impairment(imp);
  QpConfig qp = selrep_config(/*bdp_bytes=*/64 * 1024);
  qp.retx_timeout = microseconds(200);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  int completions = 0;
  demux.on_completion(qa, [&](const RdmaCompletion&) { ++completions; });
  topo.hosts[0]->rdma().post_send(qa, 64 * kKiB, 0);
  topo.sim().run_until(milliseconds(30));

  EXPECT_EQ(completions, 1);
  EXPECT_GT(topo.hosts[1]->rdma().stats().icrc_errors, 0);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().corrupt_completions, 0);
  // The selective-repeat machinery, not a go-back sweep, did the repair.
  EXPECT_GT(topo.hosts[0]->rdma().stats().selrep.retx, 0);
}

TEST(RecoveryIntegration, SelrepDeliversThroughPacketLossLossyFabric) {
  // A plain lossy link (no PFC involvement in the star anyway): FCS drops
  // create real holes; SACKs fill the window and everything completes.
  StarTopology topo(2);
  LinkImpairment imp;
  imp.fcs_drop_rate = 0.05;
  imp.seed = 11;
  topo.hosts[0]->port(0).set_impairment(imp);
  QpConfig qp = selrep_config(/*bdp_bytes=*/64 * 1024);
  qp.retx_timeout = microseconds(200);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  int completions = 0;
  demux.on_completion(qa, [&](const RdmaCompletion&) { ++completions; });
  for (int i = 0; i < 4; ++i) topo.hosts[0]->rdma().post_send(qa, 64 * kKiB, 0);
  topo.sim().run_until(milliseconds(40));

  EXPECT_EQ(completions, 4);
  const auto& tx = topo.hosts[0]->rdma().stats();
  const auto& rx = topo.hosts[1]->rdma().stats();
  EXPECT_GT(tx.selrep.sacked, 0);
  EXPECT_GT(rx.selrep.ooo_buffered, 0);
}

TEST(RecoveryIntegration, GoBack0StillCompletesOnCleanLinks) {
  // The restart-barrier regression guard on the seam: a clean fabric must
  // not trip the barrier into voiding legitimate feedback.
  StarTopology topo(2);
  QpConfig qp;
  qp.recovery = LossRecovery::kGoBack0;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  int completions = 0;
  demux.on_completion(qa, [&](const RdmaCompletion&) { ++completions; });
  for (int i = 0; i < 3; ++i) topo.hosts[0]->rdma().post_send(qa, 256 * kKiB, 0);
  topo.sim().run_until(milliseconds(10));
  EXPECT_EQ(completions, 3);
}

TEST(RecoveryIntegration, PortHealthSurfacesSelrepEvidenceWithPfcOff) {
  // With PFC off there are no pause counters for the incident plane to
  // subpoena; the NIC's own repair activity is the loss evidence. The
  // health rollup reads it through the same rdma/selrep/* registry lanes
  // any MetricSelection glob would.
  StarTopology topo(2);
  LinkImpairment imp;
  imp.fcs_drop_rate = 0.05;
  imp.seed = 11;
  topo.hosts[0]->port(0).set_impairment(imp);
  QpConfig qp = selrep_config(/*bdp_bytes=*/64 * 1024);
  qp.retx_timeout = microseconds(200);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 256 * kKiB, 0);
  topo.sim().run_until(milliseconds(20));

  bool sender_row = false, receiver_row = false;
  for (const PortHealth& h : collect_port_health(*topo.fabric)) {
    if (h.node == "h0" && h.port == 0) {
      sender_row = true;
      EXPECT_GT(h.selrep_retx, 0);  // sender-side: selective retransmissions
      EXPECT_FALSE(h.clean());      // the incident dump surfaces the row
    }
    if (h.node == "h1" && h.port == 0) {
      receiver_row = true;
      EXPECT_GT(h.selrep_ooo, 0);  // receiver-side: OOO buffering past holes
    }
  }
  EXPECT_TRUE(sender_row);
  EXPECT_TRUE(receiver_row);
  const std::string dump = port_health_dump(*topo.fabric);
  EXPECT_NE(dump.find("sel_retx"), std::string::npos) << dump;
  EXPECT_NE(dump.find("h0:0"), std::string::npos) << dump;
}

// --- PDES determinism: the bake-off's journal contract at shards {1,2} -------

struct BakeoffCounters {
  std::int64_t completed = 0;
  std::int64_t sacked = 0;
  std::int64_t retx = 0;
  std::int64_t ooo = 0;
  std::int64_t icrc = 0;
  std::uint64_t chaos = 0;
  bool operator==(const BakeoffCounters&) const = default;
};

BakeoffCounters run_mini_bakeoff(int shards) {
  // A compressed fig_irn_bakeoff case: selective repeat, PFC off, 0.4% loss
  // on a pod-0 ToR uplink of a 2-podset Clos. Every counter in the bake-off
  // journal must be identical at any shard count.
  QosPolicy policy;
  policy.max_cable_m = 20.0;
  policy.pfc_enabled = false;
  policy.recovery = LossRecovery::kSelectiveRepeat;
  policy.retx_timeout = microseconds(200);
  ClosParams params = make_clos_params(policy, DeploymentStage::kFull, /*podsets=*/2,
                                       /*leaves=*/2, /*tors=*/2, /*servers=*/2, /*spines=*/4);
  params.shards = shards;
  ClosFabric clos(params);

  QpConfig qp = make_qp_config(policy);
  qp.retry_limit = 0;
  struct Flow {
    Host* src;
    Host* dst;
    std::uint32_t qpn = 0;
    std::int64_t posted = 0;
    std::int64_t completed = 0;
  };
  std::vector<Flow> flows;
  for (int ps = 0; ps < 2; ++ps) {
    for (int i = 0; i < 2; ++i) {
      flows.push_back({&clos.server(ps, 0, i), &clos.server(ps, 1, i)});
      flows.push_back({&clos.server(ps, 1, i), &clos.server(ps, 0, i)});
    }
  }
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  for (const auto& h : clos.fabric().hosts()) demuxes.push_back(std::make_unique<RdmaDemux>(*h));
  auto demux_of = [&](Host& h) -> RdmaDemux& {
    for (std::size_t i = 0; i < clos.fabric().hosts().size(); ++i) {
      if (clos.fabric().hosts()[i].get() == &h) return *demuxes[i];
    }
    throw std::logic_error("unknown host");
  };
  for (Flow& f : flows) {
    auto [qa, qb] = connect_qp_pair(*f.src, *f.dst, qp);
    (void)qb;
    f.qpn = qa;
    demux_of(*f.src).on_completion(f.qpn, [&f](const RdmaCompletion&) { ++f.completed; });
  }
  std::function<void()> pump = [&] {
    for (Flow& f : flows) {
      if (f.src->rdma().qp_connected(f.qpn) && !f.src->rdma().qp_errored(f.qpn) &&
          f.posted - f.completed < 2) {
        f.src->rdma().post_send(f.qpn, 256 * kKiB, 0);
        ++f.posted;
      }
    }
    clos.fabric().control_sim().schedule_in(microseconds(16), pump);
  };
  clos.fabric().control_sim().schedule_in(microseconds(10), pump);

  ChaosEngine chaos(clos.fabric(), /*seed=*/2016);
  LinkImpairment imp;
  imp.fcs_drop_rate = 0.004;
  imp.seed = 31;
  chaos.impair_link(clos.tor(0, 0), params.servers_per_tor, imp, microseconds(100));
  clos.sim().run_until(milliseconds(4));

  BakeoffCounters out;
  for (const Flow& f : flows) out.completed += f.completed;
  out.sacked = clos.sim().metrics().sum("srv*/rdma/selrep/sacked");
  out.retx = clos.sim().metrics().sum("srv*/rdma/selrep/retx");
  out.ooo = clos.sim().metrics().sum("srv*/rdma/selrep/ooo_buffered");
  out.icrc = clos.sim().metrics().sum("srv*/rdma/icrc_errors");
  out.chaos = chaos.journal_hash();
  return out;
}

TEST(RecoveryDeterminism, MiniBakeoffCountersIdenticalAtShards1And2) {
  const BakeoffCounters one = run_mini_bakeoff(1);
  const BakeoffCounters two = run_mini_bakeoff(2);
  EXPECT_GT(one.completed, 0);
  EXPECT_GT(one.sacked, 0);  // the loss actually exercised selective repeat
  EXPECT_TRUE(one == two);
  // Same shard count, same seed: trivially identical too (rerun identity).
  const BakeoffCounters again = run_mini_bakeoff(1);
  EXPECT_TRUE(one == again);
}

}  // namespace
}  // namespace rocelab
