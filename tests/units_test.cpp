#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/switch/config.h"

namespace rocelab {
namespace {

TEST(Units, TimeConstructors) {
  EXPECT_EQ(nanoseconds(1), 1000);
  EXPECT_EQ(microseconds(1), 1000 * 1000);
  EXPECT_EQ(milliseconds(1), 1000LL * 1000 * 1000);
  EXPECT_EQ(seconds(1), 1000LL * 1000 * 1000 * 1000);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(microseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(250)), 0.25);
  EXPECT_DOUBLE_EQ(to_nanoseconds(picoseconds(1500)), 1.5);
}

TEST(Units, SerializationTimeAt40G) {
  // 40Gb/s = 5 bytes/ns = 1 byte per 200ps.
  EXPECT_EQ(serialization_time(1, gbps(40)), 200);
  EXPECT_EQ(serialization_time(1086, gbps(40)), 1086 * 200);
}

TEST(Units, SerializationTimeAt100GAndOddRates) {
  EXPECT_EQ(serialization_time(1000, gbps(100)), 80 * 1000);
  // 7 Gb/s: 1000 bytes = 8000 bits / 7e9 = 1142857ps (floor).
  EXPECT_EQ(serialization_time(1000, gbps(7)), 8000LL * kSecond / gbps(7) / 1);
}

TEST(Units, SerializationTimeLargeNoOverflow) {
  // 1 TiB at 40G: ~3.8 hours; must not overflow int64 picoseconds.
  const Time t = serialization_time(1LL << 40, gbps(40));
  EXPECT_GT(t, 0);
  EXPECT_EQ(t, (1LL << 40) * 200);
}

TEST(Units, PropagationDelay) {
  EXPECT_EQ(propagation_delay_for_meters(1), nanoseconds(5));
  EXPECT_EQ(propagation_delay_for_meters(300), nanoseconds(1500));
  EXPECT_EQ(propagation_delay_for_meters(0), 0);
}

TEST(Units, BytesInTime) {
  EXPECT_EQ(bytes_in_time(microseconds(1), gbps(40)), 5000);
  EXPECT_EQ(bytes_in_time(picoseconds(200), gbps(40)), 1);
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(microseconds(5)), "5us");
  EXPECT_EQ(format_time(milliseconds(12)), "12ms");
  EXPECT_EQ(format_time(seconds(2)), "2s");
  EXPECT_EQ(format_time(nanoseconds(3)), "3ns");
}

TEST(Units, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(40e9), "40Gb/s");
  EXPECT_EQ(format_bandwidth(3.0e12), "3Tb/s");
  EXPECT_EQ(format_bandwidth(350e6), "350Mb/s");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(12 * kMiB), "12MiB");
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(9 * kKiB / 2), "4.5KiB");
}

TEST(Headroom, GrowsWithDistance) {
  const auto h2 = recommended_headroom(gbps(40), propagation_delay_for_meters(2), 1086);
  const auto h300 = recommended_headroom(gbps(40), propagation_delay_for_meters(300), 1086);
  EXPECT_GT(h300, h2);
  // 2 x 300m propagation alone is 3us = 15KB at 40G.
  EXPECT_GE(h300, 15000);
}

TEST(Headroom, GrowsWithBandwidthAndMtu) {
  const Time prop = propagation_delay_for_meters(100);
  EXPECT_GT(recommended_headroom(gbps(100), prop, 1086),
            recommended_headroom(gbps(40), prop, 1086));
  EXPECT_GT(recommended_headroom(gbps(40), prop, 9216),
            recommended_headroom(gbps(40), prop, 1086));
}

class SerializationRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SerializationRoundTrip, TimeMatchesBytes) {
  const std::int64_t bytes = GetParam();
  for (Bandwidth bw : {gbps(10), gbps(25), gbps(40), gbps(50), gbps(100)}) {
    const Time t = serialization_time(bytes, bw);
    // bytes_in_time inverts serialization_time to within one byte.
    EXPECT_NEAR(static_cast<double>(bytes_in_time(t, bw)), static_cast<double>(bytes), 1.0)
        << "bw=" << bw << " bytes=" << bytes;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerializationRoundTrip,
                         ::testing::Values(64, 512, 1086, 1500, 9216, 65536, 4 * kMiB));

}  // namespace
}  // namespace rocelab
