// DCQCN reaction point state machine and end-to-end NP behaviour.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/nic/dcqcn.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

TEST(DcqcnRp, StartsAtLineRate) {
  Simulator sim;
  DcqcnRp rp(sim, DcqcnConfig{}, gbps(40));
  EXPECT_EQ(rp.rate(), gbps(40));
  EXPECT_FALSE(rp.in_recovery());
}

TEST(DcqcnRp, FirstCnpHalvesRate) {
  Simulator sim;
  DcqcnRp rp(sim, DcqcnConfig{}, gbps(40));
  rp.on_cnp();
  // alpha starts at 1: Rc *= (1 - 1/2).
  EXPECT_EQ(rp.rate(), gbps(40) / 2);
  EXPECT_TRUE(rp.in_recovery());
}

TEST(DcqcnRp, RepeatedCnpsFloorAtMinRate) {
  Simulator sim;
  DcqcnConfig cfg;
  DcqcnRp rp(sim, cfg, gbps(40));
  for (int i = 0; i < 100; ++i) rp.on_cnp();
  EXPECT_EQ(rp.rate(), cfg.min_rate);
}

TEST(DcqcnRp, AlphaUpdatesOnCnpAndDecaysWithout) {
  Simulator sim;
  DcqcnConfig cfg;
  DcqcnRp rp(sim, cfg, gbps(40));
  rp.on_cnp();
  const double a0 = rp.alpha();
  EXPECT_NEAR(a0, 1.0, 1e-9);  // (1-g)*1 + g == 1
  // Without further CNPs the alpha timer decays it.
  sim.run_until(cfg.alpha_timer * 20);
  EXPECT_LT(rp.alpha(), a0);
}

TEST(DcqcnRp, FastRecoveryConvergesTowardTarget) {
  Simulator sim;
  DcqcnConfig cfg;
  DcqcnRp rp(sim, cfg, gbps(40));
  rp.on_cnp();  // Rt=40G, Rc=20G
  const Bandwidth rc0 = rp.rate();
  // Each increase-timer event in fast recovery: Rc = (Rt + Rc) / 2.
  sim.run_until(cfg.increase_timer + microseconds(1));
  EXPECT_GT(rp.rate(), rc0);
  sim.run_until(5 * cfg.increase_timer + microseconds(1));
  EXPECT_GT(rp.rate(), gbps(38));  // ~Rt after 5 halvings
}

TEST(DcqcnRp, FullRecoveryDisarmsTimers) {
  Simulator sim;
  DcqcnConfig cfg;
  DcqcnRp rp(sim, cfg, gbps(40));
  rp.on_cnp();
  sim.run_until(seconds(1));
  EXPECT_EQ(rp.rate(), gbps(40));
  EXPECT_FALSE(rp.in_recovery());
  EXPECT_EQ(sim.pending_events(), 0u);  // no timer churn while idle
}

TEST(DcqcnRp, ByteCounterDrivesIncreaseWhenSendingFast) {
  Simulator sim;
  DcqcnConfig cfg;
  cfg.increase_timer = seconds(10);  // neutralize the timer path
  DcqcnRp rp(sim, cfg, gbps(40));
  rp.on_cnp();
  const Bandwidth rc0 = rp.rate();
  rp.on_bytes_sent(cfg.byte_counter);  // one full byte-counter epoch
  EXPECT_GT(rp.rate(), rc0);
}

TEST(DcqcnRp, HyperIncreaseAfterBothStagesPassF) {
  Simulator sim;
  DcqcnConfig cfg;
  cfg.rai = mbps(40);
  cfg.rhai = mbps(400);
  DcqcnRp rp(sim, cfg, gbps(40));
  for (int i = 0; i < 50; ++i) rp.on_cnp();  // floor the rate
  // Drive both the timer stage and the byte stage past F.
  for (int i = 0; i < cfg.fast_recovery_steps + 3; ++i) rp.on_bytes_sent(cfg.byte_counter);
  const Bandwidth before = rp.rate();
  sim.run_until((cfg.fast_recovery_steps + 3) * cfg.increase_timer);
  EXPECT_GT(rp.rate(), before);
}

TEST(DcqcnRp, DisabledConfigIgnoresCnps) {
  Simulator sim;
  DcqcnConfig cfg;
  cfg.enabled = false;
  DcqcnRp rp(sim, cfg, gbps(40));
  rp.on_cnp();
  EXPECT_EQ(rp.rate(), gbps(40));
  EXPECT_EQ(rp.cnps_received(), 1);  // still counted
}

// --- end-to-end NP/RP behaviour ---------------------------------------------

TEST(DcqcnEndToEnd, IncastGeneratesCnpsAndCutsRates) {
  SwitchConfig cfg = testing::basic_switch_config();
  cfg.ecn[3] = EcnConfig{true, 20 * kKiB, 100 * kKiB, 0.05};
  StarTopology topo(4, cfg);
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  std::vector<std::unique_ptr<RdmaStreamSource>> sources;
  std::vector<std::uint32_t> qpns;
  for (int i = 0; i < 3; ++i) {
    auto [qa, qb] = connect_qp_pair(*topo.hosts[static_cast<std::size_t>(i)], *topo.hosts[3],
                                    QpConfig{});
    (void)qb;
    qpns.push_back(qa);
    demuxes.push_back(std::make_unique<RdmaDemux>(*topo.hosts[static_cast<std::size_t>(i)]));
    sources.push_back(std::make_unique<RdmaStreamSource>(
        *topo.hosts[static_cast<std::size_t>(i)], *demuxes.back(), qa,
        RdmaStreamSource::Options{.message_bytes = 256 * kKiB, .max_outstanding = 2}));
    sources.back()->start();
  }
  topo.sim().run_until(milliseconds(5));
  std::int64_t cnps = 0;
  for (int i = 0; i < 3; ++i) {
    cnps += topo.hosts[static_cast<std::size_t>(i)]->rdma().stats().cnps_received;
    EXPECT_LT(topo.hosts[static_cast<std::size_t>(i)]->rdma().qp_rate(qpns[static_cast<std::size_t>(i)]),
              gbps(40));
  }
  EXPECT_GT(cnps, 0);
  EXPECT_EQ(topo.hosts[3]->rdma().stats().cnps_sent, cnps);
}

TEST(DcqcnEndToEnd, CnpRateLimitedPerInterval) {
  SwitchConfig cfg = testing::basic_switch_config();
  cfg.ecn[3] = EcnConfig{true, 1 * kKiB, 2 * kKiB, 1.0};  // mark everything
  StarTopology topo(3, cfg);
  QpConfig qp;  // DCQCN on
  auto [q1, q1b] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], qp);
  auto [q2, q2b] = connect_qp_pair(*topo.hosts[1], *topo.hosts[2], qp);
  (void)q1b; (void)q2b;
  topo.hosts[0]->rdma().post_send(q1, 512 * kKiB, 1);
  topo.hosts[1]->rdma().post_send(q2, 512 * kKiB, 2);
  const Time window = milliseconds(4);
  topo.sim().run_until(window);
  // Even with 100% marking, NP sends at most one CNP per QP per 50us.
  const std::int64_t max_cnps = 2 * (window / DcqcnConfig{}.cnp_interval + 1);
  EXPECT_LE(topo.hosts[2]->rdma().stats().cnps_sent, max_cnps);
}

TEST(DcqcnEndToEnd, FairnessAcrossCompetingFlows) {
  SwitchConfig cfg = testing::basic_switch_config();
  StarTopology topo(5, cfg);
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  std::vector<std::unique_ptr<RdmaStreamSource>> sources;
  for (int i = 0; i < 4; ++i) {
    auto [qa, qb] = connect_qp_pair(*topo.hosts[static_cast<std::size_t>(i)], *topo.hosts[4],
                                    QpConfig{});
    (void)qb;
    demuxes.push_back(std::make_unique<RdmaDemux>(*topo.hosts[static_cast<std::size_t>(i)]));
    sources.push_back(std::make_unique<RdmaStreamSource>(
        *topo.hosts[static_cast<std::size_t>(i)], *demuxes.back(), qa,
        RdmaStreamSource::Options{.message_bytes = 128 * kKiB, .max_outstanding = 2}));
    sources.back()->start();
  }
  topo.sim().run_until(milliseconds(30));
  double sum = 0, sum_sq = 0;
  for (auto& s : sources) {
    sum += s->goodput_bps();
    sum_sq += s->goodput_bps() * s->goodput_bps();
  }
  const double jain = sum * sum / (4 * sum_sq);
  EXPECT_GT(jain, 0.85);
  EXPECT_GT(sum, 25e9);  // bottleneck mostly utilized
}

}  // namespace
}  // namespace rocelab
