// Tests for the operational services: pcap capture, the RDMA connection
// manager, receive-WQE/RNR semantics, and the periodic sampler.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/app/demux.h"
#include "src/app/rdma_cm.h"
#include "src/app/traffic.h"
#include "src/monitor/monitor.h"
#include "src/monitor/pcap.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

struct TempFile {
  std::string path;
  explicit TempFile(const char* name) : path(std::string("/tmp/rocelab_") + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Pcap, WritesValidHeaderAndFrames) {
  TempFile f("pcap_basic.pcap");
  {
    PcapWriter w(f.path);
    std::vector<std::uint8_t> frame(64, 0xaa);
    w.write_frame(microseconds(5), frame);
    w.write_frame(milliseconds(2), frame);
    EXPECT_EQ(w.frames_written(), 2);
  }
  std::ifstream in(f.path, std::ios::binary);
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), 24u + 2 * (16 + 64));
  // Little-endian magic 0xa1b2c3d4.
  EXPECT_EQ(bytes[0], 0xd4);
  EXPECT_EQ(bytes[1], 0xc3);
  EXPECT_EQ(bytes[2], 0xb2);
  EXPECT_EQ(bytes[3], 0xa1);
  // LINKTYPE_ETHERNET at offset 20.
  EXPECT_EQ(bytes[20], 1);
  // Second record's ts_usec (offset 24+16+64+4) = 2000us -> 2000.
  const std::size_t rec2 = 24 + 16 + 64;
  const std::uint32_t usec = bytes[rec2 + 4] | (bytes[rec2 + 5] << 8) |
                             (bytes[rec2 + 6] << 16) |
                             (static_cast<std::uint32_t>(bytes[rec2 + 7]) << 24);
  EXPECT_EQ(usec, 2000u);
}

TEST(Pcap, CapturesRoceTrafficDecodably) {
  StarTopology topo(2);
  TempFile f("pcap_roce.pcap");
  PortTap tap(*topo.hosts[1], f.path);
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 4096, 1);
  topo.sim().run_until(milliseconds(1));
  EXPECT_GE(tap.frames_captured(), 4);  // 4 data segments at least
  tap.flush();

  // Re-read the file and decode the first data frame with our own codec.
  std::ifstream in(f.path, std::ios::binary);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 24u + 16u);
  const std::uint32_t len = bytes[24 + 8] | (bytes[24 + 9] << 8) | (bytes[24 + 10] << 16) |
                            (static_cast<std::uint32_t>(bytes[24 + 11]) << 24);
  ASSERT_EQ(len, 1086u);  // full-MTU RoCE frame
  const auto decoded =
      decode_roce_frame(std::span<const std::uint8_t>(bytes.data() + 24 + 16, len));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->fcs_ok);
  EXPECT_EQ(decoded->ip.src, topo.hosts[0]->ip());
  EXPECT_EQ(decoded->payload_bytes, 1024u);
}

TEST(Pcap, CapturesPauseFrames) {
  StarTopology topo(2);
  TempFile f("pcap_pause.pcap");
  PortTap tap(topo.sw(), f.path);
  topo.hosts[1]->set_storm_mode(true);
  topo.sim().run_until(milliseconds(2));
  EXPECT_GT(tap.frames_captured(), 2);
}

TEST(RdmaCm, EstablishesQpPairAndPassesTraffic) {
  StarTopology topo(2);
  RdmaCm cm_client(*topo.hosts[0]);
  RdmaCm cm_server(*topo.hosts[1]);

  QpConfig qp;
  qp.dcqcn = false;
  std::uint32_t server_qpn = 0;
  cm_server.listen(/*service=*/42, qp, [&](std::uint32_t qpn) { server_qpn = qpn; });

  std::uint32_t client_qpn = 0;
  cm_client.connect(topo.hosts[1]->ip(), 42, qp,
                    [&](std::uint32_t qpn) { client_qpn = qpn; });
  topo.sim().run_until(milliseconds(2));
  ASSERT_NE(client_qpn, 0u);
  ASSERT_NE(server_qpn, 0u);

  // The established QP pair carries real traffic both ways.
  RdmaDemux ds(*topo.hosts[1]);
  std::int64_t got = 0;
  ds.on_recv(server_qpn, [&](const RdmaRecv& r) { got = r.bytes; });
  topo.hosts[0]->rdma().post_send(client_qpn, 8 * 1024, 7);
  topo.sim().run_until(milliseconds(4));
  EXPECT_EQ(got, 8 * 1024);
}

TEST(RdmaCm, UnknownServiceIgnored) {
  StarTopology topo(2);
  RdmaCm cm_client(*topo.hosts[0]);
  RdmaCm cm_server(*topo.hosts[1]);
  bool connected = false;
  cm_client.connect(topo.hosts[1]->ip(), /*service=*/99, QpConfig{},
                    [&](std::uint32_t) { connected = true; }, milliseconds(1));
  topo.sim().run_until(milliseconds(10));
  EXPECT_FALSE(connected);
  // Kept retrying, with exponential backoff: REQs at 0, 1, 3, 7 ms.
  EXPECT_EQ(cm_client.requests_sent(), 4);
  EXPECT_EQ(cm_server.connections_accepted(), 0);
}

TEST(RdmaCm, RetriesThroughRequestLoss) {
  StarTopology topo(2);
  // Drop the first 3 CM datagrams (they are lossy-class raw traffic).
  int dropped = 0;
  topo.sw().set_drop_filter([&dropped](const Packet& p) {
    if (p.kind == PacketKind::kRaw && p.udp && p.udp->dst_port == RdmaCm::kCmUdpPort &&
        dropped < 3) {
      ++dropped;
      return true;
    }
    return false;
  });
  RdmaCm cm_client(*topo.hosts[0]);
  RdmaCm cm_server(*topo.hosts[1]);
  cm_server.listen(7, QpConfig{}, nullptr);
  std::uint32_t client_qpn = 0;
  cm_client.connect(topo.hosts[1]->ip(), 7, QpConfig{},
                    [&](std::uint32_t qpn) { client_qpn = qpn; }, microseconds(200));
  topo.sim().run_until(milliseconds(10));
  EXPECT_NE(client_qpn, 0u);
  EXPECT_EQ(dropped, 3);
  // Retried REQs did not create duplicate server QPs.
  EXPECT_EQ(cm_server.connections_accepted(), 1);
}

TEST(Rnr, SendWithoutRecvWqeDrawsRnrNakAndRetrySucceeds) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  qp.require_recv_wqes = true;
  qp.rnr_delay = microseconds(50);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);

  std::int64_t got = 0;
  RdmaDemux ds(*topo.hosts[1]);
  ds.on_recv(qb, [&](const RdmaRecv& r) { got = r.bytes; });

  topo.hosts[0]->rdma().post_send(qa, 4096, 1);
  topo.sim().run_until(microseconds(200));
  EXPECT_EQ(got, 0);  // no receive buffer: message held off
  EXPECT_GT(topo.hosts[1]->rdma().stats().rnr_naks_sent, 0);

  topo.hosts[1]->rdma().post_recv(qb, 1);
  topo.sim().run_until(milliseconds(5));
  EXPECT_EQ(got, 4096);  // sender retried after the back-off
  EXPECT_EQ(topo.hosts[0]->rdma().stats().rnr_naks_received,
            topo.hosts[1]->rdma().stats().rnr_naks_sent);
}

TEST(Rnr, CreditsConsumedPerSendMessage) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  qp.require_recv_wqes = true;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  topo.hosts[1]->rdma().post_recv(qb, 2);
  for (std::uint64_t m = 0; m < 3; ++m) topo.hosts[0]->rdma().post_send(qa, 2048, m);
  topo.sim().run_until(milliseconds(1));
  // Two delivered, the third waits for credit.
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 2);
  EXPECT_EQ(topo.hosts[1]->rdma().recv_credits(qb), 0);
  topo.hosts[1]->rdma().post_recv(qb, 1);
  topo.sim().run_until(milliseconds(5));
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 3);
}

TEST(Rnr, WritesDoNotConsumeRecvWqes) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  qp.require_recv_wqes = true;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  // RDMA WRITE targets registered memory directly: no receive WQE needed.
  topo.hosts[0]->rdma().post_write(qa, 8192, 1);
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 1);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().rnr_naks_sent, 0);
}

TEST(PeriodicSampler, CollectsSeriesAndPercentiles) {
  StarTopology topo(2);
  double value = 0;
  PeriodicSampler sampler(topo.sim(), [&] { return value; }, microseconds(100));
  sampler.start();
  topo.sim().schedule_at(microseconds(450), [&] { value = 10; });
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(sampler.series().size(), 10u);
  EXPECT_DOUBLE_EQ(sampler.max_seen(), 10.0);
  // First 4 samples saw 0, the rest saw 10.
  EXPECT_DOUBLE_EQ(sampler.series()[3].second, 0.0);
  EXPECT_DOUBLE_EQ(sampler.series()[5].second, 10.0);
}

TEST(PeriodicSampler, TracksQueueDepthUnderIncast) {
  StarTopology topo(3);
  QpConfig qp;
  qp.dcqcn = false;
  auto [q1, q1b] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], qp);
  auto [q2, q2b] = connect_qp_pair(*topo.hosts[1], *topo.hosts[2], qp);
  (void)q1b; (void)q2b;
  PeriodicSampler depth(topo.sim(),
                        [&] { return static_cast<double>(topo.sw().port(2).queued_bytes(3)); },
                        microseconds(10));
  depth.start();
  topo.hosts[0]->rdma().post_send(q1, 256 * kKiB, 1);
  topo.hosts[1]->rdma().post_send(q2, 256 * kKiB, 2);
  topo.sim().run_until(milliseconds(2));
  EXPECT_GT(depth.max_seen(), 50e3);  // the incast built a real queue
  EXPECT_GT(depth.samples().count(), 100u);
}

}  // namespace
}  // namespace rocelab
