// EgressPort: PFC pause state machine, scheduling (strict + DWRR), control
// bypass, flush, and counters.
#include <gtest/gtest.h>

#include "src/link/node.h"
#include "src/sim/simulator.h"

namespace rocelab {
namespace {

/// Sink node that records everything it receives.
class SinkNode : public Node {
 public:
  SinkNode(Simulator& sim, std::string name) : Node(sim, std::move(name)) { add_port(); }
  std::vector<Packet> received;

 protected:
  void handle_packet(PooledPacket pp, int in_port) override {
    (void)in_port;
    received.push_back(std::move(*pp));
  }
};

class SourceNode : public Node {
 public:
  SourceNode(Simulator& sim, std::string name) : Node(sim, std::move(name)) { add_port(); }

 protected:
  void handle_packet(PooledPacket, int) override {}
};

Packet data_packet(int priority, std::int64_t bytes = 1086) {
  Packet pkt;
  pkt.kind = PacketKind::kRaw;
  pkt.frame_bytes = bytes;
  pkt.priority = priority;
  pkt.eth.dst = MacAddr::broadcast();
  return pkt;
}

struct PortFixture : ::testing::Test {
  Simulator sim;
  SourceNode src{sim, "src"};
  SinkNode dst{sim, "dst"};

  PortFixture() { connect_nodes(src, 0, dst, 0, gbps(40), nanoseconds(10)); }
};

TEST_F(PortFixture, DeliversPacketWithSerializationAndPropagation) {
  src.port(0).enqueue(data_packet(0, 1086));
  sim.run();
  ASSERT_EQ(dst.received.size(), 1u);
  // (1086 + 20 wire overhead) bytes * 200ps + 10ns propagation.
  EXPECT_EQ(sim.now(), (1086 + 20) * 200 + nanoseconds(10));
}

TEST_F(PortFixture, BackToBackPacketsSerialize) {
  src.port(0).enqueue(data_packet(0));
  src.port(0).enqueue(data_packet(0));
  sim.run();
  EXPECT_EQ(dst.received.size(), 2u);
  EXPECT_EQ(sim.now(), 2 * (1086 + 20) * 200 + nanoseconds(10));
}

TEST_F(PortFixture, PauseBlocksOnlyThatPriority) {
  src.port(0).receive_pause(3, 0xffff);
  src.port(0).enqueue(data_packet(3));
  src.port(0).enqueue(data_packet(1));
  sim.run_until(microseconds(10));
  ASSERT_EQ(dst.received.size(), 1u);
  EXPECT_EQ(dst.received[0].priority, 1);
  EXPECT_TRUE(src.port(0).paused(3));
  EXPECT_EQ(src.port(0).queued_bytes(3), 1086);
}

TEST_F(PortFixture, PauseExpiresAfterQuanta) {
  src.port(0).receive_pause(3, 100);  // 100 quanta = 100 * 512 bit times
  src.port(0).enqueue(data_packet(3));
  const Time quantum = src.port(0).quantum_time();
  sim.run();
  EXPECT_EQ(dst.received.size(), 1u);
  EXPECT_GE(sim.now(), 100 * quantum);
}

TEST_F(PortFixture, XonResumesImmediately) {
  src.port(0).receive_pause(3, 0xffff);
  src.port(0).enqueue(data_packet(3));
  sim.schedule_at(microseconds(5), [&] { src.port(0).receive_pause(3, 0); });
  // Well before the 0xffff pause would expire on its own (~839us).
  sim.run_until(microseconds(10));
  EXPECT_EQ(dst.received.size(), 1u);
}

TEST_F(PortFixture, PausedTimeAccounted) {
  src.port(0).receive_pause(3, 0xffff);
  sim.schedule_at(microseconds(50), [&] { src.port(0).receive_pause(3, 0); });
  sim.run();
  EXPECT_EQ(src.port(0).counters().paused_time[3], microseconds(50));
}

TEST_F(PortFixture, ControlFramesBypassPausedData) {
  for (int p = 0; p < kNumPriorities; ++p) src.port(0).receive_pause(p, 0xffff);
  src.port(0).enqueue(data_packet(3));
  src.send_pause(0, 5, 7);  // control frame out the paused port
  sim.run_until(microseconds(2));
  // The pause frame got through; the data did not.
  EXPECT_EQ(dst.port(0).counters().rx_pause[5], 1);
  EXPECT_EQ(dst.received.size(), 0u);
}

TEST_F(PortFixture, FullyBlockedSemantics) {
  EXPECT_FALSE(src.port(0).fully_blocked());  // nothing queued
  src.port(0).receive_pause(3, 0xffff);
  src.port(0).enqueue(data_packet(0, 9216));  // keeps the port busy a while
  src.port(0).enqueue(data_packet(3));
  EXPECT_TRUE(src.port(0).fully_blocked());  // only the paused queue holds data
  src.port(0).enqueue(data_packet(1));  // unpaused priority queued behind busy port
  EXPECT_FALSE(src.port(0).fully_blocked());
}

TEST_F(PortFixture, StrictPriorityWinsOverDwrr) {
  // Pause everything, enqueue in "wrong" order, then release: the strict
  // queue must win.
  src.port(0).set_queue_config(6, EgressPort::QueueConfig{1, true});
  for (int p = 0; p < kNumPriorities; ++p) src.port(0).receive_pause(p, 0xffff);
  src.port(0).enqueue(data_packet(1));
  src.port(0).enqueue(data_packet(6));
  // Release highest first so both queues are sendable when transmission
  // resumes (XON itself kicks the transmitter).
  for (int p = kNumPriorities - 1; p >= 0; --p) src.port(0).receive_pause(p, 0);
  sim.run();
  ASSERT_EQ(dst.received.size(), 2u);
  EXPECT_EQ(dst.received[0].priority, 6);
}

TEST_F(PortFixture, DwrrWeightsShareBandwidth) {
  src.port(0).set_queue_config(1, EgressPort::QueueConfig{1, false});
  src.port(0).set_queue_config(3, EgressPort::QueueConfig{3, false});
  for (int i = 0; i < 400; ++i) {
    src.port(0).enqueue(data_packet(1, 1000));
    src.port(0).enqueue(data_packet(3, 1000));
  }
  // Run for a fixed window, then compare delivered shares.
  sim.run_until(microseconds(60));
  std::int64_t p1 = 0, p3 = 0;
  for (const auto& pkt : dst.received) {
    if (pkt.priority == 1) ++p1;
    if (pkt.priority == 3) ++p3;
  }
  ASSERT_GT(p1, 0);
  const double ratio = static_cast<double>(p3) / static_cast<double>(p1);
  EXPECT_NEAR(ratio, 3.0, 0.6);
}

TEST_F(PortFixture, FlushPriorityDropsAndCounts) {
  src.port(0).receive_pause(2, 0xffff);
  src.port(0).enqueue(data_packet(2));
  src.port(0).enqueue(data_packet(2));
  sim.run_until(microseconds(1));
  int dequeue_calls = 0;
  src.port(0).on_dequeue = [&](const Packet&, int) { ++dequeue_calls; };
  EXPECT_EQ(src.port(0).flush_priority(2), 2u);
  EXPECT_EQ(src.port(0).queued_bytes(2), 0);
  EXPECT_EQ(dequeue_calls, 2);
  EXPECT_EQ(src.port(0).counters().egress_drops, 2);
}

TEST_F(PortFixture, TxCountersPerPriority) {
  src.port(0).enqueue(data_packet(5, 500));
  sim.run();
  EXPECT_EQ(src.port(0).counters().tx_packets[5], 1);
  EXPECT_EQ(src.port(0).counters().tx_bytes[5], 500);
  EXPECT_EQ(dst.port(0).counters().rx_packets[5], 1);
  EXPECT_EQ(dst.port(0).counters().rx_bytes[5], 500);
}

TEST_F(PortFixture, PauseCountersBothSides) {
  src.send_pause(0, 3, 0xffff);
  sim.run_until(microseconds(1));  // delivered, not yet expired
  EXPECT_EQ(src.port(0).counters().tx_pause[3], 1);
  EXPECT_EQ(dst.port(0).counters().rx_pause[3], 1);
  // And the pause applied to the receiver's egress side of that port.
  EXPECT_TRUE(dst.port(0).paused(3));
}

TEST_F(PortFixture, PauseTxSuppressedByWatchdogFlag) {
  src.set_allow_pause_tx(false);
  src.send_pause(0, 3, 0xffff);
  sim.run();
  EXPECT_EQ(dst.port(0).counters().rx_pause[3], 0);
}

TEST_F(PortFixture, OnDrainFires) {
  int drains = 0;
  src.port(0).on_drain = [&] { ++drains; };
  src.port(0).enqueue(data_packet(0));
  src.port(0).enqueue(data_packet(0));
  sim.run();
  EXPECT_EQ(drains, 2);
}

TEST(NodeMac, UniquePerNodeAndPort) {
  Simulator sim;
  SourceNode a(sim, "a"), b(sim, "b");
  EXPECT_NE(a.port_mac(0), b.port_mac(0));
  SinkNode c(sim, "c");
  EXPECT_NE(c.port_mac(0), a.port_mac(0));
}

TEST(NodeMac, PeerMacVisibleAfterWiring) {
  Simulator sim;
  SourceNode a(sim, "a");
  SinkNode b(sim, "b");
  connect_nodes(a, 0, b, 0, gbps(40), 0);
  EXPECT_EQ(a.port(0).peer_mac(), b.port_mac(0));
  EXPECT_EQ(b.port(0).peer_mac(), a.port_mac(0));
}

}  // namespace
}  // namespace rocelab
