// Shared helpers for building small test topologies.
#pragma once

#include <memory>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/topo/fabric.h"

namespace rocelab::testing {

/// A switch config with one lossless RDMA class (priority 3), ECN enabled,
/// and sane buffer defaults for 40GbE short links.
inline SwitchConfig basic_switch_config() {
  SwitchConfig cfg;
  cfg.lossless[3] = true;
  cfg.mmu.total_buffer = 12 * kMiB;
  cfg.mmu.headroom_per_pg = recommended_headroom(gbps(40), propagation_delay_for_meters(20), 1086);
  cfg.ecn[3] = EcnConfig{true, 50 * kKiB, 400 * kKiB, 0.01};
  return cfg;
}

inline HostConfig basic_host_config() {
  HostConfig cfg;
  cfg.lossless.fill(false);
  cfg.lossless[3] = true;
  return cfg;
}

/// N hosts hanging off one switch ("star"), IPs 10.0.0.1..N, subnet
/// 10.0.0.0/24.
struct StarTopology {
  std::unique_ptr<Fabric> fabric = std::make_unique<Fabric>();
  std::vector<Host*> hosts;

  explicit StarTopology(int n, SwitchConfig sw_cfg = basic_switch_config(),
                        HostConfig host_cfg = basic_host_config(),
                        Bandwidth bw = gbps(40)) {
    auto& sw = fabric->add_switch("sw", sw_cfg, n);
    sw.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24});
    for (int i = 0; i < n; ++i) {
      auto& h = fabric->add_host("h" + std::to_string(i), host_cfg);
      h.set_ip(Ipv4Addr::from_octets(10, 0, 0, static_cast<std::uint8_t>(i + 1)));
      fabric->attach_host(h, sw, i, bw, propagation_delay_for_meters(2));
      hosts.push_back(&h);
    }
  }

  Simulator& sim() { return fabric->sim(); }
  Switch& sw() { return *fabric->switch_ptrs()[0]; }
};

}  // namespace rocelab::testing
