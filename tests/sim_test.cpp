#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace rocelab {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(nanoseconds(30), [&] { order.push_back(3); });
  sim.schedule_at(nanoseconds(10), [&] { order.push_back(1); });
  sim.schedule_at(nanoseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), nanoseconds(30));
}

TEST(Simulator, TiesExecuteInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(nanoseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Time fired_at = -1;
  sim.schedule_at(microseconds(1), [&] {
    sim.schedule_in(microseconds(2), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, microseconds(3));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(microseconds(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(microseconds(5), [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(nanoseconds(10), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIdIsNoOp) {
  Simulator sim;
  sim.cancel(12345);
  sim.cancel(kInvalidEventId);
  bool fired = false;
  sim.schedule_at(1, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelFromWithinEvent) {
  Simulator sim;
  bool fired = false;
  const EventId victim = sim.schedule_at(nanoseconds(20), [&] { fired = true; });
  sim.schedule_at(nanoseconds(10), [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(microseconds(i), [&] { ++count; });
  }
  sim.run_until(microseconds(5));
  EXPECT_EQ(count, 5);  // events at exactly the deadline still execute
  EXPECT_EQ(sim.now(), microseconds(5));
  sim.run_until(microseconds(20));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.now(), microseconds(20));  // clock advances to deadline
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(milliseconds(7));
  EXPECT_EQ(sim.now(), milliseconds(7));
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.run();  // resumes
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(nanoseconds(1), recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.executed_events(), 100u);
}

TEST(Simulator, PendingEventsAccountsForCancellations) {
  Simulator sim;
  const EventId a = sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace rocelab
