#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"

namespace rocelab {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(nanoseconds(30), [&] { order.push_back(3); });
  sim.schedule_at(nanoseconds(10), [&] { order.push_back(1); });
  sim.schedule_at(nanoseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), nanoseconds(30));
}

TEST(Simulator, TiesExecuteInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(nanoseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Time fired_at = -1;
  sim.schedule_at(microseconds(1), [&] {
    sim.schedule_in(microseconds(2), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, microseconds(3));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(microseconds(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(microseconds(5), [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(nanoseconds(10), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIdIsNoOp) {
  Simulator sim;
  sim.cancel(12345);
  sim.cancel(kInvalidEventId);
  bool fired = false;
  sim.schedule_at(1, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelFromWithinEvent) {
  Simulator sim;
  bool fired = false;
  const EventId victim = sim.schedule_at(nanoseconds(20), [&] { fired = true; });
  sim.schedule_at(nanoseconds(10), [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(microseconds(i), [&] { ++count; });
  }
  sim.run_until(microseconds(5));
  EXPECT_EQ(count, 5);  // events at exactly the deadline still execute
  EXPECT_EQ(sim.now(), microseconds(5));
  sim.run_until(microseconds(20));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.now(), microseconds(20));  // clock advances to deadline
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(milliseconds(7));
  EXPECT_EQ(sim.now(), milliseconds(7));
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.run();  // resumes
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(nanoseconds(1), recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.executed_events(), 100u);
}

TEST(Simulator, PendingEventsAccountsForCancellations) {
  Simulator sim;
  const EventId a = sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, PendingEventsExactAfterStaleCancel) {
  // Cancelling an already-fired id must not disturb the count — the stale
  // entry is gone; only the two live events remain.
  Simulator sim;
  const EventId fired = sim.schedule_at(1, [] {});
  sim.run();
  sim.cancel(fired);  // stale: no-op
  sim.schedule_at(2, [] {});
  sim.schedule_at(3, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
}

TEST(Simulator, CancelAfterFireDoesNotKillSlotReuse) {
  // The storage slot of a fired event is recycled for the next schedule.
  // A late cancel() of the *old* id must not cancel the *new* event that
  // happens to occupy the same slot (generation tags make ids unique).
  Simulator sim;
  const EventId old_id = sim.schedule_at(1, [] {});
  sim.run();
  bool fired = false;
  const EventId new_id = sim.schedule_at(2, [&] { fired = true; });
  EXPECT_NE(old_id, new_id);
  sim.cancel(old_id);  // stale id aimed at a reused slot: must be a no-op
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, DoubleCancelThenReuseIsSafe) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(nanoseconds(10), [&] { fired = true; });
  sim.cancel(id);
  sim.cancel(id);  // second cancel of the same id: no-op
  const EventId id2 = sim.schedule_at(nanoseconds(5), [&] { fired = true; });
  sim.cancel(id);  // still aimed at the retired generation: no-op
  sim.run();
  EXPECT_TRUE(fired);
  (void)id2;
}

TEST(Simulator, ScheduleAtNowRunsAfterCurrentEvent) {
  // An event scheduled at the current timestamp from inside an event runs
  // in this same timestep, after everything already queued at that time.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(nanoseconds(10), [&] {
    order.push_back(1);
    sim.schedule_at(sim.now(), [&] { order.push_back(3); });
  });
  sim.schedule_at(nanoseconds(10), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), nanoseconds(10));
}

TEST(Simulator, InterleavedRunUntilDeadlines) {
  // run_until must be resumable at arbitrary deadlines, including deadlines
  // between events and deadlines that land exactly on an event, with
  // events scheduled between the calls.
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(microseconds(2), [&] { fired.push_back(2); });
  sim.schedule_at(microseconds(6), [&] { fired.push_back(6); });
  sim.run_until(microseconds(1));
  EXPECT_TRUE(fired.empty());
  sim.run_until(microseconds(2));  // lands exactly on an event
  EXPECT_EQ(fired, (std::vector<int>{2}));
  sim.schedule_at(microseconds(4), [&] { fired.push_back(4); });
  sim.run_until(microseconds(5));
  EXPECT_EQ(fired, (std::vector<int>{2, 4}));
  sim.run_until(microseconds(10));
  EXPECT_EQ(fired, (std::vector<int>{2, 4, 6}));
  EXPECT_EQ(sim.now(), microseconds(10));
}

TEST(Simulator, MoveOnlyCallback) {
  // The event core accepts move-only closures (std::function could not).
  Simulator sim;
  auto payload = std::make_unique<int>(41);
  int result = 0;
  sim.schedule_at(1, [p = std::move(payload), &result] { result = *p + 1; });
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST(Simulator, LargeCaptureFallsBackToHeapBox) {
  // Closures bigger than the inline buffer still work (boxed path).
  Simulator sim;
  std::array<std::uint64_t, 16> big{};
  big[15] = 7;
  std::uint64_t out = 0;
  sim.schedule_at(1, [big, &out] { out = big[15]; });
  sim.run();
  EXPECT_EQ(out, 7u);
}

TEST(Simulator, SeededRunsProduceIdenticalExecutionOrder) {
  // Differential determinism: two identically seeded runs must execute the
  // same events in the same order, including ties, cancellations, and
  // events scheduled from within events.
  auto trace = [] {
    Simulator sim;
    std::vector<std::pair<Time, int>> log;
    std::vector<EventId> ids;
    for (int i = 0; i < 200; ++i) {
      const Time at = nanoseconds((i * 37) % 50 + 1);
      ids.push_back(sim.schedule_at(at, [&log, &sim, i] {
        log.emplace_back(sim.now(), i);
      }));
    }
    for (int i = 0; i < 200; i += 3) sim.cancel(ids[static_cast<std::size_t>(i)]);
    sim.schedule_at(nanoseconds(25), [&] {
      sim.schedule_in(nanoseconds(5), [&log, &sim] { log.emplace_back(sim.now(), -1); });
    });
    sim.run();
    return log;
  };
  const auto a = trace();
  const auto b = trace();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace rocelab
