// The §8.1 extension features: selective-repeat recovery, per-packet
// spraying, and the TIMELY rate controller.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/nic/timely.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

QpConfig sr_qp() {
  QpConfig qp;
  qp.recovery = LossRecovery::kSelectiveRepeat;
  qp.dcqcn = false;
  return qp;
}

TEST(SelectiveRepeat, SingleDropRetransmitsExactlyOnePacket) {
  StarTopology topo(2);
  int dropped = 0;
  topo.sw().set_drop_filter([&dropped](const Packet& p) {
    if (p.kind == PacketKind::kRoceData && p.bth->psn == 5 && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], sr_qp());
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 40 * 1024, 1);
  topo.sim().run_until(milliseconds(5));
  EXPECT_EQ(topo.hosts[0]->rdma().stats().messages_completed, 1);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().bytes_received, 40 * 1024);
  // ONLY the dropped packet was retransmitted.
  EXPECT_EQ(topo.hosts[0]->rdma().stats().data_packets_retx, 1);
  // Nothing was discarded at the receiver (buffered instead).
  EXPECT_EQ(topo.hosts[1]->rdma().stats().out_of_order_drops, 0);
}

TEST(SelectiveRepeat, MultipleScatteredDropsRecover) {
  StarTopology topo(2);
  std::set<std::uint32_t> to_drop{3, 9, 17, 18, 31};
  topo.sw().set_drop_filter([&to_drop](const Packet& p) {
    if (p.kind == PacketKind::kRoceData && to_drop.count(p.bth->psn) > 0) {
      to_drop.erase(p.bth->psn);
      return true;
    }
    return false;
  });
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], sr_qp());
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 40 * 1024, 1);
  topo.sim().run_until(milliseconds(10));
  EXPECT_EQ(topo.hosts[0]->rdma().stats().messages_completed, 1);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().bytes_received, 40 * 1024);
  EXPECT_LE(topo.hosts[0]->rdma().stats().data_packets_retx, 8);
}

TEST(SelectiveRepeat, BeatsGoBackNOnRetransmissionVolume) {
  for (LossRecovery rec : {LossRecovery::kGoBackN, LossRecovery::kSelectiveRepeat}) {
    StarTopology topo(2);
    auto rng = std::make_shared<Rng>(5);
    topo.sw().set_drop_filter([rng](const Packet& p) {
      return p.kind == PacketKind::kRoceData && rng->bernoulli(0.01);
    });
    QpConfig qp = sr_qp();
    qp.recovery = rec;
    auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
    (void)qb;
    RdmaDemux demux(*topo.hosts[0]);
    RdmaStreamSource src(*topo.hosts[0], demux, qa,
                         {.message_bytes = 256 * kKiB, .max_outstanding = 2});
    src.start();
    topo.sim().run_until(milliseconds(20));
    const auto& st = topo.hosts[0]->rdma().stats();
    const double frac =
        static_cast<double>(st.data_packets_retx) / static_cast<double>(st.data_packets_sent);
    if (rec == LossRecovery::kSelectiveRepeat) {
      EXPECT_LT(frac, 0.05);  // ~ the loss rate
      EXPECT_GT(src.goodput_bps(), 25e9);
    } else {
      EXPECT_GT(frac, 0.05);  // go-back-N wastes up to RTT x C per drop
    }
  }
}

TEST(SelectiveRepeat, ToleratesReorderingFromSpraying) {
  Fabric fabric;
  SwitchConfig cfg;
  cfg.lossless[3] = true;
  cfg.packet_spray = true;
  auto& s1 = fabric.add_switch("s1", cfg, 4);
  auto& s2 = fabric.add_switch("s2", cfg, 4);
  s1.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24});
  s2.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24});
  s1.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24}, {2, 3});
  s2.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24}, {2, 3});
  fabric.attach_switches(s1, 2, s2, 2, gbps(10), propagation_delay_for_meters(2));
  fabric.attach_switches(s1, 3, s2, 3, gbps(10), propagation_delay_for_meters(300));
  HostConfig hc;
  hc.lossless[3] = true;
  auto& a = fabric.add_host("a", hc);
  auto& b = fabric.add_host("b", hc);
  a.set_ip(Ipv4Addr::from_octets(10, 0, 0, 1));
  b.set_ip(Ipv4Addr::from_octets(10, 0, 1, 1));
  fabric.attach_host(a, s1, 0, gbps(40), propagation_delay_for_meters(2));
  fabric.attach_host(b, s2, 0, gbps(40), propagation_delay_for_meters(2));
  auto [qa, qb] = connect_qp_pair(a, b, sr_qp());
  (void)qb;
  a.rdma().post_send(qa, 256 * 1024, 1);
  fabric.sim().run_until(milliseconds(10));
  // Delivered completely despite heavy reordering, with zero receiver-side
  // discards (everything buffered).
  EXPECT_EQ(b.rdma().stats().bytes_received, 256 * 1024);
  EXPECT_EQ(b.rdma().stats().out_of_order_drops, 0);
}

TEST(PacketSpray, UsesAllPathsOfTheGroup) {
  Fabric fabric;
  SwitchConfig cfg;
  cfg.lossless[3] = true;
  cfg.packet_spray = true;
  auto& s1 = fabric.add_switch("s1", cfg, 6);
  auto& s2 = fabric.add_switch("s2", cfg, 6);
  s1.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24});
  s2.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24});
  s1.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24}, {2, 3, 4, 5});
  s2.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24}, {2, 3, 4, 5});
  for (int p = 2; p < 6; ++p) fabric.attach_switches(s1, p, s2, p, gbps(40), nanoseconds(100));
  HostConfig hc;
  hc.lossless[3] = true;
  auto& a = fabric.add_host("a", hc);
  auto& b = fabric.add_host("b", hc);
  a.set_ip(Ipv4Addr::from_octets(10, 0, 0, 1));
  b.set_ip(Ipv4Addr::from_octets(10, 0, 1, 1));
  fabric.attach_host(a, s1, 0, gbps(40), nanoseconds(10));
  fabric.attach_host(b, s2, 0, gbps(40), nanoseconds(10));
  auto [qa, qb] = connect_qp_pair(a, b, sr_qp());
  (void)qb;
  a.rdma().post_send(qa, 256 * 1024, 1);
  fabric.sim().run_until(milliseconds(5));
  int used = 0;
  std::int64_t min_pkts = 1 << 30, max_pkts = 0;
  for (int p = 2; p < 6; ++p) {
    const auto n = s1.port(p).counters().tx_packets[3];
    if (n > 0) ++used;
    min_pkts = std::min(min_pkts, n);
    max_pkts = std::max(max_pkts, n);
  }
  EXPECT_EQ(used, 4);
  EXPECT_LE(max_pkts - min_pkts, 2);  // round robin is near-perfectly even
}

TEST(Timely, StartsAtLineRateAndNeedsTwoSamples) {
  TimelyRp rp(TimelyConfig{}, gbps(40));
  EXPECT_EQ(rp.rate(), gbps(40));
  rp.on_rtt_sample(microseconds(100));  // first sample only seeds prev_rtt
  EXPECT_EQ(rp.rate(), gbps(40));
}

TEST(Timely, HighRttCutsMultiplicatively) {
  TimelyConfig cfg;
  TimelyRp rp(cfg, gbps(40));
  rp.on_rtt_sample(microseconds(100));
  rp.on_rtt_sample(cfg.t_high * 2);
  EXPECT_LT(rp.rate(), gbps(40));
  const Bandwidth after_one = rp.rate();
  rp.on_rtt_sample(cfg.t_high * 2);
  EXPECT_LT(rp.rate(), after_one);
}

TEST(Timely, LowRttIncreasesAdditively) {
  TimelyConfig cfg;
  TimelyRp rp(cfg, gbps(40));
  // Cut first, then recover.
  rp.on_rtt_sample(microseconds(100));
  for (int i = 0; i < 10; ++i) rp.on_rtt_sample(cfg.t_high * 3);
  const Bandwidth low = rp.rate();
  for (int i = 0; i < 10; ++i) rp.on_rtt_sample(cfg.t_low / 2);
  EXPECT_GT(rp.rate(), low);
}

TEST(Timely, NeverBelowMinOrAboveLine) {
  TimelyConfig cfg;
  TimelyRp rp(cfg, gbps(40));
  rp.on_rtt_sample(microseconds(10));
  for (int i = 0; i < 200; ++i) rp.on_rtt_sample(milliseconds(10));
  EXPECT_EQ(rp.rate(), cfg.min_rate);
  for (int i = 0; i < 100000; ++i) rp.on_rtt_sample(microseconds(5));
  EXPECT_EQ(rp.rate(), gbps(40));
}

TEST(Timely, GradientReactsBetweenThresholds) {
  TimelyConfig cfg;
  TimelyRp rp(cfg, gbps(40));
  const Time mid = (cfg.t_low + cfg.t_high) / 2;
  rp.on_rtt_sample(mid);
  // Rising RTT inside the band: positive gradient, rate decreases.
  rp.on_rtt_sample(mid + microseconds(40));
  rp.on_rtt_sample(mid + microseconds(80));
  EXPECT_LT(rp.rate(), gbps(40));
}

TEST(TimelyEndToEnd, ControlsIncastWithoutEcn) {
  // TIMELY needs no switch ECN support: disable marking entirely.
  SwitchConfig cfg = testing::basic_switch_config();
  cfg.ecn[3] = EcnConfig{};
  StarTopology topo(5, cfg);
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  std::vector<std::unique_ptr<RdmaStreamSource>> sources;
  for (int i = 0; i < 4; ++i) {
    QpConfig qp;
    qp.cc = CcAlgorithm::kTimely;
    auto [qa, qb] = connect_qp_pair(*topo.hosts[static_cast<std::size_t>(i)], *topo.hosts[4], qp);
    (void)qb;
    demuxes.push_back(std::make_unique<RdmaDemux>(*topo.hosts[static_cast<std::size_t>(i)]));
    sources.push_back(std::make_unique<RdmaStreamSource>(
        *topo.hosts[static_cast<std::size_t>(i)], *demuxes.back(), qa,
        RdmaStreamSource::Options{.message_bytes = 128 * kKiB, .max_outstanding = 2}));
    sources.back()->start();
  }
  topo.sim().run_until(milliseconds(20));
  // No CNPs were ever sent (no ECN), yet the incast made progress and the
  // rates came off the line rate.
  EXPECT_EQ(topo.hosts[4]->rdma().stats().cnps_sent, 0);
  double total = 0;
  for (auto& s : sources) total += s->goodput_bps();
  EXPECT_GT(total, 10e9);
  // Queue stayed PFC-free or nearly so (TIMELY reacted to RTT).
  std::int64_t pauses = 0;
  for (int p = 0; p < topo.sw().port_count(); ++p) {
    pauses += topo.sw().port(p).counters().total_tx_pause();
  }
  EXPECT_LT(pauses, 100);
}

}  // namespace
}  // namespace rocelab
