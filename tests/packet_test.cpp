// Packet metadata: summary() rendering, the ECMP five-tuple hash and its
// memoized flow-tuple cache, the pooled-packet free list, and cross-fabric
// determinism of the counter digest.
#include <gtest/gtest.h>

#include <utility>

#include "src/monitor/digest.h"
#include "src/net/packet.h"
#include "src/net/packet_pool.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

Packet udp_packet() {
  Packet pkt;
  pkt.kind = PacketKind::kRaw;
  pkt.ip = Ipv4Header{};
  pkt.ip->src = Ipv4Addr::from_octets(10, 0, 0, 1);
  pkt.ip->dst = Ipv4Addr::from_octets(10, 0, 0, 2);
  pkt.ip->protocol = kIpProtoUdp;
  pkt.udp = UdpHeader{4791, 4791, 0};
  return pkt;
}

TEST(PacketSummary, WithIpHeader) {
  Packet pkt = udp_packet();
  pkt.kind = PacketKind::kRoceData;
  pkt.priority = 3;
  pkt.frame_bytes = 1086;
  pkt.bth = RoceBth{};
  pkt.bth->psn = 42;
  const std::string s = pkt.summary();
  EXPECT_NE(s.find("roce-data"), std::string::npos) << s;
  EXPECT_NE(s.find("10.0.0.1->10.0.0.2"), std::string::npos) << s;
  EXPECT_NE(s.find("prio=3"), std::string::npos) << s;
  EXPECT_NE(s.find("bytes=1086"), std::string::npos) << s;
  EXPECT_NE(s.find("psn=42"), std::string::npos) << s;
}

TEST(PacketSummary, WithoutIpFallsBackToMacs) {
  Packet pkt;  // no ip header at all (e.g. a PFC pause frame)
  pkt.kind = PacketKind::kPfcPause;
  pkt.frame_bytes = 64;
  pkt.eth.src = MacAddr::from_u64(0x020000000101ull);
  pkt.eth.dst = MacAddr::pfc_multicast();
  const std::string s = pkt.summary();
  EXPECT_NE(s.find("pfc-pause"), std::string::npos) << s;
  EXPECT_NE(s.find("bytes=64"), std::string::npos) << s;
  EXPECT_EQ(s.find("psn"), std::string::npos) << s;
}

TEST(FiveTupleHash, NoHeadersDegeneratesToMixedSeed) {
  // A headerless packet has no IP fields and ports == 0: the chain reduces
  // to a single mix of the seed.
  Packet pkt;
  EXPECT_EQ(five_tuple_hash(pkt, 0x1234u), mix64(0x1234u ^ 0u));
}

TEST(FiveTupleHash, PrefersUdpPortsOverTcp) {
  Packet pkt = udp_packet();
  Packet with_tcp = udp_packet();
  with_tcp.tcp = TcpHeaderMeta{};
  with_tcp.tcp->src_port = 999;
  with_tcp.tcp->dst_port = 888;
  // UDP ports win when both header kinds are present.
  EXPECT_EQ(five_tuple_hash(pkt, 7), five_tuple_hash(with_tcp, 7));

  Packet tcp_only = udp_packet();
  tcp_only.udp.reset();
  tcp_only.tcp = TcpHeaderMeta{};
  tcp_only.tcp->src_port = 4791;
  tcp_only.tcp->dst_port = 4791;
  // Same port values through TCP hash identically (only values are mixed).
  EXPECT_EQ(five_tuple_hash(pkt, 7), five_tuple_hash(tcp_only, 7));
}

TEST(FiveTupleHash, IpWithoutPortsStillMixesAddresses) {
  Packet pkt = udp_packet();
  pkt.udp.reset();  // ip present, no L4 header: ports word is zero
  Packet other = udp_packet();
  other.udp.reset();
  other.ip->dst = Ipv4Addr::from_octets(10, 0, 0, 3);
  EXPECT_NE(five_tuple_hash(pkt, 7), five_tuple_hash(other, 7));
  EXPECT_NE(five_tuple_hash(pkt, 7), five_tuple_hash(Packet{}, 7));
}

TEST(FiveTupleHash, SeedChangesHash) {
  Packet pkt = udp_packet();
  EXPECT_NE(five_tuple_hash(pkt, 1), five_tuple_hash(pkt, 2));
}

TEST(FiveTupleHash, CacheMustBeInvalidatedAfterHeaderMutation) {
  Packet pkt = udp_packet();
  const std::uint64_t before = five_tuple_hash(pkt, 7);  // warms the cache
  pkt.ip->dst = Ipv4Addr::from_octets(10, 0, 0, 99);
  // Documented contract: without invalidation the memoized tuple is stale.
  EXPECT_EQ(five_tuple_hash(pkt, 7), before);
  pkt.invalidate_flow_cache();
  Packet fresh = udp_packet();
  fresh.ip->dst = Ipv4Addr::from_octets(10, 0, 0, 99);
  EXPECT_EQ(five_tuple_hash(pkt, 7), five_tuple_hash(fresh, 7));
  EXPECT_NE(five_tuple_hash(pkt, 7), before);
}

TEST(PacketPool, BoxPreservesContents) {
  Packet pkt = udp_packet();
  pkt.priority = 5;
  pkt.frame_bytes = 1500;
  PooledPacket pp = acquire_pooled_packet(std::move(pkt));
  ASSERT_TRUE(pp);
  EXPECT_EQ(pp->priority, 5);
  EXPECT_EQ(pp->frame_bytes, 1500);
  ASSERT_TRUE(pp->ip);
  EXPECT_EQ(pp->ip->dst, Ipv4Addr::from_octets(10, 0, 0, 2));
}

TEST(PacketPool, ReleaseReturnsBoxToPool) {
  [[maybe_unused]] const std::size_t idle_before = packet_pool_idle_count();
  {
    PooledPacket pp = acquire_pooled_packet(udp_packet());
    ASSERT_TRUE(pp);
  }
#if defined(__SANITIZE_ADDRESS__)
  // Recycling is disabled under ASan; the box is freed outright.
  EXPECT_EQ(packet_pool_idle_count(), 0u);
#else
  EXPECT_GE(packet_pool_idle_count(), idle_before);
  // A fresh acquire drains the pool rather than allocating.
  const std::size_t idle_mid = packet_pool_idle_count();
  if (idle_mid > 0) {
    PooledPacket pp = acquire_pooled_packet(Packet{});
    EXPECT_EQ(packet_pool_idle_count(), idle_mid - 1);
  }
#endif
}

TEST(PacketPool, RecycledBoxIsReset) {
  Packet pkt = udp_packet();
  pkt.priority = 6;
  { PooledPacket pp = acquire_pooled_packet(std::move(pkt)); }
  PooledPacket pp2 = acquire_pooled_packet(Packet{});
  // Whether or not the storage was recycled, the box must hold a
  // default-constructed packet, not leftovers.
  EXPECT_EQ(pp2->priority, 0);
  EXPECT_FALSE(pp2->ip);
  EXPECT_FALSE(pp2->udp);
}

// Two identically built fabrics in one process must produce identical
// counter digests: node ids (and the MACs, ECMP seeds, and RNG streams
// derived from them) are allocated per-Simulator, not process-globally.
TEST(Determinism, TwoFabricsInOneProcessSameDigest) {
  auto run_one = [] {
    StarTopology topo(2);
    QpConfig qp;
    auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
    (void)qb;
    topo.hosts[0]->rdma().post_send(qa, 64 * kKiB, 1);
    topo.sim().run_until(milliseconds(2));
    return counters_digest(*topo.fabric);
  };
  const std::uint64_t first = run_one();
  const std::uint64_t second = run_one();
  EXPECT_EQ(digest_hex(first), digest_hex(second));
}

}  // namespace
}  // namespace rocelab
