// ISSUE 10 — atomic verbs (CAS/FAA) with a responder replay guard, the READ
// duplicate-execution bugfix that guard subsumes, the 24-bit AETH msn mask,
// and the lock-table workload plane. Suite names all match /Atomic/ so the
// TSan pass picks them up (the lock-table's per-client state is mutated from
// shard-local callbacks in sharded runs).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/app/demux.h"
#include "src/app/lock_table.h"
#include "src/faults/chaos.h"
#include "src/link/impairment.h"
#include "src/net/codec.h"
#include "src/nic/rdma_nic.h"
#include "src/rocev2/deployment.h"
#include "src/topo/clos.h"
#include "src/topo/fabric.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

// --- requester semantics: execution, return values, ordering -----------------

TEST(AtomicVerbs, CasSwapsOnMatchAndReportsOriginalOnMismatch) {
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], QpConfig{});
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  std::vector<std::uint64_t> origs;
  demux.on_completion(qa, [&](const RdmaCompletion& c) { origs.push_back(c.atomic_orig); });

  // Lock word starts 0: CAS(0->1) wins, the repeat of the same CAS loses.
  topo.hosts[0]->rdma().post_cas(qa, 0x1000, /*compare=*/0, /*swap=*/1);
  topo.hosts[0]->rdma().post_cas(qa, 0x1000, /*compare=*/0, /*swap=*/1);
  topo.sim().run_until(milliseconds(1));

  ASSERT_EQ(origs.size(), 2u);
  EXPECT_EQ(origs[0], 0u);  // success: original equalled compare
  EXPECT_EQ(origs[1], 1u);  // failure: word already held the swapped value
  EXPECT_EQ(topo.hosts[1]->rdma().memory_read(0x1000), 1u);  // no double swap
  const auto& at = topo.hosts[1]->rdma().stats().atomic;
  EXPECT_EQ(at.cas_executed, 2);
  EXPECT_EQ(at.cas_failed, 1);
}

TEST(AtomicVerbs, FaaReturnsPreValueAndAccumulates) {
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], QpConfig{});
  (void)qb;
  topo.hosts[1]->rdma().memory_write(0x2000, 100);
  RdmaDemux demux(*topo.hosts[0]);
  std::vector<std::uint64_t> origs;
  demux.on_completion(qa, [&](const RdmaCompletion& c) { origs.push_back(c.atomic_orig); });

  for (int i = 0; i < 3; ++i) topo.hosts[0]->rdma().post_faa(qa, 0x2000, 5);
  topo.sim().run_until(milliseconds(1));

  ASSERT_EQ(origs.size(), 3u);
  EXPECT_EQ(origs[0], 100u);
  EXPECT_EQ(origs[1], 105u);
  EXPECT_EQ(origs[2], 110u);
  EXPECT_EQ(topo.hosts[1]->rdma().memory_read(0x2000), 115u);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().atomic.faa_executed, 3);
  EXPECT_EQ(topo.hosts[0]->rdma().stats().atomic.completions, 3);
}

TEST(AtomicVerbs, AtomicFencesBehindPriorPostedSend) {
  // IB ordering: an atomic posted after a SEND must not complete (or even
  // issue) until the SEND has fully completed.
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], QpConfig{});
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  std::vector<std::uint64_t> order;
  demux.on_completion(qa, [&](const RdmaCompletion& c) { order.push_back(c.msg_id); });

  topo.hosts[0]->rdma().post_send(qa, 256 * kKiB, /*msg_id=*/1);
  topo.hosts[0]->rdma().post_faa(qa, 0x2000, 1, /*msg_id=*/2);
  topo.sim().run_until(milliseconds(5));

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
}

TEST(AtomicVerbs, PostOnUnconnectedQpThrows) {
  StarTopology topo(2);
  const std::uint32_t qpn = topo.hosts[0]->rdma().create_qp(QpConfig{});
  EXPECT_THROW(topo.hosts[0]->rdma().post_faa(qpn, 0x0, 1), std::logic_error);
}

TEST(AtomicVerbs, FaaMonotonicUnderLossOnEveryRecoveryEngine) {
  // The counter identity under real packet loss, with each recovery engine
  // configured (the atomic path is engine-independent — this pins that the
  // re-issue/replay machinery coexists with all three data-path modes).
  for (LossRecovery mode : {LossRecovery::kGoBack0, LossRecovery::kGoBackN,
                            LossRecovery::kSelectiveRepeat}) {
    StarTopology topo(2);
    LinkImpairment imp;
    imp.fcs_drop_rate = 0.05;
    imp.seed = 5;
    topo.hosts[0]->port(0).set_impairment(imp);  // request direction
    imp.seed = 9;
    topo.hosts[1]->port(0).set_impairment(imp);  // atomic-ACK direction
    QpConfig qp;
    qp.recovery = mode;
    qp.retx_timeout = microseconds(50);
    auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
    (void)qb;
    const int n = 20;
    for (int i = 0; i < n; ++i) topo.hosts[0]->rdma().post_faa(qa, 0x2000, 1);
    topo.sim().run_until(milliseconds(50));

    EXPECT_EQ(topo.hosts[0]->rdma().stats().atomic.completions, n);
    // Exactly once: no lost increments, no doubled ones.
    EXPECT_EQ(topo.hosts[1]->rdma().memory_read(0x2000), static_cast<std::uint64_t>(n));
    EXPECT_EQ(topo.hosts[1]->rdma().stats().atomic.faa_executed, n);
  }
}

// --- the responder replay guard ----------------------------------------------

TEST(AtomicReplay, DuplicateFaaRequestsNeverReExecute) {
  // Every atomic request delivered twice (the non-idempotent duplicate that,
  // without the replay table, double-increments): execution count and the
  // memory word must track the posted count, not the delivered count.
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], QpConfig{});
  QpFaultSpec spec;
  spec.dup_req_rate = 1.0;
  spec.seed = 3;
  topo.hosts[1]->rdma().set_qp_fault(qb, spec);

  const int n = 8;
  for (int i = 0; i < n; ++i) topo.hosts[0]->rdma().post_faa(qa, 0x2000, 1);
  topo.sim().run_until(milliseconds(5));

  const auto& rx = topo.hosts[1]->rdma().stats();
  EXPECT_EQ(rx.injected_dup_reqs, n);
  EXPECT_EQ(rx.atomic.dup_requests, n);   // every duplicate hit the table
  EXPECT_EQ(rx.atomic.faa_executed, n);   // ...and none re-executed
  EXPECT_EQ(topo.hosts[1]->rdma().memory_read(0x2000), static_cast<std::uint64_t>(n));
  EXPECT_EQ(topo.hosts[0]->rdma().stats().atomic.completions, n);
}

TEST(AtomicReplay, DuplicateCasAnsweredFromCachedOriginal) {
  // A duplicated winning CAS must not "win twice": the duplicate's ACK
  // carries the cached pre-swap original, and the word is swapped once.
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], QpConfig{});
  QpFaultSpec spec;
  spec.dup_req_rate = 1.0;
  spec.seed = 3;
  topo.hosts[1]->rdma().set_qp_fault(qb, spec);

  topo.hosts[0]->rdma().post_cas(qa, 0x1000, 0, 1);
  topo.sim().run_until(milliseconds(1));

  const auto& rx = topo.hosts[1]->rdma().stats();
  EXPECT_EQ(rx.atomic.cas_executed, 1);
  EXPECT_EQ(rx.atomic.cas_failed, 0);  // the duplicate did not run as a losing CAS
  EXPECT_EQ(rx.atomic.dup_requests, 1);
  EXPECT_EQ(topo.hosts[1]->rdma().memory_read(0x1000), 1u);
}

TEST(AtomicReplay, LostAtomicAckReissuesAndResolvesExactlyOnce) {
  // Drop the atomic ACK (responder egress blackholed past the execution),
  // heal the link, and let the 8xRTO re-issue carry the same request PSN:
  // the responder recognizes the duplicate and replays the cached original.
  StarTopology topo(2);
  QpConfig qp;
  qp.retx_timeout = microseconds(100);  // re-issue at 800us
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  LinkImpairment blackhole;
  blackhole.fcs_drop_rate = 1.0;
  blackhole.seed = 1;
  topo.hosts[1]->port(0).set_impairment(blackhole);
  topo.sim().schedule_in(microseconds(500), [&] {
    topo.hosts[1]->port(0).set_impairment(LinkImpairment{});
  });

  topo.hosts[0]->rdma().post_faa(qa, 0x2000, 1);
  topo.sim().run_until(milliseconds(5));

  const auto& tx = topo.hosts[0]->rdma().stats().atomic;
  const auto& rx = topo.hosts[1]->rdma().stats().atomic;
  EXPECT_EQ(tx.reissues, 1);
  EXPECT_EQ(tx.completions, 1);
  EXPECT_EQ(rx.faa_executed, 1);   // executed on first delivery only
  EXPECT_EQ(rx.dup_requests, 1);   // the re-issue hit the replay table
  EXPECT_EQ(rx.acks_sent, 2);      // original (lost) + replayed answer
  EXPECT_EQ(topo.hosts[1]->rdma().memory_read(0x2000), 1u);
}

TEST(AtomicReplay, BoundedTableEvictsOldestFifo) {
  StarTopology topo(2);
  QpConfig qp;
  qp.replay_entries = 4;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  for (int i = 0; i < 10; ++i) topo.hosts[0]->rdma().post_faa(qa, 0x2000, 1);
  topo.sim().run_until(milliseconds(5));

  // 10 inserts into a 4-entry FIFO: 6 pushed out. No duplicates arrived, so
  // the evictions cost nothing — the bound just caps responder state.
  EXPECT_EQ(topo.hosts[1]->rdma().stats().atomic.replay_evictions, 6);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().atomic.dup_requests, 0);
  EXPECT_EQ(topo.hosts[1]->rdma().memory_read(0x2000), 10u);
}

TEST(AtomicReplay, ExactlyOnceUnderSelrepNaksLossAndDuplication) {
  // The full storm: selective repeat (NAK/SACK traffic on the same QP),
  // both directions lossy, and injected request duplication — the counter
  // identity must still hold exactly.
  StarTopology topo(2);
  LinkImpairment imp;
  imp.fcs_drop_rate = 0.05;
  imp.seed = 13;
  topo.hosts[0]->port(0).set_impairment(imp);
  imp.seed = 17;
  topo.hosts[1]->port(0).set_impairment(imp);
  QpConfig qp;
  qp.recovery = LossRecovery::kSelectiveRepeat;
  qp.selrep_bdp_bytes = 64 * 1024;
  qp.retx_timeout = microseconds(50);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  QpFaultSpec spec;
  spec.dup_req_rate = 0.5;
  spec.seed = 19;
  topo.hosts[1]->rdma().set_qp_fault(qb, spec);

  const int n = 25;
  for (int i = 0; i < n; ++i) topo.hosts[0]->rdma().post_faa(qa, 0x2000, 1);
  topo.sim().run_until(milliseconds(100));

  EXPECT_EQ(topo.hosts[0]->rdma().stats().atomic.completions, n);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().atomic.faa_executed, n);
  EXPECT_EQ(topo.hosts[1]->rdma().memory_read(0x2000), static_cast<std::uint64_t>(n));
  EXPECT_GT(topo.hosts[1]->rdma().stats().atomic.dup_requests, 0);
}

// --- the READ bugfixes the replay guard rode in on ----------------------------

TEST(AtomicReadDedup, DuplicateReadRequestsAnsweredOnce) {
  // Regression for the duplicate-READ-execution bug: a re-delivered READ
  // request used to re-execute at the responder, double-sending the
  // response stream and burning PSNs. The replay table now recognizes the
  // request PSN and drops the duplicate — each posted READ completes once.
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], QpConfig{});
  QpFaultSpec spec;
  spec.dup_req_rate = 1.0;
  spec.seed = 3;
  topo.hosts[1]->rdma().set_qp_fault(qb, spec);
  RdmaDemux demux(*topo.hosts[0]);
  int completions = 0;
  demux.on_completion(qa, [&](const RdmaCompletion&) { ++completions; });

  const int n = 4;
  for (int i = 0; i < n; ++i) topo.hosts[0]->rdma().post_read(qa, 8 * kKiB, i);
  topo.sim().run_until(milliseconds(10));

  EXPECT_EQ(completions, n);  // not 2n
  const auto& rx = topo.hosts[1]->rdma().stats();
  EXPECT_EQ(rx.injected_dup_reqs, n);
  EXPECT_EQ(rx.atomic.dup_requests, n);
}

TEST(AtomicReadDedup, ReadReissueTimerCancelledOnCompletion) {
  // The re-issue timer is stored per msg_id and cancelled when the response
  // completes; a clean READ must not fire a spurious timeout later.
  StarTopology topo(2);
  QpConfig qp;
  qp.retx_timeout = microseconds(100);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_read(qa, 8 * kKiB, 0);
  topo.sim().run_until(milliseconds(20));  // far past 8xRTO
  EXPECT_EQ(topo.hosts[0]->rdma().stats().timeouts, 0);
  EXPECT_EQ(topo.hosts[0]->rdma().stats().messages_completed, 1);
}

TEST(AtomicReadDedup, ErroredQpSilencesReadReissueTimer) {
  // Regression for the unguarded re-issue closure: with the QP in the error
  // state, a pending READ's timer must go quiet instead of re-posting
  // requests from a wedged QP forever.
  StarTopology topo(2);
  LinkImpairment blackhole;
  blackhole.fcs_drop_rate = 1.0;
  blackhole.seed = 1;
  topo.hosts[0]->port(0).set_impairment(blackhole);
  QpConfig qp;
  qp.retx_timeout = microseconds(50);
  qp.retry_limit = 1;  // first SEND timeout errors the QP (at ~50us)
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 1024, 0);
  topo.hosts[0]->rdma().post_read(qa, 8 * kKiB, 1);
  topo.sim().run_until(milliseconds(10));

  EXPECT_TRUE(topo.hosts[0]->rdma().qp_errored(qa));
  // Exactly the one SEND timeout that errored the QP; the READ timer (due
  // at 400us) saw the error flag and stood down instead of counting
  // timeouts every 400us for the rest of the run.
  EXPECT_EQ(topo.hosts[0]->rdma().stats().timeouts, 1);
}

TEST(AtomicReadDedup, ResetQpCancelsPendingReadTimer) {
  StarTopology topo(2);
  LinkImpairment blackhole;
  blackhole.fcs_drop_rate = 1.0;
  blackhole.seed = 1;
  topo.hosts[0]->port(0).set_impairment(blackhole);
  QpConfig qp;
  qp.retx_timeout = microseconds(50);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_read(qa, 8 * kKiB, 0);
  topo.sim().schedule_in(microseconds(100), [&, qa = qa] {
    topo.hosts[0]->rdma().reset_qp(qa);
  });
  topo.sim().run_until(milliseconds(10));
  // The tracked timer event was cancelled with the QP state: no re-issues,
  // no timeout counting on the reset QP.
  EXPECT_EQ(topo.hosts[0]->rdma().stats().timeouts, 0);
}

// --- wire formats: AtomicETH / AtomicAckETH / the 24-bit AETH msn -------------

Packet atomic_req_packet() {
  Packet pkt;
  pkt.kind = PacketKind::kRoceAtomicReq;
  pkt.payload_bytes = 0;
  pkt.frame_bytes = kRoceDataOverheadBytes + kAtomicEthBytes;
  Ipv4Header ip;
  ip.src = Ipv4Addr::from_octets(10, 0, 0, 1);
  ip.dst = Ipv4Addr::from_octets(10, 0, 1, 2);
  ip.ttl = 64;
  pkt.ip = ip;
  pkt.udp = UdpHeader{51234, kRoceUdpPort, 0};
  RoceBth bth;
  bth.opcode = RoceOpcode::kCompareSwap;
  bth.dest_qp = 0x00abcd;
  bth.psn = 0x123456;
  pkt.bth = bth;
  pkt.atomic = RoceAtomicEth{0xdeadbeefcafe1008ull, 0x1234, 0x1111222233334444ull,
                             0x5555666677778888ull};
  return pkt;
}

TEST(AtomicCodec, AtomicEthRoundTripsByteExact) {
  const RoceAtomicEth h{0x0102030405060708ull, 0xa1b2c3d4u, 0x1112131415161718ull,
                        0x2122232425262728ull};
  Bytes out;
  encode_atomic_eth(h, out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kAtomicEthBytes));
  const auto d = decode_atomic_eth(out);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, h);
}

TEST(AtomicCodec, AtomicAckEthRoundTripsByteExact) {
  const RoceAtomicAckEth h{0xfeedfacecafebeefull};
  Bytes out;
  encode_atomic_ack_eth(h, out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kAtomicAckEthBytes));
  const auto d = decode_atomic_ack_eth(out);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, h);
}

TEST(AtomicCodec, AtomicRequestFrameRoundTripsUnderIcrc) {
  const Bytes frame = encode_roce_frame(atomic_req_packet(), PfcMode::kDscpBased);
  const auto d = decode_roce_frame(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->fcs_ok);
  EXPECT_TRUE(d->icrc_ok);
  EXPECT_EQ(d->bth.opcode, RoceOpcode::kCompareSwap);
  ASSERT_TRUE(d->atomic.has_value());
  EXPECT_EQ(*d->atomic, *atomic_req_packet().atomic);
}

TEST(AtomicCodec, FlipAnywhereInAtomicEthFailsIcrc) {
  // The operands ride inside the invariant region: a flipped compare value
  // (which would make a losing CAS "win") must fail the end-to-end ICRC,
  // even when the FCS is forged valid over the damaged frame (§5.2 escape).
  const Bytes clean = encode_roce_frame(atomic_req_packet(), PfcMode::kDscpBased);
  // AtomicETH spans the 28 bytes after IP(20)+UDP(8)+BTH(12) past the
  // 14-byte Ethernet header.
  const std::size_t ath_start = 14 + 20 + 8 + 12;
  for (std::size_t off = ath_start; off < ath_start + static_cast<std::size_t>(kAtomicEthBytes);
       ++off) {
    Bytes frame = clean;
    frame[off] ^= 0x40;
    const std::uint32_t fcs =
        crc32_ieee(std::span<const std::uint8_t>(frame.data(), frame.size() - 4));
    frame[frame.size() - 4] = static_cast<std::uint8_t>(fcs >> 24);
    frame[frame.size() - 3] = static_cast<std::uint8_t>(fcs >> 16);
    frame[frame.size() - 2] = static_cast<std::uint8_t>(fcs >> 8);
    frame[frame.size() - 1] = static_cast<std::uint8_t>(fcs);
    const auto d = decode_roce_frame(frame);
    ASSERT_TRUE(d.has_value()) << "offset " << off;
    EXPECT_TRUE(d->fcs_ok) << "offset " << off;
    EXPECT_FALSE(d->icrc_ok) << "offset " << off;
  }
}

TEST(AtomicCodec, AtomicAckFrameCarriesOriginalUnderIcrc) {
  Packet pkt;
  pkt.kind = PacketKind::kRoceAck;
  pkt.payload_bytes = 0;
  pkt.frame_bytes = kRoceDataOverheadBytes + kAethBytes + kAtomicAckEthBytes;
  Ipv4Header ip;
  ip.src = Ipv4Addr::from_octets(10, 0, 1, 2);
  ip.dst = Ipv4Addr::from_octets(10, 0, 0, 1);
  ip.ttl = 64;
  pkt.ip = ip;
  pkt.udp = UdpHeader{51234, kRoceUdpPort, 0};
  RoceBth bth;
  bth.opcode = RoceOpcode::kAtomicAck;
  bth.dest_qp = 0x000042;
  bth.psn = 0x000007;
  pkt.bth = bth;
  pkt.aeth = RoceAeth{AethSyndrome::kAck, 0x000007};
  pkt.atomic_ack = RoceAtomicAckEth{0x00000000000000ffull};

  const Bytes frame = encode_roce_frame(pkt, PfcMode::kDscpBased);
  const auto d = decode_roce_frame(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->icrc_ok);
  ASSERT_TRUE(d->atomic_ack.has_value());
  EXPECT_EQ(d->atomic_ack->orig, 0xffu);

  // A flipped original-value byte must not complete: ICRC covers it.
  Bytes bad = frame;
  bad[bad.size() - 9] ^= 0x01;  // last AtomicAckETH byte (before ICRC+FCS)
  const auto db = decode_roce_frame(bad);
  ASSERT_TRUE(db.has_value());
  EXPECT_FALSE(db->icrc_ok);
}

TEST(AtomicCodec, AethMsnMaskedTo24BitsOnTheWire) {
  // The msn field is 24 bits on the wire; an un-masked 32-bit value used to
  // bleed into the syndrome byte. Encode masks, decode returns the low 24.
  RoceAeth h;
  h.syndrome = AethSyndrome::kAck;
  h.msn = 0x01000005u;  // bit 24 set: must not corrupt the syndrome
  Bytes out;
  encode_aeth(h, out);
  const auto d = decode_aeth(out);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->syndrome, AethSyndrome::kAck);
  EXPECT_EQ(d->msn, 0x000005u);
}

TEST(AtomicCodec, ExpandSeq24RecoversAcrossTheWrapBoundary) {
  // Identity below 2^24.
  EXPECT_EQ(expand_seq24(0, 0x000005u), 0x000005ull);
  EXPECT_EQ(expand_seq24(0x123455ull, 0x123456u), 0x123456ull);
  // Forward across the wrap: reference just below 2^24, wire already
  // wrapped — the widened value continues past 2^24.
  EXPECT_EQ(expand_seq24(0x00fffffaull, 0x000005u), 0x01000005ull);
  // Behind the reference (a stale duplicate): widens backwards, not up.
  EXPECT_EQ(expand_seq24(0x01000005ull, 0xfffffau), 0x00fffffaull);
  // Many epochs in: still correct around the local reference.
  EXPECT_EQ(expand_seq24(0x05fffffeull, 0x000003u), 0x06000003ull);
}

// --- the lock-table workload plane --------------------------------------------

TEST(AtomicLockTable, SeqlockWritersAreNeverTornCountersExact) {
  // One writer, one reader, one counter client against a clean star: reads
  // validated by version must all come back consistent, and every total is
  // an exact function of the cycle budget.
  StarTopology topo(4);
  LockTableWorkload::Options opts;
  opts.locks = 1;
  opts.think_mean = microseconds(20);
  opts.backoff_mean = microseconds(5);
  opts.seed = 7;
  opts.cycles = 10;
  LockTableWorkload wl(opts);
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  const LockTableWorkload::Role roles[] = {LockTableWorkload::Role::kLocker,
                                           LockTableWorkload::Role::kCounter,
                                           LockTableWorkload::Role::kReader};
  for (int i = 0; i < 3; ++i) {
    Host& h = *topo.hosts[i + 1];
    auto [qa, qb] = connect_qp_pair(h, *topo.hosts[0], QpConfig{});
    (void)qb;
    demuxes.push_back(std::make_unique<RdmaDemux>(h));
    wl.add_client(h, *demuxes.back(), qa, roles[i]);
  }
  wl.start();
  topo.sim().run_until(milliseconds(20));

  EXPECT_EQ(wl.busy_clients(), 0);
  EXPECT_EQ(wl.acquisitions(), 10);
  EXPECT_EQ(wl.releases(), 10);
  EXPECT_EQ(wl.counter_increments(), 10);
  EXPECT_EQ(wl.reads(), 10);
  EXPECT_EQ(wl.torn_reads() + wl.consistent_reads(), 10);
  auto& server = topo.hosts[0]->rdma();
  EXPECT_EQ(server.memory_read(LockTableLayout::kCounterAddr), 10u);
  EXPECT_EQ(server.memory_read(LockTableLayout::lock_addr(0)), 0u);  // released
  EXPECT_EQ(server.memory_read(LockTableLayout::version_addr(0)), 20u);  // 2 per cycle
  EXPECT_EQ(server.memory_read(LockTableLayout::data_a_addr(0)),
            server.memory_read(LockTableLayout::data_b_addr(0)));
}

TEST(AtomicLockTable, ContendedLockStaysMutualExclusive) {
  // Three lockers on one slot: the CAS spinlock must serialize them — the
  // winner count equals the cycle budget and contention shows up as CAS
  // failures, never as a lock left held or a torn a/b pair.
  StarTopology topo(4);
  LockTableWorkload::Options opts;
  opts.locks = 1;
  opts.think_mean = microseconds(10);
  opts.backoff_mean = microseconds(5);
  opts.seed = 11;
  opts.cycles = 8;
  LockTableWorkload wl(opts);
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  for (int i = 0; i < 3; ++i) {
    Host& h = *topo.hosts[i + 1];
    auto [qa, qb] = connect_qp_pair(h, *topo.hosts[0], QpConfig{});
    (void)qb;
    demuxes.push_back(std::make_unique<RdmaDemux>(h));
    wl.add_client(h, *demuxes.back(), qa, LockTableWorkload::Role::kLocker);
  }
  wl.start();
  topo.sim().run_until(milliseconds(50));

  EXPECT_EQ(wl.busy_clients(), 0);
  EXPECT_EQ(wl.acquisitions(), 24);
  EXPECT_EQ(wl.releases(), 24);
  auto& server = topo.hosts[0]->rdma();
  EXPECT_EQ(server.memory_read(LockTableLayout::lock_addr(0)), 0u);
  EXPECT_EQ(server.memory_read(LockTableLayout::version_addr(0)), 48u);
  EXPECT_EQ(server.memory_read(LockTableLayout::data_a_addr(0)), 24u);
  EXPECT_EQ(server.memory_read(LockTableLayout::data_b_addr(0)), 24u);
  EXPECT_EQ(wl.lock_latencies_us().count(), 24u);
}

/// Roster-determined totals of a compressed lock-table run on the 2-podset
/// Clos — everything here must be invariant across shard counts (and the
/// torn/failure split, which is tie-dependent, deliberately is not in it).
struct LockTableTotals {
  std::int64_t acq = 0, rel = 0, inc = 0, reads = 0, busy = 0;
  std::uint64_t counter_word = 0;
  std::uint64_t locks_held = 0;
  bool operator==(const LockTableTotals&) const = default;
};

LockTableTotals run_mini_locktable(int shards) {
  QosPolicy policy;
  policy.max_cable_m = 20.0;
  ClosParams params = make_clos_params(policy, DeploymentStage::kFull, /*podsets=*/2,
                                       /*leaves=*/2, /*tors=*/2, /*servers=*/2, /*spines=*/4);
  params.shards = shards;
  ClosFabric clos(params);
  Host& server = clos.server(0, 0, 0);

  LockTableWorkload::Options opts;
  opts.locks = 4;
  opts.think_mean = microseconds(30);
  opts.backoff_mean = microseconds(10);
  opts.seed = 2016;
  opts.cycles = 2;
  LockTableWorkload wl(opts);
  QpConfig qp = make_qp_config(policy);
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  int idx = 0;
  for (int ps = 0; ps < 2; ++ps) {
    for (int t = 0; t < 2; ++t) {
      for (int i = 0; i < 2; ++i) {
        Host& h = clos.server(ps, t, i);
        if (&h == &server) continue;
        // One demux per host: it owns the host's completion callback, and
        // the three clients hang their QPNs off it.
        demuxes.push_back(std::make_unique<RdmaDemux>(h));
        for (int k = 0; k < 3; ++k) {
          auto [qa, qb] = connect_qp_pair(h, server, qp);
          (void)qb;
          const auto role = static_cast<LockTableWorkload::Role>(idx++ % 3);
          wl.add_client(h, *demuxes.back(), qa, role);
        }
      }
    }
  }
  wl.start();
  clos.sim().run_until(milliseconds(10));

  LockTableTotals out;
  out.acq = wl.acquisitions();
  out.rel = wl.releases();
  out.inc = wl.counter_increments();
  out.reads = wl.reads();
  out.busy = wl.busy_clients();
  out.counter_word = server.rdma().memory_read(LockTableLayout::kCounterAddr);
  for (int i = 0; i < opts.locks; ++i) {
    out.locks_held += server.rdma().memory_read(LockTableLayout::lock_addr(i));
  }
  return out;
}

TEST(AtomicLockTable, RosterTotalsIdenticalAtShards1And2) {
  // 7 hosts x 3 clients, roles round-robin: 7 of each role, 2 cycles each.
  const LockTableTotals one = run_mini_locktable(1);
  EXPECT_EQ(one.busy, 0);
  EXPECT_EQ(one.acq, 14);
  EXPECT_EQ(one.rel, 14);
  EXPECT_EQ(one.inc, 14);
  EXPECT_EQ(one.reads, 14);
  EXPECT_EQ(one.counter_word, 14u);
  EXPECT_EQ(one.locks_held, 0u);
  const LockTableTotals two = run_mini_locktable(2);
  EXPECT_TRUE(one == two);
  const LockTableTotals again = run_mini_locktable(1);
  EXPECT_TRUE(one == again);
}

}  // namespace
}  // namespace rocelab
