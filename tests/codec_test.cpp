// E11 — the packet formats of Fig. 2/3, byte-exact.
#include <gtest/gtest.h>

#include "src/net/codec.h"

namespace rocelab {
namespace {

Packet sample_roce_packet(int priority = 3) {
  Packet pkt;
  pkt.kind = PacketKind::kRoceData;
  pkt.payload_bytes = 1024;
  pkt.frame_bytes = 1086;
  pkt.priority = priority;
  Ipv4Header ip;
  ip.src = Ipv4Addr::from_octets(10, 0, 0, 1);
  ip.dst = Ipv4Addr::from_octets(10, 0, 1, 2);
  ip.ttl = 64;
  ip.id = 0x1234;
  ip.ecn = Ecn::kEct0;
  pkt.ip = ip;
  pkt.udp = UdpHeader{51234, kRoceUdpPort, 0};
  RoceBth bth;
  bth.opcode = RoceOpcode::kSendMiddle;
  bth.dest_qp = 0x00abcd;
  bth.psn = 0x123456;
  bth.ack_request = true;
  pkt.bth = bth;
  return pkt;
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (IEEE 802.3).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32_ieee(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32_ieee(std::span<const std::uint8_t>{}), 0u);
}

TEST(Ipv4Checksum, RfcExample) {
  // Example header from RFC 1071 discussions: verify our checksum makes the
  // decoded header validate.
  Ipv4Header h;
  h.src = Ipv4Addr::from_octets(192, 168, 0, 1);
  h.dst = Ipv4Addr::from_octets(192, 168, 0, 199);
  h.total_length = 60;
  h.ttl = 64;
  h.protocol = kIpProtoUdp;
  Bytes out;
  encode_ipv4(h, out);
  ASSERT_EQ(out.size(), 20u);
  const auto decoded = decode_ipv4(out);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->src, h.src);
  EXPECT_EQ(decoded->dst, h.dst);
}

TEST(Ipv4Codec, CorruptChecksumRejected) {
  Ipv4Header h;
  h.src = Ipv4Addr::from_octets(1, 2, 3, 4);
  h.dst = Ipv4Addr::from_octets(5, 6, 7, 8);
  Bytes out;
  encode_ipv4(h, out);
  out[15] ^= 0xff;  // corrupt source address
  EXPECT_FALSE(decode_ipv4(out).has_value());
}

TEST(Ipv4Codec, DscpAndEcnRoundTrip) {
  for (int dscp = 0; dscp < 64; dscp += 9) {
    for (auto ecn : {Ecn::kNotEct, Ecn::kEct0, Ecn::kEct1, Ecn::kCe}) {
      Ipv4Header h;
      h.dscp = static_cast<std::uint8_t>(dscp);
      h.ecn = ecn;
      Bytes out;
      encode_ipv4(h, out);
      const auto d = decode_ipv4(out);
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->dscp, dscp);
      EXPECT_EQ(d->ecn, ecn);
    }
  }
}

TEST(EthernetCodec, UntaggedRoundTrip) {
  EthernetHeader h;
  h.dst = MacAddr::from_u64(0x020000000102);
  h.src = MacAddr::from_u64(0x020000000203);
  h.ethertype = kEtherTypeIpv4;
  Bytes out;
  encode_ethernet(h, out);
  EXPECT_EQ(out.size(), 14u);  // no VLAN tag
  const auto d = decode_ethernet(out);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->header, h);
  EXPECT_EQ(d->consumed, 14u);
}

TEST(EthernetCodec, VlanTaggedRoundTrip) {
  EthernetHeader h;
  h.dst = MacAddr::from_u64(1);
  h.src = MacAddr::from_u64(2);
  h.vlan = VlanTag{5, true, 0x123};
  h.ethertype = kEtherTypeIpv4;
  Bytes out;
  encode_ethernet(h, out);
  EXPECT_EQ(out.size(), 18u);  // 802.1Q adds 4 bytes
  // TPID must be 0x8100 at offset 12.
  EXPECT_EQ(out[12], 0x81);
  EXPECT_EQ(out[13], 0x00);
  const auto d = decode_ethernet(out);
  ASSERT_TRUE(d.has_value());
  ASSERT_TRUE(d->header.vlan.has_value());
  EXPECT_EQ(d->header.vlan->pcp, 5);
  EXPECT_TRUE(d->header.vlan->dei);
  EXPECT_EQ(d->header.vlan->vid, 0x123);
}

TEST(EthernetCodec, TruncatedRejected) {
  Bytes tiny(10, 0);
  EXPECT_FALSE(decode_ethernet(tiny).has_value());
}

TEST(BthCodec, RoundTrip) {
  RoceBth h;
  h.opcode = RoceOpcode::kReadResponseLast;
  h.dest_qp = 0x00fedc;
  h.psn = 0x00abcdef & 0x00ffffff;
  h.ack_request = true;
  Bytes out;
  encode_bth(h, out);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kBthBytes));
  const auto d = decode_bth(out);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->opcode, h.opcode);
  EXPECT_EQ(d->dest_qp, h.dest_qp);
  EXPECT_EQ(d->psn, h.psn);
  EXPECT_TRUE(d->ack_request);
}

TEST(AethCodec, RoundTrip) {
  for (auto syn : {AethSyndrome::kAck, AethSyndrome::kNakPsnSequenceError}) {
    RoceAeth h{syn, 0x00123456};
    Bytes out;
    encode_aeth(h, out);
    EXPECT_EQ(out.size(), static_cast<std::size_t>(kAethBytes));
    const auto d = decode_aeth(out);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->syndrome, syn);
    EXPECT_EQ(d->msn, h.msn);
  }
}

// --- the PFC pause frame (identical in both Fig. 3 designs) -----------------

TEST(PfcFrame, GoldenLayout) {
  PfcFrame pfc;
  pfc.set(3, 0xffff);
  const Bytes frame = encode_pfc_frame(pfc, MacAddr::from_u64(0x020000000001));
  ASSERT_EQ(frame.size(), 64u);  // minimum Ethernet frame
  // Destination: reserved multicast 01:80:C2:00:00:01.
  EXPECT_EQ(frame[0], 0x01);
  EXPECT_EQ(frame[1], 0x80);
  EXPECT_EQ(frame[2], 0xc2);
  EXPECT_EQ(frame[5], 0x01);
  // EtherType 0x8808 (MAC control), opcode 0x0101 (PFC).
  EXPECT_EQ(frame[12], 0x88);
  EXPECT_EQ(frame[13], 0x08);
  EXPECT_EQ(frame[14], 0x01);
  EXPECT_EQ(frame[15], 0x01);
  // Class-enable vector has only bit 3.
  EXPECT_EQ(frame[16], 0x00);
  EXPECT_EQ(frame[17], 0x08);
  // Quanta for priority 3 at offset 18 + 3*2.
  EXPECT_EQ(frame[24], 0xff);
  EXPECT_EQ(frame[25], 0xff);
}

TEST(PfcFrame, NeverVlanTagged) {
  // §3's key observation: pause frames carry no VLAN tag in either design.
  PfcFrame pfc;
  pfc.set(0, 1);
  const Bytes frame = encode_pfc_frame(pfc, MacAddr::from_u64(7));
  const auto eth = decode_ethernet(frame);
  ASSERT_TRUE(eth.has_value());
  EXPECT_FALSE(eth->header.vlan.has_value());
}

TEST(PfcFrame, RoundTripAllPriorities) {
  PfcFrame pfc;
  for (int p = 0; p < 8; ++p) {
    if (p % 2 == 0) pfc.set(p, static_cast<std::uint16_t>(p * 1000 + 1));
  }
  const Bytes frame = encode_pfc_frame(pfc, MacAddr::from_u64(9));
  const auto d = decode_pfc_frame(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, pfc);
}

TEST(PfcFrame, CorruptFcsRejected) {
  PfcFrame pfc;
  pfc.set(4, 100);
  Bytes frame = encode_pfc_frame(pfc, MacAddr::from_u64(9));
  frame[20] ^= 0x01;
  EXPECT_FALSE(decode_pfc_frame(frame).has_value());
}

TEST(PfcFrame, WrongSizeRejected) {
  Bytes frame(63, 0);
  EXPECT_FALSE(decode_pfc_frame(frame).has_value());
}

// --- VLAN-based vs DSCP-based data packets (Fig. 3a vs 3b) -------------------

TEST(RoceFrame, DscpModeIsUntaggedAndCarriesPriorityInDscp) {
  const Packet pkt = sample_roce_packet(4);
  const Bytes frame = encode_roce_frame(pkt, PfcMode::kDscpBased);
  EXPECT_EQ(frame.size(), 1086u);  // the Fig. 7 frame size, exactly
  const auto d = decode_roce_frame(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->eth.vlan.has_value());
  EXPECT_EQ(d->ip.dscp, 4);
  EXPECT_TRUE(d->fcs_ok);
  EXPECT_EQ(d->payload_bytes, 1024u);
  EXPECT_EQ(d->udp.dst_port, kRoceUdpPort);
}

TEST(RoceFrame, VlanModeIsTaggedAndCarriesPriorityInPcp) {
  const Packet pkt = sample_roce_packet(4);
  const Bytes frame = encode_roce_frame(pkt, PfcMode::kVlanBased);
  EXPECT_EQ(frame.size(), 1090u);  // +4 bytes of 802.1Q tag
  const auto d = decode_roce_frame(frame);
  ASSERT_TRUE(d.has_value());
  ASSERT_TRUE(d->eth.vlan.has_value());
  EXPECT_EQ(d->eth.vlan->pcp, 4);
  EXPECT_TRUE(d->fcs_ok);
}

TEST(RoceFrame, TransportFieldsSurvive) {
  const Packet pkt = sample_roce_packet();
  const auto d = decode_roce_frame(encode_roce_frame(pkt, PfcMode::kDscpBased));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->bth.opcode, RoceOpcode::kSendMiddle);
  EXPECT_EQ(d->bth.dest_qp, 0x00abcdu);
  EXPECT_EQ(d->bth.psn, 0x123456u);
  EXPECT_TRUE(d->bth.ack_request);
  EXPECT_EQ(d->ip.id, 0x1234);
}

TEST(RoceFrame, BitFlipBreaksFcs) {
  Bytes frame = encode_roce_frame(sample_roce_packet(), PfcMode::kDscpBased);
  frame[100] ^= 0x40;
  const auto d = decode_roce_frame(frame);
  // The IP checksum may or may not catch it depending on offset; the FCS
  // always does.
  if (d.has_value()) {
    EXPECT_FALSE(d->fcs_ok);
  }
}

class RoceFramePriorities : public ::testing::TestWithParam<int> {};

TEST_P(RoceFramePriorities, PriorityPlacementPerMode) {
  const int prio = GetParam();
  const Packet pkt = sample_roce_packet(prio);
  const auto dscp = decode_roce_frame(encode_roce_frame(pkt, PfcMode::kDscpBased));
  const auto vlan = decode_roce_frame(encode_roce_frame(pkt, PfcMode::kVlanBased));
  ASSERT_TRUE(dscp.has_value());
  ASSERT_TRUE(vlan.has_value());
  EXPECT_EQ(dscp->ip.dscp, prio);
  EXPECT_EQ(vlan->eth.vlan->pcp, prio);
}

INSTANTIATE_TEST_SUITE_P(AllPriorities, RoceFramePriorities, ::testing::Range(0, 8));

// --- the end-to-end invariant CRC (§5.2) -------------------------------------

TEST(Crc32, MoreKnownVectors) {
  // Further IEEE 802.3 (reflected, poly 0xEDB88320) known answers.
  const std::uint8_t a[] = {'a'};
  EXPECT_EQ(crc32_ieee(a), 0xE8B7BE43u);
  const std::uint8_t abc[] = {'a', 'b', 'c'};
  EXPECT_EQ(crc32_ieee(abc), 0x352441C2u);
  const std::uint8_t ff[] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(crc32_ieee(ff), 0xFFFFFFFFu);
}

TEST(RoceIcrc, DeterministicOverBthAndPayload) {
  RoceBth bth;
  bth.opcode = RoceOpcode::kSendMiddle;
  bth.dest_qp = 0x00abcd;
  bth.psn = 0x000042;
  const std::uint8_t payload[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint32_t icrc = roce_icrc(bth, payload);
  EXPECT_EQ(roce_icrc(bth, payload), icrc);  // pure function of its inputs
  // The BTH is covered: any transport-field change moves the ICRC.
  RoceBth other = bth;
  other.psn = 0x000043;
  EXPECT_NE(roce_icrc(other, payload), icrc);
  other = bth;
  other.dest_qp = 0x00abce;
  EXPECT_NE(roce_icrc(other, payload), icrc);
}

TEST(RoceIcrc, EverySingleBitFlipDetected) {
  // CRC-32 detects all single-bit errors; walk every payload bit.
  RoceBth bth;
  bth.opcode = RoceOpcode::kSendMiddle;
  std::uint8_t payload[16] = {0xde, 0xad, 0xbe, 0xef, 0, 1, 2, 3,
                              4,    5,    6,    7,    8, 9, 10, 11};
  const std::uint32_t icrc = roce_icrc(bth, payload);
  for (std::size_t byte = 0; byte < sizeof payload; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      payload[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(roce_icrc(bth, payload), icrc) << "byte " << byte << " bit " << bit;
      payload[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
  EXPECT_EQ(roce_icrc(bth, payload), icrc);  // restored payload restores it
}

TEST(RoceFrame, IcrcOkOnCleanFrame) {
  for (auto mode : {PfcMode::kDscpBased, PfcMode::kVlanBased}) {
    const auto d = decode_roce_frame(encode_roce_frame(sample_roce_packet(), mode));
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->fcs_ok);
    EXPECT_TRUE(d->icrc_ok);
  }
}

TEST(RoceFrame, EscapedFcsCorruptionStillFailsIcrc) {
  // The §5.2 escape path: a payload bit flips AND the per-hop FCS happens
  // to pass (modeled by forging a valid FCS over the damaged frame). The
  // end-to-end ICRC must still catch it.
  Bytes frame = encode_roce_frame(sample_roce_packet(), PfcMode::kDscpBased);
  frame[200] ^= 0x01;  // payload region (starts at byte 54 in DSCP mode)
  const std::uint32_t fcs =
      crc32_ieee(std::span<const std::uint8_t>(frame.data(), frame.size() - 4));
  frame[frame.size() - 4] = static_cast<std::uint8_t>(fcs >> 24);
  frame[frame.size() - 3] = static_cast<std::uint8_t>(fcs >> 16);
  frame[frame.size() - 2] = static_cast<std::uint8_t>(fcs >> 8);
  frame[frame.size() - 1] = static_cast<std::uint8_t>(fcs);
  const auto d = decode_roce_frame(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->fcs_ok);    // the link-level check was fooled...
  EXPECT_FALSE(d->icrc_ok);  // ...the invariant CRC was not
}

TEST(RoceFrame, FlipAnywhereInInvariantRegionFailsIcrc) {
  // IP header, UDP header, BTH, payload: all inside the ICRC's coverage.
  const Bytes clean = encode_roce_frame(sample_roce_packet(), PfcMode::kDscpBased);
  for (const std::size_t off :
       std::vector<std::size_t>{15, 36, 44, 54, 600, clean.size() - 9}) {
    Bytes frame = clean;
    frame[off] ^= 0x10;
    const auto d = decode_roce_frame(frame);
    if (d.has_value()) {  // an IP-checksum hit rejects the frame outright
      EXPECT_FALSE(d->icrc_ok) << "offset " << off;
    }
  }
}

TEST(RoceFrame, StoredIcrcFlipFailsBothChecks) {
  // Damaging the stored ICRC itself breaks the ICRC compare and (because
  // the FCS covers the ICRC bytes) the frame check too.
  Bytes frame = encode_roce_frame(sample_roce_packet(), PfcMode::kDscpBased);
  frame[frame.size() - 8] ^= 0xff;
  const auto d = decode_roce_frame(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->fcs_ok);
  EXPECT_FALSE(d->icrc_ok);
}

TEST(RoceFrame, TruncationRejectedNotMisread) {
  // fcs_ok edge case: a frame cut below headers + ICRC + FCS must decode to
  // nullopt, never to a "valid" frame with a garbage checksum verdict.
  const Bytes clean = encode_roce_frame(sample_roce_packet(), PfcMode::kDscpBased);
  const Bytes cut(clean.begin(), clean.begin() + 58);  // headers + 4 bytes
  EXPECT_FALSE(decode_roce_frame(cut).has_value());
}

TEST(FrameSizes, PaperConstants) {
  EXPECT_EQ(kRoceDataOverheadBytes, 62);
  EXPECT_EQ(kRoceDataOverheadBytes + 1024, 1086);  // Fig. 7 frame
}

}  // namespace
}  // namespace rocelab
