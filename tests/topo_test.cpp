// Clos builder invariants and ECMP flow-level analysis.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/rocev2/deployment.h"
#include "src/topo/clos.h"
#include "src/topo/ecmp_analysis.h"

namespace rocelab {
namespace {

ClosParams small_clos() {
  QosPolicy policy;
  policy.max_cable_m = 20.0;
  return make_clos_params(policy, DeploymentStage::kFull, /*podsets=*/2, /*leaves=*/2,
                          /*tors=*/2, /*servers=*/2, /*spines=*/4);
}

TEST(Clos, BuilderCountsAndWiring) {
  ClosFabric clos(small_clos());
  EXPECT_EQ(clos.num_servers(), 8);
  EXPECT_EQ(clos.fabric().hosts().size(), 8u);
  // 2 podsets x (2 ToRs + 2 leaves) + 4 spines = 12 switches.
  EXPECT_EQ(clos.fabric().switches().size(), 12u);
  // Every ToR: 2 server ports + 2 uplinks, all wired.
  for (int ps = 0; ps < 2; ++ps) {
    for (int t = 0; t < 2; ++t) {
      Switch& tor = clos.tor(ps, t);
      EXPECT_EQ(tor.port_count(), 4);
      for (int p = 0; p < 4; ++p) EXPECT_TRUE(tor.port(p).connected());
      EXPECT_EQ(tor.port_role(0), PortRole::kServerFacing);
      EXPECT_EQ(tor.port_role(2), PortRole::kFabric);
    }
  }
  // Spines have one port per podset.
  EXPECT_EQ(clos.spine(0).port_count(), 2);
  EXPECT_EQ(clos.leaf_spine_ports().size(), 2u * 2 * 2);  // podsets x leaves x spl
}

TEST(Clos, ServerIpScheme) {
  ClosFabric clos(small_clos());
  EXPECT_EQ(clos.server(1, 0, 1).ip(), Ipv4Addr::from_octets(10, 1, 0, 2));
  EXPECT_EQ(ClosFabric::server_ip(0, 3, 0), Ipv4Addr::from_octets(10, 0, 3, 1));
}

TEST(Clos, InvalidSpineDivisibilityThrows) {
  ClosParams p = small_clos();
  p.spines = 5;  // not divisible by leaves_per_podset=2
  EXPECT_THROW(ClosFabric{p}, std::invalid_argument);
}

TEST(Clos, AllPairsReachableAcrossPodsets) {
  ClosFabric clos(small_clos());
  QpConfig qp;
  qp.dcqcn = false;
  int expected = 0;
  for (int t = 0; t < 2; ++t) {
    for (int s = 0; s < 2; ++s) {
      Host& a = clos.server(0, t, s);
      Host& b = clos.server(1, 1 - t, 1 - s);  // cross podset, different indices
      auto [qa, qb] = connect_qp_pair(a, b, qp);
      (void)qb;
      a.rdma().post_send(qa, 4096, static_cast<std::uint64_t>(++expected));
      }
  }
  clos.sim().run_until(milliseconds(5));
  std::int64_t received = 0;
  for (const auto& h : clos.fabric().hosts()) {
    received += h->rdma().stats().messages_received;
  }
  EXPECT_EQ(received, expected);
}

TEST(Clos, IntraPodsetTrafficStaysBelowSpines) {
  ClosFabric clos(small_clos());
  QpConfig qp;
  qp.dcqcn = false;
  // ToR 0 -> ToR 1 within podset 0: up-down via a leaf, never a spine.
  auto [qa, qb] = connect_qp_pair(clos.server(0, 0, 0), clos.server(0, 1, 0), qp);
  (void)qb;
  clos.server(0, 0, 0).rdma().post_send(qa, 64 * 1024, 1);
  clos.sim().run_until(milliseconds(2));
  EXPECT_EQ(clos.server(0, 1, 0).rdma().stats().messages_received, 1);
  for (int s = 0; s < 4; ++s) {
    for (int p = 0; p < clos.spine(s).port_count(); ++p) {
      for (int pg = 0; pg < kNumPriorities; ++pg) {
        EXPECT_EQ(clos.spine(s).port(p).counters().tx_packets[static_cast<std::size_t>(pg)], 0);
      }
    }
  }
}

TEST(Clos, SameTorTrafficStaysLocal) {
  ClosFabric clos(small_clos());
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(clos.server(0, 0, 0), clos.server(0, 0, 1), qp);
  (void)qb;
  clos.server(0, 0, 0).rdma().post_send(qa, 16 * 1024, 1);
  clos.sim().run_until(milliseconds(1));
  EXPECT_EQ(clos.server(0, 0, 1).rdma().stats().messages_received, 1);
  // Leaf saw nothing.
  for (int l = 0; l < 2; ++l) {
    EXPECT_EQ(clos.leaf(0, l).port(0).counters().tx_packets[3], 0);
  }
}

TEST(Clos, TwoTierFabricWithoutSpines) {
  QosPolicy policy;
  ClosParams p = make_clos_params(policy, DeploymentStage::kFull, 1, 4, 2, 4, 0);
  ClosFabric clos(p);
  EXPECT_EQ(clos.fabric().switches().size(), 6u);  // 2 ToRs + 4 leaves
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(clos.server(0, 0, 0), clos.server(0, 1, 3), qp);
  (void)qb;
  clos.server(0, 0, 0).rdma().post_send(qa, 32 * 1024, 1);
  clos.sim().run_until(milliseconds(2));
  EXPECT_EQ(clos.server(0, 1, 3).rdma().stats().messages_received, 1);
}

TEST(Clos, KillHostExpiresMacButKeepsArp) {
  ClosFabric clos(small_clos());
  Host& victim = clos.server(0, 0, 0);
  Switch& tor = clos.tor(0, 0);
  clos.fabric().kill_host(victim);
  EXPECT_FALSE(tor.mac_table().lookup(victim.mac(), clos.sim().now()).has_value());
  EXPECT_TRUE(tor.arp_table().lookup(victim.ip(), clos.sim().now()).has_value());
}

// --- flow-level ECMP analysis ---------------------------------------------------

TEST(MaxMin, SingleLinkEqualShare) {
  const auto rates = max_min_rates({{0}, {0}, {0}, {0}}, {40.0});
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 10.0);
}

TEST(MaxMin, BottleneckRespectedAndWorkConserving) {
  // Flow 0 crosses both links; flow 1 only link 1 (cap 10).
  const auto rates = max_min_rates({{0, 1}, {1}}, {40.0, 10.0});
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(MaxMin, UnequalBottlenecksRedistribute) {
  // Link 0 cap 40 shared by flows {0,1}; flow 1 also limited by link 1 cap 4.
  const auto rates = max_min_rates({{0}, {0, 1}}, {40.0, 4.0});
  EXPECT_DOUBLE_EQ(rates[1], 4.0);
  EXPECT_DOUBLE_EQ(rates[0], 36.0);  // max-min reclaims the slack
}

TEST(MaxMin, NoLinksMeansZeroRate) {
  const auto rates = max_min_rates({{}}, {});
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
}

TEST(BottleneckShare, DoesNotRedistribute) {
  const auto rates = bottleneck_share_rates({{0}, {0, 1}}, {40.0, 4.0});
  EXPECT_DOUBLE_EQ(rates[0], 20.0);  // equal share of link 0, no reclaim
  EXPECT_DOUBLE_EQ(rates[1], 4.0);
}

TEST(EcmpAnalysis, CapacityLinkAndConnectionCounts) {
  EcmpAnalysisParams p;
  const auto r = analyze_clos_ecmp(p);
  EXPECT_EQ(r.total_connections, 2 * 24 * 8 * 8);  // 3072, paper says 3074
  EXPECT_NEAR(r.capacity_gbps, 5120.0, 1.0);       // 128 x 40G
  EXPECT_GT(r.max_leaf_spine_flows, r.min_leaf_spine_flows);
}

TEST(EcmpAnalysis, UtilizationNearPaper60Percent) {
  double total = 0;
  for (int seed = 1; seed <= 5; ++seed) {
    EcmpAnalysisParams p;
    p.seed = static_cast<std::uint64_t>(seed);
    total += analyze_clos_ecmp(p).utilization;
  }
  const double mean = total / 5;
  EXPECT_GT(mean, 0.45);
  EXPECT_LT(mean, 0.80);
}

TEST(EcmpAnalysis, OrderingOfModels) {
  EcmpAnalysisParams p;
  const auto r = analyze_clos_ecmp(p);
  // uniform <= bottleneck-share <= max-min <= capacity.
  EXPECT_LE(r.aggregate_gbps, r.aggregate_bottleneck_gbps + 1e-6);
  EXPECT_LE(r.aggregate_bottleneck_gbps, r.aggregate_maxmin_gbps + 1e-6);
  EXPECT_LE(r.aggregate_maxmin_gbps, r.capacity_gbps + 1e-6);
}

TEST(EcmpAnalysis, UnidirectionalHalvesEverything) {
  EcmpAnalysisParams p;
  p.bidirectional = false;
  const auto r = analyze_clos_ecmp(p);
  EXPECT_EQ(r.total_connections, 24 * 8 * 8);
  EXPECT_NEAR(r.capacity_gbps, 2560.0, 1.0);
}

}  // namespace
}  // namespace rocelab
