// Cross-module integration scenarios: the paper's safety incidents at test
// scale, staged deployment, and RDMA/TCP coexistence on a Clos fabric.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/monitor/monitor.h"
#include "src/rocev2/deployment.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

TEST(Integration, PfcDeadlockFormsWithFloodingAndNotWithFix) {
  // Compressed version of the Fig. 4 scenario (see bench/fig_deadlock.cpp
  // for the full reproduction with the paper's exact port map).
  for (ArpIncompletePolicy policy :
       {ArpIncompletePolicy::kFlood, ArpIncompletePolicy::kDropLossless}) {
    Fabric fabric;
    SwitchConfig cfg;
    cfg.lossless[3] = true;
    cfg.arp_policy = policy;
    auto& t0 = fabric.add_switch("T0", cfg, 4);
    auto& t1 = fabric.add_switch("T1", cfg, 7);
    auto& la = fabric.add_switch("La", cfg, 2);
    auto& lb = fabric.add_switch("Lb", cfg, 2);
    HostConfig hc;
    hc.lossless[3] = true;
    auto mk = [&](const char* n, std::uint8_t c, std::uint8_t d) -> Host& {
      auto& h = fabric.add_host(n, hc);
      h.set_ip(Ipv4Addr::from_octets(10, 0, c, d));
      return h;
    };
    Host& s1 = mk("S1", 0, 1);
    Host& s2 = mk("S2", 0, 2);
    Host& s3 = mk("S3", 1, 1);
    Host& s4 = mk("S4", 1, 2);
    Host& s5 = mk("S5", 1, 3);
    Host& s6 = mk("S6", 1, 4);
    Host& s7 = mk("S7", 1, 5);
    const Time c2 = propagation_delay_for_meters(2);
    t0.add_local_subnet({Ipv4Addr::from_octets(10, 0, 0, 0), 24});
    t1.add_local_subnet({Ipv4Addr::from_octets(10, 0, 1, 0), 24});
    fabric.attach_host(s1, t0, 0, gbps(40), c2);
    fabric.attach_host(s2, t0, 1, gbps(40), c2);
    fabric.attach_host(s3, t1, 0, gbps(40), c2);
    fabric.attach_host(s4, t1, 1, gbps(40), c2);
    fabric.attach_host(s5, t1, 2, gbps(40), c2);
    fabric.attach_host(s6, t1, 5, gbps(40), c2);
    fabric.attach_host(s7, t1, 6, gbps(40), c2);
    fabric.attach_switches(t0, 2, la, 0, gbps(40), c2);
    fabric.attach_switches(t0, 3, lb, 0, gbps(40), c2);
    fabric.attach_switches(t1, 3, la, 1, gbps(40), c2);
    fabric.attach_switches(t1, 4, lb, 1, gbps(40), c2);
    t0.add_route({Ipv4Addr::from_octets(10, 0, 1, 0), 24}, {2});
    t1.add_route({Ipv4Addr::from_octets(10, 0, 0, 0), 24}, {4});
    la.add_route({Ipv4Addr::from_octets(10, 0, 0, 0), 24}, {0});
    la.add_route({Ipv4Addr::from_octets(10, 0, 1, 0), 24}, {1});
    lb.add_route({Ipv4Addr::from_octets(10, 0, 0, 0), 24}, {0});
    lb.add_route({Ipv4Addr::from_octets(10, 0, 1, 0), 24}, {1});
    fabric.kill_host(s2);
    fabric.kill_host(s3);

    QpConfig dead_cfg;
    dead_cfg.dcqcn = false;
    dead_cfg.retx_timeout = microseconds(100);
    QpConfig live_cfg;
    live_cfg.dcqcn = false;
    auto [purple, x0] = connect_qp_pair(s1, s3, dead_cfg);
    auto [black, x1] = connect_qp_pair(s1, s5, live_cfg);
    auto [blue, x2] = connect_qp_pair(s4, s2, dead_cfg);
    auto [i6, x3] = connect_qp_pair(s6, s5, live_cfg);
    auto [i7, x4] = connect_qp_pair(s7, s5, live_cfg);
    (void)x0; (void)x1; (void)x2; (void)x3; (void)x4;
    RdmaDemux d1(s1), d4(s4), d6(s6), d7(s7);
    RdmaStreamSource sp(s1, d1, purple, {.message_bytes = 16 * kMiB, .max_outstanding = 1});
    RdmaStreamSource sb(s1, d1, black, {.message_bytes = 1 * kMiB, .max_outstanding = 1});
    RdmaStreamSource su(s4, d4, blue, {.message_bytes = 16 * kMiB, .max_outstanding = 1});
    RdmaStreamSource s6s(s6, d6, i6, {.message_bytes = 1 * kMiB, .max_outstanding = 2});
    RdmaStreamSource s7s(s7, d7, i7, {.message_bytes = 1 * kMiB, .max_outstanding = 2});
    sp.start(); sb.start(); su.start(); s6s.start(); s7s.start();

    fabric.sim().run_until(milliseconds(80));
    std::vector<Switch*> switches{&t0, &t1, &la, &lb};
    const auto report = detect_pfc_deadlock(switches);
    if (policy == ArpIncompletePolicy::kFlood) {
      EXPECT_TRUE(report.deadlocked);
      EXPECT_GE(report.cycle.size(), 4u);
    } else {
      EXPECT_FALSE(report.deadlocked);
    }
  }
}

TEST(Integration, StormConfinedByBothWatchdogs) {
  QosPolicy policy;
  policy.nic_watchdog = true;
  policy.switch_watchdog = true;
  ClosParams params = make_clos_params(policy, DeploymentStage::kFull, 1, 2, 2, 2, 0);
  // Speed the watchdogs up for a compact test.
  params.tor_config.watchdog.check_interval = milliseconds(1);
  params.tor_config.watchdog.trigger_after = milliseconds(5);
  params.tor_config.watchdog.reenable_after = milliseconds(10);
  params.host_config.watchdog.check_interval = milliseconds(1);
  params.host_config.watchdog.trigger_after = milliseconds(5);
  ClosFabric clos(params);

  Host& victim = clos.server(0, 0, 0);
  Host& a = clos.server(0, 0, 1);
  Host& b = clos.server(0, 1, 1);
  QpConfig qp = make_qp_config(policy);
  auto [qa, qb] = connect_qp_pair(a, b, qp);
  (void)qb;
  RdmaDemux demux(a);
  RdmaStreamSource innocent(a, demux, qa, {.message_bytes = 64 * kKiB, .max_outstanding = 2});
  innocent.start();
  // Traffic into the victim so its ToR port backs up.
  auto [qv, qv2] = connect_qp_pair(b, victim, qp);
  (void)qv2;
  b.rdma().post_send(qv, 1 * kMiB, 1);

  victim.set_storm_mode(true);
  clos.sim().run_until(milliseconds(50));

  EXPECT_GE(victim.watchdog_trips() + clos.tor(0, 0).watchdog_trips(), 1);
  // The innocent flow kept going (storm confined).
  const auto completed_mid = innocent.completed_messages();
  clos.sim().run_until(milliseconds(60));
  EXPECT_GT(innocent.completed_messages(), completed_mid);
}

TEST(Integration, StagedDeploymentTorOnlyKeepsFabricLossy) {
  QosPolicy policy;
  ClosParams params = make_clos_params(policy, DeploymentStage::kTorOnly, 1, 2, 2, 2, 0);
  ClosFabric clos(params);
  // RDMA still works (it does not REQUIRE lossless to deliver, only to
  // guarantee no congestion drops).
  QpConfig qp = make_qp_config(policy);
  auto [qa, qb] = connect_qp_pair(clos.server(0, 0, 0), clos.server(0, 1, 0), qp);
  (void)qb;
  clos.server(0, 0, 0).rdma().post_send(qa, 64 * 1024, 1);
  clos.sim().run_until(milliseconds(5));
  EXPECT_EQ(clos.server(0, 1, 0).rdma().stats().messages_received, 1);
  // Leaves are lossy at this stage: they never generate PFC.
  for (int l = 0; l < 2; ++l) {
    for (int p = 0; p < clos.leaf(0, l).port_count(); ++p) {
      EXPECT_EQ(clos.leaf(0, l).port(p).counters().total_tx_pause(), 0);
    }
  }
}

TEST(Integration, PingmeshMeasuresAcrossClos) {
  QosPolicy policy;
  ClosParams params = make_clos_params(policy, DeploymentStage::kFull, 2, 2, 2, 2, 4);
  ClosFabric clos(params);
  Host& a = clos.server(0, 0, 0);
  Host& b = clos.server(1, 1, 1);
  RdmaDemux da(a), db(b);
  auto [pq, tq] = connect_qp_pair(a, b, make_qp_config(policy));
  RdmaEchoServer echo(b, db, tq, 512);
  RdmaPingmesh ping(a, da, {pq},
                    RdmaPingmesh::Options{.probe_bytes = 512, .interval = microseconds(100),
                                          .timeout = milliseconds(10)});
  ping.start();
  clos.sim().run_until(milliseconds(5));
  EXPECT_GT(ping.rtt_us().count(), 30u);
  EXPECT_EQ(ping.probes_failed(), 0);
  // Five hops each way at short cables: a handful of microseconds.
  EXPECT_LT(ping.rtt_us().percentile(99), 50.0);
}

TEST(Integration, IncastClientCompletesQueries) {
  QosPolicy policy;
  ClosParams params = make_clos_params(policy, DeploymentStage::kFull, 1, 2, 2, 4, 0);
  ClosFabric clos(params);
  Host& client = clos.server(0, 0, 0);
  RdmaDemux dc(client);
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  std::vector<std::unique_ptr<RdmaEchoServer>> echoes;
  std::vector<std::uint32_t> qpns;
  for (int s = 0; s < 4; ++s) {
    Host& server = clos.server(0, 1, s);
    auto [cq, sq] = connect_qp_pair(client, server, make_qp_config(policy));
    demuxes.push_back(std::make_unique<RdmaDemux>(server));
    echoes.push_back(std::make_unique<RdmaEchoServer>(server, *demuxes.back(), sq, 8 * kKiB));
    qpns.push_back(cq);
  }
  RdmaIncastClient incast(client, dc, qpns,
                          RdmaIncastClient::Options{.request_bytes = 512,
                                                    .mean_interval = 0,  // closed loop
                                                    .stop_after_queries = 50});
  incast.start();
  clos.sim().run_until(milliseconds(20));
  EXPECT_EQ(incast.queries_completed(), 50);
  EXPECT_GT(incast.query_latencies_us().percentile(50), 0);
}

TEST(Integration, VlanModeFabricStillDelivers) {
  // §3: the original VLAN-based PFC works (it just doesn't scale
  // operationally) — the simulator supports it for comparison.
  SwitchConfig cfg = testing::basic_switch_config();
  cfg.classify_mode = ClassifyMode::kVlanPcp;
  HostConfig hc = testing::basic_host_config();
  hc.vlan_id = 7;  // the VLAN deployment: NIC tags frames with the PCP
  testing::StarTopology topo(2, cfg, hc);
  topo.sw().set_port_l2_mode(0, L2PortMode::kTrunk);
  topo.sw().set_port_l2_mode(1, L2PortMode::kTrunk);
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 16 * 1024, 1);
  topo.sim().run_until(milliseconds(1));
  // RDMA traffic classified by PCP into the lossless class and delivered.
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 1);
  EXPECT_GT(topo.sw().port(1).counters().tx_packets[3], 0);
}

}  // namespace
}  // namespace rocelab
