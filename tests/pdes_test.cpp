// Pod-partitioned PDES: determinism, lookahead enforcement, cross-shard
// event routing, and the queue-health metric plane.
//
// The determinism contract under test: for a FIXED shard count, reruns of
// the same workload are byte-identical (same counters digest, same executed
// event count, same chaos journal hash). Different shard counts may order
// same-timestamp events differently and are not required to agree with each
// other — but each count must agree with itself, and one shard must be the
// classic single-threaded core (control lane aliased to shard 0).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/exp/harness.h"
#include "src/faults/chaos.h"
#include "src/link/impairment.h"
#include "src/monitor/digest.h"
#include "src/monitor/metric_registry.h"
#include "src/rocev2/deployment.h"
#include "src/sim/shard_group.h"
#include "src/sim/simulator.h"
#include "src/topo/clos.h"

namespace rocelab {
namespace {

struct MiniRun {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t journal = 0;
  std::int64_t cross_msgs = 0;
  std::int64_t windows = 0;
  std::int64_t corrupt_delivered = 0;
};

/// A 4-podset ring workload on a minimal 3-tier Clos, optionally with two
/// journalled chaos faults. Every stream crosses a podset boundary, so at
/// shards > 1 every data/ACK frame exercises the cross-shard channels.
MiniRun run_mini(int shards, bool with_chaos, bool with_corruption = false) {
  QosPolicy policy;
  ClosParams p = make_clos_params(policy, DeploymentStage::kFull, /*podsets=*/4,
                                  /*leaves=*/1, /*tors=*/1, /*servers=*/2, /*spines=*/2);
  p.shards = shards;
  ClosFabric clos(p);

  exp::TrafficSet traffic;
  for (int ps = 0; ps < 4; ++ps) {
    traffic.add_streams(clos.server(ps, 0, 0), clos.server((ps + 1) % 4, 0, 1),
                        make_qp_config(policy),
                        RdmaStreamSource::Options{.message_bytes = 8 * kKiB, .max_outstanding = 2});
  }

  std::unique_ptr<ChaosEngine> chaos;
  if (with_chaos) {
    chaos = std::make_unique<ChaosEngine>(clos.fabric(), /*seed=*/7);
    LinkImpairment lossy;
    lossy.fcs_drop_rate = 0.01;
    lossy.seed = 5;
    chaos->impair_link(clos.leaf(0, 0), /*port=*/0, lossy, microseconds(50), microseconds(400));
    LinkImpairment bh;
    bh.blackhole = true;
    chaos->impair_link(clos.tor(1, 0), /*port=*/2, bh, microseconds(100), microseconds(300));
  }
  if (with_corruption) {
    // §5.2 delivered corruption on a podset-boundary hop: the corrupted
    // frames ride the cross-shard channels as kDeliverCorrupt, so the
    // receiving port's corrupt_delivered bump happens on the peer's shard.
    LinkImpairment corrupt;
    corrupt.corrupt_deliver_rate = 0.05;
    corrupt.escape_fcs_frac = 1.0;
    corrupt.seed = 11;
    clos.leaf(0, 0).port(1).set_impairment(corrupt);  // first uplink, to a spine
    clos.spine(0).port(1).set_impairment(corrupt);    // down into podset 1
  }

  clos.sim().run_until(microseconds(500));

  MiniRun r;
  r.digest = counters_digest(clos.fabric());
  r.events = clos.fabric().group().executed_events();
  r.journal = chaos ? chaos->journal_hash() : 0;
  r.cross_msgs = clos.fabric().group().cross_messages();
  r.windows = clos.fabric().group().windows();
  r.corrupt_delivered = clos.sim().metrics().sum("*/port*/corrupt_delivered");
  return r;
}

TEST(PdesDeterminism, OneShardRerunByteIdentical) {
  const MiniRun a = run_mini(1, false);
  const MiniRun b = run_mini(1, false);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  // One shard is the classic core: no windows, no channel traffic.
  EXPECT_EQ(a.windows, 0);
  EXPECT_EQ(a.cross_msgs, 0);
}

TEST(PdesDeterminism, TwoShardRerunByteIdentical) {
  const MiniRun a = run_mini(2, false);
  const MiniRun b = run_mini(2, false);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.cross_msgs, b.cross_msgs);
  EXPECT_GT(a.windows, 0);
  EXPECT_GT(a.cross_msgs, 0);  // the ring traffic really crossed shards
}

TEST(PdesDeterminism, FourShardRerunByteIdentical) {
  const MiniRun a = run_mini(4, false);
  const MiniRun b = run_mini(4, false);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.cross_msgs, b.cross_msgs);
  EXPECT_GT(a.cross_msgs, 0);
}

TEST(PdesDeterminism, ChaosJournalHashStablePerShardCount) {
  for (int shards : {1, 2, 4}) {
    const MiniRun a = run_mini(shards, true);
    const MiniRun b = run_mini(shards, true);
    EXPECT_EQ(a.journal, b.journal) << "shards=" << shards;
    EXPECT_NE(a.journal, 0u) << "shards=" << shards;
    EXPECT_EQ(a.digest, b.digest) << "shards=" << shards;
  }
}

TEST(PdesDeterminism, DeliveredCorruptionByteIdenticalPerShardCount) {
  // kDeliverCorrupt cross-shard deliveries must not perturb determinism:
  // at every shard count a rerun reproduces digest, event count, and the
  // corruption ground truth exactly — and the corrupting hops really fire.
  for (int shards : {1, 2, 4}) {
    const MiniRun a = run_mini(shards, false, /*with_corruption=*/true);
    const MiniRun b = run_mini(shards, false, /*with_corruption=*/true);
    EXPECT_EQ(a.digest, b.digest) << "shards=" << shards;
    EXPECT_EQ(a.events, b.events) << "shards=" << shards;
    EXPECT_EQ(a.corrupt_delivered, b.corrupt_delivered) << "shards=" << shards;
    EXPECT_GT(a.corrupt_delivered, 0) << "shards=" << shards;
    if (shards > 1) EXPECT_GT(a.cross_msgs, 0) << "shards=" << shards;
  }
}

TEST(PdesGroup, ControlLaneAliasesShardZeroAtOneShard) {
  Fabric fabric(1);
  EXPECT_EQ(&fabric.control_sim(), &fabric.sim());
  Fabric sharded(2);
  EXPECT_NE(&sharded.control_sim(), &sharded.sim());
}

TEST(PdesGroup, ShardCountClampedToPodsets) {
  QosPolicy policy;
  ClosParams p = make_clos_params(policy, DeploymentStage::kFull, /*podsets=*/2,
                                  /*leaves=*/1, /*tors=*/1, /*servers=*/1, /*spines=*/1);
  p.shards = 16;  // more shards than podsets: partition can't be finer
  ClosFabric clos(p);
  EXPECT_EQ(clos.fabric().shard_count(), 2);
}

TEST(PdesGroup, ZeroLookaheadBoundaryThrows) {
  ShardGroup group(2);
  EXPECT_THROW(group.note_boundary(0, 1, 0), std::invalid_argument);
}

TEST(PdesGroup, ForeignScheduleDuringWindowThrows) {
  // An event on shard 0 reaching into shard 1's heap mid-window is exactly
  // the class of bug the lookahead assertion exists to catch.
  ShardGroup group(2);
  group.note_boundary(0, 1, microseconds(1));
  group.note_boundary(1, 0, microseconds(1));
  group.shard(1).schedule_at(microseconds(1), [] {});  // keeps shard 1 live
  group.shard(0).schedule_at(microseconds(1), [&group] {
    group.shard(1).schedule_at(microseconds(100), [] {});
  });
  EXPECT_THROW(group.run_until(microseconds(10)), std::logic_error);
}

TEST(PdesGroup, SchedulingOwnShardDuringWindowIsFine) {
  ShardGroup group(2);
  group.note_boundary(0, 1, microseconds(1));
  group.note_boundary(1, 0, microseconds(1));
  int fired = 0;
  std::function<void()> self = [&] {
    if (++fired < 5) group.shard(0).schedule_in(microseconds(1), self);
  };
  group.shard(0).schedule_at(microseconds(1), self);
  group.shard(1).schedule_at(microseconds(1), [] {});
  group.run_until(microseconds(20));
  EXPECT_EQ(fired, 5);
}

TEST(PdesGroup, ChannelPushBelowHorizonThrows) {
  ShardGroup group(2);
  group.note_boundary(0, 1, microseconds(1));
  group.note_boundary(1, 0, microseconds(1));
  group.shard(0).schedule_at(microseconds(1), [] {});
  group.shard(1).schedule_at(microseconds(1), [] {});
  group.run_until(microseconds(10));
  ASSERT_GT(group.horizon_floor(), 0);
  // A message dated before the horizon every shard was already promised is
  // a lookahead violation, caught at the push (both message kinds).
  EXPECT_THROW(group.channel(0, 1).push_deliver(0, nullptr, 0, nullptr), std::logic_error);
  EXPECT_THROW(group.channel(0, 1).push_fcs_error(0, nullptr, 0), std::logic_error);
}

TEST(PdesGroup, CrossShardCancelRoutesByShardTag) {
  ShardGroup group(2);
  group.note_boundary(0, 1, microseconds(1));
  group.note_boundary(1, 0, microseconds(1));
  bool fired = false;
  const EventId id = group.shard(1).schedule_at(microseconds(5), [&] { fired = true; });
  // Cancel through the WRONG shard's front door: the shard tag in the id
  // routes it home.
  group.shard(0).cancel(id);
  group.shard(0).schedule_at(microseconds(1), [] {});
  group.shard(1).schedule_at(microseconds(1), [] {});
  group.run_until(microseconds(10));
  EXPECT_FALSE(fired);
}

TEST(PdesGroup, QueueHealthGaugesMatchAggregates) {
  QosPolicy policy;
  ClosParams p = make_clos_params(policy, DeploymentStage::kFull, /*podsets=*/2,
                                  /*leaves=*/1, /*tors=*/1, /*servers=*/2, /*spines=*/1);
  p.shards = 2;
  ClosFabric clos(p);
  exp::TrafficSet traffic;
  traffic.add_streams(clos.server(0, 0, 0), clos.server(1, 0, 0), make_qp_config(policy),
                      RdmaStreamSource::Options{.message_bytes = 8 * kKiB, .max_outstanding = 2});
  clos.sim().run_until(microseconds(200));

  ShardGroup& group = clos.fabric().group();
  MetricRegistry& reg = group.metrics();
  // Per-shard executed counters + the control lane = the group aggregate.
  const std::int64_t per_shard = reg.sum("sim/shard*/executed_events");
  const std::int64_t control = reg.sum("sim/control/executed_events");
  EXPECT_EQ(static_cast<std::uint64_t>(per_shard + control), group.executed_events());
  EXPECT_GT(per_shard, 0);
  // Live-event gauges = the group's pending total.
  const std::int64_t live =
      reg.sum("sim/shard*/live_events") + reg.sum("sim/control/live_events");
  EXPECT_EQ(static_cast<std::size_t>(live), group.pending_events());
  // The window/channel counters are exported too.
  EXPECT_EQ(reg.sum("sim/windows"), group.windows());
  EXPECT_EQ(reg.sum("sim/cross_messages"), group.cross_messages());
  EXPECT_GT(reg.sum("sim/boundary_links"), 0);
  EXPECT_GT(reg.sum("sim/lookahead_ps"), 0);
}

TEST(PdesGroup, HeapDebtGaugeTracksLazyCancels) {
  ShardGroup group(1);
  Simulator& sim = group.shard(0);
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sim.schedule_at(microseconds(1) + nanoseconds(i), [] {}));
  }
  for (const EventId id : ids) sim.cancel(id);
  EXPECT_EQ(group.metrics().sum("sim/shard0/heap_debt"), 8);
  sim.schedule_at(microseconds(2), [] {});
  group.run();  // purging the stale entries repays the debt
  EXPECT_EQ(group.metrics().sum("sim/shard0/heap_debt"), 0);
}

}  // namespace
}  // namespace rocelab
