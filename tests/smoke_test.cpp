// End-to-end smoke tests: the basic data path works before anything else.
#include <gtest/gtest.h>

#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

TEST(Smoke, RdmaSendDeliversOneMessage) {
  StarTopology topo(2);
  Host& a = *topo.hosts[0];
  Host& b = *topo.hosts[1];

  QpConfig qp_cfg;
  auto [qa, qb] = connect_qp_pair(a, b, qp_cfg);
  (void)qb;

  RdmaDemux demux_b(b);
  std::int64_t got_bytes = 0;
  demux_b.on_recv(qb, [&](const RdmaRecv& r) { got_bytes = r.bytes; });

  a.rdma().post_send(qa, 100 * 1024, 42);
  topo.sim().run_until(milliseconds(10));

  EXPECT_EQ(got_bytes, 100 * 1024);
  EXPECT_EQ(b.rdma().stats().messages_received, 1);
  EXPECT_EQ(a.rdma().stats().messages_completed, 1);
}

TEST(Smoke, RdmaStreamSaturatesLink) {
  StarTopology topo(2);
  Host& a = *topo.hosts[0];
  Host& b = *topo.hosts[1];
  auto [qa, qb] = connect_qp_pair(a, b, QpConfig{});
  (void)qb;

  RdmaDemux demux_a(a);
  RdmaStreamSource src(a, demux_a, qa,
                       RdmaStreamSource::Options{.message_bytes = 1 * kMiB, .max_outstanding = 4});
  src.start();
  topo.sim().run_until(milliseconds(20));

  // 40Gb/s with ~6% header overhead => goodput near 37 Gb/s.
  EXPECT_GT(src.goodput_bps(), 30e9);
  EXPECT_LT(src.goodput_bps(), 40e9);
}

TEST(Smoke, TcpDeliversMessages) {
  StarTopology topo(2);
  Host& a = *topo.hosts[0];
  Host& b = *topo.hosts[1];
  TcpStack sa(a), sb(b);
  auto [ca, cb] = TcpStack::connect_pair(sa, sb);
  (void)ca;

  TcpDemux demux_b(sb);
  std::int64_t got = 0;
  demux_b.on_recv(cb, [&](const TcpRecv& r) { got += r.bytes; });

  sa.send_message(ca, 256 * 1024, 1);
  topo.sim().run_until(milliseconds(100));
  EXPECT_EQ(got, 256 * 1024);
}

}  // namespace
}  // namespace rocelab
