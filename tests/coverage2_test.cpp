// Second coverage battery: transport parameter sweeps, switch accounting
// internals, application-layer behaviours, and regression cases for bugs
// found during development.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

// --- transport parameter sweeps -------------------------------------------------

struct MtuCase {
  std::int32_t mtu;
  std::int64_t message;
};

class MtuSweep : public ::testing::TestWithParam<MtuCase> {};

TEST_P(MtuSweep, SegmentationAndDeliveryExact) {
  const auto param = GetParam();
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  qp.mtu_payload = param.mtu;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, param.message, 1);
  topo.sim().run_until(milliseconds(20));
  EXPECT_EQ(topo.hosts[1]->rdma().stats().bytes_received, param.message);
  const std::int64_t expect_packets = (param.message + param.mtu - 1) / param.mtu;
  EXPECT_EQ(topo.hosts[0]->rdma().stats().data_packets_sent, expect_packets);
}

INSTANTIATE_TEST_SUITE_P(Cases, MtuSweep,
                         ::testing::Values(MtuCase{256, 10000}, MtuCase{512, 512},
                                           MtuCase{1024, 1}, MtuCase{1024, 1024},
                                           MtuCase{1024, 1025}, MtuCase{4096, 1 * kMiB},
                                           MtuCase{1024, 3 * kMiB}));

class AckEverySweep : public ::testing::TestWithParam<int> {};

TEST_P(AckEverySweep, CompletesRegardlessOfAckCadence) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  qp.ack_every = GetParam();
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  for (std::uint64_t m = 0; m < 4; ++m) topo.hosts[0]->rdma().post_send(qa, 50000, m);
  topo.sim().run_until(milliseconds(10));
  EXPECT_EQ(topo.hosts[0]->rdma().stats().messages_completed, 4);
}

INSTANTIATE_TEST_SUITE_P(Cadence, AckEverySweep, ::testing::Values(1, 2, 8, 64));

TEST(RdmaRead, LostRequestRecoveredByReissue) {
  StarTopology topo(2);
  int dropped = 0;
  topo.sw().set_drop_filter([&dropped](const Packet& p) {
    if (p.kind == PacketKind::kRoceReadReq && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = microseconds(100);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaCompletion done{};
  RdmaDemux demux(*topo.hosts[0]);
  demux.on_completion(qa, [&](const RdmaCompletion& c) { done = c; });
  topo.hosts[0]->rdma().post_read(qa, 16 * 1024, 5);
  topo.sim().run_until(milliseconds(20));
  EXPECT_EQ(done.msg_id, 5u);
  EXPECT_EQ(done.bytes, 16 * 1024);
  EXPECT_EQ(dropped, 1);
}

TEST(RdmaRead, ResponseLossRecoveredByResponderGoBackN) {
  StarTopology topo(2);
  int dropped = 0;
  topo.sw().set_drop_filter([&dropped](const Packet& p) {
    if (p.kind == PacketKind::kRoceData && is_read_response(p.bth->opcode) && dropped == 0 &&
        p.bth->psn == 3) {
      ++dropped;
      return true;
    }
    return false;
  });
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaCompletion done{};
  RdmaDemux demux(*topo.hosts[0]);
  demux.on_completion(qa, [&](const RdmaCompletion& c) { done = c; });
  topo.hosts[0]->rdma().post_read(qa, 32 * 1024, 9);
  topo.sim().run_until(milliseconds(20));
  EXPECT_EQ(done.bytes, 32 * 1024);
  EXPECT_EQ(dropped, 1);
  // The RESPONDER (host 1) ran the go-back-N recovery for its response
  // stream.
  EXPECT_GT(topo.hosts[1]->rdma().stats().data_packets_retx, 0);
}

TEST(RdmaCompletionTiming, LatencyCoversWireTime) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaCompletion done{};
  RdmaDemux demux(*topo.hosts[0]);
  demux.on_completion(qa, [&](const RdmaCompletion& c) { done = c; });
  topo.hosts[0]->rdma().post_send(qa, 1 * kMiB, 1);
  topo.sim().run_until(milliseconds(5));
  // 1MiB at 40G is ~210us of pure serialization; the completion must be
  // at least that far after the post.
  EXPECT_GE(done.completed_at - done.posted_at, microseconds(200));
  EXPECT_LT(done.completed_at - done.posted_at, microseconds(400));
}

TEST(RdmaCnp, RidesConfiguredLossyClass) {
  SwitchConfig cfg = testing::basic_switch_config();
  cfg.ecn[3] = EcnConfig{true, 1 * kKiB, 2 * kKiB, 1.0};  // mark everything
  StarTopology topo(3, cfg);
  QpConfig qp;  // DCQCN on
  auto [q1, q1b] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], qp);
  auto [q2, q2b] = connect_qp_pair(*topo.hosts[1], *topo.hosts[2], qp);
  (void)q1b; (void)q2b;
  topo.hosts[0]->rdma().post_send(q1, 256 * kKiB, 1);
  topo.hosts[1]->rdma().post_send(q2, 256 * kKiB, 2);
  topo.sim().run_until(milliseconds(5));
  ASSERT_GT(topo.hosts[2]->rdma().stats().cnps_sent, 0);
  // CNPs left the receiver on the configured cnp_dscp class (6 default).
  EXPECT_GT(topo.hosts[2]->port(0).counters().tx_packets[6], 0);
}

// --- switch internals ---------------------------------------------------------

TEST(SwitchRouting, LongestPrefixWins) {
  StarTopology topo(2);
  // Add a /16 route pointing at port 0 (the wrong place) and keep the /24
  // local subnet: local delivery must win by prefix length.
  topo.sw().add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 16}, {0});
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 4096, 1);
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 1);
}

TEST(SwitchMatrix, InflightBytesTracksQueuedTraffic) {
  StarTopology topo(3);
  // Pause host 2's port at the switch so traffic to it stays queued.
  topo.sw().port(2).receive_pause(3, 0xffff);
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 20 * 1024, 1);
  topo.sim().run_until(microseconds(100));
  // Bytes admitted on ingress 0 queued at egress 2 on priority 3.
  EXPECT_GT(topo.sw().inflight_bytes(0, 2, 3), 0);
  EXPECT_EQ(topo.sw().inflight_bytes(1, 2, 3), 0);
  // Unpause: matrix drains back to zero.
  topo.sw().port(2).receive_pause(3, 0);
  topo.sim().run_until(milliseconds(5));
  EXPECT_EQ(topo.sw().inflight_bytes(0, 2, 3), 0);
}

TEST(SwitchFlooding, SharedChargeReleasedWhenLastCopyLeaves) {
  StarTopology topo(4);
  topo.fabric->kill_host(*topo.hosts[1]);
  // Pause one flood target so one copy lingers.
  topo.sw().port(3).receive_pause(3, 0xffff);
  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = milliseconds(50);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 2048, 1);
  // Check well before the 0xffff pause expires on its own (~839us).
  topo.sim().run_until(microseconds(300));
  // Copies to ports 1,2 drained, but the shared buffer is still charged
  // because the port-3 copy is stuck.
  EXPECT_GT(topo.sw().mmu().pg_total(0, 3), 0);
  topo.sw().port(3).receive_pause(3, 0);
  topo.sim().run_until(milliseconds(2));
  EXPECT_EQ(topo.sw().mmu().pg_total(0, 3), 0);
}

TEST(SwitchWatchdog, DoesNotTripOnHealthyCongestion) {
  SwitchConfig cfg = testing::basic_switch_config();
  cfg.watchdog.enabled = true;
  cfg.watchdog.check_interval = milliseconds(1);
  cfg.watchdog.trigger_after = milliseconds(5);
  StarTopology topo(4, cfg);
  // Honest 3-to-1 incast: pauses happen, but the receiver keeps draining,
  // so the watchdog must NOT disable lossless mode.
  QpConfig qp;
  qp.dcqcn = false;
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  std::vector<std::unique_ptr<RdmaStreamSource>> sources;
  for (int i = 0; i < 3; ++i) {
    auto [qa, qb] = connect_qp_pair(*topo.hosts[static_cast<std::size_t>(i)], *topo.hosts[3], qp);
    (void)qb;
    demuxes.push_back(std::make_unique<RdmaDemux>(*topo.hosts[static_cast<std::size_t>(i)]));
    sources.push_back(std::make_unique<RdmaStreamSource>(
        *topo.hosts[static_cast<std::size_t>(i)], *demuxes.back(), qa,
        RdmaStreamSource::Options{.message_bytes = 128 * kKiB, .max_outstanding = 2}));
    sources.back()->start();
  }
  topo.sim().run_until(milliseconds(50));
  EXPECT_EQ(topo.sw().watchdog_trips(), 0);
  for (int p = 0; p < 4; ++p) EXPECT_FALSE(topo.sw().lossless_disabled(p));
}

TEST(SwitchDscpMapping, ManyToOneMapping) {
  // §3: "The mapping between DSCP values and PFC priorities can be
  // flexible and can even be many-to-one."
  SwitchConfig cfg = testing::basic_switch_config();
  cfg.dscp_to_pg = {3, 3, 3, 3, 4, 4, 4, 4};  // 0-3 -> PG3, 4-7 -> PG4
  cfg.lossless[4] = true;
  StarTopology topo(2, cfg);
  for (int dscp : {0, 2, 5}) {
    Packet pkt;
    pkt.kind = PacketKind::kRaw;
    pkt.frame_bytes = 100;
    Ipv4Header ip;
    ip.src = topo.hosts[0]->ip();
    ip.dst = topo.hosts[1]->ip();
    ip.dscp = static_cast<std::uint8_t>(dscp);
    pkt.ip = ip;
    topo.hosts[0]->send_frame(std::move(pkt));
  }
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.sw().port(1).counters().tx_packets[3], 2);  // dscp 0 and 2
  EXPECT_EQ(topo.sw().port(1).counters().tx_packets[4], 1);  // dscp 5
}

// --- application layer -------------------------------------------------------------

TEST(Apps, StreamSourceStopsAfterLimit) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  RdmaStreamSource src(*topo.hosts[0], demux, qa,
                       {.message_bytes = 8 * 1024, .max_outstanding = 2,
                        .stop_after_messages = 7});
  src.start();
  topo.sim().run_until(milliseconds(10));
  EXPECT_EQ(src.completed_messages(), 7);
  EXPECT_EQ(src.completed_bytes(), 7 * 8 * 1024);
}

TEST(Apps, StreamSourceLatencyPercentilesPopulated) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  RdmaStreamSource src(*topo.hosts[0], demux, qa,
                       {.message_bytes = 64 * 1024, .max_outstanding = 1,
                        .stop_after_messages = 20});
  src.start();
  topo.sim().run_until(milliseconds(10));
  EXPECT_EQ(src.latencies_us().count(), 20u);
  EXPECT_GT(src.latencies_us().percentile(50), 10.0);  // 64KB ~ 14us wire time
}

TEST(Apps, PingmeshCountsTimeoutsAsFailures) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = seconds(10);  // never recovers within the test
  auto [pq, tq] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  RdmaDemux da(*topo.hosts[0]), db(*topo.hosts[1]);
  RdmaEchoServer echo(*topo.hosts[1], db, tq, 512);
  RdmaPingmesh ping(*topo.hosts[0], da, {pq},
                    RdmaPingmesh::Options{.probe_bytes = 512, .interval = milliseconds(1),
                                          .timeout = milliseconds(3)});
  ping.start();
  topo.sim().run_until(milliseconds(2));
  topo.hosts[1]->set_dead(true);  // probes start vanishing
  topo.sim().run_until(milliseconds(30));
  EXPECT_GT(ping.probes_failed(), 5);
  EXPECT_GT(ping.rtt_us().count(), 0u);  // the early ones succeeded
}

TEST(Apps, IncastOpenLoopIssuesOverTime) {
  StarTopology topo(3);
  Host& client = *topo.hosts[0];
  RdmaDemux dc(client);
  std::vector<std::unique_ptr<RdmaDemux>> ds;
  std::vector<std::unique_ptr<RdmaEchoServer>> echoes;
  std::vector<std::uint32_t> qpns;
  QpConfig qp;
  qp.dcqcn = false;
  for (int i = 1; i <= 2; ++i) {
    auto [cq, sq] = connect_qp_pair(client, *topo.hosts[static_cast<std::size_t>(i)], qp);
    ds.push_back(std::make_unique<RdmaDemux>(*topo.hosts[static_cast<std::size_t>(i)]));
    echoes.push_back(
        std::make_unique<RdmaEchoServer>(*topo.hosts[static_cast<std::size_t>(i)], *ds.back(), sq, 4096));
    qpns.push_back(cq);
  }
  RdmaIncastClient incast(client, dc, qpns,
                          RdmaIncastClient::Options{.request_bytes = 512,
                                                    .mean_interval = microseconds(500)});
  incast.start();
  topo.sim().run_until(milliseconds(20));
  // ~40 queries expected; allow wide Poisson slack.
  EXPECT_GT(incast.queries_completed(), 15);
  EXPECT_LT(incast.queries_completed(), 100);
  EXPECT_EQ(echoes[0]->requests_served() + echoes[1]->requests_served(),
            2 * incast.queries_completed());
}

// --- port details -------------------------------------------------------------------

TEST(PortDetails, QuantumTimeMatches802_3) {
  StarTopology topo(2);
  // One PFC quantum = 512 bit times: at 40G that is 12.8ns.
  EXPECT_EQ(topo.hosts[0]->port(0).quantum_time(), picoseconds(12800));
}

TEST(PortDetails, PausedTimeAccumulatesAcrossRefreshes) {
  StarTopology topo(2);
  auto& port = topo.sw().port(0);
  port.receive_pause(3, 0xffff);
  topo.sim().run_until(microseconds(100));
  port.receive_pause(3, 0xffff);  // refresh mid-pause
  topo.sim().run_until(microseconds(200));
  port.receive_pause(3, 0);  // resume
  EXPECT_NEAR(static_cast<double>(port.counters().paused_time[3]),
              static_cast<double>(microseconds(200)), static_cast<double>(microseconds(2)));
}

}  // namespace
}  // namespace rocelab
