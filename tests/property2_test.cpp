// Third property battery: randomized codec round-trips, DCQCN convergence,
// selective-repeat integrity under combined faults, and simulator stress.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/net/codec.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

class CodecFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CodecFuzz, RandomRoceFramesRoundTripBothModes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    Packet pkt;
    pkt.kind = PacketKind::kRoceData;
    pkt.payload_bytes = static_cast<std::int32_t>(rng.uniform_int(0, 4096));
    pkt.frame_bytes = kRoceDataOverheadBytes + pkt.payload_bytes;
    pkt.priority = static_cast<int>(rng.uniform_int(0, 7));
    Ipv4Header ip;
    ip.src.value = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffLL));
    ip.dst.value = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffLL));
    ip.id = static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff));
    ip.ttl = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    ip.ecn = static_cast<Ecn>(rng.uniform_int(0, 3));
    pkt.ip = ip;
    pkt.udp = UdpHeader{static_cast<std::uint16_t>(rng.uniform_int(1, 0xffff)), kRoceUdpPort, 0};
    RoceBth bth;
    bth.opcode = RoceOpcode::kSendMiddle;
    bth.dest_qp = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffff));
    bth.psn = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffff));
    bth.ack_request = rng.bernoulli(0.5);
    pkt.bth = bth;

    for (PfcMode mode : {PfcMode::kDscpBased, PfcMode::kVlanBased}) {
      const Bytes frame = encode_roce_frame(pkt, mode);
      const auto d = decode_roce_frame(frame);
      ASSERT_TRUE(d.has_value()) << "i=" << i;
      EXPECT_TRUE(d->fcs_ok);
      EXPECT_EQ(d->ip.src, ip.src);
      EXPECT_EQ(d->ip.dst, ip.dst);
      EXPECT_EQ(d->ip.id, ip.id);
      EXPECT_EQ(d->bth.dest_qp, bth.dest_qp);
      EXPECT_EQ(d->bth.psn, bth.psn);
      EXPECT_EQ(d->bth.ack_request, bth.ack_request);
      EXPECT_EQ(d->payload_bytes, static_cast<std::size_t>(pkt.payload_bytes));
      if (mode == PfcMode::kDscpBased) {
        EXPECT_EQ(d->ip.dscp, pkt.priority);
      } else {
        ASSERT_TRUE(d->eth.vlan.has_value());
        EXPECT_EQ(d->eth.vlan->pcp, pkt.priority);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range(1, 5));

class CodecCorruption : public ::testing::TestWithParam<int> {};

TEST_P(CodecCorruption, SingleBitFlipsNeverPassTheFcs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77);
  Packet pkt;
  pkt.kind = PacketKind::kRoceData;
  pkt.payload_bytes = 256;
  pkt.frame_bytes = kRoceDataOverheadBytes + 256;
  pkt.priority = 3;
  pkt.ip = Ipv4Header{Ipv4Addr{0x0a000001}, Ipv4Addr{0x0a000102}};
  pkt.udp = UdpHeader{50001, kRoceUdpPort, 0};
  pkt.bth = RoceBth{};
  const Bytes clean = encode_roce_frame(pkt, PfcMode::kDscpBased);
  for (int i = 0; i < 100; ++i) {
    Bytes frame = clean;
    const auto byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
    frame[byte] ^= static_cast<std::uint8_t>(1 << rng.uniform_int(0, 7));
    const auto d = decode_roce_frame(frame);
    // Either a header decoder rejects the frame outright or the FCS flags it.
    if (d.has_value()) {
      EXPECT_FALSE(d->fcs_ok) << "flip at byte " << byte;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecCorruption, ::testing::Range(1, 4));

class DcqcnConvergence : public ::testing::TestWithParam<int> {};

TEST_P(DcqcnConvergence, IncastConvergesToFairEfficientShares) {
  // Property over fan-in: after convergence time, DCQCN incast is both
  // efficient (>60% of bottleneck) and fair (Jain > 0.9), with bounded
  // queues and no lossless drops.
  const int senders = GetParam();
  SwitchConfig cfg = testing::basic_switch_config();
  cfg.ecn[3] = EcnConfig{true, 5 * kKiB, 200 * kKiB, 0.01};
  StarTopology topo(senders + 1, cfg);
  Host& rx = *topo.hosts[static_cast<std::size_t>(senders)];
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  std::vector<std::unique_ptr<RdmaStreamSource>> sources;
  for (int i = 0; i < senders; ++i) {
    auto [qa, qb] = connect_qp_pair(*topo.hosts[static_cast<std::size_t>(i)], rx, QpConfig{});
    (void)qb;
    demuxes.push_back(std::make_unique<RdmaDemux>(*topo.hosts[static_cast<std::size_t>(i)]));
    sources.push_back(std::make_unique<RdmaStreamSource>(
        *topo.hosts[static_cast<std::size_t>(i)], *demuxes.back(), qa,
        RdmaStreamSource::Options{.message_bytes = 64 * kKiB, .max_outstanding = 2}));
    sources.back()->start();
  }
  topo.sim().run_until(milliseconds(40));
  double sum = 0, sum_sq = 0;
  for (auto& s : sources) {
    sum += s->goodput_bps();
    sum_sq += s->goodput_bps() * s->goodput_bps();
  }
  const double jain = sum * sum / (senders * sum_sq);
  EXPECT_GT(sum, 24e9) << senders << " senders";
  EXPECT_GT(jain, 0.90) << senders << " senders";
  std::int64_t drops = 0;
  for (int p = 0; p < topo.sw().port_count(); ++p) {
    drops += topo.sw().port(p).counters().headroom_overflow_drops;
  }
  EXPECT_EQ(drops, 0);
}

INSTANTIATE_TEST_SUITE_P(Fanin, DcqcnConvergence, ::testing::Values(2, 3, 5, 12));

class SelectiveRepeatIntegrity : public ::testing::TestWithParam<double> {};

TEST_P(SelectiveRepeatIntegrity, DeliversExactlyOnceUnderAnyLoss) {
  const double loss = GetParam();
  StarTopology topo(2);
  auto rng = std::make_shared<Rng>(static_cast<std::uint64_t>(loss * 1e6) + 3);
  topo.sw().set_drop_filter([rng, loss](const Packet& p) {
    (void)p;
    return rng->bernoulli(loss);  // ALL packet types, including ACKs/NAKs
  });
  QpConfig qp;
  qp.dcqcn = false;
  qp.recovery = LossRecovery::kSelectiveRepeat;
  qp.retx_timeout = microseconds(200);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  std::vector<int> delivered(15, 0);
  RdmaDemux demux(*topo.hosts[1]);
  demux.on_recv(qb, [&](const RdmaRecv& r) { ++delivered[r.msg_id]; });
  for (std::uint64_t m = 0; m < 15; ++m) {
    topo.hosts[0]->rdma().post_send(qa, 12 * 1024, m);
  }
  topo.sim().run_until(milliseconds(500));
  for (int m = 0; m < 15; ++m) {
    EXPECT_EQ(delivered[static_cast<std::size_t>(m)], 1) << "msg " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, SelectiveRepeatIntegrity,
                         ::testing::Values(0.001, 0.01, 0.05));

TEST(SimulatorStress, MillionsOfEventsStayOrdered) {
  Simulator sim;
  Rng rng(9);
  Time last = -1;
  std::int64_t count = 0;
  std::function<void()> check = [&] {
    EXPECT_GE(sim.now(), last);
    last = sim.now();
    ++count;
    if (count < 300000) {
      sim.schedule_in(rng.uniform_int(0, 1000), check);
      if (count % 7 == 0) sim.schedule_in(rng.uniform_int(0, 5000), check);
    }
  };
  for (int i = 0; i < 10; ++i) sim.schedule_at(rng.uniform_int(0, 100), check);
  sim.run();
  EXPECT_GE(count, 300000);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(FabricStress, RepeatedBuildTeardownLeaksNothingObservable) {
  // Charges in flight at teardown must not crash (the alive-guard).
  for (int round = 0; round < 20; ++round) {
    StarTopology topo(3);
    QpConfig qp;
    qp.dcqcn = false;
    auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], qp);
    auto [qc, qd] = connect_qp_pair(*topo.hosts[1], *topo.hosts[2], qp);
    (void)qb; (void)qd;
    topo.hosts[0]->rdma().post_send(qa, 256 * 1024, 1);
    topo.hosts[1]->rdma().post_send(qc, 256 * 1024, 2);
    // Stop mid-flight: packets are queued in switch buffers and events.
    topo.sim().run_until(microseconds(20 + round));
  }
  SUCCEED();
}

}  // namespace
}  // namespace rocelab
