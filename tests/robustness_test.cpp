// Robustness battery: misuse, odd configurations, and cross-feature
// interactions that a downstream adopter will hit.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/rdma_cm.h"
#include "src/app/traffic.h"
#include "src/monitor/monitor.h"
#include "src/rocev2/deployment.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

TEST(Robustness, SendFrameOnUnwiredHostIsHarmless) {
  Simulator sim;
  Host h(sim, "loner");
  h.set_ip(Ipv4Addr::from_octets(10, 0, 0, 1));
  Packet pkt;
  pkt.kind = PacketKind::kRaw;
  pkt.frame_bytes = 100;
  h.send_frame(std::move(pkt));  // no port peer: silently dropped
  sim.run();
  SUCCEED();
}

TEST(Robustness, UnroutablePacketCountsAsDrop) {
  StarTopology topo(2);
  Packet pkt;
  pkt.kind = PacketKind::kRaw;
  pkt.frame_bytes = 100;
  Ipv4Header ip;
  ip.src = topo.hosts[0]->ip();
  ip.dst = Ipv4Addr::from_octets(172, 16, 0, 1);  // not in any subnet/route
  pkt.ip = ip;
  topo.hosts[0]->send_frame(std::move(pkt));
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.sw().port(0).counters().ingress_drops, 1);
}

TEST(Robustness, TcpSegmentToUnknownPortIgnored) {
  StarTopology topo(2);
  TcpStack sa(*topo.hosts[0]), sb(*topo.hosts[1]);
  Packet pkt;
  pkt.kind = PacketKind::kTcp;
  pkt.frame_bytes = 100;
  Ipv4Header ip;
  ip.src = topo.hosts[0]->ip();
  ip.dst = topo.hosts[1]->ip();
  ip.protocol = kIpProtoTcp;
  pkt.ip = ip;
  pkt.tcp = TcpHeaderMeta{12345, 54321, 0, 0, 50, false, false, false};
  topo.hosts[0]->send_frame(std::move(pkt));
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(sb.stats().segments_received, 0);  // no such connection
}

TEST(Robustness, RoceToUnknownQpIgnored) {
  StarTopology topo(2);
  Packet pkt;
  pkt.kind = PacketKind::kRoceData;
  pkt.frame_bytes = 1086;
  pkt.payload_bytes = 1024;
  Ipv4Header ip;
  ip.src = topo.hosts[0]->ip();
  ip.dst = topo.hosts[1]->ip();
  ip.dscp = 3;
  pkt.ip = ip;
  pkt.udp = UdpHeader{50000, kRoceUdpPort, 0};
  pkt.bth = RoceBth{RoceOpcode::kSendOnly, true, 0xffff, /*dest_qp=*/777, 0};
  pkt.priority = 3;
  topo.hosts[0]->send_frame(std::move(pkt));
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 0);
}

TEST(Robustness, PostRecvRejectsNonPositive) {
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], QpConfig{});
  (void)qa;
  EXPECT_THROW(topo.hosts[1]->rdma().post_recv(qb, 0), std::invalid_argument);
  EXPECT_THROW(topo.hosts[1]->rdma().post_recv(qb, -3), std::invalid_argument);
}

TEST(Robustness, SelectiveRepeatWithRnrCredits) {
  // Cross-feature: SR recovery + receive-WQE contract together.
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  qp.recovery = LossRecovery::kSelectiveRepeat;
  qp.require_recv_wqes = true;
  qp.rnr_delay = microseconds(50);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  topo.hosts[1]->rdma().post_recv(qb, 2);
  int dropped = 0;
  topo.sw().set_drop_filter([&dropped](const Packet& p) {
    if (p.kind == PacketKind::kRoceData && p.bth->psn == 1 && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  for (std::uint64_t m = 0; m < 2; ++m) topo.hosts[0]->rdma().post_send(qa, 4096, m);
  topo.sim().run_until(milliseconds(10));
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 2);
  EXPECT_EQ(dropped, 1);
}

TEST(Robustness, CmOverCongestedFabricStillConnects) {
  // CM datagrams are lossy-class: establish a connection while the fabric
  // is saturated with lossless traffic.
  StarTopology topo(3);
  QpConfig blast_qp;
  blast_qp.dcqcn = false;
  auto [ba, bb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], blast_qp);
  (void)bb;
  RdmaDemux d0(*topo.hosts[0]);
  RdmaStreamSource blast(*topo.hosts[0], d0, ba,
                         {.message_bytes = 256 * kKiB, .max_outstanding = 2});
  blast.start();

  RdmaCm cm_client(*topo.hosts[1]);
  RdmaCm cm_server(*topo.hosts[2]);
  cm_server.listen(5, QpConfig{}, nullptr);
  std::uint32_t qpn = 0;
  cm_client.connect(topo.hosts[2]->ip(), 5, QpConfig{}, [&](std::uint32_t q) { qpn = q; },
                    microseconds(500));
  topo.sim().run_until(milliseconds(20));
  EXPECT_NE(qpn, 0u);
}

TEST(Robustness, StagedDeploymentConfigsBuildAtAllStages) {
  QosPolicy policy;
  for (DeploymentStage stage :
       {DeploymentStage::kTorOnly, DeploymentStage::kPodset, DeploymentStage::kFull}) {
    ClosParams params = make_clos_params(policy, stage, 1, 2, 2, 2, 0);
    ClosFabric clos(params);  // must construct without throwing
    EXPECT_EQ(clos.num_servers(), 4);
    EXPECT_TRUE(
        check_switch_configs(clos.fabric().switch_ptrs(), policy, stage).empty());
  }
}

TEST(Robustness, ZeroLengthRunsAndEmptyFabrics) {
  Fabric fabric;
  fabric.sim().run_until(0);
  fabric.sim().run();
  EXPECT_EQ(fabric.sim().now(), 0);
  EXPECT_EQ(fabric.host_by_name("nope"), nullptr);
  EXPECT_EQ(fabric.switch_by_name("nope"), nullptr);
}

TEST(Robustness, DeadHostStopsMidMessageThenNetworkQuiesces) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = microseconds(200);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 1 * kMiB, 1);
  topo.sim().schedule_at(microseconds(50), [&] { topo.hosts[1]->set_dead(true); });
  topo.sim().run_until(milliseconds(5));
  // Sender keeps retrying (bounded by backoff); kill it too and verify the
  // fabric drains completely.
  topo.hosts[0]->set_dead(true);
  topo.sim().run_until(milliseconds(50));
  for (int p = 0; p < topo.sw().port_count(); ++p) {
    EXPECT_EQ(topo.sw().port(p).total_queued_bytes(), 0);
  }
  EXPECT_EQ(topo.sw().mmu().shared_used(), 0);
}

TEST(Robustness, WatchdogAndStormRaceIsStable) {
  // Storm toggles on/off repeatedly around the watchdog thresholds.
  SwitchConfig cfg = testing::basic_switch_config();
  cfg.watchdog.enabled = true;
  cfg.watchdog.check_interval = milliseconds(1);
  cfg.watchdog.trigger_after = milliseconds(3);
  cfg.watchdog.reenable_after = milliseconds(4);
  HostConfig hc = testing::basic_host_config();
  hc.watchdog.enabled = true;
  hc.watchdog.check_interval = milliseconds(1);
  hc.watchdog.trigger_after = milliseconds(3);
  StarTopology topo(3, cfg, hc);
  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = microseconds(200);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], qp);
  (void)qb;
  RdmaDemux d(*topo.hosts[0]);
  RdmaStreamSource src(*topo.hosts[0], d, qa, {.message_bytes = 64 * kKiB, .max_outstanding = 2});
  src.start();
  Rng rng(3);
  Time t = milliseconds(1);
  for (int i = 0; i < 10; ++i) {
    const bool on = i % 2 == 0;
    topo.sim().schedule_at(t, [&, on] { topo.hosts[2]->set_storm_mode(on); });
    t += microseconds(rng.uniform_int(500, 4000));
  }
  topo.sim().run_until(milliseconds(60));
  // Whatever happened, the fabric ends functional: new traffic flows.
  const auto before = src.completed_messages();
  topo.sim().run_until(milliseconds(80));
  EXPECT_GT(src.completed_messages(), before);
}

TEST(Robustness, SprayPlusLossPlusSelectiveRepeat) {
  // Reordering AND loss simultaneously: the hardest case for SR.
  Fabric fabric;
  SwitchConfig cfg;
  cfg.lossless[3] = true;
  cfg.packet_spray = true;
  auto& s1 = fabric.add_switch("s1", cfg, 4);
  auto& s2 = fabric.add_switch("s2", cfg, 4);
  s1.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24});
  s2.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24});
  s1.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24}, {2, 3});
  s2.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24}, {2, 3});
  fabric.attach_switches(s1, 2, s2, 2, gbps(10), propagation_delay_for_meters(10));
  fabric.attach_switches(s1, 3, s2, 3, gbps(10), propagation_delay_for_meters(250));
  auto rng = std::make_shared<Rng>(17);
  s1.set_drop_filter(
      [rng](const Packet& p) { return p.kind == PacketKind::kRoceData && rng->bernoulli(0.003); });
  HostConfig hc;
  hc.lossless[3] = true;
  auto& a = fabric.add_host("a", hc);
  auto& b = fabric.add_host("b", hc);
  a.set_ip(Ipv4Addr::from_octets(10, 0, 0, 1));
  b.set_ip(Ipv4Addr::from_octets(10, 0, 1, 1));
  fabric.attach_host(a, s1, 0, gbps(40), propagation_delay_for_meters(2));
  fabric.attach_host(b, s2, 0, gbps(40), propagation_delay_for_meters(2));
  QpConfig qp;
  qp.dcqcn = false;
  qp.recovery = LossRecovery::kSelectiveRepeat;
  auto [qa, qb] = connect_qp_pair(a, b, qp);
  std::vector<int> got(10, 0);
  RdmaDemux db(b);
  db.on_recv(qb, [&](const RdmaRecv& r) { ++got[r.msg_id]; });
  for (std::uint64_t m = 0; m < 10; ++m) a.rdma().post_send(qa, 64 * 1024, m);
  fabric.sim().run_until(milliseconds(100));
  for (int m = 0; m < 10; ++m) EXPECT_EQ(got[static_cast<std::size_t>(m)], 1) << m;
}

}  // namespace
}  // namespace rocelab
