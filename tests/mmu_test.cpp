// Shared-buffer MMU: dynamic thresholds (the §6.2 alpha), headroom,
// reserved minimums, XOFF/XON conditions, and conservation properties.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/switch/mmu.h"

namespace rocelab {
namespace {

std::array<bool, kNumPriorities> lossless3() {
  std::array<bool, kNumPriorities> l{};
  l[3] = true;
  return l;
}

MmuConfig small_cfg() {
  MmuConfig cfg;
  cfg.total_buffer = 2 * kMiB;
  cfg.headroom_per_pg = 64 * kKiB;
  cfg.reserved_per_pg = 4 * kKiB;
  cfg.alpha = 0.5;
  cfg.alpha_lossy = 0.5;
  cfg.xon_offset = 16 * kKiB;
  return cfg;
}

TEST(Mmu, SharedPoolExcludesHeadroomAndReserved) {
  const MmuConfig cfg = small_cfg();
  Mmu mmu(cfg, 4, lossless3());
  // 4 ports * 1 lossless class * 64KB headroom + 4 ports * 8 PGs * 4KB.
  EXPECT_EQ(mmu.shared_pool_size(),
            cfg.total_buffer - 4 * 64 * kKiB - 4 * 8 * 4 * kKiB);
}

TEST(Mmu, ThrowsWhenHeadroomExceedsBuffer) {
  MmuConfig cfg = small_cfg();
  cfg.headroom_per_pg = 1 * kMiB;  // 4 ports x 1MB > 2MB total
  EXPECT_THROW(Mmu(cfg, 4, lossless3()), std::invalid_argument);
}

TEST(Mmu, ReservedAdmittedFirst) {
  Mmu mmu(small_cfg(), 4, lossless3());
  const auto a = mmu.admit(0, 1, 1000);  // lossy PG
  EXPECT_TRUE(a.admitted);
  EXPECT_EQ(a.to_reserved, 1000);
  EXPECT_EQ(a.to_shared, 0);
  EXPECT_EQ(mmu.shared_used(), 0);
}

TEST(Mmu, OverflowsToSharedAfterReserved) {
  Mmu mmu(small_cfg(), 4, lossless3());
  mmu.admit(0, 1, 4 * kKiB);  // fills the reserved quota
  const auto a = mmu.admit(0, 1, 1000);
  EXPECT_TRUE(a.admitted);
  EXPECT_EQ(a.to_shared, 1000);
}

TEST(Mmu, DynamicThresholdShrinksAsPoolFills) {
  Mmu mmu(small_cfg(), 4, lossless3());
  const auto t0 = mmu.threshold(0, 3);
  mmu.admit(0, 3, 4 * kKiB);          // reserved, no effect on threshold
  EXPECT_EQ(mmu.threshold(0, 3), t0);
  mmu.admit(0, 3, 200 * kKiB);        // shared
  EXPECT_LT(mmu.threshold(0, 3), t0);
}

TEST(Mmu, LossyDropsAtThreshold) {
  MmuConfig cfg = small_cfg();
  cfg.alpha_lossy = 1.0 / 64;
  Mmu mmu(cfg, 4, lossless3());
  mmu.admit(0, 1, cfg.reserved_per_pg);  // exhaust reserve
  std::int64_t admitted = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto a = mmu.admit(0, 1, 1086);
    if (!a.admitted) break;
    admitted += 1086;
  }
  // Converges to roughly alpha/(1+alpha) of the pool.
  const double limit = static_cast<double>(mmu.shared_pool_size()) / 65.0;
  EXPECT_NEAR(static_cast<double>(admitted), limit, 3 * 1086);
}

TEST(Mmu, LosslessSpillsToHeadroomInsteadOfDropping) {
  MmuConfig cfg = small_cfg();
  cfg.alpha = 1.0 / 256;  // tiny dynamic threshold
  Mmu mmu(cfg, 4, lossless3());
  mmu.admit(0, 3, cfg.reserved_per_pg);
  // Fill past the dynamic threshold but within the 64KB headroom.
  std::int64_t headroom = 0;
  for (int i = 0; i < 50; ++i) {
    const auto a = mmu.admit(0, 3, 1086);
    ASSERT_TRUE(a.admitted);
    headroom += a.to_headroom;
  }
  EXPECT_GT(headroom, 0);
  EXPECT_EQ(mmu.pg_headroom(0, 3), headroom);
}

TEST(Mmu, HeadroomOverflowFinallyDrops) {
  MmuConfig cfg = small_cfg();
  cfg.alpha = 1.0 / 256;
  cfg.headroom_per_pg = 4 * kKiB;
  Mmu mmu(cfg, 4, lossless3());
  bool dropped = false;
  for (int i = 0; i < 10000 && !dropped; ++i) {
    dropped = !mmu.admit(0, 3, 1086).admitted;
  }
  EXPECT_TRUE(dropped);
}

TEST(Mmu, ShouldPauseWhenHeadroomInUse) {
  MmuConfig cfg = small_cfg();
  cfg.alpha = 1.0 / 256;
  Mmu mmu(cfg, 4, lossless3());
  EXPECT_FALSE(mmu.should_pause(0, 3));
  for (int i = 0; i < 60; ++i) mmu.admit(0, 3, 1086);
  EXPECT_TRUE(mmu.should_pause(0, 3));
}

TEST(Mmu, ResumeRequiresHysteresisAndEmptyHeadroom) {
  MmuConfig cfg = small_cfg();
  Mmu mmu(cfg, 4, lossless3());
  // Fill shared beyond threshold.
  std::vector<Mmu::Admission> admissions;
  for (int i = 0; i < 2000; ++i) {
    const auto a = mmu.admit(0, 3, 1086);
    if (!a.admitted) break;
    admissions.push_back(a);
    if (mmu.should_pause(0, 3)) break;
  }
  ASSERT_TRUE(mmu.should_pause(0, 3));
  EXPECT_FALSE(mmu.should_resume(0, 3));
  // Release everything: must be resumable again.
  for (const auto& a : admissions) mmu.release(0, 3, a.to_shared, a.to_headroom, a.to_reserved);
  EXPECT_TRUE(mmu.should_resume(0, 3));
}

TEST(Mmu, ReleaseUnderflowThrows) {
  Mmu mmu(small_cfg(), 4, lossless3());
  EXPECT_THROW(mmu.release(0, 3, 100, 0, 0), std::logic_error);
}

TEST(Mmu, StaticModeUsesFixedLimit) {
  MmuConfig cfg = small_cfg();
  cfg.dynamic_shared = false;
  cfg.static_limit_per_pg = 10 * kKiB;
  Mmu mmu(cfg, 4, lossless3());
  EXPECT_EQ(mmu.threshold(0, 3), 10 * kKiB);
  mmu.admit(0, 3, 500 * kKiB);  // big admission
  EXPECT_EQ(mmu.threshold(0, 3), 10 * kKiB);  // unchanged
}

TEST(Mmu, SetAlphaTakesEffect) {
  Mmu mmu(small_cfg(), 4, lossless3());
  const auto t_before = mmu.threshold(0, 3);
  mmu.set_alpha(1.0 / 64);
  EXPECT_LT(mmu.threshold(0, 3), t_before);
}

TEST(Mmu, PortsAccountedIndependently) {
  Mmu mmu(small_cfg(), 4, lossless3());
  mmu.admit(0, 3, 100 * kKiB);
  EXPECT_GT(mmu.pg_total(0, 3), 0);
  EXPECT_EQ(mmu.pg_total(1, 3), 0);
}

/// Property: after any random admit/release sequence fully unwinds, all
/// pools return to zero (buffer conservation).
class MmuConservation : public ::testing::TestWithParam<int> {};

TEST_P(MmuConservation, FullDrainRestoresPools) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::array<bool, kNumPriorities> lossless{};
  lossless[3] = true;
  lossless[4] = true;
  MmuConfig cfg;
  cfg.total_buffer = 12 * kMiB;
  cfg.headroom_per_pg = 20 * kKiB;
  Mmu mmu(cfg, 16, lossless);

  struct Rec {
    int port, pg;
    Mmu::Admission a;
  };
  std::vector<Rec> live;
  for (int step = 0; step < 20000; ++step) {
    if (live.empty() || rng.bernoulli(0.55)) {
      const int port = static_cast<int>(rng.uniform_int(0, 15));
      const int pg = static_cast<int>(rng.uniform_int(0, 7));
      const auto bytes = rng.uniform_int(64, 9216);
      const auto a = mmu.admit(port, pg, bytes);
      if (a.admitted) live.push_back({port, pg, a});
    } else {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const Rec r = live[idx];
      live[idx] = live.back();
      live.pop_back();
      mmu.release(r.port, r.pg, r.a.to_shared, r.a.to_headroom, r.a.to_reserved);
    }
    // Invariant at every step: shared usage never exceeds the pool.
    ASSERT_LE(mmu.shared_used(), mmu.shared_pool_size());
    ASSERT_GE(mmu.shared_used(), 0);
  }
  for (const Rec& r : live) mmu.release(r.port, r.pg, r.a.to_shared, r.a.to_headroom, r.a.to_reserved);
  EXPECT_EQ(mmu.shared_used(), 0);
  for (int port = 0; port < 16; ++port) {
    for (int pg = 0; pg < kNumPriorities; ++pg) {
      EXPECT_EQ(mmu.pg_total(port, pg), 0) << port << "/" << pg;
      EXPECT_TRUE(mmu.should_resume(port, pg));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmuConservation, ::testing::Range(1, 7));

}  // namespace
}  // namespace rocelab
