// The rocev2 deployment layer: per-tier config generation, staged
// enablement (§6.1), and §5.1 configuration-drift monitoring.
#include <gtest/gtest.h>

#include "src/rocev2/deployment.h"

namespace rocelab {
namespace {

TEST(Deployment, FullStageEnablesLosslessEverywhere) {
  QosPolicy policy;
  for (SwitchTier tier : {SwitchTier::kTor, SwitchTier::kLeaf, SwitchTier::kSpine}) {
    const auto cfg = make_switch_config(policy, tier, DeploymentStage::kFull);
    EXPECT_TRUE(cfg.lossless[static_cast<std::size_t>(policy.bulk_class)]);
    EXPECT_TRUE(cfg.lossless[static_cast<std::size_t>(policy.realtime_class)]);
  }
}

TEST(Deployment, TorOnlyStageKeepsFabricLossy) {
  QosPolicy policy;
  const auto tor = make_switch_config(policy, SwitchTier::kTor, DeploymentStage::kTorOnly);
  const auto leaf = make_switch_config(policy, SwitchTier::kLeaf, DeploymentStage::kTorOnly);
  const auto spine = make_switch_config(policy, SwitchTier::kSpine, DeploymentStage::kTorOnly);
  EXPECT_TRUE(tor.lossless[3]);
  EXPECT_FALSE(leaf.lossless[3]);
  EXPECT_FALSE(spine.lossless[3]);
}

TEST(Deployment, PodsetStageStopsAtSpine) {
  QosPolicy policy;
  const auto leaf = make_switch_config(policy, SwitchTier::kLeaf, DeploymentStage::kPodset);
  const auto spine = make_switch_config(policy, SwitchTier::kSpine, DeploymentStage::kPodset);
  EXPECT_TRUE(leaf.lossless[3]);
  EXPECT_FALSE(spine.lossless[3]);
}

TEST(Deployment, WatchdogOnlyOnServerFacingTier) {
  QosPolicy policy;
  EXPECT_TRUE(make_switch_config(policy, SwitchTier::kTor).watchdog.enabled);
  EXPECT_FALSE(make_switch_config(policy, SwitchTier::kLeaf).watchdog.enabled);
}

TEST(Deployment, HeadroomSizedFromPolicyCable) {
  QosPolicy policy;
  policy.max_cable_m = 300;
  const auto far = make_switch_config(policy, SwitchTier::kTor).mmu.headroom_per_pg;
  policy.max_cable_m = 20;
  const auto near = make_switch_config(policy, SwitchTier::kTor).mmu.headroom_per_pg;
  EXPECT_GT(far, near);
}

TEST(Deployment, HostConfigReflectsPolicy) {
  QosPolicy policy;
  const auto host = make_host_config(policy);
  EXPECT_TRUE(host.lossless[3]);
  EXPECT_TRUE(host.lossless[4]);
  EXPECT_FALSE(host.lossless[1]);
  EXPECT_TRUE(host.watchdog.enabled);
  EXPECT_EQ(host.mtt.page_bytes, 2 * kMiB);  // §4.4 large-page mitigation
}

TEST(Deployment, QpConfigClasses) {
  QosPolicy policy;
  const auto bulk = make_qp_config(policy, false);
  const auto rt = make_qp_config(policy, true);
  EXPECT_EQ(bulk.priority, policy.bulk_class);
  EXPECT_EQ(rt.priority, policy.realtime_class);
  EXPECT_EQ(bulk.recovery, LossRecovery::kGoBackN);
}

TEST(Deployment, TierInferredFromName) {
  Simulator sim;
  Switch tor(sim, "tor-0-3", SwitchConfig{}, 2);
  Switch leaf(sim, "leaf-1-0", SwitchConfig{}, 2);
  Switch spine(sim, "spine-17", SwitchConfig{}, 2);
  EXPECT_EQ(tier_of(tor), SwitchTier::kTor);
  EXPECT_EQ(tier_of(leaf), SwitchTier::kLeaf);
  EXPECT_EQ(tier_of(spine), SwitchTier::kSpine);
}

TEST(ConfigMonitor, CleanFabricHasNoDrift) {
  QosPolicy policy;
  ClosParams params = make_clos_params(policy, DeploymentStage::kFull, 1, 2, 2, 2, 0);
  ClosFabric clos(params);
  EXPECT_TRUE(check_switch_configs(clos.fabric().switch_ptrs(), policy).empty());
}

TEST(ConfigMonitor, DetectsAlphaDrift) {
  QosPolicy policy;
  ClosParams params = make_clos_params(policy, DeploymentStage::kFull, 1, 2, 2, 2, 0);
  ClosFabric clos(params);
  clos.tor(0, 1).set_buffer_alpha(1.0 / 64);  // the Fig. 10 incident
  const auto drifts = check_switch_configs(clos.fabric().switch_ptrs(), policy);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].node, "tor-0-1");
  EXPECT_EQ(drifts[0].field, "mmu.alpha");
}

TEST(ConfigMonitor, DetectsArpPolicyDrift) {
  QosPolicy policy;
  ClosParams params = make_clos_params(policy, DeploymentStage::kFull, 1, 2, 2, 2, 0);
  ClosFabric clos(params);
  clos.tor(0, 0).set_arp_policy(ArpIncompletePolicy::kFlood);  // fix rolled back!
  const auto drifts = check_switch_configs(clos.fabric().switch_ptrs(), policy);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].field, "arp_policy");
  EXPECT_EQ(drifts[0].expected, "drop-lossless");
  EXPECT_EQ(drifts[0].actual, "flood");
}

TEST(ConfigMonitor, StageAwareExpectations) {
  QosPolicy policy;
  // Built for kPodset but checked against kFull: spines missing lossless.
  ClosParams params = make_clos_params(policy, DeploymentStage::kPodset, 2, 2, 2, 2, 4);
  ClosFabric clos(params);
  EXPECT_TRUE(
      check_switch_configs(clos.fabric().switch_ptrs(), policy, DeploymentStage::kPodset)
          .empty());
  const auto drifts =
      check_switch_configs(clos.fabric().switch_ptrs(), policy, DeploymentStage::kFull);
  EXPECT_FALSE(drifts.empty());
  for (const auto& d : drifts) {
    EXPECT_EQ(d.node.rfind("spine-", 0), 0u) << d.node;
  }
}

}  // namespace
}  // namespace rocelab
