// ISSUE 5 coverage: go-back-0 whole-message restart semantics (the §4.1
// livelock mechanism — a rewound cursor must survive the cumulative-ACK
// machinery), weighted-ECMP cost-out correctness against the memoized
// flow cache, and the SelfHealer control loop (hysteresis, probation,
// capacity floor, deterministic journalling).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/faults/chaos.h"
#include "src/faults/localizer.h"
#include "src/faults/self_heal.h"
#include "src/rocev2/deployment.h"
#include "src/switch/sw.h"
#include "src/topo/clos.h"
#include "src/topo/trace.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

QpConfig lab_qp(LossRecovery recovery) {
  QpConfig qp;
  qp.dcqcn = false;
  qp.recovery = recovery;
  return qp;
}

std::int64_t total_tx(const Node& n, int port) {
  std::int64_t s = 0;
  for (auto v : n.port(port).counters().tx_packets) s += v;
  return s;
}

// --- go-back-0 restart semantics ------------------------------------------------

// A drop in the SECOND pass must restart the message again: the first
// restart rewinds the cursor AND the unacked floor, and stale cumulative
// ACKs from the aborted pass must not yank the window forward past the
// second drop (the bug that made fig_livelock report go-back-0 as healthy).
TEST(GoBack0Restart, RestartSurvivesCumulativeAckAcrossPasses) {
  StarTopology topo(2);
  bool dropped5 = false;
  int seen2 = 0;
  topo.sw().set_drop_filter([&](const Packet& p) {
    if (p.kind != PacketKind::kRoceData) return false;
    if (p.bth->psn == 5 && !dropped5) {
      dropped5 = true;
      return true;
    }
    // PSN 2 of the SECOND pass (its first occurrence flew before PSN 5).
    if (p.bth->psn == 2 && ++seen2 == 2) return true;
    return false;
  });
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], lab_qp(LossRecovery::kGoBack0));
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 10 * 1024, 1);  // PSNs 0..9
  topo.sim().run_until(milliseconds(10));
  EXPECT_EQ(topo.hosts[0]->rdma().stats().messages_completed, 1);
  // Three passes: ~>= one full re-send plus the second pass's prefix.
  EXPECT_GE(topo.hosts[0]->rdma().stats().data_packets_retx, 12);
  EXPECT_LE(topo.hosts[0]->rdma().stats().data_packets_retx, 60);
}

// §4.1 in one QP: a deterministic every-8th-packet drop makes a clean pass
// over a 64-segment message impossible, so go-back-0 completes NOTHING
// while go-back-N shrugs the same loss pattern off.
TEST(GoBack0Restart, DeterministicLossLivelocksGoBack0Only) {
  for (LossRecovery recovery : {LossRecovery::kGoBack0, LossRecovery::kGoBackN}) {
    StarTopology topo(2);
    int n = 0;
    topo.sw().set_drop_filter([&n](const Packet& p) {
      return p.kind == PacketKind::kRoceData && (++n % 8) == 0;
    });
    auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], lab_qp(recovery));
    (void)qb;
    topo.hosts[0]->rdma().post_send(qa, 64 * 1024, 1);  // 64 segments
    topo.sim().run_until(milliseconds(20));
    const auto& st = topo.hosts[0]->rdma().stats();
    if (recovery == LossRecovery::kGoBack0) {
      EXPECT_EQ(st.messages_completed, 0) << "go-back-0 completed through steady loss?";
      // Livelock, not deadlock: the sender is busy retransmitting forever.
      EXPECT_GT(st.data_packets_retx, 200);
    } else {
      EXPECT_EQ(st.messages_completed, 1) << "go-back-N should recover per-drop";
    }
  }
}

// --- weighted ECMP + flow cache -------------------------------------------------

ClosParams small_clos() {
  QosPolicy policy;
  policy.max_cable_m = 20.0;
  return make_clos_params(policy, DeploymentStage::kFull, /*podsets=*/1, /*leaves=*/2,
                          /*tors=*/2, /*servers_per_tor=*/2, /*spines=*/0);
}

// The ISSUE's regression test: flip a port's weight mid-flow and assert not
// one more packet egresses it — the memoized flow->egress cache must be
// invalidated by the weight change, not keep steering the flow.
TEST(EcmpWeights, MidFlowCostOutMovesFlowOffPort) {
  ClosFabric clos(small_clos());
  Simulator& sim = clos.sim();
  Switch& tor0 = clos.tor(0, 0);
  QosPolicy policy;
  QpConfig qp = make_qp_config(policy);
  Host& src = clos.server(0, 0, 0);
  Host& dst = clos.server(0, 1, 0);
  auto [qa, qb] = connect_qp_pair(src, dst, qp);
  (void)qb;
  RdmaDemux demux(src);
  RdmaStreamSource stream(src, demux, qa,
                          {.message_bytes = 32 * kKiB, .max_outstanding = 2});
  stream.start();
  sim.run_until(milliseconds(1));

  // Which uplink carries the flow right now?
  int carrying = -1;
  for (const TraceHop& h : trace_route(clos.fabric(), src, dst, src.rdma().qp_sport(qa))) {
    if (h.node == &tor0) carrying = h.port;
  }
  ASSERT_GE(carrying, clos.tor_uplink_port(0));
  const std::int64_t done_at_flip = stream.completed_messages();

  tor0.set_port_weight(carrying, 0);
  sim.run_until(sim.now() + microseconds(200));  // drain what was already queued
  const std::int64_t tx_after_drain = total_tx(tor0, carrying);
  sim.run_until(sim.now() + milliseconds(2));

  EXPECT_EQ(total_tx(tor0, carrying), tx_after_drain)
      << "flow cache kept steering packets onto the costed-out port";
  EXPECT_GT(stream.completed_messages(), done_at_flip)
      << "flow did not re-hash onto the surviving uplink";
  EXPECT_GT(tor0.ecmp_weight_changes(), 0);
}

TEST(EcmpWeights, CapacityFloorNeverStrandsTraffic) {
  ClosFabric clos(small_clos());
  Switch& tor0 = clos.tor(0, 0);
  const int up0 = clos.tor_uplink_port(0);
  const int up1 = clos.tor_uplink_port(1);

  // Control plane: the last usable member of the uplink group is protected.
  EXPECT_TRUE(tor0.ecmp_cost_out_safe(up0));
  tor0.set_port_weight(up0, 0);
  EXPECT_FALSE(tor0.ecmp_cost_out_safe(up1)) << "would cost out the last member";
  // Server-facing ports belong to no ECMP group: nothing to cost out.
  EXPECT_FALSE(tor0.ecmp_cost_out_safe(0));

  // Data plane: even with EVERY member at weight 0 (a misbehaving or
  // bypassed control loop), forwarding falls back to the plain member list
  // rather than blackholing.
  tor0.set_port_weight(up1, 0);
  QosPolicy policy;
  Host& src = clos.server(0, 0, 0);
  Host& dst = clos.server(0, 1, 0);
  auto [qa, qb] = connect_qp_pair(src, dst, make_qp_config(policy));
  (void)qb;
  src.rdma().post_send(qa, 16 * kKiB, 1);
  clos.sim().run_until(milliseconds(2));
  EXPECT_EQ(src.rdma().stats().messages_completed, 1);
}

// --- SelfHealer control loop ----------------------------------------------------

struct HealerRig {
  ClosFabric clos{small_clos()};
  GrayFailureLocalizer localizer{clos.fabric()};
  Host& src;
  Host& dst;
  int target_port = -1;  // tor-0-0 uplink on the observed path

  HealerRig() : src(clos.server(0, 0, 0)), dst(clos.server(0, 1, 0)) {
    for (const TraceHop& h : trace_route(clos.fabric(), src, dst, kFwdSport)) {
      if (h.node == &clos.tor(0, 0)) target_port = h.port;
    }
  }

  static constexpr std::uint16_t kFwdSport = 1111;
  static constexpr std::uint16_t kRspSport = 2222;
  void observe(bool ok) { localizer.observe(src, dst, kFwdSport, kRspSport, ok); }
};

TEST(SelfHealerLoop, HysteresisIgnoresOscillatingEvidence) {
  HealerRig rig;
  ASSERT_GE(rig.target_port, 0);
  SelfHealConfig cfg;
  cfg.score_threshold = 0.6;
  cfg.min_probes = 1;
  cfg.confirm_scans = 2;
  SelfHealer healer(rig.clos.fabric(), rig.localizer, cfg);

  // Alternating outcomes keep the loss share bouncing across the
  // threshold; the confirm streak resets every time and nothing fires.
  for (int i = 0; i < 4; ++i) {
    rig.observe(/*ok=*/i % 2 != 0);
    healer.scan_now();
  }
  EXPECT_EQ(healer.stats().cost_outs, 0);
  EXPECT_EQ(rig.clos.tor(0, 0).port_weight(rig.target_port), 1);

  // Steady failures: two consecutive hot scans confirm and cost out.
  rig.observe(false);
  healer.scan_now();
  EXPECT_EQ(healer.stats().cost_outs, 0) << "fired before the confirm streak";
  rig.observe(false);
  healer.scan_now();
  EXPECT_GE(healer.stats().cost_outs, 1);
  EXPECT_TRUE(healer.costed_out("tor-0-0", rig.target_port));
  EXPECT_EQ(rig.clos.tor(0, 0).port_weight(rig.target_port), 0);
}

TEST(SelfHealerLoop, RestoresAfterCleanProbation) {
  HealerRig rig;
  ASSERT_GE(rig.target_port, 0);
  SelfHealConfig cfg;
  cfg.score_threshold = 0.6;
  cfg.min_probes = 1;
  cfg.confirm_scans = 2;
  cfg.probation = milliseconds(5);
  SelfHealer healer(rig.clos.fabric(), rig.localizer, cfg);

  rig.observe(false);
  healer.scan_now();
  rig.observe(false);
  healer.scan_now();
  ASSERT_TRUE(healer.costed_out("tor-0-0", rig.target_port));

  // Probation not yet served: still out.
  rig.clos.sim().run_until(rig.clos.sim().now() + milliseconds(2));
  healer.scan_now();
  EXPECT_TRUE(healer.costed_out("tor-0-0", rig.target_port));

  // Quiet past the probation: restored, and the adjudicated evidence must
  // not re-trigger a cost-out on the next scan.
  rig.clos.sim().run_until(rig.clos.sim().now() + milliseconds(5));
  healer.scan_now();
  EXPECT_FALSE(healer.costed_out("tor-0-0", rig.target_port));
  EXPECT_EQ(rig.clos.tor(0, 0).port_weight(rig.target_port), 1);
  EXPECT_GE(healer.stats().restores, 1);
  const std::int64_t outs = healer.stats().cost_outs;
  healer.scan_now();
  healer.scan_now();
  EXPECT_EQ(healer.stats().cost_outs, outs) << "stale evidence re-triggered after restore";
}

// A costed-out direction carries no probes, so a still-broken link looks
// clean after every probation — without a cooldown the healer restores and
// re-costs it every probation period. The cooldown must bound the flap
// period from below after the first restore proves premature.
TEST(SelfHealerLoop, RestoreCooldownBoundsFlapping) {
  HealerRig rig;
  ASSERT_GE(rig.target_port, 0);
  SelfHealConfig cfg;
  cfg.score_threshold = 0.6;
  cfg.min_probes = 1;
  cfg.confirm_scans = 2;
  cfg.probation = milliseconds(2);
  cfg.restore_cooldown = milliseconds(20);
  SelfHealer healer(rig.clos.fabric(), rig.localizer, cfg);
  Simulator& sim = rig.clos.sim();

  // Episode 1: confirm, cost out, serve probation, restore. (The failed
  // probe condemns every direction on both traced paths, so counters are
  // tracked as "per episode" snapshots, not absolute ones.)
  rig.observe(false);
  healer.scan_now();
  rig.observe(false);
  healer.scan_now();
  ASSERT_TRUE(healer.costed_out("tor-0-0", rig.target_port));
  sim.run_until(sim.now() + milliseconds(3));
  healer.scan_now();
  ASSERT_FALSE(healer.costed_out("tor-0-0", rig.target_port));
  const std::int64_t ep1_restores = healer.stats().restores;
  ASSERT_GE(ep1_restores, 1);
  const Time first_restore = sim.now();

  // The impairment is still there: fresh failures re-confirm immediately.
  rig.observe(false);
  healer.scan_now();
  rig.observe(false);
  healer.scan_now();
  ASSERT_TRUE(healer.costed_out("tor-0-0", rig.target_port));

  // Probation is served again, but the cooldown since the first restore is
  // not — every re-costed direction must stay out.
  sim.run_until(first_restore + milliseconds(5));
  healer.scan_now();
  EXPECT_TRUE(healer.costed_out("tor-0-0", rig.target_port))
      << "restored inside the cooldown: unbounded flapping";
  EXPECT_EQ(healer.stats().restores, ep1_restores);

  // Past the cooldown the restore goes through, and the target direction's
  // two restore stamps are at least a cooldown apart.
  sim.run_until(first_restore + milliseconds(21));
  healer.scan_now();
  EXPECT_FALSE(healer.costed_out("tor-0-0", rig.target_port));
  EXPECT_EQ(healer.stats().restores, 2 * ep1_restores);
  std::vector<Time> target_restores;
  for (const Mitigation& m : healer.history()) {
    if (m.node == "tor-0-0" && m.port == rig.target_port) {
      target_restores.push_back(m.restored_at);
    }
  }
  ASSERT_EQ(target_restores.size(), 2u);
  EXPECT_GE(target_restores[1] - target_restores[0], cfg.restore_cooldown);
}

TEST(SelfHealerLoop, JournalsMitigationsDeterministically) {
  auto run_once = [] {
    HealerRig rig;
    ChaosEngine chaos(rig.clos.fabric(), /*seed=*/2016);
    SelfHealConfig cfg;
    cfg.score_threshold = 0.6;
    cfg.min_probes = 1;
    cfg.confirm_scans = 2;
    SelfHealer healer(rig.clos.fabric(), rig.localizer, cfg);
    healer.set_chaos(&chaos);
    rig.clos.sim().run_until(microseconds(100));
    for (int i = 0; i < 3; ++i) {
      rig.observe(false);
      healer.scan_now();
    }
    return chaos.journal_text();
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("ecmp_cost_out"), std::string::npos);
}

}  // namespace
}  // namespace rocelab
