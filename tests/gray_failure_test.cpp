// Gray-failure plane tests: LinkImpairment (FCS loss, delay/jitter, one-way
// and flow blackholes), per-QP fault injection, the FailureDetector loss-
// rate window, exact path tracing, pingmesh-grid asymmetry, localization,
// journal completeness, and the zero-perturbation determinism guard.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/app/pingmesh_grid.h"
#include "src/app/traffic.h"
#include "src/faults/chaos.h"
#include "src/faults/failure_detector.h"
#include "src/faults/localizer.h"
#include "src/monitor/digest.h"
#include "src/monitor/health.h"
#include "src/rocev2/deployment.h"
#include "src/topo/clos.h"
#include "src/topo/trace.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;
using testing::basic_host_config;
using testing::basic_switch_config;

ClosParams small_clos() {
  QosPolicy policy;
  policy.max_cable_m = 20.0;
  policy.link_bw = gbps(10);
  return make_clos_params(policy, DeploymentStage::kFull, /*podsets=*/2, /*leaves=*/2,
                          /*tors=*/2, /*servers=*/2, /*spines=*/4);
}

QpConfig plain_qp() {
  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = microseconds(300);
  return qp;
}

// --- LinkImpairment ---------------------------------------------------------------

TEST(LinkImpairment, FcsLossCountsAtReceiverAndTransportRecovers) {
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], plain_qp());
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  RdmaStreamSource src(*topo.hosts[0], demux, qa,
                       RdmaStreamSource::Options{.message_bytes = 64 * kKiB,
                                                 .max_outstanding = 2});
  src.start();

  LinkImpairment imp;
  imp.fcs_drop_rate = 0.02;
  imp.seed = 7;
  topo.sw().port(1).set_impairment(imp);  // sw -> h1 direction only
  EXPECT_TRUE(topo.sw().port(1).impaired());

  topo.sim().run_until(milliseconds(10));
  const ImpairmentStats& st = topo.sw().port(1).impairment_stats();
  EXPECT_GT(st.fcs_drops, 0);
  // Corrupted frames are discarded (and counted) by the *receiver's* FCS
  // check — the tx side looks clean, exactly the §5.2 gray signature. (A
  // frame can still be on the wire at the cutoff, hence <=.)
  EXPECT_GT(topo.hosts[1]->port(0).counters().fcs_errors, 0);
  EXPECT_LE(topo.hosts[1]->port(0).counters().fcs_errors, st.fcs_drops);
  EXPECT_EQ(topo.sw().port(1).counters().fcs_errors, 0);
  // Go-back-N repaired the holes: data flows despite the lossy cable.
  EXPECT_GT(topo.hosts[0]->rdma().stats().data_packets_retx, 0);
  EXPECT_GT(topo.hosts[1]->rdma().stats().messages_received, 0);
}

TEST(LinkImpairment, OneWayBlackholeIsAsymmetric) {
  StarTopology topo(2);
  QpConfig qp = plain_qp();
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qa;
  RdmaDemux demux(*topo.hosts[1]);
  RdmaStreamSource src(*topo.hosts[1], demux, qb,
                       RdmaStreamSource::Options{.message_bytes = 16 * kKiB,
                                                 .max_outstanding = 1});
  src.start();

  // Kill h0's *transmit* direction only: h0 hears everything, says nothing.
  LinkImpairment imp;
  imp.blackhole = true;
  topo.hosts[0]->port(0).set_impairment(imp);

  topo.sim().run_until(milliseconds(5));
  // Data from h1 arrives and is delivered in order at h0...
  EXPECT_GT(topo.hosts[0]->rdma().stats().messages_received, 0);
  // ...but every ACK died on h0's egress, so h1 completes nothing.
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_completed, 0);
  EXPECT_GT(topo.hosts[0]->port(0).counters().impairment_drops, 0);
  EXPECT_GT(topo.hosts[0]->port(0).impairment_stats().blackhole_drops, 0);
}

TEST(LinkImpairment, FlowBlackholeKillsDeterministicSubset) {
  auto run = [](std::vector<bool>& starved) {
    StarTopology topo(2);
    QpConfig qp = plain_qp();
    qp.retx_timeout = microseconds(200);
    std::vector<std::uint32_t> qpns;
    for (int i = 0; i < 8; ++i) {
      auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
      (void)qb;
      qpns.push_back(qa);
    }
    RdmaDemux demux(*topo.hosts[0]);
    std::vector<std::unique_ptr<RdmaStreamSource>> sources;
    for (auto qpn : qpns) {
      sources.push_back(std::make_unique<RdmaStreamSource>(
          *topo.hosts[0], demux, qpn,
          RdmaStreamSource::Options{.message_bytes = 8 * kKiB, .max_outstanding = 1}));
      sources.back()->start();
    }
    LinkImpairment imp;
    imp.flow_blackhole_frac = 0.5;
    imp.seed = 11;
    topo.sw().port(1).set_impairment(imp);
    topo.sim().run_until(milliseconds(10));
    EXPECT_GT(topo.sw().port(1).impairment_stats().flow_drops, 0);
    // A blackholed flow never completes a message: every retransmission
    // carries the same 5-tuple, so it hits the same hash bucket forever.
    for (auto& s : sources) starved.push_back(s->completed_messages() == 0);
  };

  std::vector<bool> first, second;
  run(first);
  run(second);
  // The killed subset is a property of the 5-tuples and the seed: non-empty,
  // not everything, and identical run to run.
  const auto dead = static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(dead, 0u);
  EXPECT_LT(dead, first.size());
  EXPECT_EQ(first, second);
}

TEST(LinkImpairment, DelayAndJitterStretchRttWithoutLoss) {
  auto mean_rtt = [](bool impaired) {
    StarTopology topo(2);
    QpConfig qp = plain_qp();
    auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
    RdmaDemux d0(*topo.hosts[0]);
    RdmaDemux d1(*topo.hosts[1]);
    RdmaEchoServer echo(*topo.hosts[1], d1, qb, 512);
    RdmaPingmesh mesh(*topo.hosts[0], d0, {qa}, RdmaPingmesh::Options{
        .probe_bytes = 512, .interval = microseconds(100), .timeout = milliseconds(10)});
    if (impaired) {
      LinkImpairment imp;
      imp.added_delay = microseconds(5);
      imp.jitter = microseconds(2);
      imp.seed = 3;
      topo.sw().port(1).set_impairment(imp);
    }
    mesh.start();
    topo.sim().run_until(milliseconds(5));
    EXPECT_EQ(mesh.probes_failed(), 0);
    return mesh.rtt_us().mean();
  };
  const double base = mean_rtt(false);
  const double slow = mean_rtt(true);
  // One impaired direction adds >= 5us one-way to every probe.
  EXPECT_GE(slow, base + 5.0);
}

// Satellite: the determinism guard. Installing the whole gray plane
// *disabled* must not shift a single counter or timestamp.
TEST(LinkImpairment, DisabledPlaneLeavesDigestUnchanged) {
  auto run = [](bool install_disabled) {
    StarTopology topo(3);
    QpConfig qp = plain_qp();
    auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
    auto [qc, qd] = connect_qp_pair(*topo.hosts[2], *topo.hosts[1], qp);
    (void)qb;
    (void)qd;
    RdmaDemux d0(*topo.hosts[0]);
    RdmaDemux d2(*topo.hosts[2]);
    RdmaStreamSource s0(*topo.hosts[0], d0, qa,
                        RdmaStreamSource::Options{.message_bytes = 32 * kKiB,
                                                  .max_outstanding = 2});
    RdmaStreamSource s2(*topo.hosts[2], d2, qc,
                        RdmaStreamSource::Options{.message_bytes = 32 * kKiB,
                                                  .max_outstanding = 2});
    s0.start();
    s2.start();
    if (install_disabled) {
      LinkImpairment imp;
      imp.enabled = false;
      imp.fcs_drop_rate = 0.5;  // would be catastrophic if it ever fired
      imp.blackhole = true;
      imp.added_delay = milliseconds(1);
      for (int p = 0; p < topo.sw().port_count(); ++p) topo.sw().port(p).set_impairment(imp);
      for (auto* h : topo.hosts) h->port(0).set_impairment(imp);
      QpFaultSpec spec;
      spec.enabled = false;
      spec.drop_rate = 0.5;
      spec.dup_ack_rate = 0.5;
      for (auto* h : topo.hosts) h->rdma().set_qp_fault(1, spec);
    }
    topo.sim().run_until(milliseconds(8));
    return counters_digest(*topo.fabric);
  };
  EXPECT_EQ(run(false), run(true));
}

// --- per-QP fault injection -------------------------------------------------------

TEST(QpFaultInjection, CampaignHitsOneQpAndLeavesBystandersUntouched) {
  struct Result {
    RdmaNicStats victim_tx;      // h0 (victim sender)
    QpFaultStats injected;       // at h1 (victim receiver): data drop/reorder
    QpFaultStats injected_acks;  // at h0 (victim sender): dup ACKs
    std::int64_t victim_done = 0;
    std::int64_t bystander_done = 0;
    std::int64_t bystander_rx_bytes = 0;
    std::uint64_t digest = 0;
  };
  auto run = [](bool campaign) {
    StarTopology topo(4);
    QpConfig qp = plain_qp();
    auto [victim_q, victim_dst] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
    auto [bystander_q, be] = connect_qp_pair(*topo.hosts[2], *topo.hosts[3], qp);
    (void)be;
    RdmaDemux d0(*topo.hosts[0]);
    RdmaDemux d2(*topo.hosts[2]);
    RdmaStreamSource victim(*topo.hosts[0], d0, victim_q,
                            RdmaStreamSource::Options{.message_bytes = 32 * kKiB,
                                                      .max_outstanding = 2});
    RdmaStreamSource bystander(*topo.hosts[2], d2, bystander_q,
                               RdmaStreamSource::Options{.message_bytes = 32 * kKiB,
                                                         .max_outstanding = 2});
    victim.start();
    bystander.start();
    if (campaign) {
      // The campaign targets one connection, end to end: data packets are
      // dropped/reordered where they arrive (h1's NIC, the responder QPN)
      // and the responder's ACKs are duplicated where *they* arrive (h0's
      // NIC, the requester QPN).
      QpFaultSpec spec;
      spec.drop_rate = 0.05;
      spec.reorder_rate = 0.05;
      spec.reorder_delay = microseconds(30);
      spec.seed = 21;
      topo.hosts[1]->rdma().set_qp_fault(victim_dst, spec);
      QpFaultSpec ack_spec;
      ack_spec.dup_ack_rate = 0.10;
      ack_spec.seed = 22;
      topo.hosts[0]->rdma().set_qp_fault(victim_q, ack_spec);
    }
    topo.sim().run_until(milliseconds(10));
    Result r;
    r.victim_tx = topo.hosts[0]->rdma().stats();
    r.injected = topo.hosts[1]->rdma().qp_fault_stats(victim_dst);
    r.injected_acks = topo.hosts[0]->rdma().qp_fault_stats(victim_q);
    r.victim_done = victim.completed_messages();
    r.bystander_done = bystander.completed_messages();
    r.bystander_rx_bytes = topo.hosts[3]->rdma().stats().bytes_received;
    r.digest = counters_digest(*topo.fabric);
    return r;
  };

  const Result clean = run(false);
  const Result hit = run(true);
  const Result hit2 = run(true);

  // The campaign actually fired, through all three mechanisms.
  EXPECT_GT(hit.injected.drops, 0);
  EXPECT_GT(hit.injected.reorders, 0);
  EXPECT_GT(hit.injected_acks.dup_acks, 0);
  // Injected drops forced go-back-N recovery on the victim QP (NAKs and/or
  // timeouts -> retransmissions), which still made forward progress.
  EXPECT_EQ(clean.victim_tx.data_packets_retx, 0);
  EXPECT_GT(hit.victim_tx.data_packets_retx, 0);
  EXPECT_GT(hit.victim_done, 0);
  EXPECT_LE(hit.victim_done, clean.victim_done);
  // Bystander QPs never noticed: same completions, same bytes, to the byte.
  EXPECT_EQ(hit.bystander_done, clean.bystander_done);
  EXPECT_EQ(hit.bystander_rx_bytes, clean.bystander_rx_bytes);
  // And the whole run is seeded-deterministic: same campaign, same digest.
  EXPECT_EQ(hit.digest, hit2.digest);
  EXPECT_NE(hit.digest, clean.digest);
}

// --- FailureDetector loss-rate window ---------------------------------------------

// A flappy peer losing 2 of every 3 probes never trips raise_after=3; only
// the windowed rate alarm sees it (that is the satellite's point).
TEST(FailureDetectorWindow, FlappyPeerBelowConsecutiveThresholdRaisesRateAlarm) {
  FailureDetector::Options opts;
  opts.raise_after = 3;
  opts.clear_after = 2;
  opts.loss_window = 12;
  opts.raise_loss_rate = 0.5;
  opts.clear_loss_rate = 0.1;
  FailureDetector det(opts);

  Time t = 0;
  for (int i = 0; i < 15; ++i) {  // L L ok L L ok ... : rate 2/3
    det.observe(t += 1, 1, (i % 3) == 2);
  }
  ASSERT_TRUE(det.alarmed(1));
  ASSERT_EQ(det.alarms_raised(), 1);
  EXPECT_EQ(det.history().front().reason, FailureDetector::Reason::kLossRate);
  EXPECT_GE(det.loss_rate(1), 0.5);

  // Clear hysteresis: two straight successes are NOT enough while the
  // window is still hot; the alarm clears exactly once, when the rate has
  // drained below clear_loss_rate.
  det.observe(t += 1, 1, true);
  det.observe(t += 1, 1, true);
  EXPECT_TRUE(det.alarmed(1)) << "cleared while the window was still lossy";
  for (int i = 0; i < 12; ++i) det.observe(t += 1, 1, true);
  EXPECT_FALSE(det.alarmed(1));
  EXPECT_EQ(det.alarms_raised(), 1);
  EXPECT_EQ(det.alarms_cleared(), 1);
}

TEST(FailureDetectorWindow, LegacyConsecutiveBehaviourUnchangedWhenWindowOff) {
  FailureDetector det(FailureDetector::Options{.raise_after = 3, .clear_after = 2});
  Time t = 0;
  for (int i = 0; i < 300; ++i) det.observe(t += 1, 1, (i % 3) == 2);
  EXPECT_FALSE(det.alarmed(1));
  EXPECT_EQ(det.alarms_raised(), 0);
}

TEST(FailureDetectorWindow, ConsecutiveTriggerStillFiresWithWindowEnabled) {
  FailureDetector::Options opts;
  opts.raise_after = 3;
  opts.loss_window = 100;  // far from full when the burst hits
  FailureDetector det(opts);
  Time t = 0;
  det.observe(t += 1, 7, true);
  for (int i = 0; i < 3; ++i) det.observe(t += 1, 7, false);
  ASSERT_TRUE(det.alarmed(7));
  EXPECT_EQ(det.history().back().reason, FailureDetector::Reason::kConsecutive);
}

// --- path tracing -----------------------------------------------------------------

TEST(TraceRoute, MirrorsEcmpWithoutSideEffects) {
  ClosFabric clos(small_clos());
  const Host& src = clos.server(0, 0, 0);
  const Host& dst = clos.server(1, 1, 1);

  std::int64_t failovers_before = 0;
  for (auto* sw : clos.fabric().switch_ptrs()) failovers_before += sw->route_failovers();

  const auto hops = trace_route(clos.fabric(), src, dst, /*sport=*/0x1234);
  // host -> tor -> leaf -> spine -> leaf -> tor -> (attached server)
  ASSERT_EQ(hops.size(), 6u);
  EXPECT_EQ(hops.front().node, static_cast<const Node*>(&src));
  EXPECT_EQ(hops.front().port, 0);
  EXPECT_EQ(hops.back().node, static_cast<const Node*>(&clos.tor(1, 1)));
  EXPECT_EQ(hops.back().port, clos.fabric().attachment_port(clos.tor(1, 1), dst));
  // Deterministic, and different sports may take different spines.
  EXPECT_EQ(hops, trace_route(clos.fabric(), src, dst, 0x1234));

  std::int64_t failovers_after = 0;
  for (auto* sw : clos.fabric().switch_ptrs()) failovers_after += sw->route_failovers();
  EXPECT_EQ(failovers_before, failovers_after) << "tracing perturbed forwarding state";

  // Intra-rack: two hops, host then ToR.
  const auto local = trace_route(clos.fabric(), src, clos.server(0, 0, 1), 0x1234);
  ASSERT_EQ(local.size(), 2u);
  EXPECT_EQ(local.back().node, static_cast<const Node*>(&clos.tor(0, 0)));
  EXPECT_FALSE(trace_text(local).empty());
}

// --- journal completeness ---------------------------------------------------------

TEST(ChaosJournal, GrayFaultKindsAreJournalledAndByteIdentical) {
  auto run = [](std::string& text, std::uint64_t& hash) {
    StarTopology topo(3);
    QpConfig qp = plain_qp();
    auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
    (void)qa;
    ChaosEngine chaos(*topo.fabric, /*seed=*/42);
    LinkImpairment imp;
    imp.fcs_drop_rate = 1e-3;
    imp.seed = 5;
    chaos.impair_link(topo.sw(), 1, imp, microseconds(100), microseconds(900));
    QpFaultSpec spec;
    spec.drop_rate = 0.1;
    spec.seed = 6;
    chaos.qp_fault(*topo.hosts[1], qb, spec, microseconds(200), microseconds(800));
    chaos.drop_filter(topo.sw(), [](const Packet& p) { return p.ip && (p.ip->id & 0xff) == 0xff; },
                      "ip_id lsb 0xff", microseconds(300), microseconds(700));
    topo.sim().run_until(milliseconds(1));
    text = chaos.journal_text();
    hash = chaos.journal_hash();
  };
  std::string t1, t2;
  std::uint64_t h1 = 0, h2 = 0;
  run(t1, h1);
  run(t2, h2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(h1, h2);
  for (const char* kind : {"link_impair", "link_impair_clear", "qp_fault_start", "qp_fault_stop",
                           "drop_filter_set", "drop_filter_clear"}) {
    EXPECT_NE(t1.find(kind), std::string::npos) << "journal is missing " << kind << ":\n" << t1;
  }
}

// --- monitor surfacing ------------------------------------------------------------

TEST(LinkHealth, MonitorFlagsLossyPortAndDumpShowsFilteredDrops) {
  StarTopology topo(2);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], plain_qp());
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  RdmaStreamSource src(*topo.hosts[0], demux, qa,
                       RdmaStreamSource::Options{.message_bytes = 64 * kKiB,
                                                 .max_outstanding = 2});
  src.start();
  LinkImpairment imp;
  imp.fcs_drop_rate = 0.01;
  imp.seed = 9;
  topo.sw().port(1).set_impairment(imp);
  // Injected switch loss, to land in the same dump as the MMU counters.
  topo.sw().set_drop_filter([](const Packet& p) { return p.ip && (p.ip->id % 199) == 0; });

  LinkHealthMonitor mon(*topo.fabric, LinkHealthMonitor::Options{.interval = milliseconds(1)});
  mon.start();
  topo.sim().run_until(milliseconds(10));

  // FCS errors land at h1's side of the sw->h1 direction; the watcher
  // flags that port and nothing else.
  EXPECT_TRUE(mon.is_flagged("h1", 0));
  EXPECT_EQ(mon.flagged().size(), 1u);
  EXPECT_GE(mon.windows(), 9);

  // Per-port attribution of drop-filter hits (previously switch-global).
  EXPECT_GT(topo.sw().port(0).counters().filtered_drops, 0);
  EXPECT_EQ(topo.sw().port(0).counters().filtered_drops + topo.sw().port(1).counters().filtered_drops,
            topo.sw().filtered_drops());

  const std::string dump = port_health_dump(*topo.fabric);
  EXPECT_NE(dump.find("h1:0"), std::string::npos) << dump;
  EXPECT_NE(dump.find("sw:0"), std::string::npos) << dump;
  bool found = false;
  for (const PortHealth& h : collect_port_health(*topo.fabric)) {
    if (h.node == "h1" && h.port == 0) {
      found = true;
      EXPECT_GT(h.fcs_errors, 0);
      EXPECT_GT(h.fcs_rate(), 0.0);
    }
  }
  EXPECT_TRUE(found);
}

// --- the acceptance integration: blackhole + lossy link on a 2-podset Clos --------

TEST(GrayLocalization, PingmeshMatrixAsymmetricAndLocalizerRanksImpairedLinks) {
  ClosFabric clos(small_clos());
  Fabric& fabric = clos.fabric();

  // Probers: every server (8 of them) -> dense path coverage, so healthy
  // links all carry successful probes and cannot tie with the faulty ones.
  std::vector<Host*> hosts;
  std::vector<std::unique_ptr<RdmaDemux>> demux_store;
  std::vector<RdmaDemux*> demuxes;
  for (int ps = 0; ps < 2; ++ps) {
    for (int t = 0; t < 2; ++t) {
      for (int i = 0; i < 2; ++i) {
        hosts.push_back(&clos.server(ps, t, i));
        demux_store.push_back(std::make_unique<RdmaDemux>(clos.server(ps, t, i)));
        demuxes.push_back(demux_store.back().get());
      }
    }
  }

  PingmeshGrid::Options gopts;
  gopts.probe = RdmaPingmesh::Options{.probe_bytes = 512,
                                      .interval = microseconds(50),
                                      .timeout = microseconds(400)};
  gopts.qp = plain_qp();
  gopts.qp.retx_timeout = microseconds(150);
  gopts.qp.retry_limit = 3;
  PingmeshGrid grid(hosts, demuxes, gopts);

  GrayFailureLocalizer localizer(fabric);
  grid.set_outcome_cb([&](int src, int dst, bool ok, Time) {
    localizer.observe(grid.host(src), grid.host(dst), grid.probe_sport(src, dst),
                      grid.echo_sport(src, dst), ok);
  });

  // The two faces of one bad cable between tor-0-0 and leaf-0-0:
  //  - up direction   tor-0-0:2 -> leaf-0-0: one-way blackhole (asymmetric
  //    partition: flows hashed onto this uplink die, the reverse lives);
  //  - down direction leaf-0-0:0 -> tor-0-0: 1e-3 FCS loss (lossy-but-up).
  LinkImpairment blackhole;
  blackhole.blackhole = true;
  clos.tor(0, 0).port(2).set_impairment(blackhole);
  LinkImpairment lossy;
  lossy.fcs_drop_rate = 1e-3;
  lossy.seed = 13;
  clos.leaf(0, 0).port(0).set_impairment(lossy);

  // Background load across the fabric keeps the lossy downlink busy enough
  // for its FCS counter to move (probes alone are thin at 1e-3).
  std::vector<std::unique_ptr<RdmaStreamSource>> streams;
  for (int t = 0; t < 2; ++t) {
    for (int i = 0; i < 2; ++i) {
      Host& peer = clos.server(1, t, i);
      auto [q, e] = connect_qp_pair(peer, clos.server(0, 0, i), plain_qp());
      (void)e;
      const std::size_t di = static_cast<std::size_t>(4 + t * 2 + i);  // peer's demux index
      streams.push_back(std::make_unique<RdmaStreamSource>(
          peer, *demuxes[di], q,
          RdmaStreamSource::Options{.message_bytes = 32 * kKiB, .max_outstanding = 2}));
      streams.back()->start();
    }
  }

  grid.start();
  fabric.sim().run_until(milliseconds(20));

  // Detection: the reachability matrix is asymmetric — some (i, j) is dark
  // while (j, i) still answers.
  EXPECT_TRUE(grid.asymmetric()) << grid.matrix_text();

  // Ground truth moved.
  EXPECT_GT(clos.tor(0, 0).port(2).impairment_stats().blackhole_drops, 0);
  EXPECT_GT(clos.tor(0, 0).port(2).counters().fcs_errors, 0)
      << "lossy downlink FCS counter (rx side at tor-0-0:2) never moved";

  // Localization: both impaired directions are the top-2 suspects.
  const auto ranked = localizer.rank(/*min_probes=*/3);
  ASSERT_GE(ranked.size(), 2u) << localizer.report();
  std::vector<std::pair<std::string, int>> top = {{ranked[0].node, ranked[0].port},
                                                  {ranked[1].node, ranked[1].port}};
  const std::pair<std::string, int> want_blackhole{clos.tor(0, 0).name(), 2};
  const std::pair<std::string, int> want_lossy{clos.leaf(0, 0).name(), 0};
  EXPECT_TRUE(std::find(top.begin(), top.end(), want_blackhole) != top.end())
      << localizer.report();
  EXPECT_TRUE(std::find(top.begin(), top.end(), want_lossy) != top.end()) << localizer.report();
}

}  // namespace
}  // namespace rocelab
