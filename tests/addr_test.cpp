#include <gtest/gtest.h>

#include <unordered_set>

#include "src/net/addr.h"

namespace rocelab {
namespace {

TEST(MacAddr, Formatting) {
  MacAddr m{{0x02, 0x00, 0xab, 0xcd, 0x01, 0x09}};
  EXPECT_EQ(m.str(), "02:00:ab:cd:01:09");
}

TEST(MacAddr, U64RoundTrip) {
  const MacAddr m{{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc}};
  EXPECT_EQ(MacAddr::from_u64(m.to_u64()), m);
  EXPECT_EQ(m.to_u64(), 0x123456789abcull);
}

TEST(MacAddr, BroadcastAndMulticast) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
  EXPECT_TRUE(MacAddr::pfc_multicast().is_multicast());
  EXPECT_FALSE(MacAddr::pfc_multicast().is_broadcast());
  EXPECT_FALSE(MacAddr::from_u64(0x020000000001).is_multicast());
}

TEST(MacAddr, PfcMulticastIsReservedAddress) {
  EXPECT_EQ(MacAddr::pfc_multicast().str(), "01:80:c2:00:00:01");
}

TEST(MacAddr, Hashable) {
  std::unordered_set<MacAddr> set;
  set.insert(MacAddr::from_u64(1));
  set.insert(MacAddr::from_u64(2));
  set.insert(MacAddr::from_u64(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ipv4Addr, OctetsAndFormatting) {
  const auto ip = Ipv4Addr::from_octets(10, 1, 2, 3);
  EXPECT_EQ(ip.value, 0x0a010203u);
  EXPECT_EQ(ip.str(), "10.1.2.3");
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr::from_octets(10, 0, 0, 1), Ipv4Addr::from_octets(10, 0, 0, 2));
}

struct PrefixCase {
  std::uint8_t a, b, c, d;
  int len;
  std::uint8_t ta, tb, tc, td;
  bool contains;
};

class PrefixContains : public ::testing::TestWithParam<PrefixCase> {};

TEST_P(PrefixContains, Matches) {
  const auto& p = GetParam();
  const Ipv4Prefix prefix{Ipv4Addr::from_octets(p.a, p.b, p.c, p.d), p.len};
  EXPECT_EQ(prefix.contains(Ipv4Addr::from_octets(p.ta, p.tb, p.tc, p.td)), p.contains);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PrefixContains,
    ::testing::Values(PrefixCase{10, 0, 1, 0, 24, 10, 0, 1, 55, true},
                      PrefixCase{10, 0, 1, 0, 24, 10, 0, 2, 55, false},
                      PrefixCase{10, 0, 0, 0, 16, 10, 0, 200, 1, true},
                      PrefixCase{10, 0, 0, 0, 16, 10, 1, 0, 1, false},
                      PrefixCase{0, 0, 0, 0, 0, 192, 168, 1, 1, true},  // default route
                      PrefixCase{10, 0, 1, 7, 32, 10, 0, 1, 7, true},
                      PrefixCase{10, 0, 1, 7, 32, 10, 0, 1, 8, false},
                      PrefixCase{128, 0, 0, 0, 1, 200, 0, 0, 1, true},
                      PrefixCase{128, 0, 0, 0, 1, 100, 0, 0, 1, false}));

TEST(Ipv4Prefix, Formatting) {
  EXPECT_EQ((Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24}).str(), "10.0.1.0/24");
}

}  // namespace
}  // namespace rocelab
