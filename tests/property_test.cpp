// Property-style sweeps (TEST_P) over the core invariants:
//  - LOSSLESS: under arbitrary congestion, a PFC-protected class never
//    drops a packet and all messages eventually complete.
//  - INTEGRITY: with random loss and go-back-N, everything still completes
//    exactly once.
//  - QUIESCENCE: when traffic stops, every pause clears and every queue and
//    MMU pool drains to zero.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

struct LosslessCase {
  int senders;
  double alpha;
  std::int64_t message_kib;
};

class LosslessInvariant : public ::testing::TestWithParam<LosslessCase> {};

TEST_P(LosslessInvariant, NoDropsAllCompleteAndQuiesce) {
  const auto param = GetParam();
  SwitchConfig cfg = testing::basic_switch_config();
  cfg.mmu.alpha = param.alpha;
  StarTopology topo(param.senders + 1, cfg);
  Host& receiver = *topo.hosts[static_cast<std::size_t>(param.senders)];

  QpConfig qp;
  qp.dcqcn = false;  // maximum pressure on PFC
  const int messages_per_sender = 4;
  for (int i = 0; i < param.senders; ++i) {
    auto [qa, qb] = connect_qp_pair(*topo.hosts[static_cast<std::size_t>(i)], receiver, qp);
    (void)qb;
    for (int m = 0; m < messages_per_sender; ++m) {
      topo.hosts[static_cast<std::size_t>(i)]->rdma().post_send(
          qa, param.message_kib * kKiB, static_cast<std::uint64_t>(m));
    }
  }
  topo.sim().run_until(milliseconds(200));

  // 1. Lossless: zero drops anywhere.
  for (int p = 0; p < topo.sw().port_count(); ++p) {
    EXPECT_EQ(topo.sw().port(p).counters().headroom_overflow_drops, 0) << "port " << p;
  }
  // 2. Complete delivery.
  EXPECT_EQ(receiver.rdma().stats().messages_received, param.senders * messages_per_sender);
  EXPECT_EQ(receiver.rdma().stats().bytes_received,
            static_cast<std::int64_t>(param.senders) * messages_per_sender * param.message_kib *
                kKiB);
  // 3. Quiescence: pauses cleared, queues empty, MMU drained.
  for (int p = 0; p < topo.sw().port_count(); ++p) {
    EXPECT_EQ(topo.sw().port(p).total_queued_bytes(), 0) << "port " << p;
    for (int pg = 0; pg < kNumPriorities; ++pg) {
      EXPECT_FALSE(topo.sw().pause_asserted(p, pg));
    }
  }
  EXPECT_EQ(topo.sw().mmu().shared_used(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LosslessInvariant,
    ::testing::Values(LosslessCase{2, 1.0 / 16, 64}, LosslessCase{2, 1.0 / 64, 64},
                      LosslessCase{4, 1.0 / 16, 128}, LosslessCase{4, 1.0 / 64, 128},
                      LosslessCase{8, 1.0 / 16, 64}, LosslessCase{8, 1.0 / 64, 256},
                      LosslessCase{6, 1.0 / 4, 256}));

class LossRecoveryIntegrity : public ::testing::TestWithParam<double> {};

TEST_P(LossRecoveryIntegrity, EverythingCompletesExactlyOnceUnderRandomLoss) {
  const double loss = GetParam();
  StarTopology topo(2);
  auto rng = std::make_shared<Rng>(static_cast<std::uint64_t>(loss * 1e7) + 1);
  topo.sw().set_drop_filter([rng, loss](const Packet& p) {
    (void)p;
    return rng->bernoulli(loss);  // drop ANY packet: data, acks, naks
  });
  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = microseconds(200);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);

  std::vector<int> delivered(20, 0);
  RdmaDemux demux(*topo.hosts[1]);
  demux.on_recv(qb, [&](const RdmaRecv& r) { ++delivered[r.msg_id]; });
  for (std::uint64_t m = 0; m < 20; ++m) {
    topo.hosts[0]->rdma().post_send(qa, 16 * 1024, m);
  }
  topo.sim().run_until(milliseconds(500));
  for (int m = 0; m < 20; ++m) {
    EXPECT_EQ(delivered[static_cast<std::size_t>(m)], 1) << "msg " << m;
  }
  EXPECT_EQ(topo.hosts[0]->rdma().stats().messages_completed, 20);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossRecoveryIntegrity,
                         ::testing::Values(0.0, 0.001, 0.005, 0.02, 0.05));

class DcqcnStability : public ::testing::TestWithParam<int> {};

TEST_P(DcqcnStability, IncastConvergesWithBoundedQueue) {
  const int senders = GetParam();
  SwitchConfig cfg = testing::basic_switch_config();
  cfg.ecn[3] = EcnConfig{true, 5 * kKiB, 200 * kKiB, 0.01};
  StarTopology topo(senders + 1, cfg);
  Host& receiver = *topo.hosts[static_cast<std::size_t>(senders)];
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  std::vector<std::unique_ptr<RdmaStreamSource>> sources;
  for (int i = 0; i < senders; ++i) {
    auto [qa, qb] = connect_qp_pair(*topo.hosts[static_cast<std::size_t>(i)], receiver, QpConfig{});
    (void)qb;
    demuxes.push_back(std::make_unique<RdmaDemux>(*topo.hosts[static_cast<std::size_t>(i)]));
    sources.push_back(std::make_unique<RdmaStreamSource>(
        *topo.hosts[static_cast<std::size_t>(i)], *demuxes.back(), qa,
        RdmaStreamSource::Options{.message_bytes = 64 * kKiB, .max_outstanding = 2}));
    sources.back()->start();
  }
  topo.sim().run_until(milliseconds(20));
  // Steady state: queue to the receiver stays in the ECN-managed band most
  // of the time; sample it now.
  const std::int64_t q = topo.sw().port(senders).queued_bytes(3);
  EXPECT_LT(q, 2 * kMiB) << "queue runaway with " << senders << " senders";
  // All senders make progress.
  for (auto& s : sources) EXPECT_GT(s->completed_messages(), 0);
}

INSTANTIATE_TEST_SUITE_P(Fanin, DcqcnStability, ::testing::Values(2, 4, 8, 16));

class EcmpUniformity : public ::testing::TestWithParam<int> {};

TEST_P(EcmpUniformity, HashSpreadsFlowsEvenly) {
  const int ports = GetParam();
  // Synthetic 5-tuple population hashed over `ports` next-hops: chi-square
  // style bound on imbalance.
  std::vector<int> counts(static_cast<std::size_t>(ports), 0);
  const int flows = 20000;
  for (int f = 0; f < flows; ++f) {
    Packet pkt;
    Ipv4Header ip;
    ip.src = Ipv4Addr{0x0a000001u + static_cast<std::uint32_t>(f % 251)};
    ip.dst = Ipv4Addr{0x0a010001u + static_cast<std::uint32_t>(f % 509)};
    pkt.ip = ip;
    pkt.udp = UdpHeader{static_cast<std::uint16_t>(49152 + f), kRoceUdpPort, 0};
    ++counts[five_tuple_hash(pkt, 12345) % static_cast<std::uint64_t>(ports)];
  }
  const double expected = static_cast<double>(flows) / ports;
  for (int p = 0; p < ports; ++p) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(p)], expected, 5 * std::sqrt(expected))
        << "port " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(PortCounts, EcmpUniformity, ::testing::Values(2, 4, 8, 16, 64));

class PauseQuiescence : public ::testing::TestWithParam<int> {};

TEST_P(PauseQuiescence, TransientStormAlwaysClears) {
  const int seed = GetParam();
  StarTopology topo(3);
  Rng rng(static_cast<std::uint64_t>(seed));
  // Random storm window on host 2.
  const Time start = microseconds(rng.uniform_int(100, 3000));
  const Time stop = start + microseconds(rng.uniform_int(500, 5000));
  topo.sim().schedule_at(start, [&] { topo.hosts[2]->set_storm_mode(true); });
  topo.sim().schedule_at(stop, [&] { topo.hosts[2]->set_storm_mode(false); });
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  RdmaStreamSource src(*topo.hosts[0], demux, qa,
                       {.message_bytes = 64 * kKiB, .max_outstanding = 1,
                        .stop_after_messages = 40});
  src.start();
  topo.sim().run_until(milliseconds(100));
  // After the storm, everything completed and all pauses cleared.
  EXPECT_EQ(src.completed_messages(), 40);
  for (int p = 0; p < topo.sw().port_count(); ++p) {
    for (int pg = 0; pg < kNumPriorities; ++pg) {
      EXPECT_FALSE(topo.sw().port(p).paused(pg));
      EXPECT_FALSE(topo.sw().pause_asserted(p, pg));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PauseQuiescence, ::testing::Range(1, 9));

}  // namespace
}  // namespace rocelab
