// Monitoring (§5.2): pause-frame time series and throughput accounting.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/monitor/monitor.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

TEST(PauseMonitor, BucketsPauseDeltas) {
  StarTopology topo(2);
  std::vector<Node*> nodes{topo.hosts[0], topo.hosts[1], &topo.sw()};
  PauseMonitor mon(topo.sim(), nodes, milliseconds(5));
  mon.start();
  // Host 1 storms for one bucket only.
  topo.hosts[1]->set_storm_mode(true);
  topo.sim().schedule_at(milliseconds(5), [&] { topo.hosts[1]->set_storm_mode(false); });
  topo.sim().run_until(milliseconds(20));
  const auto& sw_rx = mon.rx_series(&topo.sw());
  EXPECT_GT(sw_rx.bucket_value(0), 0);
  EXPECT_DOUBLE_EQ(sw_rx.bucket_value(2), 0);
  EXPECT_GT(mon.total_rx(&topo.sw()), 0);
  EXPECT_EQ(mon.total_rx(topo.hosts[0]), 0);
  EXPECT_EQ(mon.nodes_receiving_in_bucket(0), 1);
}

TEST(PauseMonitor, AggregateSumsAcrossNodes) {
  StarTopology topo(3);
  std::vector<Node*> nodes{topo.hosts[0], topo.hosts[1], topo.hosts[2], &topo.sw()};
  PauseMonitor mon(topo.sim(), nodes, milliseconds(5));
  mon.start();
  topo.hosts[1]->set_storm_mode(true);
  topo.hosts[2]->set_storm_mode(true);
  topo.sim().run_until(milliseconds(10));
  const auto agg = mon.aggregate_rx();
  EXPECT_DOUBLE_EQ(agg.total(), static_cast<double>(mon.total_rx(&topo.sw())));
}

TEST(ThroughputMonitor, MeasuresDeliveredBits) {
  StarTopology topo(2);
  std::vector<Host*> hosts{topo.hosts[0], topo.hosts[1]};
  ThroughputMonitor mon(topo.sim(), hosts, milliseconds(1));
  mon.start();
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  RdmaStreamSource src(*topo.hosts[0], demux, qa,
                       {.message_bytes = 128 * kKiB, .max_outstanding = 2});
  src.start();
  topo.sim().run_until(milliseconds(10));
  // Saturated 40G link: payload + ack'd sender bytes => ~2x goodput counted.
  EXPECT_GT(mon.mean_gbps(2), 40.0);
  EXPECT_LT(mon.mean_gbps(2), 90.0);
  EXPECT_GT(mon.total_bytes(), 0);
  EXPECT_EQ(mon.interval_gbps().size(), 10u);
}

TEST(ThroughputMonitor, ResetOriginZeroesTotal) {
  StarTopology topo(2);
  std::vector<Host*> hosts{topo.hosts[0], topo.hosts[1]};
  ThroughputMonitor mon(topo.sim(), hosts, milliseconds(1));
  mon.start();
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 64 * 1024, 1);
  topo.sim().run_until(milliseconds(2));
  EXPECT_GT(mon.total_bytes(), 0);
  mon.reset_origin();
  EXPECT_EQ(mon.total_bytes(), 0);
}

TEST(PortCounters, PausedTimeVisibleToMonitoring) {
  // §5.2: "pause intervals can reveal the severity of congestion more
  // accurately" — our port counters provide them.
  StarTopology topo(2);
  topo.hosts[1]->set_storm_mode(true);
  topo.sim().run_until(milliseconds(10));
  Time paused = 0;
  for (int pg = 0; pg < kNumPriorities; ++pg) {
    paused += topo.sw().port(1).counters().paused_time[static_cast<std::size_t>(pg)];
  }
  EXPECT_GT(paused, milliseconds(5));  // continuously paused by the storm
}

}  // namespace
}  // namespace rocelab
