// Fault-plane tests: link up/down semantics, ECMP failover, RDMA CM
// reconnection, the ChaosEngine + FailureDetector + InvariantAuditor
// triad, and the headline chaos soak on a three-tier Clos.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/app/rdma_cm.h"
#include "src/app/traffic.h"
#include "src/faults/auditor.h"
#include "src/faults/chaos.h"
#include "src/faults/failure_detector.h"
#include "src/rocev2/deployment.h"
#include "src/topo/clos.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;
using testing::basic_host_config;
using testing::basic_switch_config;

ClosParams small_clos() {
  QosPolicy policy;
  policy.max_cable_m = 20.0;
  policy.link_bw = gbps(10);  // keep soak event counts manageable
  return make_clos_params(policy, DeploymentStage::kFull, /*podsets=*/2, /*leaves=*/2,
                          /*tors=*/2, /*servers=*/2, /*spines=*/4);
}

// --- link fault plane --------------------------------------------------------------

TEST(LinkFault, DownDropsTrafficThenRetxHealsAfterUp) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = microseconds(300);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  RdmaStreamSource src(*topo.hosts[0], demux, qa,
                       RdmaStreamSource::Options{.message_bytes = 64 * kKiB,
                                                 .max_outstanding = 2});
  src.start();
  topo.sim().run_until(milliseconds(1));
  const auto before = topo.hosts[1]->rdma().stats().messages_received;
  EXPECT_GT(before, 0);

  // Down the switch<->h1 link. Both directions die together.
  topo.sw().set_link_up(1, false);
  EXPECT_FALSE(topo.sw().link_up(1));
  EXPECT_FALSE(topo.hosts[1]->link_up(0));
  topo.sim().run_until(milliseconds(2));
  const auto during = topo.hosts[1]->rdma().stats().messages_received;
  // The switch keeps forwarding into the dead port; everything is counted.
  EXPECT_GT(topo.sw().port(1).counters().link_down_drops, 0);
  // Buffer accounting survives the drops (on_dequeue unwound the matrix).
  EXPECT_EQ(topo.sw().matrix_queued_total(), topo.sw().egress_queued_total());
  EXPECT_EQ(topo.sw().mmu().shared_used(), topo.sw().mmu().recomputed_shared_used());

  topo.sw().set_link_up(1, true);
  EXPECT_TRUE(topo.hosts[1]->link_up(0));
  topo.sim().run_until(milliseconds(5));
  EXPECT_GT(topo.hosts[1]->rdma().stats().messages_received, during)
      << "go-back-N did not resume after the link healed";
}

TEST(LinkFault, SetLinkUpIsIdempotentAndIgnoresUnwiredPorts) {
  Fabric fabric;
  auto& sw = fabric.add_switch("sw", basic_switch_config(), 2);
  // Port 1 is unwired: set_link_up must be a no-op, not a crash.
  sw.set_link_up(1, false);
  EXPECT_TRUE(sw.port(1).link_up());  // unchanged: no peer to coordinate with
  auto& h = fabric.add_host("h", basic_host_config());
  h.set_ip(Ipv4Addr::from_octets(10, 0, 0, 1));
  sw.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24});
  fabric.attach_host(h, sw, 0, gbps(40), nanoseconds(10));
  sw.set_link_up(0, false);
  sw.set_link_up(0, false);  // repeat: no double-count, no flapping
  EXPECT_FALSE(sw.link_up(0));
  sw.set_link_up(0, true);
  EXPECT_TRUE(sw.link_up(0));
  EXPECT_TRUE(h.link_up(0));
}

// --- ECMP failover + CM reconnect (acceptance: ToR uplink down) -------------------

TEST(Failover, TorUplinkDownReroutesAndCmReconnectsVictims) {
  ClosFabric clos(small_clos());
  auto& sim = clos.sim();

  // Services live on the two servers under ToR(0,0); clients are the four
  // podset-1 servers. Forward data flows INTO ToR(0,0), so roughly half the
  // flows hash through leaf(0,0) and blackhole when the uplink dies — the
  // recovery path is retry-exhaustion -> CM reconnect -> fresh UDP source
  // port -> new ECMP hash.
  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = microseconds(300);
  qp.retry_limit = 3;

  std::vector<std::unique_ptr<RdmaCm>> cms;
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  for (const auto& h : clos.fabric().hosts()) {
    demuxes.push_back(std::make_unique<RdmaDemux>(*h));
    cms.push_back(std::make_unique<RdmaCm>(*h));
  }
  auto index_of = [&](Host& h) {
    for (std::size_t i = 0; i < clos.fabric().hosts().size(); ++i) {
      if (clos.fabric().hosts()[i].get() == &h) return i;
    }
    throw std::logic_error("unknown host");
  };

  // Passive side: accept on both ToR(0,0) servers.
  for (int s = 0; s < 2; ++s) {
    cms[index_of(clos.server(0, 0, s))]->listen(/*service=*/1, qp, nullptr);
  }

  struct Client {
    Host* host = nullptr;
    std::uint32_t qpn = 0;
    std::int64_t completed = 0;
  };
  std::vector<Client> clients(4);
  int c = 0;
  for (int t = 0; t < 2; ++t) {
    for (int s = 0; s < 2; ++s) {
      Client& cl = clients[static_cast<std::size_t>(c)];
      cl.host = &clos.server(1, t, s);
      const std::size_t hi = index_of(*cl.host);
      RdmaDemux& dm = *demuxes[hi];
      cms[hi]->connect(
          ClosFabric::server_ip(0, 0, c % 2), 1, qp,
          [&cl, &dm](std::uint32_t qpn) {
            cl.qpn = qpn;
            dm.on_completion(qpn, [&cl](const RdmaCompletion&) { ++cl.completed; });
          },
          microseconds(300));
      ++c;
    }
  }

  // Each client posts 16KiB every 200us while its QP is usable.
  std::function<void()> pump = [&] {
    for (Client& cl : clients) {
      if (cl.qpn != 0 && cl.host->rdma().qp_connected(cl.qpn) &&
          !cl.host->rdma().qp_errored(cl.qpn)) {
        cl.host->rdma().post_send(cl.qpn, 16 * kKiB, 0);
      }
    }
    sim.schedule_in(microseconds(200), pump);
  };
  sim.schedule_in(microseconds(100), pump);

  sim.run_until(milliseconds(2));
  for (const Client& cl : clients) EXPECT_GT(cl.completed, 0) << "did not establish";

  // Fault: ToR(0,0) loses its uplink to leaf(0,0).
  Switch& tor = clos.tor(0, 0);
  tor.set_link_up(/*port=*/2, false);

  // Detection + reconnect window.
  sim.run_until(milliseconds(20));
  EXPECT_GT(tor.route_failovers(), 0) << "surviving uplink was not used";
  // The remote leaf really did blackhole flows (no local survivor there).
  EXPECT_GT(clos.leaf(0, 0).no_route_drops(), 0);

  std::int64_t reconnects = 0, qp_errors = 0;
  for (const auto& cm : cms) reconnects += cm->reconnects();
  for (const auto& h : clos.fabric().hosts()) qp_errors += h->rdma().stats().qp_errors;
  EXPECT_GE(qp_errors, 1) << "no flow was blackholed: topology assumption broken";
  EXPECT_GE(reconnects, 1);

  // Zero blackholed after the detection window: every client makes fresh
  // progress with the uplink still down.
  std::vector<std::int64_t> at_20;
  for (const Client& cl : clients) at_20.push_back(cl.completed);
  sim.run_until(milliseconds(25));
  for (std::size_t i = 0; i < clients.size(); ++i) {
    EXPECT_GT(clients[i].completed, at_20[i]) << "client " << i << " still blackholed";
  }
}

// --- chaos engine ------------------------------------------------------------------

TEST(Chaos, JournalIsByteIdenticalForSameSeed) {
  auto run = [](std::uint64_t seed) {
    StarTopology topo(3);
    ChaosEngine chaos(*topo.fabric, seed);
    for (int i = 0; i < 3; ++i) {
      const Time down = microseconds(chaos.rng().uniform_int(100, 2000));
      const Time up = down + microseconds(chaos.rng().uniform_int(50, 500));
      chaos.link_flap(topo.sw(), static_cast<int>(chaos.rng().uniform_int(0, 2)), down, up);
    }
    chaos.host_death(*topo.hosts[2], microseconds(2500), microseconds(3000));
    chaos.nic_storm(*topo.hosts[1], microseconds(2600), microseconds(2900));
    topo.sim().run_until(milliseconds(5));
    return chaos.journal_text();
  };
  const std::string a = run(7);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run(7)) << "same seed must give a byte-identical fault journal";
  EXPECT_NE(a, run(8)) << "different seed should give a different schedule";
}

TEST(Chaos, ConfigDriftIsAppliedAndJournalled) {
  StarTopology topo(2);
  ChaosEngine chaos(*topo.fabric, 1);
  chaos.alpha_drift(topo.sw(), microseconds(100), 1.0 / 64);
  chaos.ecn_disable(topo.sw(), microseconds(200));
  topo.sim().run_until(milliseconds(1));
  EXPECT_DOUBLE_EQ(topo.sw().config().mmu.alpha, 1.0 / 64);
  for (int pg = 0; pg < kNumPriorities; ++pg) {
    EXPECT_FALSE(topo.sw().config().ecn[static_cast<std::size_t>(pg)].enabled);
  }
  ASSERT_EQ(chaos.journal().size(), 2u);
  EXPECT_EQ(chaos.journal()[0].kind, FaultKind::kAlphaDrift);
  EXPECT_EQ(chaos.journal()[1].kind, FaultKind::kEcnDisable);
}

TEST(Chaos, SwitchRebootFlushesTablesAndRecoversWithReinstall) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = microseconds(300);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  ChaosEngine chaos(*topo.fabric, 1);
  chaos.switch_reboot(topo.sw(), milliseconds(1), milliseconds(2));
  RdmaDemux demux(*topo.hosts[0]);
  RdmaStreamSource src(*topo.hosts[0], demux, qa,
                       RdmaStreamSource::Options{.message_bytes = 32 * kKiB,
                                                 .max_outstanding = 2});
  src.start();
  topo.sim().run_until(microseconds(1500));
  EXPECT_EQ(topo.sw().reboots(), 1);
  EXPECT_FALSE(
      topo.sw().mac_table().lookup(topo.hosts[1]->mac(), topo.sim().now()).has_value());
  topo.sim().run_until(milliseconds(6));
  // Entries reinstalled at recovery; go-back-N pushes traffic through again.
  EXPECT_TRUE(
      topo.sw().mac_table().lookup(topo.hosts[1]->mac(), topo.sim().now()).has_value());
  EXPECT_GT(topo.hosts[1]->rdma().stats().messages_received, 1);
}

// --- failure detector --------------------------------------------------------------

TEST(FailureDetectorTest, RaiseAndClearHysteresis) {
  FailureDetector det(FailureDetector::Options{.raise_after = 3, .clear_after = 2});
  det.observe(1, 7, false);
  det.observe(2, 7, false);
  EXPECT_FALSE(det.alarmed(7)) << "two losses must not alarm yet";
  det.observe(3, 7, true);  // streak broken
  det.observe(4, 7, false);
  det.observe(5, 7, false);
  EXPECT_FALSE(det.alarmed(7));
  det.observe(6, 7, false);
  EXPECT_TRUE(det.alarmed(7));
  EXPECT_EQ(det.alarms_raised(), 1);
  EXPECT_EQ(det.active_alarms(), 1);
  det.observe(7, 7, true);
  EXPECT_TRUE(det.alarmed(7)) << "one success must not clear";
  det.observe(8, 7, true);
  EXPECT_FALSE(det.alarmed(7));
  EXPECT_EQ(det.alarms_cleared(), 1);
  ASSERT_EQ(det.history().size(), 2u);
  EXPECT_TRUE(det.history()[0].raised);
  EXPECT_EQ(det.history()[0].at, 6);
  EXPECT_FALSE(det.history()[1].raised);
}

TEST(Pingmesh, PerPeerAccountingUnderInjectedLoss) {
  StarTopology topo(3);
  QpConfig qp;
  qp.dcqcn = false;
  auto [q1, e1] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  auto [q2, e2] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], qp);
  RdmaDemux d0(*topo.hosts[0]);
  RdmaDemux d1(*topo.hosts[1]);
  RdmaDemux d2(*topo.hosts[2]);
  RdmaEchoServer echo1(*topo.hosts[1], d1, e1, 512);
  RdmaEchoServer echo2(*topo.hosts[2], d2, e2, 512);
  RdmaPingmesh ping(*topo.hosts[0], d0, {q1, q2},
                    RdmaPingmesh::Options{.probe_bytes = 512, .interval = microseconds(100),
                                          .timeout = microseconds(400)});
  FailureDetector det;
  ping.set_probe_cb([&](std::uint32_t qpn, bool ok, Time) {
    det.observe(topo.sim().now(), qpn, ok);
  });
  ping.start();
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(ping.probes_failed(), 0);

  // Black-hole all RoCE data toward h1: its probes die, h2's keep working.
  const Ipv4Addr h1_ip = topo.hosts[1]->ip();
  topo.sw().set_drop_filter([h1_ip](const Packet& p) {
    return p.kind == PacketKind::kRoceData && p.ip && p.ip->dst == h1_ip;
  });
  topo.sim().run_until(milliseconds(4));
  EXPECT_GT(ping.peer_stats(q1).failed, 0);
  EXPECT_GE(ping.peer_stats(q1).consecutive_failed, 3);
  EXPECT_EQ(ping.peer_stats(q2).failed, 0);
  EXPECT_TRUE(det.alarmed(q1));
  EXPECT_FALSE(det.alarmed(q2));

  // Repair: the backlog drains, fresh probes succeed, the alarm clears.
  topo.sw().set_drop_filter({});
  topo.sim().run_until(milliseconds(8));
  EXPECT_EQ(ping.peer_stats(q1).consecutive_failed, 0);
  EXPECT_FALSE(det.alarmed(q1));
  EXPECT_EQ(det.alarms_cleared(), 1);
  // Global and per-peer accounting agree.
  EXPECT_EQ(ping.probes_sent(), ping.peer_stats(q1).sent + ping.peer_stats(q2).sent);
  EXPECT_EQ(ping.probes_failed(), ping.peer_stats(q1).failed + ping.peer_stats(q2).failed);
}

// --- CM reconnect unit (no fabric fault: NIC error injected via dead peer) --------

TEST(RdmaCmReconnect, ReestablishesAfterRetryExhaustion) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = microseconds(200);
  qp.retry_limit = 3;
  RdmaCm cm_client(*topo.hosts[0]);
  RdmaCm cm_server(*topo.hosts[1]);
  cm_server.listen(9, qp, nullptr);
  std::vector<std::uint32_t> qpns;
  cm_client.connect(topo.hosts[1]->ip(), 9, qp,
                    [&](std::uint32_t qpn) { qpns.push_back(qpn); }, microseconds(200));
  topo.sim().run_until(milliseconds(1));
  ASSERT_EQ(qpns.size(), 1u);

  // Peer dies mid-connection; in-flight work exhausts the retry budget.
  topo.fabric->kill_host(*topo.hosts[1]);
  topo.hosts[0]->rdma().post_send(qpns[0], 8 * kKiB, 1);
  topo.sim().run_until(milliseconds(4));
  EXPECT_EQ(topo.hosts[0]->rdma().stats().qp_errors, 1);
  EXPECT_EQ(cm_client.reconnects(), 1);
  EXPECT_EQ(qpns.size(), 1u) << "reconnect must not complete against a dead peer";

  // Peer returns: the backed-off REQ loop completes with a fresh QP.
  topo.fabric->revive_host(*topo.hosts[1]);
  topo.sim().run_until(milliseconds(30));
  ASSERT_EQ(qpns.size(), 2u);
  EXPECT_NE(qpns[0], qpns[1]);
  // The new QP carries traffic end-to-end.
  RdmaDemux d0(*topo.hosts[0]);
  std::int64_t completed = 0;
  d0.on_completion(qpns[1], [&](const RdmaCompletion&) { ++completed; });
  topo.hosts[0]->rdma().post_send(qpns[1], 8 * kKiB, 2);
  topo.sim().run_until(milliseconds(35));
  EXPECT_EQ(completed, 1);
}

// --- invariant auditor -------------------------------------------------------------

TEST(Auditor, QuietFabricHasNoViolations) {
  StarTopology topo(3);
  std::vector<Switch*> sws = topo.fabric->switch_ptrs();
  std::vector<Host*> hosts = topo.hosts;
  InvariantAuditor auditor(topo.sim(), sws, hosts,
                           InvariantAuditor::Options{.interval = microseconds(100)});
  auditor.start();
  QpConfig qp;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 256 * kKiB, 1);
  topo.sim().run_until(milliseconds(5));
  EXPECT_GT(auditor.checks_run(), 10);
  EXPECT_EQ(auditor.hard_violations(), 0);
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(Auditor, FlagsSustainedPauseStorm) {
  HostConfig hc = basic_host_config();
  StarTopology topo(2, basic_switch_config(), hc);
  std::vector<Host*> hosts = topo.hosts;
  InvariantAuditor auditor(
      topo.sim(), topo.fabric->switch_ptrs(), hosts,
      InvariantAuditor::Options{.interval = microseconds(200), .storm_windows = 3});
  auditor.start();
  topo.sim().schedule_at(microseconds(500), [&] { topo.hosts[1]->set_storm_mode(true); });
  topo.sim().run_until(milliseconds(3));
  EXPECT_GE(auditor.count(InvariantAuditor::Kind::kPauseStorm), 1);
  EXPECT_EQ(auditor.hard_violations(), 0) << "a storm is not a deadlock";
}

// --- switch watchdog edges (satellite) --------------------------------------------

TEST(SwitchWatchdogEdge, SecondStormTripsAgainAndTrafficResumes) {
  SwitchConfig cfg = basic_switch_config();
  cfg.watchdog.enabled = true;
  cfg.watchdog.check_interval = milliseconds(1);
  cfg.watchdog.trigger_after = milliseconds(5);
  cfg.watchdog.reenable_after = milliseconds(10);
  StarTopology topo(3, cfg, basic_host_config(), gbps(10));
  Host& victim = *topo.hosts[2];

  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = microseconds(500);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], victim, qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  RdmaStreamSource src(*topo.hosts[0], demux, qa,
                       RdmaStreamSource::Options{.message_bytes = 64 * kKiB,
                                                 .max_outstanding = 2});
  src.start();

  topo.sim().schedule_at(milliseconds(1), [&] { victim.set_storm_mode(true); });
  topo.sim().run_until(milliseconds(10));
  EXPECT_EQ(topo.sw().watchdog_trips(), 1);
  EXPECT_TRUE(topo.sw().lossless_disabled(2));

  // While the storm persists the port must stay disabled, not oscillate.
  topo.sim().run_until(milliseconds(14));
  EXPECT_TRUE(topo.sw().lossless_disabled(2));
  EXPECT_EQ(topo.sw().watchdog_trips(), 1);

  victim.set_storm_mode(false);
  topo.sim().run_until(milliseconds(30));
  EXPECT_FALSE(topo.sw().lossless_disabled(2));

  // Second storm after re-enable: a fresh trip, not a latched state.
  victim.set_storm_mode(true);
  topo.sim().run_until(milliseconds(42));
  EXPECT_EQ(topo.sw().watchdog_trips(), 2);
  EXPECT_TRUE(topo.sw().lossless_disabled(2));

  victim.set_storm_mode(false);
  topo.sim().run_until(milliseconds(60));
  EXPECT_FALSE(topo.sw().lossless_disabled(2));
  const auto before = victim.rdma().stats().messages_received;
  topo.sim().run_until(milliseconds(70));
  EXPECT_GT(victim.rdma().stats().messages_received, before)
      << "traffic did not resume after the watchdog re-enabled lossless mode";
}

// --- the headline chaos soak -------------------------------------------------------

TEST(ChaosSoak, ClosSurvivesFaultScheduleWithZeroHardViolations) {
  ClosFabric clos(small_clos());
  Fabric& fabric = clos.fabric();
  auto& sim = clos.sim();

  std::vector<Host*> hosts;
  for (const auto& h : fabric.hosts()) hosts.push_back(h.get());
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  for (Host* h : hosts) demuxes.push_back(std::make_unique<RdmaDemux>(*h));
  auto demux_of = [&](Host& h) -> RdmaDemux& {
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (hosts[i] == &h) return *demuxes[i];
    }
    throw std::logic_error("unknown host");
  };

  QosPolicy policy;
  // Three cross-podset streams. Targets: (1,0,0), the storm host (1,1,0),
  // and back across to (0,1,0). The dead host (0,1,1) carries only probes.
  struct StreamPair {
    Host* src;
    Host* dst;
  };
  const std::vector<StreamPair> pairs = {
      {&clos.server(0, 0, 0), &clos.server(1, 0, 0)},
      {&clos.server(0, 0, 1), &clos.server(1, 1, 0)},
      {&clos.server(1, 1, 1), &clos.server(0, 1, 0)},
  };
  std::vector<std::unique_ptr<RdmaStreamSource>> streams;
  for (const auto& p : pairs) {
    auto [qs, qd] = connect_qp_pair(*p.src, *p.dst, make_qp_config(policy));
    (void)qd;
    streams.push_back(std::make_unique<RdmaStreamSource>(
        *p.src, demux_of(*p.src), qs,
        RdmaStreamSource::Options{.message_bytes = 64 * kKiB, .max_outstanding = 4}));
    streams.back()->start();
  }

  // Pingmesh from (0,0,0) to the victim host and a healthy cross-podset peer.
  Host& prober = clos.server(0, 0, 0);
  Host& victim = clos.server(0, 1, 1);
  Host& healthy = clos.server(1, 0, 0);
  auto [pq1, pe1] = connect_qp_pair(prober, victim, make_qp_config(policy, true));
  auto [pq2, pe2] = connect_qp_pair(prober, healthy, make_qp_config(policy, true));
  RdmaEchoServer echo1(victim, demux_of(victim), pe1, 512);
  RdmaEchoServer echo2(healthy, demux_of(healthy), pe2, 512);
  RdmaPingmesh ping(prober, demux_of(prober), {pq1, pq2},
                    RdmaPingmesh::Options{.probe_bytes = 512, .interval = microseconds(100),
                                          .timeout = microseconds(500)});
  FailureDetector detector;
  ping.set_probe_cb(
      [&](std::uint32_t qpn, bool ok, Time) { detector.observe(sim.now(), qpn, ok); });
  ping.start();

  // Always-on invariant auditor.
  InvariantAuditor auditor(sim, fabric.switch_ptrs(), hosts,
                           InvariantAuditor::Options{.interval = microseconds(200)});
  auditor.start();

  // The fault schedule: 3 link flaps, a leaf reboot, a host death, a NIC
  // pause storm — overlapping, all healed by 24ms.
  ChaosEngine chaos(fabric, /*seed=*/1234);
  chaos.link_flap(clos.tor(0, 0), /*port=*/2, milliseconds(9), milliseconds(10));
  chaos.link_flap(clos.leaf(1, 0), /*port=*/2, milliseconds(11), milliseconds(12));
  chaos.link_flap(clos.tor(1, 1), /*port=*/3, milliseconds(13), milliseconds(14));
  chaos.switch_reboot(clos.leaf(0, 1), milliseconds(15), milliseconds(17));
  chaos.host_death(victim, milliseconds(18), milliseconds(22));
  chaos.nic_storm(clos.server(1, 1, 0), milliseconds(20), milliseconds(24));

  // Baseline throughput: 3ms..9ms.
  auto total_bytes = [&] {
    std::int64_t s = 0;
    for (const auto& st : streams) s += st->completed_bytes();
    return s;
  };
  sim.run_until(milliseconds(3));
  const std::int64_t base_start = total_bytes();
  sim.run_until(milliseconds(9));
  const std::int64_t base_end = total_bytes();
  const double baseline_rate =
      static_cast<double>(base_end - base_start) / to_seconds(milliseconds(6));
  ASSERT_GT(baseline_rate, 0.0);

  // Ride out the fault window, then measure recovery: 32ms..40ms.
  sim.run_until(milliseconds(32));
  const std::int64_t rec_start = total_bytes();
  sim.run_until(milliseconds(40));
  const std::int64_t rec_end = total_bytes();
  const double recovery_rate =
      static_cast<double>(rec_end - rec_start) / to_seconds(milliseconds(8));

  // 1. The schedule actually ran.
  auto count_kind = [&](FaultKind k) {
    std::int64_t n = 0;
    for (const auto& r : chaos.journal()) {
      if (r.kind == k) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_kind(FaultKind::kLinkDown), 3);
  EXPECT_EQ(count_kind(FaultKind::kSwitchReboot), 1);
  EXPECT_EQ(count_kind(FaultKind::kHostDeath), 1);
  EXPECT_EQ(count_kind(FaultKind::kNicStormStart), 1);

  // 2. Zero hard invariant violations across the whole soak.
  EXPECT_GT(auditor.checks_run(), 100);
  EXPECT_EQ(auditor.hard_violations(), 0) << [&] {
    std::string s;
    for (const auto& v : auditor.violations()) {
      s += to_string(v.kind);
      s += " @ " + v.node + ": " + v.detail + "\n";
    }
    return s;
  }();

  // 3. Traffic kept flowing and recovered to >= 80% of baseline.
  EXPECT_GE(recovery_rate, 0.8 * baseline_rate)
      << "recovered " << recovery_rate / 1e9 << " Gbps vs baseline " << baseline_rate / 1e9;

  // 4. Routing failed over around the downed links.
  std::int64_t failovers = 0;
  for (Switch* sw : fabric.switch_ptrs()) failovers += sw->route_failovers();
  EXPECT_GT(failovers, 0);

  // 5. The detector saw the dead host and gave the all-clear after revival.
  EXPECT_GE(detector.alarms_raised(), 1);
  EXPECT_GE(detector.alarms_cleared(), 1);
  EXPECT_FALSE(detector.alarmed(pq1));
  // The probed path to the dead host really did fail during the window.
  EXPECT_GT(ping.peer_stats(pq1).failed, 0);
}

}  // namespace
}  // namespace rocelab
