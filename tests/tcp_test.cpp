// TCP baseline: stream delivery, congestion control, loss recovery, and
// the kernel latency model.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

TcpConfig quiet_kernel() {
  TcpConfig cfg;
  cfg.kernel.base = microseconds(1);
  cfg.kernel.jitter_mean = microseconds(1);
  cfg.kernel.spike_prob = 0;
  return cfg;
}

struct TcpPair {
  StarTopology topo{2};
  TcpStack a;
  TcpStack b;
  TcpDemux demux_b;
  TcpStack::ConnId ca, cb;

  explicit TcpPair(TcpConfig cfg = quiet_kernel())
      : a(*topo.hosts[0], cfg), b(*topo.hosts[1], cfg), demux_b(b) {
    std::tie(ca, cb) = TcpStack::connect_pair(a, b, cfg);
  }
};

TEST(Tcp, DeliversSingleMessage) {
  TcpPair p;
  std::int64_t got = 0;
  p.demux_b.on_recv(p.cb, [&](const TcpRecv& r) { got = r.bytes; });
  p.a.send_message(p.ca, 100000, 1);
  p.topo.sim().run_until(milliseconds(50));
  EXPECT_EQ(got, 100000);
  EXPECT_EQ(p.b.stats().messages_delivered, 1);
}

TEST(Tcp, MessagesDeliveredInOrder) {
  TcpPair p;
  std::vector<std::uint64_t> order;
  p.demux_b.on_recv(p.cb, [&](const TcpRecv& r) { order.push_back(r.msg_id); });
  for (std::uint64_t m = 1; m <= 4; ++m) p.a.send_message(p.ca, 5000, m);
  p.topo.sim().run_until(milliseconds(50));
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(Tcp, RejectsNonPositiveMessage) {
  TcpPair p;
  EXPECT_THROW(p.a.send_message(p.ca, 0, 1), std::invalid_argument);
}

TEST(Tcp, SlowStartGrowsCwnd) {
  TcpPair p;
  const auto cwnd0 = p.a.connection_cwnd(p.ca);
  p.a.send_message(p.ca, 512 * 1024, 1);
  p.topo.sim().run_until(milliseconds(20));
  EXPECT_GT(p.a.connection_cwnd(p.ca), cwnd0);
}

TEST(Tcp, BidirectionalTraffic) {
  TcpPair p;
  TcpDemux demux_a(p.a);
  std::int64_t got_a = 0, got_b = 0;
  demux_a.on_recv(p.ca, [&](const TcpRecv& r) { got_a += r.bytes; });
  p.demux_b.on_recv(p.cb, [&](const TcpRecv& r) { got_b += r.bytes; });
  p.a.send_message(p.ca, 50000, 1);
  p.b.send_message(p.cb, 70000, 2);
  p.topo.sim().run_until(milliseconds(50));
  EXPECT_EQ(got_b, 50000);
  EXPECT_EQ(got_a, 70000);
}

TEST(Tcp, RecoversFromSingleLossViaFastRetransmit) {
  TcpPair p;
  int dropped = 0;
  p.topo.sw().set_drop_filter([&dropped](const Packet& pkt) {
    if (pkt.kind == PacketKind::kTcp && pkt.tcp->payload > 0 && pkt.tcp->seq == 5 * 1460 &&
        dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  std::int64_t got = 0;
  p.demux_b.on_recv(p.cb, [&](const TcpRecv& r) { got = r.bytes; });
  p.a.send_message(p.ca, 100 * 1460, 1);
  p.topo.sim().run_until(milliseconds(100));
  EXPECT_EQ(got, 100 * 1460);
  EXPECT_EQ(dropped, 1);
  EXPECT_GE(p.a.stats().fast_retransmits, 1);
  EXPECT_EQ(p.a.stats().timeouts, 0);  // dup-ACKs recovered it, no RTO
}

TEST(Tcp, RecoversTailLossViaRto) {
  TcpPair p;
  int dropped = 0;
  p.topo.sw().set_drop_filter([&dropped](const Packet& pkt) {
    // Drop the final segment once: no dup-ACK generator behind it.
    if (pkt.kind == PacketKind::kTcp && pkt.tcp->payload > 0 &&
        pkt.tcp->seq + static_cast<std::uint64_t>(pkt.tcp->payload) == 10000 && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  std::int64_t got = 0;
  p.demux_b.on_recv(p.cb, [&](const TcpRecv& r) { got = r.bytes; });
  p.a.send_message(p.ca, 10000, 1);
  p.topo.sim().run_until(milliseconds(100));
  EXPECT_EQ(got, 10000);
  EXPECT_GE(p.a.stats().timeouts, 1);
}

TEST(Tcp, SurvivesRandomLoss) {
  TcpPair p;
  auto rng = std::make_shared<Rng>(11);
  p.topo.sw().set_drop_filter([rng](const Packet& pkt) {
    return pkt.kind == PacketKind::kTcp && rng->bernoulli(0.005);
  });
  std::int64_t got = 0;
  p.demux_b.on_recv(p.cb, [&](const TcpRecv& r) { got += r.bytes; });
  for (int m = 0; m < 8; ++m) p.a.send_message(p.ca, 200000, static_cast<std::uint64_t>(m));
  p.topo.sim().run_until(seconds(2));
  EXPECT_EQ(got, 8 * 200000);
}

TEST(Tcp, LossReducesCwnd) {
  TcpPair p;
  p.a.send_message(p.ca, 64 * kMiB, 1);  // long enough to still be running
  p.topo.sim().run_until(milliseconds(10));
  const auto cwnd_before = p.a.connection_cwnd(p.ca);
  int dropped = 0;
  p.topo.sw().set_drop_filter([&dropped](const Packet& pkt) {
    if (pkt.kind == PacketKind::kTcp && pkt.tcp->payload > 0 && dropped < 3) {
      ++dropped;
      return true;
    }
    return false;
  });
  p.topo.sim().run_until(milliseconds(30));
  EXPECT_LT(p.a.connection_cwnd(p.ca), cwnd_before);
}

TEST(Tcp, KernelModelDoesNotReorderStream) {
  TcpConfig jittery;
  jittery.kernel.base = microseconds(5);
  jittery.kernel.jitter_mean = microseconds(50);  // heavy jitter
  jittery.kernel.spike_prob = 0.01;
  TcpPair p(jittery);
  std::int64_t got = 0;
  p.demux_b.on_recv(p.cb, [&](const TcpRecv& r) { got += r.bytes; });
  for (int m = 0; m < 4; ++m) p.a.send_message(p.ca, 100000, static_cast<std::uint64_t>(m));
  p.topo.sim().run_until(seconds(1));
  EXPECT_EQ(got, 400000);
  // No loss in the fabric: jitter alone must never trigger recovery. A
  // multi-ms spike may cause a spurious RTO (real TCPs do this too), whose
  // duplicate segments can then echo back as dup-ACKs — so fast
  // retransmits are only forbidden when no spurious RTO occurred.
  if (p.a.stats().timeouts == 0) {
    EXPECT_EQ(p.a.stats().fast_retransmits, 0);
  }
}

TEST(Tcp, TwoConnectionsShareBottleneck) {
  StarTopology topo(3);
  TcpStack a(*topo.hosts[0], quiet_kernel());
  TcpStack b(*topo.hosts[1], quiet_kernel());
  TcpStack c(*topo.hosts[2], quiet_kernel());
  TcpDemux dc(c);
  auto [a_conn, ca_conn] = TcpStack::connect_pair(a, c, quiet_kernel());
  auto [b_conn, cb_conn] = TcpStack::connect_pair(b, c, quiet_kernel());
  (void)ca_conn; (void)cb_conn;
  for (int m = 0; m < 20; ++m) {
    a.send_message(a_conn, 1 * kMiB, static_cast<std::uint64_t>(m));
    b.send_message(b_conn, 1 * kMiB, static_cast<std::uint64_t>(100 + m));
  }
  topo.sim().run_until(milliseconds(50));
  const auto da = a.stats().bytes_delivered;
  const auto db = b.stats().bytes_delivered;
  EXPECT_GT(da, 0);
  EXPECT_GT(db, 0);
  // Rough fairness at a shared 40G bottleneck.
  EXPECT_LT(static_cast<double>(std::max(da, db)) / static_cast<double>(std::min(da, db)), 3.0);
}

TEST(Tcp, IsolatedFromRdmaClass) {
  // TCP (lossy class 1) and RDMA (lossless class 3) share a port; an RDMA
  // blast must not stop TCP from making progress (§2 coexistence).
  StarTopology topo(3);
  TcpStack a(*topo.hosts[0], quiet_kernel());
  TcpStack c(*topo.hosts[2], quiet_kernel());
  TcpDemux dc(c);
  auto [conn_a, conn_c] = TcpStack::connect_pair(a, c, quiet_kernel());
  std::int64_t got = 0;
  dc.on_recv(conn_c, [&](const TcpRecv& r) { got += r.bytes; });

  QpConfig qp;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[1], *topo.hosts[2], qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[1]);
  RdmaStreamSource blast(*topo.hosts[1], demux, qa,
                         {.message_bytes = 256 * kKiB, .max_outstanding = 2});
  blast.start();

  for (int m = 0; m < 4; ++m) a.send_message(conn_a, 100000, static_cast<std::uint64_t>(m));
  topo.sim().run_until(milliseconds(50));
  EXPECT_EQ(got, 400000);
}

}  // namespace
}  // namespace rocelab
