// MAC / ARP tables: the disparate-timeout behaviour at the root of §4.2.
#include <gtest/gtest.h>

#include "src/switch/tables.h"

namespace rocelab {
namespace {

const MacAddr kMac = MacAddr::from_u64(0x020000000042);
const Ipv4Addr kIp = Ipv4Addr::from_octets(10, 0, 1, 5);

TEST(MacTable, LearnAndLookup) {
  MacTable t(seconds(300));
  t.learn(kMac, 7, 0);
  EXPECT_EQ(t.lookup(kMac, seconds(1)), 7);
}

TEST(MacTable, EntryAgesOut) {
  MacTable t(seconds(300));
  t.learn(kMac, 7, 0);
  EXPECT_TRUE(t.lookup(kMac, seconds(300)).has_value());
  EXPECT_FALSE(t.lookup(kMac, seconds(301)).has_value());
}

TEST(MacTable, RefreshExtendsLifetime) {
  MacTable t(seconds(300));
  t.learn(kMac, 7, 0);
  t.learn(kMac, 7, seconds(200));  // hardware refresh on traffic
  EXPECT_TRUE(t.lookup(kMac, seconds(450)).has_value());
}

TEST(MacTable, LearnMovesPort) {
  MacTable t(seconds(300));
  t.learn(kMac, 7, 0);
  t.learn(kMac, 9, seconds(1));
  EXPECT_EQ(t.lookup(kMac, seconds(2)), 9);
}

TEST(MacTable, ExplicitExpire) {
  MacTable t(seconds(300));
  t.learn(kMac, 7, 0);
  t.expire(kMac);
  EXPECT_FALSE(t.lookup(kMac, 1).has_value());
}

TEST(ArpTable, InstallLookupExpire) {
  ArpTable t(seconds(4 * 3600));
  t.install(kIp, kMac, 0);
  EXPECT_EQ(t.lookup(kIp, seconds(3600)), kMac);
  EXPECT_FALSE(t.lookup(kIp, seconds(4 * 3600 + 1)).has_value());
  t.install(kIp, kMac, 0);
  t.expire(kIp);
  EXPECT_FALSE(t.lookup(kIp, 1).has_value());
}

TEST(Tables, DisparateTimeoutsCreateIncompleteArpWindow) {
  // §4.2: MAC timeout (5min) << ARP timeout (4h). A dead server's MAC entry
  // disappears while the ARP entry survives -> the "incomplete ARP entry"
  // that triggers flooding.
  MacTable mac(seconds(300));
  ArpTable arp(seconds(4 * 3600));
  mac.learn(kMac, 3, 0);
  arp.install(kIp, kMac, 0);
  const Time t = seconds(600);  // 10 minutes after the server died
  EXPECT_TRUE(arp.lookup(kIp, t).has_value());
  EXPECT_FALSE(mac.lookup(kMac, t).has_value());
}

}  // namespace
}  // namespace rocelab
