// Switch: classification, L3 ECMP forwarding, ARP/MAC delivery + flooding,
// the §4.2 fix, ECN marking, PFC generation, and the §4.3 watchdog.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;
using testing::basic_host_config;
using testing::basic_switch_config;

TEST(SwitchForwarding, LocalSubnetDelivery) {
  StarTopology topo(3);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], QpConfig{});
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 4096, 1);
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.hosts[2]->rdma().stats().messages_received, 1);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 0);
}

TEST(SwitchForwarding, TtlExpiredDropped) {
  StarTopology topo(2);
  Packet pkt;
  pkt.kind = PacketKind::kRaw;
  pkt.frame_bytes = 100;
  Ipv4Header ip;
  ip.src = topo.hosts[0]->ip();
  ip.dst = topo.hosts[1]->ip();
  ip.ttl = 1;  // decremented to 0 at the switch
  pkt.ip = ip;
  pkt.priority = 1;
  topo.hosts[0]->send_frame(std::move(pkt));
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.sw().port(1).counters().tx_packets[1], 0);
}

TEST(SwitchForwarding, MacMismatchDroppedAtRouterPort) {
  StarTopology topo(2);
  Packet pkt;
  pkt.kind = PacketKind::kRaw;
  pkt.frame_bytes = 100;
  pkt.eth.dst = MacAddr::from_u64(0xdeadbeef);  // not the switch port's MAC
  Ipv4Header ip;
  ip.src = topo.hosts[0]->ip();
  ip.dst = topo.hosts[1]->ip();
  pkt.ip = ip;
  topo.hosts[0]->port(0).enqueue(std::move(pkt));
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.sw().port(0).counters().mac_mismatch_drops, 1);
}

TEST(SwitchForwarding, ArpMissDropped) {
  StarTopology topo(2);
  topo.sw().arp_table().expire(topo.hosts[1]->ip());
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], QpConfig{});
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 1024, 1);
  topo.sim().run_until(milliseconds(1));
  EXPECT_GT(topo.sw().arp_miss_drops(), 0);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 0);
}

TEST(SwitchFlooding, IncompleteArpFloodsToAllOtherPorts) {
  StarTopology topo(4);
  topo.fabric->kill_host(*topo.hosts[1]);  // MAC gone, ARP stays
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 1024, 1);
  topo.sim().run_until(milliseconds(1));
  EXPECT_GT(topo.sw().flood_events(), 0);
  // Flood copies left on every port except the ingress (port 0).
  EXPECT_GT(topo.sw().port(2).counters().tx_packets[3], 0);
  EXPECT_GT(topo.sw().port(3).counters().tx_packets[3], 0);
}

TEST(SwitchFlooding, DropLosslessPolicyPreventsFlooding) {
  SwitchConfig cfg = basic_switch_config();
  cfg.arp_policy = ArpIncompletePolicy::kDropLossless;
  StarTopology topo(4, cfg);
  topo.fabric->kill_host(*topo.hosts[1]);
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 1024, 1);
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.sw().flood_events(), 0);
  EXPECT_GT(topo.sw().port(0).counters().arp_incomplete_drops, 0);
}

TEST(SwitchFlooding, LossyPacketsStillFloodUnderFixPolicy) {
  SwitchConfig cfg = basic_switch_config();
  cfg.arp_policy = ArpIncompletePolicy::kDropLossless;
  StarTopology topo(3, cfg);
  topo.fabric->kill_host(*topo.hosts[1]);
  Packet pkt;
  pkt.kind = PacketKind::kRaw;
  pkt.frame_bytes = 100;
  Ipv4Header ip;
  ip.src = topo.hosts[0]->ip();
  ip.dst = topo.hosts[1]->ip();
  ip.dscp = 1;  // lossy class
  pkt.ip = ip;
  pkt.priority = 1;
  topo.hosts[0]->send_frame(std::move(pkt));
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.sw().flood_events(), 1);
}

TEST(SwitchClassifier, DscpSelectsPriorityAndLossless) {
  StarTopology topo(2);
  Packet pkt;
  pkt.kind = PacketKind::kRaw;
  pkt.frame_bytes = 200;
  Ipv4Header ip;
  ip.src = topo.hosts[0]->ip();
  ip.dst = topo.hosts[1]->ip();
  ip.dscp = 3;
  pkt.ip = ip;
  pkt.priority = 3;
  topo.hosts[0]->send_frame(std::move(pkt));
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.sw().port(1).counters().tx_packets[3], 1);
}

TEST(SwitchClassifier, VlanPcpMode) {
  SwitchConfig cfg = basic_switch_config();
  cfg.classify_mode = ClassifyMode::kVlanPcp;
  HostConfig hc = basic_host_config();
  hc.vlan_id = 100;  // VLAN deployment: NIC tags frames
  StarTopology topo(2, cfg, hc);
  topo.sw().set_port_l2_mode(0, L2PortMode::kTrunk);
  topo.sw().set_port_l2_mode(1, L2PortMode::kTrunk);
  Packet pkt;
  pkt.kind = PacketKind::kRaw;
  pkt.frame_bytes = 200;
  Ipv4Header ip;
  ip.src = topo.hosts[0]->ip();
  ip.dst = topo.hosts[1]->ip();
  ip.dscp = 1;  // must be ignored in VLAN mode
  pkt.ip = ip;
  pkt.priority = 5;  // carried in the PCP by the host NIC
  topo.hosts[0]->send_frame(std::move(pkt));
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.sw().port(1).counters().tx_packets[5], 1);
}

TEST(SwitchL2Mode, TrunkDropsUntaggedAccessDropsTagged) {
  SwitchConfig cfg = basic_switch_config();
  cfg.classify_mode = ClassifyMode::kVlanPcp;
  HostConfig hc = basic_host_config();
  hc.vlan_id = 100;
  StarTopology topo(2, cfg, hc);
  topo.sw().set_port_l2_mode(0, L2PortMode::kTrunk);
  // Host 0 in PXE boot: untagged frames into a trunk port are dropped.
  topo.hosts[0]->set_pxe_boot(true);
  Packet pkt;
  pkt.kind = PacketKind::kRaw;
  pkt.frame_bytes = 200;
  Ipv4Header ip;
  ip.src = topo.hosts[0]->ip();
  ip.dst = topo.hosts[1]->ip();
  pkt.ip = ip;
  topo.hosts[0]->send_frame(std::move(pkt));
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.sw().l2_mode_drops(), 1);
  // Host 1's port stayed access mode: its tagged frames are dropped too.
  Packet pkt2;
  pkt2.kind = PacketKind::kRaw;
  pkt2.frame_bytes = 200;
  Ipv4Header ip2;
  ip2.src = topo.hosts[1]->ip();
  ip2.dst = topo.hosts[0]->ip();
  pkt2.ip = ip2;
  topo.hosts[1]->send_frame(std::move(pkt2));
  topo.sim().run_until(milliseconds(2));
  EXPECT_EQ(topo.sw().l2_mode_drops(), 2);
}

TEST(SwitchL2Mode, PcpClearedWhenRoutedAcrossSubnets) {
  // §3 problem 2: the PCP does not survive L3 routing; DSCP does.
  Fabric fabric;
  SwitchConfig cfg = basic_switch_config();
  cfg.classify_mode = ClassifyMode::kVlanPcp;
  auto& sa = fabric.add_switch("sa", cfg, 2);
  auto& sb = fabric.add_switch("sb", cfg, 2);
  sa.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24});
  sb.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24});
  sa.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24}, {1});
  sb.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24}, {1});
  fabric.attach_switches(sa, 1, sb, 1, gbps(40), nanoseconds(100));
  HostConfig hc = basic_host_config();
  hc.vlan_id = 100;
  auto& a = fabric.add_host("a", hc);
  auto& b = fabric.add_host("b", hc);
  a.set_ip(Ipv4Addr::from_octets(10, 0, 0, 1));
  b.set_ip(Ipv4Addr::from_octets(10, 0, 1, 1));
  fabric.attach_host(a, sa, 0, gbps(40), nanoseconds(10));
  fabric.attach_host(b, sb, 0, gbps(40), nanoseconds(10));
  sa.set_port_l2_mode(0, L2PortMode::kTrunk);
  sb.set_port_l2_mode(0, L2PortMode::kTrunk);
  Packet pkt;
  pkt.kind = PacketKind::kRaw;
  pkt.frame_bytes = 200;
  Ipv4Header ip;
  ip.src = a.ip();
  ip.dst = b.ip();
  ip.dscp = 5;
  pkt.ip = ip;
  pkt.priority = 5;
  a.send_frame(std::move(pkt));
  fabric.sim().run_until(milliseconds(1));
  // sa classified it as 5; sb saw PCP 0 after routing.
  EXPECT_EQ(sa.port(1).counters().tx_packets[5], 1);
  EXPECT_EQ(sb.port(0).counters().tx_packets[0], 1);
  EXPECT_EQ(sb.port(0).counters().tx_packets[5], 0);
}

TEST(SwitchEcn, MarksAboveKminUnderCongestion) {
  SwitchConfig cfg = basic_switch_config();
  cfg.ecn[3] = EcnConfig{true, 10 * kKiB, 40 * kKiB, 1.0};  // aggressive marking
  StarTopology topo(3, cfg);
  // 2 senders incast into host 2: queue builds past kmin.
  QpConfig qp;
  qp.dcqcn = false;  // don't let the rate back off; keep the queue deep
  auto [q1, q1b] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], qp);
  auto [q2, q2b] = connect_qp_pair(*topo.hosts[1], *topo.hosts[2], qp);
  (void)q1b; (void)q2b;
  topo.hosts[0]->rdma().post_send(q1, 1 * kMiB, 1);
  topo.hosts[1]->rdma().post_send(q2, 1 * kMiB, 2);
  topo.sim().run_until(milliseconds(2));
  EXPECT_GT(topo.hosts[2]->rdma().stats().cnps_sent, 0);
}

TEST(SwitchEcn, NoMarkingWhenDisabled) {
  SwitchConfig cfg = basic_switch_config();
  cfg.ecn[3] = EcnConfig{};  // disabled
  StarTopology topo(3, cfg);
  QpConfig qp;
  qp.dcqcn = false;
  auto [q1, q1b] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], qp);
  auto [q2, q2b] = connect_qp_pair(*topo.hosts[1], *topo.hosts[2], qp);
  (void)q1b; (void)q2b;
  topo.hosts[0]->rdma().post_send(q1, 1 * kMiB, 1);
  topo.hosts[1]->rdma().post_send(q2, 1 * kMiB, 2);
  topo.sim().run_until(milliseconds(2));
  EXPECT_EQ(topo.hosts[2]->rdma().stats().cnps_sent, 0);
}

TEST(SwitchPfc, IncastTriggersPauseAndNoLosslessDrops) {
  SwitchConfig cfg = basic_switch_config();
  cfg.mmu.alpha = 1.0 / 64;  // pause easily
  StarTopology topo(5, cfg);
  QpConfig qp;
  qp.dcqcn = false;
  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  std::vector<std::unique_ptr<RdmaStreamSource>> sources;
  for (int i = 0; i < 4; ++i) {
    auto [qa, qb] = connect_qp_pair(*topo.hosts[static_cast<std::size_t>(i)], *topo.hosts[4], qp);
    (void)qb;
    demuxes.push_back(std::make_unique<RdmaDemux>(*topo.hosts[static_cast<std::size_t>(i)]));
    sources.push_back(std::make_unique<RdmaStreamSource>(
        *topo.hosts[static_cast<std::size_t>(i)], *demuxes.back(), qa,
        RdmaStreamSource::Options{.message_bytes = 256 * kKiB, .max_outstanding = 2}));
    sources.back()->start();
  }
  topo.sim().run_until(milliseconds(10));
  std::int64_t pauses = 0, lossless_drops = 0;
  for (int p = 0; p < topo.sw().port_count(); ++p) {
    pauses += topo.sw().port(p).counters().total_tx_pause();
    lossless_drops += topo.sw().port(p).counters().headroom_overflow_drops;
  }
  EXPECT_GT(pauses, 0);
  EXPECT_EQ(lossless_drops, 0);  // PFC protected everything
  // And traffic still flowed.
  EXPECT_GT(topo.hosts[4]->rdma().stats().bytes_received, 0);
}

TEST(SwitchPfc, XonEventuallyReleasesPause) {
  SwitchConfig cfg = basic_switch_config();
  cfg.mmu.alpha = 1.0 / 64;
  StarTopology topo(3, cfg);
  QpConfig qp;
  qp.dcqcn = false;
  auto [q1, q1b] = connect_qp_pair(*topo.hosts[0], *topo.hosts[2], qp);
  auto [q2, q2b] = connect_qp_pair(*topo.hosts[1], *topo.hosts[2], qp);
  (void)q1b; (void)q2b;
  topo.hosts[0]->rdma().post_send(q1, 512 * kKiB, 1);
  topo.hosts[1]->rdma().post_send(q2, 512 * kKiB, 2);
  topo.sim().run_until(milliseconds(20));
  // Traffic has long finished: no pause may remain asserted.
  for (int p = 0; p < topo.sw().port_count(); ++p) {
    for (int pg = 0; pg < kNumPriorities; ++pg) {
      EXPECT_FALSE(topo.sw().pause_asserted(p, pg)) << p << "/" << pg;
    }
  }
  EXPECT_EQ(topo.hosts[2]->rdma().stats().messages_received, 2);
}

TEST(SwitchDropFilter, CountsAndDrops) {
  StarTopology topo(2);
  topo.sw().set_drop_filter([](const Packet& p) { return p.kind == PacketKind::kRoceData; });
  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = milliseconds(100);  // don't retransmit within the test
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 10 * 1024, 1);
  topo.sim().run_until(milliseconds(5));
  EXPECT_GT(topo.sw().filtered_drops(), 0);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 0);
}

TEST(SwitchWatchdog, DisablesAndReenablesLosslessMode) {
  SwitchConfig cfg = basic_switch_config();
  cfg.watchdog.enabled = true;
  cfg.watchdog.check_interval = milliseconds(2);
  cfg.watchdog.trigger_after = milliseconds(10);
  cfg.watchdog.reenable_after = milliseconds(20);
  StarTopology topo(3, cfg);
  Host& victim = *topo.hosts[2];

  QpConfig qp;
  qp.dcqcn = false;
  qp.retx_timeout = microseconds(200);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], victim, qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  RdmaStreamSource src(*topo.hosts[0], demux, qa,
                       RdmaStreamSource::Options{.message_bytes = 128 * kKiB,
                                                 .max_outstanding = 2});
  src.start();
  topo.sim().schedule_at(milliseconds(1), [&] { victim.set_storm_mode(true); });
  topo.sim().run_until(milliseconds(40));
  EXPECT_GT(topo.sw().watchdog_trips(), 0);
  EXPECT_TRUE(topo.sw().lossless_disabled(2));

  // Server "repaired": storm stops, pauses disappear, lossless re-enabled.
  victim.set_storm_mode(false);
  topo.sim().run_until(milliseconds(100));
  EXPECT_FALSE(topo.sw().lossless_disabled(2));
}

TEST(SwitchEcmp, FlowsStickToOnePath) {
  // Two parallel paths between two switches; all packets of one 5-tuple
  // must take the same one.
  Fabric fabric;
  SwitchConfig cfg = basic_switch_config();
  auto& s1 = fabric.add_switch("s1", cfg, 4);
  auto& s2 = fabric.add_switch("s2", cfg, 4);
  s1.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24});
  s2.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24});
  s1.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24}, {2, 3});
  s2.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24}, {2, 3});
  fabric.attach_switches(s1, 2, s2, 2, gbps(40), nanoseconds(100));
  fabric.attach_switches(s1, 3, s2, 3, gbps(40), nanoseconds(100));
  HostConfig hc = basic_host_config();
  auto& a = fabric.add_host("a", hc);
  auto& b = fabric.add_host("b", hc);
  a.set_ip(Ipv4Addr::from_octets(10, 0, 0, 1));
  b.set_ip(Ipv4Addr::from_octets(10, 0, 1, 1));
  fabric.attach_host(a, s1, 0, gbps(40), nanoseconds(10));
  fabric.attach_host(b, s2, 0, gbps(40), nanoseconds(10));

  auto [qa, qb] = connect_qp_pair(a, b, QpConfig{});
  (void)qb;
  a.rdma().post_send(qa, 100 * 1024, 1);
  fabric.sim().run_until(milliseconds(2));
  const auto p2 = s1.port(2).counters().tx_packets[3];
  const auto p3 = s1.port(3).counters().tx_packets[3];
  EXPECT_GT(p2 + p3, 50);
  EXPECT_TRUE(p2 == 0 || p3 == 0) << "flow split across paths: " << p2 << "/" << p3;
  EXPECT_EQ(b.rdma().stats().messages_received, 1);
}

TEST(SwitchEcmp, ManyQpsSpreadAcrossPaths) {
  // Same topology, many QPs: the random UDP source ports must spread them.
  Fabric fabric;
  SwitchConfig cfg = basic_switch_config();
  auto& s1 = fabric.add_switch("s1", cfg, 6);
  auto& s2 = fabric.add_switch("s2", cfg, 6);
  s1.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24});
  s2.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24});
  s1.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24}, {2, 3, 4, 5});
  s2.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24}, {2, 3, 4, 5});
  for (int p = 2; p < 6; ++p) fabric.attach_switches(s1, p, s2, p, gbps(40), nanoseconds(100));
  HostConfig hc = basic_host_config();
  auto& a = fabric.add_host("a", hc);
  auto& b = fabric.add_host("b", hc);
  a.set_ip(Ipv4Addr::from_octets(10, 0, 0, 1));
  b.set_ip(Ipv4Addr::from_octets(10, 0, 1, 1));
  fabric.attach_host(a, s1, 0, gbps(40), nanoseconds(10));
  fabric.attach_host(b, s2, 0, gbps(40), nanoseconds(10));

  for (int i = 0; i < 32; ++i) {
    auto [qa, qb] = connect_qp_pair(a, b, QpConfig{});
    (void)qb;
    a.rdma().post_send(qa, 8 * 1024, static_cast<std::uint64_t>(i));
  }
  fabric.sim().run_until(milliseconds(5));
  int used_paths = 0;
  for (int p = 2; p < 6; ++p) {
    if (s1.port(p).counters().tx_packets[3] > 0) ++used_paths;
  }
  EXPECT_GE(used_paths, 3);  // 32 QPs over 4 paths: all or nearly all used
  EXPECT_EQ(b.rdma().stats().messages_received, 32);
}

}  // namespace
}  // namespace rocelab
