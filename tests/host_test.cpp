// Host / NIC receive pipeline: pause generation, MTT slow receiver (§4.4),
// storm mode + NIC watchdog (§4.3), dead mode, IP ID assignment.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/nic/mtt.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;
using testing::basic_host_config;

TEST(MttCache, LruEviction) {
  MttConfig cfg;
  cfg.entries = 2;
  cfg.page_bytes = 4096;
  MttCache cache(cfg);
  EXPECT_FALSE(cache.access(0));          // page 0: miss
  EXPECT_FALSE(cache.access(4096));       // page 1: miss
  EXPECT_TRUE(cache.access(100));         // page 0: hit (and becomes MRU)
  EXPECT_FALSE(cache.access(2 * 4096));   // page 2: miss, evicts page 1
  EXPECT_TRUE(cache.access(0));           // page 0 survived
  EXPECT_FALSE(cache.access(4096));       // page 1 was evicted
  EXPECT_EQ(cache.size(), 2u);
}

TEST(MttCache, MissRateTracking) {
  MttConfig cfg;
  cfg.entries = 1024;
  MttCache cache(cfg);
  cache.access(0);
  cache.access(1);  // same page
  EXPECT_DOUBLE_EQ(cache.miss_rate(), 0.5);
}

TEST(MttCache, LargePagesCoverWorkingSet) {
  // §4.4's fix: with 2MB pages, 2K entries cover 4GB >> any working set.
  MttConfig cfg;
  cfg.entries = 2048;
  cfg.page_bytes = 2 * kMiB;
  cfg.working_set = 64 * kMiB;
  MttCache cache(cfg);
  Rng rng(1);
  // Warm up, then measure.
  for (int i = 0; i < 4096; ++i) cache.access(rng.uniform_int(0, cfg.working_set - 1));
  const auto misses_before = cache.misses();
  for (int i = 0; i < 4096; ++i) cache.access(rng.uniform_int(0, cfg.working_set - 1));
  EXPECT_EQ(cache.misses(), misses_before);  // fully resident
}

TEST(Host, SequentialIpIds) {
  StarTopology topo(1);
  Host& h = *topo.hosts[0];
  const auto first = h.next_ip_id();
  EXPECT_EQ(h.next_ip_id(), static_cast<std::uint16_t>(first + 1));
  EXPECT_EQ(h.next_ip_id(), static_cast<std::uint16_t>(first + 2));
}

TEST(Host, DeadHostNeitherSendsNorReceives) {
  StarTopology topo(2);
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  topo.hosts[1]->set_dead(true);
  topo.hosts[0]->rdma().post_send(qa, 4096, 1);
  topo.hosts[1]->rdma().post_send(qb, 4096, 2);
  topo.sim().run_until(milliseconds(1));
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 0);
  EXPECT_EQ(topo.hosts[0]->rdma().stats().messages_received, 0);
}

TEST(Host, SlowReceiverPausesAndFastReceiverDoesNot) {
  for (bool slow : {true, false}) {
    HostConfig rx_cfg = basic_host_config();
    rx_cfg.mtt.model_enabled = slow;
    rx_cfg.mtt.page_bytes = 4 * kKiB;
    rx_cfg.mtt.miss_penalty = microseconds(1);
    StarTopology topo(2, testing::basic_switch_config(), rx_cfg);
    QpConfig qp;
    qp.dcqcn = false;
    auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
    (void)qb;
    RdmaDemux demux(*topo.hosts[0]);
    RdmaStreamSource src(*topo.hosts[0], demux, qa,
                         {.message_bytes = 256 * kKiB, .max_outstanding = 2});
    src.start();
    topo.sim().run_until(milliseconds(5));
    const auto pauses = topo.hosts[1]->port(0).counters().total_tx_pause();
    if (slow) {
      EXPECT_GT(pauses, 0) << "slow receiver must pause";
      EXPECT_LT(src.goodput_bps(), 20e9);
    } else {
      EXPECT_EQ(pauses, 0) << "fast receiver must not pause";
      EXPECT_GT(src.goodput_bps(), 30e9);
    }
  }
}

TEST(Host, StormModeEmitsContinuousPauses) {
  StarTopology topo(2);
  topo.hosts[1]->set_storm_mode(true);
  topo.sim().run_until(milliseconds(10));
  // "More than two thousand pause frames per second" (§6.2): 10ms => > 20.
  EXPECT_GT(topo.hosts[1]->port(0).counters().total_tx_pause(), 20);
  EXPECT_TRUE(topo.sw().port(1).paused(3));
}

TEST(Host, StormStopsWhenRepaired) {
  StarTopology topo(2);
  topo.hosts[1]->set_storm_mode(true);
  topo.sim().run_until(milliseconds(5));
  topo.hosts[1]->set_storm_mode(false);
  const auto pauses_at_repair = topo.hosts[1]->port(0).counters().total_tx_pause();
  topo.sim().run_until(milliseconds(10));
  EXPECT_EQ(topo.hosts[1]->port(0).counters().total_tx_pause(), pauses_at_repair);
}

TEST(Host, NicWatchdogDisablesPauseGenerationPermanently) {
  HostConfig cfg = basic_host_config();
  cfg.watchdog.enabled = true;
  cfg.watchdog.check_interval = milliseconds(2);
  cfg.watchdog.trigger_after = milliseconds(10);
  StarTopology topo(2, testing::basic_switch_config(), cfg);
  topo.hosts[1]->set_storm_mode(true);
  topo.sim().run_until(milliseconds(30));
  EXPECT_EQ(topo.hosts[1]->watchdog_trips(), 1);
  EXPECT_FALSE(topo.hosts[1]->allow_pause_tx());
  const auto pauses = topo.hosts[1]->port(0).counters().total_tx_pause();
  topo.sim().run_until(milliseconds(60));
  // §4.3: the NIC watchdog never re-enables pause generation.
  EXPECT_EQ(topo.hosts[1]->port(0).counters().total_tx_pause(), pauses);
}

TEST(Host, NicWatchdogIdleNicNeverTrips) {
  HostConfig cfg = basic_host_config();
  cfg.watchdog.enabled = true;
  cfg.watchdog.check_interval = milliseconds(2);
  cfg.watchdog.trigger_after = milliseconds(10);
  StarTopology topo(2, testing::basic_switch_config(), cfg);
  topo.sim().run_until(milliseconds(50));
  EXPECT_EQ(topo.hosts[1]->watchdog_trips(), 0);
  EXPECT_TRUE(topo.hosts[1]->allow_pause_tx());
}

TEST(Host, RxPauseHysteresis) {
  // Saturate a host whose pipeline is slightly too slow, then stop; the
  // pause must assert and eventually clear (XON) when the queue drains.
  HostConfig cfg = basic_host_config();
  cfg.rx_base_processing = nanoseconds(400);  // 1086B arrives every ~221ns
  cfg.rx_xoff_bytes = 32 * kKiB;
  cfg.rx_xon_bytes = 16 * kKiB;
  StarTopology topo(2, testing::basic_switch_config(), cfg);
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 512 * kKiB, 1);
  topo.sim().run_until(milliseconds(1));
  EXPECT_GT(topo.hosts[1]->port(0).counters().total_tx_pause(), 0);
  topo.sim().run_until(milliseconds(30));
  EXPECT_FALSE(topo.hosts[1]->rx_pause_asserted());
  EXPECT_EQ(topo.hosts[1]->rx_queue_bytes(), 0);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 1);
}

TEST(Host, FloodedCopyIgnoredByWrongHost) {
  StarTopology topo(3);
  topo.fabric->kill_host(*topo.hosts[1]);
  QpConfig qp;
  qp.dcqcn = false;
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 2048, 1);
  topo.sim().run_until(milliseconds(1));
  // host 2 received flooded frames on the wire but must not deliver them.
  EXPECT_GT(topo.hosts[2]->port(0).counters().rx_packets[3], 0);
  EXPECT_EQ(topo.hosts[2]->rdma().stats().messages_received, 0);
}

}  // namespace
}  // namespace rocelab
