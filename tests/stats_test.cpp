#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"

namespace rocelab {
namespace {

TEST(PercentileSampler, BasicPercentiles) {
  PercentileSampler s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100);
  EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.01);
}

TEST(PercentileSampler, SingleSample) {
  PercentileSampler s;
  s.add(42);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42);
}

TEST(PercentileSampler, EmptyThrows) {
  PercentileSampler s;
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
  EXPECT_THROW((void)s.mean(), std::logic_error);
}

TEST(PercentileSampler, OutOfRangeThrows) {
  PercentileSampler s;
  s.add(1);
  EXPECT_THROW((void)s.percentile(-1), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(PercentileSampler, MeanMinMaxStddev) {
  PercentileSampler s;
  for (double v : {2.0, 4.0, 6.0, 8.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0), 1e-9);
}

TEST(PercentileSampler, AddAfterQueryResorts) {
  PercentileSampler s;
  s.add(10);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.percentile(100), 20);
  s.add(5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 5);
}

TEST(PercentileSampler, Merge) {
  PercentileSampler a, b;
  a.add(1);
  a.add(2);
  b.add(3);
  b.add(4);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.percentile(100), 4);
}

TEST(PercentileSampler, ClearResets) {
  PercentileSampler s;
  s.add(1);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(Histogram, Binning) {
  Histogram h(0, 100, 10);
  h.add(5);    // bin 0
  h.add(15);   // bin 1
  h.add(95);   // bin 9
  h.add(-1);   // underflow
  h.add(100);  // overflow (hi is exclusive)
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(1), 1);
  EXPECT_EQ(h.bin_count(9), 1);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.total(), 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 10.0);
}

TEST(Histogram, InvalidBoundsThrow) {
  EXPECT_THROW(Histogram(10, 10, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
}

TEST(IntervalSeries, Buckets) {
  IntervalSeries s(milliseconds(10));
  s.add(milliseconds(5), 1);
  s.add(milliseconds(9), 2);
  s.add(milliseconds(15), 4);
  EXPECT_DOUBLE_EQ(s.bucket_value(0), 3);
  EXPECT_DOUBLE_EQ(s.bucket_value(1), 4);
  EXPECT_DOUBLE_EQ(s.bucket_value(2), 0);
  EXPECT_DOUBLE_EQ(s.total(), 7);
  EXPECT_EQ(s.last_bucket(), 1);
}

TEST(IntervalSeries, EmptyLastBucket) {
  IntervalSeries s(milliseconds(1));
  EXPECT_EQ(s.last_bucket(), -1);
}

TEST(Ewma, ConvergesTowardInput) {
  Ewma e(0.5);
  e.add(10);
  EXPECT_DOUBLE_EQ(e.value(), 10);  // first sample seeds
  e.add(20);
  EXPECT_DOUBLE_EQ(e.value(), 15);
  e.add(20);
  EXPECT_DOUBLE_EQ(e.value(), 17.5);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Rng, BernoulliProbability) {
  Rng r(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, PercentilesNonDecreasing) {
  Rng r(static_cast<std::uint64_t>(GetParam()));
  PercentileSampler s;
  for (int i = 0; i < 1000; ++i) s.add(r.uniform(0, 1e6));
  double prev = -1;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    const double v = s.percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone, ::testing::Range(1, 6));

}  // namespace
}  // namespace rocelab
