// §5.2 end-to-end data integrity: delivered-corrupt frames (corruption the
// per-hop FCS misses), NIC ICRC verification + NAK recovery, torn-completion
// taint counting with verification off, and the auditor's kDataIntegrity
// invariant.
#include <gtest/gtest.h>

#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/faults/auditor.h"
#include "src/link/impairment.h"
#include "tests/testutil.h"

namespace rocelab {
namespace {

using testing::StarTopology;

LinkImpairment corrupting(double rate, double escape) {
  LinkImpairment imp;
  imp.corrupt_deliver_rate = rate;
  imp.escape_fcs_frac = escape;
  imp.seed = 7;
  return imp;
}

TEST(Corruption, EscapedFrameIsCountedDroppedAndRecovered) {
  // Corruption on the host0 -> switch hop that always escapes the FCS: the
  // switch's rx port counts corrupt_delivered, the packet rides tainted to
  // host1 whose ICRC verify drops it, and go-back-N resends until the
  // message completes clean.
  StarTopology topo(2);
  topo.hosts[0]->port(0).set_impairment(corrupting(0.3, 1.0));
  QpConfig qp;
  qp.retx_timeout = microseconds(200);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  int completions = 0;
  demux.on_completion(qa, [&](const RdmaCompletion&) { ++completions; });
  topo.hosts[0]->rdma().post_send(qa, 16 * kKiB, 0);
  topo.sim().run_until(milliseconds(20));

  EXPECT_EQ(completions, 1);
  EXPECT_GT(topo.sw().port(0).counters().corrupt_delivered, 0);
  EXPECT_EQ(topo.sw().port(0).counters().fcs_errors, 0);  // nothing FCS-caught
  EXPECT_GT(topo.hosts[1]->rdma().stats().icrc_errors, 0);
  // The invariant the whole plane exists for: no torn data completed.
  EXPECT_EQ(topo.hosts[1]->rdma().stats().corrupt_completions, 0);
  EXPECT_EQ(topo.hosts[0]->rdma().stats().corrupt_completions, 0);
}

TEST(Corruption, EscapeFracZeroMeansFcsDropsOnly) {
  // With escape_fcs_frac = 0 every corrupted frame is caught at the
  // receiving port's FCS check: classic fcs_errors, nothing delivered
  // corrupt, no ICRC involvement.
  StarTopology topo(2);
  topo.hosts[0]->port(0).set_impairment(corrupting(1.0, 0.0));
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], QpConfig{});
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 4 * kKiB, 0);
  topo.sim().run_until(milliseconds(2));

  EXPECT_GT(topo.sw().port(0).counters().fcs_errors, 0);
  EXPECT_EQ(topo.sw().port(0).counters().corrupt_delivered, 0);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().icrc_errors, 0);
}

TEST(Corruption, VerifyOffCompletesTornDataAndCountsTaint) {
  // ICRC verification off (pre-§5.2 NIC): corrupt segments are consumed
  // into messages, completions fire anyway, and every tainted message is
  // tallied in corrupt_completions — the no-integrity baseline arm.
  StarTopology topo(2);
  topo.hosts[0]->port(0).set_impairment(corrupting(0.5, 1.0));
  topo.hosts[1]->rdma().set_icrc_verify(false);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], QpConfig{});
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  int completions = 0;
  demux.on_completion(qa, [&](const RdmaCompletion&) { ++completions; });
  for (int i = 0; i < 8; ++i) topo.hosts[0]->rdma().post_send(qa, 16 * kKiB, i);
  topo.sim().run_until(milliseconds(20));

  EXPECT_EQ(completions, 8);  // full goodput: nothing was dropped...
  EXPECT_GT(topo.hosts[1]->rdma().stats().corrupt_completions, 0);  // ...but torn
  EXPECT_EQ(topo.hosts[1]->rdma().stats().icrc_errors, 0);
}

TEST(Corruption, CorruptAckDiscardedWithoutWedgingQp) {
  // Corruption on the reverse (ACK) direction: a corrupt ACK's fields can't
  // be trusted, so the receiver NIC discards it (counting icrc_errors) and
  // the sender's retransmission timer recovers — the QP must neither error
  // out nor complete torn data.
  StarTopology topo(2);
  topo.hosts[1]->port(0).set_impairment(corrupting(0.5, 1.0));
  QpConfig qp;
  qp.retx_timeout = microseconds(200);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  int completions = 0;
  demux.on_completion(qa, [&](const RdmaCompletion&) { ++completions; });
  for (int i = 0; i < 4; ++i) topo.hosts[0]->rdma().post_send(qa, 8 * kKiB, i);
  topo.sim().run_until(milliseconds(50));

  EXPECT_EQ(completions, 4);
  EXPECT_GT(topo.hosts[0]->rdma().stats().icrc_errors, 0);  // discarded ACKs
  EXPECT_FALSE(topo.hosts[0]->rdma().qp_errored(qa));
  EXPECT_EQ(topo.hosts[0]->rdma().stats().corrupt_completions, 0);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().corrupt_completions, 0);
}

TEST(Corruption, GoBack0RecoversWithoutLivelock) {
  // Go-back-0 restarts the whole message on a NAK; under persistent
  // corruption the restart barrier must still let clean attempts finish
  // (the regression the livelock fix of §4.1 guards).
  StarTopology topo(2);
  topo.hosts[0]->port(0).set_impairment(corrupting(0.1, 1.0));
  QpConfig qp;
  qp.recovery = LossRecovery::kGoBack0;
  qp.retx_timeout = microseconds(200);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], qp);
  (void)qb;
  RdmaDemux demux(*topo.hosts[0]);
  int completions = 0;
  demux.on_completion(qa, [&](const RdmaCompletion&) { ++completions; });
  for (int i = 0; i < 4; ++i) topo.hosts[0]->rdma().post_send(qa, 8 * kKiB, i);
  topo.sim().run_until(milliseconds(50));

  EXPECT_EQ(completions, 4);
  EXPECT_GT(topo.hosts[1]->rdma().stats().icrc_errors, 0);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().corrupt_completions, 0);
}

TEST(Corruption, AuditorFlagsTornCompletionsAsHardViolations) {
  // kDataIntegrity: with verification off, every torn completion the NIC
  // hands to the application is a hard invariant violation; with it on,
  // the same schedule stays clean.
  for (const bool verify : {false, true}) {
    StarTopology topo(2);
    topo.hosts[0]->port(0).set_impairment(corrupting(0.5, 1.0));
    topo.hosts[1]->rdma().set_icrc_verify(verify);
    auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], QpConfig{});
    (void)qb;
    InvariantAuditor::Options aopts;
    aopts.interval = microseconds(100);
    InvariantAuditor auditor(topo.sim(), {&topo.sw()}, topo.hosts, aopts);
    auditor.start();
    for (int i = 0; i < 8; ++i) topo.hosts[0]->rdma().post_send(qa, 16 * kKiB, i);
    topo.sim().run_until(milliseconds(20));
    if (verify) {
      EXPECT_EQ(auditor.count(InvariantAuditor::Kind::kDataIntegrity), 0);
    } else {
      EXPECT_GT(auditor.count(InvariantAuditor::Kind::kDataIntegrity), 0);
      EXPECT_GT(auditor.hard_violations(), 0);
    }
  }
}

TEST(Corruption, DisabledImpairmentDeliversEverythingClean) {
  // enabled = false must be a true no-op: no corruption, no counters, no
  // RNG draws that could shift an unrelated schedule.
  StarTopology topo(2);
  LinkImpairment imp = corrupting(1.0, 1.0);
  imp.enabled = false;
  topo.hosts[0]->port(0).set_impairment(imp);
  auto [qa, qb] = connect_qp_pair(*topo.hosts[0], *topo.hosts[1], QpConfig{});
  (void)qb;
  topo.hosts[0]->rdma().post_send(qa, 16 * kKiB, 0);
  topo.sim().run_until(milliseconds(5));

  EXPECT_EQ(topo.hosts[1]->rdma().stats().messages_received, 1);
  EXPECT_EQ(topo.sw().port(0).counters().corrupt_delivered, 0);
  EXPECT_EQ(topo.hosts[1]->rdma().stats().icrc_errors, 0);
  EXPECT_EQ(topo.hosts[0]->port(0).impairment_stats().corrupt_delivered, 0);
}

}  // namespace
}  // namespace rocelab
