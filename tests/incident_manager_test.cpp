// ISSUE 6 coverage: the IncidentManager's fleet-level adjudication —
// drain-over-cost-out ranking, escalation that absorbs a prior cost-out,
// the blast-radius budget (shed the lowest-ranked mitigation, veto when
// nothing ranks below), §6.2 config-drift rollback, the per-pod blast
// gauges the InvariantAuditor audits independently, and byte-identical
// journalling.
//
// Evidence is hand-fed through GrayFailureLocalizer::observe. A failed
// probe charges EVERY hop on its traced request + response paths, so each
// scenario pairs its failures with "dilution" successes routed across the
// collateral hops — only the intended directions stay at a confirmed
// score, exactly like a healthy pingmesh mesh would keep them.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/faults/auditor.h"
#include "src/faults/chaos.h"
#include "src/faults/incident_manager.h"
#include "src/faults/localizer.h"
#include "src/monitor/metric_registry.h"
#include "src/rocev2/deployment.h"
#include "src/switch/sw.h"
#include "src/topo/clos.h"
#include "src/topo/trace.h"

namespace rocelab {
namespace {

using Hops = std::vector<TraceHop>;

// 2 podsets x (2 leaves x 2 ToRs x 2 servers) + 4 spines: leaf down-routes
// are single-member (only a drain can fix them), up-routes have two
// members (cost-outs are floor-safe).
ClosParams fleet_params() {
  QosPolicy policy;
  policy.max_cable_m = 20.0;
  return make_clos_params(policy, DeploymentStage::kFull, /*podsets=*/2,
                          /*leaves=*/2, /*tors=*/2, /*servers=*/2, /*spines=*/4);
}

IncidentManagerConfig lab_cfg() {
  IncidentManagerConfig cfg;
  cfg.score_threshold = 0.6;
  cfg.min_probes = 1;
  cfg.confirm_scans = 2;
  cfg.drain_threshold = 2;
  cfg.probation = seconds(1);  // no restores unless a test advances time
  cfg.restore_cooldown = milliseconds(1);
  cfg.blast_budget_frac = 0.30;
  cfg.rollback_config = false;
  return cfg;
}

bool hops_contain(const Hops& hops, const Node* node, int port) {
  for (const TraceHop& h : hops) {
    if (h.node == node && h.port == port) return true;
  }
  return false;
}

bool hops_touch(const Hops& hops, const Node* node) {
  for (const TraceHop& h : hops) {
    if (h.node == node) return true;
  }
  return false;
}

int port_used_at(const Hops& hops, const Node* node) {
  for (const TraceHop& h : hops) {
    if (h.node == node) return h.port;
  }
  return -1;
}

struct FleetRig {
  ClosFabric clos{fleet_params()};
  GrayFailureLocalizer localizer{clos.fabric()};

  // One synthetic probe pair: fwd identifies the request flow src->dst,
  // rsp the response flow dst->src (both paths are charged per observe).
  struct Pair {
    const Host* src = nullptr;
    const Host* dst = nullptr;
    std::uint16_t fwd = 0;
    std::uint16_t rsp = 0;
  };

  Hops trace(const Host& src, const Host& dst, std::uint16_t sport) {
    return trace_route(clos.fabric(), src, dst, sport);
  }

  // First sport whose CURRENT traced path satisfies `pred` (paths move
  // when weights change, so stage-2 sports are found after stage-1
  // mitigations land). Deterministic: plain ascending scan.
  std::uint16_t find_sport(const Host& src, const Host& dst,
                           const std::function<bool(const Hops&)>& pred) {
    for (int s = 1000; s < 60000; ++s) {
      const auto sport = static_cast<std::uint16_t>(s);
      if (pred(trace(src, dst, sport))) return sport;
    }
    ADD_FAILURE() << "no sport found " << src.name() << " -> " << dst.name();
    return 0;
  }

  void feed(const Pair& p, bool ok) { localizer.observe(*p.src, *p.dst, p.fwd, p.rsp, ok); }
};

// A switch owning two confirmed-bad directions gets ONE drain, not two
// cost-outs — and a drain is the only mitigation that can cover a
// single-member down-route at all.
TEST(IncidentManagerLoop, DrainCoversTwoDirectionsInsteadOfTwoCostOuts) {
  FleetRig rig;
  Switch& leaf00 = rig.clos.leaf(0, 0);
  Switch& tor00 = rig.clos.tor(0, 0);
  Switch& tor01 = rig.clos.tor(0, 1);
  const Host& s010 = rig.clos.server(0, 1, 0);
  const Host& s000 = rig.clos.server(0, 0, 0);
  const Host& s110 = rig.clos.server(1, 1, 0);

  // One probe pair whose request crosses leaf-0-0's down port 0 and whose
  // response crosses down port 1: a single failing pair condemns both.
  FleetRig::Pair bad{&s010, &s000, 0, 0};
  bad.fwd = rig.find_sport(s010, s000, [&](const Hops& h) { return hops_contain(h, &leaf00, 0); });
  bad.rsp = rig.find_sport(s000, s010, [&](const Hops& h) { return hops_contain(h, &leaf00, 1); });
  const int upA = port_used_at(rig.trace(s010, s000, bad.fwd), &tor01);
  const int upB = port_used_at(rig.trace(s000, s010, bad.rsp), &tor00);
  ASSERT_GE(upA, 0);
  ASSERT_GE(upB, 0);

  // Dilution: the ToR uplinks feeding leaf-0-0 also carry healthy traffic
  // (out through leaf-0-0's spine side), so they must stay cold.
  FleetRig::Pair dil1{&s010, &s110, 0, 0};
  dil1.fwd = rig.find_sport(s010, s110, [&](const Hops& h) { return hops_contain(h, &tor01, upA); });
  dil1.rsp = rig.find_sport(s110, s010, [&](const Hops& h) { return !hops_touch(h, &leaf00); });
  FleetRig::Pair dil2{&s000, &s110, 0, 0};
  dil2.fwd = rig.find_sport(s000, s110, [&](const Hops& h) { return hops_contain(h, &tor00, upB); });
  dil2.rsp = rig.find_sport(s110, s000, [&](const Hops& h) { return !hops_touch(h, &leaf00); });

  IncidentManager mgr(rig.clos.fabric(), rig.localizer, lab_cfg());
  ChaosEngine chaos(rig.clos.fabric(), /*seed=*/2016);
  mgr.set_chaos(&chaos);

  for (int round = 0; round < 2; ++round) {
    rig.feed(bad, false);
    rig.feed(dil1, true);
    rig.feed(dil2, true);
    mgr.scan_now();
  }

  EXPECT_EQ(mgr.stats().drains, 1);
  EXPECT_EQ(mgr.stats().cost_outs, 0) << "adjudicated per-direction instead of per-switch";
  EXPECT_TRUE(mgr.switch_drained("leaf-0-0"));
  EXPECT_TRUE(leaf00.drained());

  const FleetMitigation* drain = nullptr;
  for (const FleetMitigation& m : mgr.mitigations()) {
    if (m.kind == MitigationKind::kSwitchDrain) drain = &m;
  }
  ASSERT_NE(drain, nullptr);
  EXPECT_EQ(drain->target, "leaf-0-0");
  EXPECT_EQ(drain->covers.size(), 2u);
  EXPECT_DOUBLE_EQ(drain->rank, 2.0);  // sum of both direction scores

  // The drain zero-weighted every neighbour port facing leaf-0-0.
  for (Switch* n : {&tor00, &tor01}) {
    for (int p = 0; p < n->port_count(); ++p) {
      if (n->port(p).peer() == &leaf00) EXPECT_EQ(n->port_weight(p), 0);
    }
  }
  // Both gray incidents are open and covered.
  int gray = 0;
  for (const Incident& inc : mgr.incidents()) {
    if (inc.kind != IncidentKind::kGrayDirection) continue;
    ++gray;
    EXPECT_EQ(inc.node, "leaf-0-0");
    EXPECT_GE(inc.mitigated_at, 0);
  }
  EXPECT_EQ(gray, 2);
  EXPECT_NE(chaos.journal_text().find("switch_drain leaf-0-0"), std::string::npos);
}

// A second bad direction confirming AFTER a cost-out escalates the switch
// to a drain that absorbs the cost-out; the eventual undrain restores the
// absorbed weight too.
TEST(IncidentManagerLoop, EscalationAbsorbsPriorCostOutAndUndrainRestoresAll) {
  FleetRig rig;
  Simulator& sim = rig.clos.sim();
  Switch& leaf00 = rig.clos.leaf(0, 0);
  Switch& tor00 = rig.clos.tor(0, 0);
  Switch& tor01 = rig.clos.tor(0, 1);
  Switch& tor10 = rig.clos.tor(1, 0);
  Switch& leaf11 = rig.clos.leaf(1, 1);
  const Host& s000 = rig.clos.server(0, 0, 0);
  const Host& s010 = rig.clos.server(0, 1, 0);
  const Host& s011 = rig.clos.server(0, 1, 1);
  const Host& s001 = rig.clos.server(0, 0, 1);
  const Host& s100 = rig.clos.server(1, 0, 0);
  const Host& s110 = rig.clos.server(1, 1, 0);

  IncidentManagerConfig cfg = lab_cfg();
  cfg.probation = milliseconds(5);
  IncidentManager mgr(rig.clos.fabric(), rig.localizer, cfg);
  ChaosEngine chaos(rig.clos.fabric(), /*seed=*/2016);
  mgr.set_chaos(&chaos);

  // Stage 1: leaf-0-0's uplink 2 goes gray. One confirmed direction on the
  // switch -> a plain cost-out.
  FleetRig::Pair up{&s000, &s100, 0, 0};
  up.fwd = rig.find_sport(s000, s100, [&](const Hops& h) { return hops_contain(h, &leaf00, 2); });
  up.rsp = rig.find_sport(s100, s000, [&](const Hops& h) { return !hops_touch(h, &leaf00); });
  const int tor00_up = port_used_at(rig.trace(s000, s100, up.fwd), &tor00);
  const int tor10_up = port_used_at(rig.trace(s100, s000, up.rsp), &tor10);
  const int leaf11_up = port_used_at(rig.trace(s100, s000, up.rsp), &leaf11);
  ASSERT_GE(tor00_up, 0);
  ASSERT_GE(tor10_up, 0);
  ASSERT_GE(leaf11_up, 0);
  FleetRig::Pair da{&s000, &s010, 0, 0};
  da.fwd = rig.find_sport(s000, s010, [&](const Hops& h) { return hops_contain(h, &tor00, tor00_up); });
  da.rsp = rig.find_sport(s010, s000, [&](const Hops& h) { return !hops_touch(h, &leaf00); });
  FleetRig::Pair db{&s100, &s010, 0, 0};
  db.fwd = rig.find_sport(s100, s010, [&](const Hops& h) { return hops_contain(h, &tor10, tor10_up); });
  db.rsp = rig.find_sport(s010, s100, [&](const Hops& h) { return !hops_touch(h, &leaf00); });
  FleetRig::Pair dc{&s110, &s011, 0, 0};
  dc.fwd = rig.find_sport(s110, s011, [&](const Hops& h) { return hops_contain(h, &leaf11, leaf11_up); });
  dc.rsp = rig.find_sport(s011, s110, [&](const Hops& h) { return !hops_touch(h, &leaf00); });
  for (int round = 0; round < 2; ++round) {
    rig.feed(up, false);
    rig.feed(da, true);
    rig.feed(db, true);
    rig.feed(dc, true);
    mgr.scan_now();
  }
  ASSERT_EQ(mgr.stats().cost_outs, 1);
  ASSERT_EQ(mgr.stats().drains, 0);
  ASSERT_TRUE(mgr.costed_out("leaf-0-0", 2));
  ASSERT_EQ(leaf00.port_weight(2), 0);

  // Stage 2: the blackholed down port 0 confirms too (sports found now —
  // the cost-out moved the paths). Escalation: drain, absorbing the
  // cost-out so one undrain owns every zeroed weight.
  FleetRig::Pair dn{&s010, &s000, 0, 0};
  dn.fwd = rig.find_sport(s010, s000, [&](const Hops& h) { return hops_contain(h, &leaf00, 0); });
  dn.rsp = rig.find_sport(s000, s010, [&](const Hops& h) { return !hops_touch(h, &leaf00); });
  const int tor01_up = port_used_at(rig.trace(s010, s000, dn.fwd), &tor01);
  const int tor00_up2 = port_used_at(rig.trace(s000, s010, dn.rsp), &tor00);
  ASSERT_GE(tor01_up, 0);
  ASSERT_GE(tor00_up2, 0);
  FleetRig::Pair dd{&s010, &s110, 0, 0};
  dd.fwd = rig.find_sport(s010, s110, [&](const Hops& h) { return hops_contain(h, &tor01, tor01_up); });
  dd.rsp = rig.find_sport(s110, s010, [&](const Hops& h) { return !hops_touch(h, &leaf00); });
  FleetRig::Pair de{&s001, &s011, 0, 0};
  de.fwd = rig.find_sport(s001, s011, [&](const Hops& h) { return hops_contain(h, &tor00, tor00_up2); });
  de.rsp = rig.find_sport(s011, s001, [&](const Hops& h) { return !hops_touch(h, &leaf00); });
  for (int round = 0; round < 2; ++round) {
    rig.feed(dn, false);
    rig.feed(dd, true);
    rig.feed(de, true);
    mgr.scan_now();
  }

  EXPECT_EQ(mgr.stats().drains, 1);
  EXPECT_EQ(mgr.stats().cost_outs, 1);  // no second cost-out: escalated
  EXPECT_TRUE(mgr.switch_drained("leaf-0-0"));
  EXPECT_FALSE(mgr.costed_out("leaf-0-0", 2)) << "cost-out should be absorbed";
  const FleetMitigation& costout = mgr.mitigations().front();
  ASSERT_EQ(costout.kind, MitigationKind::kCostOut);
  EXPECT_TRUE(costout.absorbed);
  EXPECT_GE(costout.reverted_at, 0);
  const FleetMitigation& drain = mgr.mitigations().back();
  ASSERT_EQ(drain.kind, MitigationKind::kSwitchDrain);
  EXPECT_EQ(drain.covers.size(), 2u);
  bool owns_absorbed = false;
  for (const auto& [node, port] : drain.members) {
    if (node == "leaf-0-0" && port == 2) owns_absorbed = true;
  }
  EXPECT_TRUE(owns_absorbed) << "absorbed weight did not transfer to the drain";
  EXPECT_NE(chaos.journal_text().find("absorbed 1"), std::string::npos);

  // Clean probation: ONE undrain restores the neighbours AND the absorbed
  // uplink weight.
  sim.run_until(milliseconds(6));
  mgr.scan_now();
  EXPECT_EQ(mgr.stats().restores, 1);
  EXPECT_FALSE(mgr.switch_drained("leaf-0-0"));
  EXPECT_FALSE(leaf00.drained());
  EXPECT_EQ(leaf00.port_weight(2), 1);
  for (Switch* n : {&tor00, &tor01}) {
    for (int p = 0; p < n->port_count(); ++p) {
      if (n->port(p).peer() == &leaf00) EXPECT_EQ(n->port_weight(p), 1);
    }
  }
  EXPECT_NE(chaos.journal_text().find("switch_undrain leaf-0-0"), std::string::npos);
}

// The blast-radius scenario: three pod-1 cost-outs sit inside the budget;
// a higher-ranked drain then needs pod-1 headroom, sheds exactly the
// lowest-ranked (first-applied) cost-out, and coexists with the remaining
// two — all deterministic, all journalled.
struct ShedOutcome {
  std::string journal;
  std::int64_t cost_outs = 0;
  std::int64_t drains = 0;
  std::int64_t sheds = 0;
  std::int64_t budget_vetoes = 0;
  bool shed_was_leaf10 = false;
  bool leaf10_weight_restored = false;
  bool drained_leaf11 = false;
  bool tor10_still_out = false;
  bool tor11_still_out = false;
  double pod1_frac = 0.0;
  double spine_frac = 0.0;
};

ShedOutcome run_shed_sequence() {
  FleetRig rig;
  Switch& tor10 = rig.clos.tor(1, 0);
  Switch& tor11 = rig.clos.tor(1, 1);
  Switch& leaf10 = rig.clos.leaf(1, 0);
  Switch& leaf11 = rig.clos.leaf(1, 1);
  Switch& leaf00 = rig.clos.leaf(0, 0);
  Switch& tor00 = rig.clos.tor(0, 0);
  Switch& leaf01 = rig.clos.leaf(0, 1);
  const Host& s100 = rig.clos.server(1, 0, 0);
  const Host& s101 = rig.clos.server(1, 0, 1);
  const Host& s110 = rig.clos.server(1, 1, 0);
  const Host& s111 = rig.clos.server(1, 1, 1);
  const Host& s000 = rig.clos.server(0, 0, 0);
  const Host& s010 = rig.clos.server(0, 1, 0);

  // Budget arithmetic (pod-1 pool = 12 members, spine pool = 8): at 0.35,
  // three cost-outs fit (3/12), the drain's +2 does not (5/12 > 0.35),
  // shedding one does (4/12), and the spine side fits (2/8).
  auto pod_total = [&](int pod) {
    std::int64_t t = 0;
    for (const auto& swp : rig.clos.fabric().switches()) {
      if (IncidentManager::pod_of(swp->name()) == pod) {
        t += static_cast<std::int64_t>(swp->ecmp_member_ports().size());
      }
    }
    return t;
  };
  EXPECT_EQ(pod_total(1), 12);
  EXPECT_EQ(pod_total(-1), 8);

  IncidentManagerConfig cfg = lab_cfg();
  cfg.blast_budget_frac = 0.35;
  IncidentManager mgr(rig.clos.fabric(), rig.localizer, cfg);
  ChaosEngine chaos(rig.clos.fabric(), /*seed=*/2016);
  mgr.set_chaos(&chaos);

  // Stage 1: three independent gray uplinks -> three cost-outs.
  FleetRig::Pair p1{&s100, &s110, 0, 0};
  p1.fwd = rig.find_sport(s100, s110, [&](const Hops& h) { return hops_contain(h, &tor10, 2); });
  p1.rsp = rig.find_sport(s110, s100, [&](const Hops& h) { return hops_contain(h, &tor11, 2); });
  FleetRig::Pair p2{&s101, &s000, 0, 0};
  p2.fwd = rig.find_sport(s101, s000, [&](const Hops& h) {
    return hops_contain(h, &tor10, 2) && hops_contain(h, &leaf10, 2);
  });
  p2.rsp = rig.find_sport(s000, s101, [&](const Hops& h) { return !hops_touch(h, &leaf00); });
  const int tor00_up = port_used_at(rig.trace(s000, s101, p2.rsp), &tor00);
  const int leaf01_up = port_used_at(rig.trace(s000, s101, p2.rsp), &leaf01);
  EXPECT_GE(tor00_up, 0);
  EXPECT_GE(leaf01_up, 0);
  // Dilution for every multi-member collateral hop of p1/p2.
  FleetRig::Pair d1{&s000, &s010, 0, 0};
  d1.fwd = rig.find_sport(s000, s010, [&](const Hops& h) { return hops_contain(h, &tor00, tor00_up); });
  d1.rsp = rig.find_sport(s010, s000, [&](const Hops& h) { return !hops_touch(h, &leaf00); });
  FleetRig::Pair d2{&s000, &s111, 0, 0};
  d2.fwd = rig.find_sport(s000, s111, [&](const Hops& h) { return hops_contain(h, &leaf10, 1); });
  d2.rsp = rig.find_sport(s111, s000, [&](const Hops& h) { return !hops_contain(h, &tor11, 2); });
  FleetRig::Pair d7{&s010, &s100, 0, 0};
  d7.fwd = rig.find_sport(s010, s100, [&](const Hops& h) { return hops_contain(h, &leaf10, 0); });
  d7.rsp = rig.find_sport(s100, s010, [&](const Hops& h) {
    return !hops_contain(h, &tor10, 2) && !hops_contain(h, &leaf10, 2);
  });
  FleetRig::Pair d8a{&s000, &s100, 0, 0};
  d8a.fwd = rig.find_sport(s000, s100, [&](const Hops& h) { return hops_contain(h, &leaf01, leaf01_up); });
  d8a.rsp = rig.find_sport(s100, s000, [&](const Hops& h) {
    return !hops_contain(h, &tor10, 2) && !hops_contain(h, &leaf10, 2);
  });
  FleetRig::Pair d8b{&s000, &s110, 0, 0};
  d8b.fwd = rig.find_sport(s000, s110, [&](const Hops& h) { return hops_contain(h, &leaf01, leaf01_up); });
  d8b.rsp = rig.find_sport(s110, s000, [&](const Hops& h) { return !hops_contain(h, &tor11, 2); });
  // Every failing pair also charges its destination ToR's server-facing
  // down port; healthy intra-ToR chatter keeps those dirs cold so neither
  // ToR appears to own a second bad direction.
  FleetRig::Pair loc_a{&s101, &s100, 1000, 1000};
  FleetRig::Pair loc_b{&s111, &s110, 1000, 1000};
  for (int round = 0; round < 2; ++round) {
    rig.feed(p1, false);
    rig.feed(p2, false);
    rig.feed(d1, true);
    rig.feed(d2, true);
    rig.feed(d7, true);
    rig.feed(round == 0 ? d8a : d8b, true);
    rig.feed(loc_a, true);
    rig.feed(loc_b, true);
    mgr.scan_now();
  }
  EXPECT_EQ(mgr.stats().cost_outs, 3);
  EXPECT_TRUE(mgr.costed_out("leaf-1-0", 2));
  EXPECT_TRUE(mgr.costed_out("tor-1-0", 2));
  EXPECT_TRUE(mgr.costed_out("tor-1-1", 2));

  // Stage 2: both of leaf-1-1's down directions go bad -> a drain that
  // needs more pod-1 capacity than the budget leaves.
  FleetRig::Pair p3{&s110, &s100, 0, 0};
  p3.fwd = rig.find_sport(s110, s100, [&](const Hops& h) { return hops_contain(h, &leaf11, 0); });
  p3.rsp = rig.find_sport(s100, s110, [&](const Hops& h) { return hops_contain(h, &leaf11, 1); });
  FleetRig::Pair d3{&s111, &s010, 0, 0};
  d3.fwd = rig.find_sport(s111, s010, [&](const Hops& h) { return hops_contain(h, &tor11, 3); });
  d3.rsp = rig.find_sport(s010, s111, [&](const Hops& h) { return !hops_touch(h, &leaf11); });
  FleetRig::Pair d4{&s101, &s010, 0, 0};
  d4.fwd = rig.find_sport(s101, s010, [&](const Hops& h) { return hops_contain(h, &tor10, 3); });
  d4.rsp = rig.find_sport(s010, s101, [&](const Hops& h) { return !hops_touch(h, &leaf11); });
  for (int round = 0; round < 3; ++round) {
    rig.feed(p3, false);
    rig.feed(d3, true);
    rig.feed(d4, true);
    rig.feed(loc_a, true);
    rig.feed(loc_b, true);
    rig.feed(loc_b, true);
    mgr.scan_now();
  }

  ShedOutcome out;
  out.journal = chaos.journal_text();
  out.cost_outs = mgr.stats().cost_outs;
  out.drains = mgr.stats().drains;
  out.sheds = mgr.stats().sheds;
  out.budget_vetoes = mgr.stats().budget_vetoes;
  const FleetMitigation& first = mgr.mitigations().front();
  out.shed_was_leaf10 = first.shed && first.target == "leaf-1-0" && first.port == 2;
  out.leaf10_weight_restored = leaf10.port_weight(2) == 1;
  out.drained_leaf11 = mgr.switch_drained("leaf-1-1") && leaf11.drained();
  out.tor10_still_out = mgr.costed_out("tor-1-0", 2) && tor10.port_weight(2) == 0;
  out.tor11_still_out = mgr.costed_out("tor-1-1", 2) && tor11.port_weight(2) == 0;
  out.pod1_frac = mgr.pod_costed_frac(1);
  out.spine_frac = mgr.pod_costed_frac(-1);
  return out;
}

TEST(IncidentManagerLoop, BudgetExhaustionShedsLowestRankedDeterministically) {
  const ShedOutcome out = run_shed_sequence();
  EXPECT_EQ(out.cost_outs, 3);
  EXPECT_EQ(out.drains, 1);
  EXPECT_EQ(out.sheds, 1);
  EXPECT_EQ(out.budget_vetoes, 0);
  EXPECT_TRUE(out.shed_was_leaf10) << "shed victim must be the first-applied rank-1.0 cost-out";
  EXPECT_TRUE(out.leaf10_weight_restored);
  // Drain + the two surviving far cost-outs coexist under the budget.
  EXPECT_TRUE(out.drained_leaf11);
  EXPECT_TRUE(out.tor10_still_out);
  EXPECT_TRUE(out.tor11_still_out);
  EXPECT_LE(out.pod1_frac, 0.35 + 1e-9);
  EXPECT_LE(out.spine_frac, 0.35 + 1e-9);
  EXPECT_NE(out.journal.find("mitigation_shed leaf-1-0"), std::string::npos);
  EXPECT_NE(out.journal.find("switch_drain leaf-1-1"), std::string::npos);
}

// Identical evidence must reproduce the identical decision sequence byte
// for byte — the property CI pins with a golden journal hash.
TEST(IncidentManagerLoop, JournalIsByteIdenticalAcrossReruns) {
  const ShedOutcome a = run_shed_sequence();
  const ShedOutcome b = run_shed_sequence();
  EXPECT_EQ(a.journal, b.journal);
  EXPECT_FALSE(a.journal.empty());
}

// §6.2: drifted runtime fields are detected against the golden policy and
// rolled back in one scan; the incident resolves on the next.
TEST(IncidentManagerLoop, ConfigDriftDetectedAndRolledBack) {
  FleetRig rig;
  QosPolicy policy;
  policy.max_cable_m = 20.0;
  IncidentManagerConfig cfg = lab_cfg();
  cfg.rollback_config = true;
  IncidentManager mgr(rig.clos.fabric(), rig.localizer, cfg);
  ChaosEngine chaos(rig.clos.fabric(), /*seed=*/2016);
  mgr.set_chaos(&chaos);
  mgr.set_golden_policy(policy, DeploymentStage::kFull);

  Switch& tor11 = rig.clos.tor(1, 1);
  Switch& leaf10 = rig.clos.leaf(1, 0);
  tor11.set_buffer_alpha(1.0 / 64);
  const ArpIncompletePolicy golden_arp =
      make_switch_config(policy, tier_of(leaf10), DeploymentStage::kFull).arp_policy;
  leaf10.set_arp_policy(golden_arp == ArpIncompletePolicy::kFlood
                            ? ArpIncompletePolicy::kDropLossless
                            : ArpIncompletePolicy::kFlood);

  std::vector<Switch*> sws;
  for (const auto& swp : rig.clos.fabric().switches()) sws.push_back(swp.get());
  ASSERT_EQ(check_switch_configs(sws, policy, DeploymentStage::kFull).size(), 2u);

  mgr.scan_now();
  EXPECT_EQ(mgr.stats().rollbacks, 2);  // one per drifted switch
  EXPECT_TRUE(check_switch_configs(sws, policy, DeploymentStage::kFull).empty());
  int drift_incidents = 0;
  for (const Incident& inc : mgr.incidents()) {
    if (inc.kind != IncidentKind::kConfigDrift) continue;
    ++drift_incidents;
    EXPECT_GE(inc.mitigated_at, 0);
  }
  EXPECT_EQ(drift_incidents, 2);
  EXPECT_NE(chaos.journal_text().find("config_rollback tor-1-1 restored mmu.alpha"),
            std::string::npos);
  EXPECT_NE(chaos.journal_text().find("config_rollback leaf-1-0 restored arp_policy"),
            std::string::npos);

  // The next scan sees clean configs and resolves the incidents; no
  // further rollbacks fire.
  mgr.scan_now();
  EXPECT_EQ(mgr.stats().rollbacks, 2);
  for (const Incident& inc : mgr.incidents()) {
    if (inc.kind == IncidentKind::kConfigDrift) EXPECT_GE(inc.resolved_at, 0);
  }
}

// Blast radius is a first-class metric: the manager exports per-pod
// costed-capacity gauges, and the InvariantAuditor's kBlastRadius check
// audits them independently of the manager's own budget logic.
TEST(IncidentManagerLoop, BlastGaugesExportedAndAuditorFlagsOverBudget) {
  FleetRig rig;
  Simulator& sim = rig.clos.sim();
  IncidentManager mgr(rig.clos.fabric(), rig.localizer, lab_cfg());
  const MetricRegistry& reg = sim.metrics();
  EXPECT_EQ(reg.select("fleet/pod0/costed_capacity_frac_bp").size(), 1u);
  EXPECT_EQ(reg.select("fleet/pod1/costed_capacity_frac_bp").size(), 1u);
  EXPECT_EQ(reg.select("fleet/spine/costed_capacity_frac_bp").size(), 1u);

  InvariantAuditor::Options aopts;
  aopts.interval = microseconds(100);
  aopts.registry = &sim.metrics();
  aopts.blast_budget_bp = 2500;
  std::vector<Switch*> sws;
  for (const auto& swp : rig.clos.fabric().switches()) sws.push_back(swp.get());
  std::vector<Host*> hosts;
  for (const auto& h : rig.clos.fabric().hosts()) hosts.push_back(h.get());
  InvariantAuditor auditor(sim, sws, hosts, aopts);
  auditor.start();

  // Nothing costed out: gauges are zero and the auditor stays quiet.
  mgr.scan_now();
  sim.run_until(milliseconds(1));
  EXPECT_EQ(reg.sum("fleet/*/costed_capacity_frac_bp"), 0);
  EXPECT_EQ(auditor.hard_violations(), 0);

  // A rogue actor (not the manager) zeroes 4 of pod 0's 12 members:
  // 3333 bp, past the 2500 bp budget.
  rig.clos.tor(0, 0).set_port_weight(2, 0);
  rig.clos.tor(0, 0).set_port_weight(3, 0);
  rig.clos.tor(0, 1).set_port_weight(2, 0);
  rig.clos.tor(0, 1).set_port_weight(3, 0);
  mgr.scan_now();  // gauge refresh happens on the manager's scan
  EXPECT_EQ(reg.sum("fleet/pod0/costed_capacity_frac_bp"), 4 * 10000 / 12);
  EXPECT_DOUBLE_EQ(mgr.pod_costed_frac(0), 4.0 / 12.0);

  sim.run_until(milliseconds(2));
  EXPECT_GE(auditor.hard_violations(), 1);
  bool saw_blast = false;
  for (const auto& v : auditor.violations()) {
    if (v.kind == InvariantAuditor::Kind::kBlastRadius) saw_blast = true;
  }
  EXPECT_TRUE(saw_blast);
}

}  // namespace
}  // namespace rocelab
