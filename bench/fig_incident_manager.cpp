// E19 — fleet-level incident manager under a mixed-fault chaos soak
// (ISSUE 6 tentpole). Four faults overlap inside one run (the first three
// are placed on the directions the flows' traced ECMP paths actually use):
//
//   - a one-way blackhole on a pod-0 leaf's busiest DOWN direction: the
//     leaf's down-route has a single member, so a per-direction cost-out
//     is floor-vetoed forever — only draining the leaf re-routes around
//     it;
//   - 100% one-way FCS corruption on that same leaf's first uplink: the
//     second confirmed-bad direction on the same switch, pushing it over
//     the drain threshold;
//   - 100% one-way FCS corruption on the busiest pod-1 ToR uplink: a
//     far-pod gray direction where a plain cost-out is the right answer;
//   - §6.2 config drift (alpha silently 1/64) on tor-1-1, plus a NIC pause
//     storm on a pod-1 server (§4.3) for incident-table visibility.
//
// Three responses are compared against a clean run, all sharing the same
// monitoring plane (pingmesh grid -> localizer, FCS health monitor,
// invariant auditor):
//
//   - none:      no control loop; blackhole + gray victims starve and the
//                drift persists;
//   - selfheal:  the per-direction SelfHealer costs out what it can (the
//                two uplink grays) but floor-vetoes the blackholed down
//                direction and has no config plane — fleet goodput stays
//                degraded;
//   - incmgr:    the IncidentManager drains the bad leaf (one ranked
//                action covering both of its bad directions), costs out
//                the far-pod gray, rolls the drifted config back, and
//                holds fleet goodput at the SLA floor — all inside a
//                per-pod blast-radius budget audited independently.
//
// The incmgr arm runs twice: identical seeds must produce byte-identical
// chaos journals (the --expect_journal knob lets CI pin the golden hash).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/app/demux.h"
#include "src/app/pingmesh_grid.h"
#include "src/exp/scenario.h"
#include "src/exp/transport.h"
#include "src/faults/auditor.h"
#include "src/faults/chaos.h"
#include "src/faults/incident_manager.h"
#include "src/faults/localizer.h"
#include "src/faults/self_heal.h"
#include "src/link/impairment.h"
#include "src/monitor/health.h"
#include "src/monitor/metric_registry.h"
#include "src/monitor/monitor.h"
#include "src/nic/rdma_nic.h"
#include "src/rocev2/deployment.h"
#include "src/switch/sw.h"
#include "src/topo/trace.h"

using namespace rocelab;

namespace {

enum class Mode { kClean, kNone, kSelfHeal, kIncMgr };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kClean: return "clean";
    case Mode::kNone: return "none";
    case Mode::kSelfHeal: return "selfheal";
    case Mode::kIncMgr: return "incmgr";
  }
  return "?";
}

struct Result {
  double mean_gbps = 0.0;  // fleet goodput over the post-settle window
  double min_gbps = 0.0;
  int blackhole_victims = 0;  // flows whose data path crossed the bad down port
  int gray_victims = 0;       // flows whose data path crossed the gray uplink
  std::int64_t cost_outs = 0;
  std::int64_t drains = 0;
  std::int64_t rollbacks = 0;
  std::int64_t sheds = 0;
  std::int64_t floor_vetoes = 0;
  std::int64_t hard_violations = 0;
  std::int64_t drift_left = 0;  // config drift records at end of run
  std::size_t drain_covers = 0;
  bool drain_journalled = false;
  bool rollback_journalled = false;
  bool storm_incident = false;
  double pod0_costed_frac = 0.0;  // peak would need sampling; end-of-run level
  std::uint64_t journal_hash = 0;
};

constexpr std::int64_t kMsgBytes = 16 * kKiB;

Result run_case(const exp::Context& ctx, Mode mode, Time duration, Time window_at,
                double blast_frac, int shards) {
  // Two podsets x (2 leaves x 2 ToRs x 2 servers) + 4 spines: every leaf
  // down-route is single-member (the structural reason drains exist) and
  // every up-route has two members (cost-outs are floor-safe).
  QosPolicy policy;
  policy.max_cable_m = 20.0;
  exp::apply_transport_knobs(ctx, policy);
  ClosParams params = make_clos_params(policy, DeploymentStage::kFull, /*podsets=*/2,
                                       /*leaves=*/2, /*tors=*/2, /*servers=*/2, /*spines=*/4);
  params.shards = shards;
  ClosFabric clos(params);
  Simulator& sim = clos.sim();

  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  for (const auto& h : clos.fabric().hosts()) demuxes.push_back(std::make_unique<RdmaDemux>(*h));
  auto demux_of = [&](Host& h) -> RdmaDemux& {
    for (std::size_t i = 0; i < clos.fabric().hosts().size(); ++i) {
      if (clos.fabric().hosts()[i].get() == &h) return *demuxes[i];
    }
    throw std::logic_error("unknown host");
  };

  QpConfig qp = make_qp_config(policy);
  qp.retx_timeout = microseconds(200);
  qp.retry_limit = 0;  // retry forever: recovery is routing's job here

  // Intra-podset paced flows, both directions in both pods. Intra-podset
  // traffic crosses exactly one leaf, so a drain of leaf-0-0 fully
  // re-routes pod 0 onto leaf-0-1 — no spine detour needed.
  struct Flow {
    Host* src = nullptr;
    Host* dst = nullptr;
    std::uint32_t qpn = 0;
    std::int64_t posted = 0;
    std::int64_t completed = 0;
  };
  std::vector<Flow> flows;
  for (int ps = 0; ps < 2; ++ps) {
    for (int i = 0; i < 2; ++i) {
      flows.push_back({&clos.server(ps, 0, i), &clos.server(ps, 1, i)});
      flows.push_back({&clos.server(ps, 1, i), &clos.server(ps, 0, i)});
    }
  }
  for (Flow& f : flows) {
    auto [qa, qb] = connect_qp_pair(*f.src, *f.dst, qp);
    (void)qb;
    f.qpn = qa;
    demux_of(*f.src).on_completion(qa, [&f](const RdmaCompletion&) { ++f.completed; });
  }

  // Fault placement is derived from the flows' actual ECMP paths (traced
  // with each QP's real sport), so the faults are guaranteed to bite no
  // matter how the five-tuple hash spread the flows:
  //   - blackhole: the pod-0 leaf DOWN direction carrying the most flows
  //     (single-member route -> a cost-out is floor-vetoed forever);
  //   - gray FCS:  that same leaf's first uplink (second bad direction on
  //     one switch -> drain territory) plus the pod-1 ToR uplink carrying
  //     the most flows (far-pod cost-out territory).
  // Counts double as the victim census. Ties break on (name, port) so the
  // choice is deterministic.
  std::map<std::pair<std::string, int>, std::pair<Switch*, int>> down_hops, up_hops;
  for (const Flow& f : flows) {
    for (const TraceHop& h :
         trace_route(clos.fabric(), *f.src, *f.dst, f.src->rdma().qp_sport(f.qpn))) {
      for (int l = 0; l < params.leaves_per_podset; ++l) {
        if (h.node == &clos.leaf(0, l) && h.port < params.tors_per_podset) {
          auto& e = down_hops[{h.node->name(), h.port}];
          e.first = &clos.leaf(0, l);
          ++e.second;
        }
      }
      for (int t = 0; t < params.tors_per_podset; ++t) {
        if (h.node == &clos.tor(1, t) && h.port >= params.servers_per_tor) {
          auto& e = up_hops[{h.node->name(), h.port}];
          e.first = &clos.tor(1, t);
          ++e.second;
        }
      }
    }
  }
  auto busiest = [](const std::map<std::pair<std::string, int>, std::pair<Switch*, int>>& hops) {
    const std::pair<const std::pair<std::string, int>, std::pair<Switch*, int>>* best = nullptr;
    for (const auto& e : hops) {
      if (best == nullptr || e.second.second > best->second.second) best = &e;
    }
    return best;
  };
  const auto* down_pick = busiest(down_hops);
  const auto* up_pick = busiest(up_hops);
  if (down_pick == nullptr || up_pick == nullptr) throw std::logic_error("no fault victims");
  Switch& bad_leaf = *down_pick->second.first;
  const int bad_down = down_pick->first.second;   // busiest pod-0 leaf down dir
  const int bad_up = params.tors_per_podset + 0;  // that leaf's first uplink
  Switch& gray_tor = *up_pick->second.first;
  const int gray_up = up_pick->first.second;      // busiest pod-1 ToR uplink
  const int blackhole_victims = down_pick->second.second;
  const int gray_victims = up_pick->second.second;
  std::function<void()> pump = [&] {
    for (Flow& f : flows) {
      if (f.src->rdma().qp_connected(f.qpn) && !f.src->rdma().qp_errored(f.qpn) &&
          f.posted - f.completed < 4) {
        f.src->rdma().post_send(f.qpn, kMsgBytes, 0);
        ++f.posted;
      }
    }
    clos.fabric().control_sim().schedule_in(microseconds(16), pump);
  };
  // The pump posts work on hosts of every pod, so in sharded runs it must
  // fire on the control lane (all shards quiesced); at one shard the
  // control lane aliases the data lane, so the schedule is unchanged.
  clos.fabric().control_sim().schedule_in(microseconds(10), pump);

  // Monitoring plane, identical in every mode: pingmesh over all servers
  // feeding the localizer, FCS counter watch, invariant auditor (with the
  // blast-radius budget it audits independently of the manager).
  std::vector<Host*> grid_hosts;
  std::vector<RdmaDemux*> grid_demuxes;
  for (const auto& h : clos.fabric().hosts()) {
    grid_hosts.push_back(h.get());
    grid_demuxes.push_back(&demux_of(*h));
  }
  PingmeshGrid::Options gopts;
  gopts.probe.interval = microseconds(50);
  gopts.probe.timeout = microseconds(400);
  gopts.qp = make_qp_config(policy, /*realtime=*/true);
  gopts.qp.retx_timeout = microseconds(150);
  gopts.qp.retry_limit = 3;
  PingmeshGrid grid(grid_hosts, grid_demuxes, gopts);
  GrayFailureLocalizer localizer(clos.fabric());
  // Probe outcomes fire on each prober's shard. At one shard they feed the
  // localizer directly (keeping the golden journal byte-identical); in
  // sharded runs concurrent callbacks may not touch the shared localizer,
  // so they append to a per-pair-sequenced log that a control-lane tick
  // folds in deterministic (time, prober, target, seq) order.
  struct Obs {
    Time at;
    int s, d;
    bool ok;
    std::int64_t seq;
  };
  std::mutex obs_mu;
  std::vector<Obs> obs_log;
  std::vector<std::int64_t> pair_seq(grid_hosts.size() * grid_hosts.size(), 0);
  std::function<void()> drain_obs;
  if (clos.fabric().shard_count() > 1) {
    const std::size_t n = grid_hosts.size();
    grid.set_outcome_cb([&, n](int s, int d, bool ok, Time t) {
      std::lock_guard<std::mutex> lk(obs_mu);
      obs_log.push_back(
          {t, s, d, ok, pair_seq[static_cast<std::size_t>(s) * n + static_cast<std::size_t>(d)]++});
    });
    drain_obs = [&] {
      std::vector<Obs> batch;
      {
        std::lock_guard<std::mutex> lk(obs_mu);
        batch.swap(obs_log);
      }
      std::sort(batch.begin(), batch.end(), [](const Obs& a, const Obs& b) {
        return std::tie(a.at, a.s, a.d, a.seq) < std::tie(b.at, b.s, b.d, b.seq);
      });
      for (const Obs& o : batch) {
        localizer.observe(grid.host(o.s), grid.host(o.d), grid.probe_sport(o.s, o.d),
                          grid.echo_sport(o.s, o.d), o.ok);
      }
      clos.fabric().control_sim().schedule_in(microseconds(250), drain_obs);
    };
    // Registered before the control loops start, so at equal control-lane
    // timestamps every drain runs before the scan that consumes it.
    clos.fabric().control_sim().schedule_in(microseconds(250), drain_obs);
  } else {
    grid.set_outcome_cb([&](int s, int d, bool ok, Time) {
      localizer.observe(grid.host(s), grid.host(d), grid.probe_sport(s, d), grid.echo_sport(s, d),
                        ok);
    });
  }
  grid.start();

  LinkHealthMonitor::Options hopts;
  hopts.interval = milliseconds(1);
  LinkHealthMonitor health(clos.fabric(), hopts);
  health.start();

  InvariantAuditor::Options aopts;
  aopts.interval = microseconds(200);
  aopts.registry = &sim.metrics();
  aopts.blast_budget_bp = static_cast<std::int64_t>(blast_frac * 10000.0 + 0.5);
  std::vector<Switch*> sw_ptrs;
  for (const auto& s : clos.fabric().switches()) sw_ptrs.push_back(s.get());
  std::vector<Host*> host_ptrs;
  for (const auto& h : clos.fabric().hosts()) host_ptrs.push_back(h.get());
  InvariantAuditor auditor(clos.fabric().control_sim(), sw_ptrs, host_ptrs, aopts);
  auditor.start();

  // The chaos soak: all four faults overlap, journalled with the
  // mitigations so one journal reads fault -> decision end to end.
  ChaosEngine chaos(clos.fabric(), /*seed=*/2016);
  if (mode != Mode::kClean) {
    // The blackhole goes in early: probe-loss share is cumulative, so a
    // direction that accrued t_pre of successes needs ~9*t_pre of failures
    // to cross a 0.9 score. At 1ms it confirms near 10ms — inside the
    // settle window. The FCS faults are counter-visible immediately.
    LinkImpairment bh;
    bh.blackhole = true;
    bh.seed = 21;
    chaos.impair_link(bad_leaf, bad_down, bh, milliseconds(1));
    LinkImpairment fcs;
    fcs.fcs_drop_rate = 1.0;
    fcs.seed = 22;
    chaos.impair_link(bad_leaf, bad_up, fcs, milliseconds(1));
    LinkImpairment fcs2;
    fcs2.fcs_drop_rate = 1.0;
    fcs2.seed = 23;
    chaos.impair_link(gray_tor, gray_up, fcs2, milliseconds(2));
    chaos.alpha_drift(clos.tor(1, 1), milliseconds(12), 1.0 / 64);
    chaos.nic_storm(clos.server(1, 1, 1), milliseconds(14), milliseconds(20));
  }

  // The arm under test. Both control loops see the same evidence with the
  // same thresholds; only the adjudication differs.
  std::unique_ptr<SelfHealer> healer;
  std::unique_ptr<IncidentManager> mgr;
  if (mode == Mode::kSelfHeal) {
    SelfHealConfig scfg;
    scfg.scan_interval = microseconds(250);
    scfg.score_threshold = 0.9;  // collateral upstream directions stay cold
    scfg.min_probes = 3;
    scfg.confirm_scans = 2;
    scfg.probation = seconds(1);  // no restore inside this soak
    scfg.max_concurrent = 4;
    healer = std::make_unique<SelfHealer>(clos.fabric(), localizer, scfg);
    healer->set_chaos(&chaos);
    healer->start();
  } else if (mode == Mode::kIncMgr) {
    IncidentManagerConfig mcfg;
    mcfg.scan_interval = microseconds(250);
    mcfg.score_threshold = 0.9;
    mcfg.min_probes = 3;
    mcfg.confirm_scans = 2;
    mcfg.drain_threshold = 2;
    mcfg.probation = seconds(1);  // no restore inside this soak
    mcfg.restore_cooldown = seconds(1);
    mcfg.blast_budget_frac = blast_frac;
    mgr = std::make_unique<IncidentManager>(clos.fabric(), localizer, mcfg);
    mgr->set_chaos(&chaos);
    mgr->set_link_health(&health);
    mgr->set_auditor(&auditor);
    mgr->set_golden_policy(policy, DeploymentStage::kFull);
    mgr->start();
  }

  SlaMonitor sla(clos.fabric().control_sim(), "srv*/rdma/bytes_completed", milliseconds(1));
  sla.start();
  sim.run_until(duration);

  Result r;
  const std::size_t skip = static_cast<std::size_t>(window_at / milliseconds(1));
  r.mean_gbps = sla.mean_gbps(skip);
  r.min_gbps = sla.min_gbps(skip);
  r.blackhole_victims = blackhole_victims;
  r.gray_victims = gray_victims;
  r.hard_violations = auditor.hard_violations();
  r.drift_left = static_cast<std::int64_t>(
      check_switch_configs(sw_ptrs, policy, DeploymentStage::kFull).size());
  if (healer) {
    r.cost_outs = healer->stats().cost_outs;
    r.floor_vetoes = healer->stats().floor_vetoes;
  }
  if (mgr) {
    r.cost_outs = mgr->stats().cost_outs;
    r.drains = mgr->stats().drains;
    r.rollbacks = mgr->stats().rollbacks;
    r.sheds = mgr->stats().sheds;
    r.floor_vetoes = mgr->stats().floor_vetoes;
    r.pod0_costed_frac = mgr->pod_costed_frac(0);
    for (const FleetMitigation& m : mgr->mitigations()) {
      if (m.kind == MitigationKind::kSwitchDrain && m.target == bad_leaf.name()) {
        r.drain_covers = std::max(r.drain_covers, m.covers.size());
      }
    }
    for (const Incident& inc : mgr->incidents()) {
      if (inc.kind == IncidentKind::kPauseStorm) r.storm_incident = true;
    }
  }
  const std::string journal = chaos.journal_text();
  r.drain_journalled = journal.find("switch_drain " + bad_leaf.name()) != std::string::npos;
  r.rollback_journalled =
      journal.find("config_rollback " + clos.tor(1, 1).name()) != std::string::npos;
  r.journal_hash = chaos.journal_hash();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Scenario sc;
  sc.name = "fig_incident_manager";
  sc.title = "E19 — fleet incident manager: ranked mitigations under a mixed-fault soak";
  sc.paper = "paper: §5-§6 run RDMA at scale with gray-failure localization, config\n"
             "monitoring and staged mitigation; this composes them into one fleet\n"
             "controller — drain > cost-out ranking, §6.2 drift rollback, and a\n"
             "pod-level blast-radius budget, all journalled deterministically";
  sc.knobs = {
      exp::knob_int("duration_ms", 60, "ROCELAB_INCMGR_MS", "simulated time per arm"),
      exp::knob_int("window_ms", 24, "", "SLA window start (post mitigation settle)"),
      exp::knob_double("sla_floor_frac", 0.85, "", "SLA floor as a fraction of clean mean"),
      exp::knob_double("blast_frac", 0.30, "", "per-pod blast-radius budget"),
      exp::knob_string("expect_journal", "", "", "golden incmgr journal hash (hex, CI gate)"),
  };
  sc.body = [](exp::Context& ctx) {
    const Time duration = milliseconds(ctx.knob_int("duration_ms"));
    const Time window_at = milliseconds(ctx.knob_int("window_ms"));
    const double floor_frac = ctx.knob_double("sla_floor_frac");
    const double blast_frac = ctx.knob_double("blast_frac");

    ctx.note("topology: 2 podsets x (2 leaves x 2 ToRs x 2 servers) + 4 spines; faults on");
    ctx.note("traced flow paths: blackhole busiest pod-0 leaf down dir + gray its uplink");
    ctx.note("(drain), gray busiest pod-1 ToR uplink (cost-out), alpha drift (rollback)");
    ctx.table({"mode", "mean Gb/s", "min Gb/s", "cost-outs", "drains", "rollbacks", "drift left"},
              {10, 11, 10, 11, 8, 11, 12});
    Result res[4];
    const Mode modes[4] = {Mode::kClean, Mode::kNone, Mode::kSelfHeal, Mode::kIncMgr};
    for (int i = 0; i < 4; ++i) {
      res[i] = run_case(ctx, modes[i], duration, window_at, blast_frac, ctx.shards());
      const Result& r = res[i];
      const std::string name = mode_name(modes[i]);
      ctx.row({name, exp::fmt("%.2f", r.mean_gbps), exp::fmt("%.2f", r.min_gbps),
               std::to_string(r.cost_outs), std::to_string(r.drains),
               std::to_string(r.rollbacks), std::to_string(r.drift_left)});
      ctx.metric(name, "mean_goodput_gbps", r.mean_gbps);
      ctx.metric(name, "min_goodput_gbps", r.min_gbps);
      ctx.metric(name, "cost_outs", static_cast<double>(r.cost_outs));
      ctx.metric(name, "drains", static_cast<double>(r.drains));
      ctx.metric(name, "rollbacks", static_cast<double>(r.rollbacks));
      ctx.metric(name, "sheds", static_cast<double>(r.sheds));
      ctx.metric(name, "drift_left", static_cast<double>(r.drift_left));
      ctx.metric(name, "hard_violations", static_cast<double>(r.hard_violations));
    }
    const Result& clean = res[0];
    const Result& none = res[1];
    const Result& heal = res[2];
    const Result& mgr = res[3];
    const double floor = floor_frac * clean.mean_gbps;
    ctx.metric("incmgr", "sla_floor_gbps", floor);
    ctx.metric("incmgr", "pod0_costed_frac", mgr.pod0_costed_frac);
    ctx.note("SLA floor " + exp::fmt("%.2f", floor) + " Gb/s; incmgr pod0 costed frac " +
             exp::fmt("%.3f", mgr.pod0_costed_frac) + " (budget " +
             exp::fmt("%.2f", blast_frac) + ")");

    ctx.check("faults actually bit paced flows",
              clean.blackhole_victims > 0 && clean.gray_victims > 0);
    ctx.check("no controller: fleet stays below the SLA floor", none.mean_gbps < floor);
    ctx.check("selfheal alone: blackholed down direction floor-vetoed, fleet below floor",
              heal.floor_vetoes > 0 && heal.mean_gbps < floor);
    ctx.check("incident manager holds fleet goodput at the SLA floor",
              mgr.min_gbps >= floor);
    ctx.check("one ranked drain covers both bad-leaf directions",
              mgr.drains >= 1 && mgr.drain_covers >= 2 && mgr.drain_journalled);
    ctx.check("§6.2 drift detected and rolled back within the soak",
              mgr.rollbacks >= 1 && mgr.rollback_journalled && mgr.drift_left == 0 &&
                  none.drift_left > 0);
    ctx.check("pause storm surfaced as an incident", mgr.storm_incident);
    ctx.check("blast budget respected (auditor-verified)",
              mgr.hard_violations == 0 && mgr.pod0_costed_frac <= blast_frac + 1e-9);

    // Determinism: the same seed must reproduce the same decision sequence
    // byte for byte.
    const Result rerun = run_case(ctx, Mode::kIncMgr, duration, window_at, blast_frac, ctx.shards());
    ctx.check("incmgr chaos journal is byte-identical across reruns",
              rerun.journal_hash == mgr.journal_hash);
    char hash_buf[24];
    std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                  static_cast<unsigned long long>(mgr.journal_hash));
    const std::string hash = hash_buf;
    ctx.note("incmgr journal hash: " + hash);
    ctx.metric("incmgr", "journal_hash_hi", static_cast<double>(mgr.journal_hash >> 32));
    const std::string& expect = ctx.knob_string("expect_journal");
    if (!expect.empty()) {
      ctx.check("journal hash matches the CI golden value", hash == expect);
    }
  };
  return exp::run_scenario(sc, argc, argv);
}
