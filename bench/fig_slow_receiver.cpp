// E4 — §4.4: the slow-receiver symptom.
//
// Paper: the NIC keeps QPC/WQE/MTT state in host DRAM and caches only 2K
// MTT entries. With 4KB pages, misses stall the receive pipeline, the rx
// buffer fills, and the NIC emits PFC pause frames ("up to thousands per
// second") even though the PCIe link is not a bottleneck. Mitigations:
// 2MB pages (MTT covers the registered region) and dynamic buffer sharing
// at the switch (absorbs the NIC's pauses locally instead of propagating
// them into the network).
#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/exp/scenario.h"
#include "src/exp/transport.h"
#include "src/topo/fabric.h"

using namespace rocelab;

namespace {

struct Result {
  double goodput_gbps = 0.0;
  double nic_pauses_per_sec = 0.0;       // NIC -> ToR pause frames
  double propagated_pauses_per_sec = 0.0;  // ToR -> Leaf pause frames (collateral)
  double mtt_miss_rate = 0.0;
};

Result run_case(const exp::Context& ctx, std::int64_t page_bytes, bool dynamic_buffer,
                Time duration) {
  Fabric fabric;
  SwitchConfig sw_cfg;
  sw_cfg.lossless[3] = true;
  exp::apply_transport_knobs(ctx, sw_cfg);
  sw_cfg.mmu.headroom_per_pg =
      recommended_headroom(gbps(40), propagation_delay_for_meters(20), 1086);
  sw_cfg.mmu.dynamic_shared = dynamic_buffer;
  sw_cfg.mmu.static_limit_per_pg = 64 * kKiB;  // static partition per §4.4 comparison

  auto& tor_a = fabric.add_switch("torA", sw_cfg, 2);  // p0: sender, p1: leaf
  auto& tor_b = fabric.add_switch("torB", sw_cfg, 2);  // p0: receiver, p1: leaf
  auto& leaf = fabric.add_switch("leaf", sw_cfg, 2);   // p0: torA, p1: torB
  tor_a.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24});
  tor_b.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24});
  tor_a.add_route(Ipv4Prefix{Ipv4Addr{}, 0}, {1});
  tor_b.add_route(Ipv4Prefix{Ipv4Addr{}, 0}, {1});
  leaf.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24}, {0});
  leaf.add_route(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24}, {1});

  HostConfig sender_cfg;
  sender_cfg.lossless[3] = true;
  exp::apply_transport_knobs(ctx, sender_cfg);
  HostConfig receiver_cfg = sender_cfg;
  receiver_cfg.mtt.model_enabled = true;
  receiver_cfg.mtt.page_bytes = page_bytes;
  receiver_cfg.mtt.entries = 2048;            // §4.4: 2K MTT entries
  receiver_cfg.mtt.working_set = 64 * kMiB;   // registered memory WQEs touch
  receiver_cfg.mtt.miss_penalty = microseconds(1);

  auto& sender = fabric.add_host("sender", sender_cfg);
  auto& receiver = fabric.add_host("receiver", receiver_cfg);
  sender.set_ip(Ipv4Addr::from_octets(10, 0, 0, 1));
  receiver.set_ip(Ipv4Addr::from_octets(10, 0, 1, 1));
  fabric.attach_host(sender, tor_a, 0, gbps(40), propagation_delay_for_meters(2));
  fabric.attach_host(receiver, tor_b, 0, gbps(40), propagation_delay_for_meters(2));
  fabric.attach_switches(tor_a, 1, leaf, 0, gbps(40), propagation_delay_for_meters(20));
  fabric.attach_switches(tor_b, 1, leaf, 1, gbps(40), propagation_delay_for_meters(20));

  QpConfig qp_cfg;
  qp_cfg.dcqcn = false;  // isolate the PFC mechanics
  exp::apply_transport_knobs(ctx, qp_cfg);
  auto [qa, qb] = connect_qp_pair(sender, receiver, qp_cfg);
  (void)qb;
  RdmaDemux demux(sender);
  RdmaStreamSource src(sender, demux, qa,
                       RdmaStreamSource::Options{.message_bytes = 1 * kMiB,
                                                 .max_outstanding = 2});
  src.start();
  fabric.sim().run_until(duration);

  Result r;
  r.goodput_gbps = src.goodput_bps() / 1e9;
  r.nic_pauses_per_sec =
      static_cast<double>(receiver.port(0).counters().total_tx_pause()) / to_seconds(duration);
  r.propagated_pauses_per_sec =
      static_cast<double>(tor_b.port(1).counters().total_tx_pause()) / to_seconds(duration);
  r.mtt_miss_rate = receiver.mtt() != nullptr ? receiver.mtt()->miss_rate() : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Scenario sc;
  sc.name = "fig_slow_receiver";
  sc.title = "E4 / §4.4 — slow-receiver symptom (MTT cache misses)";
  sc.paper = "paper: 4KB pages -> MTT misses stall the rx pipeline -> thousands of\n"
             "pause frames/s; 2MB pages + dynamic buffer sharing mitigate";
  sc.knobs = {exp::knob_int("duration_ms", 50, "ROCELAB_SLOWRX_MS",
                            "simulated time per page/buffer case")};
  sc.body = [](exp::Context& ctx) {
    const Time duration = milliseconds(ctx.knob_int("duration_ms"));

    ctx.table({"page", "buffer", "goodput(Gb/s)", "NIC pauses/s", "ToR->Leaf pauses/s",
               "MTT miss"},
              {12, 10, 16, 16, 20, 12});

    struct Case {
      std::int64_t page;
      bool dynamic;
    };
    Result results[4];
    int i = 0;
    for (const Case c : {Case{4 * kKiB, false}, Case{4 * kKiB, true}, Case{2 * kMiB, false},
                         Case{2 * kMiB, true}}) {
      const Result r = run_case(ctx, c.page, c.dynamic, duration);
      results[i++] = r;
      const std::string page = c.page >= kMiB ? "2MB" : "4KB";
      const std::string buffer = c.dynamic ? "dynamic" : "static";
      ctx.row({page, buffer, exp::fmt("%.2f", r.goodput_gbps),
               exp::fmt("%.0f", r.nic_pauses_per_sec),
               exp::fmt("%.0f", r.propagated_pauses_per_sec),
               exp::fmt("%.1f%%", r.mtt_miss_rate * 100)});
      const std::string case_name = page + "/" + buffer;
      ctx.metric(case_name, "goodput_gbps", r.goodput_gbps);
      ctx.metric(case_name, "nic_pauses_per_sec", r.nic_pauses_per_sec);
      ctx.metric(case_name, "propagated_pauses_per_sec", r.propagated_pauses_per_sec);
      ctx.metric(case_name, "mtt_miss_rate", r.mtt_miss_rate);
    }

    const Result& small_static = results[0];
    const Result& small_dyn = results[1];
    const Result& big_dyn = results[3];
    const bool symptom = small_static.nic_pauses_per_sec > 1000;  // "thousands per second"
    const bool big_pages_fix = big_dyn.nic_pauses_per_sec < 0.05 * small_dyn.nic_pauses_per_sec &&
                               big_dyn.goodput_gbps > 1.5 * small_dyn.goodput_gbps;
    const bool dyn_absorbs =
        small_dyn.propagated_pauses_per_sec < 0.5 * small_static.propagated_pauses_per_sec;
    ctx.check("slow-receiver pauses with 4KB pages", symptom);
    ctx.check("2MB pages fix", big_pages_fix);
    ctx.check("dynamic buffer reduces propagation", dyn_absorbs);
  };
  return exp::run_scenario(sc, argc, argv);
}
