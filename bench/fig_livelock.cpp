// E1 — §4.1 RDMA transport livelock.
//
// Paper setup: two servers A, B through one switch configured to drop any
// packet whose IP ID ends in 0xff (1/256 = 0.4% deterministic loss, since
// the NIC assigns IP IDs sequentially). A sends 4MB messages via SEND,
// WRITE, and READ as fast as possible.
//
// Paper result: with the vendor's go-back-0 loss recovery, application
// goodput is ZERO (the link stays busy but no message ever completes:
// livelock). With the paper's go-back-N fix, goodput is restored.
#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/exp/scenario.h"
#include "src/exp/transport.h"
#include "src/topo/fabric.h"

using namespace rocelab;

namespace {

struct Result {
  double goodput_gbps = 0.0;
  std::int64_t messages = 0;
  std::int64_t drops = 0;
};

Result run_case(const exp::Context& ctx, RdmaVerb verb, LossRecovery recovery, Time duration) {
  Fabric fabric;
  SwitchConfig sw_cfg;
  sw_cfg.lossless[3] = true;
  exp::apply_transport_knobs(ctx, sw_cfg);
  auto& sw = fabric.add_switch("W", sw_cfg, 2);
  sw.add_local_subnet(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24});
  // The paper's drop rule: least-significant IP ID byte == 0xff.
  sw.set_drop_filter([](const Packet& p) { return p.ip && (p.ip->id & 0xff) == 0xff; });

  HostConfig host_cfg;
  host_cfg.lossless[3] = true;
  exp::apply_transport_knobs(ctx, host_cfg);
  auto& a = fabric.add_host("A", host_cfg);
  auto& b = fabric.add_host("B", host_cfg);
  a.set_ip(Ipv4Addr::from_octets(10, 0, 0, 1));
  b.set_ip(Ipv4Addr::from_octets(10, 0, 0, 2));
  fabric.attach_host(a, sw, 0, gbps(40), propagation_delay_for_meters(2));
  fabric.attach_host(b, sw, 1, gbps(40), propagation_delay_for_meters(2));

  QpConfig qp_cfg;
  qp_cfg.recovery = recovery;
  exp::apply_transport_knobs(ctx, qp_cfg);
  qp_cfg.recovery = recovery;  // the sweep axis wins over the knob override
  qp_cfg.dcqcn = false;  // lab experiment: no congestion control involved
  auto [qa, qb] = connect_qp_pair(a, b, qp_cfg);
  (void)qb;

  RdmaDemux demux_a(a);
  RdmaDemux demux_b(b);
  // READ: B reads 4MB chunks from A (data still flows A->B). SEND/WRITE:
  // A sends to B.
  Host& driver = verb == RdmaVerb::kRead ? b : a;
  RdmaDemux& demux = verb == RdmaVerb::kRead ? demux_b : demux_a;
  const std::uint32_t qpn = verb == RdmaVerb::kRead ? qb : qa;
  RdmaStreamSource src(driver, demux, qpn,
                       RdmaStreamSource::Options{.message_bytes = 4 * kMiB,
                                                 .max_outstanding = 1,
                                                 .verb = verb});
  src.start();
  fabric.sim().run_until(duration);

  Result r;
  r.goodput_gbps = src.goodput_bps() / 1e9;
  r.messages = src.completed_messages();
  r.drops = sw.filtered_drops();
  return r;
}

const char* verb_name(RdmaVerb v) {
  switch (v) {
    case RdmaVerb::kSend: return "SEND";
    case RdmaVerb::kWrite: return "WRITE";
    case RdmaVerb::kRead: return "READ";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  exp::Scenario sc;
  sc.name = "fig_livelock";
  sc.title = "E1 / §4.1 — RDMA transport livelock (4MB messages, 0.4% deterministic drop)";
  sc.paper = "paper: go-back-0 goodput = 0 (livelock, link fully utilized); "
             "go-back-N restores goodput";
  sc.knobs = {exp::knob_int("duration_ms", 60, "ROCELAB_LIVELOCK_MS",
                            "simulated time per verb/recovery case")};
  sc.body = [](exp::Context& ctx) {
    const Time duration = milliseconds(ctx.knob_int("duration_ms"));

    // The recovery sweep IS this experiment; a --recovery override narrows
    // the sweep to that one mode (and only the applicable check is emitted).
    std::vector<LossRecovery> modes = {LossRecovery::kGoBack0, LossRecovery::kGoBackN};
    if (const auto forced = parse_loss_recovery(ctx.recovery_name())) modes = {*forced};

    ctx.table({"verb", "recovery", "goodput(Gb/s)", "messages", "switch drops"},
              {8, 12, 16, 14, 14});
    bool livelock_confirmed = true;
    bool fix_confirmed = true;
    bool ran_gb0 = false, ran_gbn = false;
    for (RdmaVerb verb : {RdmaVerb::kSend, RdmaVerb::kWrite, RdmaVerb::kRead}) {
      for (LossRecovery rec : modes) {
        const Result r = run_case(ctx, verb, rec, duration);
        const std::string rec_name = rec == LossRecovery::kGoBack0   ? "go-back-0"
                                     : rec == LossRecovery::kGoBackN ? "go-back-N"
                                                                     : "selrep";
        ctx.row({verb_name(verb), rec_name, exp::fmt("%.2f", r.goodput_gbps),
                 std::to_string(r.messages), std::to_string(r.drops)});
        const std::string case_name = std::string(verb_name(verb)) + "/" + rec_name;
        ctx.metric(case_name, "goodput_gbps", r.goodput_gbps);
        ctx.metric(case_name, "messages", static_cast<double>(r.messages));
        ctx.metric(case_name, "switch_drops", static_cast<double>(r.drops));
        if (rec == LossRecovery::kGoBack0) {
          ran_gb0 = true;
          if (r.messages != 0) livelock_confirmed = false;
        }
        if (rec == LossRecovery::kGoBackN) {
          ran_gbn = true;
          if (r.goodput_gbps < 5.0) fix_confirmed = false;
        }
      }
    }
    if (ran_gb0) ctx.check("livelock with go-back-0", livelock_confirmed);
    if (ran_gbn) ctx.check("go-back-N restores goodput", fix_confirmed);
  };
  return exp::run_scenario(sc, argc, argv);
}
