// E6 — Fig. 7: aggregate RDMA throughput in a three-tier Clos network.
//
// Paper setup: two podsets (4 leaves, 24 ToRs, 576 servers each), 64
// spines, all 40GbE. ToR i of podset 0 is paired with ToR i of podset 1;
// 8 servers per ToR, 8 QP connections per server pair, all sending as fast
// as possible. 3074 connections cross the 128 leaf-spine links.
//
// Paper result: 3.0 Tb/s aggregate = 60% of the 5.12 Tb/s leaf-spine
// capacity, not a single packet dropped, and the 60% ceiling is ECMP hash
// collision, not PFC/HOL blocking.
//
// We reproduce it two ways:
//   (1) flow-level: the exact full-scale connection set, ECMP-hashed and
//       max-min rate-allocated (fast, full 1152-server scale);
//   (2) packet-level: the same topology at reduced ToR count by default
//       (ROCELAB_FIG7_FULL=1 for the paper's full scale), measuring real
//       delivered frames with PFC + DCQCN active.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/monitor/monitor.h"
#include "src/rocev2/deployment.h"
#include "src/topo/ecmp_analysis.h"

using namespace rocelab;

int main() {
  bench::print_header("E6 / Fig. 7 — aggregate RDMA throughput in a 3-tier Clos");
  std::printf("paper: 3.0 Tb/s of 5.12 Tb/s leaf-spine capacity (60%%), zero drops,\n"
              "limited by ECMP hash collision\n");

  // ---- (1) flow-level analysis at the paper's full scale --------------------
  bench::print_header("flow-level ECMP analysis (full scale: 24 ToR pairs x 8 srv x 8 QPs)");
  {
    const std::vector<int> w{8, 14, 14, 12, 14, 14, 14};
    bench::print_row({"seed", "connections", "aggregate", "util", "bnk-share", "max fl/lnk",
                      "min fl/lnk"}, w);
    bench::print_rule(w);
    double util_sum = 0;
    const int seeds = 5;
    for (int seed = 1; seed <= seeds; ++seed) {
      EcmpAnalysisParams p;
      p.seed = static_cast<std::uint64_t>(seed);
      const auto r = analyze_clos_ecmp(p);
      util_sum += r.utilization;
      bench::print_row({std::to_string(seed), std::to_string(r.total_connections),
                        bench::fmt("%.2f Tb/s", r.aggregate_gbps / 1000),
                        bench::fmt("%.1f%%", r.utilization * 100),
                        bench::fmt("%.1f%%", r.utilization_bottleneck * 100),
                        bench::fmt("%.0f", r.max_leaf_spine_flows),
                        bench::fmt("%.0f", r.min_leaf_spine_flows)}, w);
    }
    const double mean_util = util_sum / seeds;
    std::printf("\nmean uniform-rate utilization %.1f%% (paper: 60%% — every server at the\n"
                "same 8Gb/s, i.e. the equal share of the most-collided link; per-bottleneck\n"
                "fairness could reach the bnk-share column)  -> %s\n",
                mean_util * 100,
                mean_util > 0.45 && mean_util < 0.75 ? "CONFIRMED" : "NOT REPRODUCED");
  }

  // ---- (2) packet-level simulation ------------------------------------------
  const bool full = bench::env_int("ROCELAB_FIG7_FULL", 0) != 0;
  const int tor_pairs = full ? 24 : static_cast<int>(bench::env_int("ROCELAB_FIG7_TORS", 6));
  const int spines = full ? 64 : 16;
  const int leaves = 4;
  const int servers_per_tor = full ? 24 : 8;  // only 8 are active either way
  const Time warmup = milliseconds(bench::env_int("ROCELAB_FIG7_WARMUP_MS", 4));
  const Time window = milliseconds(bench::env_int("ROCELAB_FIG7_MEASURE_MS", 8));

  bench::print_header("packet-level simulation (PFC + DCQCN active)");
  std::printf("topology: 2 podsets x (%d ToRs, %d leaves), %d spines, %d servers/ToR\n",
              tor_pairs, leaves, spines, servers_per_tor);

  QosPolicy policy;
  ClosParams params = make_clos_params(policy, DeploymentStage::kFull, 2, leaves, tor_pairs,
                                       servers_per_tor, spines);
  ClosFabric clos(params);

  std::vector<std::unique_ptr<RdmaDemux>> demuxes;
  std::vector<std::unique_ptr<RdmaStreamSource>> sources;
  int connections = 0;
  const int active_servers = 8;
  const int qps_per_pair = 8;
  for (int t = 0; t < tor_pairs; ++t) {
    for (int s = 0; s < active_servers; ++s) {
      for (int dir = 0; dir < 2; ++dir) {
        Host& src = clos.server(dir, t, s);
        Host& dst = clos.server(1 - dir, t, s);
        auto demux = std::make_unique<RdmaDemux>(src);
        for (int q = 0; q < qps_per_pair; ++q) {
          auto [qa, qb] = connect_qp_pair(src, dst, make_qp_config(policy));
          (void)qb;
          sources.push_back(std::make_unique<RdmaStreamSource>(
              src, *demux, qa,
              RdmaStreamSource::Options{.message_bytes = 64 * kKiB, .max_outstanding = 2}));
          sources.back()->start();
          ++connections;
        }
        demuxes.push_back(std::move(demux));
      }
    }
  }

  std::vector<Host*> receivers;
  for (const auto& h : clos.fabric().hosts()) receivers.push_back(h.get());

  clos.sim().run_until(warmup);

  // Measure delivered payload over the window (receiver side only).
  std::int64_t rx0 = 0;
  for (Host* h : receivers) rx0 += h->rdma().stats().bytes_received;
  clos.sim().run_until(warmup + window);
  std::int64_t rx1 = 0;
  for (Host* h : receivers) rx1 += h->rdma().stats().bytes_received;

  // Fig. 7 reports frames/second; scale payload to frames of 1086 bytes.
  const double payload_bps = static_cast<double>(rx1 - rx0) * 8.0 / to_seconds(window);
  const double frame_bps = payload_bps * 1086.0 / 1024.0;
  const double capacity_bps =
      static_cast<double>(2 * leaves * (spines / leaves)) * static_cast<double>(gbps(40));
  const double util = frame_bps / capacity_bps;
  const double fps = payload_bps / 8.0 / 1024.0;

  // Lossless check: no RDMA packet drops anywhere.
  std::int64_t lossless_drops = 0;
  for (auto* sw : clos.fabric().switch_ptrs()) {
    for (int p = 0; p < sw->port_count(); ++p) {
      lossless_drops += sw->port(p).counters().headroom_overflow_drops;
    }
  }

  std::printf("\nconnections: %d (paper: 3074 at full scale)\n", connections);
  std::printf("aggregate frame throughput: %.2f Tb/s (%.2fM frames/s of 1086B)\n",
              frame_bps / 1e12, fps / 1e6);
  std::printf("leaf-spine capacity: %.2f Tb/s  utilization: %.1f%% (paper: 60%%)\n",
              capacity_bps / 1e12, util * 100);
  std::printf("lossless packet drops: %lld (paper: \"not a single packet was dropped\")\n",
              static_cast<long long>(lossless_drops));

  // Where in [60%, ~bottleneck-share] the packet-level number lands depends
  // on how closely the congestion control approaches per-bottleneck
  // fairness: production DCQCN+PFC coupled flows toward the uniform rate
  // (hence the paper's 60%); our short-horizon simulation with fast DCQCN
  // recovery reclaims part of the collision slack.
  const bool ok = util > 0.40 && util < 0.95 && lossless_drops == 0;
  std::printf("\nECMP-collision-limited utilization, zero loss: %s\n",
              ok ? "CONFIRMED" : "NOT REPRODUCED");
  return ok ? 0 : 1;
}
