// E6 — Fig. 7: aggregate RDMA throughput in a three-tier Clos network.
//
// Paper setup: two podsets (4 leaves, 24 ToRs, 576 servers each), 64
// spines, all 40GbE. ToR i of podset 0 is paired with ToR i of podset 1;
// 8 servers per ToR, 8 QP connections per server pair, all sending as fast
// as possible. 3074 connections cross the 128 leaf-spine links.
//
// Paper result: 3.0 Tb/s aggregate = 60% of the 5.12 Tb/s leaf-spine
// capacity, not a single packet dropped, and the 60% ceiling is ECMP hash
// collision, not PFC/HOL blocking.
//
// We reproduce it two ways:
//   (1) flow-level: the exact full-scale connection set, ECMP-hashed and
//       max-min rate-allocated (fast, full 1152-server scale);
//   (2) packet-level: the same topology at reduced ToR count by default
//       (--full=1 / ROCELAB_FIG7_FULL=1 for the paper's full scale),
//       measuring real delivered frames with PFC + DCQCN active.
#include "src/app/demux.h"
#include "src/app/traffic.h"
#include "src/exp/harness.h"
#include "src/exp/scenario.h"
#include "src/exp/transport.h"
#include "src/monitor/metric_registry.h"
#include "src/monitor/monitor.h"
#include "src/rocev2/deployment.h"
#include "src/topo/ecmp_analysis.h"

using namespace rocelab;

int main(int argc, char** argv) {
  exp::Scenario sc;
  sc.name = "fig_clos_throughput";
  sc.title = "E6 / Fig. 7 — aggregate RDMA throughput in a 3-tier Clos";
  sc.paper = "paper: 3.0 Tb/s of 5.12 Tb/s leaf-spine capacity (60%), zero drops,\n"
             "limited by ECMP hash collision";
  sc.knobs = {
      exp::knob_int("full", 0, "ROCELAB_FIG7_FULL", "1 = paper's full 24-ToR-pair scale"),
      exp::knob_int("tors", 6, "ROCELAB_FIG7_TORS", "ToR pairs at reduced scale"),
      exp::knob_int("warmup_ms", 4, "ROCELAB_FIG7_WARMUP_MS", "warmup before measuring"),
      exp::knob_int("measure_ms", 8, "ROCELAB_FIG7_MEASURE_MS", "measurement window"),
  };
  sc.body = [](exp::Context& ctx) {
    // ---- (1) flow-level analysis at the paper's full scale ------------------
    ctx.section("flow-level ECMP analysis (full scale: 24 ToR pairs x 8 srv x 8 QPs)");
    {
      ctx.table({"seed", "connections", "aggregate", "util", "bnk-share", "max fl/lnk",
                 "min fl/lnk"},
                {8, 14, 14, 12, 14, 14, 14});
      double util_sum = 0;
      const int seeds = 5;
      for (int seed = 1; seed <= seeds; ++seed) {
        EcmpAnalysisParams p;
        p.seed = static_cast<std::uint64_t>(seed);
        const auto r = analyze_clos_ecmp(p);
        util_sum += r.utilization;
        ctx.row({std::to_string(seed), std::to_string(r.total_connections),
                 exp::fmt("%.2f Tb/s", r.aggregate_gbps / 1000),
                 exp::fmt("%.1f%%", r.utilization * 100),
                 exp::fmt("%.1f%%", r.utilization_bottleneck * 100),
                 exp::fmt("%.0f", r.max_leaf_spine_flows),
                 exp::fmt("%.0f", r.min_leaf_spine_flows)});
        const std::string case_name = "flow_level/seed" + std::to_string(seed);
        ctx.metric(case_name, "connections", r.total_connections);
        ctx.metric(case_name, "aggregate_gbps", r.aggregate_gbps);
        ctx.metric(case_name, "utilization", r.utilization);
        ctx.metric(case_name, "utilization_bottleneck", r.utilization_bottleneck);
      }
      const double mean_util = util_sum / seeds;
      ctx.note("");
      ctx.note("mean uniform-rate utilization " + exp::fmt("%.1f%%", mean_util * 100) +
               " (paper: 60% — every server at the same 8Gb/s, i.e. the equal share of\n"
               "the most-collided link; per-bottleneck fairness could reach the bnk-share "
               "column)");
      ctx.metric("flow_level", "mean_utilization", mean_util);
      ctx.check("flow-level utilization near 60%", mean_util > 0.45 && mean_util < 0.75);
    }

    // ---- (2) packet-level simulation ----------------------------------------
    const bool full = ctx.knob_int("full") != 0;
    const int tor_pairs = full ? 24 : static_cast<int>(ctx.knob_int("tors"));
    const int spines = full ? 64 : 16;
    const int leaves = 4;
    const int servers_per_tor = full ? 24 : 8;  // only 8 are active either way
    const Time warmup = milliseconds(ctx.knob_int("warmup_ms"));
    const Time window = milliseconds(ctx.knob_int("measure_ms"));

    ctx.section("packet-level simulation (PFC + DCQCN active)");
    ctx.note("topology: 2 podsets x (" + std::to_string(tor_pairs) + " ToRs, " +
             std::to_string(leaves) + " leaves), " + std::to_string(spines) + " spines, " +
             std::to_string(servers_per_tor) + " servers/ToR");

    QosPolicy policy;
    exp::apply_transport_knobs(ctx, policy);
    ClosParams params = make_clos_params(policy, DeploymentStage::kFull, 2, leaves, tor_pairs,
                                         servers_per_tor, spines);
    params.shards = ctx.shards();
    ClosFabric clos(params);

    exp::TrafficSet traffic;
    int connections = 0;
    const int active_servers = 8;
    const int qps_per_pair = 8;
    for (int t = 0; t < tor_pairs; ++t) {
      for (int s = 0; s < active_servers; ++s) {
        for (int dir = 0; dir < 2; ++dir) {
          Host& src = clos.server(dir, t, s);
          Host& dst = clos.server(1 - dir, t, s);
          traffic.add_streams(
              src, dst, make_qp_config(policy),
              RdmaStreamSource::Options{.message_bytes = 64 * kKiB, .max_outstanding = 2},
              qps_per_pair);
          connections += qps_per_pair;
        }
      }
    }

    std::vector<Host*> receivers;
    for (const auto& h : clos.fabric().hosts()) receivers.push_back(h.get());

    clos.sim().run_until(warmup);

    // Measure delivered payload over the window (receiver side only).
    std::int64_t rx0 = 0;
    for (Host* h : receivers) rx0 += h->rdma().stats().bytes_received;
    clos.sim().run_until(warmup + window);
    std::int64_t rx1 = 0;
    for (Host* h : receivers) rx1 += h->rdma().stats().bytes_received;

    // Fig. 7 reports frames/second; scale payload to frames of 1086 bytes.
    const double payload_bps = static_cast<double>(rx1 - rx0) * 8.0 / to_seconds(window);
    const double frame_bps = payload_bps * 1086.0 / 1024.0;
    const double capacity_bps =
        static_cast<double>(2 * leaves * (spines / leaves)) * static_cast<double>(gbps(40));
    const double util = frame_bps / capacity_bps;
    const double fps = payload_bps / 8.0 / 1024.0;

    // Lossless check: no RDMA packet drops anywhere. The metric registry
    // sums headroom-overflow drops across every switch port in one query.
    const std::int64_t lossless_drops =
        clos.sim().metrics().sum("*/port*/headroom_overflow_drops");

    ctx.note("");
    ctx.note("connections: " + std::to_string(connections) + " (paper: 3074 at full scale)");
    ctx.note("aggregate frame throughput: " + exp::fmt("%.2f Tb/s", frame_bps / 1e12) + " (" +
             exp::fmt("%.2fM frames/s", fps / 1e6) + " of 1086B)");
    ctx.note("leaf-spine capacity: " + exp::fmt("%.2f Tb/s", capacity_bps / 1e12) +
             "  utilization: " + exp::fmt("%.1f%%", util * 100) + " (paper: 60%)");
    ctx.note("lossless packet drops: " + std::to_string(lossless_drops) +
             " (paper: \"not a single packet was dropped\")");
    ctx.metric("packet_level", "connections", connections);
    ctx.metric("packet_level", "frame_tbps", frame_bps / 1e12);
    ctx.metric("packet_level", "capacity_tbps", capacity_bps / 1e12);
    ctx.metric("packet_level", "utilization", util);
    ctx.metric("packet_level", "lossless_drops", static_cast<double>(lossless_drops));

    // Where in [60%, ~bottleneck-share] the packet-level number lands depends
    // on how closely the congestion control approaches per-bottleneck
    // fairness: production DCQCN+PFC coupled flows toward the uniform rate
    // (hence the paper's 60%); our short-horizon simulation with fast DCQCN
    // recovery reclaims part of the collision slack.
    ctx.check("ECMP-collision-limited utilization, zero loss",
              util > 0.40 && util < 0.95 && lossless_drops == 0);
  };
  return exp::run_scenario(sc, argc, argv);
}
